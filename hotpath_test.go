// Mutex-profile assertion for the serving hot paths. The scale-out
// design promises that a warm plan-cache hit through Compose and the
// registry's candidate/epoch read paths acquire zero mutexes: reads go
// through atomically published snapshots (RCU-style capability lists,
// copy-on-write cache segments), so contention can only ever appear on
// the write/repair paths. This test turns the runtime mutex profiler
// on, hammers the warm paths from several goroutines, and fails if any
// contention sample's stack passes through a hot-path function.
package qasom_test

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"qasom"
	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
)

// forbiddenHotPathFrames are the lock-free read paths: any mutex
// contention recorded inside them means a lock crept back in.
var forbiddenHotPathFrames = []string{
	"registry.(*Store).candidates",
	"registry.(*Store).collect",
	"registry.(*Store).capabilityEpochs",
	"qasom.(*planCache).get",
	"qasom.(*planCache).lookup",
}

func TestHotPathsAcquireNoMutexes(t *testing.T) {
	// Warm a middleware until the request is a plan-cache hit.
	mw, err := qasom.New(qasom.Options{Obs: obs.NewHub()})
	if err != nil {
		t.Fatal(err)
	}
	seedMall(t, mw)
	req := qasom.Request{Task: behaviourA,
		Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 300}}}
	if _, err := mw.Compose(req); err != nil {
		t.Fatal(err)
	}
	if c, err := mw.Compose(req); err != nil {
		t.Fatal(err)
	} else if !c.SelectionStats().CacheHit {
		t.Fatal("warm compose should be a plan-cache hit")
	}

	// Warm a direct store until the capability list is published.
	reg := registry.NewStore(semantics.PervasiveWithScenarios(),
		registry.StoreOptions{Shards: 4}).Tenant(registry.DefaultTenant)
	ps := qos.StandardSet()
	for i := 0; i < 12; i++ {
		err := reg.Publish(registry.Description{
			ID:      registry.ServiceID(fmt.Sprintf("hot-%d", i)),
			Concept: semantics.BookSale,
			Offers: []registry.QoSOffer{
				{Property: semantics.ResponseTime, Value: 40 + float64(i)},
				{Property: semantics.Price, Value: 5},
				{Property: semantics.Availability, Value: 0.95},
				{Property: semantics.Reliability, Value: 0.9},
				{Property: semantics.Throughput, Value: 40},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Candidates(semantics.BookSale, ps); len(got) != 12 {
		t.Fatalf("warm lookup returned %d candidates, want 12", len(got))
	}

	// Profile only the hammer phase: every mutex wait from here on is
	// sampled (fraction 1 = all contention events).
	prev := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prev)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var epochs []uint64
			for i := 0; i < 300; i++ {
				if _, err := mw.Compose(req); err != nil {
					t.Error(err)
					return
				}
				if cands := reg.Candidates(semantics.BookSale, ps); len(cands) != 12 {
					t.Errorf("lookup returned %d candidates mid-hammer", len(cands))
					return
				}
				epochs = reg.CapabilityEpochs(epochs[:0], semantics.BookSale)
			}
		}()
	}
	wg.Wait()

	var recs []runtime.BlockProfileRecord
	n, _ := runtime.MutexProfile(nil)
	for {
		recs = make([]runtime.BlockProfileRecord, n+64)
		var ok bool
		n, ok = runtime.MutexProfile(recs)
		if ok {
			recs = recs[:n]
			break
		}
	}
	for _, rec := range recs {
		frames := runtime.CallersFrames(rec.Stack())
		var stack []string
		for {
			f, more := frames.Next()
			stack = append(stack, f.Function)
			if !more {
				break
			}
		}
		for _, fn := range stack {
			for _, bad := range forbiddenHotPathFrames {
				if strings.Contains(fn, bad) {
					t.Errorf("mutex contention inside hot path %s\nstack:\n  %s",
						bad, strings.Join(stack, "\n  "))
				}
			}
		}
	}
}
