// Package qasom is the public API of QASOM, a QoS-aware service-oriented
// middleware for pervasive environments (Ben Mabrouk et al., MIDDLEWARE
// 2009): a from-scratch Go implementation of the semantic end-to-end QoS
// model, the QASSA clustering-based QoS-aware service selection
// algorithm (centralized and distributed), and the QoS-driven adaptation
// framework (service substitution and behavioural adaptation via
// subgraph homeomorphism).
//
// Typical flow:
//
//	mw, _ := qasom.New()
//	mw.Publish(qasom.Service{ID: "shop1", Capability: "BookSale", QoS: map[string]float64{...}})
//	mw.RegisterTaskClass("shopping", bpelBehaviour1, bpelBehaviour2)
//	comp, _ := mw.Compose(qasom.Request{Task: bpelBehaviour1, Constraints: []qasom.Constraint{...}})
//	report, _ := mw.Execute(ctx, comp)
//
// The middleware runs over a simulated pervasive environment (devices,
// wireless links, churn, QoS fluctuation) so the full selection →
// execution → monitoring → adaptation loop works out of the box; see
// DESIGN.md for how this substitutes for the thesis's testbed.
package qasom

import (
	"fmt"
	"time"

	"qasom/internal/contract"
	"qasom/internal/core"
	"qasom/internal/monitor"
	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
	"qasom/internal/simenv"
	"qasom/internal/subidx"
	"qasom/internal/task"
)

// Service is a publishable service description. QoS values are keyed by
// property name (see Properties) or by any concept/alias of the shared
// ontology ("Delay", "Uptime", ...), in canonical units.
type Service struct {
	// ID uniquely identifies the service.
	ID string
	// Name is a human-readable label.
	Name string
	// Capability is the functional concept the service offers (e.g.
	// "BookSale", "AudioStreaming").
	Capability string
	// Inputs and Outputs are data concepts (optional).
	Inputs, Outputs []string
	// Device names the hosting device (optional).
	Device string
	// QoS holds the advertised values, e.g. {"responseTime": 120,
	// "availability": 0.95, "price": 3}.
	QoS map[string]float64
	// FailProb and Noise tune the simulated run-time behaviour of the
	// service (probability of failure per invocation; relative jitter).
	FailProb, Noise float64
}

// Constraint is one global QoS requirement over the whole composition.
type Constraint struct {
	// Property names a property of the middleware's property set.
	Property string
	// Bound is the threshold (≤ for minimized, ≥ for maximized
	// properties).
	Bound float64
}

// Request asks the middleware for a QoS-aware composition.
type Request struct {
	// Task is the user task as an abstract-BPEL document, or the name of
	// a behaviour previously registered via RegisterTaskClass.
	Task string
	// Constraints are the global QoS constraints U.
	Constraints []Constraint
	// Weights are the user preferences per property name (unnamed
	// properties default to weight 1 when Weights is nil, 0 otherwise).
	Weights map[string]float64
	// Approach selects the aggregation approach: "pessimistic"
	// (default), "optimistic" or "mean-value".
	Approach string
	// Distributed runs QASSA's local phase on one simulated coordinator
	// device per activity (the ad hoc mode of Fig. IV.4) instead of
	// centrally on the requester's device.
	Distributed bool
	// Objectives names the properties the Pareto-front mode trades off
	// (at least two; empty means every property of the middleware's
	// set). Ignored — and rejected with an error — unless the middleware
	// was created with Options.ParetoMode.
	Objectives []string
	// Dependencies are inter-service compatibility rules the selection
	// (and every later failover substitution) must honour.
	Dependencies []Dependency
}

// Dependency is one inter-service compatibility rule between two
// activities of the task. Kind is "requires" (binding From to
// FromService — or to anything, when FromService is empty — forces To
// onto one of ToServices), "excludes" (…forbids every ToServices
// binding for To) or "colocated" (From and To must be hosted on the
// same device; FromService/ToServices are ignored).
type Dependency struct {
	Kind        string
	From, To    string
	FromService string
	ToServices  []string
}

// toCore maps the facade rule onto the core representation.
func (d Dependency) toCore() (core.Dependency, error) {
	var kind core.DependencyKind
	switch d.Kind {
	case "requires":
		kind = core.DepRequires
	case "excludes":
		kind = core.DepExcludes
	case "colocated":
		kind = core.DepColocated
	default:
		return core.Dependency{}, fmt.Errorf("qasom: unknown dependency kind %q (want requires|excludes|colocated)", d.Kind)
	}
	to := make([]registry.ServiceID, len(d.ToServices))
	for i, s := range d.ToServices {
		to[i] = registry.ServiceID(s)
	}
	return core.Dependency{
		Kind:        kind,
		From:        d.From,
		To:          d.To,
		FromService: registry.ServiceID(d.FromService),
		ToServices:  to,
	}, nil
}

// Options configure the middleware.
type Options struct {
	// Seed drives all randomness (selection, simulation); 0 means 1.
	Seed int64
	// ExtendedProperties switches from the standard five-property set to
	// the extended eight-property set.
	ExtendedProperties bool
	// SelectorOptions tunes QASSA (zero values mean defaults).
	K             int
	MaxAlternates int
	// Workers bounds the QASSA local-phase worker pool; 0 means
	// GOMAXPROCS. Selections are identical for every worker count (the
	// per-activity clustering derives its randomness from Seed alone).
	Workers int
	// SelectionCacheSize bounds the selection-plan cache: repeated
	// Compose calls whose task, constraints, weights and approach match
	// — and whose touched registry capabilities have not changed since
	// (tracked by registry epochs) — are served a deep copy of the
	// previous Result with zero selection work, bit-identical to a fresh
	// run. 0 means the default (128 entries); negative disables caching.
	// Distributed selections are never cached.
	SelectionCacheSize int
	// SelectionCacheSegments sets the plan cache's lock-stripe count
	// (rounded up to a power of two, capped at 16). 0 auto-sizes from
	// SelectionCacheSize; 1 forces a single segment, whose eviction
	// order is exact global LRU. Lookups are lock-free at any setting —
	// segments only bound writer (put/invalidate) contention and split
	// the capacity into per-segment LRU shares.
	SelectionCacheSegments int
	// OntologyMemoCap bounds each of the ontology's Match/Distance memo
	// tables so long-running nodes cannot grow them without limit. 0
	// means the semantics-layer default (8192 entries per table);
	// negative disables the bound.
	OntologyMemoCap int
	// Obs is the telemetry hub (metrics registry + span tracer) the
	// instance reports into; nil means the process-wide default hub, so
	// one /metrics endpoint covers every middleware in the process.
	// Tests pass a fresh hub for isolated counters.
	Obs *obs.Hub
	// TenantID names the logical environment this instance operates in.
	// Instances sharing a Store but bound to different tenants are fully
	// isolated: publishes in one are invisible to the other's lookups and
	// never invalidate its cached selection plans. The zero value is the
	// default tenant.
	TenantID string
	// RegistryShards is the lock-domain count of a freshly created
	// registry store (rounded up to a power of two; 0 means the registry
	// default). Ignored when Store is set.
	RegistryShards int
	// Store, when non-nil, is a shared multi-tenant registry store this
	// instance attaches to (via TenantID) instead of creating its own —
	// the way many logical environments share one process. The store's
	// ontology replaces the instance-private one, so OntologyMemoCap is
	// ignored for shared stores.
	Store *registry.Store
	// DisableSubstitutionIndex turns off the per-composition substitution
	// index (internal/subidx). Default on: failover resolves replacements
	// with one lock-free index lookup and falls back to the reactive
	// alternate scan only when the index is cold, drained or exhausted.
	// Disabling keeps the fully reactive pre-index behaviour.
	DisableSubstitutionIndex bool
	// SubstitutionIndexRefresh is the background refresh interval of the
	// substitution index (re-rank after registry churn, re-stage
	// behavioural alternates); 0 means the subidx default (250ms).
	SubstitutionIndexRefresh time.Duration
	// SubstitutionIndexCompositions bounds how many compositions keep a
	// warm substitution index at once (an LRU over actively executing
	// compositions — evicted indexes rebuild at their next Execute); 0
	// means the subidx default (64).
	SubstitutionIndexCompositions int
	// ParetoMode switches every selection of this instance from scalar
	// (single best-utility composition) to multi-objective: the
	// composition still binds the scalarized-best member, and
	// Composition.Front exposes the whole non-dominated set over the
	// request's Objectives. Pareto selections are centralized-only
	// (Distributed requests error) and never plan-cached, so combining
	// ParetoMode with an explicit SelectionCacheSize > 0 is rejected by
	// New.
	ParetoMode bool
}

// Middleware is a QASOM instance: shared ontology, semantic registry,
// task-class repository, QASSA selector, QoS monitor and a simulated
// pervasive environment hosting the published services.
//
// Middleware is safe for concurrent use: Compose/ComposeContext may run
// from many goroutines against one instance, concurrently with
// Publish/Withdraw/SetDown/SetUp and task-class registration. Each
// selection works on snapshot copies of the matching service
// descriptions, so a service withdrawn mid-composition stays bound in
// that composition (and is healed at execution time by the adaptation
// loop, exactly as a device leaving mid-run would be).
type Middleware struct {
	ontology  *semantics.Ontology
	props     *qos.PropertySet
	reg       *registry.Registry
	repo      *task.Repository
	env       *simenv.Environment
	selector  *core.Selector
	mon       *monitor.Monitor
	contracts *contract.Manager
	obs       *obs.Hub
	met       composeMetrics
	plans     *planCache
	subst     *subidx.Tracker // nil when DisableSubstitutionIndex
	opts      Options
	tenant    string // tenant label on metrics and flight records ("default" for the zero tenant)
}

// composeMetrics bundles the façade's registry handles, created once in
// New so the Compose/Execute hot paths never do name lookups.
type composeMetrics struct {
	composeTotal      *obs.Counter
	composeErrors     *obs.Counter
	composeInfeasible *obs.Counter
	composeSeconds    *obs.Histogram
	phaseSeconds      *obs.HistogramVec
	executeTotal      *obs.Counter
	executeErrors     *obs.Counter
	executeSeconds    *obs.Histogram
	tenantRequests    *obs.Counter
	paretoFrontSize   *obs.Histogram
}

func composeMetricsFor(hub *obs.Hub, tenant string) composeMetrics {
	r := hub.Metrics
	return composeMetrics{
		composeTotal: r.Counter("qasom_compose_total",
			"Compose/ComposeContext calls."),
		composeErrors: r.Counter("qasom_compose_errors_total",
			"Compose calls that returned an error."),
		composeInfeasible: r.Counter("qasom_compose_infeasible_total",
			"Compositions returned best-effort (some global constraint unsatisfied)."),
		composeSeconds: r.Histogram("qasom_compose_seconds",
			"End-to-end Compose latency.", nil),
		phaseSeconds: r.HistogramVec("qasom_compose_phase_seconds",
			"Compose latency split by pipeline phase (resolve|lookup|local|global).",
			nil, "phase"),
		executeTotal: r.Counter("qasom_execute_total",
			"Execute calls."),
		executeErrors: r.Counter("qasom_execute_errors_total",
			"Execute calls that failed (unrecoverable or non-convergent)."),
		executeSeconds: r.Histogram("qasom_execute_seconds",
			"End-to-end Execute latency (including adaptation rounds).", nil),
		tenantRequests: r.CounterVec("qasom_tenant_requests_total",
			"Compose calls attributed to the tenant the middleware instance is bound to.",
			"tenant").With(tenant),
		paretoFrontSize: r.Histogram("qasom_pareto_front_size",
			"Non-dominated set sizes returned by Pareto-mode selections.",
			[]float64{1, 2, 4, 8, 16, 32, 64}),
	}
}

// tenantLabel maps the zero tenant to a stable metric label.
func tenantLabel(id string) string {
	if id == "" {
		return "default"
	}
	return id
}

// New creates a middleware instance.
func New(opts ...Options) (*Middleware, error) {
	var o Options
	if len(opts) > 1 {
		return nil, fmt.Errorf("qasom: at most one Options value")
	}
	if len(opts) == 1 {
		o = opts[0]
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ParetoMode && o.SelectionCacheSize > 0 {
		return nil, fmt.Errorf("qasom: ParetoMode cannot be combined with SelectionCacheSize %d: the selection-plan cache stores scalar plans without their fronts; leave SelectionCacheSize at 0 (ParetoMode disables the cache)", o.SelectionCacheSize)
	}
	if o.ParetoMode {
		// No front-caching: a replayed scalar plan would come back with
		// an empty Front, silently changing the API's answer.
		o.SelectionCacheSize = -1
	}
	if o.Obs == nil {
		o.Obs = obs.Default()
	}
	ps := qos.StandardSet()
	if o.ExtendedProperties {
		ps = qos.ExtendedSet()
	}
	store := o.Store
	var onto *semantics.Ontology
	if store != nil {
		// Shared store: its ontology is the instance's semantic model so
		// every tenant matches against the same concept hierarchy.
		onto = store.Ontology()
	} else {
		onto = semantics.PervasiveWithScenarios()
		onto.SetMemoCap(o.OntologyMemoCap)
		store = registry.NewStore(onto, registry.StoreOptions{
			Shards: o.RegistryShards,
			Obs:    o.Obs.Metrics,
		})
	}
	reg := store.Tenant(registry.TenantID(o.TenantID))
	m := &Middleware{
		ontology: onto,
		props:    ps,
		reg:      reg,
		repo:     task.NewRepository(onto),
		env:      simenv.New(ps, reg, simenv.Options{Seed: o.Seed}),
		selector: core.NewSelector(core.Options{K: o.K, MaxAlternates: o.MaxAlternates, Seed: o.Seed, Workers: o.Workers, ParetoMode: o.ParetoMode}),
		mon:      monitor.New(ps, monitor.Options{Obs: o.Obs}),
		obs:      o.Obs,
		met:      composeMetricsFor(o.Obs, tenantLabel(o.TenantID)),
		plans:    newPlanCache(o.SelectionCacheSize, o.SelectionCacheSegments, o.Obs.Metrics),
		opts:     o,
		tenant:   tenantLabel(o.TenantID),
	}
	if !o.DisableSubstitutionIndex {
		m.subst = subidx.NewTracker(reg, m.mon, subidx.Options{
			RefreshInterval: o.SubstitutionIndexRefresh,
			MaxTracked:      o.SubstitutionIndexCompositions,
			Metrics:         o.Obs.Metrics,
		})
	}
	obs.RegisterBuildInfo(o.Obs.Metrics)
	o.Obs.Metrics.Func("qasom_plan_cache_entries",
		"Live entries in the selection-plan cache.",
		func() float64 { return float64(m.plans.len()) })
	o.Obs.Metrics.Func("qasom_flight_records_dropped_total",
		"Flight records discarded because their ring slot was busy (Record is drop-don't-block).",
		func() float64 { return float64(o.Obs.Flight.Dropped()) })
	// Live-state gauges: evaluated at scrape time, so the registry stays
	// the one source of truth for cumulative cache/size telemetry that
	// the per-composition SelectionStats only samples windows of.
	o.Obs.Metrics.Func("qasom_registry_services",
		"Services currently published in the semantic registry.",
		func() float64 { return float64(m.reg.Len()) })
	o.Obs.Metrics.Func("qasom_ontology_match_cache_hits",
		"Cumulative ontology Match memo hits.",
		func() float64 { return float64(m.ontology.Stats().MatchHits) })
	o.Obs.Metrics.Func("qasom_ontology_match_cache_misses",
		"Cumulative ontology Match memo misses.",
		func() float64 { return float64(m.ontology.Stats().MatchMisses) })
	o.Obs.Metrics.Func("qasom_ontology_distance_cache_hits",
		"Cumulative ontology Distance memo hits.",
		func() float64 { return float64(m.ontology.Stats().DistanceHits) })
	o.Obs.Metrics.Func("qasom_ontology_distance_cache_misses",
		"Cumulative ontology Distance memo misses.",
		func() float64 { return float64(m.ontology.Stats().DistanceMisses) })
	o.Obs.Metrics.Func("qasom_ontology_memo_evictions",
		"Cumulative ontology memo entries dropped by the size cap (Match + Distance).",
		func() float64 {
			s := m.ontology.Stats()
			return float64(s.MatchEvictions + s.DistanceEvictions)
		})
	return m, nil
}

// Close releases the middleware's background resources: the substitution
// index tracker's maintenance goroutine and its registry/monitor
// subscriptions. The instance stays usable afterwards — failover simply
// reverts to the reactive scan. Safe to call more than once.
func (m *Middleware) Close() {
	if m.subst != nil {
		m.subst.Close()
	}
}

// Observability returns the middleware's telemetry hub: the metrics
// registry behind /metrics and the tracer whose Snapshot holds the most
// recent Compose/Execute span trees. Serve it with obs.ServeDebug or
// mount Hub.Handler on an existing server.
func (m *Middleware) Observability() *obs.Hub { return m.obs }

// Properties returns the property names of the middleware's QoS set.
func (m *Middleware) Properties() []string { return m.props.Names() }

// Ontology exposes the shared semantic model for advanced use (adding
// domain concepts before publishing services).
func (m *Middleware) Ontology() *semantics.Ontology { return m.ontology }

// Publish deploys a service into the (simulated) environment and its
// description into the registry.
func (m *Middleware) Publish(s Service) error {
	if s.ID == "" || s.Capability == "" {
		return fmt.Errorf("qasom: service needs ID and Capability")
	}
	offers := make([]registry.QoSOffer, 0, len(s.QoS))
	for name, value := range s.QoS {
		concept := semantics.ConceptID(name)
		if j, ok := m.props.Index(name); ok {
			concept = m.props.At(j).Concept
		}
		offers = append(offers, registry.QoSOffer{Property: concept, Value: value})
	}
	desc := registry.Description{
		ID:       registry.ServiceID(s.ID),
		Name:     s.Name,
		Concept:  semantics.ConceptID(s.Capability),
		Inputs:   toConcepts(s.Inputs),
		Outputs:  toConcepts(s.Outputs),
		Provider: registry.DeviceID(s.Device),
		Offers:   offers,
	}
	return m.env.Deploy(simenv.Service{Desc: desc, FailProb: s.FailProb, Noise: s.Noise})
}

// Withdraw removes a service from the environment (simulating a device
// leaving); it reports whether the service was present.
func (m *Middleware) Withdraw(id string) bool {
	return m.env.Leave(registry.ServiceID(id))
}

// SetDown marks a service unreachable without withdrawing its
// advertisement, and SetUp revives it — the advertised-vs-runtime
// mismatch QoS monitoring exists for.
func (m *Middleware) SetDown(id string) { m.env.SetDown(registry.ServiceID(id), true) }

// SetUp revives a service previously marked down.
func (m *Middleware) SetUp(id string) { m.env.SetDown(registry.ServiceID(id), false) }

// Degrade shifts a service's run-time QoS by the given per-property
// deltas without touching its advertisement.
func (m *Middleware) Degrade(id string, deltas map[string]float64) error {
	d := m.props.NewVector()
	for name, v := range deltas {
		j, ok := m.props.Index(name)
		if !ok {
			return fmt.Errorf("qasom: unknown property %q", name)
		}
		d[j] = v
	}
	return m.env.Degrade(registry.ServiceID(id), d)
}

// ServiceCount returns the number of published services.
func (m *Middleware) ServiceCount() int { return m.reg.Len() }

// EnableMobility activates the environment's mobility and radio model:
// devices and the user get positions in an arena×arena square; links
// degrade with distance (latencyPerUnit ms of response time per distance
// unit) and break beyond radioRange — the infrastructure-level half of
// the end-to-end QoS model.
func (m *Middleware) EnableMobility(arena, radioRange, latencyPerUnit float64) error {
	return m.env.EnableMobility(simenv.RadioModel{
		Arena:          arena,
		Range:          radioRange,
		LatencyPerUnit: latencyPerUnit,
	})
}

// PlaceDevice positions a device in the arena; speed > 0 makes it roam
// (random waypoint) on each Tick.
func (m *Middleware) PlaceDevice(deviceID string, x, y, speed float64) error {
	return m.env.PlaceDevice(deviceID, simenv.Position{X: x, Y: y}, speed)
}

// MoveUser repositions the user's device.
func (m *Middleware) MoveUser(x, y float64) {
	m.env.SetUserPosition(simenv.Position{X: x, Y: y})
}

// Tick advances the mobility simulation by dt time units.
func (m *Middleware) Tick(dt float64) { m.env.Tick(dt) }

// SignalStrength returns the normalized link quality in [0,1] between
// the user and a device (1 when mobility is disabled).
func (m *Middleware) SignalStrength(deviceID string) float64 {
	return m.env.SignalStrength(deviceID)
}

func toConcepts(names []string) []semantics.ConceptID {
	out := make([]semantics.ConceptID, len(names))
	for i, n := range names {
		out[i] = semantics.ConceptID(n)
	}
	return out
}
