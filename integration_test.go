package qasom_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"qasom"
)

// TestGrandScenario drives the whole middleware through one story — the
// thesis's pervasive-shopping day, end to end:
//
//  1. a commercial centre publishes heterogeneous services (mixed QoS
//     vocabularies and units) across devices in a mobility arena;
//  2. Bob composes a shopping task under budget and deadline constraints
//     and establishes quality contracts with the selected providers;
//  3. execution observes run-time QoS; a provider degrades, the contract
//     check flags it, and proactive healing substitutes it;
//  4. a whole capability leaves the market; behavioural adaptation
//     switches to the one-stop behaviour and the task still completes;
//  5. the final composition exports as an executable BPEL document.
func TestGrandScenario(t *testing.T) {
	mw, err := qasom.New(qasom.Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if err := mw.EnableMobility(100, 60, 0.5); err != nil {
		t.Fatal(err)
	}

	// --- 1. The environment -------------------------------------------
	type spec struct {
		prefix, capability string
		count              int
		qos                map[string]float64
	}
	mkQoS := func(rt, price float64) map[string]float64 {
		return map[string]float64{
			"responseTime": rt, "price": price, "availability": 0.95,
			"reliability": 0.92, "throughput": 45,
		}
	}
	specs := []spec{
		{"catalog", "BrowseCatalog", 3, mkQoS(40, 0)},
		{"bookshop", "BookSale", 4, mkQoS(60, 9)},
		{"cashdesk", "CardPayment", 2, mkQoS(30, 0.5)},
		{"kiosk", "Shopping", 2, mkQoS(90, 11)},
		{"mpay", "MobilePayment", 2, mkQoS(25, 1)},
	}
	for _, sp := range specs {
		for i := 0; i < sp.count; i++ {
			id := fmt.Sprintf("%s-%d", sp.prefix, i)
			if err := mw.Publish(qasom.Service{
				ID: id, Capability: sp.capability, Device: "dev-" + id, QoS: sp.qos,
			}); err != nil {
				t.Fatal(err)
			}
			if err := mw.PlaceDevice("dev-"+id, 45+float64(3*i), 50, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	// One provider advertises in its own vocabulary and units.
	if err := mw.Publish(qasom.Service{
		ID: "bookshop-alias", Capability: "BookSale",
		QoS: map[string]float64{"Delay": 55, "Fee": 7, "Uptime": 0.96, "SuccessRate": 0.93, "Rate": 50},
	}); err != nil {
		t.Fatal(err)
	}

	fine := `<process name="day-fine" concept="Shopping">
	  <sequence>
	    <invoke activity="browse" concept="BrowseCatalog"/>
	    <invoke activity="buy" concept="BookSale"/>
	    <invoke activity="pay" concept="Payment"/>
	  </sequence>
	</process>`
	coarse := `<process name="day-coarse" concept="Shopping">
	  <sequence>
	    <invoke activity="onestop" concept="Shopping"/>
	    <invoke activity="mpay" concept="MobilePayment"/>
	  </sequence>
	</process>`
	if err := mw.RegisterTaskClass("day", fine, coarse); err != nil {
		t.Fatal(err)
	}

	// --- 2. Composition + contracts ------------------------------------
	comp, err := mw.Compose(qasom.Request{
		Task: "day-fine",
		Constraints: []qasom.Constraint{
			{Property: "responseTime", Bound: 400},
			{Property: "price", Bound: 25},
		},
		Weights: map[string]float64{"price": 2, "responseTime": 1, "availability": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Feasible() {
		t.Fatal("the day should start feasible")
	}
	contracts, err := mw.EstablishContracts(comp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(contracts) != 3 {
		t.Fatalf("contracts = %v", contracts)
	}

	// --- 3. Degradation → contract flag → healing ----------------------
	buySvc := comp.Bindings()["buy"]
	if err := mw.Degrade(buySvc, map[string]float64{"responseTime": 500}); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.Execute(context.Background(), comp); err != nil {
		t.Fatal(err)
	}
	flagged := false
	for _, r := range mw.CheckContracts() {
		if r.Service == buySvc && !r.Compliant {
			flagged = true
			if r.Tier == "SatisfiedTier" || r.Tier == "DelightedTier" {
				t.Errorf("degraded provider tier = %s", r.Tier)
			}
		}
	}
	if !flagged {
		t.Fatal("contract compliance should flag the degraded provider")
	}
	heal, err := comp.Heal(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(heal.Substitutions) == 0 {
		t.Fatalf("healing should substitute the degraded provider: %+v", heal)
	}
	if comp.Bindings()["buy"] == buySvc {
		t.Error("degraded provider still bound after healing")
	}

	// --- 4. Capability loss → behavioural adaptation --------------------
	for i := 0; i < 4; i++ {
		mw.Withdraw(fmt.Sprintf("bookshop-%d", i))
	}
	mw.Withdraw("bookshop-alias")
	report, err := mw.Execute(context.Background(), comp)
	if err != nil {
		t.Fatalf("execution after capability loss: %v", err)
	}
	if !report.Completed {
		t.Fatal("the day should still complete")
	}
	if report.BehaviourSwitches == 0 {
		t.Fatal("behavioural adaptation expected after losing every bookshop")
	}
	if comp.Behaviour() != "day-coarse" {
		t.Errorf("behaviour = %s, want day-coarse", comp.Behaviour())
	}

	// --- 5. Executable export -------------------------------------------
	doc, err := comp.ExecutableBPEL()
	if err != nil {
		t.Fatal(err)
	}
	s := string(doc)
	if !strings.Contains(s, `name="day-coarse"`) || !strings.Contains(s, "partner=") {
		t.Errorf("executable document incomplete:\n%s", s)
	}
}
