// Multi-tenant facade tests: two Middleware instances sharing one
// sharded registry store must be fully isolated — candidates, epochs and
// cached selection plans — even under raced churn in the other tenant.
package qasom

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"qasom/internal/core"
	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
)

func seedShoppingServices(t *testing.T, mw *Middleware, prefix string) {
	t.Helper()
	for _, spec := range []struct{ kind, capability string }{
		{"browse", "BrowseCatalog"}, {"order", "OrderItem"}, {"pay", "CardPayment"},
	} {
		for i := 0; i < 4; i++ {
			err := mw.Publish(Service{
				ID:         fmt.Sprintf("%s-%s-%d", prefix, spec.kind, i),
				Capability: spec.capability,
				QoS: map[string]float64{
					"responseTime": 40 + float64(5*i), "price": 5,
					"availability": 0.95, "reliability": 0.9, "throughput": 40,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestDifferentialMultiTenantChurnRaced shares one 8-shard store between
// tenants A and B and races B-side churn (on the very capabilities A's
// task uses) against A-side cache probes. Isolation means A's epoch
// snapshot NEVER moves, its cached plan stays valid throughout, every
// hit DeepEquals a fresh recomputation, and no B service ever appears in
// an A assignment. Run under -race by the CI quick gate.
func TestDifferentialMultiTenantChurnRaced(t *testing.T) {
	store := registry.NewStore(semantics.PervasiveWithScenarios(), registry.StoreOptions{Shards: 8})
	mwA, err := New(Options{Obs: obs.NewHub(), Store: store, TenantID: "tenant-a"})
	if err != nil {
		t.Fatal(err)
	}
	mwB, err := New(Options{Obs: obs.NewHub(), Store: store, TenantID: "tenant-b"})
	if err != nil {
		t.Fatal(err)
	}
	seedShoppingServices(t, mwA, "a")
	seedShoppingServices(t, mwB, "b")
	if store.Len() != 24 {
		t.Fatalf("store.Len = %d, want 24 across both tenants", store.Len())
	}

	const doc = `<process name="tenant-shopping" concept="Shopping">
	  <sequence>
	    <invoke activity="browse" concept="BrowseCatalog"/>
	    <invoke activity="order" concept="OrderItem"/>
	    <invoke activity="pay" concept="Payment"/>
	  </sequence>
	</process>`
	req := Request{
		Task:        doc,
		Constraints: []Constraint{{Property: "responseTime", Bound: 500}},
	}
	tk, err := mwA.resolveTask(doc)
	if err != nil {
		t.Fatal(err)
	}
	coreReq := &core.Request{
		Task:        tk,
		Properties:  mwA.props,
		Constraints: []qos.Constraint{{Property: "responseTime", Bound: 500}},
		Approach:    qos.Pessimistic,
	}
	key := planCacheKey(tk, coreReq)

	// Populate A's cache once, then pin its epoch snapshot: nothing that
	// happens in tenant B may ever move it.
	if _, err := mwA.Compose(req); err != nil {
		t.Fatal(err)
	}
	pinned := mwA.planEpochs(nil, tk)

	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churn := func(capability, prefix string) {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("%s-%d", prefix, i%4)
			err := mwB.Publish(Service{
				ID: id, Capability: capability,
				QoS: map[string]float64{
					"responseTime": 30 + float64(i%10), "price": 4,
					"availability": 0.96, "reliability": 0.92, "throughput": 45,
				},
			})
			if err != nil {
				t.Error(err)
				return
			}
			mwB.Withdraw(id)
		}
	}
	churnWG.Add(2)
	go churn("OrderItem", "b-churn-ord")    // same capability A's task uses
	go churn("BrowseCatalog", "b-churn-br") // and the same shard-keyed concepts again

	const verifiers = 4
	const iterations = 100
	var verifyWG sync.WaitGroup
	var hits int64
	var statMu sync.Mutex
	errc := make(chan error, verifiers)
	for g := 0; g < verifiers; g++ {
		verifyWG.Add(1)
		go func() {
			defer verifyWG.Done()
			localHits := int64(0)
			for i := 0; i < iterations; i++ {
				snap := mwA.planEpochs(nil, tk)
				if !equalEpochs(snap, pinned) {
					errc <- fmt.Errorf("tenant-b churn moved tenant-a epochs: %v -> %v", pinned, snap)
					return
				}
				cached := mwA.plans.get(key, snap)
				if cached == nil {
					errc <- fmt.Errorf("tenant-a cache entry invalidated by tenant-b churn")
					return
				}
				localHits++
				for act, cand := range cached.Assignment {
					if strings.HasPrefix(string(cand.Service.ID), "b-") {
						errc <- fmt.Errorf("tenant-b service %q bound to tenant-a activity %q", cand.Service.ID, act)
						return
					}
				}
				// Every hit must be bit-identical to a fresh recomputation —
				// guaranteed comparable because A's epochs are pinned.
				candidates, err := core.GatherCandidates(t.Context(), tk, mwA.reg, mwA.props)
				if err != nil {
					errc <- err
					return
				}
				fresh, err := mwA.selector.SelectContext(t.Context(), coreReq, candidates)
				if err != nil {
					errc <- err
					return
				}
				if !reflect.DeepEqual(cached.Assignment, fresh.Assignment) ||
					cached.Utility != fresh.Utility ||
					cached.Feasible != fresh.Feasible ||
					!reflect.DeepEqual(cached.Aggregated, fresh.Aggregated) ||
					!reflect.DeepEqual(cached.Alternates, fresh.Alternates) {
					errc <- fmt.Errorf("tenant-a cached plan diverged from fresh recomputation")
					return
				}
			}
			statMu.Lock()
			hits += localHits
			statMu.Unlock()
		}()
	}
	verifyWG.Wait()
	close(stop)
	churnWG.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if hits == 0 {
		t.Fatal("differential never exercised a cache hit")
	}
	// Sanity check the other direction: B's own epochs DID move under its
	// churn (the isolation above is not a frozen-store artefact).
	bEpochs := mwB.reg.CapabilityEpochs(nil, semantics.ConceptID("OrderItem"))
	if bEpochs[0] == 0 {
		t.Error("tenant-b churn never moved its own epochs — test exercised nothing")
	}
	t.Logf("multi-tenant differential: %d pinned hits compared", hits)
}

// TestSharedStoreTenantViews pins the facade wiring: instances attached
// to one Store see their own services only, and the store's ontology is
// the shared semantic model.
func TestSharedStoreTenantViews(t *testing.T) {
	store := registry.NewStore(semantics.PervasiveWithScenarios(), registry.StoreOptions{Shards: 4})
	mwA, err := New(Options{Obs: obs.NewHub(), Store: store, TenantID: "a"})
	if err != nil {
		t.Fatal(err)
	}
	mwB, err := New(Options{Obs: obs.NewHub(), Store: store, TenantID: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if mwA.Ontology() != store.Ontology() || mwB.Ontology() != store.Ontology() {
		t.Error("shared store's ontology not adopted by the tenants")
	}
	if err := mwA.Publish(Service{ID: "s1", Capability: "BookSale",
		QoS: map[string]float64{"responseTime": 40, "price": 5, "availability": 0.95, "reliability": 0.9, "throughput": 40}}); err != nil {
		t.Fatal(err)
	}
	if mwA.ServiceCount() != 1 || mwB.ServiceCount() != 0 {
		t.Errorf("ServiceCount: a=%d b=%d, want 1 and 0", mwA.ServiceCount(), mwB.ServiceCount())
	}
	if mwB.Withdraw("s1") {
		t.Error("tenant-b withdrew tenant-a's service")
	}
	if !mwA.Withdraw("s1") {
		t.Error("tenant-a could not withdraw its own service")
	}
}
