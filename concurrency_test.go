// Tests for the concurrent composition pipeline: context cancellation
// through ComposeContext and many concurrent compositions against one
// Middleware while the service population churns (run with -race).
package qasom_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"qasom"
)

// newChurnMall publishes 5 stable services per capability (these never
// leave, so compositions always find candidates) and returns the
// middleware.
func newChurnMall(t *testing.T) *qasom.Middleware {
	t.Helper()
	mw, err := qasom.New()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []struct{ prefix, capability string }{
		{"browse", "BrowseCatalog"}, {"order", "OrderItem"}, {"pay", "CardPayment"},
	} {
		for i := 0; i < 5; i++ {
			err := mw.Publish(qasom.Service{
				ID:         fmt.Sprintf("%s-%d", spec.prefix, i),
				Capability: spec.capability,
				QoS: map[string]float64{
					"responseTime": 40 + float64(5*i), "price": 5,
					"availability": 0.95, "reliability": 0.9, "throughput": 40,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return mw
}

const churnTask = `<process name="churn-shopping" concept="Shopping">
  <sequence>
    <invoke activity="browse" concept="BrowseCatalog"/>
    <invoke activity="order" concept="OrderItem"/>
    <invoke activity="pay" concept="Payment"/>
  </sequence>
</process>`

func TestComposeContextCancelled(t *testing.T) {
	mw := newChurnMall(t)
	before := struct {
		services        int
		ontologyVersion uint64
		ontologyLen     int
	}{mw.ServiceCount(), mw.Ontology().Version(), mw.Ontology().Len()}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := mw.ComposeContext(ctx, qasom.Request{
		Task:        churnTask,
		Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 300}},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ComposeContext on cancelled ctx = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled compose took %v, want prompt return", elapsed)
	}
	// A cancelled compose must leave registry and ontology unmutated.
	if mw.ServiceCount() != before.services {
		t.Errorf("registry mutated by cancelled compose: %d services, want %d",
			mw.ServiceCount(), before.services)
	}
	if v := mw.Ontology().Version(); v != before.ontologyVersion {
		t.Errorf("ontology mutated by cancelled compose: version %d, want %d", v, before.ontologyVersion)
	}
	if n := mw.Ontology().Len(); n != before.ontologyLen {
		t.Errorf("ontology concept count changed: %d, want %d", n, before.ontologyLen)
	}
	// The middleware still composes normally afterwards.
	comp, err := mw.Compose(qasom.Request{Task: churnTask})
	if err != nil || comp == nil {
		t.Fatalf("compose after cancellation: %v", err)
	}
}

func TestConcurrentComposeWithChurn(t *testing.T) {
	mw := newChurnMall(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const composers = 8
	const iterations = 25
	var churnWG, composeWG sync.WaitGroup
	stop := make(chan struct{})

	// Churners publish and withdraw extra services while selections run.
	for c := 0; c < 2; c++ {
		churnWG.Add(1)
		go func(c int) {
			defer churnWG.Done()
			caps := []string{"BrowseCatalog", "OrderItem", "CardPayment"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("churn%d-%d", c, i%6)
				err := mw.Publish(qasom.Service{
					ID:         id,
					Capability: caps[i%len(caps)],
					QoS: map[string]float64{
						"responseTime": 30 + float64(i%20), "price": 4,
						"availability": 0.96, "reliability": 0.92, "throughput": 45,
					},
				})
				if err != nil {
					t.Error(err)
					return
				}
				mw.Withdraw(id)
			}
		}(c)
	}

	errc := make(chan error, composers)
	for g := 0; g < composers; g++ {
		composeWG.Add(1)
		go func() {
			defer composeWG.Done()
			for i := 0; i < iterations; i++ {
				comp, err := mw.ComposeContext(ctx, qasom.Request{
					Task:        churnTask,
					Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 500}},
				})
				if err != nil {
					errc <- err
					return
				}
				if len(comp.Bindings()) != 3 {
					errc <- fmt.Errorf("composition with %d bindings", len(comp.Bindings()))
					return
				}
			}
		}()
	}

	// Composers run a bounded number of iterations; wait for them, then
	// stop the churners and surface any error.
	composersDone := make(chan struct{})
	go func() {
		composeWG.Wait()
		close(composersDone)
	}()
	select {
	case <-composersDone:
	case <-ctx.Done():
		close(stop)
		churnWG.Wait()
		t.Fatal("composers did not finish before the test deadline")
	}
	close(stop)
	churnWG.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("concurrent compose failed: %v", err)
	}
}
