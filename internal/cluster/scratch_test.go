package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestScratchKMeans1DMatchesGeneric pins the bit-exact equivalence the
// pooled hot path relies on: for identical inputs and seeds the scratch
// path must return exactly the generic KMeans1D result — centroids,
// assignment, sizes, iterations and inertia — across both seeding
// strategies, duplicate-heavy inputs and k larger than distinct count.
func TestScratchKMeans1DMatchesGeneric(t *testing.T) {
	var s Scratch
	gen := rand.New(rand.NewSource(42))
	shapes := []func(n int) float64{
		func(n int) float64 { return gen.NormFloat64()*15 + 50 },
		func(n int) float64 { return float64(n % 4) }, // heavy duplicates
		func(n int) float64 { return gen.Float64() },
	}
	for _, seeding := range []Seeding{SeedPlusPlus, SeedUniform} {
		for si, shape := range shapes {
			for _, n := range []int{1, 2, 7, 50, 300} {
				values := make([]float64, n)
				for i := range values {
					values[i] = shape(i)
				}
				for seed := int64(1); seed <= 5; seed++ {
					for _, k := range []int{1, 2, 4, 6} {
						want, err := KMeans1D(values, k, Options{
							Seeding: seeding, Rand: rand.New(rand.NewSource(seed)),
						})
						if err != nil {
							t.Fatal(err)
						}
						got, err := s.KMeans1D(values, k, Options{
							Seeding: seeding, Rand: rand.New(rand.NewSource(seed)),
						})
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("seeding=%d shape=%d n=%d seed=%d k=%d:\n generic %+v\n scratch %+v",
								seeding, si, n, seed, k, want, got)
						}
					}
				}
			}
		}
	}
}

// TestScratchKMeans1DValidation mirrors the generic validation errors.
func TestScratchKMeans1DValidation(t *testing.T) {
	var s Scratch
	for _, tt := range []struct {
		name   string
		values []float64
		k      int
	}{
		{"no points", nil, 2},
		{"k zero", []float64{1}, 0},
		{"nan", []float64{math.NaN()}, 1},
		{"inf", []float64{math.Inf(-1)}, 1},
	} {
		if _, err := s.KMeans1D(tt.values, tt.k, Options{}); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
}

// TestScratchRanksIntoMatchesRanks1D: the insertion-sort stable ordering
// must reproduce sort.SliceStable's ranks exactly, including ties from
// duplicate centroids.
func TestScratchRanksIntoMatchesRanks1D(t *testing.T) {
	var s Scratch
	gen := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 3 + gen.Intn(60)
		values := make([]float64, n)
		for i := range values {
			values[i] = float64(gen.Intn(6)) // few distinct values → tied centroids
		}
		res, err := KMeans1D(values, 4, Options{Rand: rand.New(rand.NewSource(int64(trial)))})
		if err != nil {
			t.Fatal(err)
		}
		for _, hb := range []bool{true, false} {
			want := Ranks1D(res, hb)
			got := s.RanksInto(make([]int, len(res.Assign)), res, hb)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d hb=%v: want %v got %v", trial, hb, want, got)
			}
		}
	}
}

// TestScratchKMeans1DZeroAllocSteadyState enforces the pooling payoff: a
// warmed scratch must cluster without allocating at all.
func TestScratchKMeans1DZeroAllocSteadyState(t *testing.T) {
	var s Scratch
	rng := rand.New(rand.NewSource(11))
	values := make([]float64, 300)
	for i := range values {
		values[i] = rng.NormFloat64()*15 + 50
	}
	ranks := make([]int, len(values))
	run := func() {
		res, err := s.KMeans1D(values, 4, Options{Rand: rng})
		if err != nil {
			t.Fatal(err)
		}
		s.RanksInto(ranks, res, true)
	}
	run() // warm the buffers
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Errorf("warmed scratch KMeans1D allocates %.1f/op, want 0", avg)
	}
}

func BenchmarkScratchKMeans1D(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	values := make([]float64, 300)
	for i := range values {
		values[i] = rng.NormFloat64()*15 + 50
	}
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.KMeans1D(values, 4, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
