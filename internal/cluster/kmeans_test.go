package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKMeansValidation(t *testing.T) {
	tests := []struct {
		name   string
		points [][]float64
		k      int
	}{
		{"no points", nil, 2},
		{"k zero", [][]float64{{1}}, 0},
		{"k negative", [][]float64{{1}}, -1},
		{"zero dim", [][]float64{{}}, 1},
		{"ragged", [][]float64{{1}, {1, 2}}, 1},
		{"nan", [][]float64{{math.NaN()}}, 1},
		{"inf", [][]float64{{math.Inf(1)}}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := KMeans(tt.points, tt.k, Options{}); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	points := [][]float64{
		{0.1}, {0.2}, {0.15}, // low group
		{5.0}, {5.1}, {4.9}, // high group
	}
	res, err := KMeans(points, 2, Options{})
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	if res.K() != 2 {
		t.Fatalf("K = %d, want 2", res.K())
	}
	if res.Assign[0] != res.Assign[1] || res.Assign[1] != res.Assign[2] {
		t.Errorf("low group split: %v", res.Assign)
	}
	if res.Assign[3] != res.Assign[4] || res.Assign[4] != res.Assign[5] {
		t.Errorf("high group split: %v", res.Assign)
	}
	if res.Assign[0] == res.Assign[3] {
		t.Errorf("groups merged: %v", res.Assign)
	}
}

func TestKMeansReducesKForFewDistinctPoints(t *testing.T) {
	points := [][]float64{{1}, {1}, {2}, {2}}
	res, err := KMeans(points, 5, Options{})
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	if res.K() != 2 {
		t.Errorf("K = %d, want 2 (only 2 distinct points)", res.K())
	}
	for c, size := range res.Sizes {
		if size == 0 {
			t.Errorf("cluster %d is empty", c)
		}
	}
}

func TestKMeansDeterministicByDefault(t *testing.T) {
	points := make([][]float64, 100)
	rng := rand.New(rand.NewSource(7))
	for i := range points {
		points[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	a, err := KMeans(points, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("default options should be deterministic")
		}
	}
}

func TestKMeans1D(t *testing.T) {
	values := []float64{1, 2, 1.5, 10, 11, 10.5, 20, 21}
	res, err := KMeans1D(values, 3, Options{})
	if err != nil {
		t.Fatalf("KMeans1D: %v", err)
	}
	if res.K() != 3 {
		t.Fatalf("K = %d, want 3", res.K())
	}
	if res.Assign[0] != res.Assign[1] {
		t.Errorf("1,2 should share a cluster: %v", res.Assign)
	}
	if res.Assign[0] == res.Assign[6] {
		t.Errorf("1 and 20 should be in different clusters: %v", res.Assign)
	}
}

func TestRankCentroids1D(t *testing.T) {
	values := []float64{1, 1.1, 10, 10.1, 20, 20.2}
	res, err := KMeans1D(values, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// higherBetter: rank 1 should be the ~20 cluster.
	order := RankCentroids1D(res, true)
	if got := res.Centroids[order[0]][0]; got < 15 {
		t.Errorf("best cluster centroid = %g, want ~20", got)
	}
	// lower better: rank 1 should be the ~1 cluster.
	order = RankCentroids1D(res, false)
	if got := res.Centroids[order[0]][0]; got > 5 {
		t.Errorf("best cluster centroid = %g, want ~1", got)
	}
}

func TestRanks1D(t *testing.T) {
	values := []float64{1, 20, 1.2, 19.5}
	res, err := KMeans1D(values, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ranks := Ranks1D(res, false) // lower better
	if ranks[0] != 1 || ranks[2] != 1 {
		t.Errorf("low values should have rank 1: %v", ranks)
	}
	if ranks[1] != 2 || ranks[3] != 2 {
		t.Errorf("high values should have rank 2: %v", ranks)
	}
}

func TestSeedingStrategies(t *testing.T) {
	points := make([][]float64, 60)
	rng := rand.New(rand.NewSource(3))
	for i := range points {
		points[i] = []float64{rng.NormFloat64()}
	}
	for _, s := range []Seeding{SeedPlusPlus, SeedUniform} {
		res, err := KMeans(points, 4, Options{Seeding: s, Rand: rand.New(rand.NewSource(5))})
		if err != nil {
			t.Fatalf("seeding %d: %v", s, err)
		}
		if res.K() != 4 {
			t.Errorf("seeding %d: K = %d, want 4", s, res.K())
		}
		for c, size := range res.Sizes {
			if size == 0 {
				t.Errorf("seeding %d: cluster %d empty", s, c)
			}
		}
	}
}

func TestKMeansSinglePoint(t *testing.T) {
	res, err := KMeans([][]float64{{3.5}}, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 1 || res.Assign[0] != 0 {
		t.Errorf("single point should yield one cluster: %+v", res)
	}
	if res.Inertia != 0 {
		t.Errorf("single point inertia = %g, want 0", res.Inertia)
	}
}

func TestQuickKMeansInvariants(t *testing.T) {
	// For any input: every point assigned, every cluster non-empty,
	// inertia non-negative, centroid count ≤ min(k, distinct points).
	f := func(raw []float64, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		values := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			values = append(values, math.Mod(x, 1e6))
		}
		if len(values) == 0 {
			return true
		}
		k := int(kRaw%5) + 1
		res, err := KMeans1D(values, k, Options{})
		if err != nil {
			return false
		}
		if len(res.Assign) != len(values) {
			return false
		}
		if res.K() > k {
			return false
		}
		for _, c := range res.Assign {
			if c < 0 || c >= res.K() {
				return false
			}
		}
		for _, size := range res.Sizes {
			if size == 0 {
				return false
			}
		}
		return res.Inertia >= 0 && !math.IsNaN(res.Inertia)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickRanksCoverAllRanks(t *testing.T) {
	f := func(raw []float64) bool {
		values := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				values = append(values, math.Mod(x, 1000))
			}
		}
		if len(values) < 3 {
			return true
		}
		res, err := KMeans1D(values, 3, Options{})
		if err != nil {
			return false
		}
		ranks := Ranks1D(res, false)
		seen := make(map[int]bool)
		for _, r := range ranks {
			if r < 1 || r > res.K() {
				return false
			}
			seen[r] = true
		}
		return len(seen) == res.K()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKMeans1D(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	values := make([]float64, 300)
	for i := range values {
		values[i] = rng.NormFloat64()*15 + 50
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans1D(values, 4, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRepairEmptyClusters(t *testing.T) {
	// Adversarial seeding: uniform seeding can pick two near-identical
	// seeds, leaving one cluster empty after the first assignment; the
	// repair step must re-seed it so every returned cluster is non-empty.
	values := []float64{0, 0.0001, 0.0002, 100, 100.0001, 200}
	for seed := int64(1); seed <= 20; seed++ {
		res, err := KMeans1D(values, 3, Options{
			Seeding: SeedUniform,
			Rand:    rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			t.Fatal(err)
		}
		for c, size := range res.Sizes {
			if size == 0 {
				t.Fatalf("seed %d: cluster %d empty (sizes %v)", seed, c, res.Sizes)
			}
		}
	}
}

func TestKMeansManyDuplicatePoints(t *testing.T) {
	// Mostly duplicates with k near the distinct count stresses the
	// empty-cluster repair path.
	values := make([]float64, 40)
	for i := range values {
		values[i] = float64(i % 3) // only 3 distinct values
	}
	res, err := KMeans1D(values, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 3 {
		t.Fatalf("K = %d", res.K())
	}
	for _, size := range res.Sizes {
		if size == 0 {
			t.Fatal("empty cluster survived repair")
		}
	}
}
