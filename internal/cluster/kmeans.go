// Package cluster provides the K-means clustering substrate of QASSA's
// local selection phase: candidate services are clustered per QoS
// property into ranked quality clusters. Both the general k-dimensional
// algorithm and a fast 1-D specialisation are provided; seeding is
// deterministic given the caller's random source (k-means++ by default,
// with a naive uniform alternative kept for the seeding ablation).
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Seeding selects the initial-centroid strategy.
type Seeding int

// Seeding strategies.
const (
	// SeedPlusPlus is k-means++ (D² sampling): spread initial centroids,
	// better and more stable clusters.
	SeedPlusPlus Seeding = iota + 1
	// SeedUniform picks k distinct points uniformly at random; kept as
	// the ablation baseline.
	SeedUniform
)

// Options tune a clustering run.
type Options struct {
	// MaxIterations bounds Lloyd iterations; 0 means the default (50).
	MaxIterations int
	// Seeding selects the initialisation strategy; 0 means SeedPlusPlus.
	Seeding Seeding
	// Rand drives all random choices; nil means a fixed-seed source so
	// results are reproducible by default.
	Rand *rand.Rand
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 50
	}
	if o.Seeding == 0 {
		o.Seeding = SeedPlusPlus
	}
	if o.Rand == nil {
		o.Rand = rand.New(rand.NewSource(1))
	}
	return o
}

// Result is the outcome of a clustering run.
type Result struct {
	// Centroids holds the K cluster centres.
	Centroids [][]float64
	// Assign maps each input point to its cluster index.
	Assign []int
	// Sizes counts the points per cluster.
	Sizes []int
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
}

// K returns the number of clusters.
func (r *Result) K() int { return len(r.Centroids) }

// KMeans clusters points into k groups with Lloyd's algorithm. Points
// must be non-empty and share one dimensionality; when k exceeds the
// number of distinct points the effective k is reduced accordingly (every
// returned cluster is non-empty).
func KMeans(points [][]float64, k int, opts Options) (*Result, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k = %d, must be positive", k)
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("cluster: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
		for _, x := range p {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("cluster: point %d contains NaN/Inf", i)
			}
		}
	}
	if d := distinctCount(points); k > d {
		k = d
	}
	o := opts.withDefaults()

	centroids := seed(points, k, o)
	assign := make([]int, len(points))
	sizes := make([]int, k)
	res := &Result{}
	for iter := 0; iter < o.MaxIterations; iter++ {
		res.Iterations = iter + 1
		changed := assignPoints(points, centroids, assign)
		for i := range sizes {
			sizes[i] = 0
		}
		for _, c := range assign {
			sizes[c]++
		}
		repairEmpty(points, centroids, assign, sizes, o.Rand)
		updateCentroids(points, centroids, assign, sizes)
		if !changed && iter > 0 {
			break
		}
	}
	// Final assignment against the last centroids.
	assignPoints(points, centroids, assign)
	for i := range sizes {
		sizes[i] = 0
	}
	for _, c := range assign {
		sizes[c]++
	}
	res.Centroids = centroids
	res.Assign = assign
	res.Sizes = sizes
	res.Inertia = inertia(points, centroids, assign)
	return res, nil
}

// KMeans1D clusters scalar values; it is the hot path of QASSA's local
// phase (one run per QoS property per activity).
func KMeans1D(values []float64, k int, opts Options) (*Result, error) {
	points := make([][]float64, len(values))
	backing := make([]float64, len(values))
	for i, v := range values {
		backing[i] = v
		points[i] = backing[i : i+1 : i+1]
	}
	return KMeans(points, k, opts)
}

// Scratch holds reusable buffers for repeated 1-D clustering runs: the
// pooled selection hot path clusters every QoS property of every
// activity per request, and the per-run maps and slices of the generic
// path dominated its allocation profile. A Scratch is not safe for
// concurrent use; pool one per worker (sync.Pool) and reuse it across
// runs. The zero value is ready to use.
type Scratch struct {
	centroids [][]float64
	centBack  []float64
	assign    []int
	sizes     []int
	dists     []float64
	seen      map[uint64]struct{}
	order     []int
	rankOf    []int
	result    Result
}

// grabInts returns *buf resized to n, reallocating only on growth.
func grabInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// resetSeen returns the scratch's cleared distinctness set.
func (s *Scratch) resetSeen() map[uint64]struct{} {
	if s.seen == nil {
		s.seen = make(map[uint64]struct{}, 64)
	}
	clear(s.seen)
	return s.seen
}

// distinct1D counts distinct values by bit pattern — the same
// distinctness the generic path derives from byte-encoded keys.
func (s *Scratch) distinct1D(values []float64) int {
	seen := s.resetSeen()
	for _, v := range values {
		seen[math.Float64bits(v)] = struct{}{}
	}
	return len(seen)
}

// KMeans1D is the allocation-free twin of the package-level KMeans1D:
// identical validation, seeding, Lloyd iterations and repair — the same
// floating-point operations in the same order, so results are
// bit-identical (TestScratchKMeans1DMatchesGeneric enforces it) — with
// every working buffer drawn from the scratch. The returned Result and
// its Centroids/Assign/Sizes are owned by the scratch and valid only
// until the next call on s.
func (s *Scratch) KMeans1D(values []float64, k int, opts Options) (*Result, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k = %d, must be positive", k)
	}
	for i, x := range values {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("cluster: point %d contains NaN/Inf", i)
		}
	}
	if d := s.distinct1D(values); k > d {
		k = d
	}
	o := opts.withDefaults()

	centroids := s.seed1D(values, k, o)
	assign := grabInts(&s.assign, len(values))
	sizes := grabInts(&s.sizes, k)
	res := &s.result
	*res = Result{}
	for iter := 0; iter < o.MaxIterations; iter++ {
		res.Iterations = iter + 1
		changed := assign1D(values, centroids, assign)
		for i := range sizes {
			sizes[i] = 0
		}
		for _, c := range assign {
			sizes[c]++
		}
		repairEmpty1D(values, centroids, assign, sizes, o.Rand)
		update1D(values, centroids, assign, sizes)
		if !changed && iter > 0 {
			break
		}
	}
	// Final assignment against the last centroids.
	assign1D(values, centroids, assign)
	for i := range sizes {
		sizes[i] = 0
	}
	for _, c := range assign {
		sizes[c]++
	}
	res.Centroids = centroids
	res.Assign = assign
	res.Sizes = sizes
	res.Inertia = inertia1D(values, centroids, assign)
	return res, nil
}

// seed1D mirrors seed for scalar values over scratch-owned centroid
// rows: the same random draws in the same order as the generic path.
func (s *Scratch) seed1D(values []float64, k int, o Options) [][]float64 {
	if cap(s.centBack) < k {
		s.centBack = make([]float64, k)
	}
	s.centBack = s.centBack[:k]
	centroids := s.centroids[:0]
	add := func(v float64) {
		i := len(centroids)
		row := s.centBack[i : i+1 : i+1]
		row[0] = v
		centroids = append(centroids, row)
	}
	switch o.Seeding {
	case SeedUniform:
		perm := o.Rand.Perm(len(values))
		used := s.resetSeen()
		for _, idx := range perm {
			bits := math.Float64bits(values[idx])
			if _, dup := used[bits]; dup {
				continue
			}
			used[bits] = struct{}{}
			add(values[idx])
			if len(centroids) == k {
				break
			}
		}
	default: // SeedPlusPlus
		add(values[o.Rand.Intn(len(values))])
		if cap(s.dists) < len(values) {
			s.dists = make([]float64, len(values))
		}
		dists := s.dists[:len(values)]
		for len(centroids) < k {
			total := 0.0
			for i, v := range values {
				d := math.Inf(1)
				for _, c := range centroids {
					dd := v - c[0]
					d = math.Min(d, dd*dd)
				}
				dists[i] = d
				total += d
			}
			var next int
			if total <= 0 {
				next = o.Rand.Intn(len(values))
			} else {
				target := o.Rand.Float64() * total
				acc := 0.0
				next = len(values) - 1
				for i, d := range dists {
					acc += d
					if acc >= target {
						next = i
						break
					}
				}
			}
			add(values[next])
		}
	}
	s.centroids = centroids
	return centroids
}

// assign1D mirrors assignPoints for scalar values.
func assign1D(values []float64, centroids [][]float64, assign []int) bool {
	changed := false
	for i, v := range values {
		best, bestD := 0, math.Inf(1)
		for c, centroid := range centroids {
			dd := v - centroid[0]
			if d := dd * dd; d < bestD {
				best, bestD = c, d
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed = true
		}
	}
	return changed
}

// repairEmpty1D mirrors repairEmpty for scalar values.
func repairEmpty1D(values []float64, centroids [][]float64, assign []int, sizes []int, rng *rand.Rand) {
	for c, size := range sizes {
		if size > 0 {
			continue
		}
		farIdx, farD := -1, -1.0
		for i, v := range values {
			if sizes[assign[i]] <= 1 {
				continue
			}
			dd := v - centroids[assign[i]][0]
			if d := dd * dd; d > farD {
				farIdx, farD = i, d
			}
		}
		if farIdx < 0 {
			farIdx = rng.Intn(len(values))
			if sizes[assign[farIdx]] <= 1 {
				continue
			}
		}
		sizes[assign[farIdx]]--
		assign[farIdx] = c
		sizes[c]++
		centroids[c][0] = values[farIdx]
	}
}

// update1D mirrors updateCentroids for scalar values.
func update1D(values []float64, centroids [][]float64, assign []int, sizes []int) {
	for c := range centroids {
		if sizes[c] == 0 {
			continue
		}
		centroids[c][0] = 0
	}
	for i, v := range values {
		centroids[assign[i]][0] += v
	}
	for c := range centroids {
		if sizes[c] == 0 {
			continue
		}
		centroids[c][0] /= float64(sizes[c])
	}
}

// inertia1D mirrors inertia for scalar values.
func inertia1D(values []float64, centroids [][]float64, assign []int) float64 {
	total := 0.0
	for i, v := range values {
		d := v - centroids[assign[i]][0]
		total += d * d
	}
	return total
}

// RanksInto is Ranks1D writing each point's quality rank into dst
// (len(dst) must equal len(r.Assign)), using scratch-owned ordering
// buffers. The centroid ordering is a stable sort — identical output to
// RankCentroids1D's sort.SliceStable — via insertion sort (K is tiny).
func (s *Scratch) RanksInto(dst []int, r *Result, higherBetter bool) []int {
	order := grabInts(&s.order, r.K())
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			ca, cb := r.Centroids[order[j-1]][0], r.Centroids[order[j]][0]
			beats := cb > ca
			if !higherBetter {
				beats = cb < ca
			}
			if !beats {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	rankOf := grabInts(&s.rankOf, r.K())
	for rank, cl := range order {
		rankOf[cl] = rank + 1
	}
	for i, cl := range r.Assign {
		dst[i] = rankOf[cl]
	}
	return dst
}

// RankCentroids1D returns cluster indices ordered from best to worst for
// a 1-D clustering, where "best" is the largest centroid when higherBetter
// and the smallest otherwise. The returned slice maps rank → cluster.
func RankCentroids1D(r *Result, higherBetter bool) []int {
	order := make([]int, r.K())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := r.Centroids[order[a]][0], r.Centroids[order[b]][0]
		if higherBetter {
			return ca > cb
		}
		return ca < cb
	})
	return order
}

// Ranks1D returns, for each input point, its cluster's quality rank
// (1 = best) for a 1-D clustering.
func Ranks1D(r *Result, higherBetter bool) []int {
	order := RankCentroids1D(r, higherBetter)
	rankOf := make([]int, r.K())
	for rank, cl := range order {
		rankOf[cl] = rank + 1
	}
	out := make([]int, len(r.Assign))
	for i, cl := range r.Assign {
		out[i] = rankOf[cl]
	}
	return out
}

func distinctCount(points [][]float64) int {
	seen := make(map[string]struct{}, len(points))
	var key []byte
	for _, p := range points {
		key = key[:0]
		for _, x := range p {
			bits := math.Float64bits(x)
			for s := 0; s < 64; s += 8 {
				key = append(key, byte(bits>>s))
			}
		}
		seen[string(key)] = struct{}{}
	}
	return len(seen)
}

func seed(points [][]float64, k int, o Options) [][]float64 {
	centroids := make([][]float64, 0, k)
	switch o.Seeding {
	case SeedUniform:
		perm := o.Rand.Perm(len(points))
		used := make(map[string]struct{}, k)
		for _, idx := range perm {
			key := fmt.Sprint(points[idx])
			if _, dup := used[key]; dup {
				continue
			}
			used[key] = struct{}{}
			centroids = append(centroids, clonePoint(points[idx]))
			if len(centroids) == k {
				break
			}
		}
	default: // SeedPlusPlus
		first := o.Rand.Intn(len(points))
		centroids = append(centroids, clonePoint(points[first]))
		dists := make([]float64, len(points))
		for len(centroids) < k {
			total := 0.0
			for i, p := range points {
				d := math.Inf(1)
				for _, c := range centroids {
					d = math.Min(d, sqDist(p, c))
				}
				dists[i] = d
				total += d
			}
			var next int
			if total <= 0 {
				next = o.Rand.Intn(len(points))
			} else {
				target := o.Rand.Float64() * total
				acc := 0.0
				next = len(points) - 1
				for i, d := range dists {
					acc += d
					if acc >= target {
						next = i
						break
					}
				}
			}
			centroids = append(centroids, clonePoint(points[next]))
		}
	}
	return centroids
}

func assignPoints(points, centroids [][]float64, assign []int) bool {
	changed := false
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for c, centroid := range centroids {
			if d := sqDist(p, centroid); d < bestD {
				best, bestD = c, d
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed = true
		}
	}
	return changed
}

// repairEmpty re-seeds empty clusters with the point farthest from its
// centroid, preserving the invariant that every cluster is non-empty.
func repairEmpty(points, centroids [][]float64, assign []int, sizes []int, rng *rand.Rand) {
	for c, size := range sizes {
		if size > 0 {
			continue
		}
		farIdx, farD := -1, -1.0
		for i, p := range points {
			if sizes[assign[i]] <= 1 {
				continue
			}
			if d := sqDist(p, centroids[assign[i]]); d > farD {
				farIdx, farD = i, d
			}
		}
		if farIdx < 0 {
			farIdx = rng.Intn(len(points))
			if sizes[assign[farIdx]] <= 1 {
				continue
			}
		}
		sizes[assign[farIdx]]--
		assign[farIdx] = c
		sizes[c]++
		copy(centroids[c], points[farIdx])
	}
}

func updateCentroids(points, centroids [][]float64, assign []int, sizes []int) {
	dim := len(points[0])
	for c := range centroids {
		if sizes[c] == 0 {
			continue
		}
		for d := 0; d < dim; d++ {
			centroids[c][d] = 0
		}
	}
	for i, p := range points {
		c := assign[i]
		for d, x := range p {
			centroids[c][d] += x
		}
	}
	for c := range centroids {
		if sizes[c] == 0 {
			continue
		}
		for d := 0; d < dim; d++ {
			centroids[c][d] /= float64(sizes[c])
		}
	}
}

func inertia(points, centroids [][]float64, assign []int) float64 {
	total := 0.0
	for i, p := range points {
		total += sqDist(p, centroids[assign[i]])
	}
	return total
}

func sqDist(a, b []float64) float64 {
	total := 0.0
	for i := range a {
		d := a[i] - b[i]
		total += d * d
	}
	return total
}

func clonePoint(p []float64) []float64 {
	out := make([]float64, len(p))
	copy(out, p)
	return out
}
