// Package resilience is the shared fault-tolerance layer of the
// composition pipeline (distributed selection and execution both wire
// through it): a retry/hedge/fallback policy with jittered exponential
// backoff and per-attempt deadlines, outcome classification (retryable
// vs terminal vs canceled), and a per-peer circuit breaker that skips a
// coordinator after consecutive failures. The thesis evaluates QASSA in
// ad hoc wireless environments where coordinator devices disappear and
// links degrade mid-exchange; this package is how the middleware keeps
// selecting and executing through that churn.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
)

// Class classifies the outcome of one attempt.
type Class int

const (
	// Terminal failures do not improve on retry against the same peer:
	// application-level errors (a coordinator that hosts no candidates,
	// a service that answered but reported functional failure). The
	// caller's terminal-failure handler (substitution, fallback) runs.
	Terminal Class = iota
	// Retryable failures are transient transport conditions — refused or
	// reset connections, truncated exchanges, per-attempt deadline
	// expiry — worth a backoff and another attempt.
	Retryable
	// Canceled means the caller's context ended: the whole operation
	// stops and reports context.Cause, never a generic i/o timeout.
	Canceled
)

// String names the class for span tags and error messages.
func (c Class) String() string {
	switch c {
	case Retryable:
		return "retryable"
	case Canceled:
		return "canceled"
	default:
		return "terminal"
	}
}

// classifiedError pins an explicit class onto an error, overriding the
// wire-level heuristics of ClassOf.
type classifiedError struct {
	class Class
	err   error
}

func (e *classifiedError) Error() string { return e.err.Error() }
func (e *classifiedError) Unwrap() error { return e.err }

// AsRetryable marks err as retryable regardless of its shape (fault
// injectors and transports use it for transient conditions the
// heuristics cannot see).
func AsRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &classifiedError{class: Retryable, err: err}
}

// AsTerminal marks err as terminal (application-level failure).
func AsTerminal(err error) error {
	if err == nil {
		return nil
	}
	return &classifiedError{class: Terminal, err: err}
}

// ClassOf classifies an error: explicit marks first, then context
// sentinels, then transport heuristics (timeouts, refused/reset
// connections, truncated streams are retryable); everything else is
// terminal.
func ClassOf(err error) Class {
	if err == nil {
		return Terminal
	}
	var ce *classifiedError
	if errors.As(err, &ce) {
		return ce.class
	}
	if errors.Is(err, context.Canceled) {
		return Canceled
	}
	if errors.Is(err, context.DeadlineExceeded) {
		// A per-attempt deadline: the peer was too slow, another attempt
		// (or replica) can still win. Callers distinguish a canceled
		// *parent* context before consulting ClassOf.
		return Retryable
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return Retryable
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, net.ErrClosed) {
		return Retryable
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		// A truncated exchange: the peer crashed mid-reply.
		return Retryable
	}
	return Terminal
}

// CauseErr reports the context's cancellation cause when ctx ended, so
// a canceled selection surfaces "composition abandoned" (or whatever the
// caller recorded via context.WithCancelCause) instead of the generic
// i/o timeout the transport observed. Returns nil when ctx is live.
func CauseErr(ctx context.Context) error {
	if ctx.Err() == nil {
		return nil
	}
	cause := context.Cause(ctx)
	if cause == nil {
		cause = ctx.Err()
	}
	if errors.Is(cause, ctx.Err()) {
		return cause
	}
	// Keep both: the cause for the reader, the sentinel for errors.Is.
	return fmt.Errorf("%w: %w", ctx.Err(), cause)
}
