package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Target is one replica able to serve an attempt of the operation.
type Target[T any] struct {
	// Peer identifies the replica (breaker key, metrics label).
	Peer string
	// Call performs one attempt under the (possibly deadline-bounded)
	// attempt context.
	Call func(ctx context.Context) (T, error)
}

// Stats counts what one Execute run did; callers fold it into their
// selection/execution statistics and telemetry counters.
type Stats struct {
	// Attempts counts primary attempts (hedges excluded).
	Attempts int
	// Retries counts backoff-then-retry transitions.
	Retries int
	// Hedges counts hedged secondary requests fired.
	Hedges int
	// BreakerSkips counts replicas skipped because their breaker was open.
	BreakerSkips int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Attempts += other.Attempts
	s.Retries += other.Retries
	s.Hedges += other.Hedges
	s.BreakerSkips += other.BreakerSkips
}

// AttemptObserver, when non-nil, sees every individual call (primary and
// hedged) with its peer, wall time and outcome — the hook the metrics
// layer uses for per-peer latency histograms and failure counters.
type AttemptObserver func(peer string, d time.Duration, err error)

// ErrAllBreakersOpen is returned (wrapped) when every replica's breaker
// rejects the operation; it classifies as retryable so callers with a
// degradation path treat it like any other exhausted policy.
var ErrAllBreakersOpen = AsRetryable(errors.New("resilience: all replica breakers open"))

// Execute runs the operation under the policy against the replica set:
// per-attempt deadlines, bounded retries with jittered exponential
// backoff rotating across replicas, an optional hedged second request
// once the primary has been silent for HedgeDelay, and per-peer breaker
// bookkeeping in br (nil br disables the breaker). rng drives the
// backoff jitter (nil: no jitter); pass a source derived from the
// operation's seed to keep runs deterministic.
//
// The error returned on exhaustion wraps the last attempt's error; when
// the caller's context ends mid-operation the error wraps
// context.Cause(ctx) so cancellation is reported as such.
func Execute[T any](ctx context.Context, p Policy, br *BreakerSet, rng *rand.Rand,
	targets []Target[T], obs AttemptObserver) (T, Stats, error) {
	var zero T
	var st Stats
	p = p.WithDefaults()
	if len(targets) == 0 {
		return zero, st, AsTerminal(errors.New("resilience: no targets"))
	}
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if err := CauseErr(ctx); err != nil {
			return zero, st, err
		}
		idx, skipped, ok := pickTarget(targets, br, attempt)
		st.BreakerSkips += skipped
		if !ok {
			if lastErr == nil {
				lastErr = ErrAllBreakersOpen
			} else {
				lastErr = fmt.Errorf("%w (last failure: %w)", ErrAllBreakersOpen, lastErr)
			}
			break
		}
		st.Attempts++
		v, err := attemptOnce(ctx, p, br, targets, idx, &st, obs)
		if err == nil {
			return v, st, nil
		}
		if cerr := CauseErr(ctx); cerr != nil {
			return zero, st, cerr
		}
		lastErr = err
		if ClassOf(err) != Retryable {
			return zero, st, err
		}
		if attempt == p.MaxAttempts-1 {
			break
		}
		st.Retries++
		if !Sleep(ctx, p.Backoff(attempt, rng)) {
			return zero, st, CauseErr(ctx)
		}
	}
	return zero, st, fmt.Errorf("resilience: policy exhausted after %d attempts: %w", st.Attempts, lastErr)
}

// pickTarget rotates over the replica set starting at the attempt index
// and returns the first peer whose breaker admits an attempt, counting
// the skipped ones.
func pickTarget[T any](targets []Target[T], br *BreakerSet, attempt int) (idx, skipped int, ok bool) {
	for off := 0; off < len(targets); off++ {
		i := (attempt + off) % len(targets)
		if br.Allow(targets[i].Peer) {
			return i, skipped, true
		}
		skipped++
	}
	return 0, skipped, false
}

// attemptOnce performs one policy attempt: the primary call under the
// per-attempt deadline, plus — when hedging is enabled and a second
// replica is admissible — a hedged call fired after HedgeDelay. The
// first success wins; the hedge loser is canceled through the attempt
// context.
func attemptOnce[T any](ctx context.Context, p Policy, br *BreakerSet,
	targets []Target[T], idx int, st *Stats, obs AttemptObserver) (T, error) {
	var zero T
	actx := ctx
	var cancel context.CancelFunc
	if p.AttemptTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
	} else {
		actx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	type outcome struct {
		v   T
		err error
	}
	results := make(chan outcome, 2) // buffered: the hedge loser never blocks
	var wg sync.WaitGroup
	defer wg.Wait()
	launch := func(t Target[T]) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			v, err := runTarget(actx, ctx, br, t)
			if obs != nil {
				obs(t.Peer, time.Since(start), err)
			}
			results <- outcome{v: v, err: err}
		}()
	}

	launch(targets[idx])
	outstanding := 1

	hedgeIdx, hedgeOK := -1, false
	if p.HedgeDelay > 0 && len(targets) > 1 {
		if j, _, ok := pickTarget(targets, br, idx+1); ok && j != idx {
			hedgeIdx, hedgeOK = j, true
		}
	}
	var hedgeC <-chan time.Time
	if hedgeOK {
		timer := time.NewTimer(p.HedgeDelay)
		defer timer.Stop()
		hedgeC = timer.C
	}

	var firstErr error
	for {
		select {
		case r := <-results:
			outstanding--
			if r.err == nil {
				cancel() // release the hedge loser promptly
				return r.v, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				return zero, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if outstanding > 0 && br.Allow(targets[hedgeIdx].Peer) {
				st.Hedges++
				launch(targets[hedgeIdx])
				outstanding++
			}
		case <-actx.Done():
			// The attempt deadline (or the caller) fired while calls are
			// in flight; the calls observe the same context and drain into
			// the buffered channel.
			if err := CauseErr(ctx); err != nil {
				return zero, err
			}
			// Per-attempt deadline: retryable by classification.
			for outstanding > 0 {
				r := <-results
				outstanding--
				if r.err == nil {
					return r.v, nil
				}
				if firstErr == nil {
					firstErr = r.err
				}
			}
			if firstErr == nil {
				firstErr = actx.Err()
			}
			return zero, firstErr
		}
	}
}

// runTarget performs one call and feeds the breaker: successes and real
// failures count, a loss to cancellation does not — neither the parent
// giving up nor a hedge winner canceling the loser penalises the peer.
func runTarget[T any](actx, parent context.Context, br *BreakerSet, t Target[T]) (T, error) {
	v, err := t.Call(actx)
	if err == nil {
		br.Record(t.Peer, true)
		return v, nil
	}
	var zero T
	if cerr := CauseErr(parent); cerr != nil {
		return zero, cerr
	}
	if ClassOf(err) == Canceled {
		return zero, err
	}
	br.Record(t.Peer, false)
	return zero, err
}

// Sleep waits d (skipping zero) unless ctx ends first; it reports
// whether the full wait elapsed (backoff waits across the pipeline use
// it so cancellation never sits out a backoff).
func Sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
