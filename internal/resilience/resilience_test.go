package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"qasom/internal/randx"
)

func TestPolicyWithDefaults(t *testing.T) {
	p := Policy{}.WithDefaults()
	if p.MaxAttempts != 3 {
		t.Errorf("MaxAttempts = %d, want 3", p.MaxAttempts)
	}
	if p.BaseBackoff != 5*time.Millisecond || p.MaxBackoff != 250*time.Millisecond {
		t.Errorf("backoff bounds = %s..%s, want 5ms..250ms", p.BaseBackoff, p.MaxBackoff)
	}
	if p.Multiplier != 2 || p.Jitter != 0.2 {
		t.Errorf("multiplier/jitter = %v/%v, want 2/0.2", p.Multiplier, p.Jitter)
	}
	if p.BreakerThreshold != 4 || p.BreakerCooldown != 2*time.Second {
		t.Errorf("breaker = %d/%s, want 4/2s", p.BreakerThreshold, p.BreakerCooldown)
	}
	if got := (Policy{MaxAttempts: -1}).WithDefaults().MaxAttempts; got != 1 {
		t.Errorf("negative MaxAttempts resolved to %d, want 1", got)
	}
}

func TestPolicyBackoff(t *testing.T) {
	p := Policy{Jitter: -1}.WithDefaults() // jitter off: exact expectations
	want := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
		40 * time.Millisecond, 80 * time.Millisecond, 160 * time.Millisecond,
		250 * time.Millisecond, 250 * time.Millisecond}
	for retry, w := range want {
		if got := p.Backoff(retry, nil); got != w {
			t.Errorf("Backoff(%d) = %s, want %s", retry, got, w)
		}
	}
	// Jittered backoff stays within ±Jitter and is deterministic per seed.
	p = Policy{}.WithDefaults()
	a := p.Backoff(2, randx.New(7))
	b := p.Backoff(2, randx.New(7))
	if a != b {
		t.Errorf("jittered backoff not deterministic per seed: %s vs %s", a, b)
	}
	lo, hi := time.Duration(float64(20*time.Millisecond)*0.8), time.Duration(float64(20*time.Millisecond)*1.2)
	if a < lo || a > hi {
		t.Errorf("jittered Backoff(2) = %s outside [%s, %s]", a, lo, hi)
	}
}

type fakeNetErr struct{ timeout bool }

func (e *fakeNetErr) Error() string   { return "fake net error" }
func (e *fakeNetErr) Timeout() bool   { return e.timeout }
func (e *fakeNetErr) Temporary() bool { return false }

func TestClassOf(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, Terminal},
		{"plain", errors.New("application failure"), Terminal},
		{"marked retryable", AsRetryable(errors.New("dropped")), Retryable},
		{"marked terminal", AsTerminal(io.EOF), Terminal},
		{"wrapped mark", fmt.Errorf("dial: %w", AsRetryable(errors.New("x"))), Retryable},
		{"canceled", context.Canceled, Canceled},
		{"deadline", context.DeadlineExceeded, Retryable},
		{"net timeout", &fakeNetErr{timeout: true}, Retryable},
		{"net non-timeout", &fakeNetErr{}, Terminal},
		{"refused", fmt.Errorf("dial: %w", syscall.ECONNREFUSED), Retryable},
		{"reset", syscall.ECONNRESET, Retryable},
		{"epipe", syscall.EPIPE, Retryable},
		{"closed", net.ErrClosed, Retryable},
		{"eof", io.EOF, Retryable},
		{"unexpected eof", io.ErrUnexpectedEOF, Retryable},
	}
	for _, c := range cases {
		if got := ClassOf(c.err); got != c.want {
			t.Errorf("ClassOf(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCauseErr(t *testing.T) {
	if err := CauseErr(context.Background()); err != nil {
		t.Fatalf("live context: CauseErr = %v, want nil", err)
	}
	boom := errors.New("composition abandoned")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(boom)
	err := CauseErr(ctx)
	if !errors.Is(err, boom) {
		t.Errorf("CauseErr does not wrap the cause: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("CauseErr dropped the context sentinel: %v", err)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	b := NewBreaker(2, 30*time.Millisecond)
	if !b.Allow() {
		t.Fatal("fresh breaker must allow")
	}
	b.Record(false)
	if !b.Allow() {
		t.Fatal("one failure under threshold must still allow")
	}
	b.Record(false)
	if b.Allow() {
		t.Fatal("breaker must open at the threshold")
	}
	time.Sleep(40 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooled-down breaker must admit a probe")
	}
	b.Record(true)
	if !b.Allow() || b.Open() {
		t.Fatal("success must close the breaker")
	}
	var nilB *Breaker
	if !nilB.Allow() {
		t.Fatal("nil breaker must be a no-op allow")
	}
	nilB.Record(false) // must not panic
}

func TestExecuteRetriesThenSucceeds(t *testing.T) {
	calls := 0
	targets := []Target[string]{{
		Peer: "p1",
		Call: func(ctx context.Context) (string, error) {
			calls++
			if calls < 3 {
				return "", AsRetryable(errors.New("transient"))
			}
			return "ok", nil
		},
	}}
	p := Policy{BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}
	v, st, err := Execute(context.Background(), p, nil, randx.New(1), targets, nil)
	if err != nil || v != "ok" {
		t.Fatalf("Execute = (%q, %v), want (ok, nil)", v, err)
	}
	if st.Attempts != 3 || st.Retries != 2 {
		t.Errorf("stats = %+v, want 3 attempts / 2 retries", st)
	}
}

func TestExecuteTerminalStopsImmediately(t *testing.T) {
	calls := 0
	boom := errors.New("no candidates")
	targets := []Target[int]{{Peer: "p1", Call: func(ctx context.Context) (int, error) {
		calls++
		return 0, boom
	}}}
	_, st, err := Execute(context.Background(), Policy{}, nil, nil, targets, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the terminal error", err)
	}
	if calls != 1 || st.Retries != 0 {
		t.Errorf("terminal failure retried: calls=%d stats=%+v", calls, st)
	}
}

func TestExecuteRotatesReplicas(t *testing.T) {
	var sequence []string
	mk := func(peer string, fail bool) Target[string] {
		return Target[string]{Peer: peer, Call: func(ctx context.Context) (string, error) {
			sequence = append(sequence, peer)
			if fail {
				return "", AsRetryable(errors.New("down"))
			}
			return peer, nil
		}}
	}
	p := Policy{BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}
	v, st, err := Execute(context.Background(), p, nil, nil,
		[]Target[string]{mk("dead", true), mk("live", false)}, nil)
	if err != nil || v != "live" {
		t.Fatalf("Execute = (%q, %v), want (live, nil)", v, err)
	}
	if len(sequence) != 2 || sequence[0] != "dead" || sequence[1] != "live" {
		t.Errorf("rotation sequence = %v, want [dead live]", sequence)
	}
	if st.Retries != 1 {
		t.Errorf("stats = %+v, want 1 retry", st)
	}
}

func TestExecuteBreakerSkips(t *testing.T) {
	br := NewBreakerSet(1, time.Minute)
	br.Record("dead", false) // open immediately (threshold 1)
	called := ""
	targets := []Target[string]{
		{Peer: "dead", Call: func(ctx context.Context) (string, error) {
			called = "dead"
			return "", errors.New("must not run")
		}},
		{Peer: "live", Call: func(ctx context.Context) (string, error) {
			called = "live"
			return "live", nil
		}},
	}
	v, st, err := Execute(context.Background(), Policy{}, br, nil, targets, nil)
	if err != nil || v != "live" || called != "live" {
		t.Fatalf("Execute = (%q, %v) called=%q, want live via live", v, err, called)
	}
	if st.BreakerSkips == 0 {
		t.Errorf("stats = %+v, want BreakerSkips > 0", st)
	}

	// Every breaker open: ErrAllBreakersOpen, no calls.
	br.Record("live", false)
	_, _, err = Execute(context.Background(), Policy{}, br, nil, targets, nil)
	if !errors.Is(err, ErrAllBreakersOpen) {
		t.Fatalf("err = %v, want ErrAllBreakersOpen", err)
	}
}

func TestExecuteHedgeWins(t *testing.T) {
	primaryStarted := make(chan struct{})
	targets := []Target[string]{
		{Peer: "slow", Call: func(ctx context.Context) (string, error) {
			close(primaryStarted)
			select {
			case <-time.After(5 * time.Second):
				return "slow", nil
			case <-ctx.Done():
				return "", ctx.Err()
			}
		}},
		{Peer: "fast", Call: func(ctx context.Context) (string, error) {
			return "fast", nil
		}},
	}
	p := Policy{HedgeDelay: 5 * time.Millisecond, AttemptTimeout: 10 * time.Second}
	br := NewBreakerSet(1, time.Minute)
	v, st, err := Execute(context.Background(), p, br, nil, targets, nil)
	if err != nil || v != "fast" {
		t.Fatalf("Execute = (%q, %v), want the hedge to win", v, err)
	}
	if st.Hedges != 1 {
		t.Errorf("stats = %+v, want 1 hedge", st)
	}
	<-primaryStarted
	// The canceled hedge loser must not have tripped its breaker
	// (threshold 1: a single recorded failure would open it).
	if !br.Allow("slow") {
		t.Error("hedge loser's cancellation penalised its breaker")
	}
}

func TestExecuteCancellationCause(t *testing.T) {
	boom := errors.New("user gave up")
	ctx, cancel := context.WithCancelCause(context.Background())
	targets := []Target[int]{{Peer: "p", Call: func(ctx context.Context) (int, error) {
		cancel(boom)
		<-ctx.Done()
		return 0, ctx.Err()
	}}}
	_, _, err := Execute(ctx, Policy{}, nil, nil, targets, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the cancellation cause", err)
	}
}

func TestExecuteExhaustion(t *testing.T) {
	calls := 0
	targets := []Target[int]{{Peer: "p", Call: func(ctx context.Context) (int, error) {
		calls++
		return 0, AsRetryable(errors.New("always down"))
	}}}
	p := Policy{MaxAttempts: 2, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}
	_, st, err := Execute(context.Background(), p, nil, nil, targets, nil)
	if err == nil || calls != 2 {
		t.Fatalf("err = %v calls = %d, want exhaustion after 2", err, calls)
	}
	if ClassOf(err) != Retryable {
		t.Errorf("exhaustion error lost its retryable class: %v", err)
	}
	if st.Attempts != 2 || st.Retries != 1 {
		t.Errorf("stats = %+v, want 2 attempts / 1 retry", st)
	}
}

func TestSleep(t *testing.T) {
	if !Sleep(context.Background(), 0) {
		t.Error("zero sleep must report elapsed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if Sleep(ctx, time.Minute) {
		t.Error("canceled sleep must report interrupted")
	}
}
