package resilience

import (
	"sync"
	"time"
)

// Breaker is a consecutive-failure circuit breaker for one peer. After
// threshold consecutive failures it rejects attempts for the cooldown;
// once the cooldown expires one probe is let through (half-open) and a
// success closes the breaker again.
type Breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time
}

// NewBreaker creates a breaker; threshold <= 0 means the breaker never
// opens.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether an attempt against the peer may proceed.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openUntil.IsZero() || !time.Now().Before(b.openUntil)
}

// Record feeds one attempt outcome into the breaker.
func (b *Breaker) Record(success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.consecutive = 0
		b.openUntil = time.Time{}
		return
	}
	b.consecutive++
	if b.threshold > 0 && b.consecutive >= b.threshold {
		b.openUntil = time.Now().Add(b.cooldown)
	}
}

// Open reports whether the breaker currently rejects attempts.
func (b *Breaker) Open() bool { return !b.Allow() }

// BreakerSet keys breakers by peer name. The nil set is a valid no-op
// (every peer allowed, outcomes dropped), so callers without breaker
// state never branch.
type BreakerSet struct {
	threshold int
	cooldown  time.Duration

	mu    sync.Mutex
	peers map[string]*Breaker
}

// NewBreakerSet creates a set whose breakers share threshold/cooldown
// (zero values resolve like Policy's: 4 failures, 2s cooldown).
func NewBreakerSet(threshold int, cooldown time.Duration) *BreakerSet {
	if threshold == 0 {
		threshold = 4
	}
	if cooldown == 0 {
		cooldown = 2 * time.Second
	}
	return &BreakerSet{threshold: threshold, cooldown: cooldown, peers: make(map[string]*Breaker)}
}

// For returns (creating on first use) the peer's breaker.
func (s *BreakerSet) For(peer string) *Breaker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.peers[peer]
	if b == nil {
		b = NewBreaker(s.threshold, s.cooldown)
		s.peers[peer] = b
	}
	return b
}

// Allow reports whether the peer's breaker admits an attempt.
func (s *BreakerSet) Allow(peer string) bool { return s.For(peer).Allow() }

// Record feeds an outcome into the peer's breaker.
func (s *BreakerSet) Record(peer string, success bool) { s.For(peer).Record(success) }
