package resilience

import (
	"math"
	"math/rand"
	"time"
)

// Policy bounds the fault-tolerance behaviour of one logical operation
// (a distributed local-phase exchange, a service invocation). The zero
// value is usable and resolves to the defaults documented per field.
type Policy struct {
	// MaxAttempts bounds attempts including the first; 0 means 3,
	// negative means exactly 1 (no retries).
	MaxAttempts int
	// AttemptTimeout is the per-attempt deadline layered under the
	// caller's context; 0 means no per-attempt deadline.
	AttemptTimeout time.Duration
	// BaseBackoff is the delay before the first retry; 0 means 5ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; 0 means 250ms.
	MaxBackoff time.Duration
	// Multiplier is the exponential growth factor; 0 means 2.
	Multiplier float64
	// Jitter is the relative backoff perturbation in [0,1] (0.2 = ±20%);
	// negative disables jitter, 0 means 0.2. Jitter draws come from the
	// caller's seeded source, so runs stay deterministic per seed.
	Jitter float64
	// HedgeDelay, when positive, fires a hedged second request at the
	// next replica once the primary has been silent this long; the first
	// reply wins. Zero disables hedging.
	HedgeDelay time.Duration
	// BreakerThreshold is the consecutive-failure count at which a
	// peer's breaker opens; 0 means 4, negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects a peer before
	// letting a probe through; 0 means 2s.
	BreakerCooldown time.Duration
}

// WithDefaults resolves the documented zero-value defaults.
func (p Policy) WithDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.MaxAttempts < 0 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = 5 * time.Millisecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 250 * time.Millisecond
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 4
	}
	if p.BreakerCooldown == 0 {
		p.BreakerCooldown = 2 * time.Second
	}
	return p
}

// Backoff computes the delay before retry number retry (0-based), with
// jitter drawn from rng (nil rng or non-positive jitter: no jitter).
// The policy must already be resolved via WithDefaults.
func (p Policy) Backoff(retry int, rng *rand.Rand) time.Duration {
	d := float64(p.BaseBackoff) * math.Pow(p.Multiplier, float64(retry))
	if d > float64(p.MaxBackoff) {
		d = float64(p.MaxBackoff)
	}
	if p.Jitter > 0 && rng != nil {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}
