package bpel

import (
	"strings"
	"testing"

	"qasom/internal/semantics"
	"qasom/internal/task"
)

const shoppingBPEL = `<?xml version="1.0"?>
<process name="shopping" concept="Shopping">
  <sequence>
    <invoke activity="browse" name="Browse catalog" concept="BrowseCatalog" inputs="ItemDescription" outputs="ItemList"/>
    <flow>
      <invoke activity="book" concept="BookSale" inputs="ItemList" outputs="OrderRecord"/>
      <invoke activity="media" concept="MediaSale" inputs="ItemList" outputs="OrderRecord"/>
    </flow>
    <if>
      <branch probability="0.8">
        <invoke activity="card" concept="CardPayment" inputs="OrderRecord" outputs="Receipt"/>
      </branch>
      <branch probability="0.2">
        <invoke activity="cash" concept="CashPayment" inputs="OrderRecord" outputs="Receipt"/>
      </branch>
    </if>
    <while minIterations="1" maxIterations="3" expectedIterations="2">
      <invoke activity="pickup" concept="PickupDesk" inputs="Receipt"/>
    </while>
  </sequence>
</process>`

func TestParseShoppingProcess(t *testing.T) {
	tk, err := ParseString(shoppingBPEL)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tk.Name != "shopping" || tk.Concept != semantics.ShoppingService {
		t.Errorf("task header = (%q, %q)", tk.Name, tk.Concept)
	}
	if got := tk.String(); got != "seq(browse, par(book, media), cho(card, cash), loop[1..3](pickup))" {
		t.Errorf("structure = %s", got)
	}
	browse := tk.ActivityByID("browse")
	if browse == nil {
		t.Fatal("browse activity missing")
	}
	if browse.Name != "Browse catalog" || browse.Concept != semantics.BrowseCatalog {
		t.Errorf("browse = %+v", browse)
	}
	if len(browse.Inputs) != 1 || browse.Inputs[0] != semantics.ItemDescription {
		t.Errorf("browse inputs = %v", browse.Inputs)
	}
	// Choice probabilities survive.
	var choice *task.Node
	tk.Walk(func(n *task.Node) {
		if n.Kind == task.PatternChoice {
			choice = n
		}
	})
	if choice == nil || len(choice.Probs) != 2 || choice.Probs[0] != 0.8 {
		t.Fatalf("choice probabilities lost: %+v", choice)
	}
	// Loop bounds survive.
	var loop *task.Node
	tk.Walk(func(n *task.Node) {
		if n.Kind == task.PatternLoop {
			loop = n
		}
	})
	if loop == nil || loop.Loop.Min != 1 || loop.Loop.Max != 3 || loop.Loop.Expected != 2 {
		t.Fatalf("loop bounds lost: %+v", loop)
	}
}

func TestParseImplicitSequenceInBranch(t *testing.T) {
	doc := `<process name="p" concept="C">
	  <if>
	    <branch>
	      <invoke activity="x"/>
	      <invoke activity="y"/>
	    </branch>
	    <branch><invoke activity="z"/></branch>
	  </if>
	</process>`
	tk, err := ParseString(doc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := tk.String(); got != "cho(seq(x, y), z)" {
		t.Errorf("structure = %s", got)
	}
	// No explicit probabilities → nil probs.
	if tk.Root.Probs != nil {
		t.Errorf("probs should be nil, got %v", tk.Root.Probs)
	}
}

func TestParseDirectChoiceChildren(t *testing.T) {
	doc := `<process name="p" concept="C">
	  <pick>
	    <invoke activity="x"/>
	    <invoke activity="y"/>
	  </pick>
	</process>`
	tk, err := ParseString(doc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := tk.String(); got != "cho(x, y)" {
		t.Errorf("structure = %s", got)
	}
}

func TestParseLoopDefaults(t *testing.T) {
	doc := `<process name="p" concept="C">
	  <while minIterations="4"><invoke activity="x"/></while>
	</process>`
	tk, err := ParseString(doc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := tk.String(); got != "loop[4..4](x)" {
		t.Errorf("structure = %s (max should default to min)", got)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"malformed xml", "<process"},
		{"wrong root", "<sequence/>"},
		{"unnamed process", `<process><invoke activity="a"/></process>`},
		{"empty process", `<process name="p"/>`},
		{"unsupported element", `<process name="p"><assign/></process>`},
		{"invoke without id", `<process name="p"><invoke concept="C"/></process>`},
		{"invoke with children", `<process name="p"><invoke activity="a"><invoke activity="b"/></invoke></process>`},
		{"empty sequence", `<process name="p"><sequence/></process>`},
		{"empty flow", `<process name="p"><flow/></process>`},
		{"empty if", `<process name="p"><if/></process>`},
		{"empty branch", `<process name="p"><if><branch/></if></process>`},
		{"empty while", `<process name="p"><while/></process>`},
		{"bad probability", `<process name="p"><if><branch probability="x"><invoke activity="a"/></branch></if></process>`},
		{"bad minIterations", `<process name="p"><while minIterations="x"><invoke activity="a"/></while></process>`},
		{"bad maxIterations", `<process name="p"><while maxIterations="x"><invoke activity="a"/></while></process>`},
		{"bad expectedIterations", `<process name="p"><while expectedIterations="x"><invoke activity="a"/></while></process>`},
		{"inverted loop bounds", `<process name="p"><while minIterations="5" maxIterations="2"><invoke activity="a"/></while></process>`},
		{"duplicate activities", `<process name="p"><sequence><invoke activity="a"/><invoke activity="a"/></sequence></process>`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseString(tt.doc); err == nil {
				t.Error("expected parse error")
			}
		})
	}
}

func TestRoundTrip(t *testing.T) {
	orig, err := ParseString(shoppingBPEL)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	doc, err := Marshal(orig)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Parse(doc)
	if err != nil {
		t.Fatalf("re-Parse: %v\ndocument:\n%s", err, doc)
	}
	if orig.String() != back.String() {
		t.Errorf("round trip changed structure:\n  orig: %s\n  back: %s", orig, back)
	}
	if back.ActivityByID("browse").Name != "Browse catalog" {
		t.Error("activity name lost in round trip")
	}
	if len(back.ActivityByID("book").Inputs) != 1 {
		t.Error("inputs lost in round trip")
	}
	var choice *task.Node
	back.Walk(func(n *task.Node) {
		if n.Kind == task.PatternChoice {
			choice = n
		}
	})
	if choice == nil || choice.Probs == nil || choice.Probs[0] != 0.8 {
		t.Error("probabilities lost in round trip")
	}
}

func TestMarshalRejectsInvalidTask(t *testing.T) {
	if _, err := Marshal(&task.Task{Name: "bad"}); err == nil {
		t.Error("Marshal of invalid task should fail")
	}
}

func TestMarshalIndentation(t *testing.T) {
	tk := task.Linear("line", "C", 2)
	doc, err := Marshal(tk)
	if err != nil {
		t.Fatal(err)
	}
	s := string(doc)
	if !strings.Contains(s, "<sequence>") || !strings.Contains(s, `<invoke activity="a1"`) {
		t.Errorf("unexpected document:\n%s", s)
	}
}
