package bpel

import (
	"testing"
)

// FuzzParse ensures the BPEL front end never panics and that every
// accepted document yields a valid task that survives a marshal/parse
// round trip.
func FuzzParse(f *testing.F) {
	f.Add(shoppingBPEL)
	f.Add(`<process name="p" concept="C"><invoke activity="a"/></process>`)
	f.Add(`<process name="p"><if><branch probability="0.5"><invoke activity="x"/></branch></if></process>`)
	f.Add(`<process name="p"><while minIterations="2" maxIterations="5"><invoke activity="x"/></while></process>`)
	f.Add(`<process name="p"><flow><invoke activity="x"/><invoke activity="y"/></flow></process>`)
	f.Add(`<process`)
	f.Add(``)
	f.Add(`<process name="p"><invoke activity="a" inputs="A,B" outputs="C"/></process>`)
	f.Fuzz(func(t *testing.T, doc string) {
		tk, err := ParseString(doc)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if verr := tk.Validate(); verr != nil {
			t.Fatalf("accepted document produced invalid task: %v\ndoc: %q", verr, doc)
		}
		out, err := Marshal(tk)
		if err != nil {
			t.Fatalf("accepted task failed to marshal: %v", err)
		}
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("marshalled task failed to re-parse: %v\n%s", err, out)
		}
		if back.String() != tk.String() {
			t.Fatalf("round trip changed structure: %s vs %s", tk, back)
		}
	})
}

// FuzzParseExecutable checks the executable variant never panics and
// bindings survive round trips.
func FuzzParseExecutable(f *testing.F) {
	orig, err := ParseString(shoppingBPEL)
	if err != nil {
		f.Fatal(err)
	}
	doc, err := MarshalExecutable(orig, map[string]Binding{"browse": {Service: "s1", Address: "tcp://x"}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(doc))
	f.Add(`<process name="p"><invoke activity="a" partner="svc"/></process>`)
	f.Fuzz(func(t *testing.T, doc string) {
		tk, bindings, err := ParseExecutable([]byte(doc))
		if err != nil {
			return
		}
		if tk == nil {
			t.Fatal("nil task without error")
		}
		for act, b := range bindings {
			if act == "" || b.Service == "" {
				t.Fatalf("degenerate binding %q → %+v", act, b)
			}
		}
	})
}
