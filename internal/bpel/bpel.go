// Package bpel implements the abstract-BPEL front end of QASOM: user
// tasks are specified as abstract BPEL processes (Chapter VI §2.3) and
// transformed into the internal task model and, from there, into
// behavioural graphs (the transformation measured in Fig. VI.13).
//
// The dialect covers the subset of abstract BPEL the thesis uses:
//
//	<process name="..." concept="...">
//	  <sequence> ... </sequence>
//	  <flow> ... </flow>                            (parallel)
//	  <if> <branch probability="0.7">...</branch> ... </if>
//	  <while minIterations="1" maxIterations="3" expectedIterations="2"> ... </while>
//	  <invoke activity="a1" name="..." concept="..." inputs="X,Y" outputs="Z"/>
//	</process>
package bpel

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"

	"qasom/internal/qos"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

// xmlNode is the generic parse tree: every element keeps its name,
// attributes and ordered children.
type xmlNode struct {
	XMLName  xml.Name
	Name     string    `xml:"name,attr"`
	Concept  string    `xml:"concept,attr"`
	Activity string    `xml:"activity,attr"`
	Inputs   string    `xml:"inputs,attr"`
	Outputs  string    `xml:"outputs,attr"`
	Prob     string    `xml:"probability,attr"`
	Partner  string    `xml:"partner,attr"`
	Address  string    `xml:"address,attr"`
	MinIter  string    `xml:"minIterations,attr"`
	MaxIter  string    `xml:"maxIterations,attr"`
	ExpIter  string    `xml:"expectedIterations,attr"`
	Children []xmlNode `xml:",any"`
}

// Parse reads an abstract-BPEL document and returns the equivalent task.
func Parse(doc []byte) (*task.Task, error) {
	var root xmlNode
	if err := xml.Unmarshal(doc, &root); err != nil {
		return nil, fmt.Errorf("bpel: malformed XML: %w", err)
	}
	if root.XMLName.Local != "process" {
		return nil, fmt.Errorf("bpel: root element is <%s>, want <process>", root.XMLName.Local)
	}
	if root.Name == "" {
		return nil, fmt.Errorf("bpel: <process> without name attribute")
	}
	body, err := convertChildren(root.Children)
	if err != nil {
		return nil, err
	}
	if body == nil {
		return nil, fmt.Errorf("bpel: process %q has no body", root.Name)
	}
	t := &task.Task{
		Name:    root.Name,
		Concept: semantics.ConceptID(root.Concept),
		Root:    body,
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("bpel: process %q: %w", root.Name, err)
	}
	return t, nil
}

// ParseString is Parse over a string document.
func ParseString(doc string) (*task.Task, error) { return Parse([]byte(doc)) }

// convertChildren converts a sibling list: one child converts directly,
// several form an implicit sequence.
func convertChildren(children []xmlNode) (*task.Node, error) {
	nodes := make([]*task.Node, 0, len(children))
	for i := range children {
		n, err := convert(&children[i])
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
	switch len(nodes) {
	case 0:
		return nil, nil
	case 1:
		return nodes[0], nil
	default:
		return task.Sequence(nodes...), nil
	}
}

func convert(x *xmlNode) (*task.Node, error) {
	switch x.XMLName.Local {
	case "invoke":
		return convertInvoke(x)
	case "sequence":
		return convertPattern(x, task.PatternSequence)
	case "flow":
		return convertPattern(x, task.PatternParallel)
	case "if", "pick", "switch":
		return convertChoice(x)
	case "while", "repeatUntil", "forEach":
		return convertLoop(x)
	default:
		return nil, fmt.Errorf("bpel: unsupported element <%s>", x.XMLName.Local)
	}
}

func convertInvoke(x *xmlNode) (*task.Node, error) {
	id := x.Activity
	if id == "" {
		id = x.Name
	}
	if id == "" {
		return nil, fmt.Errorf("bpel: <invoke> without activity or name attribute")
	}
	if len(x.Children) != 0 {
		return nil, fmt.Errorf("bpel: <invoke %s> must be empty", id)
	}
	return task.NewActivity(&task.Activity{
		ID:      id,
		Name:    x.Name,
		Concept: semantics.ConceptID(x.Concept),
		Inputs:  splitConcepts(x.Inputs),
		Outputs: splitConcepts(x.Outputs),
	}), nil
}

func convertPattern(x *xmlNode, kind task.Pattern) (*task.Node, error) {
	if len(x.Children) == 0 {
		return nil, fmt.Errorf("bpel: empty <%s>", x.XMLName.Local)
	}
	children := make([]*task.Node, 0, len(x.Children))
	for i := range x.Children {
		n, err := convert(&x.Children[i])
		if err != nil {
			return nil, err
		}
		children = append(children, n)
	}
	return &task.Node{Kind: kind, Children: children}, nil
}

func convertChoice(x *xmlNode) (*task.Node, error) {
	if len(x.Children) == 0 {
		return nil, fmt.Errorf("bpel: empty <%s>", x.XMLName.Local)
	}
	branches := make([]*task.Node, 0, len(x.Children))
	var probs []float64
	haveProbs := false
	for i := range x.Children {
		child := &x.Children[i]
		var n *task.Node
		var err error
		p := 0.0
		if child.XMLName.Local == "branch" || child.XMLName.Local == "else" || child.XMLName.Local == "elseif" {
			n, err = convertChildren(child.Children)
			if err == nil && n == nil {
				err = fmt.Errorf("bpel: empty <%s> branch", child.XMLName.Local)
			}
			if child.Prob != "" {
				p, err2 := strconv.ParseFloat(child.Prob, 64)
				if err2 != nil || p < 0 {
					return nil, fmt.Errorf("bpel: invalid branch probability %q", child.Prob)
				}
				haveProbs = true
				probs = append(probs, p)
			} else {
				probs = append(probs, 0)
			}
		} else {
			n, err = convert(child)
			probs = append(probs, p)
		}
		if err != nil {
			return nil, err
		}
		branches = append(branches, n)
	}
	if !haveProbs {
		probs = nil
	}
	return task.Choice(probs, branches...), nil
}

func convertLoop(x *xmlNode) (*task.Node, error) {
	body, err := convertChildren(x.Children)
	if err != nil {
		return nil, err
	}
	if body == nil {
		return nil, fmt.Errorf("bpel: empty <%s>", x.XMLName.Local)
	}
	loop := qos.Loop{Min: 1, Max: 1}
	if x.MinIter != "" {
		if loop.Min, err = strconv.Atoi(x.MinIter); err != nil {
			return nil, fmt.Errorf("bpel: invalid minIterations %q", x.MinIter)
		}
	}
	if x.MaxIter != "" {
		if loop.Max, err = strconv.Atoi(x.MaxIter); err != nil {
			return nil, fmt.Errorf("bpel: invalid maxIterations %q", x.MaxIter)
		}
	} else {
		loop.Max = loop.Min
	}
	if x.ExpIter != "" {
		if loop.Expected, err = strconv.ParseFloat(x.ExpIter, 64); err != nil {
			return nil, fmt.Errorf("bpel: invalid expectedIterations %q", x.ExpIter)
		}
	}
	if loop.Min < 0 || loop.Max < loop.Min {
		return nil, fmt.Errorf("bpel: loop bounds [%d,%d] invalid", loop.Min, loop.Max)
	}
	return task.LoopNode(loop, body), nil
}

func splitConcepts(s string) []semantics.ConceptID {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]semantics.ConceptID, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, semantics.ConceptID(p))
		}
	}
	return out
}

// Marshal renders a task back into the abstract-BPEL dialect.
func Marshal(t *task.Task) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("bpel: cannot marshal invalid task: %w", err)
	}
	var b strings.Builder
	b.WriteString(xml.Header)
	fmt.Fprintf(&b, "<process name=%q concept=%q>\n", t.Name, string(t.Concept))
	if err := writeNode(&b, t.Root, 1); err != nil {
		return nil, err
	}
	b.WriteString("</process>\n")
	return []byte(b.String()), nil
}

func writeNode(b *strings.Builder, n *task.Node, depth int) error {
	indent := strings.Repeat("  ", depth)
	switch n.Kind {
	case task.PatternActivity:
		a := n.Activity
		fmt.Fprintf(b, "%s<invoke activity=%q", indent, a.ID)
		if a.Name != "" {
			fmt.Fprintf(b, " name=%q", a.Name)
		}
		if a.Concept != "" {
			fmt.Fprintf(b, " concept=%q", string(a.Concept))
		}
		if len(a.Inputs) > 0 {
			fmt.Fprintf(b, " inputs=%q", joinConcepts(a.Inputs))
		}
		if len(a.Outputs) > 0 {
			fmt.Fprintf(b, " outputs=%q", joinConcepts(a.Outputs))
		}
		b.WriteString("/>\n")
	case task.PatternSequence, task.PatternParallel:
		tag := "sequence"
		if n.Kind == task.PatternParallel {
			tag = "flow"
		}
		fmt.Fprintf(b, "%s<%s>\n", indent, tag)
		for _, c := range n.Children {
			if err := writeNode(b, c, depth+1); err != nil {
				return err
			}
		}
		fmt.Fprintf(b, "%s</%s>\n", indent, tag)
	case task.PatternChoice:
		fmt.Fprintf(b, "%s<if>\n", indent)
		for i, c := range n.Children {
			if n.Probs != nil {
				fmt.Fprintf(b, "%s  <branch probability=%q>\n", indent, strconv.FormatFloat(n.Probs[i], 'g', -1, 64))
			} else {
				fmt.Fprintf(b, "%s  <branch>\n", indent)
			}
			if err := writeNode(b, c, depth+2); err != nil {
				return err
			}
			fmt.Fprintf(b, "%s  </branch>\n", indent)
		}
		fmt.Fprintf(b, "%s</if>\n", indent)
	case task.PatternLoop:
		fmt.Fprintf(b, "%s<while minIterations=%q maxIterations=%q", indent,
			strconv.Itoa(n.Loop.Min), strconv.Itoa(n.Loop.Max))
		if n.Loop.Expected > 0 {
			fmt.Fprintf(b, " expectedIterations=%q", strconv.FormatFloat(n.Loop.Expected, 'g', -1, 64))
		}
		b.WriteString(">\n")
		if err := writeNode(b, n.Children[0], depth+1); err != nil {
			return err
		}
		fmt.Fprintf(b, "%s</while>\n", indent)
	default:
		return fmt.Errorf("bpel: cannot marshal pattern %v", n.Kind)
	}
	return nil
}

func joinConcepts(cs []semantics.ConceptID) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = string(c)
	}
	return strings.Join(parts, ",")
}
