package bpel

import (
	"strings"
	"testing"

	"qasom/internal/task"
)

func TestExecutableRoundTrip(t *testing.T) {
	orig, err := ParseString(shoppingBPEL)
	if err != nil {
		t.Fatal(err)
	}
	bindings := map[string]Binding{
		"browse": {Service: "catalog-1", Address: "inproc://catalog-1"},
		"book":   {Service: "bookshop-3"},
		"card":   {Service: "pay-7", Address: "tcp://10.0.0.7:9000"},
	}
	doc, err := MarshalExecutable(orig, bindings)
	if err != nil {
		t.Fatalf("MarshalExecutable: %v", err)
	}
	s := string(doc)
	if !strings.Contains(s, `executable="true"`) {
		t.Error("executable marker missing")
	}
	if !strings.Contains(s, `partner="catalog-1"`) || !strings.Contains(s, `address="inproc://catalog-1"`) {
		t.Errorf("binding attributes missing:\n%s", s)
	}

	back, gotBindings, err := ParseExecutable(doc)
	if err != nil {
		t.Fatalf("ParseExecutable: %v", err)
	}
	if back.String() != orig.String() {
		t.Errorf("structure changed:\n  orig: %s\n  back: %s", orig, back)
	}
	if len(gotBindings) != 3 {
		t.Fatalf("bindings = %v", gotBindings)
	}
	if gotBindings["browse"] != bindings["browse"] {
		t.Errorf("browse binding = %+v", gotBindings["browse"])
	}
	if gotBindings["card"].Address != "tcp://10.0.0.7:9000" {
		t.Errorf("card address = %q", gotBindings["card"].Address)
	}
	// Unbound activities stay abstract.
	if _, bound := gotBindings["media"]; bound {
		t.Error("media should be unbound")
	}
}

func TestExecutablePreservesPatternDetails(t *testing.T) {
	orig, err := ParseString(shoppingBPEL)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := MarshalExecutable(orig, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := ParseExecutable(doc)
	if err != nil {
		t.Fatal(err)
	}
	var choice, loop *task.Node
	back.Walk(func(n *task.Node) {
		switch n.Kind {
		case task.PatternChoice:
			choice = n
		case task.PatternLoop:
			loop = n
		}
	})
	if choice == nil || choice.Probs == nil || choice.Probs[0] != 0.8 {
		t.Error("choice probabilities lost")
	}
	if loop == nil || loop.Loop.Max != 3 || loop.Loop.Expected != 2 {
		t.Error("loop bounds lost")
	}
}

func TestMarshalExecutableInvalidTask(t *testing.T) {
	if _, err := MarshalExecutable(&task.Task{Name: "bad"}, nil); err == nil {
		t.Error("invalid task should fail")
	}
}

func TestParseExecutableMalformed(t *testing.T) {
	if _, _, err := ParseExecutable([]byte("<nope")); err == nil {
		t.Error("malformed document should fail")
	}
}
