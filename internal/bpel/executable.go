package bpel

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"

	"qasom/internal/task"
)

// Binding is the concrete service bound to one abstract activity in an
// executable composition.
type Binding struct {
	// Service is the bound service's ID.
	Service string
	// Address is the invocation endpoint (transport-specific; may be
	// empty for in-process services).
	Address string
}

// MarshalExecutable renders an executable service composition (Chapter
// VI §2.4): the abstract process with every <invoke> bound to its
// selected concrete service via partner/address attributes. Activities
// without a binding stay abstract (legal: late binding resolves them at
// run time).
func MarshalExecutable(t *task.Task, bindings map[string]Binding) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("bpel: cannot marshal invalid task: %w", err)
	}
	var b strings.Builder
	b.WriteString(xml.Header)
	fmt.Fprintf(&b, "<process name=%q concept=%q executable=\"true\">\n", t.Name, string(t.Concept))
	if err := writeExecutableNode(&b, t.Root, bindings, 1); err != nil {
		return nil, err
	}
	b.WriteString("</process>\n")
	return []byte(b.String()), nil
}

func writeExecutableNode(b *strings.Builder, n *task.Node, bindings map[string]Binding, depth int) error {
	indent := strings.Repeat("  ", depth)
	switch n.Kind {
	case task.PatternActivity:
		a := n.Activity
		fmt.Fprintf(b, "%s<invoke activity=%q", indent, a.ID)
		if a.Name != "" {
			fmt.Fprintf(b, " name=%q", a.Name)
		}
		if a.Concept != "" {
			fmt.Fprintf(b, " concept=%q", string(a.Concept))
		}
		if len(a.Inputs) > 0 {
			fmt.Fprintf(b, " inputs=%q", joinConcepts(a.Inputs))
		}
		if len(a.Outputs) > 0 {
			fmt.Fprintf(b, " outputs=%q", joinConcepts(a.Outputs))
		}
		if bind, ok := bindings[a.ID]; ok {
			fmt.Fprintf(b, " partner=%q", bind.Service)
			if bind.Address != "" {
				fmt.Fprintf(b, " address=%q", bind.Address)
			}
		}
		b.WriteString("/>\n")
	case task.PatternSequence, task.PatternParallel:
		tag := "sequence"
		if n.Kind == task.PatternParallel {
			tag = "flow"
		}
		fmt.Fprintf(b, "%s<%s>\n", indent, tag)
		for _, c := range n.Children {
			if err := writeExecutableNode(b, c, bindings, depth+1); err != nil {
				return err
			}
		}
		fmt.Fprintf(b, "%s</%s>\n", indent, tag)
	case task.PatternChoice:
		fmt.Fprintf(b, "%s<if>\n", indent)
		for i, c := range n.Children {
			if n.Probs != nil {
				fmt.Fprintf(b, "%s  <branch probability=%q>\n", indent,
					strconv.FormatFloat(n.Probs[i], 'g', -1, 64))
			} else {
				fmt.Fprintf(b, "%s  <branch>\n", indent)
			}
			if err := writeExecutableNode(b, c, bindings, depth+2); err != nil {
				return err
			}
			fmt.Fprintf(b, "%s  </branch>\n", indent)
		}
		fmt.Fprintf(b, "%s</if>\n", indent)
	case task.PatternLoop:
		fmt.Fprintf(b, "%s<while minIterations=%q maxIterations=%q", indent,
			strconv.Itoa(n.Loop.Min), strconv.Itoa(n.Loop.Max))
		if n.Loop.Expected > 0 {
			fmt.Fprintf(b, " expectedIterations=%q", strconv.FormatFloat(n.Loop.Expected, 'g', -1, 64))
		}
		b.WriteString(">\n")
		if err := writeExecutableNode(b, n.Children[0], bindings, depth+1); err != nil {
			return err
		}
		fmt.Fprintf(b, "%s</while>\n", indent)
	default:
		return fmt.Errorf("bpel: cannot marshal pattern %v", n.Kind)
	}
	return nil
}

// ParseExecutable reads an executable composition back into its task and
// bindings.
func ParseExecutable(doc []byte) (*task.Task, map[string]Binding, error) {
	var root xmlNode
	if err := xml.Unmarshal(doc, &root); err != nil {
		return nil, nil, fmt.Errorf("bpel: malformed XML: %w", err)
	}
	t, err := Parse(doc)
	if err != nil {
		return nil, nil, err
	}
	bindings := make(map[string]Binding)
	collectBindings(&root, bindings)
	return t, bindings, nil
}

// executable attributes are parsed through the generic tree; xmlNode
// needs the extra fields (see bpel.go).
func collectBindings(x *xmlNode, out map[string]Binding) {
	if x.XMLName.Local == "invoke" && x.Partner != "" {
		id := x.Activity
		if id == "" {
			id = x.Name
		}
		out[id] = Binding{Service: x.Partner, Address: x.Address}
	}
	for i := range x.Children {
		collectBindings(&x.Children[i], out)
	}
}
