// Package simenv simulates a pervasive environment: devices hosting
// services over wireless links, QoS that fluctuates at run time, service
// churn (join/leave) and failures. It substitutes for the thesis's
// SemEUsE/testbed deployment (see DESIGN.md): the evaluation's adaptation
// experiments need exactly this behaviour — advertised QoS that drifts
// away from run-time QoS, and services that disappear mid-composition.
package simenv

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"qasom/internal/exec"
	"qasom/internal/qos"
	"qasom/internal/randx"
	"qasom/internal/registry"
	"qasom/internal/resilience"
	"qasom/internal/task"
)

// Device models a host in the environment.
type Device struct {
	// ID identifies the device.
	ID registry.DeviceID
	// Battery in [0,1]; a drained device takes its services down.
	Battery float64
	// LinkLatency is the wireless round-trip added to every invocation
	// served by this device.
	LinkLatency time.Duration
}

// Service is one deployed simulated service.
type Service struct {
	// Desc is the published description (advertised QoS).
	Desc registry.Description
	// Actual is the service's true QoS vector; invocations observe
	// Actual perturbed by Noise. It starts equal to the advertised
	// vector unless set explicitly, and moves under Drift.
	Actual qos.Vector
	// Noise is the relative multiplicative jitter per invocation (0.05 =
	// ±5%).
	Noise float64
	// Drift is added to Actual after every invocation (QoS fluctuation:
	// positive drift on a minimized property degrades the service).
	Drift qos.Vector
	// FailProb is the per-invocation failure probability.
	FailProb float64
}

// Options configure the environment.
type Options struct {
	// Seed drives all randomness; 0 means 1.
	Seed int64
	// TimeScale converts simulated milliseconds of response time into
	// wall-clock sleep (e.g. 10µs means a 100ms-QoS invocation sleeps
	// 1ms). Zero means no sleeping: invocations return instantly with
	// simulated latencies, which is what the benchmarks want.
	TimeScale time.Duration
}

// Environment is the simulated pervasive environment. Safe for
// concurrent use.
type Environment struct {
	ps  *qos.PropertySet
	reg *registry.Registry

	mu       sync.Mutex
	rng      *rand.Rand
	opts     Options
	devices  map[registry.DeviceID]*Device
	services map[registry.ServiceID]*Service
	downs    map[registry.ServiceID]bool
	faults   map[registry.DeviceID]Fault
	invoked  int

	// Mobility / radio model (nil when disabled); see mobility.go.
	radio   *RadioModel
	userPos Position
	mobiles map[string]*mobile
}

// New creates an environment publishing into the given registry.
func New(ps *qos.PropertySet, reg *registry.Registry, opts Options) *Environment {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &Environment{
		ps:       ps,
		reg:      reg,
		rng:      randx.New(opts.Seed),
		opts:     opts,
		devices:  make(map[registry.DeviceID]*Device),
		services: make(map[registry.ServiceID]*Service),
		downs:    make(map[registry.ServiceID]bool),
		faults:   make(map[registry.DeviceID]Fault),
	}
}

// Registry returns the environment's registry.
func (e *Environment) Registry() *registry.Registry { return e.reg }

// AddDevice registers a device.
func (e *Environment) AddDevice(d Device) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := d
	e.devices[d.ID] = &cp
}

// Deploy publishes a service into the environment (and registry). When
// Actual is nil it is initialised from the advertised offers.
func (e *Environment) Deploy(s Service) error {
	if err := s.Desc.Validate(); err != nil {
		return err
	}
	if s.Actual == nil {
		vec, err := s.Desc.VectorFor(e.ps, e.reg.Ontology())
		if err != nil {
			return fmt.Errorf("simenv: %w", err)
		}
		s.Actual = vec
	}
	if len(s.Actual) != e.ps.Len() {
		return fmt.Errorf("simenv: service %q actual vector arity %d, want %d",
			s.Desc.ID, len(s.Actual), e.ps.Len())
	}
	if err := e.reg.Publish(s.Desc); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := s
	cp.Actual = s.Actual.Clone()
	if s.Drift != nil {
		cp.Drift = s.Drift.Clone()
	}
	e.services[s.Desc.ID] = &cp
	delete(e.downs, s.Desc.ID)
	return nil
}

// Leave withdraws a service from the environment (churn).
func (e *Environment) Leave(id registry.ServiceID) bool {
	e.mu.Lock()
	_, ok := e.services[id]
	delete(e.services, id)
	e.mu.Unlock()
	if ok {
		e.reg.Withdraw(id)
	}
	return ok
}

// SetDown marks a service unreachable without withdrawing its
// advertisement (the mismatch the monitor must catch).
func (e *Environment) SetDown(id registry.ServiceID, down bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.downs[id] = down
}

// Degrade shifts a service's actual QoS by delta (advertisements stay
// unchanged — the run-time fluctuation of Chapter V).
func (e *Environment) Degrade(id registry.ServiceID, delta qos.Vector) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.services[id]
	if !ok {
		return fmt.Errorf("simenv: unknown service %q", id)
	}
	if len(delta) != len(s.Actual) {
		return fmt.Errorf("simenv: delta arity %d, want %d", len(delta), len(s.Actual))
	}
	for j := range delta {
		s.Actual[j] += delta[j]
		if e.ps.At(j).Kind == qos.KindProbability {
			if s.Actual[j] < 0 {
				s.Actual[j] = 0
			}
			if s.Actual[j] > 1 {
				s.Actual[j] = 1
			}
		} else if s.Actual[j] < 0 {
			s.Actual[j] = 0
		}
	}
	return nil
}

// Invocations returns the total invocation count.
func (e *Environment) Invocations() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.invoked
}

var _ exec.Invoker = (*Environment)(nil)

// Invoke implements exec.Invoker: it perturbs the service's actual QoS
// with noise, applies drift, draws failure, and (with a non-zero
// TimeScale) sleeps the scaled response time.
func (e *Environment) Invoke(ctx context.Context, id registry.ServiceID, act *task.Activity) (exec.InvokeResult, error) {
	e.mu.Lock()
	s, ok := e.services[id]
	if !ok {
		e.mu.Unlock()
		return exec.InvokeResult{}, fmt.Errorf("simenv: service %q not reachable", id)
	}
	e.invoked++
	down := e.downs[id]
	extraMs, reachable := e.linkEffectLocked(string(s.Desc.Provider))
	failed := down || !reachable || e.rng.Float64() < s.FailProb
	// Injected device faults (drop draws happen only for devices with a
	// fault installed, so fault-free runs keep their exact draw sequence
	// and stay deterministic per seed).
	fault, hasFault := e.faults[s.Desc.Provider]
	dropped := hasFault && fault.DropProb > 0 && e.rng.Float64() < fault.DropProb
	measured := s.Actual.Clone()
	if extraMs > 0 {
		if j, okRT := e.ps.Index("responseTime"); okRT {
			measured[j] += extraMs
		}
	}
	for j := range measured {
		if s.Noise > 0 {
			measured[j] *= 1 + s.Noise*(2*e.rng.Float64()-1)
		}
		if e.ps.At(j).Kind == qos.KindProbability {
			if measured[j] > 1 {
				measured[j] = 1
			}
			if measured[j] < 0 {
				measured[j] = 0
			}
		} else if measured[j] < 0 {
			measured[j] = 0
		}
	}
	if s.Drift != nil {
		for j := range s.Actual {
			s.Actual[j] += s.Drift[j]
			if e.ps.At(j).Kind == qos.KindProbability {
				if s.Actual[j] < 0 {
					s.Actual[j] = 0
				}
				if s.Actual[j] > 1 {
					s.Actual[j] = 1
				}
			} else if s.Actual[j] < 0 {
				s.Actual[j] = 0
			}
		}
	}
	var latency time.Duration
	if j, okRT := e.ps.Index("responseTime"); okRT {
		latency = time.Duration(measured[j] * float64(time.Millisecond))
	} else {
		latency = time.Millisecond
	}
	var linkLatency time.Duration
	if dev, okDev := e.devices[s.Desc.Provider]; okDev {
		linkLatency = dev.LinkLatency
	}
	scale := e.opts.TimeScale
	e.mu.Unlock()

	var sleep time.Duration
	if scale > 0 {
		sleep = time.Duration(float64(latency) / float64(time.Millisecond) * float64(scale))
		sleep += linkLatency
	}
	if hasFault {
		// A stalled device delays its reply in wall-clock time (the fault
		// models congestion/radio stalls, not service response time).
		sleep += fault.Stall
	}
	if sleep > 0 {
		t := time.NewTimer(sleep)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return exec.InvokeResult{}, resilience.CauseErr(ctx)
		}
	}
	if dropped {
		return exec.InvokeResult{}, resilience.AsRetryable(
			fmt.Errorf("simenv: device %q dropped the request to %q", s.Desc.Provider, id))
	}
	if failed {
		return exec.InvokeResult{Measured: measured, Latency: latency, Success: false}, nil
	}
	return exec.InvokeResult{Measured: measured, Latency: latency, Success: true}, nil
}
