package simenv

import (
	"context"
	"math"
	"testing"
	"time"

	"qasom/internal/exec"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

func stdPS() *qos.PropertySet { return qos.StandardSet() }

func newEnv(t *testing.T) *Environment {
	t.Helper()
	reg := registry.New(semantics.PervasiveWithScenarios())
	return New(stdPS(), reg, Options{Seed: 7})
}

func desc(id string, rt, price, avail, rel, tput float64) registry.Description {
	return registry.Description{
		ID:      registry.ServiceID(id),
		Concept: semantics.BookSale,
		Offers: []registry.QoSOffer{
			{Property: semantics.ResponseTime, Value: rt},
			{Property: semantics.Price, Value: price},
			{Property: semantics.Availability, Value: avail},
			{Property: semantics.Reliability, Value: rel},
			{Property: semantics.Throughput, Value: tput},
		},
	}
}

func act(id string) *task.Activity {
	return &task.Activity{ID: id, Concept: semantics.BookSale}
}

func TestDeployPublishesAndInitialisesActual(t *testing.T) {
	env := newEnv(t)
	if err := env.Deploy(Service{Desc: desc("s1", 100, 5, 0.95, 0.9, 40)}); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if env.Registry().Len() != 1 {
		t.Error("deploy should publish to the registry")
	}
	res, err := env.Invoke(context.Background(), "s1", act("a"))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if !res.Success {
		t.Error("invocation should succeed")
	}
	// Actual initialised from advertised offers (no noise configured).
	if res.Measured[0] != 100 {
		t.Errorf("measured rt = %g, want 100", res.Measured[0])
	}
	if env.Invocations() != 1 {
		t.Errorf("invocation counter = %d", env.Invocations())
	}
}

func TestDeployValidation(t *testing.T) {
	env := newEnv(t)
	if err := env.Deploy(Service{}); err == nil {
		t.Error("empty service should be rejected")
	}
	bad := Service{Desc: desc("s1", 100, 5, 0.95, 0.9, 40), Actual: qos.Vector{1}}
	if err := env.Deploy(bad); err == nil {
		t.Error("wrong actual arity should be rejected")
	}
	// Service without resolvable offers is rejected.
	incomplete := Service{Desc: registry.Description{ID: "x", Concept: semantics.BookSale}}
	if err := env.Deploy(incomplete); err == nil {
		t.Error("unresolvable offers should be rejected")
	}
}

func TestInvokeUnknownService(t *testing.T) {
	env := newEnv(t)
	if _, err := env.Invoke(context.Background(), "ghost", act("a")); err == nil {
		t.Error("unknown service should error")
	}
}

func TestLeaveWithdraws(t *testing.T) {
	env := newEnv(t)
	if err := env.Deploy(Service{Desc: desc("s1", 100, 5, 0.95, 0.9, 40)}); err != nil {
		t.Fatal(err)
	}
	if !env.Leave("s1") {
		t.Error("Leave should report presence")
	}
	if env.Leave("s1") {
		t.Error("second Leave should report absence")
	}
	if env.Registry().Len() != 0 {
		t.Error("Leave should withdraw from the registry")
	}
	if _, err := env.Invoke(context.Background(), "s1", act("a")); err == nil {
		t.Error("left service should be unreachable")
	}
}

func TestSetDownFailsInvocations(t *testing.T) {
	env := newEnv(t)
	if err := env.Deploy(Service{Desc: desc("s1", 100, 5, 0.95, 0.9, 40)}); err != nil {
		t.Fatal(err)
	}
	env.SetDown("s1", true)
	res, err := env.Invoke(context.Background(), "s1", act("a"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Error("down service should fail invocations")
	}
	// Still advertised in the registry (the interesting mismatch).
	if env.Registry().Len() != 1 {
		t.Error("down service should remain advertised")
	}
	env.SetDown("s1", false)
	res, err = env.Invoke(context.Background(), "s1", act("a"))
	if err != nil || !res.Success {
		t.Error("revived service should succeed")
	}
}

func TestDegradeShiftsActualNotAdvertised(t *testing.T) {
	env := newEnv(t)
	if err := env.Deploy(Service{Desc: desc("s1", 100, 5, 0.95, 0.9, 40)}); err != nil {
		t.Fatal(err)
	}
	if err := env.Degrade("s1", qos.Vector{200, 0, -0.5, 0, 0}); err != nil {
		t.Fatalf("Degrade: %v", err)
	}
	res, err := env.Invoke(context.Background(), "s1", act("a"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured[0] != 300 {
		t.Errorf("degraded rt = %g, want 300", res.Measured[0])
	}
	if math.Abs(res.Measured[2]-0.45) > 1e-12 {
		t.Errorf("degraded availability = %g, want 0.45", res.Measured[2])
	}
	// Advertised description unchanged.
	d, _ := env.Registry().Get("s1")
	v, _ := d.VectorFor(stdPS(), nil)
	if v[0] != 100 {
		t.Error("advertised QoS should not change on degradation")
	}
	if err := env.Degrade("ghost", qos.Vector{1, 0, 0, 0, 0}); err == nil {
		t.Error("degrading unknown service should error")
	}
	if err := env.Degrade("s1", qos.Vector{1}); err == nil {
		t.Error("wrong delta arity should error")
	}
}

func TestDegradeClampsProbabilities(t *testing.T) {
	env := newEnv(t)
	if err := env.Deploy(Service{Desc: desc("s1", 100, 5, 0.95, 0.9, 40)}); err != nil {
		t.Fatal(err)
	}
	if err := env.Degrade("s1", qos.Vector{0, 0, -5, 5, 0}); err != nil {
		t.Fatal(err)
	}
	res, err := env.Invoke(context.Background(), "s1", act("a"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured[2] != 0 || res.Measured[3] != 1 {
		t.Errorf("probabilities not clamped: %v", res.Measured)
	}
}

func TestDriftDegradesOverInvocations(t *testing.T) {
	env := newEnv(t)
	s := Service{
		Desc:  desc("s1", 100, 5, 0.95, 0.9, 40),
		Drift: qos.Vector{10, 0, 0, 0, 0}, // +10ms per call
	}
	if err := env.Deploy(s); err != nil {
		t.Fatal(err)
	}
	first, err := env.Invoke(context.Background(), "s1", act("a"))
	if err != nil {
		t.Fatal(err)
	}
	var last exec.InvokeResult
	for i := 0; i < 5; i++ {
		last, err = env.Invoke(context.Background(), "s1", act("a"))
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.Measured[0] <= first.Measured[0] {
		t.Errorf("drift should degrade rt: first %g, later %g", first.Measured[0], last.Measured[0])
	}
}

func TestNoiseStaysBounded(t *testing.T) {
	env := newEnv(t)
	s := Service{Desc: desc("s1", 100, 5, 0.95, 0.9, 40), Noise: 0.1}
	if err := env.Deploy(s); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		res, err := env.Invoke(context.Background(), "s1", act("a"))
		if err != nil {
			t.Fatal(err)
		}
		if res.Measured[0] < 90 || res.Measured[0] > 110 {
			t.Fatalf("noise exceeded ±10%%: %g", res.Measured[0])
		}
		if res.Measured[2] > 1 {
			t.Fatalf("probability exceeded 1: %g", res.Measured[2])
		}
	}
}

func TestFailProb(t *testing.T) {
	env := newEnv(t)
	s := Service{Desc: desc("s1", 100, 5, 0.95, 0.9, 40), FailProb: 1}
	if err := env.Deploy(s); err != nil {
		t.Fatal(err)
	}
	res, err := env.Invoke(context.Background(), "s1", act("a"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Error("failProb 1 should always fail")
	}
}

func TestTimeScaleSleepsAndCancels(t *testing.T) {
	reg := registry.New(semantics.PervasiveWithScenarios())
	env := New(stdPS(), reg, Options{Seed: 1, TimeScale: 100 * time.Microsecond})
	if err := env.Deploy(Service{Desc: desc("s1", 100, 5, 0.95, 0.9, 40)}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := env.Invoke(context.Background(), "s1", act("a")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("100ms QoS at 100µs/ms should sleep ≈10ms, took %v", elapsed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := env.Invoke(ctx, "s1", act("a")); err == nil {
		t.Error("cancelled invocation should error")
	}
}

func TestDeviceLinkLatency(t *testing.T) {
	reg := registry.New(semantics.PervasiveWithScenarios())
	env := New(stdPS(), reg, Options{Seed: 1, TimeScale: time.Nanosecond})
	env.AddDevice(Device{ID: "phone", LinkLatency: 20 * time.Millisecond})
	d := desc("s1", 100, 5, 0.95, 0.9, 40)
	d.Provider = "phone"
	if err := env.Deploy(Service{Desc: d}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := env.Invoke(context.Background(), "s1", act("a")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("device link latency not applied: %v", elapsed)
	}
}

func TestEnvironmentWithExecutor(t *testing.T) {
	env := newEnv(t)
	for _, id := range []string{"sa", "sb"} {
		if err := env.Deploy(Service{Desc: desc(id, 50, 5, 0.95, 0.9, 40)}); err != nil {
			t.Fatal(err)
		}
	}
	tk := &task.Task{Name: "t", Concept: semantics.ShoppingService, Root: task.Sequence(
		task.NewActivity(act("a")),
		task.NewActivity(act("b")),
	)}
	bindings := map[string]registry.ServiceID{"a": "sa", "b": "sb"}
	e := &exec.Executor{
		Invoker: env,
		Binder: exec.BinderFunc(func(a *task.Activity) (registry.Candidate, error) {
			d, _ := env.Registry().Get(bindings[a.ID])
			v, err := d.VectorFor(stdPS(), nil)
			if err != nil {
				return registry.Candidate{}, err
			}
			return registry.Candidate{Service: d, Vector: v}, nil
		}),
	}
	trace, err := e.Run(context.Background(), tk)
	if err != nil {
		t.Fatalf("executor over simenv: %v", err)
	}
	if len(trace.Records) != 2 || trace.Failures() != 0 {
		t.Errorf("trace = %+v", trace.Records)
	}
}
