package simenv

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"qasom/internal/core"
	"qasom/internal/randx"
	"qasom/internal/registry"
	"qasom/internal/resilience"
)

// Fault describes an injected failure mode for one device. The zero
// value is a healthy device.
type Fault struct {
	// DropProb is the probability that the device silently drops a
	// request (the caller sees a retryable transport error, never an
	// application reply).
	DropProb float64
	// Stall delays every reply by this wall-clock duration (on top of the
	// scaled response time), modelling congestion or a radio stall.
	Stall time.Duration
	// KillMidExchange makes the device sever the connection after
	// accepting the request, so the caller reads a truncated reply.
	KillMidExchange bool
}

// InjectFault installs (or replaces) the fault for a device; it applies
// to every service the device hosts, starting with the next invocation.
func (e *Environment) InjectFault(id registry.DeviceID, f Fault) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.faults[id] = f
}

// ClearFault removes the device's injected fault.
func (e *Environment) ClearFault(id registry.DeviceID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.faults, id)
}

// FaultInjector wraps core transports with per-peer faults, letting the
// distributed-selection experiments fail coordinators deterministically
// without a real network. Draws come from a seeded source per peer, so
// the same seed reproduces the same fault pattern regardless of the
// order in which peers are exercised.
type FaultInjector struct {
	seed int64

	mu     sync.Mutex
	faults map[string]Fault
	rngs   map[string]*rand.Rand
}

// NewFaultInjector creates an injector whose drop draws derive from seed.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{
		seed:   seed,
		faults: make(map[string]Fault),
		rngs:   make(map[string]*rand.Rand),
	}
}

// Set installs (or replaces) the fault for a peer; the zero Fault clears
// its effect while keeping the peer's draw stream.
func (fi *FaultInjector) Set(peer string, f Fault) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.faults[peer] = f
}

// Clear removes the peer's fault.
func (fi *FaultInjector) Clear(peer string) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	delete(fi.faults, peer)
}

// draw decides this exchange's fate for the peer under its current fault.
func (fi *FaultInjector) draw(peer string) (drop bool, stall time.Duration, kill bool) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	f, ok := fi.faults[peer]
	if !ok {
		return false, 0, false
	}
	if f.DropProb > 0 {
		rng := fi.rngs[peer]
		if rng == nil {
			// One sub-stream per peer: deterministic per (seed, peer) and
			// independent of how other peers interleave.
			var h int64
			for _, b := range []byte(peer) {
				h = h*131 + int64(b)
			}
			rng = randx.Derive(fi.seed, h)
			fi.rngs[peer] = rng
		}
		drop = rng.Float64() < f.DropProb
	}
	return drop, f.Stall, f.KillMidExchange
}

// Wrap decorates a transport with the injector's faults for its peer.
func (fi *FaultInjector) Wrap(t core.Transport) core.Transport {
	return &faultyTransport{inner: t, fi: fi}
}

type faultyTransport struct {
	inner core.Transport
	fi    *FaultInjector
}

func (t *faultyTransport) Peer() string { return t.inner.Peer() }

func (t *faultyTransport) Exchange(ctx context.Context, req core.LocalRequest) (*core.LocalResult, error) {
	drop, stall, kill := t.fi.draw(t.inner.Peer())
	if stall > 0 {
		if !resilience.Sleep(ctx, stall) {
			return nil, resilience.CauseErr(ctx)
		}
	}
	if drop {
		return nil, resilience.AsRetryable(
			fmt.Errorf("simenv: peer %q dropped the exchange", t.inner.Peer()))
	}
	if kill {
		return nil, resilience.AsRetryable(
			fmt.Errorf("simenv: peer %q closed the connection mid-exchange: unexpected EOF", t.inner.Peer()))
	}
	return t.inner.Exchange(ctx, req)
}
