package simenv

import (
	"context"
	"math"
	"testing"

	"qasom/internal/registry"
)

func mobilityEnv(t *testing.T) *Environment {
	t.Helper()
	env := newEnv(t)
	if err := env.EnableMobility(RadioModel{Arena: 100, Range: 40, LatencyPerUnit: 2}); err != nil {
		t.Fatal(err)
	}
	return env
}

func deployOn(t *testing.T, env *Environment, svcID, deviceID string) {
	t.Helper()
	d := desc(svcID, 50, 5, 0.95, 0.9, 40)
	d.Provider = registry.DeviceID(deviceID)
	if err := env.Deploy(Service{Desc: d}); err != nil {
		t.Fatal(err)
	}
}

func TestEnableMobilityValidation(t *testing.T) {
	env := newEnv(t)
	if err := env.EnableMobility(RadioModel{}); err == nil {
		t.Error("zero radio model should be rejected")
	}
	if err := env.EnableMobility(RadioModel{Arena: 100, Range: 10}); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	if env.UserPosition() != (Position{X: 50, Y: 50}) {
		t.Errorf("user should start at the centre: %+v", env.UserPosition())
	}
}

func TestPlaceDeviceRequiresMobility(t *testing.T) {
	env := newEnv(t)
	if err := env.PlaceDevice("d", Position{}, 0); err == nil {
		t.Error("placing without mobility should fail")
	}
}

func TestDistanceAddsLatency(t *testing.T) {
	env := mobilityEnv(t)
	deployOn(t, env, "near", "dev-near")
	deployOn(t, env, "far", "dev-far")
	if err := env.PlaceDevice("dev-near", Position{X: 50, Y: 50}, 0); err != nil {
		t.Fatal(err)
	}
	if err := env.PlaceDevice("dev-far", Position{X: 50, Y: 80}, 0); err != nil { // 30 units away
		t.Fatal(err)
	}
	nearRes, err := env.Invoke(context.Background(), "near", act("a"))
	if err != nil {
		t.Fatal(err)
	}
	farRes, err := env.Invoke(context.Background(), "far", act("a"))
	if err != nil {
		t.Fatal(err)
	}
	if nearRes.Measured[0] != 50 {
		t.Errorf("co-located service rt = %g, want 50", nearRes.Measured[0])
	}
	// 30 units × 2 ms/unit = +60 ms.
	if math.Abs(farRes.Measured[0]-110) > 1e-9 {
		t.Errorf("distant service rt = %g, want 110", farRes.Measured[0])
	}
	if !farRes.Success {
		t.Error("within range should succeed")
	}
}

func TestOutOfRangeFails(t *testing.T) {
	env := mobilityEnv(t)
	deployOn(t, env, "remote", "dev-remote")
	if err := env.PlaceDevice("dev-remote", Position{X: 0, Y: 0}, 0); err != nil { // ~70.7 from centre
		t.Fatal(err)
	}
	res, err := env.Invoke(context.Background(), "remote", act("a"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Error("out-of-range service should fail (signal lost)")
	}
	if env.SignalStrength("dev-remote") != 0 {
		t.Errorf("signal = %g, want 0", env.SignalStrength("dev-remote"))
	}
	// Moving the user closer restores the link.
	env.SetUserPosition(Position{X: 10, Y: 10})
	res, err = env.Invoke(context.Background(), "remote", act("a"))
	if err != nil || !res.Success {
		t.Error("service should be reachable after the user moves closer")
	}
	if s := env.SignalStrength("dev-remote"); s <= 0 || s > 1 {
		t.Errorf("signal = %g, want (0,1]", s)
	}
}

func TestTickMovesMobileDevices(t *testing.T) {
	env := mobilityEnv(t)
	if err := env.PlaceDevice("walker", Position{X: 10, Y: 10}, 5); err != nil {
		t.Fatal(err)
	}
	if err := env.PlaceDevice("pole", Position{X: 20, Y: 20}, 0); err != nil {
		t.Fatal(err)
	}
	start := env.DevicePosition("walker")
	moved := false
	for i := 0; i < 20; i++ {
		env.Tick(1)
		if env.DevicePosition("walker").Distance(start) > 1e-9 {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("mobile device never moved")
	}
	if env.DevicePosition("pole") != (Position{X: 20, Y: 20}) {
		t.Error("static device moved")
	}
	// Positions stay inside the arena.
	for i := 0; i < 200; i++ {
		env.Tick(3)
		p := env.DevicePosition("walker")
		if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 100 {
			t.Fatalf("device left the arena: %+v", p)
		}
	}
}

func TestMobilityDegradesStreamOverTime(t *testing.T) {
	// The holiday-camp story: the provider wanders; as distance grows the
	// delivered response time climbs even though the service itself is
	// unchanged — the end-to-end effect the middleware must monitor.
	env := mobilityEnv(t)
	deployOn(t, env, "stream", "walkman")
	if err := env.PlaceDevice("walkman", Position{X: 50, Y: 50}, 0); err != nil {
		t.Fatal(err)
	}
	near, err := env.Invoke(context.Background(), "stream", act("a"))
	if err != nil {
		t.Fatal(err)
	}
	// Provider drifts to the edge of the range.
	if err := env.PlaceDevice("walkman", Position{X: 50, Y: 85}, 0); err != nil {
		t.Fatal(err)
	}
	farther, err := env.Invoke(context.Background(), "stream", act("a"))
	if err != nil {
		t.Fatal(err)
	}
	if farther.Measured[0] <= near.Measured[0] {
		t.Errorf("delivered rt should degrade with distance: %g vs %g",
			near.Measured[0], farther.Measured[0])
	}
}

func TestMobilityDisabledIsNeutral(t *testing.T) {
	env := newEnv(t)
	if err := env.Deploy(Service{Desc: desc("s1", 50, 5, 0.95, 0.9, 40)}); err != nil {
		t.Fatal(err)
	}
	if got := env.SignalStrength("whatever"); got != 1 {
		t.Errorf("signal without mobility = %g, want 1", got)
	}
	env.Tick(10) // no-op, must not panic
	res, err := env.Invoke(context.Background(), "s1", act("a"))
	if err != nil || !res.Success || res.Measured[0] != 50 {
		t.Errorf("mobility-off invocation changed: %+v %v", res, err)
	}
}
