package simenv

import (
	"fmt"
	"math"
)

// This file adds the mobility and radio model of the pervasive
// environment: devices (and the user) have positions in a square arena,
// mobile devices follow a random-waypoint model, and the wireless link
// quality degrades with distance — the infrastructure-level half of the
// end-to-end QoS model (Chapter III): a service's *delivered* response
// time and availability depend on NetworkLatency and SignalStrength,
// not only on its own performance.

// Position is a point in the arena.
type Position struct {
	X, Y float64
}

// Distance returns the Euclidean distance to other.
func (p Position) Distance(other Position) float64 {
	dx, dy := p.X-other.X, p.Y-other.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// RadioModel maps distance to link quality.
type RadioModel struct {
	// Arena is the side length of the square devices roam in.
	Arena float64
	// Range is the maximum usable link distance: services hosted on
	// devices farther than Range from the user are unreachable (signal
	// lost) even though still advertised.
	Range float64
	// LatencyPerUnit adds this many milliseconds of response time per
	// distance unit between user and provider.
	LatencyPerUnit float64
}

// mobile is the per-device movement state.
type mobile struct {
	pos      Position
	speed    float64
	waypoint Position
}

// EnableMobility activates the radio model. The user starts at the
// arena's centre; devices default to the centre until placed.
func (e *Environment) EnableMobility(radio RadioModel) error {
	if radio.Arena <= 0 || radio.Range <= 0 {
		return fmt.Errorf("simenv: radio model needs positive arena and range")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.radio = &radio
	centre := Position{X: radio.Arena / 2, Y: radio.Arena / 2}
	e.userPos = centre
	if e.mobiles == nil {
		e.mobiles = make(map[string]*mobile)
	}
	return nil
}

// SetUserPosition moves the user's device.
func (e *Environment) SetUserPosition(p Position) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.userPos = p
}

// UserPosition returns the user's position.
func (e *Environment) UserPosition() Position {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.userPos
}

// PlaceDevice positions a device; speed > 0 makes it roam with the
// random-waypoint model on Tick.
func (e *Environment) PlaceDevice(id string, p Position, speed float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.radio == nil {
		return fmt.Errorf("simenv: mobility not enabled")
	}
	if e.mobiles == nil {
		e.mobiles = make(map[string]*mobile)
	}
	m := &mobile{pos: p, speed: speed, waypoint: p}
	if speed > 0 {
		m.waypoint = e.randomPointLocked()
	}
	e.mobiles[id] = m
	return nil
}

// DevicePosition returns a device's position (the arena centre when it
// was never placed).
func (e *Environment) DevicePosition(id string) Position {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.devicePosLocked(id)
}

func (e *Environment) devicePosLocked(id string) Position {
	if m, ok := e.mobiles[id]; ok {
		return m.pos
	}
	if e.radio != nil {
		return Position{X: e.radio.Arena / 2, Y: e.radio.Arena / 2}
	}
	return Position{}
}

func (e *Environment) randomPointLocked() Position {
	return Position{
		X: e.rng.Float64() * e.radio.Arena,
		Y: e.rng.Float64() * e.radio.Arena,
	}
}

// Tick advances the mobility simulation by dt time units: every mobile
// device moves speed·dt toward its waypoint, drawing a fresh waypoint on
// arrival.
func (e *Environment) Tick(dt float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.radio == nil || dt <= 0 {
		return
	}
	for _, m := range e.mobiles {
		if m.speed <= 0 {
			continue
		}
		remaining := m.speed * dt
		for remaining > 0 {
			d := m.pos.Distance(m.waypoint)
			if d <= remaining {
				m.pos = m.waypoint
				remaining -= d
				m.waypoint = e.randomPointLocked()
				if d == 0 {
					break // degenerate: waypoint == position
				}
				continue
			}
			frac := remaining / d
			m.pos.X += (m.waypoint.X - m.pos.X) * frac
			m.pos.Y += (m.waypoint.Y - m.pos.Y) * frac
			remaining = 0
		}
	}
}

// linkEffectLocked computes the radio effect for a service hosted on the
// given device: extra response-time milliseconds and reachability.
// Callers must hold e.mu.
func (e *Environment) linkEffectLocked(provider string) (extraMs float64, reachable bool) {
	if e.radio == nil {
		return 0, true
	}
	d := e.userPos.Distance(e.devicePosLocked(provider))
	if d > e.radio.Range {
		return 0, false
	}
	return d * e.radio.LatencyPerUnit, true
}

// SignalStrength returns the normalized signal strength in [0,1] between
// the user and a device (1 at distance 0, 0 at or beyond radio range;
// 1 when mobility is disabled).
func (e *Environment) SignalStrength(provider string) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.radio == nil {
		return 1
	}
	d := e.userPos.Distance(e.devicePosLocked(provider))
	if d >= e.radio.Range {
		return 0
	}
	return 1 - d/e.radio.Range
}
