// Package task models user tasks as trees of abstract activities
// structured by the composition patterns of the thesis (sequence,
// parallel, choice, loop), aggregates QoS vectors over those trees with
// the Table IV.1 formulas, and implements the task-class concept of
// Chapter V: sets of behaviourally different but functionally equivalent
// tasks, stored in a task-class repository.
package task

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"qasom/internal/qos"
	"qasom/internal/semantics"
)

// Pattern is a composition pattern coordinating child nodes.
type Pattern int

// Patterns. PatternActivity marks leaves (a single abstract activity).
const (
	PatternActivity Pattern = iota + 1
	PatternSequence
	PatternParallel
	PatternChoice
	PatternLoop
)

// String returns the conventional pattern name.
func (p Pattern) String() string {
	switch p {
	case PatternActivity:
		return "activity"
	case PatternSequence:
		return "sequence"
	case PatternParallel:
		return "parallel"
	case PatternChoice:
		return "choice"
	case PatternLoop:
		return "loop"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Activity is one abstract activity A_i of a user task: a unit of
// functionality to be bound to a concrete service at selection time.
type Activity struct {
	// ID uniquely identifies the activity within its task.
	ID string
	// Name is a human-readable label (defaults to ID).
	Name string
	// Concept is the functional capability the activity requires,
	// expressed against the shared ontology.
	Concept semantics.ConceptID
	// Inputs and Outputs are the data concepts the activity consumes and
	// produces; they drive the data constraints of behavioural adaptation.
	Inputs  []semantics.ConceptID
	Outputs []semantics.ConceptID
}

// Label returns the display name of the activity.
func (a *Activity) Label() string {
	if a.Name != "" {
		return a.Name
	}
	return a.ID
}

// Node is one node of a task tree: either a leaf activity or a pattern
// over children.
type Node struct {
	// Kind selects the pattern; PatternActivity marks a leaf.
	Kind Pattern
	// Activity is set iff Kind == PatternActivity.
	Activity *Activity
	// Children are the coordinated sub-nodes (patterns only).
	Children []*Node
	// Probs optionally weighs choice branches (same length as Children).
	Probs []float64
	// Loop bounds loop iterations (Kind == PatternLoop only).
	Loop qos.Loop
}

// Task is a user task T: a named tree of abstract activities.
type Task struct {
	// Name identifies the task.
	Name string
	// Concept is the overall functionality the task realises; task
	// classes group tasks by this concept.
	Concept semantics.ConceptID
	// Root is the top of the pattern tree.
	Root *Node
}

// Fingerprint returns a stable hash of the task's full structure —
// pattern tree shape, activity identities (ID, concept, data concepts),
// branch probabilities and loop bounds. Two tasks hash equal exactly
// when a selection over them is interchangeable, which makes the
// fingerprint a selection-plan cache key component.
func (t *Task) Fingerprint() uint64 {
	h := fnv.New64a()
	writeStr := func(s string) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeU64 := func(v uint64) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], v)
		h.Write(n[:])
	}
	writeStr(t.Name)
	writeStr(string(t.Concept))
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			writeU64(0)
			return
		}
		writeU64(uint64(n.Kind))
		if n.Activity != nil {
			writeStr(n.Activity.ID)
			writeStr(string(n.Activity.Concept))
			writeU64(uint64(len(n.Activity.Inputs)))
			for _, c := range n.Activity.Inputs {
				writeStr(string(c))
			}
			writeU64(uint64(len(n.Activity.Outputs)))
			for _, c := range n.Activity.Outputs {
				writeStr(string(c))
			}
		}
		writeU64(uint64(len(n.Probs)))
		for _, p := range n.Probs {
			writeU64(math.Float64bits(p))
		}
		writeU64(uint64(n.Loop.Min))
		writeU64(uint64(n.Loop.Max))
		writeU64(math.Float64bits(n.Loop.Expected))
		writeU64(uint64(len(n.Children)))
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return h.Sum64()
}

// NewActivity builds a leaf node around an activity.
func NewActivity(a *Activity) *Node {
	return &Node{Kind: PatternActivity, Activity: a}
}

// Sequence builds a sequence node.
func Sequence(children ...*Node) *Node {
	return &Node{Kind: PatternSequence, Children: children}
}

// Parallel builds a parallel (flow) node.
func Parallel(children ...*Node) *Node {
	return &Node{Kind: PatternParallel, Children: children}
}

// Choice builds a choice node with optional branch probabilities.
func Choice(probs []float64, children ...*Node) *Node {
	return &Node{Kind: PatternChoice, Children: children, Probs: probs}
}

// LoopNode wraps a body in a loop with the given iteration bounds.
func LoopNode(loop qos.Loop, body *Node) *Node {
	return &Node{Kind: PatternLoop, Children: []*Node{body}, Loop: loop}
}

// Validate checks structural well-formedness: non-nil nodes, leaves carry
// activities with unique non-empty IDs, patterns have children (loops
// exactly one), probabilities align with branches.
func (t *Task) Validate() error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("task: nil task or root")
	}
	if t.Name == "" {
		return fmt.Errorf("task: unnamed task")
	}
	seen := make(map[string]struct{})
	return validateNode(t.Root, seen)
}

func validateNode(n *Node, seen map[string]struct{}) error {
	if n == nil {
		return fmt.Errorf("task: nil node")
	}
	switch n.Kind {
	case PatternActivity:
		if n.Activity == nil {
			return fmt.Errorf("task: leaf without activity")
		}
		if n.Activity.ID == "" {
			return fmt.Errorf("task: activity without ID")
		}
		if _, dup := seen[n.Activity.ID]; dup {
			return fmt.Errorf("task: duplicate activity ID %q", n.Activity.ID)
		}
		seen[n.Activity.ID] = struct{}{}
		if len(n.Children) != 0 {
			return fmt.Errorf("task: activity %q has children", n.Activity.ID)
		}
		return nil
	case PatternSequence, PatternParallel, PatternChoice:
		if len(n.Children) == 0 {
			return fmt.Errorf("task: %s without children", n.Kind)
		}
		if n.Kind == PatternChoice && n.Probs != nil && len(n.Probs) != len(n.Children) {
			return fmt.Errorf("task: choice with %d probabilities for %d branches", len(n.Probs), len(n.Children))
		}
	case PatternLoop:
		if len(n.Children) != 1 {
			return fmt.Errorf("task: loop with %d bodies, want 1", len(n.Children))
		}
		if n.Loop.Min < 0 || n.Loop.Max < n.Loop.Min {
			return fmt.Errorf("task: loop bounds [%d,%d] invalid", n.Loop.Min, n.Loop.Max)
		}
	default:
		return fmt.Errorf("task: unknown pattern %d", int(n.Kind))
	}
	for _, c := range n.Children {
		if err := validateNode(c, seen); err != nil {
			return err
		}
	}
	return nil
}

// Activities returns the task's abstract activities in left-to-right
// (execution) order.
func (t *Task) Activities() []*Activity {
	var out []*Activity
	t.Walk(func(n *Node) {
		if n.Kind == PatternActivity {
			out = append(out, n.Activity)
		}
	})
	return out
}

// ActivityByID returns the named activity, or nil.
func (t *Task) ActivityByID(id string) *Activity {
	var found *Activity
	t.Walk(func(n *Node) {
		if n.Kind == PatternActivity && n.Activity.ID == id {
			found = n.Activity
		}
	})
	return found
}

// Walk visits every node of the tree in pre-order.
func (t *Task) Walk(visit func(*Node)) {
	if t == nil || t.Root == nil {
		return
	}
	var rec func(*Node)
	rec = func(n *Node) {
		if n == nil {
			return
		}
		visit(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root)
}

// Size returns the number of abstract activities.
func (t *Task) Size() int { return len(t.Activities()) }

// Clone returns a deep copy of the task.
func (t *Task) Clone() *Task {
	if t == nil {
		return nil
	}
	return &Task{Name: t.Name, Concept: t.Concept, Root: cloneNode(t.Root)}
}

func cloneNode(n *Node) *Node {
	if n == nil {
		return nil
	}
	out := &Node{Kind: n.Kind, Loop: n.Loop}
	if n.Activity != nil {
		a := *n.Activity
		a.Inputs = append([]semantics.ConceptID(nil), n.Activity.Inputs...)
		a.Outputs = append([]semantics.ConceptID(nil), n.Activity.Outputs...)
		out.Activity = &a
	}
	if n.Probs != nil {
		out.Probs = append([]float64(nil), n.Probs...)
	}
	if n.Children != nil {
		out.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			out.Children[i] = cloneNode(c)
		}
	}
	return out
}

// AggregateQoS folds per-activity QoS vectors over the task tree using the
// Table IV.1 formulas under the given aggregation approach. The assign map
// provides one vector per activity ID; missing activities contribute the
// per-property identity element.
func (t *Task) AggregateQoS(ps *qos.PropertySet, assign map[string]qos.Vector, a qos.Approach) qos.Vector {
	if t == nil || t.Root == nil {
		return ps.NewVector()
	}
	return aggregateNode(t.Root, ps, assign, a)
}

func aggregateNode(n *Node, ps *qos.PropertySet, assign map[string]qos.Vector, a qos.Approach) qos.Vector {
	switch n.Kind {
	case PatternActivity:
		if v, ok := assign[n.Activity.ID]; ok {
			return v
		}
		return qos.AggregateSequenceVec(ps, nil) // identity vector
	case PatternSequence:
		return qos.AggregateSequenceVec(ps, childVectors(n, ps, assign, a))
	case PatternParallel:
		return qos.AggregateParallelVec(ps, childVectors(n, ps, assign, a))
	case PatternChoice:
		return qos.AggregateChoiceVec(ps, childVectors(n, ps, assign, a), n.Probs, a)
	case PatternLoop:
		body := aggregateNode(n.Children[0], ps, assign, a)
		return qos.AggregateLoopVec(ps, body, n.Loop, a)
	default:
		return ps.NewVector()
	}
}

func childVectors(n *Node, ps *qos.PropertySet, assign map[string]qos.Vector, a qos.Approach) []qos.Vector {
	out := make([]qos.Vector, len(n.Children))
	for i, c := range n.Children {
		out[i] = aggregateNode(c, ps, assign, a)
	}
	return out
}

// Remaining returns a copy of the task containing only the activities not
// yet completed, pruning pattern nodes that become empty. It is the basis
// of behavioural adaptation: the remaining subtask is what an alternative
// behaviour must still realise. The second result reports whether any
// activity remains.
func (t *Task) Remaining(completed map[string]bool) (*Task, bool) {
	root := pruneNode(cloneNode(t.Root), completed)
	if root == nil {
		return nil, false
	}
	return &Task{Name: t.Name + "-remaining", Concept: t.Concept, Root: root}, true
}

func pruneNode(n *Node, completed map[string]bool) *Node {
	if n == nil {
		return nil
	}
	if n.Kind == PatternActivity {
		if completed[n.Activity.ID] {
			return nil
		}
		return n
	}
	kept := n.Children[:0]
	var keptProbs []float64
	for i, c := range n.Children {
		if pruned := pruneNode(c, completed); pruned != nil {
			kept = append(kept, pruned)
			if n.Probs != nil {
				keptProbs = append(keptProbs, n.Probs[i])
			}
		}
	}
	if len(kept) == 0 {
		return nil
	}
	n.Children = kept
	n.Probs = keptProbs
	// Collapse single-child coordination nodes (loops keep their bounds).
	if len(kept) == 1 && n.Kind != PatternLoop {
		return kept[0]
	}
	return n
}

// String renders the tree in a compact s-expression form, e.g.
// "seq(a, par(b, c))". Useful in logs and test failures.
func (t *Task) String() string {
	if t == nil || t.Root == nil {
		return "task()"
	}
	return renderNode(t.Root)
}

func renderNode(n *Node) string {
	switch n.Kind {
	case PatternActivity:
		return n.Activity.ID
	case PatternSequence, PatternParallel, PatternChoice:
		tag := map[Pattern]string{PatternSequence: "seq", PatternParallel: "par", PatternChoice: "cho"}[n.Kind]
		s := tag + "("
		for i, c := range n.Children {
			if i > 0 {
				s += ", "
			}
			s += renderNode(c)
		}
		return s + ")"
	case PatternLoop:
		return fmt.Sprintf("loop[%d..%d](%s)", n.Loop.Min, n.Loop.Max, renderNode(n.Children[0]))
	default:
		return "?"
	}
}

// Linear builds a purely sequential task of n activities with the given
// functional concept on every activity; a convenience for tests and
// workload generators.
func Linear(name string, concept semantics.ConceptID, n int) *Task {
	children := make([]*Node, n)
	for i := 0; i < n; i++ {
		children[i] = NewActivity(&Activity{
			ID:      fmt.Sprintf("a%d", i+1),
			Concept: concept,
		})
	}
	return &Task{Name: name, Concept: concept, Root: Sequence(children...)}
}

// ActivityIDs returns the sorted IDs of the task's activities.
func (t *Task) ActivityIDs() []string {
	acts := t.Activities()
	out := make([]string, len(acts))
	for i, a := range acts {
		out[i] = a.ID
	}
	sort.Strings(out)
	return out
}
