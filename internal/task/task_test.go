package task

import (
	"math"
	"strings"
	"testing"

	"qasom/internal/qos"
	"qasom/internal/semantics"
)

func act(id string) *Node {
	return NewActivity(&Activity{ID: id, Concept: semantics.ConceptID("C" + id)})
}

// shoppingTask builds seq(a, par(b, c), cho(d, e), loop(f)).
func shoppingTask() *Task {
	return &Task{
		Name:    "shopping",
		Concept: semantics.ShoppingService,
		Root: Sequence(
			act("a"),
			Parallel(act("b"), act("c")),
			Choice([]float64{0.7, 0.3}, act("d"), act("e")),
			LoopNode(qos.Loop{Min: 1, Max: 3, Expected: 2}, act("f")),
		),
	}
}

func TestValidate(t *testing.T) {
	if err := shoppingTask().Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	tests := []struct {
		name string
		task *Task
	}{
		{"nil root", &Task{Name: "x"}},
		{"unnamed", &Task{Root: act("a")}},
		{"leaf without activity", &Task{Name: "x", Root: &Node{Kind: PatternActivity}}},
		{"activity without id", &Task{Name: "x", Root: NewActivity(&Activity{})}},
		{"duplicate ids", &Task{Name: "x", Root: Sequence(act("a"), act("a"))}},
		{"empty sequence", &Task{Name: "x", Root: Sequence()}},
		{"probs mismatch", &Task{Name: "x", Root: Choice([]float64{1}, act("a"), act("b"))}},
		{"loop two bodies", &Task{Name: "x", Root: &Node{Kind: PatternLoop, Children: []*Node{act("a"), act("b")}}}},
		{"loop bad bounds", &Task{Name: "x", Root: &Node{Kind: PatternLoop, Children: []*Node{act("a")}, Loop: qos.Loop{Min: 3, Max: 1}}}},
		{"unknown pattern", &Task{Name: "x", Root: &Node{Kind: Pattern(42), Children: []*Node{act("a")}}}},
		{"activity with children", &Task{Name: "x", Root: &Node{Kind: PatternActivity, Activity: &Activity{ID: "a"}, Children: []*Node{act("b")}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.task.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestActivitiesOrderAndLookup(t *testing.T) {
	task := shoppingTask()
	acts := task.Activities()
	ids := make([]string, len(acts))
	for i, a := range acts {
		ids[i] = a.ID
	}
	want := "a b c d e f"
	if got := strings.Join(ids, " "); got != want {
		t.Errorf("activity order = %q, want %q", got, want)
	}
	if task.Size() != 6 {
		t.Errorf("Size = %d, want 6", task.Size())
	}
	if a := task.ActivityByID("d"); a == nil || a.ID != "d" {
		t.Error("ActivityByID(d) failed")
	}
	if task.ActivityByID("zz") != nil {
		t.Error("ActivityByID(zz) should be nil")
	}
	sorted := task.ActivityIDs()
	if len(sorted) != 6 || sorted[0] != "a" || sorted[5] != "f" {
		t.Errorf("ActivityIDs = %v", sorted)
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := shoppingTask()
	clone := orig.Clone()
	clone.ActivityByID("a").Concept = "Mutated"
	clone.Root.Children[2].Probs[0] = 0.99
	if orig.ActivityByID("a").Concept == "Mutated" {
		t.Error("activity mutation leaked into original")
	}
	if orig.Root.Children[2].Probs[0] != 0.7 {
		t.Error("probs mutation leaked into original")
	}
	if (*Task)(nil).Clone() != nil {
		t.Error("nil Clone should be nil")
	}
}

func TestAggregateQoSOverTree(t *testing.T) {
	ps := qos.MustNewPropertySet(
		&qos.Property{Name: "rt", Direction: qos.Minimized, Kind: qos.KindTime},
		&qos.Property{Name: "price", Direction: qos.Minimized, Kind: qos.KindCost},
		&qos.Property{Name: "avail", Direction: qos.Maximized, Kind: qos.KindProbability},
	)
	task := shoppingTask()
	assign := map[string]qos.Vector{
		"a": {10, 1, 0.9},
		"b": {20, 2, 0.9},
		"c": {30, 3, 0.9},
		"d": {40, 4, 0.9},
		"e": {50, 5, 0.8},
		"f": {60, 6, 0.9},
	}

	// Pessimistic: rt = 10 + max(20,30) + worst(40,50) + 3·60 = 270
	// price = 1 + (2+3) + worst(4,5) + 3·6 = 29
	// avail = .9 · (.9·.9) · min(.9,.8) · .9³
	got := task.AggregateQoS(ps, assign, qos.Pessimistic)
	wantRT, wantPrice := 270.0, 29.0
	wantAvail := 0.9 * (0.9 * 0.9) * 0.8 * math.Pow(0.9, 3)
	if math.Abs(got[0]-wantRT) > 1e-9 || math.Abs(got[1]-wantPrice) > 1e-9 || math.Abs(got[2]-wantAvail) > 1e-9 {
		t.Errorf("pessimistic = %v, want [%g %g %g]", got, wantRT, wantPrice, wantAvail)
	}

	// Optimistic: rt = 10 + 30 + best(40,50)=40 + 1·60 = 140
	got = task.AggregateQoS(ps, assign, qos.Optimistic)
	if math.Abs(got[0]-140) > 1e-9 {
		t.Errorf("optimistic rt = %g, want 140", got[0])
	}

	// Mean-value: rt = 10 + 30 + (0.7·40+0.3·50) + 2·60 = 203
	got = task.AggregateQoS(ps, assign, qos.MeanValue)
	if math.Abs(got[0]-203) > 1e-9 {
		t.Errorf("mean rt = %g, want 203", got[0])
	}
}

func TestAggregateQoSMissingActivity(t *testing.T) {
	ps := qos.MustNewPropertySet(
		&qos.Property{Name: "rt", Direction: qos.Minimized, Kind: qos.KindTime},
	)
	task := &Task{Name: "t", Root: Sequence(act("a"), act("b"))}
	got := task.AggregateQoS(ps, map[string]qos.Vector{"a": {10}}, qos.Pessimistic)
	if got[0] != 10 {
		t.Errorf("missing activity should contribute identity: %v", got)
	}
	empty := (&Task{Name: "e"}).AggregateQoS(ps, nil, qos.Pessimistic)
	if len(empty) != 1 || empty[0] != 0 {
		t.Errorf("nil root aggregate = %v", empty)
	}
}

func TestRemaining(t *testing.T) {
	task := shoppingTask()
	rem, ok := task.Remaining(map[string]bool{"a": true, "b": true})
	if !ok {
		t.Fatal("activities should remain")
	}
	ids := rem.ActivityIDs()
	want := []string{"c", "d", "e", "f"}
	if len(ids) != len(want) {
		t.Fatalf("remaining = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("remaining = %v, want %v", ids, want)
		}
	}
	// Single-child parallel collapsed to the child itself.
	if strings.Contains(rem.String(), "par(") {
		t.Errorf("singleton parallel should collapse: %s", rem)
	}
	// All done.
	all := map[string]bool{"a": true, "b": true, "c": true, "d": true, "e": true, "f": true}
	if _, ok := task.Remaining(all); ok {
		t.Error("nothing should remain")
	}
	// Original untouched.
	if task.Size() != 6 {
		t.Error("Remaining must not mutate the original")
	}
}

func TestRemainingPrunesChoiceProbs(t *testing.T) {
	task := &Task{Name: "t", Root: Choice([]float64{0.5, 0.3, 0.2}, act("a"), act("b"), act("c"))}
	rem, ok := task.Remaining(map[string]bool{"b": true})
	if !ok {
		t.Fatal("should remain")
	}
	if rem.Root.Kind != PatternChoice || len(rem.Root.Probs) != 2 {
		t.Fatalf("pruned choice = %s probs %v", rem, rem.Root.Probs)
	}
	if rem.Root.Probs[0] != 0.5 || rem.Root.Probs[1] != 0.2 {
		t.Errorf("probs = %v, want [0.5 0.2]", rem.Root.Probs)
	}
}

func TestString(t *testing.T) {
	got := shoppingTask().String()
	want := "seq(a, par(b, c), cho(d, e), loop[1..3](f))"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if (&Task{}).String() != "task()" {
		t.Error("empty task String")
	}
}

func TestLinear(t *testing.T) {
	task := Linear("line", semantics.ShoppingService, 4)
	if err := task.Validate(); err != nil {
		t.Fatalf("Linear task invalid: %v", err)
	}
	if task.Size() != 4 || task.Root.Kind != PatternSequence {
		t.Errorf("Linear structure wrong: %s", task)
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{
		PatternActivity: "activity", PatternSequence: "sequence",
		PatternParallel: "parallel", PatternChoice: "choice", PatternLoop: "loop",
		Pattern(9): "Pattern(9)",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestActivityLabel(t *testing.T) {
	a := &Activity{ID: "id1"}
	if a.Label() != "id1" {
		t.Error("Label should default to ID")
	}
	a.Name = "Pretty"
	if a.Label() != "Pretty" {
		t.Error("Label should prefer Name")
	}
}
