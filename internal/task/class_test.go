package task

import (
	"testing"

	"qasom/internal/semantics"
)

func behaviour(name string, ids ...string) *Task {
	children := make([]*Node, len(ids))
	for i, id := range ids {
		children[i] = act(id)
	}
	return &Task{Name: name, Concept: semantics.ShoppingService, Root: Sequence(children...)}
}

func shoppingClass() *Class {
	return &Class{
		Name:    "shopping-class",
		Concept: semantics.ShoppingService,
		Behaviours: []*Task{
			behaviour("b1", "a", "b", "c"),
			behaviour("b2", "a", "c", "b"),
			behaviour("b3", "x", "y"),
		},
	}
}

func TestClassValidate(t *testing.T) {
	if err := shoppingClass().Validate(); err != nil {
		t.Fatalf("valid class rejected: %v", err)
	}
	tests := []struct {
		name  string
		class *Class
	}{
		{"nil", nil},
		{"unnamed", &Class{Concept: "C", Behaviours: []*Task{behaviour("b", "a")}}},
		{"no concept", &Class{Name: "c", Behaviours: []*Task{behaviour("b", "a")}}},
		{"no behaviours", &Class{Name: "c", Concept: semantics.ShoppingService}},
		{"invalid behaviour", &Class{Name: "c", Concept: semantics.ShoppingService, Behaviours: []*Task{{Name: "bad"}}}},
		{"concept mismatch", &Class{Name: "c", Concept: "Other", Behaviours: []*Task{behaviour("b", "a")}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.class.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestClassAlternatives(t *testing.T) {
	c := shoppingClass()
	alts := c.Alternatives("b2")
	if len(alts) != 2 || alts[0].Name != "b1" || alts[1].Name != "b3" {
		t.Errorf("Alternatives(b2) = %v", names(alts))
	}
	if got := c.Alternatives("unknown"); len(got) != 3 {
		t.Errorf("Alternatives(unknown) should return all behaviours, got %d", len(got))
	}
}

func names(ts []*Task) []string {
	out := make([]string, len(ts))
	for i, x := range ts {
		out[i] = x.Name
	}
	return out
}

func TestRepositoryRegisterAndLookup(t *testing.T) {
	repo := NewRepository(nil)
	if err := repo.Register(shoppingClass()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := repo.Register(&Class{Name: "bad"}); err == nil {
		t.Error("invalid class should be rejected")
	}
	if repo.Len() != 1 {
		t.Errorf("Len = %d, want 1", repo.Len())
	}
	if c := repo.Class("shopping-class"); c == nil {
		t.Error("Class lookup failed")
	}
	if c := repo.Class("missing"); c != nil {
		t.Error("missing class should be nil")
	}
	if got := repo.Names(); len(got) != 1 || got[0] != "shopping-class" {
		t.Errorf("Names = %v", got)
	}
}

func TestRepositoryByConceptExact(t *testing.T) {
	repo := NewRepository(nil)
	if err := repo.Register(shoppingClass()); err != nil {
		t.Fatal(err)
	}
	if got := repo.ByConcept(semantics.ShoppingService); len(got) != 1 {
		t.Errorf("ByConcept exact = %d classes, want 1", len(got))
	}
	if got := repo.ByConcept(semantics.MedicalService); len(got) != 0 {
		t.Errorf("ByConcept other = %d classes, want 0", len(got))
	}
}

func TestRepositoryByConceptSemantic(t *testing.T) {
	o := semantics.Scenarios()
	repo := NewRepository(o)
	bookClass := &Class{
		Name:    "book-shopping",
		Concept: semantics.BookSale,
		Behaviours: []*Task{
			{Name: "bb1", Concept: semantics.BookSale, Root: act("a")},
		},
	}
	if err := repo.Register(bookClass); err != nil {
		t.Fatal(err)
	}
	// A request for generic Shopping is satisfied by the BookSale class
	// (plugin match).
	if got := repo.ByConcept(semantics.ShoppingService); len(got) != 1 {
		t.Errorf("subsumption lookup failed: %d classes", len(got))
	}
}

func TestRepositoryClassOf(t *testing.T) {
	repo := NewRepository(nil)
	if err := repo.Register(shoppingClass()); err != nil {
		t.Fatal(err)
	}
	if c := repo.ClassOf("b2"); c == nil || c.Name != "shopping-class" {
		t.Error("ClassOf(b2) should find the class")
	}
	if c := repo.ClassOf("nope"); c != nil {
		t.Error("ClassOf(nope) should be nil")
	}
}

func TestRepositoryZeroValue(t *testing.T) {
	var repo Repository
	if err := repo.Register(shoppingClass()); err != nil {
		t.Fatalf("zero-value repository should accept Register: %v", err)
	}
	if repo.Class("shopping-class") == nil {
		t.Error("lookup after zero-value Register failed")
	}
}
