package task

import (
	"fmt"
	"sort"
	"sync"

	"qasom/internal/semantics"
)

// Class is a task class (Chapter V §5): a set of behaviourally different
// but functionally equivalent tasks. All behaviours realise the same
// overall functionality (the class concept); they may differ in activity
// order, composition patterns or activity granularity (split/merged
// activities).
type Class struct {
	// Name identifies the class.
	Name string
	// Concept is the functionality every behaviour realises.
	Concept semantics.ConceptID
	// Behaviours are the equivalent task definitions, preference-ordered
	// (earlier behaviours are tried first during adaptation).
	Behaviours []*Task
}

// Validate checks that the class is non-empty and every behaviour is a
// valid task realising the class concept.
func (c *Class) Validate() error {
	if c == nil {
		return fmt.Errorf("task: nil class")
	}
	if c.Name == "" {
		return fmt.Errorf("task: unnamed class")
	}
	if c.Concept == "" {
		return fmt.Errorf("task: class %q without concept", c.Name)
	}
	if len(c.Behaviours) == 0 {
		return fmt.Errorf("task: class %q has no behaviours", c.Name)
	}
	for i, b := range c.Behaviours {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("task: class %q behaviour %d: %w", c.Name, i, err)
		}
		if b.Concept != c.Concept {
			return fmt.Errorf("task: class %q behaviour %q realises %q, want %q",
				c.Name, b.Name, b.Concept, c.Concept)
		}
	}
	return nil
}

// Alternatives returns the behaviours other than the named one, in
// preference order. It is what behavioural adaptation iterates over when
// the running behaviour fails.
func (c *Class) Alternatives(currentName string) []*Task {
	out := make([]*Task, 0, len(c.Behaviours))
	for _, b := range c.Behaviours {
		if b.Name != currentName {
			out = append(out, b)
		}
	}
	return out
}

// Repository is the task-class repository of the middleware: it stores
// the abstract descriptions of the tasks offered by the pervasive
// environment and serves lookups by name or by functional concept.
// The zero value is ready to use. Safe for concurrent use.
type Repository struct {
	mu      sync.RWMutex
	classes map[string]*Class
	// ontology, when set, enables subsumption-aware concept lookups.
	ontology *semantics.Ontology
}

// NewRepository creates a repository; the ontology may be nil, in which
// case concept lookups are exact-match only.
func NewRepository(o *semantics.Ontology) *Repository {
	return &Repository{classes: make(map[string]*Class), ontology: o}
}

// Register validates and stores a class, replacing any class of the same
// name.
func (r *Repository) Register(c *Class) error {
	if err := c.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.classes == nil {
		r.classes = make(map[string]*Class)
	}
	r.classes[c.Name] = c
	return nil
}

// Class returns the class with the given name, or nil.
func (r *Repository) Class(name string) *Class {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.classes[name]
}

// ByConcept returns all classes whose concept satisfies the required
// functionality (exact or, with an ontology, plugin matches), sorted by
// name for determinism.
func (r *Repository) ByConcept(required semantics.ConceptID) []*Class {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Class
	for _, c := range r.classes {
		if c.Concept == required {
			out = append(out, c)
			continue
		}
		if r.ontology != nil && r.ontology.Match(required, c.Concept).Satisfies() {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ClassOf returns the class containing a behaviour with the given task
// name, or nil. Adaptation uses it to find the class of the running task.
func (r *Repository) ClassOf(taskName string) *Class {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.classes))
	for name := range r.classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, b := range r.classes[name].Behaviours {
			if b.Name == taskName {
				return r.classes[name]
			}
		}
	}
	return nil
}

// Names returns the sorted names of all registered classes.
func (r *Repository) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.classes))
	for name := range r.classes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered classes.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.classes)
}
