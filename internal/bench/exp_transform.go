package bench

import (
	"fmt"
	"time"

	"qasom/internal/bpel"
	"qasom/internal/graph"
	"qasom/internal/semantics"
	"qasom/internal/task"
	"qasom/internal/workload"
)

func transformExperiments() []*Experiment {
	return []*Experiment{expVI13(), expV7()}
}

func expVI13() *Experiment {
	return &Experiment{
		ID:    "vi13",
		Paper: "Fig. VI.13",
		Title: "Time to transform abstract BPEL into a behavioural graph",
		Expected: "The transformation (XML parse + task tree + graph " +
			"construction with loop simplification) is linear in the number " +
			"of activities and stays far below selection time.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			sweep := pick(cfg, []int{10, 50, 100}, []int{10, 25, 50, 100, 200, 350, 500})
			g := workload.NewGenerator(cfg.Seed)
			t := NewTable("Abstract BPEL → behavioural graph transformation time",
				"activities", "doc_bytes", "parse_us", "tograph_us", "total_us", "vertices", "edges")
			for _, n := range sweep {
				tk := g.Task(fmt.Sprintf("N%d", n), n, workload.ShapeMixed)
				doc, err := bpel.Marshal(tk)
				if err != nil {
					return nil, err
				}
				var parsed *task.Task
				var bg *graph.Graph
				reps := cfg.Repetitions * 5 // cheap op: more reps for stable numbers
				parseDur, err := medianDuration(reps, func() error {
					parsed, err = bpel.Parse(doc)
					return err
				})
				if err != nil {
					return nil, err
				}
				graphDur, err := medianDuration(reps, func() error {
					bg, err = graph.FromTask(parsed)
					return err
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(n, len(doc),
					us(parseDur), us(graphDur), us(parseDur+graphDur),
					bg.VertexCount(), bg.EdgeCount())
			}
			return t, nil
		},
	}
}

func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond))
}

// expV7 measures the behavioural-adaptation matcher (Chapter V §7): the
// homeomorphism decision time as the remaining task and the alternative
// behaviours grow.
func expV7() *Experiment {
	return &Experiment{
		ID:    "v7",
		Paper: "Ch. V §7",
		Title: "Subgraph-homeomorphism matching time vs graph size",
		Expected: "Matching stays in the sub-millisecond-to-milliseconds " +
			"regime at user-task scale (tens of activities); the preliminary " +
			"verifications reject unmatchable behaviours almost for free.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			sweep := pick(cfg, []int{4, 8}, []int{4, 8, 12, 16, 24, 32})
			t := NewTable("Homeomorphism matching time (pattern n vs host 2n, semantic matching)",
				"pattern_acts", "host_acts", "match_us", "steps", "reject_us")
			onto := semantics.Scenarios()
			for _, n := range sweep {
				pattern, host := matchInstance(n)
				var res *graph.MatchResult
				dur, err := medianDuration(cfg.Repetitions, func() error {
					var found bool
					var err error
					res, found, err = graph.FindHomeomorphism(pattern, host, graph.MatchOptions{Ontology: onto})
					if err != nil {
						return err
					}
					if !found {
						return fmt.Errorf("bench: expected match at n=%d", n)
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				// Rejection cost: a pattern with an unmatchable label.
				badPattern := lineOfConcepts(append(repeatConcept("Shopping", n-1), "NoSuchConcept"))
				rejectDur, err := medianDuration(cfg.Repetitions, func() error {
					_, found, err := graph.FindHomeomorphism(badPattern, host, graph.MatchOptions{Ontology: onto})
					if err != nil {
						return err
					}
					if found {
						return fmt.Errorf("bench: unexpected match")
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(n, 2*n, us(dur), res.Steps, us(rejectDur))
			}
			return t, nil
		},
	}
}

// matchInstance builds a pattern line of n activities and a host line of
// 2n activities where every other vertex matches the pattern in order
// (the interleaved vertices are absorbed into edge paths).
func matchInstance(n int) (pattern, host *graph.Graph) {
	concepts := make([]semantics.ConceptID, n)
	for i := range concepts {
		concepts[i] = semantics.ShoppingService
	}
	pattern = lineOfConcepts(concepts)
	hostConcepts := make([]semantics.ConceptID, 2*n)
	for i := range hostConcepts {
		if i%2 == 0 {
			hostConcepts[i] = semantics.ShoppingService
		} else {
			hostConcepts[i] = semantics.NotifyService
		}
	}
	host = lineOfConcepts(hostConcepts)
	return pattern, host
}

func repeatConcept(c semantics.ConceptID, n int) []semantics.ConceptID {
	out := make([]semantics.ConceptID, n)
	for i := range out {
		out[i] = c
	}
	return out
}

func lineOfConcepts(concepts []semantics.ConceptID) *graph.Graph {
	nodes := make([]*task.Node, len(concepts))
	for i, c := range concepts {
		nodes[i] = task.NewActivity(&task.Activity{ID: fmt.Sprintf("a%d", i), Concept: c})
	}
	root := task.Sequence(nodes...)
	if len(nodes) == 1 {
		root = nodes[0]
	}
	tk := &task.Task{Name: "line", Concept: "C", Root: root}
	g, err := graph.FromTask(tk)
	if err != nil {
		panic(err) // static construction cannot fail
	}
	return g
}
