// Package bench is the experiment harness that regenerates every table
// and figure of the thesis's evaluation (Chapter VI plus the Chapter V
// measurements): each experiment produces a text/CSV table with the same
// rows or series the paper reports. cmd/qasombench drives it from the
// command line; the root-level bench_test.go exposes each experiment as
// a testing.B benchmark. The experiment inventory lives in DESIGN.md and
// the recorded results in EXPERIMENTS.md.
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"qasom/internal/obs"
)

// benchCtx is the context experiments execute pipeline calls under: it
// carries the process-wide telemetry hub, so `qasombench -metrics`
// dumps the counters and latency histograms the run produced.
func benchCtx() context.Context {
	return obs.WithHub(context.Background(), obs.Default())
}

// Config parameterises an experiment run.
type Config struct {
	// Quick shrinks sweeps to smoke-test size (used by `go test` and
	// `qasombench -quick`).
	Quick bool
	// Seed drives workload generation; 0 means 1.
	Seed int64
	// Repetitions per measured point; 0 means 3 (1 when Quick).
	Repetitions int
	// Ctx cancels long-running experiments early (qasombench wires the
	// SIGINT context here); experiments that honour it return their
	// partial table instead of losing the run. Nil means Background.
	Ctx context.Context
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Repetitions <= 0 {
		if c.Quick {
			c.Repetitions = 1
		} else {
			c.Repetitions = 3
		}
	}
	return c
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries free-form observations appended under the table.
	Notes []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3f", float64(v)/float64(time.Millisecond))
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are not needed
// for the harness's numeric/identifier cells).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment regenerates one paper artefact.
type Experiment struct {
	// ID is the harness identifier (e.g. "vi5a").
	ID string
	// Paper names the reproduced artefact (e.g. "Fig. VI.5(a)").
	Paper string
	// Title describes the experiment.
	Title string
	// Expected summarises the shape the paper reports (what "reproduced"
	// means).
	Expected string
	// Run executes the experiment.
	Run func(cfg Config) (*Table, error)
}

// experiments is the static inventory, assembled deterministically from
// the per-area constructors so no side-effectful init() is needed.
var experiments = func() map[string]*Experiment {
	m := make(map[string]*Experiment)
	for _, group := range [][]*Experiment{
		selectionExperiments(),
		aggregationExperiments(),
		distributionExperiments(),
		resilienceExperiments(),
		transformExperiments(),
		adaptationExperiments(),
		ablationExperiments(),
		baselineExperiments(),
		mobilityExperiments(),
		servingExperiments(),
		openloopExperiments(),
		registryExperiments(),
		paretoExperiments(),
	} {
		for _, e := range group {
			if _, dup := m[e.ID]; dup {
				panic("bench: duplicate experiment id " + e.ID)
			}
			m[e.ID] = e
		}
	}
	return m
}()

// Experiments lists the inventory sorted by ID.
func Experiments() []*Experiment {
	out := make([]*Experiment, 0, len(experiments))
	for _, e := range experiments {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns one experiment, or nil.
func ByID(id string) *Experiment { return experiments[id] }

// medianDuration runs f reps times and returns the median wall time.
func medianDuration(reps int, f func() error) (time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

// pick returns quick when cfg.Quick, full otherwise.
func pick[T any](cfg Config, quick, full T) T {
	if cfg.Quick {
		return quick
	}
	return full
}
