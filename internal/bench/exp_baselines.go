package bench

import (
	"time"

	"qasom/internal/baseline"
	"qasom/internal/core"
	"qasom/internal/qos"
	"qasom/internal/workload"
)

func baselineExperiments() []*Experiment {
	return []*Experiment{expBaselines(), expAblationPareto()}
}

// expBaselines compares every implemented selection algorithm on the
// same instances: time, utility relative to the exact optimum, and
// feasibility — the cross-algorithm view the thesis's related-work
// chapter frames (greedy vs global selection vs metaheuristics).
func expBaselines() *Experiment {
	return &Experiment{
		ID:    "baselines",
		Paper: "Ch. II §4 / Ch. IV §5 framing",
		Title: "QASSA vs greedy, local search, genetic, branch-and-bound, exhaustive",
		Expected: "Exact methods (exhaustive, B&B) set the optimum at " +
			"exponential cost; greedy is fastest but constraint-blind; " +
			"QASSA reaches near-optimal utility at milliseconds.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.StandardSet()
			n, services := 5, pick(cfg, 8, 12)
			seeds := pick(cfg, 3, 8)
			t := NewTable("Selection algorithms compared (n=5 activities, tight constraints, mean over seeds)",
				"algorithm", "mean_ms", "mean_optimality_pct", "feasible_rate")
			type stats struct {
				dur      time.Duration
				optSum   float64
				feasible int
				counted  int
			}
			algos := []string{"qassa", "greedy", "local-search", "genetic", "branch-and-bound", "exhaustive"}
			acc := make(map[string]*stats, len(algos))
			for _, a := range algos {
				acc[a] = &stats{}
			}
			for s := 0; s < seeds; s++ {
				inst := genInstance(cfg.Seed+int64(s), n, services, 3, ps,
					workload.ShapeMixed, workload.AtMean, qos.Pessimistic)
				opt, err := baseline.Exhaustive(inst.req, inst.cands, baseline.ExhaustiveOptions{})
				if err != nil {
					return nil, err
				}
				if !opt.Feasible {
					continue
				}
				run := func(name string, f func() (*core.Result, error)) error {
					start := time.Now()
					res, err := f()
					if err != nil {
						return err
					}
					st := acc[name]
					st.dur += time.Since(start)
					st.counted++
					if res.Feasible {
						st.feasible++
						st.optSum += 100 * res.Utility / opt.Utility
					}
					return nil
				}
				steps := []struct {
					name string
					f    func() (*core.Result, error)
				}{
					{"qassa", func() (*core.Result, error) {
						return core.NewSelector(core.Options{}).Select(inst.req, inst.cands)
					}},
					{"greedy", func() (*core.Result, error) { return baseline.Greedy(inst.req, inst.cands) }},
					{"local-search", func() (*core.Result, error) {
						return baseline.LocalSearch(inst.req, inst.cands, baseline.LocalSearchOptions{})
					}},
					{"genetic", func() (*core.Result, error) {
						return baseline.Genetic(inst.req, inst.cands, baseline.GeneticOptions{})
					}},
					{"branch-and-bound", func() (*core.Result, error) {
						return baseline.BranchAndBound(inst.req, inst.cands)
					}},
					{"exhaustive", func() (*core.Result, error) {
						return baseline.Exhaustive(inst.req, inst.cands, baseline.ExhaustiveOptions{})
					}},
				}
				for _, s := range steps {
					if err := run(s.name, s.f); err != nil {
						return nil, err
					}
				}
			}
			for _, name := range algos {
				st := acc[name]
				if st.counted == 0 {
					t.AddRow(name, "-", "-", "-")
					continue
				}
				meanMs := st.dur / time.Duration(st.counted)
				optimality := 0.0
				if st.feasible > 0 {
					optimality = st.optSum / float64(st.feasible)
				}
				t.AddRow(name, meanMs, optimality, float64(st.feasible)/float64(st.counted))
			}
			t.AddNote("optimality is utility relative to the exhaustive optimum, over feasible runs")
			return t, nil
		},
	}
}

// expAblationPareto measures the effect of Pareto-dominance pruning on
// QASSA's pool sizes, time and optimality.
func expAblationPareto() *Experiment {
	return &Experiment{
		ID:    "ablation-pareto",
		Paper: "design choice (local phase pre-filtering)",
		Title: "Pareto-dominance pruning of candidate pools",
		Expected: "Pruning removes dominated candidates without hurting " +
			"optimality (the optimum is always on the Pareto front), " +
			"shrinking the pools the global phase touches.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.StandardSet()
			t := NewTable("Pareto pruning (n=5 activities, 15 services/activity, c=3)",
				"pruning", "total_ms", "optimality_pct", "feasible_rate")
			for _, prune := range []bool{false, true} {
				opts := core.Options{PruneDominated: prune}
				inst := genInstance(cfg.Seed, 5, 15, 3, ps, workload.ShapeMixed,
					workload.AtMeanPlusSigma, qos.Pessimistic)
				total, err := medianDuration(cfg.Repetitions, func() error {
					_, err := runQASSA(inst, opts)
					return err
				})
				if err != nil {
					return nil, err
				}
				ratio, feas, err := meanOptimality(cfg, 5, 15, 3, ps,
					workload.ShapeMixed, workload.AtMeanPlusSigma, qos.Pessimistic, opts)
				if err != nil {
					return nil, err
				}
				label := "off"
				if prune {
					label = "on"
				}
				t.AddRow(label, total, ratio, feas)
			}
			return t, nil
		},
	}
}
