package bench

import (
	"fmt"
	"sort"
	"time"

	"qasom/internal/core"
	"qasom/internal/qos"
	"qasom/internal/resilience"
	"qasom/internal/simenv"
	"qasom/internal/workload"
)

func resilienceExperiments() []*Experiment {
	return []*Experiment{expVI12Churn()}
}

// expVI12Churn measures selection availability and latency while a
// fraction of the coordinator devices is failed (the ad hoc churn the
// resilience layer exists for). Every activity has two coordinator
// replicas; failures are injected at the transport seam. The failed-set
// order deliberately mixes the two survival paths: some activities lose
// one replica (retries/hedges rescue them against the live replica) and
// some lose both (the requester's degraded fallback rescues them).
func expVI12Churn() *Experiment {
	return &Experiment{
		ID:    "vi12churn",
		Paper: "Fig. VI.12 (resilience variant)",
		Title: "Distributed QASSA availability under coordinator churn",
		Expected: "Availability stays 1.0 through 50% coordinator failure: " +
			"lost replicas cost retries (and latency), fully lost activities " +
			"degrade to requester-side local selection instead of failing.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.StandardSet()
			const activities = 10
			rates := pick(cfg, []float64{0, 0.2}, []float64{0, 0.1, 0.2, 0.3, 0.5})
			runs := pick(cfg, 5, 20)
			t := NewTable("Distributed QASSA under coordinator churn (n=10, 2 replicas/activity, c=3)",
				"fail_rate", "availability", "p50_ms", "p99_ms", "degraded", "retries", "fallbacks", "hedges")
			for _, rate := range rates {
				inst := genInstance(cfg.Seed, activities, 25, 3, ps, workload.ShapeMixed,
					workload.AtMeanPlusSigma, qos.Pessimistic)
				fi := simenv.NewFaultInjector(cfg.Seed)
				replicas := make(map[string][]core.Transport, inst.tk.Size())
				var primaries, secondaries []string
				for _, a := range inst.tk.Activities() {
					primary := core.NewDeviceNode("primary-"+a.ID, 0)
					primary.Host(a.ID, inst.cands[a.ID])
					secondary := core.NewDeviceNode("secondary-"+a.ID, 0)
					secondary.Host(a.ID, inst.cands[a.ID])
					replicas[a.ID] = []core.Transport{
						fi.Wrap(&core.InProcessTransport{Name: primary.Name, Selector: primary}),
						fi.Wrap(&core.InProcessTransport{Name: secondary.Name, Selector: secondary}),
					}
					primaries = append(primaries, primary.Name)
					secondaries = append(secondaries, secondary.Name)
				}
				// Fail round(rate * devices) coordinators, alternating
				// "both replicas of an activity" with "primary only": the
				// sweep exercises retry-rescue and degraded-fallback at
				// every non-zero rate.
				toFail := int(rate*float64(2*activities) + 0.5)
				failOrder := make([]string, 0, 2*activities)
				for i := 0; i < activities; i++ {
					failOrder = append(failOrder, primaries[i])
					if i%2 == 0 {
						failOrder = append(failOrder, secondaries[i])
					}
				}
				for i := 0; i < toFail && i < len(failOrder); i++ {
					fi.Set(failOrder[i], simenv.Fault{DropProb: 1})
				}
				policy := resilience.Policy{
					MaxAttempts: 3,
					BaseBackoff: 200 * time.Microsecond,
					MaxBackoff:  time.Millisecond,
					HedgeDelay:  5 * time.Millisecond,
				}
				sel := core.NewResilientDistributedSelector(core.Options{Seed: cfg.Seed}, replicas,
					core.DistConfig{Policy: policy, Fallback: inst.cands})
				var (
					ok, degradedRuns, retries, fallbacks, hedges int
					times                                        []time.Duration
				)
				for r := 0; r < runs; r++ {
					start := time.Now()
					res, err := sel.Select(benchCtx(), inst.req)
					times = append(times, time.Since(start))
					if err != nil {
						continue
					}
					ok++
					if res.Degraded {
						degradedRuns++
					}
					retries += res.Stats.Retries
					fallbacks += res.Stats.Fallbacks
					hedges += res.Stats.Hedges
				}
				sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
				p50 := times[len(times)/2]
				p99 := times[(len(times)*99+99)/100-1]
				t.AddRow(fmt.Sprintf("%.2f", rate), float64(ok)/float64(runs),
					p50, p99, degradedRuns, retries, fallbacks, hedges)
			}
			t.AddNote("availability = selections returning a result / attempts; degraded counts runs where ≥1 activity fell back to requester-side selection")
			t.AddNote("drop faults fail fast at the transport seam, so hedges stay rare (hedging targets slow replicas, not dead ones)")
			return t, nil
		},
	}
}
