package bench

import (
	"fmt"
	"sort"
	"time"

	"qasom/internal/baseline"
	"qasom/internal/core"
	"qasom/internal/qos"
	"qasom/internal/workload"
)

// paretoExperiments returns the multi-objective selection experiments
// (DESIGN.md §4j).
func paretoExperiments() []*Experiment {
	return []*Experiment{expParetoFront()}
}

// expParetoFront measures the Pareto-front selection mode: front size
// and hypervolume against the exhaustive reference front, plus the
// select-latency quantiles, in both regimes (exact enumeration under
// the exhaustive bound, archive-guided sweep above it — here forced by
// shrinking the bound so the same instance has a reference).
func expParetoFront() *Experiment {
	return &Experiment{
		ID:    "pareto",
		Paper: "multi-objective extension (DESIGN.md §4j)",
		Title: "Pareto-front selection: front quality and cost",
		Expected: "The exact regime reproduces the exhaustive reference front " +
			"(hypervolume ratio 100%); the sweep regime recovers most of the " +
			"reference hypervolume at a fraction of the enumeration cost.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.StandardSet()
			objSets := [][]string{
				{"responseTime", "price"},
				{"responseTime", "price", "availability"},
			}
			regimes := []struct {
				name  string
				bound int // ParetoExhaustiveBound override (0 = default)
			}{
				{"exact", 0},
				{"sweep", 1}, // force the archive sweep on the same instance
			}
			t := NewTable("Pareto-front selection (n=5 activities, 4 services/activity, c=2)",
				"regime", "objectives", "front_size", "ref_size", "hv_ratio_pct", "p50_ms", "p99_ms")
			seeds := pick(cfg, 2, 6)
			for _, regime := range regimes {
				for _, objs := range objSets {
					var frontSum, refSum, counted int
					var hvSum float64
					var lats []time.Duration
					for s := 0; s < seeds; s++ {
						inst := genInstance(cfg.Seed+int64(s), 5, 4, 2, ps,
							workload.ShapeMixed, workload.AtMeanPlusSigma, qos.Pessimistic)
						inst.req.Objectives = objs
						ref, err := baseline.ExhaustiveFront(inst.req, inst.cands, baseline.ExhaustiveOptions{})
						if err != nil {
							return nil, err
						}
						opts := core.Options{ParetoMode: true, ParetoExhaustiveBound: regime.bound}
						var res *core.Result
						for r := 0; r < cfg.Repetitions; r++ {
							start := time.Now()
							res, err = runQASSA(inst, opts)
							lats = append(lats, time.Since(start))
							if err != nil {
								return nil, err
							}
						}
						if len(ref) == 0 || len(res.Front) == 0 {
							continue // infeasible instance: quality undefined
						}
						ratio, err := hvRatio(inst.req, ref, res.Front)
						if err != nil {
							return nil, err
						}
						counted++
						frontSum += len(res.Front)
						refSum += len(ref)
						hvSum += ratio
					}
					if counted == 0 {
						return nil, fmt.Errorf("pareto: no feasible instance in the sweep")
					}
					t.AddRow(regime.name, len(objs),
						fmt.Sprintf("%.1f", float64(frontSum)/float64(counted)),
						fmt.Sprintf("%.1f", float64(refSum)/float64(counted)),
						100*hvSum/float64(counted),
						durQuantile(lats, 0.50), durQuantile(lats, 0.99))
				}
			}
			t.AddNote("hv_ratio is the selection front's hypervolume relative to the exhaustive reference front, shared reference point")
			t.AddNote("the exact regime enumerates (ratio 100 by construction); sweep forces the archive heuristic on the same instance")
			return t, nil
		},
	}
}

// hvRatio compares the hypervolume of the returned front against the
// exhaustive reference front over the request's objectives, under a
// shared reference point (the componentwise worst of both fronts).
func hvRatio(req *core.Request, ref, got []core.Result) (float64, error) {
	objIdx := req.EffectiveObjectives()
	props := make([]*qos.Property, len(objIdx))
	for i, j := range objIdx {
		props[i] = req.Properties.At(j)
	}
	project := func(front []core.Result) []qos.Vector {
		out := make([]qos.Vector, len(front))
		for i, m := range front {
			v := make(qos.Vector, len(objIdx))
			for k, j := range objIdx {
				v[k] = m.Aggregated[j]
			}
			out[i] = v
		}
		return out
	}
	refVecs, gotVecs := project(ref), project(got)
	// Shared reference point: strictly worse than every member of either
	// front so each member contributes volume.
	worst := make(qos.Vector, len(props))
	copy(worst, refVecs[0])
	for _, vs := range [][]qos.Vector{refVecs, gotVecs} {
		for _, v := range vs {
			for j, p := range props {
				if p.Worse(v[j], worst[j]) {
					worst[j] = v[j]
				}
			}
		}
	}
	for j, p := range props {
		pad := 0.05 * worst[j]
		if pad < 0 {
			pad = -pad
		}
		if pad == 0 {
			pad = 1
		}
		if p.Direction == qos.Minimized {
			worst[j] += pad
		} else {
			worst[j] -= pad
		}
	}
	hvRef, err := qos.Hypervolume(props, refVecs, worst)
	if err != nil {
		return 0, err
	}
	hvGot, err := qos.Hypervolume(props, gotVecs, worst)
	if err != nil {
		return 0, err
	}
	if hvRef <= 0 {
		return 1, nil
	}
	return hvGot / hvRef, nil
}

// durQuantile returns the q-quantile of the collected durations.
func durQuantile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
