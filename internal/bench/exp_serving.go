package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qasom"
	"qasom/internal/obs"
)

func servingExperiments() []*Experiment {
	return []*Experiment{expServingThroughput()}
}

// ThroughputConfig parameterises a closed-loop serving run: N clients
// compose the same task back-to-back against one middleware while the
// registry churns underneath, the steady-state regime the selection-plan
// cache exists for.
type ThroughputConfig struct {
	// Clients is the number of concurrent closed-loop clients; 0 means
	// GOMAXPROCS.
	Clients int
	// Churn runs a background publisher/withdrawer during the run: mostly
	// capabilities the task does not touch (the cache must keep hitting),
	// with a periodic touched-capability churn that forces epoch
	// invalidation and a fresh selection.
	Churn bool
	// Seed drives the middleware; 0 means 1.
	Seed int64
	// Ctx cancels a long run early; the partial result is still reported
	// (Partial is set). Nil means Background.
	Ctx context.Context
}

// ThroughputResult is the outcome of one closed-loop run.
type ThroughputResult struct {
	// Ops is the number of compositions completed.
	Ops int
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
	// OpsPerSec is Ops/Elapsed.
	OpsPerSec float64
	// P50 and P99 are per-composition latency quantiles.
	P50, P99 time.Duration
	// HitRate is the fraction of compositions served from the plan cache.
	HitRate float64
	// SLOAttainment is the fraction of compositions inside the rig's
	// serving SLO (latency under servingSLOLatency and no error), as
	// reported by the hub's burn-rate engine.
	SLOAttainment float64
	// Partial reports that Ctx was cancelled before the run finished.
	Partial bool
}

// ThroughputRig is a prepared serving workload: a middleware with the
// shopping environment published, a fixed feasible request, and the
// client/churner configuration. Separate from Run so benchmarks can
// exclude setup from the timed section.
type ThroughputRig struct {
	mw      *qasom.Middleware
	req     qasom.Request
	slo     *obs.SLOEngine
	clients int
	churn   bool
	ctx     context.Context
}

// servingSLOLatency is the per-composition latency objective of the
// serving SLO: generous against the warm-cache path (tens of µs) yet
// tight enough that a fresh selection under churn registers as a slow
// request when the machine is loaded.
const servingSLOLatency = 250 * time.Microsecond

const servingTask = `<process name="serving-shopping" concept="Shopping">
  <sequence>
    <invoke activity="browse" concept="BrowseCatalog"/>
    <invoke activity="order" concept="OrderItem"/>
    <invoke activity="pay" concept="Payment"/>
  </sequence>
</process>`

// newServingEnv builds the shared serving workload both load rigs
// (closed-loop ThroughputRig, open-loop OpenLoopRig) measure: a
// middleware reporting into a private hub (so runs do not pollute the
// process-wide registry), the shopping environment published, an
// attached serving SLO, and the fixed feasible request.
func newServingEnv(seed int64) (*qasom.Middleware, *obs.SLOEngine, qasom.Request, error) {
	if seed == 0 {
		seed = 1
	}
	req := qasom.Request{
		Task:        servingTask,
		Constraints: []qasom.Constraint{{Property: "responseTime", Bound: 300}},
	}
	hub := obs.NewHub()
	slo := obs.NewSLOEngine(obs.SLOConfig{
		Name:             "serving",
		Availability:     0.999,
		LatencyObjective: servingSLOLatency,
	}, hub.Metrics)
	hub.SLO = slo
	mw, err := qasom.New(qasom.Options{Seed: seed, Obs: hub})
	if err != nil {
		return nil, nil, req, err
	}
	for _, spec := range []struct{ prefix, capability string }{
		{"browse", "BrowseCatalog"}, {"order", "OrderItem"}, {"pay", "CardPayment"},
	} {
		for i := 0; i < 5; i++ {
			err := mw.Publish(qasom.Service{
				ID:         fmt.Sprintf("%s-%d", spec.prefix, i),
				Capability: spec.capability,
				QoS: map[string]float64{
					"responseTime": 40 + float64(5*i), "price": 5,
					"availability": 0.95, "reliability": 0.9, "throughput": 40,
				},
			})
			if err != nil {
				return nil, nil, req, err
			}
		}
	}
	return mw, slo, req, nil
}

// startServingChurn runs the background publisher/withdrawer of the
// serving rigs until the returned stop function is called: mostly
// capabilities the task does not touch (the cache must keep hitting),
// with every 32nd cycle churning a touched capability to force an epoch
// invalidation and a fresh selection.
func startServingChurn(mw *qasom.Middleware) (stop func()) {
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopCh:
				return
			default:
			}
			capability, id := "LabAnalysis", fmt.Sprintf("churn-lab-%d", i%4)
			if i%32 == 31 {
				capability, id = "OrderItem", fmt.Sprintf("churn-order-%d", i%4)
			}
			_ = mw.Publish(qasom.Service{
				ID: id, Capability: capability,
				QoS: map[string]float64{
					"responseTime": 35, "price": 4,
					"availability": 0.96, "reliability": 0.92, "throughput": 45,
				},
			})
			mw.Withdraw(id)
			time.Sleep(100 * time.Microsecond)
		}
	}()
	return func() {
		close(stopCh)
		wg.Wait()
	}
}

// NewThroughputRig builds the closed-loop serving workload.
func NewThroughputRig(cfg ThroughputConfig) (*ThroughputRig, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = runtime.GOMAXPROCS(0)
	}
	if cfg.Ctx == nil {
		cfg.Ctx = context.Background()
	}
	mw, slo, req, err := newServingEnv(cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &ThroughputRig{
		mw:      mw,
		slo:     slo,
		req:     req,
		clients: cfg.Clients,
		churn:   cfg.Churn,
		ctx:     cfg.Ctx,
	}, nil
}

// Warm populates the plan cache with one composition so a subsequent Run
// measures the steady state rather than the first-request miss.
func (r *ThroughputRig) Warm() error {
	_, err := r.mw.Compose(r.req)
	return err
}

// Run executes ops compositions across the rig's clients (closed loop:
// each client issues its next request as soon as the previous one
// returns) and reports throughput, latency quantiles and the cache hit
// rate. When the rig's context is cancelled mid-run, the clients drain
// promptly and the partial counts are still reported.
func (r *ThroughputRig) Run(ops int) (ThroughputResult, error) {
	if ops < 1 {
		ops = 1
	}
	var stopChurn func()
	if r.churn {
		stopChurn = startServingChurn(r.mw)
	}

	var next atomic.Int64
	var hits atomic.Int64
	var done atomic.Int64
	var cancelled atomic.Bool
	latencies := make([][]time.Duration, r.clients)
	errs := make([]error, r.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < r.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lats := make([]time.Duration, 0, ops/r.clients+1)
			for {
				if int(next.Add(1)) > ops {
					break
				}
				if r.ctx.Err() != nil {
					cancelled.Store(true)
					break
				}
				opStart := time.Now()
				comp, err := r.mw.ComposeContext(r.ctx, r.req)
				r.slo.Observe(time.Since(opStart), err)
				if err != nil {
					if r.ctx.Err() != nil {
						cancelled.Store(true)
						break
					}
					errs[c] = err
					break
				}
				lats = append(lats, time.Since(opStart))
				done.Add(1)
				if comp.SelectionStats().CacheHit {
					hits.Add(1)
				}
			}
			latencies[c] = lats
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if stopChurn != nil {
		stopChurn()
	}
	for _, err := range errs {
		if err != nil {
			return ThroughputResult{}, err
		}
	}

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := ThroughputResult{
		Ops:     int(done.Load()),
		Elapsed: elapsed,
		Partial: cancelled.Load(),
	}
	if res.Ops > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
		res.P50 = all[len(all)/2]
		res.P99 = all[min(len(all)-1, len(all)*99/100)]
		res.HitRate = float64(hits.Load()) / float64(res.Ops)
		res.SLOAttainment = r.slo.Attainment()
	}
	return res, nil
}

// expServingThroughput is the closed-loop serving experiment: ops/sec
// and latency quantiles per client count, over the churning registry,
// with the plan cache warm — the steady-state regime the ROADMAP
// north-star targets (BENCH_qassa.json records the same run as
// BenchmarkThroughput).
func expServingThroughput() *Experiment {
	return &Experiment{
		ID:    "serving",
		Paper: "§serving (ROADMAP)",
		Title: "Closed-loop serving throughput: concurrent clients, warm plan cache, churning registry",
		Expected: "ops/sec scales with clients while the hit rate stays high; " +
			"periodic touched-capability churn forces fresh selections without stalling the loop",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			tbl := NewTable("Serving throughput (closed loop)",
				"clients", "ops", "ops/sec", "p50 (ms)", "p99 (ms)", "cache hit rate", "slo attainment")
			ops := pick(cfg, 200, 2000)
			for _, clients := range pick(cfg, []int{1, 4}, []int{1, 2, 4, 8}) {
				rig, err := NewThroughputRig(ThroughputConfig{
					Clients: clients, Churn: true, Seed: cfg.Seed, Ctx: cfg.Ctx,
				})
				if err != nil {
					return nil, err
				}
				if err := rig.Warm(); err != nil {
					return nil, err
				}
				res, err := rig.Run(ops)
				if err != nil {
					return nil, err
				}
				tbl.AddRow(clients, res.Ops, res.OpsPerSec,
					float64(res.P50)/float64(time.Millisecond),
					float64(res.P99)/float64(time.Millisecond),
					res.HitRate, res.SLOAttainment)
				if res.Partial {
					tbl.AddNote("interrupted at %d clients: partial results above", clients)
					break
				}
			}
			return tbl, nil
		},
	}
}
