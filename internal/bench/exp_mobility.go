package bench

import (
	"fmt"

	"qasom/internal/exec"
	"qasom/internal/monitor"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
	"qasom/internal/simenv"
	"qasom/internal/task"
)

func mobilityExperiments() []*Experiment {
	return []*Experiment{expMobility()}
}

// expMobility demonstrates the end-to-end QoS model operationally: the
// same service delivers increasingly worse QoS as the user walks away
// from its hosting device (link latency grows, then the signal breaks),
// even though the service's own performance and advertisement never
// change — exactly the mismatch the thesis's monitoring layer exists to
// catch.
func expMobility() *Experiment {
	return &Experiment{
		ID:    "mobility",
		Paper: "Ch. III end-to-end model (operational)",
		Title: "Delivered vs advertised QoS under user mobility",
		Expected: "Delivered response time = advertised + distance·link " +
			"cost; the monitor's estimate tracks the delivered value and " +
			"the link breaks beyond radio range.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.StandardSet()
			onto := semantics.PervasiveWithScenarios()
			reg := registry.New(onto)
			env := simenv.New(ps, reg, simenv.Options{Seed: cfg.Seed})
			if err := env.EnableMobility(simenv.RadioModel{Arena: 100, Range: 45, LatencyPerUnit: 2}); err != nil {
				return nil, err
			}
			desc := registry.Description{
				ID: "stream-1", Concept: semantics.AudioStreaming, Provider: "host-dev",
				Offers: []registry.QoSOffer{
					{Property: semantics.ResponseTime, Value: 60},
					{Property: semantics.Price, Value: 0},
					{Property: semantics.Availability, Value: 0.95},
					{Property: semantics.Reliability, Value: 0.9},
					{Property: semantics.Throughput, Value: 50},
				},
			}
			if err := env.Deploy(simenv.Service{Desc: desc}); err != nil {
				return nil, err
			}
			if err := env.PlaceDevice("host-dev", simenv.Position{X: 50, Y: 50}, 0); err != nil {
				return nil, err
			}
			mon := monitor.New(ps, monitor.Options{Alpha: 1})
			activity := &task.Activity{ID: "stream", Concept: semantics.AudioStreaming}

			t := NewTable("Delivered QoS vs user distance (advertised rt = 60ms, 2ms/unit, range 45)",
				"distance", "delivered_rt_ms", "signal", "reachable", "monitor_estimate_ms")
			for _, dist := range []float64{0, 10, 20, 30, 40, 50} {
				env.SetUserPosition(simenv.Position{X: 50 + dist, Y: 50})
				res, err := env.Invoke(benchCtx(), "stream-1", activity)
				if err != nil {
					return nil, err
				}
				if err := mon.Report(monitor.Observation{
					Service: "stream-1", Vector: res.Measured, Success: res.Success,
				}); err != nil {
					return nil, err
				}
				est, _ := mon.Estimate("stream-1")
				t.AddRow(dist, res.Measured[0], env.SignalStrength("host-dev"),
					res.Success, est[0])
			}
			// Sanity: the executor over this environment reports failures
			// beyond range (feeding the adaptation loop).
			env.SetUserPosition(simenv.Position{X: 99, Y: 50})
			tk := &task.Task{Name: "m", Concept: semantics.EntertainmentService,
				Root: task.NewActivity(activity)}
			e := &exec.Executor{
				Invoker: env,
				Binder: exec.BinderFunc(func(a *task.Activity) (registry.Candidate, error) {
					d, _ := reg.Get("stream-1")
					v, err := d.VectorFor(ps, onto)
					return registry.Candidate{Service: d, Vector: v}, err
				}),
				Options: exec.Options{MaxAttempts: 1},
			}
			if _, err := e.Run(benchCtx(), tk); err == nil {
				return nil, fmt.Errorf("bench: out-of-range execution should fail")
			}
			t.AddNote("at distance 49 the executor correctly fails the invocation (signal lost)")
			return t, nil
		},
	}
}
