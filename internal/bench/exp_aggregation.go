package bench

import (
	"qasom/internal/core"
	"qasom/internal/qos"
	"qasom/internal/workload"
)

func aggregationExperiments() []*Experiment {
	return []*Experiment{expTableIV1(), expVI7(), expVI8()}
}

// expTableIV1 prints the aggregation-formula matrix of Table IV.1 with
// worked values, verifying every cell operationally.
func expTableIV1() *Experiment {
	return &Experiment{
		ID:    "qosagg",
		Paper: "Table IV.1",
		Title: "QoS aggregation formulas per composition pattern",
		Expected: "Time: sum/max/branch/k·x; cost: sum/sum/branch/k·x; " +
			"probability: product/product/branch/x^k; bottleneck: min/min/branch/x.",
		Run: func(cfg Config) (*Table, error) {
			kinds := []struct {
				name string
				prop *qos.Property
				vals []float64
				loop float64
			}{
				{"time", &qos.Property{Name: "t", Direction: qos.Minimized, Kind: qos.KindTime}, []float64{10, 20, 30}, 10},
				{"cost", &qos.Property{Name: "c", Direction: qos.Minimized, Kind: qos.KindCost}, []float64{1, 2, 3}, 1},
				{"probability", &qos.Property{Name: "p", Direction: qos.Maximized, Kind: qos.KindProbability}, []float64{0.9, 0.8, 0.95}, 0.9},
				{"bottleneck", &qos.Property{Name: "b", Direction: qos.Maximized, Kind: qos.KindBottleneck}, []float64{40, 20, 60}, 40},
			}
			loop := qos.Loop{Min: 1, Max: 3, Expected: 2}
			t := NewTable("Table IV.1 — aggregation formulas (example values in parentheses)",
				"kind", "sequence", "parallel", "choice_pess", "choice_opt", "choice_mean", "loop_pess(x,k=3)")
			for _, k := range kinds {
				t.AddRow(
					k.name,
					qos.AggregateSequence(k.prop, k.vals),
					qos.AggregateParallel(k.prop, k.vals),
					qos.AggregateChoice(k.prop, k.vals, nil, qos.Pessimistic),
					qos.AggregateChoice(k.prop, k.vals, nil, qos.Optimistic),
					qos.AggregateChoice(k.prop, k.vals, nil, qos.MeanValue),
					qos.AggregateLoop(k.prop, k.loop, loop, qos.Pessimistic),
				)
			}
			return t, nil
		},
	}
}

func expVI7() *Experiment {
	return &Experiment{
		ID:    "vi7",
		Paper: "Fig. VI.7(a-c)",
		Title: "QASSA execution time per aggregation approach",
		Expected: "All three approaches cost similar time (the approach " +
			"changes the folded value, not the search structure); the sweep " +
			"shape stays linear in services.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.StandardSet()
			sweep := pick(cfg, []int{10, 50}, []int{10, 25, 50, 100, 200})
			t := NewTable("QASSA time per aggregation approach (choice-heavy task, n=10, c=3)",
				"approach", "services", "total_ms", "feasible")
			for _, approach := range qos.Approaches() {
				for _, services := range sweep {
					inst := genInstance(cfg.Seed, 10, services, 3, ps,
						workload.ShapeChoiceHeavy, workload.AtMeanPlusSigma, approach)
					var last *core.Result
					total, err := medianDuration(cfg.Repetitions, func() error {
						res, err := runQASSA(inst, core.Options{})
						last = res
						return err
					})
					if err != nil {
						return nil, err
					}
					t.AddRow(approach.String(), services, total, last.Feasible)
				}
			}
			return t, nil
		},
	}
}

func expVI8() *Experiment {
	return &Experiment{
		ID:    "vi8",
		Paper: "Fig. VI.8(a-c)",
		Title: "QASSA optimality per aggregation approach",
		Expected: "Optimality stays high for every approach; the optimistic " +
			"approach accepts more compositions (it assumes best branches), " +
			"the pessimistic one is the most conservative.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.StandardSet()
			sweep := pick(cfg, []int{5, 10}, []int{5, 10, 15, 20})
			t := NewTable("Optimality per aggregation approach (choice-heavy task, n=5, c=3)",
				"approach", "services", "optimality_pct", "feasible_rate")
			for _, approach := range qos.Approaches() {
				for _, services := range sweep {
					ratio, feas, err := meanOptimality(cfg, 5, services, 3, ps,
						workload.ShapeChoiceHeavy, workload.AtMeanPlusSigma, approach, core.Options{})
					if err != nil {
						return nil, err
					}
					t.AddRow(approach.String(), services, ratio, feas)
				}
			}
			return t, nil
		},
	}
}
