package bench

import (
	"fmt"

	"qasom/internal/baseline"
	"qasom/internal/core"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/task"
	"qasom/internal/workload"
)

// instance bundles one generated selection problem.
type instance struct {
	req   *core.Request
	cands map[string][]registry.Candidate
	tk    *task.Task
}

// genInstance builds a selection problem: a task of n activities,
// services per activity with normal-law QoS, c global constraints at the
// given tightness.
func genInstance(seed int64, n, services, c int, ps *qos.PropertySet,
	shape workload.TaskShape, tight workload.Tightness, approach qos.Approach) *instance {
	g := workload.NewGenerator(seed)
	laws := workload.DefaultLaws(ps)
	tk := g.Task("T", n, shape)
	cands := g.Candidates(tk, services, ps, laws)
	req := &core.Request{
		Task:        tk,
		Properties:  ps,
		Constraints: g.Constraints(tk, ps, laws, tight, c),
		Approach:    approach,
	}
	return &instance{req: req, cands: cands, tk: tk}
}

// runQASSA executes one selection and returns the result plus split
// phase times.
func runQASSA(inst *instance, opts core.Options) (*core.Result, error) {
	return core.NewSelector(opts).Select(inst.req, inst.cands)
}

// optimalityPoint runs QASSA and the exhaustive optimum on the same
// instance and returns utility ratio in percent plus feasibility info.
func optimalityPoint(inst *instance, opts core.Options) (ratio float64, qassaFeasible, optFeasible bool, err error) {
	opt, err := baseline.Exhaustive(inst.req, inst.cands, baseline.ExhaustiveOptions{})
	if err != nil {
		return 0, false, false, err
	}
	heur, err := runQASSA(inst, opts)
	if err != nil {
		return 0, false, false, err
	}
	if !opt.Feasible {
		return 100, heur.Feasible, false, nil
	}
	if opt.Utility <= 0 {
		return 100, heur.Feasible, true, nil
	}
	return 100 * heur.Utility / opt.Utility, heur.Feasible, true, nil
}

// meanOptimality averages optimality over several seeds.
func meanOptimality(cfg Config, n, services, c int, ps *qos.PropertySet,
	shape workload.TaskShape, tight workload.Tightness, approach qos.Approach,
	opts core.Options) (ratio float64, feasRate float64, err error) {
	seeds := pick(cfg, 3, 8)
	sum, feas, counted := 0.0, 0, 0
	for s := 0; s < seeds; s++ {
		inst := genInstance(cfg.Seed+int64(s), n, services, c, ps, shape, tight, approach)
		r, qf, of, err := optimalityPoint(inst, opts)
		if err != nil {
			return 0, 0, err
		}
		if !of {
			continue // infeasible instance: optimality undefined
		}
		counted++
		sum += r
		if qf {
			feas++
		}
	}
	if counted == 0 {
		return 100, 1, nil
	}
	return sum / float64(counted), float64(feas) / float64(counted), nil
}

func selectionExperiments() []*Experiment {
	return []*Experiment{
		expVI5a(), expVI5b(), expVI6a(), expVI6b(), expVI9(), expVI10(), expVI11(),
	}
}

func expVI5a() *Experiment {
	return &Experiment{
		ID:    "vi5a",
		Paper: "Fig. VI.5(a)",
		Title: "QASSA execution time vs services per activity",
		Expected: "Execution time grows roughly linearly in the number of " +
			"services per activity and stays in the milliseconds-to-tens-of-" +
			"milliseconds regime (the thesis reports on-the-fly viability).",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.StandardSet()
			sweep := pick(cfg, []int{10, 25, 50}, []int{10, 25, 50, 100, 200, 300})
			t := NewTable("QASSA time vs services/activity (n=10 activities, c=3)",
				"services", "local_ms", "global_ms", "total_ms", "feasible")
			for _, services := range sweep {
				inst := genInstance(cfg.Seed, 10, services, 3, ps, workload.ShapeMixed,
					workload.AtMeanPlusSigma, qos.Pessimistic)
				var last *core.Result
				total, err := medianDuration(cfg.Repetitions, func() error {
					res, err := runQASSA(inst, core.Options{})
					last = res
					return err
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(services, last.Stats.LocalDuration, last.Stats.GlobalDuration,
					total, last.Feasible)
			}
			return t, nil
		},
	}
}

func expVI5b() *Experiment {
	return &Experiment{
		ID:    "vi5b",
		Paper: "Fig. VI.5(b)",
		Title: "QASSA execution time vs number of global QoS constraints",
		Expected: "Execution time grows mildly with the constraint count " +
			"(each constraint adds one clustering dimension and more repair work).",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.ExtendedSet()
			sweep := pick(cfg, []int{1, 3, 5}, []int{1, 2, 3, 4, 5, 6, 7, 8})
			t := NewTable("QASSA time vs constraints (n=10 activities, 50 services/activity)",
				"constraints", "total_ms", "feasible")
			for _, c := range sweep {
				inst := genInstance(cfg.Seed, 10, 50, c, ps, workload.ShapeMixed,
					workload.AtMeanPlusSigma, qos.Pessimistic)
				var last *core.Result
				total, err := medianDuration(cfg.Repetitions, func() error {
					res, err := runQASSA(inst, core.Options{})
					last = res
					return err
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(c, total, last.Feasible)
			}
			return t, nil
		},
	}
}

func expVI6a() *Experiment {
	return &Experiment{
		ID:    "vi6a",
		Paper: "Fig. VI.6(a)",
		Title: "Optimality vs services per activity (QASSA vs exhaustive)",
		Expected: "Optimality (utility relative to the exhaustive optimum) " +
			"stays above ~90% across the sweep.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.StandardSet()
			sweep := pick(cfg, []int{5, 10}, []int{5, 10, 15, 20})
			t := NewTable("Optimality vs services/activity (n=5 activities, c=3)",
				"services", "optimality_pct", "feasible_rate")
			for _, services := range sweep {
				ratio, feas, err := meanOptimality(cfg, 5, services, 3, ps,
					workload.ShapeMixed, workload.AtMeanPlusSigma, qos.Pessimistic, core.Options{})
				if err != nil {
					return nil, err
				}
				t.AddRow(services, ratio, feas)
			}
			return t, nil
		},
	}
}

func expVI6b() *Experiment {
	return &Experiment{
		ID:    "vi6b",
		Paper: "Fig. VI.6(b)",
		Title: "Optimality vs number of constraints (QASSA vs exhaustive)",
		Expected: "Optimality stays high; tight many-constraint settings " +
			"cost a few points as the feasible region shrinks.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.ExtendedSet()
			sweep := pick(cfg, []int{1, 3}, []int{1, 2, 3, 4, 5, 6, 7, 8})
			t := NewTable("Optimality vs constraints (n=5 activities, 10 services/activity)",
				"constraints", "optimality_pct", "feasible_rate")
			for _, c := range sweep {
				ratio, feas, err := meanOptimality(cfg, 5, 10, c, ps,
					workload.ShapeMixed, workload.AtMeanPlusSigma, qos.Pessimistic, core.Options{})
				if err != nil {
					return nil, err
				}
				t.AddRow(c, ratio, feas)
			}
			return t, nil
		},
	}
}

func expVI9() *Experiment {
	return &Experiment{
		ID:    "vi9",
		Paper: "Fig. VI.9",
		Title: "Normal distribution law of generated QoS values",
		Expected: "The empirical density of generated QoS values tracks the " +
			"N(50,15) probability density function.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			g := workload.NewGenerator(cfg.Seed)
			law := workload.Law{Mean: 50, Std: 15, Min: 0.001}
			samples := pick(cfg, 5000, 50000)
			values := make([]float64, samples)
			for i := range values {
				values[i] = law.Sample(g.Rand())
			}
			h, err := workload.NewHistogram(values, 20)
			if err != nil {
				return nil, err
			}
			t := NewTable(fmt.Sprintf("QoS value distribution (%d samples, N(50,15))", samples),
				"bin_center", "empirical_density", "normal_pdf")
			for i := range h.Counts {
				c := h.BinCenter(i)
				t.AddRow(c, h.Density(i), workload.NormalPDF(50, 15, c))
			}
			return t, nil
		},
	}
}

func expVI10() *Experiment {
	return &Experiment{
		ID:    "vi10",
		Paper: "Fig. VI.10(a,b)",
		Title: "Execution time with global constraints fixed at m vs m+sigma",
		Expected: "Tight constraints (bounds at m) cost more time than " +
			"relaxed ones (m+sigma): more levels explored, more repair swaps.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.StandardSet()
			sweep := pick(cfg, []int{10, 50}, []int{10, 25, 50, 100, 200})
			t := NewTable("QASSA time vs constraint tightness (n=10 activities, c=3)",
				"tightness", "services", "total_ms", "levels", "repair_swaps", "feasible")
			for _, tight := range []workload.Tightness{workload.AtMean, workload.AtMeanPlusSigma} {
				for _, services := range sweep {
					inst := genInstance(cfg.Seed, 10, services, 3, ps, workload.ShapeMixed,
						tight, qos.Pessimistic)
					var last *core.Result
					total, err := medianDuration(cfg.Repetitions, func() error {
						res, err := runQASSA(inst, core.Options{})
						last = res
						return err
					})
					if err != nil {
						return nil, err
					}
					t.AddRow(tight.String(), services, total, last.Stats.LevelsExplored,
						last.Stats.RepairSwaps, last.Feasible)
				}
			}
			return t, nil
		},
	}
}

func expVI11() *Experiment {
	return &Experiment{
		ID:    "vi11",
		Paper: "Fig. VI.11(a,b)",
		Title: "Optimality with global constraints fixed at m vs m+sigma",
		Expected: "Optimality degrades slightly under tight constraints " +
			"(m) compared with relaxed ones (m+sigma).",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.StandardSet()
			sweep := pick(cfg, []int{5, 10}, []int{5, 10, 15, 20})
			t := NewTable("Optimality vs constraint tightness (n=5 activities, c=3)",
				"tightness", "services", "optimality_pct", "feasible_rate")
			for _, tight := range []workload.Tightness{workload.AtMean, workload.AtMeanPlusSigma} {
				for _, services := range sweep {
					ratio, feas, err := meanOptimality(cfg, 5, services, 3, ps,
						workload.ShapeMixed, tight, qos.Pessimistic, core.Options{})
					if err != nil {
						return nil, err
					}
					t.AddRow(tight.String(), services, ratio, feas)
				}
			}
			return t, nil
		},
	}
}
