package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"qasom/internal/adapt"
	"qasom/internal/core"
	"qasom/internal/monitor"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
	"qasom/internal/simenv"
	"qasom/internal/subidx"
	"qasom/internal/task"
)

// FailoverConfig parameterises the time-to-recover rig: a three-step
// shopping task selected at ℓ candidates per activity with a capped
// alternate list, where the victim activity's alternates carry a "dead
// prefix" — a withdrawn slice the registry no longer knows and an
// unhealthy slice the monitor has seen failing — that every failover
// must get past before it reaches a live candidate. That prefix is what
// makes recovery cost scale with candidate-set size on the reactive
// path and stay flat on the indexed one.
type FailoverConfig struct {
	// Services per capability (the paper's ℓ axis); 0 means 300.
	Services int
	// Alternates caps the per-activity alternate list; 0 means 50.
	Alternates int
	// WithdrawnFrac of the victim's alternates leave the registry
	// before measurement; 0 means 0.6.
	WithdrawnFrac float64
	// UnhealthyFrac of the victim's alternates fail below the
	// monitor's MinSuccessRate; 0 means 0.2.
	UnhealthyFrac float64
	// Indexed attaches a warm substitution index to the manager;
	// false measures the reactive alternate scan.
	Indexed bool
	// Seed drives the simulated environment; 0 means 1.
	Seed int64
}

func (c FailoverConfig) withDefaults() FailoverConfig {
	if c.Services <= 0 {
		c.Services = 300
	}
	if c.Alternates <= 0 {
		c.Alternates = 50
	}
	if c.WithdrawnFrac <= 0 {
		c.WithdrawnFrac = 0.6
	}
	if c.UnhealthyFrac <= 0 {
		c.UnhealthyFrac = 0.2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// FailoverRig drives repeated service-death failovers against one
// composition. Each round is steady-state: the bound service leaves the
// registry (the simenv fault), Substitute recovers, and the displaced
// binding redeploys at the tail of the rotation — so the healthy pool
// is conserved and the dead prefix stays in front of every scan, round
// after round, for as many rounds as a benchmark asks for.
type FailoverRig struct {
	cfg     FailoverConfig
	env     *simenv.Environment
	reg     *registry.Registry
	mon     *monitor.Monitor
	manager *adapt.Manager
	rt      *adapt.Runtime
	tracker *subidx.Tracker
	ps      *qos.PropertySet
	victim  string
	descs   map[registry.ServiceID]registry.Description
}

// FailoverResult aggregates the per-round Substitute latencies.
type FailoverResult struct {
	Rounds            int
	P50, P99, Max     time.Duration
	Substitutions     int
	IndexHits         int
	Fallbacks         map[string]int
	DeadPrefix        int // withdrawn + unhealthy alternates scanned past per round
	HealthyAlternates int
}

// NewFailoverRig builds the environment, selects the composition and
// poisons the victim's alternate prefix. The returned rig is ready to
// measure: with Indexed set the tracker has built and quiesced, so the
// first round is already an index hit.
func NewFailoverRig(cfg FailoverConfig) (*FailoverRig, error) {
	cfg = cfg.withDefaults()
	onto := semantics.PervasiveWithScenarios()
	ps := qos.StandardSet()
	reg := registry.New(onto)
	env := simenv.New(ps, reg, simenv.Options{Seed: cfg.Seed})

	r := &FailoverRig{
		cfg: cfg, env: env, reg: reg, ps: ps, victim: "order",
		descs: make(map[registry.ServiceID]registry.Description),
	}
	for _, spec := range []struct {
		concept semantics.ConceptID
		prefix  string
	}{
		{semantics.BrowseCatalog, "browse"},
		{semantics.OrderItem, "order"},
		{semantics.CardPayment, "pay"},
	} {
		for i := 0; i < cfg.Services; i++ {
			d := registry.Description{
				ID:      registry.ServiceID(fmt.Sprintf("%s-%03d", spec.prefix, i)),
				Concept: spec.concept,
				Offers: []registry.QoSOffer{
					{Property: semantics.ResponseTime, Value: 40 + float64(i%97)},
					{Property: semantics.Price, Value: 5 + float64(i%11)},
					{Property: semantics.Availability, Value: 0.95},
					{Property: semantics.Reliability, Value: 0.9},
					{Property: semantics.Throughput, Value: 40},
				},
			}
			if err := env.Deploy(simenv.Service{Desc: d, Noise: 0.05}); err != nil {
				return nil, err
			}
			r.descs[d.ID] = d
		}
	}

	tk := &task.Task{Name: "failover", Concept: semantics.ShoppingService, Root: task.Sequence(
		task.NewActivity(&task.Activity{ID: "browse", Concept: semantics.BrowseCatalog}),
		task.NewActivity(&task.Activity{ID: "order", Concept: semantics.OrderItem}),
		task.NewActivity(&task.Activity{ID: "pay", Concept: semantics.CardPayment}),
	)}
	req := &core.Request{
		Task:        tk,
		Properties:  ps,
		Constraints: qos.Constraints{{Property: "responseTime", Bound: 1000}},
	}
	cands := make(map[string][]registry.Candidate)
	for _, a := range tk.Activities() {
		cands[a.ID] = reg.CandidatesForActivity(a, ps)
		if len(cands[a.ID]) < cfg.Services {
			return nil, fmt.Errorf("failover rig: %s resolved %d of %d candidates",
				a.ID, len(cands[a.ID]), cfg.Services)
		}
	}
	sel := core.NewSelector(core.Options{MaxAlternates: cfg.Alternates})
	res, err := sel.Select(req, cands)
	if err != nil {
		return nil, err
	}
	r.mon = monitor.New(ps, monitor.Options{})
	r.rt = adapt.NewRuntime(req, res)
	r.manager = &adapt.Manager{Registry: reg, Selector: sel, Monitor: r.mon}
	if cfg.Indexed {
		// The periodic resync is a backstop against dropped watch
		// events; at the default 250ms it would rebuild mid-measurement
		// (each rebuild snapshots the selection under rt.mu, colliding
		// with commits). The rig's freshness comes from the watch and
		// health subscriptions, so the backstop can be slow.
		r.tracker = subidx.NewTracker(reg, r.mon, subidx.Options{
			RefreshInterval: 5 * time.Second,
		})
		r.manager.Index = r.tracker.Track(r.rt)
		r.manager.Index.BuildNow()
		r.tracker.Quiesce()
	}
	if err := r.poison(); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// poison kills the front of the victim's alternate list: the first
// WithdrawnFrac leave the registry entirely, the next UnhealthyFrac
// stay published but fail until the monitor demotes them. Both kinds
// stay dead for the life of the rig.
func (r *FailoverRig) poison() error {
	alts := r.alternates()
	withdrawn := int(r.cfg.WithdrawnFrac * float64(len(alts)))
	unhealthy := int(r.cfg.UnhealthyFrac * float64(len(alts)))
	if withdrawn+unhealthy >= len(alts) {
		return fmt.Errorf("failover rig: dead prefix %d+%d covers all %d alternates",
			withdrawn, unhealthy, len(alts))
	}
	for _, id := range alts[:withdrawn] {
		if !r.env.Leave(id) {
			return fmt.Errorf("failover rig: %s did not leave", id)
		}
	}
	for _, id := range alts[withdrawn : withdrawn+unhealthy] {
		for i := 0; i < 6; i++ {
			if err := r.mon.Report(monitor.Observation{
				Service: id, Vector: r.ps.NewVector(), Success: false,
			}); err != nil {
				return err
			}
		}
	}
	if r.tracker != nil {
		r.tracker.Quiesce()
	}
	return nil
}

func (r *FailoverRig) bound() registry.ServiceID {
	var id registry.ServiceID
	r.rt.View(func(res *core.Result) { id = res.Assignment[r.victim].Service.ID })
	return id
}

func (r *FailoverRig) alternates() []registry.ServiceID {
	var out []registry.ServiceID
	r.rt.View(func(res *core.Result) {
		for _, a := range res.Alternates[r.victim] {
			out = append(out, a.Service.ID)
		}
	})
	return out
}

// Rounds performs n failover rounds and returns the Substitute latency
// quantiles. Each round: the bound service dies (registry withdrawal —
// the signal both the reactive scan's Registry.Get probe and the
// index's watch subscription observe), Substitute picks the best live
// alternate past the dead prefix, and the dead service redeploys so the
// pool is back to steady state before the next round.
func (r *FailoverRig) Rounds(n int) (*FailoverResult, error) {
	durs := make([]time.Duration, 0, n)
	exclude := make(map[registry.ServiceID]bool, 1)
	for i := 0; i < n; i++ {
		victim := r.bound()
		desc, ok := r.descs[victim]
		if !ok {
			return nil, fmt.Errorf("failover rig: unknown binding %s", victim)
		}
		if !r.env.Leave(victim) {
			return nil, fmt.Errorf("failover rig: %s did not leave", victim)
		}
		// No quiesce here: the tracker drains the watch stream
		// continuously, exactly as in production. The failed binding is
		// in the exclude set either way, and the dead prefix the
		// measurement depends on was poisoned (and synced) up front.
		clear(exclude)
		exclude[victim] = true

		start := time.Now()
		cand, err := r.manager.Substitute(r.rt, r.victim, exclude)
		durs = append(durs, time.Since(start))
		if err != nil {
			return nil, fmt.Errorf("failover rig: round %d: %w", i, err)
		}
		if cand.Service.ID == victim {
			return nil, fmt.Errorf("failover rig: round %d re-picked the dead binding", i)
		}

		if err := r.env.Deploy(simenv.Service{Desc: desc, Noise: 0.05}); err != nil {
			return nil, err
		}
		// Drain the watch backlog on our schedule (cheap now that a
		// same-offers flap no longer dirties the index) instead of
		// letting the buffer fill and force a bulk drain mid-window.
		if r.tracker != nil && (i+1)%128 == 0 {
			r.tracker.Quiesce()
		}
	}
	sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
	stats := r.rt.FailoverStats()
	alts := r.alternates()
	withdrawn := int(r.cfg.WithdrawnFrac * float64(len(alts)))
	unhealthy := int(r.cfg.UnhealthyFrac * float64(len(alts)))
	return &FailoverResult{
		Rounds:            n,
		P50:               durs[len(durs)/2],
		P99:               durs[len(durs)*99/100],
		Max:               durs[len(durs)-1],
		Substitutions:     r.rt.Substitutions(),
		IndexHits:         stats.IndexHits,
		Fallbacks:         stats.Fallbacks,
		DeadPrefix:        withdrawn + unhealthy,
		HealthyAlternates: len(alts) - withdrawn - unhealthy,
	}, nil
}

// medianOf returns the median of a non-empty sample set.
func medianOf(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	return s[len(s)/2]
}

// Close stops the tracker goroutine (a no-op for reactive rigs).
func (r *FailoverRig) Close() {
	if r.tracker != nil {
		r.tracker.Close()
	}
}

// expFailover measures the tentpole claim of the substitution index:
// p50/p99 time-to-recover on service death at ℓ=300 with 50-candidate
// alternate sets, reactive scan vs index lookup, under the simenv fault
// injector's dead-prefix regime.
func expFailover() *Experiment {
	return &Experiment{
		ID:    "failover",
		Paper: "Ch. V substitution (time-to-recover)",
		Title: "Time-to-recover: reactive alternate scan vs substitution index",
		Expected: "The reactive scan pays per-candidate Registry.Get and " +
			"Monitor.SuccessRate probes to get past the dead prefix, so " +
			"recovery latency scales with the alternate-set size; the index " +
			"resolves the same decision from an immutable snapshot in one " +
			"lock-free lookup, flooring p99 well over 5x below the scan.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			services, alternates, rounds := 300, 50, 2000
			if cfg.Quick {
				services, alternates, rounds = 60, 16, 100
			}
			t := NewTable(
				fmt.Sprintf("Failover time-to-recover (ℓ=%d, %d-candidate alternate sets, dead prefix 60%%+20%%)",
					services, alternates),
				"mode", "rounds", "sub_p50_us", "sub_p99_us", "sub_max_us",
				"index_hits", "fallbacks")
			var p99 [2]time.Duration
			for i, indexed := range []bool{false, true} {
				rig, err := NewFailoverRig(FailoverConfig{
					Services: services, Alternates: alternates,
					Indexed: indexed, Seed: cfg.Seed,
				})
				if err != nil {
					return nil, err
				}
				// Median over repetitions: a GC cycle or scheduler
				// hiccup landing inside one pass's measured windows
				// cannot move the reported quantile on its own.
				p50s := make([]time.Duration, 0, cfg.Repetitions)
				p99s := make([]time.Duration, 0, cfg.Repetitions)
				var last *FailoverResult
				for rep := 0; rep < cfg.Repetitions; rep++ {
					runtime.GC()
					res, err := rig.Rounds(rounds)
					if err != nil {
						rig.Close()
						return nil, err
					}
					p50s = append(p50s, res.P50)
					p99s = append(p99s, res.P99)
					last = res
				}
				rig.Close()
				mode := "reactive"
				if indexed {
					mode = "index"
				}
				fallbacks := 0
				for _, n := range last.Fallbacks {
					fallbacks += n
				}
				p99[i] = medianOf(p99s)
				t.AddRow(mode, cfg.Repetitions*rounds,
					float64(medianOf(p50s))/float64(time.Microsecond),
					float64(p99[i])/float64(time.Microsecond),
					float64(last.Max)/float64(time.Microsecond),
					last.IndexHits, fallbacks)
			}
			if p99[1] > 0 {
				t.AddNote("p99 speedup (reactive/index): %.1fx", float64(p99[0])/float64(p99[1]))
			}
			return t, nil
		},
	}
}
