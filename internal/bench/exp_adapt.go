package bench

import (
	"context"
	"fmt"
	"time"

	"qasom/internal/adapt"
	"qasom/internal/core"
	"qasom/internal/exec"
	"qasom/internal/monitor"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
	"qasom/internal/simenv"
	"qasom/internal/task"
)

func adaptationExperiments() []*Experiment {
	return []*Experiment{expAdapt(), expFailover()}
}

// adaptFixture wires a full middleware stack over the simulated
// environment for the shopping task class.
type adaptFixture struct {
	env     *simenv.Environment
	reg     *registry.Registry
	mon     *monitor.Monitor
	manager *adapt.Manager
	rt      *adapt.Runtime
	ps      *qos.PropertySet
}

func newAdaptFixture(seed int64) (*adaptFixture, error) {
	onto := semantics.PervasiveWithScenarios()
	ps := qos.StandardSet()
	reg := registry.New(onto)
	env := simenv.New(ps, reg, simenv.Options{Seed: seed})

	deploy := func(concept semantics.ConceptID, prefix string, n int) error {
		for i := 0; i < n; i++ {
			d := registry.Description{
				ID:      registry.ServiceID(fmt.Sprintf("%s-%d", prefix, i)),
				Concept: concept,
				Offers: []registry.QoSOffer{
					{Property: semantics.ResponseTime, Value: 40 + float64(5*i)},
					{Property: semantics.Price, Value: 5},
					{Property: semantics.Availability, Value: 0.95},
					{Property: semantics.Reliability, Value: 0.9},
					{Property: semantics.Throughput, Value: 40},
				},
			}
			if err := env.Deploy(simenv.Service{Desc: d, Noise: 0.05}); err != nil {
				return err
			}
		}
		return nil
	}
	for _, spec := range []struct {
		concept semantics.ConceptID
		prefix  string
	}{
		{semantics.BrowseCatalog, "browse"},
		{semantics.OrderItem, "order"},
		{semantics.CardPayment, "pay"},
		{semantics.ShoppingService, "fulfil"}, // generic one-stop services
		{semantics.MobilePayment, "mpay"},
	} {
		if err := deploy(spec.concept, spec.prefix, 4); err != nil {
			return nil, err
		}
	}

	b1 := &task.Task{Name: "b1", Concept: semantics.ShoppingService, Root: task.Sequence(
		task.NewActivity(&task.Activity{ID: "browse", Concept: semantics.BrowseCatalog}),
		task.NewActivity(&task.Activity{ID: "order", Concept: semantics.OrderItem}),
		task.NewActivity(&task.Activity{ID: "pay", Concept: semantics.PaymentService}),
	)}
	// b2 replaces the specialised ordering activity with a generic
	// one-stop fulfilment step: matching it requires subsume-level
	// semantics, and it survives the loss of every OrderItem provider.
	b2 := &task.Task{Name: "b2", Concept: semantics.ShoppingService, Root: task.Sequence(
		task.NewActivity(&task.Activity{ID: "fulfil", Concept: semantics.ShoppingService}),
		task.NewActivity(&task.Activity{ID: "mpay", Concept: semantics.MobilePayment}),
	)}
	repo := task.NewRepository(onto)
	if err := repo.Register(&task.Class{
		Name: "shopping", Concept: semantics.ShoppingService, Behaviours: []*task.Task{b1, b2},
	}); err != nil {
		return nil, err
	}

	req := &core.Request{
		Task:        b1,
		Properties:  ps,
		Constraints: qos.Constraints{{Property: "responseTime", Bound: 500}},
	}
	cands := make(map[string][]registry.Candidate)
	for _, a := range b1.Activities() {
		cands[a.ID] = reg.CandidatesForActivity(a, ps)
		if len(cands[a.ID]) == 0 {
			return nil, fmt.Errorf("bench: no candidates for %s", a.ID)
		}
	}
	sel := core.NewSelector(core.Options{})
	res, err := sel.Select(req, cands)
	if err != nil {
		return nil, err
	}
	mon := monitor.New(ps, monitor.Options{})
	rt := adapt.NewRuntime(req, res)
	manager := &adapt.Manager{Registry: reg, Repo: repo, Selector: sel, Monitor: mon}
	manager.Options.Match.AllowSubsume = true
	return &adaptFixture{env: env, reg: reg, mon: mon, manager: manager, rt: rt, ps: ps}, nil
}

// run executes the runtime's current task, falling back to behavioural
// adaptation when substitution is exhausted. It returns whether the task
// completed, how long recovery took, and the substitution count.
func (f *adaptFixture) run(ctx context.Context) (completed bool, switches int, err error) {
	for round := 0; round < 3; round++ {
		execu := &exec.Executor{
			Invoker:    f.env,
			Binder:     f.rt,
			Monitor:    f.mon,
			OnFailure:  f.manager.FailureHandler(f.rt),
			OnComplete: f.manager.CompletionHook(f.rt),
			Options:    exec.Options{MaxAttempts: 5},
		}
		remaining, ok := f.rt.Behaviour.Remaining(completedMap(f.rt))
		if !ok {
			return true, switches, nil
		}
		if _, err := execu.Run(ctx, remaining); err == nil {
			return true, switches, nil
		}
		// Substitution exhausted: try the behavioural strategy.
		if _, aerr := f.manager.AdaptBehaviour(f.rt); aerr != nil {
			return false, switches, aerr
		}
		switches++
	}
	return false, switches, fmt.Errorf("bench: did not converge after 3 rounds")
}

func completedMap(rt *adapt.Runtime) map[string]bool {
	out := make(map[string]bool)
	for _, a := range rt.Behaviour.Activities() {
		if rt.Completed(a.ID) {
			out[a.ID] = true
		}
	}
	return out
}

func expAdapt() *Experiment {
	return &Experiment{
		ID:    "adapt",
		Paper: "Ch. V strategies (end-to-end)",
		Title: "Recovery by substitution vs behavioural adaptation under churn",
		Expected: "A single service failure is absorbed by substitution " +
			"(milliseconds, no behaviour switch); losing every provider of a " +
			"capability forces one behavioural switch and the composition " +
			"still completes.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			t := NewTable("Adaptation strategies under failure injection (shopping class)",
				"scenario", "completed", "substitutions", "behaviour_switches", "recovery_ms")
			type scenario struct {
				name   string
				inject func(*adaptFixture)
			}
			scenarios := []scenario{
				{"no-failure", func(*adaptFixture) {}},
				{"one-service-down", func(f *adaptFixture) {
					bound, _ := f.rt.Bind(f.rt.Req.Task.ActivityByID("order"))
					f.env.SetDown(bound.Service.ID, true)
				}},
				{"capability-lost", func(f *adaptFixture) {
					// Every OrderItem provider leaves: substitution cannot
					// help, behavioural adaptation must kick in.
					for _, d := range f.reg.All() {
						if d.Concept == semantics.OrderItem {
							f.env.Leave(d.ID)
						}
					}
				}},
			}
			for _, sc := range scenarios {
				f, err := newAdaptFixture(cfg.Seed)
				if err != nil {
					return nil, err
				}
				sc.inject(f)
				start := time.Now()
				completed, switches, err := f.run(benchCtx())
				recovery := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("scenario %s: %w", sc.name, err)
				}
				t.AddRow(sc.name, completed, f.rt.Substitutions(), switches, recovery)
			}
			return t, nil
		},
	}
}
