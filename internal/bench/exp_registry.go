// Registry scale-out experiment: throughput of the sharded store across
// shard counts and population sizes (DESIGN.md §4g). The shard count is
// a lock-contention knob, so the interesting signal is how publish,
// lookup and churn rates move as 1 -> 4 -> 16 shards at a fixed worker
// count; on a single-core host the curves are flat and the table says
// so — EXPERIMENTS.md discusses the honest reading.
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
)

func registryExperiments() []*Experiment {
	return []*Experiment{expRegistryShards()}
}

// shardRigPerCap keeps 50 candidates behind every capability, the mall
// density the selection experiments use.
const shardRigPerCap = 50

// ShardRig is one populated sharded store plus its capability universe.
type ShardRig struct {
	Reg  *registry.Registry
	Caps []semantics.ConceptID
	// PublishRate is the sequential publish throughput observed while
	// populating the rig (ops/sec).
	PublishRate float64
}

// NewShardRig builds a store with the given shard count and publishes
// `services` descriptions spread over services/50 synthetic capabilities
// (each a BookSale subconcept, so subsumption closure work is realistic).
func NewShardRig(shards, services int) (*ShardRig, error) {
	onto := semantics.PervasiveWithScenarios()
	caps := make([]semantics.ConceptID, services/shardRigPerCap)
	for i := range caps {
		caps[i] = semantics.ConceptID(fmt.Sprintf("ShardCap%06d", i))
		if err := onto.AddConcept(caps[i], semantics.BookSale); err != nil {
			return nil, err
		}
	}
	reg := registry.NewStore(onto, registry.StoreOptions{Shards: shards}).
		Tenant(registry.DefaultTenant)
	start := time.Now()
	for i := 0; i < services; i++ {
		err := reg.Publish(registry.Description{
			ID:      registry.ServiceID(fmt.Sprintf("svc-%07d", i)),
			Concept: caps[i%len(caps)],
			Offers: []registry.QoSOffer{
				{Property: semantics.ResponseTime, Value: 40 + float64(i%100)},
				{Property: semantics.Price, Value: 5},
				{Property: semantics.Availability, Value: 0.95},
				{Property: semantics.Reliability, Value: 0.9},
				{Property: semantics.Throughput, Value: 40},
			},
		})
		if err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	return &ShardRig{
		Reg:         reg,
		Caps:        caps,
		PublishRate: float64(services) / elapsed.Seconds(),
	}, nil
}

// Lookups runs `total` capability lookups across `workers` closed-loop
// goroutines and returns the aggregate ops/sec.
func (r *ShardRig) Lookups(workers, total int) (float64, error) {
	ps := qos.StandardSet()
	var next atomic.Int64
	var empty atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i > total {
					return
				}
				if got := r.Reg.Candidates(r.Caps[i%len(r.Caps)], ps); len(got) == 0 {
					empty.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := empty.Load(); n != 0 {
		return 0, fmt.Errorf("bench: %d lookups found no candidates", n)
	}
	return float64(total) / elapsed.Seconds(), nil
}

// Churn runs `total` publish-new/withdraw pairs across `workers`
// goroutines (net-zero population) and returns the aggregate pair rate
// in ops/sec.
func (r *ShardRig) Churn(workers, total int) (float64, error) {
	var next atomic.Int64
	var failed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i > total {
					return
				}
				id := registry.ServiceID(fmt.Sprintf("churn-%d", i))
				err := r.Reg.Publish(registry.Description{
					ID:      id,
					Concept: r.Caps[i%len(r.Caps)],
					Offers: []registry.QoSOffer{
						{Property: semantics.ResponseTime, Value: 30},
						{Property: semantics.Price, Value: 4},
						{Property: semantics.Availability, Value: 0.96},
						{Property: semantics.Reliability, Value: 0.92},
						{Property: semantics.Throughput, Value: 45},
					},
				})
				if err != nil || !r.Reg.Withdraw(id) {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := failed.Load(); n != 0 {
		return 0, fmt.Errorf("bench: %d churn cycles failed", n)
	}
	return float64(total) / elapsed.Seconds(), nil
}

// expRegistryShards sweeps shard count x population size and reports
// publish/lookup/churn throughput plus the speedup of each shard count
// over the 1-shard baseline at the same size.
func expRegistryShards() *Experiment {
	return &Experiment{
		ID:    "shards",
		Paper: "§scale-out (ROADMAP)",
		Title: "Sharded registry scale-out: ops/sec by shard count and population",
		Expected: "lookup and churn throughput grow with shard count on multicore hosts " +
			"(lock domains split); flat curves on a single core, falling costs per op as shards shrink",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			tbl := NewTable("Registry shard scaling",
				"services", "shards", "publish ops/s", "lookup ops/s", "churn ops/s", "churn speedup vs 1 shard")
			const workers = 4
			sizes := pick(cfg, []int{5_000}, []int{100_000, 1_000_000})
			lookups := pick(cfg, 400, 20_000)
			churns := pick(cfg, 400, 20_000)
			for _, services := range sizes {
				var base float64
				for _, shards := range []int{1, 4, 16} {
					if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
						tbl.AddNote("cancelled before services=%d shards=%d", services, shards)
						return tbl, nil
					}
					rig, err := NewShardRig(shards, services)
					if err != nil {
						return nil, err
					}
					// Median over repetitions: the phases are short and a
					// single scheduler hiccup should not steer the table.
					d, err := medianDuration(cfg.Repetitions, func() error {
						_, err := rig.Lookups(workers, lookups)
						return err
					})
					if err != nil {
						return nil, err
					}
					lookupRate := float64(lookups) / d.Seconds()
					d, err = medianDuration(cfg.Repetitions, func() error {
						_, err := rig.Churn(workers, churns)
						return err
					})
					if err != nil {
						return nil, err
					}
					churnRate := float64(churns) / d.Seconds()
					if shards == 1 {
						base = churnRate
					}
					tbl.AddRow(services, shards,
						rig.PublishRate, lookupRate, churnRate, churnRate/base)
				}
			}
			tbl.AddNote("%d closed-loop workers per phase; GOMAXPROCS bounds real parallelism — "+
				"shard-count speedup only materialises with free cores", workers)
			return tbl, nil
		},
	}
}
