package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"qasom"
	"qasom/internal/obs"
	"qasom/internal/randx"
)

func openloopExperiments() []*Experiment {
	return []*Experiment{expOpenLoop()}
}

// Arrival processes of the open-loop generator.
const (
	// OpenLoopConstant schedules arrivals at exact 1/rate intervals.
	OpenLoopConstant = "constant"
	// OpenLoopPoisson draws exponential inter-arrival times (memoryless
	// arrivals, the classic open-system traffic model); bursts are part
	// of the offered load, not an artifact.
	OpenLoopPoisson = "poisson"
)

// OpenLoopConfig parameterises an open-loop serving run. Unlike the
// closed-loop ThroughputRig — where each client waits for its previous
// response, so a slow server silently throttles its own offered load —
// the open-loop generator schedules arrivals from a clock at a fixed
// rate and measures every latency from the *scheduled* arrival time.
// Requests that queue behind a slow one keep accumulating their wait,
// so the recorded quantiles include coordinated-omission delay instead
// of hiding it.
type OpenLoopConfig struct {
	// Rate is the offered arrival rate in requests/second. Required.
	Rate float64
	// Process picks the arrival process: OpenLoopConstant (default) or
	// OpenLoopPoisson.
	Process string
	// Workers is the service-station width (concurrent compose loops);
	// 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the arrival queue; arrivals finding it full are
	// dropped and counted (load shedding, not blocking — the generator
	// never slows down to match the server). 0 means 256.
	QueueDepth int
	// Churn runs the serving rigs' background publisher/withdrawer.
	Churn bool
	// Seed drives the middleware and the Poisson draws; 0 means 1.
	Seed int64
	// Ctx cancels a long run early (Partial is set). Nil means
	// Background.
	Ctx context.Context
}

// OpenLoopResult is the outcome of one open-loop run.
type OpenLoopResult struct {
	// Arrivals is the number of scheduled arrivals (offered load).
	Arrivals int
	// Completed is the number of compositions that finished.
	Completed int
	// Dropped counts arrivals shed at the full queue.
	Dropped int
	// Elapsed is the wall time from first scheduled arrival to drain.
	Elapsed time.Duration
	// Achieved is Completed/Elapsed — the goodput actually sustained.
	Achieved float64
	// P50/P99/P999 are latency quantiles measured from each request's
	// scheduled arrival time (coordinated-omission-safe: queueing delay
	// behind slow requests is included).
	P50, P99, P999 time.Duration
	// HitRate is the fraction of completions served from the plan cache.
	HitRate float64
	// Partial reports that Ctx was cancelled before the run finished.
	Partial bool
}

// OpenLoopRig is a prepared open-loop workload over the shared serving
// environment. Separate from Run so benchmarks can exclude setup from
// the timed section.
type OpenLoopRig struct {
	mw  *qasom.Middleware
	slo *obs.SLOEngine
	req qasom.Request
	cfg OpenLoopConfig
}

// NewOpenLoopRig builds the open-loop serving workload.
func NewOpenLoopRig(cfg OpenLoopConfig) (*OpenLoopRig, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("bench: open-loop rate must be positive, got %g", cfg.Rate)
	}
	switch cfg.Process {
	case "", OpenLoopConstant, OpenLoopPoisson:
	default:
		return nil, fmt.Errorf("bench: unknown arrival process %q", cfg.Process)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Ctx == nil {
		cfg.Ctx = context.Background()
	}
	mw, slo, req, err := newServingEnv(cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &OpenLoopRig{mw: mw, slo: slo, req: req, cfg: cfg}, nil
}

// Warm populates the plan cache with one composition so a subsequent
// Run measures the steady state rather than the first-request miss.
func (r *OpenLoopRig) Warm() error {
	_, err := r.mw.Compose(r.req)
	return err
}

// arrivalOffsets precomputes the schedule: the offset of each arrival
// from the run's start. Constant spacing for OpenLoopConstant,
// cumulative exponential draws for OpenLoopPoisson (deterministic per
// seed).
func arrivalOffsets(process string, rate float64, n int, seed int64) []time.Duration {
	out := make([]time.Duration, n)
	switch process {
	case OpenLoopPoisson:
		rng := randx.Derive(seed, 0x6f70656e) // stream "open"
		t := 0.0
		for i := range out {
			t += rng.ExpFloat64() / rate
			out[i] = time.Duration(t * float64(time.Second))
		}
	default: // constant
		period := float64(time.Second) / rate
		for i := range out {
			out[i] = time.Duration(float64(i) * period)
		}
	}
	return out
}

// Run offers n arrivals at the configured rate and reports goodput,
// drop counts and coordinated-omission-safe latency quantiles. The
// dispatcher never blocks on the server: an arrival finding the queue
// full is shed and counted, so overload shows up as drops plus growing
// quantiles instead of a silently reduced offered rate.
func (r *OpenLoopRig) Run(n int) (OpenLoopResult, error) {
	if n < 1 {
		n = 1
	}
	offsets := arrivalOffsets(r.cfg.Process, r.cfg.Rate, n, r.cfg.Seed)

	var stopChurn func()
	if r.cfg.Churn {
		stopChurn = startServingChurn(r.mw)
	}

	queue := make(chan time.Time, r.cfg.QueueDepth)
	latencies := make([][]time.Duration, r.cfg.Workers)
	hitCounts := make([]int, r.cfg.Workers)
	errs := make([]error, r.cfg.Workers)
	cancelled := false
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lats := make([]time.Duration, 0, n/r.cfg.Workers+1)
			for sched := range queue {
				comp, err := r.mw.ComposeContext(r.cfg.Ctx, r.req)
				// Latency from the *scheduled* arrival, not the dequeue:
				// time spent waiting in the queue behind slow requests is
				// the user-visible delay coordinated omission would hide.
				d := time.Since(sched)
				r.slo.Observe(d, err)
				if err != nil {
					if r.cfg.Ctx.Err() == nil {
						errs[w] = err
					}
					return
				}
				lats = append(lats, d)
				if comp.SelectionStats().CacheHit {
					hitCounts[w]++
				}
			}
			latencies[w] = lats
		}(w)
	}

	dropped := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		if r.cfg.Ctx.Err() != nil {
			cancelled = true
			n = i
			break
		}
		target := start.Add(offsets[i])
		if wait := time.Until(target); wait > 0 {
			time.Sleep(wait)
		}
		select {
		case queue <- target:
		default:
			dropped++ // queue full: shed, never block the arrival clock
		}
	}
	close(queue)
	wg.Wait()
	elapsed := time.Since(start)
	if stopChurn != nil {
		stopChurn()
	}
	for _, err := range errs {
		if err != nil {
			return OpenLoopResult{}, err
		}
	}

	var all []time.Duration
	hits := 0
	for w := range latencies {
		all = append(all, latencies[w]...)
		hits += hitCounts[w]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := OpenLoopResult{
		Arrivals:  n,
		Completed: len(all),
		Dropped:   dropped,
		Elapsed:   elapsed,
		Partial:   cancelled,
	}
	if len(all) > 0 {
		res.Achieved = float64(len(all)) / elapsed.Seconds()
		res.P50 = all[len(all)/2]
		res.P99 = all[min(len(all)-1, len(all)*99/100)]
		res.P999 = all[min(len(all)-1, len(all)*999/1000)]
		res.HitRate = float64(hits) / float64(len(all))
	}
	return res, nil
}

// expOpenLoop is the open-loop serving experiment: a GOMAXPROCS ×
// arrival-rate sweep over both arrival processes, recording goodput,
// shed load and latency-from-scheduled-arrival quantiles — the honest
// measurement regime behind any "millions of users" claim (a closed
// loop lets a slow server throttle its own offered load; an open loop
// cannot).
func expOpenLoop() *Experiment {
	return &Experiment{
		ID:    "openloop",
		Paper: "§serving (ROADMAP)",
		Title: "Open-loop serving latency: arrival-rate driven, coordinated-omission-safe",
		Expected: "p50 stays flat while the offered rate is under capacity; p99/p999 grow first as " +
			"queueing sets in, and overload appears as drops, never as a reduced offered rate",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			tbl := NewTable("Open-loop serving latency",
				"gomaxprocs", "process", "rate/s", "arrivals", "completed", "dropped",
				"achieved/s", "p50 (ms)", "p99 (ms)", "p999 (ms)", "hit rate")
			rates := pick(cfg, []float64{3000, 9000}, []float64{5000, 20000})
			arrivals := pick(cfg, 900, 6000)
			procs := []int{1, 2}
			if nc := runtime.NumCPU(); nc > 2 {
				procs = append(procs, nc)
			}
			prev := runtime.GOMAXPROCS(0)
			defer runtime.GOMAXPROCS(prev)
			for _, g := range procs {
				runtime.GOMAXPROCS(g)
				for _, process := range []string{OpenLoopConstant, OpenLoopPoisson} {
					for _, rate := range rates {
						rig, err := NewOpenLoopRig(OpenLoopConfig{
							Rate: rate, Process: process, Churn: true,
							Seed: cfg.Seed, Ctx: cfg.Ctx,
						})
						if err != nil {
							return nil, err
						}
						if err := rig.Warm(); err != nil {
							return nil, err
						}
						res, err := rig.Run(arrivals)
						if err != nil {
							return nil, err
						}
						tbl.AddRow(g, process, rate, res.Arrivals, res.Completed, res.Dropped,
							res.Achieved,
							float64(res.P50)/float64(time.Millisecond),
							float64(res.P99)/float64(time.Millisecond),
							float64(res.P999)/float64(time.Millisecond),
							res.HitRate)
						if res.Partial {
							tbl.AddNote("interrupted at gomaxprocs=%d %s rate=%g: partial results above", g, process, rate)
							return tbl, nil
						}
					}
				}
			}
			tbl.AddNote("latency measured from each request's scheduled arrival (coordinated-omission-safe); " +
				"on a single-core host the gomaxprocs>1 rows measure scheduling overhead, not parallel speedup")
			return tbl, nil
		},
	}
}
