package bench

import (
	"time"

	"qasom/internal/core"
	"qasom/internal/qos"
	"qasom/internal/workload"
)

func distributionExperiments() []*Experiment {
	return []*Experiment{expVI12(), expVI12TCP()}
}

func expVI12() *Experiment {
	return &Experiment{
		ID:    "vi12",
		Paper: "Fig. VI.12(a,b)",
		Title: "Distributed QASSA: local and global phase times",
		Expected: "The parallel local phase is flat-ish in the number of " +
			"activities (devices work concurrently) and grows with services " +
			"per device; the global phase matches the centralized global phase.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.StandardSet()
			sweep := pick(cfg, []int{10, 50}, []int{10, 25, 50, 100, 200})
			deviceLatency := 2 * time.Millisecond
			t := NewTable("Distributed QASSA phase times (one device per activity, 2ms link, n=10, c=3)",
				"services", "local_ms", "global_ms", "feasible")
			for _, services := range sweep {
				inst := genInstance(cfg.Seed, 10, services, 3, ps, workload.ShapeMixed,
					workload.AtMeanPlusSigma, qos.Pessimistic)
				devices := make(map[string]core.LocalSelector, inst.tk.Size())
				for id, list := range inst.cands {
					dev := core.NewDeviceNode("dev-"+id, deviceLatency)
					dev.Host(id, list)
					devices[id] = dev
				}
				sel := core.NewDistributedSelector(core.Options{}, devices)
				var last *core.Result
				_, err := medianDuration(cfg.Repetitions, func() error {
					res, err := sel.Select(benchCtx(), inst.req)
					last = res
					return err
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(services, last.Stats.LocalDuration, last.Stats.GlobalDuration, last.Feasible)
			}
			t.AddNote("local_ms includes the simulated 2ms wireless round trip; devices run in parallel")
			return t, nil
		},
	}
}

func expVI12TCP() *Experiment {
	return &Experiment{
		ID:    "vi12tcp",
		Paper: "Fig. VI.12 (transport variant)",
		Title: "Distributed QASSA over loopback TCP",
		Expected: "Same shape as vi12 with the gob/TCP round-trip added to " +
			"the local phase.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.StandardSet()
			sweep := pick(cfg, []int{10}, []int{10, 25, 50, 100})
			t := NewTable("Distributed QASSA over TCP (one endpoint per activity, n=10, c=3)",
				"services", "local_ms", "global_ms", "feasible")
			for _, services := range sweep {
				inst := genInstance(cfg.Seed, 10, services, 3, ps, workload.ShapeMixed,
					workload.AtMeanPlusSigma, qos.Pessimistic)
				devices := make(map[string]core.LocalSelector, inst.tk.Size())
				var stops []func()
				for id, list := range inst.cands {
					dev := core.NewDeviceNode("dev-"+id, 0)
					dev.Host(id, list)
					addr, stop, err := core.ServeTCP(benchCtx(), "127.0.0.1:0", dev)
					if err != nil {
						for _, s := range stops {
							s()
						}
						return nil, err
					}
					stops = append(stops, stop)
					devices[id] = &core.TCPClient{Addr: addr}
				}
				sel := core.NewDistributedSelector(core.Options{}, devices)
				var last *core.Result
				_, err := medianDuration(cfg.Repetitions, func() error {
					res, err := sel.Select(benchCtx(), inst.req)
					last = res
					return err
				})
				for _, s := range stops {
					s()
				}
				if err != nil {
					return nil, err
				}
				t.AddRow(services, last.Stats.LocalDuration, last.Stats.GlobalDuration, last.Feasible)
			}
			return t, nil
		},
	}
}
