package bench

import (
	"fmt"

	"qasom/internal/cluster"
	"qasom/internal/core"
	"qasom/internal/graph"
	"qasom/internal/qos"
	"qasom/internal/semantics"
	"qasom/internal/workload"
)

func ablationExperiments() []*Experiment {
	return []*Experiment{
		expAblationK(), expAblationGlobal(), expAblationSeeding(), expAblationPreVerify(),
	}
}

func expAblationK() *Experiment {
	return &Experiment{
		ID:    "ablation-k",
		Paper: "design choice (Ch. IV §3.2)",
		Title: "Effect of the cluster count K on QASSA time and optimality",
		Expected: "Small K coarsens the level structure (faster, possibly " +
			"less optimal); large K refines it at more clustering cost.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.StandardSet()
			t := NewTable("QASSA vs K (n=5 activities, 15 services/activity, c=3)",
				"K", "total_ms", "optimality_pct", "feasible_rate")
			for _, k := range []int{2, 3, 4, 5, 8} {
				opts := core.Options{K: k}
				inst := genInstance(cfg.Seed, 5, 15, 3, ps, workload.ShapeMixed,
					workload.AtMeanPlusSigma, qos.Pessimistic)
				total, err := medianDuration(cfg.Repetitions, func() error {
					_, err := runQASSA(inst, opts)
					return err
				})
				if err != nil {
					return nil, err
				}
				ratio, feas, err := meanOptimality(cfg, 5, 15, 3, ps,
					workload.ShapeMixed, workload.AtMeanPlusSigma, qos.Pessimistic, opts)
				if err != nil {
					return nil, err
				}
				t.AddRow(k, total, ratio, feas)
			}
			return t, nil
		},
	}
}

func expAblationGlobal() *Experiment {
	return &Experiment{
		ID:    "ablation-global",
		Paper: "design choice (Ch. IV §3.3)",
		Title: "Level-wise global phase vs flat utility-sorted shortlist",
		Expected: "The level-wise descent reaches feasibility touching fewer " +
			"candidates under tight constraints; the flat variant evaluates " +
			"the whole pool at once.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.StandardSet()
			t := NewTable("Global phase variants (n=10 activities, 100 services/activity)",
				"variant", "tightness", "total_ms", "evaluations", "feasible")
			for _, tight := range []workload.Tightness{workload.AtMean, workload.AtMeanPlusSigma} {
				for _, flat := range []bool{false, true} {
					variant := "level-wise"
					if flat {
						variant = "flat"
					}
					inst := genInstance(cfg.Seed, 10, pick(cfg, 25, 100), 3, ps,
						workload.ShapeMixed, tight, qos.Pessimistic)
					var last *core.Result
					total, err := medianDuration(cfg.Repetitions, func() error {
						res, err := runQASSA(inst, core.Options{FlatGlobal: flat})
						last = res
						return err
					})
					if err != nil {
						return nil, err
					}
					t.AddRow(variant, tight.String(), total, last.Stats.Evaluations, last.Feasible)
				}
			}
			return t, nil
		},
	}
}

func expAblationSeeding() *Experiment {
	return &Experiment{
		ID:    "ablation-seeding",
		Paper: "design choice (local phase K-means)",
		Title: "k-means++ vs uniform seeding in the local phase",
		Expected: "k-means++ yields the same or better optimality with " +
			"comparable time; uniform seeding occasionally degrades cluster " +
			"quality and hence the level structure.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			ps := qos.StandardSet()
			t := NewTable("Seeding strategies (n=5 activities, 15 services/activity, c=3)",
				"seeding", "total_ms", "optimality_pct")
			for _, s := range []struct {
				name string
				mode cluster.Seeding
			}{{"kmeans++", cluster.SeedPlusPlus}, {"uniform", cluster.SeedUniform}} {
				opts := core.Options{Seeding: s.mode}
				inst := genInstance(cfg.Seed, 5, 15, 3, ps, workload.ShapeMixed,
					workload.AtMeanPlusSigma, qos.Pessimistic)
				total, err := medianDuration(cfg.Repetitions, func() error {
					_, err := runQASSA(inst, opts)
					return err
				})
				if err != nil {
					return nil, err
				}
				ratio, _, err := meanOptimality(cfg, 5, 15, 3, ps,
					workload.ShapeMixed, workload.AtMeanPlusSigma, qos.Pessimistic, opts)
				if err != nil {
					return nil, err
				}
				t.AddRow(s.name, total, ratio)
			}
			return t, nil
		},
	}
}

func expAblationPreVerify() *Experiment {
	return &Experiment{
		ID:    "ablation-preverify",
		Paper: "design choice (Ch. V §6.1)",
		Title: "Homeomorphism search with and without preliminary verifications",
		Expected: "On unmatchable instances the preliminary verifications " +
			"reject almost instantly, while the raw search pays full " +
			"backtracking; on matchable instances the overhead is negligible.",
		Run: func(cfg Config) (*Table, error) {
			cfg = cfg.withDefaults()
			n := pick(cfg, 8, 16)
			onto := semantics.Scenarios()
			pattern, host := matchInstance(n)
			badPattern := lineOfConcepts(append(repeatConcept(semantics.ShoppingService, n-1), "NoSuchConcept"))
			t := NewTable(fmt.Sprintf("Preliminary verifications (pattern %d, host %d activities)", n, 2*n),
				"instance", "preverify", "decide_us", "found")
			cases := []struct {
				name    string
				pattern *graph.Graph
				skip    bool
				want    bool
			}{
				{"matchable", pattern, false, true},
				{"matchable", pattern, true, true},
				{"unmatchable", badPattern, false, false},
				{"unmatchable", badPattern, true, false},
			}
			for _, c := range cases {
				var found bool
				dur, err := medianDuration(cfg.Repetitions, func() error {
					var err error
					_, found, err = graph.FindHomeomorphism(c.pattern, host, graph.MatchOptions{
						Ontology:      onto,
						SkipPreVerify: c.skip,
					})
					return err
				})
				if err != nil {
					return nil, err
				}
				if found != c.want {
					return nil, fmt.Errorf("bench: %s found=%v, want %v", c.name, found, c.want)
				}
				mode := "on"
				if c.skip {
					mode = "off"
				}
				t.AddRow(c.name, mode, us(dur), found)
			}
			return t, nil
		},
	}
}
