package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestInventoryComplete(t *testing.T) {
	// Every paper artefact of the evaluation must have an experiment.
	want := []string{
		"qosagg", // Table IV.1
		"vi5a", "vi5b", "vi6a", "vi6b", "vi7", "vi8", "vi9",
		"vi10", "vi11", "vi12", "vi13",
		"v7", "adapt", "failover",
		"ablation-k", "ablation-global", "ablation-seeding", "ablation-preverify",
		"ablation-pareto", "baselines", "mobility",
		"serving", "shards", // ROADMAP artefacts: steady-state serving, registry scale-out
		"openloop", // open-loop (arrival-rate driven) serving latency
		"pareto",   // multi-objective front quality (DESIGN.md §4j)
	}
	for _, id := range want {
		if ByID(id) == nil {
			t.Errorf("experiment %q missing from the inventory", id)
		}
	}
	if got := len(Experiments()); got < len(want) {
		t.Errorf("inventory has %d experiments, want ≥%d", got, len(want))
	}
	for _, e := range Experiments() {
		if e.Paper == "" || e.Title == "" || e.Expected == "" || e.Run == nil {
			t.Errorf("experiment %q is underspecified", e.ID)
		}
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take seconds even in quick mode")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			table, err := e.Run(Config{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(table.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Columns) {
					t.Fatalf("%s: row arity %d vs %d columns", e.ID, len(row), len(table.Columns))
				}
			}
			// Render paths must not panic and must include every row.
			text := table.String()
			if !strings.Contains(text, table.Columns[0]) {
				t.Error("text rendering lost the header")
			}
			csv := table.CSV()
			if got := strings.Count(csv, "\n"); got != len(table.Rows)+1 {
				t.Errorf("CSV has %d lines, want %d", got, len(table.Rows)+1)
			}
		})
	}
}

func TestExpectedShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks run full quick experiments")
	}
	t.Run("vi6a optimality above 85", func(t *testing.T) {
		t.Parallel()
		table, err := ByID("vi6a").Run(Config{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range table.Rows {
			opt, err := strconv.ParseFloat(row[1], 64)
			if err != nil {
				t.Fatalf("bad optimality cell %q", row[1])
			}
			if opt < 85 {
				t.Errorf("optimality %.1f%% below 85%% at services=%s", opt, row[0])
			}
		}
	})
	t.Run("vi9 tracks the normal pdf near the mean", func(t *testing.T) {
		t.Parallel()
		table, err := ByID("vi9").Run(Config{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range table.Rows {
			center, _ := strconv.ParseFloat(row[0], 64)
			if center < 40 || center > 60 {
				continue
			}
			emp, _ := strconv.ParseFloat(row[1], 64)
			pdf, _ := strconv.ParseFloat(row[2], 64)
			if pdf == 0 {
				continue
			}
			if diff := emp - pdf; diff > 0.4*pdf || diff < -0.4*pdf {
				t.Errorf("bin %s: empirical %g vs pdf %g", row[0], emp, pdf)
			}
		}
	})
	t.Run("adapt scenarios all complete", func(t *testing.T) {
		t.Parallel()
		table, err := ByID("adapt").Run(Config{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range table.Rows {
			if row[1] != "true" {
				t.Errorf("scenario %s did not complete", row[0])
			}
		}
		// The capability-lost scenario must have switched behaviour.
		last := table.Rows[len(table.Rows)-1]
		if last[0] != "capability-lost" || last[3] == "0" {
			t.Errorf("capability-lost should force a behaviour switch: %v", last)
		}
	})
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "a", "bb")
	tb.AddRow(1, 2.5)
	tb.AddRow("xyz", "w")
	tb.AddNote("note %d", 7)
	s := tb.String()
	for _, want := range []string{"== demo ==", "a", "bb", "xyz", "2.500", "note: note 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed != 1 || c.Repetitions != 3 {
		t.Errorf("defaults = %+v", c)
	}
	q := Config{Quick: true}.withDefaults()
	if q.Repetitions != 1 {
		t.Errorf("quick repetitions = %d, want 1", q.Repetitions)
	}
}
