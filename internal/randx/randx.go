// Package randx centralises the repository's deterministic random-source
// seeding. Every layer that draws randomness (the executor's branch and
// iteration draws, the selector's K-means seeding, the simulated
// environment's noise and fault injection, the resilience layer's backoff
// jitter) derives its source through New, so "same seed ⇒ same run"
// holds across the whole pipeline and fault-injection experiments stay
// reproducible.
package randx

import "math/rand"

// New returns a rand.Rand seeded with seed; the zero seed is normalised
// to 1 so the zero value of every Options struct stays reproducible
// (rand.NewSource(0) and rand.NewSource(1) differ, and 1 is the
// repository-wide default).
func New(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 1
	}
	return rand.New(rand.NewSource(seed))
}

// Derive returns a source for a sub-stream of a seeded computation:
// deterministic per (seed, stream), and distinct streams do not share a
// sequence. Fan-out code (one coordinator per activity, one fault draw
// per peer) uses it so per-stream draws stay stable when the fan-out
// order changes.
func Derive(seed int64, stream int64) *rand.Rand {
	if seed == 0 {
		seed = 1
	}
	// Mix with a 64-bit odd constant (splitmix-style) so adjacent
	// streams land far apart in the generator's state space.
	const mix = int64(-7046029254386353131) // 0x9E3779B97F4A7C15 as int64
	return New(seed*mix + stream + 1)
}
