// Package contract implements the quality-contract layer that the
// thesis grounds in WSQM (Chapter III §1): establishing per-service
// quality agreements between consumers and providers (the provider's
// advertised QoS must satisfy the consumer's required QoS), checking
// compliance at run time against monitored QoS, accumulating penalties
// for violations, and mapping delivered quality onto the satisfaction
// tiers of the User QoS ontology (delighted / satisfied / tolerable /
// frustrated).
package contract

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"qasom/internal/monitor"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
)

// ErrIncompatible is returned when an offer cannot satisfy the
// requirements, so no contract can be established.
var ErrIncompatible = fmt.Errorf("contract: offer does not satisfy the requirements")

// Contract is an established quality agreement for one service.
type Contract struct {
	// ID identifies the contract.
	ID string
	// Service is the provider side.
	Service registry.ServiceID
	// Consumer labels the consumer side (free-form).
	Consumer string
	// Terms are the agreed service-level objectives: per-property bounds
	// the provider committed to (the consumer's requirements, which the
	// advertised QoS satisfies at establishment time).
	Terms qos.Constraints
	// PenaltyRate is the penalty accrued per unit of relative violation
	// per compliance check.
	PenaltyRate float64
	// EstablishedAt stamps the agreement.
	EstablishedAt time.Time
}

// Violation describes one broken term at check time.
type Violation struct {
	// Property names the broken term.
	Property string
	// Agreed is the contracted bound.
	Agreed float64
	// Observed is the monitored value.
	Observed float64
}

// Report is the outcome of one compliance check.
type Report struct {
	// ContractID names the checked contract.
	ContractID string
	// CheckedAt stamps the check.
	CheckedAt time.Time
	// Observed reports whether run-time observations existed (false
	// means the check ran against advertised values only).
	Observed bool
	// Violations lists the broken terms (empty when compliant).
	Violations []Violation
	// Penalty is the penalty accrued by this check.
	Penalty float64
	// Tier is the perceived satisfaction tier of the delivered quality.
	Tier semantics.ConceptID
}

// Compliant reports whether every term held.
func (r *Report) Compliant() bool { return len(r.Violations) == 0 }

// Manager establishes and checks contracts. Safe for concurrent use.
type Manager struct {
	ps       *qos.PropertySet
	ontology *semantics.Ontology

	mu        sync.Mutex
	contracts map[string]*Contract
	penalties map[string]float64
	nextID    int
	// now is injectable for tests.
	now func() time.Time
}

// NewManager creates a contract manager over the given property set; the
// ontology (may be nil) resolves heterogeneous offer vocabularies.
func NewManager(ps *qos.PropertySet, o *semantics.Ontology) *Manager {
	return &Manager{
		ps:        ps,
		ontology:  o,
		contracts: make(map[string]*Contract),
		penalties: make(map[string]float64),
		now:       time.Now,
	}
}

// SetClock injects a time source (tests).
func (m *Manager) SetClock(now func() time.Time) { m.now = now }

// Establish negotiates a contract: the provider's advertised QoS must
// satisfy every required bound, otherwise ErrIncompatible is returned.
// On success the consumer's requirements become the agreed terms.
func (m *Manager) Establish(consumer string, d registry.Description, required qos.Constraints, penaltyRate float64) (*Contract, error) {
	if err := required.Validate(m.ps); err != nil {
		return nil, fmt.Errorf("contract: %w", err)
	}
	advertised, err := d.VectorFor(m.ps, m.ontology)
	if err != nil {
		return nil, fmt.Errorf("contract: %w", err)
	}
	if !required.Satisfied(m.ps, advertised) {
		return nil, fmt.Errorf("%w: service %q advertises %v against %s",
			ErrIncompatible, d.ID, advertised, required)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	c := &Contract{
		ID:            fmt.Sprintf("ct-%d", m.nextID),
		Service:       d.ID,
		Consumer:      consumer,
		Terms:         append(qos.Constraints(nil), required...),
		PenaltyRate:   penaltyRate,
		EstablishedAt: m.now(),
	}
	m.contracts[c.ID] = c
	return c, nil
}

// Terminate removes a contract; it reports whether it existed. Accrued
// penalties remain queryable.
func (m *Manager) Terminate(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.contracts[id]
	delete(m.contracts, id)
	return ok
}

// Get returns a copy of the contract.
func (m *Manager) Get(id string) (Contract, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.contracts[id]
	if !ok {
		return Contract{}, false
	}
	return *c, true
}

// Contracts returns all contract IDs, sorted.
func (m *Manager) Contracts() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.contracts))
	for id := range m.contracts {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// AccruedPenalty returns the total penalty accrued by a contract so far.
func (m *Manager) AccruedPenalty(id string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.penalties[id]
}

// Check evaluates one contract against the monitor's current run-time
// estimate for the service (advertised compliance is assumed when the
// service has never been observed) and accrues penalties for violations.
func (m *Manager) Check(id string, mon *monitor.Monitor) (*Report, error) {
	m.mu.Lock()
	c, ok := m.contracts[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("contract: unknown contract %q", id)
	}
	report := &Report{ContractID: id, CheckedAt: m.now()}
	var observed qos.Vector
	if mon != nil {
		if est, has := mon.Estimate(c.Service); has {
			observed = est
			report.Observed = true
		}
	}
	if observed == nil {
		// Never observed: terms held at establishment, nothing to accrue.
		report.Tier = semantics.TierSatisfied
		return report, nil
	}
	violation := 0.0
	for _, term := range c.Terms {
		j, okIdx := m.ps.Index(term.Property)
		if !okIdx {
			continue
		}
		p := m.ps.At(j)
		broken := false
		if p.Direction == qos.Minimized {
			broken = observed[j] > term.Bound
		} else {
			broken = observed[j] < term.Bound
		}
		if broken {
			report.Violations = append(report.Violations, Violation{
				Property: term.Property,
				Agreed:   term.Bound,
				Observed: observed[j],
			})
		}
	}
	violation = c.Terms.Violation(m.ps, observed)
	report.Penalty = c.PenaltyRate * violation
	report.Tier = m.perceive(c.Terms, observed)
	if report.Penalty > 0 {
		m.mu.Lock()
		m.penalties[id] += report.Penalty
		m.mu.Unlock()
	}
	return report, nil
}

// CheckAll checks every active contract and returns reports sorted by
// contract ID.
func (m *Manager) CheckAll(mon *monitor.Monitor) []*Report {
	ids := m.Contracts()
	out := make([]*Report, 0, len(ids))
	for _, id := range ids {
		r, err := m.Check(id, mon)
		if err != nil {
			continue // terminated concurrently
		}
		out = append(out, r)
	}
	return out
}

// perceive maps delivered quality onto the satisfaction tiers of the
// User QoS ontology: delighted when every term is beaten by ≥20%,
// satisfied when all terms hold, tolerable when the total relative
// violation stays under 10%, frustrated otherwise.
func (m *Manager) perceive(terms qos.Constraints, observed qos.Vector) semantics.ConceptID {
	v := terms.Violation(m.ps, observed)
	switch {
	case v == 0 && m.beatsBy(terms, observed, 0.2):
		return semantics.TierDelighted
	case v == 0:
		return semantics.TierSatisfied
	case v <= 0.1:
		return semantics.TierTolerable
	default:
		return semantics.TierFrustrated
	}
}

// beatsBy reports whether the observed vector beats every term by at
// least the given relative margin.
func (m *Manager) beatsBy(terms qos.Constraints, observed qos.Vector, margin float64) bool {
	for _, term := range terms {
		j, ok := m.ps.Index(term.Property)
		if !ok || j >= len(observed) {
			return false
		}
		p := m.ps.At(j)
		if p.Direction == qos.Minimized {
			if observed[j] > term.Bound*(1-margin) {
				return false
			}
		} else {
			if observed[j] < term.Bound*(1+margin) {
				return false
			}
		}
	}
	return true
}
