package contract

import (
	"errors"
	"testing"
	"time"

	"qasom/internal/monitor"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
)

func newManager() *Manager {
	m := NewManager(qos.StandardSet(), semantics.PervasiveWithScenarios())
	fixed := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	m.SetClock(func() time.Time { return fixed })
	return m
}

func goodService() registry.Description {
	return registry.Description{
		ID:      "svc-1",
		Concept: semantics.BookSale,
		Offers: []registry.QoSOffer{
			{Property: semantics.ResponseTime, Value: 80},
			{Property: semantics.Price, Value: 5},
			{Property: semantics.Availability, Value: 0.97},
			{Property: semantics.Reliability, Value: 0.95},
			{Property: semantics.Throughput, Value: 60},
		},
	}
}

func requirements() qos.Constraints {
	return qos.Constraints{
		{Property: "responseTime", Bound: 100},
		{Property: "availability", Bound: 0.95},
	}
}

func TestEstablish(t *testing.T) {
	m := newManager()
	c, err := m.Establish("bob", goodService(), requirements(), 2)
	if err != nil {
		t.Fatalf("Establish: %v", err)
	}
	if c.ID == "" || c.Service != "svc-1" || c.Consumer != "bob" {
		t.Errorf("contract = %+v", c)
	}
	if len(c.Terms) != 2 {
		t.Errorf("terms = %v", c.Terms)
	}
	if got, ok := m.Get(c.ID); !ok || got.Service != "svc-1" {
		t.Error("Get failed")
	}
	if ids := m.Contracts(); len(ids) != 1 || ids[0] != c.ID {
		t.Errorf("Contracts = %v", ids)
	}
}

func TestEstablishIncompatible(t *testing.T) {
	m := newManager()
	tight := qos.Constraints{{Property: "responseTime", Bound: 50}} // offer is 80
	_, err := m.Establish("bob", goodService(), tight, 1)
	if !errors.Is(err, ErrIncompatible) {
		t.Errorf("expected ErrIncompatible, got %v", err)
	}
	// Invalid requirements.
	if _, err := m.Establish("bob", goodService(), qos.Constraints{{Property: "zz", Bound: 1}}, 1); err == nil {
		t.Error("unknown property should fail")
	}
	// Unresolvable offers.
	bare := registry.Description{ID: "bare", Concept: semantics.BookSale}
	if _, err := m.Establish("bob", bare, requirements(), 1); err == nil {
		t.Error("unresolvable offers should fail")
	}
}

func TestCheckUnobservedIsBenign(t *testing.T) {
	m := newManager()
	c, err := m.Establish("bob", goodService(), requirements(), 2)
	if err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(qos.StandardSet(), monitor.Options{})
	r, err := m.Check(c.ID, mon)
	if err != nil {
		t.Fatal(err)
	}
	if r.Observed || !r.Compliant() || r.Penalty != 0 {
		t.Errorf("unobserved check = %+v", r)
	}
	if r.Tier != semantics.TierSatisfied {
		t.Errorf("tier = %v", r.Tier)
	}
}

func report(t *testing.T, m *Manager, id string, mon *monitor.Monitor) *Report {
	t.Helper()
	r, err := m.Check(id, mon)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func observe(t *testing.T, mon *monitor.Monitor, svc string, rt, avail float64) {
	t.Helper()
	if err := mon.Report(monitor.Observation{
		Service: registry.ServiceID(svc),
		Vector:  qos.Vector{rt, 5, avail, 0.95, 60},
		Success: true,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCompliantAndTiers(t *testing.T) {
	m := newManager()
	c, err := m.Establish("bob", goodService(), requirements(), 2)
	if err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(qos.StandardSet(), monitor.Options{Alpha: 1})

	// Delivered much better than agreed (rt 40 ≤ 80% of 100, avail 0.99...
	// needs ≥ 0.95·1.2 = 1.14 — impossible for a probability, so expect
	// Satisfied, not Delighted, with an availability term present.
	observe(t, mon, "svc-1", 40, 0.99)
	r := report(t, m, c.ID, mon)
	if !r.Compliant() || r.Tier != semantics.TierSatisfied {
		t.Errorf("report = %+v", r)
	}

	// Slight violation → tolerable, penalty accrues.
	observe(t, mon, "svc-1", 105, 0.96)
	r = report(t, m, c.ID, mon)
	if r.Compliant() {
		t.Error("rt 105 > 100 should violate")
	}
	if r.Tier != semantics.TierTolerable {
		t.Errorf("tier = %v, want tolerable", r.Tier)
	}
	if r.Penalty <= 0 {
		t.Error("penalty should accrue")
	}
	if len(r.Violations) != 1 || r.Violations[0].Property != "responseTime" {
		t.Errorf("violations = %+v", r.Violations)
	}

	// Gross violation → frustrated.
	observe(t, mon, "svc-1", 500, 0.5)
	r = report(t, m, c.ID, mon)
	if r.Tier != semantics.TierFrustrated {
		t.Errorf("tier = %v, want frustrated", r.Tier)
	}
	if m.AccruedPenalty(c.ID) <= 0 {
		t.Error("accrued penalty should be positive")
	}
}

func TestDelightedTier(t *testing.T) {
	m := NewManager(qos.StandardSet(), nil)
	// Terms only on minimized properties so the 20% margin is reachable.
	d := goodService()
	c, err := m.Establish("bob", d, qos.Constraints{
		{Property: "responseTime", Bound: 100},
		{Property: "price", Bound: 10},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(qos.StandardSet(), monitor.Options{Alpha: 1})
	if err := mon.Report(monitor.Observation{
		Service: "svc-1", Vector: qos.Vector{40, 2, 0.99, 0.95, 60}, Success: true,
	}); err != nil {
		t.Fatal(err)
	}
	r, err := m.Check(c.ID, mon)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tier != semantics.TierDelighted {
		t.Errorf("tier = %v, want delighted", r.Tier)
	}
}

func TestPenaltyAccumulates(t *testing.T) {
	m := newManager()
	c, err := m.Establish("bob", goodService(), requirements(), 10)
	if err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(qos.StandardSet(), monitor.Options{Alpha: 1})
	observe(t, mon, "svc-1", 150, 0.9)
	first, err := m.Check(c.ID, mon)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Check(c.ID, mon); err != nil {
		t.Fatal(err)
	}
	if got := m.AccruedPenalty(c.ID); got < 2*first.Penalty-1e-9 {
		t.Errorf("accrued %g, want ≥ %g", got, 2*first.Penalty)
	}
}

func TestTerminate(t *testing.T) {
	m := newManager()
	c, err := m.Establish("bob", goodService(), requirements(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Terminate(c.ID) {
		t.Error("Terminate should report presence")
	}
	if m.Terminate(c.ID) {
		t.Error("double Terminate should report absence")
	}
	if _, err := m.Check(c.ID, nil); err == nil {
		t.Error("checking a terminated contract should fail")
	}
}

func TestCheckAll(t *testing.T) {
	m := newManager()
	c1, err := m.Establish("bob", goodService(), requirements(), 1)
	if err != nil {
		t.Fatal(err)
	}
	d2 := goodService()
	d2.ID = "svc-2"
	c2, err := m.Establish("alice", d2, requirements(), 1)
	if err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(qos.StandardSet(), monitor.Options{Alpha: 1})
	observe(t, mon, "svc-2", 300, 0.5) // only svc-2 violates
	reports := m.CheckAll(mon)
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	byID := map[string]*Report{}
	for _, r := range reports {
		byID[r.ContractID] = r
	}
	if !byID[c1.ID].Compliant() {
		t.Error("unobserved contract should be compliant")
	}
	if byID[c2.ID].Compliant() {
		t.Error("violating contract should be flagged")
	}
}
