package baseline

import (
	"fmt"
	"math"
	"testing"

	"qasom/internal/core"
	"qasom/internal/qos"
	"qasom/internal/workload"
)

// TestDifferentialExhaustive checks the engine-backed exhaustive search
// against an independent, map-based enumeration written directly over
// the Evaluator: same winner, same utility and violation bit for bit.
func TestDifferentialExhaustive(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	shapes := []workload.TaskShape{workload.ShapeLinear, workload.ShapeMixed, workload.ShapeChoiceHeavy}
	for seed := int64(1); seed <= 8; seed++ {
		for _, sh := range shapes {
			for _, approach := range qos.Approaches() {
				t.Run(fmt.Sprintf("seed=%d/shape=%d/%v", seed, sh, approach), func(t *testing.T) {
					g := workload.NewGenerator(seed)
					tk := g.Task("X", 4, sh)
					cands := g.Candidates(tk, 4, ps, laws)
					req := &core.Request{
						Task:        tk,
						Properties:  ps,
						Constraints: g.Constraints(tk, ps, laws, workload.AtMean, 2),
						Approach:    approach,
					}
					got, err := Exhaustive(req, cands, ExhaustiveOptions{})
					if err != nil {
						t.Fatalf("exhaustive: %v", err)
					}

					// Reference enumeration in the original map-per-leaf style.
					filtered, err := core.FilterLocal(req, cands)
					if err != nil {
						t.Fatalf("filter: %v", err)
					}
					eval, err := core.NewEvaluator(req, filtered)
					if err != nil {
						t.Fatalf("evaluator: %v", err)
					}
					acts := tk.Activities()
					n := len(acts)
					assign := make(core.Assignment, n)
					var bestFeasible core.Assignment
					bestUtility := math.Inf(-1)
					var bestInfeasible core.Assignment
					bestViolation := math.Inf(1)
					clone := func(a core.Assignment) core.Assignment {
						out := make(core.Assignment, len(a))
						for k, v := range a {
							out[k] = v
						}
						return out
					}
					var rec func(i int)
					rec = func(i int) {
						if i == n {
							v := eval.Violation(assign)
							if v == 0 {
								if u := eval.Utility(assign); u > bestUtility {
									bestUtility = u
									bestFeasible = clone(assign)
								}
							} else if bestFeasible == nil && v < bestViolation {
								bestViolation = v
								bestInfeasible = clone(assign)
							}
							return
						}
						for _, c := range filtered[acts[i].ID] {
							assign[acts[i].ID] = c
							rec(i + 1)
						}
					}
					rec(0)
					want := bestFeasible
					feasible := true
					if want == nil {
						want = bestInfeasible
						feasible = false
					}

					if got.Feasible != feasible {
						t.Fatalf("feasible %v != %v", got.Feasible, feasible)
					}
					for _, a := range acts {
						if got.Assignment[a.ID].Service.ID != want[a.ID].Service.ID {
							t.Fatalf("activity %s: %s != %s", a.ID,
								got.Assignment[a.ID].Service.ID, want[a.ID].Service.ID)
						}
					}
					if wu := eval.Utility(want); got.Utility != wu {
						t.Fatalf("utility %v != %v", got.Utility, wu)
					}
					if wv := eval.Violation(want); got.Violation != wv {
						t.Fatalf("violation %v != %v", got.Violation, wv)
					}
					for j := range got.Aggregated {
						if wa := eval.Aggregate(want); got.Aggregated[j] != wa[j] {
							t.Fatalf("aggregate[%d] %v != %v", j, got.Aggregated[j], wa[j])
						}
					}
				})
			}
		}
	}
}

// TestDifferentialBranchAndBound requires branch-and-bound to return the
// same composition as the exhaustive search on every instance it can
// both solve — the engines underneath differ (sorted pools, pruning),
// the answer must not.
func TestDifferentialBranchAndBound(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	for seed := int64(1); seed <= 8; seed++ {
		g := workload.NewGenerator(seed)
		tk := g.Task("B", 5, workload.ShapeMixed)
		cands := g.Candidates(tk, 5, ps, laws)
		req := &core.Request{
			Task:        tk,
			Properties:  ps,
			Constraints: g.Constraints(tk, ps, laws, workload.AtMean, 3),
		}
		ex, err := Exhaustive(req, cands, ExhaustiveOptions{})
		if err != nil {
			t.Fatalf("seed %d exhaustive: %v", seed, err)
		}
		bb, err := BranchAndBound(req, cands)
		if err != nil {
			t.Fatalf("seed %d branch and bound: %v", seed, err)
		}
		if ex.Feasible != bb.Feasible {
			t.Fatalf("seed %d: feasible %v != %v", seed, ex.Feasible, bb.Feasible)
		}
		if ex.Feasible && ex.Utility != bb.Utility {
			t.Fatalf("seed %d: utility %v != %v", seed, ex.Utility, bb.Utility)
		}
	}
}

// TestDifferentialLocalSearchProbes cross-checks every metaheuristic's
// reported result fields against a fresh Evaluator recomputation over
// the returned assignment — the engine may only speed probes up, never
// change what a result claims about itself.
func TestDifferentialLocalSearchProbes(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	for seed := int64(1); seed <= 4; seed++ {
		g := workload.NewGenerator(seed)
		tk := g.Task("P", 5, workload.ShapeMixed)
		cands := g.Candidates(tk, 8, ps, laws)
		req := &core.Request{
			Task:        tk,
			Properties:  ps,
			Constraints: g.Constraints(tk, ps, laws, workload.AtMean, 2),
		}
		runs := map[string]func() (*core.Result, error){
			"local":   func() (*core.Result, error) { return LocalSearch(req, cands, LocalSearchOptions{Seed: seed}) },
			"genetic": func() (*core.Result, error) { return Genetic(req, cands, GeneticOptions{Seed: seed, Generations: 10}) },
		}
		for name, run := range runs {
			res, err := run()
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			filtered, err := core.FilterLocal(req, cands)
			if err != nil {
				t.Fatalf("filter: %v", err)
			}
			eval, err := core.NewEvaluator(req, filtered)
			if err != nil {
				t.Fatalf("evaluator: %v", err)
			}
			if want := eval.Utility(res.Assignment); res.Utility != want {
				t.Fatalf("seed %d %s: utility %v != recomputed %v", seed, name, res.Utility, want)
			}
			if want := eval.Violation(res.Assignment); res.Violation != want {
				t.Fatalf("seed %d %s: violation %v != recomputed %v", seed, name, res.Violation, want)
			}
			if want := eval.Feasible(res.Assignment); res.Feasible != want {
				t.Fatalf("seed %d %s: feasible %v != recomputed %v", seed, name, res.Feasible, want)
			}
		}
	}
}
