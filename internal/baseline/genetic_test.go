package baseline

import (
	"testing"

	"qasom/internal/core"
	"qasom/internal/qos"
	"qasom/internal/workload"
)

func TestGeneticFindsFeasible(t *testing.T) {
	req, cands := tinyInstance()
	res, err := Genetic(req, cands, GeneticOptions{})
	if err != nil {
		t.Fatalf("Genetic: %v", err)
	}
	if !res.Feasible {
		t.Errorf("genetic should find the feasible composition, violation %g", res.Violation)
	}
	if res.Stats.Evaluations == 0 {
		t.Error("evaluations not counted")
	}
}

func TestGeneticOnRealisticWorkload(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	g := workload.NewGenerator(3)
	tk := g.Task("T", 5, workload.ShapeMixed)
	cands := g.Candidates(tk, 10, ps, laws)
	req := &core.Request{
		Task:        tk,
		Properties:  ps,
		Constraints: g.Constraints(tk, ps, laws, workload.AtMeanPlusSigma, 3),
	}
	opt, err := Exhaustive(req, cands, ExhaustiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Genetic(req, cands, GeneticOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Feasible && !gen.Feasible {
		t.Error("genetic missed a feasible composition")
	}
	if opt.Feasible && gen.Utility < 0.7*opt.Utility {
		t.Errorf("genetic utility %.3f too far below optimum %.3f", gen.Utility, opt.Utility)
	}
}

func TestGeneticDeterministic(t *testing.T) {
	req, cands := tinyInstance()
	a, err := Genetic(req, cands, GeneticOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Genetic(req, cands, GeneticOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for id := range a.Assignment {
		if a.Assignment[id].Service.ID != b.Assignment[id].Service.ID {
			t.Fatal("same seed should reproduce the selection")
		}
	}
}

func TestBranchAndBoundMatchesExhaustive(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	for seed := int64(1); seed <= 6; seed++ {
		g := workload.NewGenerator(seed)
		tk := g.Task("T", 4, workload.ShapeMixed)
		cands := g.Candidates(tk, 8, ps, laws)
		req := &core.Request{
			Task:        tk,
			Properties:  ps,
			Constraints: g.Constraints(tk, ps, laws, workload.AtMeanPlusSigma, 3),
		}
		exh, err := Exhaustive(req, cands, ExhaustiveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		bb, err := BranchAndBound(req, cands)
		if err != nil {
			t.Fatal(err)
		}
		if exh.Feasible != bb.Feasible {
			t.Fatalf("seed %d: feasibility differs (exh %v, bb %v)", seed, exh.Feasible, bb.Feasible)
		}
		if diff := exh.Utility - bb.Utility; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("seed %d: utilities differ (exh %.6f, bb %.6f)", seed, exh.Utility, bb.Utility)
		}
		if exh.Feasible && bb.Stats.Evaluations > exh.Stats.Evaluations {
			t.Errorf("seed %d: B&B visited %d leaves, exhaustive only %d — pruning ineffective",
				seed, bb.Stats.Evaluations, exh.Stats.Evaluations)
		}
	}
}

func TestBranchAndBoundInfeasible(t *testing.T) {
	req, cands := tinyInstance()
	req.Constraints = qos.Constraints{{Property: "rt", Bound: 5}}
	res, err := BranchAndBound(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("nothing satisfies rt ≤ 5")
	}
	if res.Aggregated[0] != 20 {
		t.Errorf("min-violation composition should have rt 20, got %g", res.Aggregated[0])
	}
}

func TestLocalConstraintsAcrossAlgorithms(t *testing.T) {
	req, cands := tinyInstance()
	// Local constraint on activity a: rt ≤ 50 kills a1 (rt 100).
	req.Local = map[string]qos.Constraints{"a": {{Property: "rt", Bound: 50}}}
	for name, run := range map[string]func() (*core.Result, error){
		"exhaustive": func() (*core.Result, error) { return Exhaustive(req, cands, ExhaustiveOptions{}) },
		"greedy":     func() (*core.Result, error) { return Greedy(req, cands) },
		"genetic":    func() (*core.Result, error) { return Genetic(req, cands, GeneticOptions{}) },
		"bnb":        func() (*core.Result, error) { return BranchAndBound(req, cands) },
		"qassa": func() (*core.Result, error) {
			return core.NewSelector(core.Options{}).Select(req, cands)
		},
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := res.Assignment["a"].Service.ID; got != "a2" {
			t.Errorf("%s: local constraint ignored, chose %s", name, got)
		}
	}
	// Unsatisfiable local constraints fail cleanly everywhere.
	req.Local = map[string]qos.Constraints{"a": {{Property: "rt", Bound: 1}}}
	if _, err := Greedy(req, cands); err == nil {
		t.Error("unsatisfiable local constraint should error")
	}
	if _, err := core.NewSelector(core.Options{}).Select(req, cands); err == nil {
		t.Error("unsatisfiable local constraint should error in QASSA")
	}
}
