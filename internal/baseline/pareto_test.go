package baseline

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"qasom/internal/core"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/workload"
)

// stampDevices assigns provider dev(k mod 3) to every pool's k-th
// candidate so co-location dependencies have substance.
func stampDevices(cands map[string][]registry.Candidate) {
	for _, list := range cands {
		for k := range list {
			list[k].Service.Provider = registry.DeviceID(fmt.Sprintf("dev%d", k%3))
		}
	}
}

// paretoDeps builds a satisfiable mixed rule set over the generator's
// naming scheme (activities a1..an, services <act>-s<k>).
func paretoDeps(nActs int) []core.Dependency {
	deps := []core.Dependency{
		{Kind: core.DepRequires, From: "a1", To: "a2",
			ToServices: []registry.ServiceID{"a2-s0", "a2-s1", "a2-s2"}},
		{Kind: core.DepExcludes, From: "a2", To: "a3", FromService: "a2-s0",
			ToServices: []registry.ServiceID{"a3-s1"}},
	}
	if nActs >= 5 {
		deps = append(deps, core.Dependency{Kind: core.DepColocated, From: "a4", To: "a5"})
	}
	return deps
}

// objKey canonicalises an aggregated vector projected on the objectives
// for set comparison.
func objKey(v qos.Vector, objIdx []int) string {
	parts := make([]string, len(objIdx))
	for i, j := range objIdx {
		parts[i] = fmt.Sprintf("%x", v[j])
	}
	return strings.Join(parts, "/")
}

// frontKeys returns the sorted multiset of objective-projected vectors.
func frontKeys(front []core.Result, objIdx []int) []string {
	keys := make([]string, len(front))
	for i, m := range front {
		keys[i] = objKey(m.Aggregated, objIdx)
	}
	sort.Strings(keys)
	return keys
}

// TestDifferentialParetoFront is the acceptance differential of the
// Pareto-front selection mode: on small instances (pool product under
// the exhaustive bound) the front QASSA returns must EQUAL, as a set of
// objective vectors, the exhaustive-enumeration reference front —
// across 2- and 3-objective requests, with and without dependency
// rules, through both evaluation kernels.
func TestDifferentialParetoFront(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	objSets := [][]string{
		{"responseTime", "price"},
		{"responseTime", "availability", "price"},
	}
	type dims struct{ acts, pool int }
	sizes := []dims{{5, 4}, {3, 8}}
	for seed := int64(1); seed <= 4; seed++ {
		for oi, objectives := range objSets {
			for _, sz := range sizes {
				for _, withDeps := range []bool{false, true} {
					name := fmt.Sprintf("seed=%d/obj=%d/acts=%d/pool=%d/deps=%v",
						seed, oi, sz.acts, sz.pool, withDeps)
					t.Run(name, func(t *testing.T) {
						g := workload.NewGenerator(seed)
						tk := g.Task("F", sz.acts, workload.ShapeMixed)
						cands := g.Candidates(tk, sz.pool, ps, laws)
						stampDevices(cands)
						req := &core.Request{
							Task:        tk,
							Properties:  ps,
							Constraints: g.Constraints(tk, ps, laws, workload.AtMeanPlusSigma, 2),
							Objectives:  objectives,
						}
						if withDeps {
							req.Dependencies = paretoDeps(sz.acts)
						}
						want, err := ExhaustiveFront(req, cands, ExhaustiveOptions{})
						if err != nil {
							t.Fatalf("reference front: %v", err)
						}
						objIdx := req.EffectiveObjectives()
						wantKeys := frontKeys(want, objIdx)
						for _, naive := range []bool{false, true} {
							res, err := core.NewSelector(core.Options{
								Workers: 1, ParetoMode: true, NaiveEvaluation: naive,
							}).Select(req, cands)
							if err != nil {
								t.Fatalf("select (naive=%v): %v", naive, err)
							}
							if len(want) == 0 {
								if res.Feasible || len(res.Front) != 0 {
									t.Fatalf("no feasible composition exists, but selection returned feasible=%v front=%d",
										res.Feasible, len(res.Front))
								}
								continue
							}
							gotKeys := frontKeys(res.Front, objIdx)
							if len(gotKeys) != len(wantKeys) {
								t.Fatalf("naive=%v: front size %d, reference %d\ngot:  %v\nwant: %v",
									naive, len(gotKeys), len(wantKeys), gotKeys, wantKeys)
							}
							for i := range wantKeys {
								if gotKeys[i] != wantKeys[i] {
									t.Fatalf("naive=%v: front differs at %d\ngot:  %v\nwant: %v",
										naive, i, gotKeys, wantKeys)
								}
							}
							// The scalarized pick must be the best-utility
							// front member.
							for _, m := range res.Front {
								if m.Utility > res.Utility {
									t.Fatalf("front member utility %v exceeds returned best %v", m.Utility, res.Utility)
								}
							}
						}
					})
				}
			}
		}
	}
}

// TestDifferentialExhaustiveDependencies checks the dependency-aware
// exhaustive search against QASSA under the same rules: the exhaustive
// feasible optimum never violates a rule, dominates QASSA's utility,
// and both agree on feasibility for satisfiable rule sets.
func TestDifferentialExhaustiveDependencies(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := workload.NewGenerator(seed)
			tk := g.Task("X", 5, workload.ShapeMixed)
			cands := g.Candidates(tk, 4, ps, laws)
			stampDevices(cands)
			req := &core.Request{
				Task:         tk,
				Properties:   ps,
				Constraints:  g.Constraints(tk, ps, laws, workload.AtMeanPlusSigma, 2),
				Dependencies: paretoDeps(5),
			}
			opt, err := Exhaustive(req, cands, ExhaustiveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			ds, err := req.CompiledDependencies()
			if err != nil {
				t.Fatal(err)
			}
			bound := func(res *core.Result) func(string) (registry.Candidate, bool) {
				return func(id string) (registry.Candidate, bool) {
					c, ok := res.Assignment[id]
					return c, ok
				}
			}
			if opt.Feasible {
				if n := ds.Violations(bound(opt)); n != 0 {
					t.Fatalf("exhaustive feasible optimum violates %d dependency rules", n)
				}
				if opt.Violation != 0 {
					t.Fatalf("feasible optimum reports violation %v", opt.Violation)
				}
			}
			heur, err := core.NewSelector(core.Options{Workers: 1}).Select(req, cands)
			if err != nil {
				t.Fatal(err)
			}
			if heur.Feasible && !opt.Feasible {
				t.Fatal("QASSA found a feasible composition the exhaustive search missed")
			}
			const eps = 1e-9
			if heur.Feasible && opt.Feasible && heur.Utility > opt.Utility+eps {
				t.Fatalf("QASSA utility %v exceeds the exhaustive optimum %v", heur.Utility, opt.Utility)
			}
		})
	}
}
