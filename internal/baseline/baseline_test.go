package baseline

import (
	"errors"
	"fmt"
	"testing"

	"qasom/internal/core"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
	"qasom/internal/task"
	"qasom/internal/workload"
)

func twoProps() *qos.PropertySet {
	return qos.MustNewPropertySet(
		&qos.Property{Name: "rt", Concept: semantics.ResponseTime, Direction: qos.Minimized, Kind: qos.KindTime, Unit: qos.Milliseconds},
		&qos.Property{Name: "avail", Concept: semantics.Availability, Direction: qos.Maximized, Kind: qos.KindProbability, Unit: qos.Ratio},
	)
}

func cand(id string, vals ...float64) registry.Candidate {
	return registry.Candidate{
		Service: registry.Description{ID: registry.ServiceID(id), Concept: "C"},
		Vector:  qos.Vector(vals),
	}
}

func seqTask(ids ...string) *task.Task {
	nodes := make([]*task.Node, len(ids))
	for i, id := range ids {
		nodes[i] = task.NewActivity(&task.Activity{ID: id, Concept: "C"})
	}
	root := task.Sequence(nodes...)
	if len(nodes) == 1 {
		root = nodes[0]
	}
	return &task.Task{Name: "t", Concept: "C", Root: root}
}

// tinyInstance is small enough to verify the exhaustive optimum by hand:
// activities a and b, two candidates each.
//
//	a1: rt 100, avail 0.99    a2: rt 10, avail 0.90
//	b1: rt 100, avail 0.99    b2: rt 10, avail 0.90
//
// Constraint rt ≤ 120 forbids (a1,b1); the best feasible utility picks
// one fast and one good service.
func tinyInstance() (*core.Request, map[string][]registry.Candidate) {
	req := &core.Request{
		Task:        seqTask("a", "b"),
		Properties:  twoProps(),
		Constraints: qos.Constraints{{Property: "rt", Bound: 120}},
	}
	cands := map[string][]registry.Candidate{
		"a": {cand("a1", 100, 0.99), cand("a2", 10, 0.90)},
		"b": {cand("b1", 100, 0.99), cand("b2", 10, 0.90)},
	}
	return req, cands
}

func TestExhaustiveFindsOptimum(t *testing.T) {
	req, cands := tinyInstance()
	res, err := Exhaustive(req, cands, ExhaustiveOptions{})
	if err != nil {
		t.Fatalf("Exhaustive: %v", err)
	}
	if !res.Feasible {
		t.Fatal("feasible composition exists")
	}
	// (a1,b1) has rt 200 — infeasible. The three feasible combos have
	// utility 0.5 (one of each) or 0 (both fast): optimum picks mixed.
	ids := []string{string(res.Assignment["a"].Service.ID), string(res.Assignment["b"].Service.ID)}
	if !(ids[0] == "a1" && ids[1] == "b2") && !(ids[0] == "a2" && ids[1] == "b1") {
		t.Errorf("optimum should mix fast and good: got %v (utility %g)", ids, res.Utility)
	}
	if res.Aggregated[0] > 120 {
		t.Errorf("optimum violates constraint: %v", res.Aggregated)
	}
}

func TestExhaustiveInfeasible(t *testing.T) {
	req, cands := tinyInstance()
	req.Constraints = qos.Constraints{{Property: "rt", Bound: 5}}
	res, err := Exhaustive(req, cands, ExhaustiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("nothing satisfies rt ≤ 5")
	}
	// Minimum violation = both fast services (rt 20).
	if res.Aggregated[0] != 20 {
		t.Errorf("min violation composition should have rt 20, got %g", res.Aggregated[0])
	}
}

func TestExhaustiveTooLarge(t *testing.T) {
	tk := seqTask("a", "b", "c", "d", "e", "f")
	cands := make(map[string][]registry.Candidate)
	for _, a := range tk.Activities() {
		list := make([]registry.Candidate, 50)
		for i := range list {
			list[i] = cand(fmt.Sprintf("%s-%d", a.ID, i), float64(i+1), 0.9)
		}
		cands[a.ID] = list
	}
	req := &core.Request{Task: tk, Properties: twoProps()}
	_, err := Exhaustive(req, cands, ExhaustiveOptions{MaxCombinations: 1000})
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("expected ErrTooLarge, got %v", err)
	}
}

func TestGreedyIgnoresConstraints(t *testing.T) {
	req, cands := tinyInstance()
	// Weight availability heavily: greedy picks a1 and b1 → infeasible.
	req.Weights = qos.Weights{0.01, 0.99}
	res, err := Greedy(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment["a"].Service.ID != "a1" || res.Assignment["b"].Service.ID != "b1" {
		t.Errorf("greedy should pick per-activity best: %v", res.Assignment)
	}
	if res.Feasible {
		t.Error("greedy result should be infeasible here")
	}
	if res.Violation <= 0 {
		t.Error("violation should be reported")
	}
}

func TestGreedyFeasibleWhenUnconstrained(t *testing.T) {
	req, cands := tinyInstance()
	req.Constraints = nil
	res, err := Greedy(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Error("unconstrained greedy should be feasible")
	}
}

func TestLocalSearchFindsFeasible(t *testing.T) {
	req, cands := tinyInstance()
	res, err := LocalSearch(req, cands, LocalSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Errorf("local search should find a feasible composition, got violation %g", res.Violation)
	}
}

func TestQASSAOptimalityAgainstExhaustive(t *testing.T) {
	// The headline property of the thesis: QASSA's utility stays close
	// to the exhaustive optimum on realistic workloads. We require ≥85%
	// on every seed and ≥92% on average (the thesis reports >90%).
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	sumRatio, runs := 0.0, 0
	for seed := int64(1); seed <= 8; seed++ {
		g := workload.NewGenerator(seed)
		tk := g.Task("T", 5, workload.ShapeMixed)
		cands := g.Candidates(tk, 10, ps, laws)
		req := &core.Request{
			Task:        tk,
			Properties:  ps,
			Constraints: g.Constraints(tk, ps, laws, workload.AtMeanPlusSigma, 3),
		}
		opt, err := Exhaustive(req, cands, ExhaustiveOptions{})
		if err != nil {
			t.Fatalf("seed %d: exhaustive: %v", seed, err)
		}
		heur, err := core.NewSelector(core.Options{}).Select(req, cands)
		if err != nil {
			t.Fatalf("seed %d: qassa: %v", seed, err)
		}
		if opt.Feasible && !heur.Feasible {
			t.Errorf("seed %d: exhaustive feasible but QASSA not", seed)
			continue
		}
		if !opt.Feasible {
			continue // nothing to compare
		}
		ratio := heur.Utility / opt.Utility
		if ratio < 0.85 {
			t.Errorf("seed %d: optimality %.1f%% below 85%%", seed, 100*ratio)
		}
		sumRatio += ratio
		runs++
	}
	if runs > 0 && sumRatio/float64(runs) < 0.92 {
		t.Errorf("mean optimality %.1f%% below 92%%", 100*sumRatio/float64(runs))
	}
}

func TestQASSABeatsGreedyUnderConstraints(t *testing.T) {
	// Where greedy goes infeasible, QASSA should stay feasible.
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	wins := 0
	for seed := int64(1); seed <= 6; seed++ {
		g := workload.NewGenerator(seed)
		tk := g.Task("T", 6, workload.ShapeLinear)
		cands := g.Candidates(tk, 20, ps, laws)
		req := &core.Request{
			Task:        tk,
			Properties:  ps,
			Constraints: g.Constraints(tk, ps, laws, workload.AtMean, 3),
			// Skew preferences away from the constrained properties so
			// greedy picks constraint-hostile services.
			Weights: qos.Weights{0.05, 0.05, 0.3, 0.3, 0.3},
		}
		greedy, err := Greedy(req, cands)
		if err != nil {
			t.Fatal(err)
		}
		heur, err := core.NewSelector(core.Options{}).Select(req, cands)
		if err != nil {
			t.Fatal(err)
		}
		if heur.Feasible && !greedy.Feasible {
			wins++
		}
		if greedy.Feasible && !heur.Feasible {
			t.Errorf("seed %d: greedy feasible but QASSA infeasible", seed)
		}
	}
	if wins == 0 {
		t.Error("QASSA never out-performed greedy on feasibility across seeds; workload too easy to be meaningful")
	}
}
