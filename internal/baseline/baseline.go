// Package baseline implements the comparison algorithms for QASSA's
// evaluation: the exhaustive optimal search (the reference for the
// optimality measurements of Figs. VI.6, VI.8 and VI.11), the greedy
// per-activity selection the thesis's introduction discusses, and a
// random-restart local search. All baselines share QASSA's Evaluator, so
// utilities and feasibility are strictly comparable.
package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"qasom/internal/core"
	"qasom/internal/qos"
	"qasom/internal/registry"
)

// ErrTooLarge is returned when the exhaustive search space exceeds the
// configured bound.
var ErrTooLarge = fmt.Errorf("baseline: search space exceeds the exhaustive bound")

// ExhaustiveOptions bound the exhaustive search.
type ExhaustiveOptions struct {
	// MaxCombinations aborts the search when the full product exceeds
	// this bound; 0 means 20 million.
	MaxCombinations int
}

// Exhaustive enumerates every composition and returns the
// maximum-utility feasible one; when no composition is feasible it
// returns the minimum-violation one with Feasible=false. It is exact but
// exponential (ℓ^n) — the evaluation uses it only on small instances.
// Enumeration probes through the incremental core.EvalEngine: advancing
// one activity's candidate re-folds only that leaf's path, so a leaf
// visit costs O(depth·p) instead of a full O(n·p) re-aggregation plus a
// fresh assignment map.
func Exhaustive(req *core.Request, candidates map[string][]registry.Candidate, opts ExhaustiveOptions) (*core.Result, error) {
	candidates, err := filterLocal(req, candidates)
	if err != nil {
		return nil, err
	}
	eval, err := core.NewEvaluator(req, candidates)
	if err != nil {
		return nil, err
	}
	if opts.MaxCombinations <= 0 {
		opts.MaxCombinations = 20_000_000
	}
	acts := req.Task.Activities()
	total := 1
	for _, a := range acts {
		n := len(candidates[a.ID])
		if n == 0 {
			return nil, fmt.Errorf("baseline: activity %q has no candidates", a.ID)
		}
		if total > opts.MaxCombinations/n {
			return nil, fmt.Errorf("%w: >%d combinations", ErrTooLarge, opts.MaxCombinations)
		}
		total *= n
	}
	eng, err := core.NewEvalEngine(eval, candidates)
	if err != nil {
		return nil, err
	}
	deps, err := depCounter(req, eng)
	if err != nil {
		return nil, err
	}

	n := len(acts)
	var bestFeasible []int
	bestUtility := math.Inf(-1)
	var bestInfeasible []int
	bestViolation := math.Inf(1)
	evaluations := 0

	var rec func(i int)
	rec = func(i int) {
		if i == n {
			evaluations++
			v := eng.Violation()
			if deps != nil {
				v += float64(deps())
			}
			if v == 0 {
				if u := eng.Utility(); u > bestUtility {
					bestUtility = u
					bestFeasible = eng.Snapshot(bestFeasible)
				}
			} else if bestFeasible == nil && v < bestViolation {
				bestViolation = v
				bestInfeasible = eng.Snapshot(bestInfeasible)
			}
			return
		}
		for k := 0; k < eng.PoolSize(i); k++ {
			eng.Assign(i, k)
			rec(i + 1)
		}
	}
	rec(0)

	chosen := bestFeasible
	feasible := true
	if chosen == nil {
		chosen = bestInfeasible
		feasible = false
	}
	res := finalize(eval, assignmentOf(eng, chosen), feasible, evaluations)
	if deps != nil {
		// Match the core's combined semantics: one violation unit per
		// violated dependency rule on top of the QoS excess.
		eng.Load(chosen)
		res.Violation = eng.Violation() + float64(deps())
	}
	return res, nil
}

// depCounter compiles the request's dependency rules and returns a
// closure counting the rule violations of the engine's CURRENT
// assignment (nil when the request declares no rules). Baselines count
// a dependency-violating composition as infeasible, exactly like the
// QASSA global phase, so optimality ratios stay comparable.
func depCounter(req *core.Request, eng *core.EvalEngine) (func() int, error) {
	ds, err := req.CompiledDependencies()
	if err != nil {
		return nil, err
	}
	if ds == nil {
		return nil, nil
	}
	idx := make(map[string]int, eng.Activities())
	for a := 0; a < eng.Activities(); a++ {
		idx[eng.ActivityID(a)] = a
	}
	bound := func(id string) (registry.Candidate, bool) {
		a, ok := idx[id]
		if !ok {
			return registry.Candidate{}, false
		}
		return eng.Candidate(a, eng.Current(a)), true
	}
	return func() int { return ds.Violations(bound) }, nil
}

// ExhaustiveFront enumerates every composition and returns the EXACT
// non-dominated front of the feasible ones over the request's effective
// objectives — the reference the Pareto-front selection mode is
// differentially tested against (set equality on aggregated vectors).
// Entries are slim results (assignment, aggregated QoS, utility, no
// alternates) in archive insertion order; exact-duplicate objective
// vectors keep the first composition encountered, mirroring
// qos.ParetoFront. Dependency rules make a composition infeasible
// exactly as in Exhaustive.
func ExhaustiveFront(req *core.Request, candidates map[string][]registry.Candidate, opts ExhaustiveOptions) ([]core.Result, error) {
	candidates, err := filterLocal(req, candidates)
	if err != nil {
		return nil, err
	}
	eval, err := core.NewEvaluator(req, candidates)
	if err != nil {
		return nil, err
	}
	objIdx := req.EffectiveObjectives()
	if len(objIdx) < 2 {
		return nil, fmt.Errorf("baseline: Pareto front needs at least 2 objectives, got %d", len(objIdx))
	}
	if opts.MaxCombinations <= 0 {
		opts.MaxCombinations = 20_000_000
	}
	acts := req.Task.Activities()
	total := 1
	for _, a := range acts {
		n := len(candidates[a.ID])
		if n == 0 {
			return nil, fmt.Errorf("baseline: activity %q has no candidates", a.ID)
		}
		if total > opts.MaxCombinations/n {
			return nil, fmt.Errorf("%w: >%d combinations", ErrTooLarge, opts.MaxCombinations)
		}
		total *= n
	}
	eng, err := core.NewEvalEngine(eval, candidates)
	if err != nil {
		return nil, err
	}
	deps, err := depCounter(req, eng)
	if err != nil {
		return nil, err
	}
	props := make([]*qos.Property, len(objIdx))
	for i, j := range objIdx {
		props[i] = req.Properties.At(j)
	}
	arch := qos.NewArchive(props)
	snaps := make(map[int][]int)
	nextID := 0
	aggBuf := make(qos.Vector, req.Properties.Len())
	objBuf := make(qos.Vector, len(objIdx))

	n := len(acts)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if eng.Violation() != 0 || (deps != nil && deps() != 0) {
				return
			}
			agg := eng.AggregateInto(aggBuf)
			for x, j := range objIdx {
				objBuf[x] = agg[j]
			}
			if arch.Dominated(objBuf) {
				return
			}
			obj := append(qos.Vector(nil), objBuf...)
			inserted, removed := arch.Insert(obj, nextID)
			if !inserted {
				return
			}
			snaps[nextID] = eng.Snapshot(nil)
			nextID++
			for _, rid := range removed {
				delete(snaps, rid)
			}
			return
		}
		for k := 0; k < eng.PoolSize(i); k++ {
			eng.Assign(i, k)
			rec(i + 1)
		}
	}
	rec(0)

	pts := arch.Points()
	front := make([]core.Result, len(pts))
	for i, pt := range pts {
		snap := snaps[pt.ID]
		eng.Load(snap)
		front[i] = core.Result{
			Assignment: assignmentOf(eng, snap),
			Aggregated: eng.Aggregate(),
			Utility:    eng.Utility(),
			Feasible:   true,
		}
	}
	return front, nil
}

// assignmentOf materialises a per-activity candidate-index snapshot as
// the Assignment map the rest of the system consumes.
func assignmentOf(eng *core.EvalEngine, idx []int) core.Assignment {
	out := make(core.Assignment, len(idx))
	for a, k := range idx {
		out[eng.ActivityID(a)] = eng.Candidate(a, k)
	}
	return out
}

// Greedy picks, independently for every activity, the highest-utility
// candidate — the low-cost strategy the thesis contrasts with global
// selection: it ignores the global constraints entirely, so the result
// may be infeasible.
func Greedy(req *core.Request, candidates map[string][]registry.Candidate) (*core.Result, error) {
	candidates, err := filterLocal(req, candidates)
	if err != nil {
		return nil, err
	}
	eval, err := core.NewEvaluator(req, candidates)
	if err != nil {
		return nil, err
	}
	acts := req.Task.Activities()
	assign := make(core.Assignment, len(acts))
	evaluations := 0
	for _, a := range acts {
		best := candidates[a.ID][0]
		bestU := eval.CandidateUtility(a.ID, best)
		for _, c := range candidates[a.ID][1:] {
			evaluations++
			if u := eval.CandidateUtility(a.ID, c); u > bestU {
				best, bestU = c, u
			}
		}
		assign[a.ID] = best
	}
	return finalize(eval, assign, eval.Feasible(assign), evaluations), nil
}

// LocalSearchOptions tune the random-restart local search.
type LocalSearchOptions struct {
	// Restarts is the number of random starting assignments; 0 means 10.
	Restarts int
	// MaxMoves bounds hill-climbing moves per restart; 0 means 200.
	MaxMoves int
	// Penalty scales constraint violation against utility in the
	// objective; 0 means 10.
	Penalty float64
	// Seed drives the randomness; 0 means 1.
	Seed int64
}

// LocalSearch runs a penalty-objective hill climb from random starts:
// objective = utility − Penalty·violation, moves are single-activity
// swaps, each probed incrementally through the shared evaluation
// engine. A simple metaheuristic baseline between greedy and exhaustive.
func LocalSearch(req *core.Request, candidates map[string][]registry.Candidate, opts LocalSearchOptions) (*core.Result, error) {
	candidates, err := filterLocal(req, candidates)
	if err != nil {
		return nil, err
	}
	eval, err := core.NewEvaluator(req, candidates)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEvalEngine(eval, candidates)
	if err != nil {
		return nil, err
	}
	if opts.Restarts <= 0 {
		opts.Restarts = 10
	}
	if opts.MaxMoves <= 0 {
		opts.MaxMoves = 200
	}
	if opts.Penalty == 0 {
		opts.Penalty = 10
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	n := eng.Activities()

	objective := func() float64 {
		return eng.Utility() - opts.Penalty*eng.Violation()
	}

	var best []int
	bestObj := math.Inf(-1)
	evaluations := 0

	for r := 0; r < opts.Restarts; r++ {
		for a := 0; a < n; a++ {
			eng.Assign(a, rng.Intn(eng.PoolSize(a)))
		}
		cur := objective()
		evaluations++
		for move := 0; move < opts.MaxMoves; move++ {
			improved := false
			for a := 0; a < n; a++ {
				prev := eng.Current(a)
				for k := 0; k < eng.PoolSize(a); k++ {
					if eng.Candidate(a, k).Service.ID == eng.Candidate(a, prev).Service.ID {
						continue
					}
					eng.Assign(a, k)
					evaluations++
					if obj := objective(); obj > cur {
						cur = obj
						prev = k
						improved = true
					} else {
						eng.Assign(a, prev)
					}
				}
				eng.Assign(a, prev)
			}
			if !improved {
				break
			}
		}
		if cur > bestObj {
			bestObj = cur
			best = eng.Snapshot(best)
		}
	}
	assign := assignmentOf(eng, best)
	return finalize(eval, assign, eval.Feasible(assign), evaluations), nil
}

func finalize(eval *core.Evaluator, assign core.Assignment, feasible bool, evaluations int) *core.Result {
	return &core.Result{
		Assignment: assign,
		Alternates: map[string][]registry.Candidate{},
		Aggregated: eval.Aggregate(assign),
		Utility:    eval.Utility(assign),
		Feasible:   feasible,
		Violation:  eval.Violation(assign),
		Stats:      core.Stats{Evaluations: evaluations},
	}
}

// filterLocal enforces the request's local constraints so baselines and
// QASSA search the same candidate space.
func filterLocal(req *core.Request, candidates map[string][]registry.Candidate) (map[string][]registry.Candidate, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return core.FilterLocal(req, candidates)
}
