package baseline

import (
	"math"
	"math/rand"
	"sort"

	"qasom/internal/core"
	"qasom/internal/registry"
)

// GeneticOptions tune the genetic-algorithm baseline (after Canfora et
// al., the classic metaheuristic for QoS-aware selection the thesis's
// related work surveys).
type GeneticOptions struct {
	// Population size; 0 means 40.
	Population int
	// Generations; 0 means 60.
	Generations int
	// CrossoverRate in [0,1]; 0 means 0.8.
	CrossoverRate float64
	// MutationRate per gene in [0,1]; 0 means 0.1.
	MutationRate float64
	// Elite individuals copied unchanged per generation; 0 means 2.
	Elite int
	// Penalty scales constraint violation in the fitness; 0 means 10.
	Penalty float64
	// Seed drives the randomness; 0 means 1.
	Seed int64
}

func (o GeneticOptions) withDefaults() GeneticOptions {
	if o.Population <= 0 {
		o.Population = 40
	}
	if o.Generations <= 0 {
		o.Generations = 60
	}
	if o.CrossoverRate <= 0 {
		o.CrossoverRate = 0.8
	}
	if o.MutationRate <= 0 {
		o.MutationRate = 0.1
	}
	if o.Elite <= 0 {
		o.Elite = 2
	}
	if o.Penalty == 0 {
		o.Penalty = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Genetic runs a penalty-fitness genetic algorithm: chromosomes are
// per-activity candidate indices, tournament selection, single-point
// crossover, per-gene mutation, elitism. Fitness probes go through the
// incremental evaluation engine — loading a chromosome re-folds only
// the leaves that differ from the previous individual, and no per-
// evaluation assignment map is built.
func Genetic(req *core.Request, candidates map[string][]registry.Candidate, opts GeneticOptions) (*core.Result, error) {
	candidates, err := filterLocal(req, candidates)
	if err != nil {
		return nil, err
	}
	eval, err := core.NewEvaluator(req, candidates)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEvalEngine(eval, candidates)
	if err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	acts := req.Task.Activities()
	n := len(acts)
	pools := make([][]registry.Candidate, n)
	for i, a := range acts {
		pools[i] = candidates[a.ID]
	}

	evaluations := 0
	toAssign := func(genes []int) core.Assignment {
		assign := make(core.Assignment, n)
		for i, g := range genes {
			assign[acts[i].ID] = pools[i][g]
		}
		return assign
	}
	fitness := func(genes []int) float64 {
		evaluations++
		for i, g := range genes {
			eng.Assign(i, g)
		}
		return eng.Utility() - o.Penalty*eng.Violation()
	}

	type individual struct {
		genes []int
		fit   float64
	}
	pop := make([]individual, o.Population)
	for p := range pop {
		genes := make([]int, n)
		for i := range genes {
			genes[i] = rng.Intn(len(pools[i]))
		}
		pop[p] = individual{genes: genes, fit: fitness(genes)}
	}
	byFitness := func() {
		sort.SliceStable(pop, func(a, b int) bool { return pop[a].fit > pop[b].fit })
	}
	byFitness()

	tournament := func() individual {
		best := pop[rng.Intn(len(pop))]
		for k := 0; k < 2; k++ {
			if c := pop[rng.Intn(len(pop))]; c.fit > best.fit {
				best = c
			}
		}
		return best
	}

	for gen := 0; gen < o.Generations; gen++ {
		next := make([]individual, 0, o.Population)
		for e := 0; e < o.Elite && e < len(pop); e++ {
			elite := individual{genes: append([]int(nil), pop[e].genes...), fit: pop[e].fit}
			next = append(next, elite)
		}
		for len(next) < o.Population {
			a, b := tournament(), tournament()
			child := append([]int(nil), a.genes...)
			if rng.Float64() < o.CrossoverRate && n > 1 {
				cut := 1 + rng.Intn(n-1)
				copy(child[cut:], b.genes[cut:])
			}
			for i := range child {
				if rng.Float64() < o.MutationRate {
					child[i] = rng.Intn(len(pools[i]))
				}
			}
			next = append(next, individual{genes: child, fit: fitness(child)})
		}
		pop = next
		byFitness()
	}

	best := toAssign(pop[0].genes)
	res := finalize(eval, best, eval.Feasible(best), evaluations)
	return res, nil
}

// BranchAndBound is an exact solver that scales further than the plain
// exhaustive search: it orders each activity's candidates by utility and
// prunes any partial assignment whose utility upper bound (achieved
// utility so far + per-activity maxima for the rest) cannot beat the
// incumbent. Results are identical to Exhaustive; only the visit order
// and the pruning differ. Leaf feasibility checks probe through the
// incremental engine built over the utility-sorted pools, so each leaf
// costs one path re-fold instead of a full re-aggregation.
func BranchAndBound(req *core.Request, candidates map[string][]registry.Candidate) (*core.Result, error) {
	candidates, err := filterLocal(req, candidates)
	if err != nil {
		return nil, err
	}
	eval, err := core.NewEvaluator(req, candidates)
	if err != nil {
		return nil, err
	}
	acts := req.Task.Activities()
	n := len(acts)

	// Per-activity candidate utilities, sorted descending so good
	// branches are explored first and bounds tighten quickly.
	type scored struct {
		cand registry.Candidate
		util float64
	}
	pools := make([][]scored, n)
	maxUtil := make([]float64, n)
	sorted := make(map[string][]registry.Candidate, n)
	for i, a := range acts {
		list := candidates[a.ID]
		pool := make([]scored, len(list))
		for k, c := range list {
			pool[k] = scored{cand: c, util: eval.CandidateUtility(a.ID, c)}
		}
		sort.SliceStable(pool, func(x, y int) bool { return pool[x].util > pool[y].util })
		pools[i] = pool
		if len(pool) > 0 {
			maxUtil[i] = pool[0].util
		}
		ordered := make([]registry.Candidate, len(pool))
		for k := range pool {
			ordered[k] = pool[k].cand
		}
		sorted[a.ID] = ordered
	}
	eng, err := core.NewEvalEngine(eval, sorted)
	if err != nil {
		return nil, err
	}
	// Suffix sums of the best attainable utility from activity i on.
	suffix := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + maxUtil[i]
	}

	var bestFeasible []int
	bestUtility := math.Inf(-1)
	var bestInfeasible []int
	bestViolation := math.Inf(1)
	evaluations := 0

	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if bestFeasible != nil && (acc+suffix[i])/float64(n) <= bestUtility {
			return // even perfect completions cannot beat the incumbent
		}
		if i == n {
			evaluations++
			v := eng.Violation()
			if v == 0 {
				if u := acc / float64(n); u > bestUtility {
					bestUtility = u
					bestFeasible = eng.Snapshot(bestFeasible)
				}
			} else if bestFeasible == nil && v < bestViolation {
				bestViolation = v
				bestInfeasible = eng.Snapshot(bestInfeasible)
			}
			return
		}
		for k, s := range pools[i] {
			eng.Assign(i, k)
			rec(i+1, acc+s.util)
		}
	}
	rec(0, 0)

	chosen := bestFeasible
	feasible := true
	if chosen == nil {
		chosen = bestInfeasible
		feasible = false
	}
	return finalize(eval, assignmentOf(eng, chosen), feasible, evaluations), nil
}
