package subidx

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"qasom/internal/monitor"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

// fakeSource is a hand-rolled Source over a fixed snapshot, standing in
// for adapt.Runtime.
type fakeSource struct {
	mu      sync.Mutex
	version uint64
	acts    []*task.Activity
	assign  map[string]registry.Candidate
	alts    map[string][]registry.Candidate
	ps      *qos.PropertySet
}

func (f *fakeSource) SelectionSnapshot() Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	assign := make(map[string]registry.Candidate, len(f.assign))
	for k, v := range f.assign {
		assign[k] = v
	}
	alts := make(map[string][]registry.Candidate, len(f.alts))
	for k, v := range f.alts {
		alts[k] = append([]registry.Candidate(nil), v...)
	}
	return Snapshot{
		Version:    f.version,
		Activities: f.acts,
		Assignment: assign,
		Alternates: alts,
		Properties: f.ps,
	}
}

func (f *fakeSource) SelectionVersion() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.version
}

// commit mirrors the runtime's rotation into the fake source.
func (f *fakeSource) commit(act string, chosen registry.Candidate) registry.Candidate {
	f.mu.Lock()
	defer f.mu.Unlock()
	old := f.assign[act]
	f.assign[act] = chosen
	list := f.alts[act]
	out := list[:0]
	for _, c := range list {
		if c.Service.ID != chosen.Service.ID {
			out = append(out, c)
		}
	}
	if old.Service.ID != "" {
		out = append(out, old)
	}
	f.alts[act] = out
	f.version++
	return old
}

func testOffers(rt float64) []registry.QoSOffer {
	return []registry.QoSOffer{
		{Property: semantics.ResponseTime, Value: rt},
		{Property: semantics.Price, Value: 5},
		{Property: semantics.Availability, Value: 0.95},
		{Property: semantics.Reliability, Value: 0.9},
		{Property: semantics.Throughput, Value: 40},
	}
}

// fixture publishes n order services and wires a tracker + source whose
// activity "order" is bound to order-0 with order-1..n-1 as alternates.
func fixture(t *testing.T, n int, opts Options) (*Tracker, *Index, *fakeSource, *registry.Registry, *monitor.Monitor) {
	t.Helper()
	onto := semantics.PervasiveWithScenarios()
	reg := registry.New(onto)
	ps := qos.StandardSet()
	var cands []registry.Candidate
	for i := 0; i < n; i++ {
		d := registry.Description{
			ID:      registry.ServiceID(fmt.Sprintf("order-%d", i)),
			Concept: semantics.OrderItem,
			Offers:  testOffers(40 + float64(5*i)),
		}
		if err := reg.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range reg.Candidates(semantics.OrderItem, ps) {
		cands = append(cands, c)
	}
	if len(cands) != n {
		t.Fatalf("candidates = %d, want %d", len(cands), n)
	}
	act := &task.Activity{ID: "order", Concept: semantics.OrderItem}
	src := &fakeSource{
		acts:   []*task.Activity{act},
		assign: map[string]registry.Candidate{"order": cands[0]},
		alts:   map[string][]registry.Candidate{"order": cands[1:]},
		ps:     ps,
	}
	mon := monitor.New(ps, monitor.Options{})
	tr := NewTracker(reg, mon, opts)
	t.Cleanup(tr.Close)
	x := tr.Track(src)
	return tr, x, src, reg, mon
}

func ids(reps []Replacement) []registry.ServiceID {
	out := make([]registry.ServiceID, len(reps))
	for i, r := range reps {
		out[i] = r.Service
	}
	return out
}

func TestBuildAndLookupOrder(t *testing.T) {
	_, x, _, _, _ := fixture(t, 4, Options{})
	if x.State() != StateCold {
		t.Fatalf("state before build = %v, want cold", x.State())
	}
	if _, out := x.Lookup("order", nil); out != Cold {
		t.Fatalf("cold lookup outcome = %v, want Cold", out)
	}
	x.BuildNow()
	if x.State() != StateBuilt {
		t.Fatalf("state = %v, want built", x.State())
	}
	cand, out := x.Lookup("order", nil)
	if out != Hit || cand.Service.ID != "order-1" {
		t.Fatalf("lookup = %s/%v, want order-1 hit", cand.Service.ID, out)
	}
	// Exclusion walks down the ranked list in alternate order.
	cand, out = x.Lookup("order", map[registry.ServiceID]bool{"order-1": true})
	if out != Hit || cand.Service.ID != "order-2" {
		t.Fatalf("lookup with exclusion = %s/%v, want order-2 hit", cand.Service.ID, out)
	}
	// Exhaustion when everything is excluded.
	all := map[registry.ServiceID]bool{"order-1": true, "order-2": true, "order-3": true}
	if _, out = x.Lookup("order", all); out != Exhausted {
		t.Fatalf("outcome = %v, want Exhausted", out)
	}
	if _, out = x.Lookup("ghost", nil); out != Exhausted {
		t.Fatalf("unknown activity outcome = %v, want Exhausted", out)
	}
	// Deltas: the bound service is the best responder, so every
	// replacement costs utility.
	for _, r := range x.Replacements("order") {
		if r.DeltaUtility >= 0 {
			t.Errorf("replacement %s delta utility = %g, want < 0", r.Service, r.DeltaUtility)
		}
		if r.DeltaQoS[0] <= 0 {
			t.Errorf("replacement %s rt delta = %g, want > 0", r.Service, r.DeltaQoS[0])
		}
	}
}

func TestWithdrawAndRepublishMaintainLiveBits(t *testing.T) {
	tr, x, _, reg, _ := fixture(t, 4, Options{})
	x.BuildNow()
	reg.Withdraw("order-1")
	tr.Quiesce()
	cand, out := x.Lookup("order", nil)
	if out != Hit || cand.Service.ID != "order-2" {
		t.Fatalf("after withdraw lookup = %s/%v, want order-2", cand.Service.ID, out)
	}
	// Republish revives the service; the refresh re-ranks, but the entry
	// keeps its selection-time slot (rotation order is authoritative).
	if err := reg.Publish(registry.Description{
		ID: "order-1", Concept: semantics.OrderItem, Offers: testOffers(45),
	}); err != nil {
		t.Fatal(err)
	}
	tr.Quiesce()
	cand, out = x.Lookup("order", nil)
	if out != Hit || cand.Service.ID != "order-1" {
		t.Fatalf("after republish lookup = %s/%v, want order-1", cand.Service.ID, out)
	}
}

func TestPublishInsertsMatchingService(t *testing.T) {
	tr, x, _, reg, _ := fixture(t, 3, Options{})
	x.BuildNow()
	before := len(x.Replacements("order"))
	// A brand-new OrderItem provider appears after selection: the
	// refresher inserts it at the tail.
	if err := reg.Publish(registry.Description{
		ID: "late-order", Concept: semantics.OrderItem, Offers: testOffers(30),
	}); err != nil {
		t.Fatal(err)
	}
	tr.Quiesce()
	reps := x.Replacements("order")
	if len(reps) != before+1 {
		t.Fatalf("replacements = %d, want %d", len(reps), before+1)
	}
	last := reps[len(reps)-1]
	if last.Service != "late-order" || !last.Inserted {
		t.Fatalf("tail = %+v, want inserted late-order", last)
	}
	// An unrelated publish changes nothing.
	if err := reg.Publish(registry.Description{
		ID: "printer", Concept: semantics.NotifyService, Offers: testOffers(10),
	}); err != nil {
		t.Fatal(err)
	}
	tr.Quiesce()
	if got := len(x.Replacements("order")); got != before+1 {
		t.Fatalf("after unrelated publish replacements = %d, want %d", got, before+1)
	}
}

func TestHealthCrossingDemotesWithoutRebuild(t *testing.T) {
	_, x, _, _, mon := fixture(t, 4, Options{})
	x.BuildNow()
	builtAt := x.Stats().LastRefresh
	// order-1 starts failing: the success-rate crossing flips the bit
	// synchronously — no Quiesce needed.
	for i := 0; i < 5; i++ {
		if err := mon.Report(monitor.Observation{
			Service: "order-1", Vector: qos.StandardSet().NewVector(), Success: false,
		}); err != nil {
			t.Fatal(err)
		}
	}
	cand, out := x.Lookup("order", nil)
	if out != Hit || cand.Service.ID != "order-2" {
		t.Fatalf("after demotion lookup = %s/%v, want order-2", cand.Service.ID, out)
	}
	if got := x.Stats().LastRefresh; !got.Equal(builtAt) {
		t.Error("health crossing should not trigger a rebuild")
	}
	// Recovery promotes it back.
	for i := 0; i < 15; i++ {
		mon.Report(monitor.Observation{
			Service: "order-1", Vector: qos.StandardSet().NewVector(), Success: true,
		})
	}
	cand, out = x.Lookup("order", nil)
	if out != Hit || cand.Service.ID != "order-1" {
		t.Fatalf("after promotion lookup = %s/%v, want order-1", cand.Service.ID, out)
	}
}

func TestCommitRotatesInLockstep(t *testing.T) {
	_, x, src, _, _ := fixture(t, 4, Options{})
	x.BuildNow()
	// Fail over order-0 → order-1, exactly as adapt commits it.
	chosen, out := x.Lookup("order", map[registry.ServiceID]bool{"order-0": true})
	if out != Hit {
		t.Fatalf("outcome = %v", out)
	}
	old := src.commit("order", chosen)
	x.Commit("order", chosen.Service.ID, old)
	want := []registry.ServiceID{"order-2", "order-3", "order-0"}
	got := ids(x.Replacements("order"))
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("rotation = %v, want %v", got, want)
	}
	// Next failover excludes the new binding and picks the next in line.
	cand, out := x.Lookup("order", map[registry.ServiceID]bool{"order-1": true})
	if out != Hit || cand.Service.ID != "order-2" {
		t.Fatalf("second failover = %s/%v, want order-2", cand.Service.ID, out)
	}
	// The displaced binding is eligible again after rotation (a
	// retryable failure does not exclude it permanently).
	cand, out = x.Lookup("order", map[registry.ServiceID]bool{"order-1": true, "order-2": true, "order-3": true})
	if out != Hit || cand.Service.ID != "order-0" {
		t.Fatalf("rotated-out binding = %s/%v, want order-0", cand.Service.ID, out)
	}
}

func TestEvictionDrainsAndExecuteRevives(t *testing.T) {
	tr, x, src, _, _ := fixture(t, 3, Options{MaxTracked: 1})
	x.BuildNow()
	// Tracking a second composition evicts the first (capacity 1).
	other := &fakeSource{
		acts:   src.acts,
		assign: map[string]registry.Candidate{"order": src.assign["order"]},
		alts:   map[string][]registry.Candidate{"order": src.alts["order"]},
		ps:     src.ps,
	}
	y := tr.Track(other)
	if x.State() != StateDrained {
		t.Fatalf("evicted index state = %v, want drained", x.State())
	}
	if _, out := x.Lookup("order", nil); out != Drained {
		t.Fatalf("drained lookup outcome = %v, want Drained", out)
	}
	// Execute-time warmup revives the drained index (and in turn evicts
	// the other one).
	x.BuildNow()
	if x.State() != StateBuilt {
		t.Fatalf("revived state = %v, want built", x.State())
	}
	if _, out := x.Lookup("order", nil); out != Hit {
		t.Fatalf("revived lookup outcome = %v, want Hit", out)
	}
	if y.State() != StateDrained {
		t.Fatalf("other index state = %v, want drained after revival eviction", y.State())
	}
}

func TestStagedBehaviours(t *testing.T) {
	_, x, _, _, _ := fixture(t, 3, Options{})
	key := "b1|"
	staged := &StagedBehaviours{Key: key, Matches: []StagedMatch{{MatchSteps: 7}}}
	var stagings int
	x.SetStager(func() string { return key }, func() *StagedBehaviours {
		stagings++
		return staged
	})
	x.BuildNow()
	if got := x.Staged(key); got == nil || got.Matches[0].MatchSteps != 7 {
		t.Fatalf("staged = %+v, want the staged plan", got)
	}
	if x.Staged("b2|order") != nil {
		t.Error("a moved frontier must not serve stale staged plans")
	}
	if stagings != 1 {
		t.Errorf("stagings = %d, want 1", stagings)
	}
}

func TestRebuildDiscardsStaleSnapshot(t *testing.T) {
	_, x, src, _, _ := fixture(t, 4, Options{})
	x.BuildNow()
	// Simulate a commit racing a rebuild: bump the version after the
	// snapshot is taken by rebuilding from a stale copy.
	snap := src.SelectionSnapshot()
	src.mu.Lock()
	src.version++
	src.mu.Unlock()
	stale := &fakeSource{acts: snap.Activities, assign: snap.Assignment, alts: snap.Alternates, ps: snap.Properties}
	_ = stale // the version check lives in rebuild; exercise it directly:
	if x.rebuild(nil, nil, x.t.opts) {
		// rebuild re-snapshots, so with a self-consistent source it
		// succeeds; force the race instead via a version-bumping source.
		t.Log("self-consistent rebuild succeeded (expected)")
	}
	if !x.dirty.Load() {
		// The successful rebuild cleared dirty; now force a mid-build bump.
		bump := &bumpingSource{fakeSource: src}
		x.src = bump
		if x.rebuild(nil, nil, x.t.opts) {
			t.Fatal("rebuild with a mid-build version bump must be discarded")
		}
		if !x.dirty.Load() {
			t.Fatal("discarded rebuild must leave the index dirty")
		}
		x.src = src
	}
}

// bumpingSource bumps its version on every snapshot, so every rebuild
// observes a racing commit.
type bumpingSource struct {
	*fakeSource
}

func (b *bumpingSource) SelectionSnapshot() Snapshot {
	s := b.fakeSource.SelectionSnapshot()
	b.fakeSource.mu.Lock()
	b.fakeSource.version++
	b.fakeSource.mu.Unlock()
	return s
}

func TestLookupAllocsAndLockFreedom(t *testing.T) {
	_, x, _, _, _ := fixture(t, 16, Options{})
	x.BuildNow()
	exclude := map[registry.ServiceID]bool{"order-1": true, "order-2": true}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, out := x.Lookup("order", exclude); out != Hit {
			t.Fatal("lookup must hit")
		}
	})
	if allocs != 0 {
		t.Errorf("Lookup allocs = %g, want 0", allocs)
	}
}

func TestChurnWhileLookupsRace(t *testing.T) {
	tr, x, src, reg, mon := fixture(t, 8, Options{RefreshInterval: 5 * time.Millisecond})
	x.BuildNow()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // churn publisher/withdrawer
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := registry.ServiceID(fmt.Sprintf("order-%d", 1+i%7))
			if i%2 == 0 {
				reg.Withdraw(id)
			} else {
				reg.Publish(registry.Description{ID: id, Concept: semantics.OrderItem, Offers: testOffers(50)})
			}
		}
	}()
	go func() { // monitor storm
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mon.Report(monitor.Observation{
				Service: registry.ServiceID(fmt.Sprintf("order-%d", i%8)),
				Vector:  src.ps.NewVector(),
				Success: i%3 != 0,
			})
		}
	}()
	go func() { // failover commits
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			src.mu.Lock()
			bound := src.assign["order"].Service.ID
			src.mu.Unlock()
			cand, out := x.Lookup("order", map[registry.ServiceID]bool{bound: true})
			if out == Hit {
				old := src.commit("order", cand)
				x.Commit("order", cand.Service.ID, old)
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	tr.Quiesce()
	// After the dust settles the index mirrors the source's rotation
	// order exactly.
	snap := src.SelectionSnapshot()
	want := make([]registry.ServiceID, 0, len(snap.Alternates["order"]))
	for _, c := range snap.Alternates["order"] {
		want = append(want, c.Service.ID)
	}
	got := ids(x.Replacements("order"))
	// Inserted tail entries (republished services) may extend the list;
	// the selection-order prefix must match.
	if len(got) < len(want) {
		t.Fatalf("index has %d entries, source has %d alternates", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation order diverged at %d: index %v, source %v", i, got, want)
		}
	}
}
