// Package subidx implements the per-composition substitution index that
// takes QoS-driven adaptation off the failure hot path: for every bound
// service of a running composition it maintains a ranked, health-filtered
// replacement list (semantically equivalent candidates with precomputed
// utility/QoS deltas), published as an atomically swapped immutable
// snapshot so failover becomes a single lock-free lookup with zero
// registry or monitor calls at failure time.
//
// Freshness is incremental rather than transactional. A Tracker owns one
// registry watch subscription and one monitor health subscription per
// middleware instance and fans both out to every tracked index:
//
//   - a withdraw event clears the candidate's live bit immediately and
//     marks the index dirty (the next refresh prunes and re-ranks);
//   - a publish event restores the live bit of a known candidate, and
//     marks the index dirty when the new service matches one of the
//     composition's bound capabilities (the refresh inserts it);
//   - a success-rate crossing of MinSuccessRate flips the healthy bit
//     without any rebuild (the monitor invokes the tracker synchronously,
//     so health demotions are visible to the very next failover).
//
// The index mirrors the runtime's alternate rotation: the published
// per-activity list is, at all times, the same sequence the reactive scan
// would walk (selection-time order, rotated on every substitution commit,
// extended at the tail by registry candidates that appeared after
// selection). A failover that hits the index therefore picks exactly the
// service the reactive scan would have picked given the same registry and
// monitor state — the property the differential test in the adapt package
// asserts. When the index is cold (not built yet), drained (evicted by
// the tracker's capacity bound) or exhausted, the caller falls back to
// the reactive scan, so the index is a pure accelerator: it can be
// dropped at any moment without affecting recovery semantics.
package subidx

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qasom/internal/monitor"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

// State is the lifecycle state of an index.
type State int32

// Index lifecycle states.
const (
	// StateCold marks a registered index whose first build has not run
	// yet; lookups miss and failover uses the reactive scan.
	StateCold State = iota
	// StateBuilt marks a live index serving lock-free lookups.
	StateBuilt
	// StateDrained marks an index evicted by the tracker's capacity
	// bound; it stays drained (and failover stays reactive) until the
	// composition executes again and re-tracks itself.
	StateDrained
)

// Outcome classifies one Lookup.
type Outcome int

// Lookup outcomes.
const (
	// Hit: a live, healthy, non-excluded replacement was found.
	Hit Outcome = iota
	// Exhausted: the index is built but no eligible replacement remains.
	Exhausted
	// Cold: the index has not been built yet.
	Cold
	// Drained: the index was evicted and holds no data.
	Drained
)

// String renders the outcome as the fallback-cause label of the adapt
// package's failover counters.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Exhausted:
		return "exhausted"
	case Cold:
		return "cold"
	case Drained:
		return "drained"
	default:
		return "unknown"
	}
}

// Snapshot is the selection state an index is built from, captured
// atomically under the runtime's lock by the Source. Maps and slices must
// be fresh copies (candidate structs may share immutable backing arrays
// with the runtime: descriptions and vectors are never mutated in place).
type Snapshot struct {
	// Version is the runtime's mutation counter at capture time; a
	// rebuild whose snapshot went stale (a substitution or behaviour
	// switch committed in between) is discarded rather than installed.
	Version uint64
	// Activities are the current behaviour's activities.
	Activities []*task.Activity
	// Assignment maps scheduled activities to their bound candidate.
	Assignment map[string]registry.Candidate
	// Alternates holds the ranked substitution lists, in the runtime's
	// current rotation order.
	Alternates map[string][]registry.Candidate
	// Weights and Properties steer replacement scoring.
	Weights    qos.Weights
	Properties *qos.PropertySet
	// Mask, when set, filters replacement candidates by inter-service
	// dependency admissibility against the snapshot's assignment, so the
	// index never publishes a replacement that would violate a dependency
	// rule under the selection it was built from.
	Mask DependencyMask
}

// DependencyMask is the narrow dependency-admissibility view the index
// consults at rebuild time. core.DependencySet satisfies it; declaring
// the interface here keeps subidx free of a core import.
type DependencyMask interface {
	// Touches reports whether any rule constrains the activity.
	Touches(activityID string) bool
	// Admissible reports whether binding cand to the activity keeps every
	// rule satisfied, with the other endpoints read through bound.
	Admissible(activityID string, cand registry.Candidate, bound func(string) (registry.Candidate, bool)) bool
}

// Source exposes the selection state of a running composition to the
// index. Implemented by adapt.Runtime.
type Source interface {
	// SelectionSnapshot captures the current selection state.
	SelectionSnapshot() Snapshot
	// SelectionVersion returns the mutation counter without locking the
	// runtime (it must be safe to call while the index lock is held).
	SelectionVersion() uint64
}

// StagedMatch is one pre-computed behavioural alternate: the alternative
// behaviour, the portion of it that still needs to run, and the
// homeomorphism search cost already spent on it.
type StagedMatch struct {
	Alternative *task.Task
	NewTask     *task.Task
	MatchSteps  int
}

// StagedBehaviours is the pre-staged outcome of the behavioural-adaptation
// match search for one progress frontier: consulting it at failure time
// replaces the subgraph-homeomorphism search (re-selection still runs
// fresh, residual constraints depend on the QoS consumed so far).
type StagedBehaviours struct {
	// Key identifies the progress frontier (behaviour plus completed
	// set) the matches were computed for; a consumer must ignore staged
	// results whose key no longer matches.
	Key string
	// Matches lists the alternatives that host the remaining work, in
	// repository order.
	Matches []StagedMatch
}

// Replacement is the observable view of one index entry, for tests,
// debugging and the fast-failover walkthrough.
type Replacement struct {
	// Service identifies the candidate.
	Service registry.ServiceID
	// Score is the candidate's normalized weighted utility over the
	// activity's replacement pool at the last refresh.
	Score float64
	// DeltaUtility is Score minus the bound service's score: the utility
	// cost (negative) or gain (positive) of failing over to this entry.
	DeltaUtility float64
	// DeltaQoS is the candidate's advertised vector minus the bound
	// service's, per property.
	DeltaQoS qos.Vector
	// Live and Healthy are the current event-maintained eligibility bits.
	Live, Healthy bool
	// Inserted marks entries that joined via registry refresh (published
	// after selection) rather than from the selection-time alternate set.
	Inserted bool
}

// entry is one replacement candidate. The candidate value and the
// precomputed deltas are immutable after construction; only the atomic
// eligibility bits change between rebuilds.
type entry struct {
	cand     registry.Candidate
	score    float64
	dUtil    float64
	dQoS     qos.Vector
	inserted bool
	live     atomic.Bool
	healthy  atomic.Bool
}

// actList is the per-activity replacement list. The published slice is
// immutable (commits and rebuilds swap the pointer); bound is the entry
// currently holding the binding, kept out of the published list exactly
// like the runtime keeps the bound service out of its alternates.
type actList struct {
	entries atomic.Pointer[[]*entry]
	bound   *entry // guarded by Index.mu
}

// Index is the substitution index of one composition. Lookup is
// lock-free and allocation-free; all mutation happens on the tracker
// goroutine or under the owning runtime's commit path.
type Index struct {
	t   *Tracker
	src Source

	state   atomic.Int32
	dirty   atomic.Bool
	built   atomic.Int64 // UnixNano of the last successful rebuild
	entries atomic.Int64 // total published entries, for the size gauge

	// lists is the atomically swapped activity → replacement-list map;
	// the map itself is immutable once published (actList pointers are
	// stable across commits, which swap only the inner slice pointer).
	lists atomic.Pointer[map[string]*actList]

	mu        sync.RWMutex
	byService map[registry.ServiceID][]*entry
	concepts  map[semantics.ConceptID]bool

	// stageKey/stage pre-compute behavioural alternates; set once at
	// wiring time, before the first build.
	stageKey func() string
	stage    func() *StagedBehaviours
	staged   atomic.Pointer[StagedBehaviours]
}

// State returns the index lifecycle state.
func (x *Index) State() State { return State(x.state.Load()) }

// Lookup returns the best live, healthy, non-excluded replacement for an
// activity. It performs no allocation and takes no lock: the list head is
// an atomic pointer and eligibility is two atomic bit loads per entry, so
// a hit costs zero registry or monitor calls — the whole point of the
// index. Cold/Drained outcomes tell the caller to run the reactive scan;
// Exhausted means the (fresh) index knows of no eligible replacement.
func (x *Index) Lookup(activityID string, exclude map[registry.ServiceID]bool) (registry.Candidate, Outcome) {
	switch State(x.state.Load()) {
	case StateCold:
		return registry.Candidate{}, Cold
	case StateDrained:
		return registry.Candidate{}, Drained
	}
	lists := x.lists.Load()
	if lists == nil {
		return registry.Candidate{}, Cold
	}
	l := (*lists)[activityID]
	if l == nil {
		return registry.Candidate{}, Exhausted
	}
	for _, e := range *l.entries.Load() {
		if !e.live.Load() || !e.healthy.Load() {
			continue
		}
		if exclude[e.cand.Service.ID] {
			continue
		}
		return e.cand, Hit
	}
	return registry.Candidate{}, Exhausted
}

// Commit mirrors a substitution commit into the index, in lockstep with
// the runtime's alternate rotation: the chosen entry leaves the published
// list, the displaced binding rejoins it at the tail, and the chosen
// entry becomes the new bound marker. The caller holds the runtime lock;
// Commit nests only the index lock under it (never the reverse). A
// commit the index cannot mirror exactly (entry missing after an eviction
// race) marks the index dirty so the next refresh rebuilds from the
// runtime, which is authoritative.
func (x *Index) Commit(activityID string, chosen registry.ServiceID, old registry.Candidate) {
	if State(x.state.Load()) != StateBuilt {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	lists := x.lists.Load()
	if lists == nil {
		return
	}
	l := (*lists)[activityID]
	if l == nil {
		x.dirty.Store(true)
		return
	}
	cur := *l.entries.Load()
	pos := -1
	for i, e := range cur {
		if e.cand.Service.ID == chosen {
			pos = i
			break
		}
	}
	if pos < 0 {
		x.dirty.Store(true)
		return
	}
	chosenE := cur[pos]
	next := make([]*entry, 0, len(cur))
	next = append(next, cur[:pos]...)
	next = append(next, cur[pos+1:]...)
	if old.Service.ID != "" {
		oldE := l.bound
		if oldE == nil || oldE.cand.Service.ID != old.Service.ID {
			// The runtime's view of the displaced binding diverged from
			// the bound marker (e.g. a reactive commit raced a rebuild):
			// re-create the entry pessimistically and schedule a refresh.
			oldE = &entry{cand: old, dQoS: x.zeroDelta()}
			oldE.live.Store(true)
			oldE.healthy.Store(true)
			x.byService[old.Service.ID] = append(x.byService[old.Service.ID], oldE)
			x.dirty.Store(true)
		}
		next = append(next, oldE)
	}
	l.bound = chosenE
	l.entries.Store(&next)
	x.entries.Add(int64(len(next) - len(cur)))
}

// zeroDelta returns a zero vector of the property arity (nil when the
// index has no built lists to infer it from).
func (x *Index) zeroDelta() qos.Vector {
	lists := x.lists.Load()
	if lists == nil {
		return nil
	}
	for _, l := range *lists {
		for _, e := range *l.entries.Load() {
			return make(qos.Vector, len(e.dQoS))
		}
	}
	return nil
}

// MarkDirty schedules a rebuild without dropping the published lists.
// Used when a substitution on a dependency-constrained activity shifted
// which replacements are admissible for its adjacent activities: the
// stale lists stay safe in the meantime (the adapt commit paths
// revalidate admissibility under the runtime lock), they are merely
// over- or under-filtered until the refresh lands.
func (x *Index) MarkDirty() {
	if State(x.state.Load()) != StateBuilt {
		return
	}
	x.dirty.Store(true)
	if x.t != nil {
		x.t.poke()
	}
}

// MarkCold drops the index back to the cold state (a behaviour switch
// invalidated every list wholesale) and asks the tracker to rebuild from
// the runtime's new selection.
func (x *Index) MarkCold() {
	if State(x.state.Load()) == StateDrained {
		return
	}
	x.state.Store(int32(StateCold))
	x.dirty.Store(true)
	if x.t != nil {
		x.t.poke()
	}
}

// BuildNow builds the index synchronously when it is cold, and re-tracks
// and rebuilds it when it was drained — the facade calls this at the top
// of Execute, so executions always start with a warm index even if the
// composition was composed a moment (or an eviction) ago. Already-built
// indexes return immediately.
func (x *Index) BuildNow() {
	if x.t == nil {
		return
	}
	x.t.buildNow(x)
}

// SetStager wires behavioural-alternate pre-staging: key identifies the
// current progress frontier cheaply, stage runs the homeomorphism search
// for it. Both run on the tracker goroutine. Must be set before the
// first build (the facade wires it right after tracking).
func (x *Index) SetStager(key func() string, stage func() *StagedBehaviours) {
	x.mu.Lock()
	x.stageKey = key
	x.stage = stage
	x.mu.Unlock()
}

// Staged returns the pre-staged behavioural alternates when they match
// the given progress-frontier key; nil otherwise (the caller runs the
// full search).
func (x *Index) Staged(key string) *StagedBehaviours {
	s := x.staged.Load()
	if s == nil || s.Key != key {
		return nil
	}
	return s
}

// Replacements returns the observable replacement list of an activity
// (current rotation order, eligibility bits as of now). Debug/test API;
// allocates freely.
func (x *Index) Replacements(activityID string) []Replacement {
	lists := x.lists.Load()
	if lists == nil {
		return nil
	}
	l := (*lists)[activityID]
	if l == nil {
		return nil
	}
	cur := *l.entries.Load()
	out := make([]Replacement, 0, len(cur))
	for _, e := range cur {
		out = append(out, Replacement{
			Service:      e.cand.Service.ID,
			Score:        e.score,
			DeltaUtility: e.dUtil,
			DeltaQoS:     e.dQoS.Clone(),
			Live:         e.live.Load(),
			Healthy:      e.healthy.Load(),
			Inserted:     e.inserted,
		})
	}
	return out
}

// Stats is an observable summary of one index.
type Stats struct {
	// State is the lifecycle state.
	State State
	// Entries counts published replacement entries across activities.
	Entries int
	// LastRefresh is the time of the last successful rebuild (zero when
	// never built).
	LastRefresh time.Time
	// Staged reports whether behavioural alternates are pre-staged.
	Staged bool
}

// Stats returns the index summary.
func (x *Index) Stats() Stats {
	s := Stats{
		State:   State(x.state.Load()),
		Entries: int(x.entries.Load()),
		Staged:  x.staged.Load() != nil,
	}
	if ns := x.built.Load(); ns != 0 {
		s.LastRefresh = time.Unix(0, ns)
	}
	return s
}

// drain evicts the index: all data is released and lookups report
// Drained until an execution re-tracks it.
func (x *Index) drain() {
	x.state.Store(int32(StateDrained))
	x.lists.Store(nil)
	x.entries.Store(0)
	x.staged.Store(nil)
	x.mu.Lock()
	x.byService = nil
	x.concepts = nil
	x.mu.Unlock()
}

// applyEvent folds one registry change into the eligibility bits:
// withdrawals kill the live bit synchronously with event delivery,
// publishes restore it, and anything touching the index (including a
// fresh service matching a bound capability) marks it dirty for the next
// re-rank. Runs on the tracker goroutine.
func (x *Index) applyEvent(ev registry.Event, onto *semantics.Ontology) {
	if State(x.state.Load()) != StateBuilt {
		return // cold indexes build from registry truth anyway
	}
	x.mu.RLock()
	entries := x.byService[ev.Service.ID]
	fresh := false
	if len(entries) == 0 && ev.Kind == registry.EventPublished {
		for required := range x.concepts {
			if capabilityMatches(onto, required, ev.Service.Concept) {
				fresh = true
				break
			}
		}
	}
	x.mu.RUnlock()
	switch ev.Kind {
	case registry.EventWithdrawn:
		// The live-bit flip IS the drop: lookups skip the entry from
		// this point on, and relative order among the survivors is
		// unchanged, so no re-rank is owed. The periodic stale resync
		// prunes the carcass and tops the list back up eventually.
		for _, e := range entries {
			e.live.Store(false)
		}
	case registry.EventPublished:
		changed := false
		for _, e := range entries {
			e.live.Store(true)
			if !offersEqual(e.cand.Service.Offers, ev.Service.Offers) {
				changed = true
			}
		}
		if fresh || changed {
			// A fresh match must be inserted, a republish with new QoS
			// re-ranked; a same-offers republish (the common flap) is
			// fully absorbed by the live bit.
			x.dirty.Store(true)
		}
	}
}

// offersEqual reports whether two QoS offer lists advertise the same
// values, order-insensitively (registries may reorder on republish).
func offersEqual(a, b []registry.QoSOffer) bool {
	if len(a) != len(b) {
		return false
	}
	for _, oa := range a {
		found := false
		for _, ob := range b {
			if oa.Property == ob.Property && oa.Value == ob.Value {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// setHealth flips the healthy bit of every entry of a service. Invoked
// synchronously from the monitor's Report path on a success-rate
// crossing, so a demotion is visible to the very next failover without
// any rebuild.
func (x *Index) setHealth(id registry.ServiceID, healthy bool) {
	x.mu.RLock()
	entries := x.byService[id]
	x.mu.RUnlock()
	for _, e := range entries {
		e.healthy.Store(healthy)
	}
}

// capabilityMatches mirrors the registry's candidate filter: exact or
// plugin-level ontology matches qualify, subsume-level do not.
func capabilityMatches(onto *semantics.Ontology, required, offered semantics.ConceptID) bool {
	if onto == nil {
		return required == offered
	}
	level := onto.Match(required, offered)
	return level == semantics.MatchExact || level == semantics.MatchPlugin
}

// rebuild (re)builds the index from the runtime snapshot plus registry
// and monitor truth. The runtime's rotation order is authoritative for
// ranking (it is what the reactive scan walks); registry candidates that
// appeared after selection are appended at the tail, best score first.
// Runs off the failure path: on the tracker goroutine or a BuildNow
// caller. An installed snapshot whose runtime version moved mid-build is
// discarded and the index stays dirty.
func (x *Index) rebuild(reg *registry.Registry, mon *monitor.Monitor, opts Options) bool {
	if State(x.state.Load()) == StateDrained {
		return false
	}
	snap := x.src.SelectionSnapshot()
	lists := make(map[string]*actList, len(snap.Activities))
	byService := make(map[registry.ServiceID][]*entry)
	concepts := make(map[semantics.ConceptID]bool, len(snap.Activities))
	total := 0
	for _, act := range snap.Activities {
		bound, ok := snap.Assignment[act.ID]
		if !ok {
			continue // matched to already-completed work, nothing bound
		}
		concepts[act.Concept] = true
		alts := snap.Alternates[act.ID]
		var admissible func(registry.Candidate) bool
		if snap.Mask != nil && snap.Mask.Touches(act.ID) {
			boundFn := func(id string) (registry.Candidate, bool) {
				c, ok := snap.Assignment[id]
				return c, ok
			}
			admissible = func(c registry.Candidate) bool {
				return snap.Mask.Admissible(act.ID, c, boundFn)
			}
		}
		present := make(map[registry.ServiceID]bool, len(alts)+1)
		present[bound.Service.ID] = true
		for _, a := range alts {
			present[a.Service.ID] = true
		}
		var extras []registry.Candidate
		if reg != nil {
			for _, c := range reg.CandidatesForActivity(act, snap.Properties) {
				if !present[c.Service.ID] {
					extras = append(extras, c)
				}
			}
		}
		scores := scorePool(snap.Properties, snap.Weights, bound, alts, extras)
		boundScore := scores[bound.Service.ID]
		mk := func(c registry.Candidate, inserted bool) *entry {
			e := &entry{
				cand:     c,
				score:    scores[c.Service.ID],
				dUtil:    scores[c.Service.ID] - boundScore,
				dQoS:     deltaQoS(c.Vector, bound.Vector),
				inserted: inserted,
			}
			live := true
			if reg != nil {
				_, live = reg.Get(c.Service.ID)
			}
			e.live.Store(live)
			healthy := true
			if mon != nil {
				healthy = mon.SuccessRate(c.Service.ID) >= opts.MinSuccessRate
			}
			e.healthy.Store(healthy)
			byService[c.Service.ID] = append(byService[c.Service.ID], e)
			return e
		}
		list := make([]*entry, 0, len(alts)+len(extras))
		for _, a := range alts {
			if admissible != nil && !admissible(a) {
				continue
			}
			list = append(list, mk(a, false))
		}
		sort.SliceStable(extras, func(i, j int) bool {
			si, sj := scores[extras[i].Service.ID], scores[extras[j].Service.ID]
			if si != sj {
				return si > sj
			}
			return extras[i].Service.ID < extras[j].Service.ID
		})
		for _, c := range extras {
			if len(list) >= opts.MaxReplacements {
				break
			}
			if admissible != nil && !admissible(c) {
				continue
			}
			list = append(list, mk(c, true))
		}
		l := &actList{bound: mk(bound, false)}
		l.entries.Store(&list)
		lists[act.ID] = l
		total += len(list)
	}

	x.mu.Lock()
	if x.src.SelectionVersion() != snap.Version {
		// A substitution or behaviour switch committed while we built:
		// installing this snapshot would desync the rotation order. Stay
		// dirty; the next refresh retries.
		x.dirty.Store(true)
		x.mu.Unlock()
		return false
	}
	x.byService = byService
	x.concepts = concepts
	x.lists.Store(&lists)
	x.entries.Store(int64(total))
	x.mu.Unlock()
	x.dirty.Store(false)
	x.state.Store(int32(StateBuilt))
	x.built.Store(time.Now().UnixNano())
	x.restage()
	return true
}

// restage refreshes the pre-staged behavioural alternates when the
// progress frontier moved. Runs on the tracker goroutine.
func (x *Index) restage() bool {
	x.mu.RLock()
	key, stage := x.stageKey, x.stage
	x.mu.RUnlock()
	if key == nil || stage == nil {
		return false
	}
	cur := key()
	if s := x.staged.Load(); s != nil && s.Key == cur {
		return false
	}
	x.staged.Store(stage())
	return true
}

// deltaQoS returns cand − bound per property (nil-safe).
func deltaQoS(cand, bound qos.Vector) qos.Vector {
	if cand == nil || bound == nil || len(cand) != len(bound) {
		return nil
	}
	d := make(qos.Vector, len(cand))
	for j := range cand {
		d[j] = cand[j] - bound[j]
	}
	return d
}

// scorePool computes the normalized weighted utility of every candidate
// of one activity's replacement pool (bound + alternates + extras):
// per-property min-max normalization over the pool, direction-adjusted,
// weight-averaged — the same shape as QASSA's candidate utility, scoped
// to the pool so deltas are comparable within an activity.
func scorePool(ps *qos.PropertySet, w qos.Weights, bound registry.Candidate,
	alts, extras []registry.Candidate) map[registry.ServiceID]float64 {
	pool := make([]registry.Candidate, 0, 1+len(alts)+len(extras))
	pool = append(pool, bound)
	pool = append(pool, alts...)
	pool = append(pool, extras...)
	n := 0
	if ps != nil {
		n = ps.Len()
	}
	out := make(map[registry.ServiceID]float64, len(pool))
	if n == 0 {
		for _, c := range pool {
			out[c.Service.ID] = 0
		}
		return out
	}
	min := make([]float64, n)
	max := make([]float64, n)
	for j := 0; j < n; j++ {
		first := true
		for _, c := range pool {
			if len(c.Vector) != n {
				continue
			}
			v := c.Vector[j]
			if first || v < min[j] {
				min[j] = v
			}
			if first || v > max[j] {
				max[j] = v
			}
			first = false
		}
	}
	var wsum float64
	weight := func(j int) float64 {
		if len(w) != n {
			return 1
		}
		return w[j]
	}
	for j := 0; j < n; j++ {
		wsum += weight(j)
	}
	if wsum == 0 {
		wsum = 1
	}
	for _, c := range pool {
		if len(c.Vector) != n {
			out[c.Service.ID] = 0
			continue
		}
		var s float64
		for j := 0; j < n; j++ {
			span := max[j] - min[j]
			u := 1.0 // a property the pool does not differentiate on is neutral
			if span > 0 {
				u = (c.Vector[j] - min[j]) / span
				if ps.At(j).Direction == qos.Minimized {
					u = 1 - u
				}
			}
			s += weight(j) * u
		}
		out[c.Service.ID] = s / wsum
	}
	return out
}
