package subidx

import (
	"sync"
	"time"

	"qasom/internal/monitor"
	"qasom/internal/obs"
	"qasom/internal/registry"
	"qasom/internal/semantics"
)

// Options tune a Tracker.
type Options struct {
	// MinSuccessRate is the health threshold entries are filtered by;
	// it must equal the adaptation manager's MinSuccessRate so an index
	// hit and the reactive scan agree. 0 means 0.5.
	MinSuccessRate float64
	// RefreshInterval paces the background refresher: dirty indexes are
	// re-ranked and one stale index is resynced per tick. 0 means 250ms.
	RefreshInterval time.Duration
	// BuildDelay debounces initial builds: a composition must survive
	// this long before the background builder invests in it (an Execute
	// builds immediately regardless), so compose-heavy serving loops do
	// not pay for indexes of compositions they throw away. 0 means 50ms.
	BuildDelay time.Duration
	// MaxTracked bounds the number of tracked compositions; beyond it
	// the oldest index is drained. 0 means 64.
	MaxTracked int
	// MaxReplacements caps one activity's replacement list. 0 means 64.
	MaxReplacements int
	// WatchBuffer sizes the registry event subscription. 0 means 256.
	WatchBuffer int
	// Metrics, when set, exports the tracker's gauges and counters.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MinSuccessRate <= 0 {
		o.MinSuccessRate = 0.5
	}
	if o.RefreshInterval <= 0 {
		o.RefreshInterval = 250 * time.Millisecond
	}
	if o.BuildDelay <= 0 {
		o.BuildDelay = 50 * time.Millisecond
	}
	if o.MaxTracked <= 0 {
		o.MaxTracked = 64
	}
	if o.MaxReplacements <= 0 {
		o.MaxReplacements = 64
	}
	if o.WatchBuffer <= 0 {
		o.WatchBuffer = 256
	}
	return o
}

// staleResyncAge is how old a built index may grow before the rolling
// resync rebuilds it even without a dirty mark — the safety net against
// dropped watch events (the registry's delivery is best-effort).
const staleResyncAge = 10

// trackerMetrics bundles the tracker's handles; zero value is no-op.
type trackerMetrics struct {
	builds    *obs.Counter
	refreshes *obs.Counter
	evictions *obs.Counter
	stagings  *obs.Counter
	events    *obs.CounterVec
}

// Tracker owns the substitution indexes of one middleware instance: a
// single registry watch subscription, a single monitor health
// subscription and a single background goroutine serve every tracked
// composition, so per-composition cost is one small registration. The
// goroutine debounces initial builds, folds watch events into eligibility
// bits, and periodically re-ranks dirty indexes and re-stages behavioural
// alternates. Safe for concurrent use.
type Tracker struct {
	reg  *registry.Registry
	mon  *monitor.Monitor
	opts Options
	met  trackerMetrics

	mu     sync.Mutex
	order  []*Index // tracked indexes, least recently (re)tracked first
	closed bool

	// pending is the registry watch channel, subscribed lazily on the
	// first Track (a middleware that only composes never executes, so it
	// tracks nothing — and must not make every Publish/Withdraw pay a
	// per-watcher event copy for an empty index set). The loop adopts it
	// on its next wake/tick/quiesce; rebuilds read registry truth
	// directly, so nothing is missed in between.
	pending      <-chan registry.Event
	cancelWatch  func()
	cancelHealth func()
	wake         chan struct{}
	syncc        chan chan struct{}
	done         chan struct{}
	closeOnce    sync.Once
	loopWG       sync.WaitGroup
}

// NewTracker subscribes to the registry and monitor and starts the
// maintenance goroutine. Close releases both subscriptions and stops the
// goroutine.
func NewTracker(reg *registry.Registry, mon *monitor.Monitor, opts Options) *Tracker {
	t := &Tracker{
		reg:   reg,
		mon:   mon,
		opts:  opts.withDefaults(),
		wake:  make(chan struct{}, 1),
		syncc: make(chan chan struct{}),
		done:  make(chan struct{}),
	}
	if r := t.opts.Metrics; r != nil {
		t.met = trackerMetrics{
			builds: r.Counter("qasom_subidx_builds_total",
				"Substitution-index builds (first build of a tracked composition)."),
			refreshes: r.Counter("qasom_subidx_refreshes_total",
				"Substitution-index incremental refreshes (re-rank after churn, rolling resync, restage)."),
			evictions: r.Counter("qasom_subidx_evictions_total",
				"Substitution indexes drained by the tracked-composition capacity bound."),
			stagings: r.Counter("qasom_subidx_stagings_total",
				"Behavioural-alternate stagings computed by the background refresher."),
			events: r.CounterVec("qasom_subidx_events_total",
				"Registry/monitor change events folded into substitution indexes, by kind.",
				"kind"),
		}
		r.Func("qasom_subidx_tracked",
			"Compositions currently tracked by the substitution-index tracker.",
			func() float64 { return float64(t.Tracked()) })
		r.Func("qasom_subidx_entries",
			"Replacement entries published across all built substitution indexes.",
			func() float64 {
				var n int64
				for _, x := range t.snapshot() {
					if x.State() == StateBuilt {
						n += x.entries.Load()
					}
				}
				return float64(n)
			})
		r.Func("qasom_subidx_staleness_seconds",
			"Age of the least recently refreshed built substitution index.",
			func() float64 {
				var oldest int64
				for _, x := range t.snapshot() {
					if x.State() != StateBuilt {
						continue
					}
					if ns := x.built.Load(); ns != 0 && (oldest == 0 || ns < oldest) {
						oldest = ns
					}
				}
				if oldest == 0 {
					return 0
				}
				return time.Since(time.Unix(0, oldest)).Seconds()
			})
	}
	if mon != nil {
		t.cancelHealth = mon.SubscribeHealth(t.opts.MinSuccessRate, t.onHealth)
	}
	t.loopWG.Add(1)
	go t.loop()
	return t
}

// Track registers a composition at selection-commit time. The call is
// cheap (one small allocation and a list append); the actual build runs
// on the tracker goroutine after BuildDelay, or synchronously at the
// composition's first Execute via Index.BuildNow. Beyond MaxTracked the
// oldest index is drained — its composition falls back to reactive
// failover until it executes again.
func (t *Tracker) Track(src Source) *Index {
	x := &Index{t: t, src: src}
	t.track(x)
	return x
}

func (t *Tracker) track(x *Index) {
	var evicted *Index
	t.mu.Lock()
	t.order = append(t.order, x)
	if t.pending == nil && t.cancelWatch == nil && t.reg != nil && !t.closed {
		t.pending, t.cancelWatch = t.reg.Watch(t.opts.WatchBuffer)
	}
	if len(t.order) > t.opts.MaxTracked {
		evicted = t.order[0]
		t.order = t.order[1:]
	}
	t.mu.Unlock()
	if evicted != nil {
		evicted.drain()
		t.met.evictions.Inc()
	}
	t.poke()
}

// Tracked returns the number of tracked compositions.
func (t *Tracker) Tracked() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}

// Quiesce drains pending watch events and brings every tracked index in
// sync with the current registry/monitor state, synchronously. Test and
// experiment hook: after Quiesce returns, an index hit is
// decision-identical to the reactive scan. No-op after Close.
func (t *Tracker) Quiesce() {
	ack := make(chan struct{})
	select {
	case t.syncc <- ack:
		<-ack
	case <-t.done:
	}
}

// Close cancels the registry and monitor subscriptions and stops the
// maintenance goroutine. Tracked indexes stay usable but freeze in their
// current state.
func (t *Tracker) Close() {
	t.closeOnce.Do(func() {
		if t.cancelHealth != nil {
			t.cancelHealth()
		}
		t.mu.Lock()
		t.closed = true
		cancel := t.cancelWatch
		t.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		close(t.done)
		t.loopWG.Wait()
	})
}

// poke nudges the maintenance goroutine (non-blocking).
func (t *Tracker) poke() {
	select {
	case t.wake <- struct{}{}:
	default:
	}
}

// snapshot copies the tracked list.
func (t *Tracker) snapshot() []*Index {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Index(nil), t.order...)
}

// buildNow serves Index.BuildNow: build a cold index synchronously and
// revive a drained one (re-track + build) — the top-of-Execute warmup.
func (t *Tracker) buildNow(x *Index) {
	switch x.State() {
	case StateBuilt:
		return
	case StateDrained:
		x.state.Store(int32(StateCold))
		t.track(x)
	}
	if x.rebuild(t.reg, t.mon, t.opts) {
		t.met.builds.Inc()
	}
}

// onHealth fans a monitor success-rate crossing out to every tracked
// index. Runs synchronously on the reporting goroutine (outside the
// monitor lock), so demotions beat the next failover.
func (t *Tracker) onHealth(id registry.ServiceID, healthy bool) {
	t.met.events.With("health").Inc()
	for _, x := range t.snapshot() {
		x.setHealth(id, healthy)
	}
}

// applyEvent fans one registry event out to every tracked index.
func (t *Tracker) applyEvent(ev registry.Event) {
	switch ev.Kind {
	case registry.EventPublished:
		t.met.events.With("publish").Inc()
	case registry.EventWithdrawn:
		t.met.events.With("withdraw").Inc()
	}
	var onto *semantics.Ontology
	if t.reg != nil {
		onto = t.reg.Ontology()
	}
	for _, x := range t.snapshot() {
		x.applyEvent(ev, onto)
	}
}

// loop is the maintenance goroutine: it folds watch events into the
// indexes as they arrive, debounces initial builds, and on every refresh
// tick re-ranks dirty indexes, resyncs the stalest one (the safety net
// against dropped events) and re-stages behavioural alternates whose
// progress frontier moved.
func (t *Tracker) loop() {
	defer t.loopWG.Done()
	ticker := time.NewTicker(t.opts.RefreshInterval)
	defer ticker.Stop()
	var events <-chan registry.Event // adopted from t.pending after the first Track
	for {
		select {
		case <-t.done:
			return
		case ev, ok := <-events:
			if !ok {
				events = nil
				continue
			}
			t.applyEvent(ev)
		case <-t.wake:
			t.adoptEvents(&events)
			if !t.debounce(&events) {
				return
			}
			t.buildPending()
		case <-ticker.C:
			t.adoptEvents(&events)
			t.buildPending()
			t.refresh()
		case ack := <-t.syncc:
			t.adoptEvents(&events)
			t.drain(&events)
			t.buildPending()
			t.refreshAll()
			close(ack)
		}
	}
}

// adoptEvents hands the lazily-created watch subscription to the loop.
// Track pokes the loop right after subscribing, so adoption happens
// before the first build; events buffered in between are drained in
// order afterwards (idempotent against the build, which read registry
// truth directly).
func (t *Tracker) adoptEvents(events *<-chan registry.Event) {
	if *events != nil {
		return
	}
	t.mu.Lock()
	*events = t.pending
	t.mu.Unlock()
}

// debounce waits BuildDelay before the next build pass while still
// servicing events and sync requests; it returns false when the tracker
// closed mid-wait.
func (t *Tracker) debounce(events *<-chan registry.Event) bool {
	timer := time.NewTimer(t.opts.BuildDelay)
	defer timer.Stop()
	for {
		select {
		case <-t.done:
			return false
		case <-timer.C:
			// Collapse any wakes that arrived during the wait: this pass
			// builds everything pending.
			select {
			case <-t.wake:
			default:
			}
			return true
		case ev, ok := <-*events:
			if !ok {
				*events = nil
				continue
			}
			t.applyEvent(ev)
		case ack := <-t.syncc:
			t.adoptEvents(events)
			t.drain(events)
			t.buildPending()
			t.refreshAll()
			close(ack)
		}
	}
}

// drain folds every already-buffered watch event (delivery happens
// before Publish/Withdraw return, so callers that mutated the registry
// and then Quiesce observe their own changes).
func (t *Tracker) drain(events *<-chan registry.Event) {
	if *events == nil {
		return
	}
	for {
		select {
		case ev, ok := <-*events:
			if !ok {
				*events = nil
				return
			}
			t.applyEvent(ev)
		default:
			return
		}
	}
}

// buildPending builds every cold index.
func (t *Tracker) buildPending() {
	for _, x := range t.snapshot() {
		if x.State() == StateCold && x.rebuild(t.reg, t.mon, t.opts) {
			t.met.builds.Inc()
		}
	}
}

// refresh is one background tick: rebuild dirty indexes, resync the
// stalest built index once it ages past staleResyncAge ticks, restage
// moved progress frontiers.
func (t *Tracker) refresh() {
	var stalest *Index
	var stalestNS int64
	for _, x := range t.snapshot() {
		if x.State() != StateBuilt {
			continue
		}
		if x.dirty.Load() {
			if x.rebuild(t.reg, t.mon, t.opts) {
				t.met.refreshes.Inc()
			}
			continue
		}
		if x.restage() {
			t.met.stagings.Inc()
		}
		if ns := x.built.Load(); stalest == nil || ns < stalestNS {
			stalest, stalestNS = x, ns
		}
	}
	if stalest != nil && time.Since(time.Unix(0, stalestNS)) > staleResyncAge*t.opts.RefreshInterval {
		if stalest.rebuild(t.reg, t.mon, t.opts) {
			t.met.refreshes.Inc()
		}
	}
}

// refreshAll brings every tracked index in sync (Quiesce): cold and
// dirty indexes rebuild, clean built ones only re-stage if their
// progress frontier moved. The events drained just before this run have
// already dirtied every index a registry change touched, so skipping
// clean indexes loses no determinism — and keeps Quiesce proportional
// to what actually changed instead of paying a full registry scan per
// tracked composition.
func (t *Tracker) refreshAll() {
	for _, x := range t.snapshot() {
		switch {
		case x.State() == StateDrained:
		case x.State() == StateCold || x.dirty.Load():
			if x.rebuild(t.reg, t.mon, t.opts) {
				t.met.refreshes.Inc()
				if x.restage() {
					t.met.stagings.Inc()
				}
			}
		default:
			if x.restage() {
				t.met.stagings.Inc()
			}
		}
	}
}
