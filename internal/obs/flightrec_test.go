package obs

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestNewFlightRecorderCapacity(t *testing.T) {
	if got := len(NewFlightRecorder(0).ring); got != DefaultFlightCapacity {
		t.Fatalf("NewFlightRecorder(0) ring = %d, want DefaultFlightCapacity %d",
			got, DefaultFlightCapacity)
	}
	if got := len(NewFlightRecorder(5).ring); got != 5 {
		t.Fatalf("NewFlightRecorder(5) ring = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewFlightRecorder(-1) did not panic")
		}
	}()
	NewFlightRecorder(-1)
}

func TestFlightRecorderRingAndTotal(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		f.Record(RequestRecord{Kind: "compose", Task: fmt.Sprintf("t%d", i)})
	}
	if f.Total() != 5 {
		t.Fatalf("Total = %d, want 5", f.Total())
	}
	recs := f.Snapshot(FlightQuery{})
	if len(recs) != 3 {
		t.Fatalf("retained %d records, want 3", len(recs))
	}
	// Oldest-first of the surviving window.
	for i, want := range []string{"t2", "t3", "t4"} {
		if recs[i].Task != want {
			t.Fatalf("record %d task = %q, want %q", i, recs[i].Task, want)
		}
	}
}

func TestFlightRecorderFilters(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(RequestRecord{Kind: "compose", Tenant: "default", Duration: 5 * time.Millisecond})
	f.Record(RequestRecord{Kind: "compose", Tenant: "clinic", Duration: 9 * time.Millisecond,
		Degraded: true, DegradedCauses: map[string]string{"pay": "coordinator lost"}})
	f.Record(RequestRecord{Kind: "compose", Tenant: "clinic", Duration: 2 * time.Millisecond})
	f.Record(RequestRecord{Kind: "execute", Tenant: "default", Duration: 7 * time.Millisecond})

	if got := f.Snapshot(FlightQuery{TenantSet: true, Tenant: "clinic"}); len(got) != 2 {
		t.Fatalf("tenant filter kept %d records, want 2", len(got))
	}
	// An empty tenant filter is a real filter, not "all".
	if got := f.Snapshot(FlightQuery{TenantSet: true, Tenant: ""}); len(got) != 0 {
		t.Fatalf("empty-tenant filter kept %d records, want 0", len(got))
	}
	deg := f.Snapshot(FlightQuery{Degraded: true})
	if len(deg) != 1 || deg[0].DegradedCauses["pay"] != "coordinator lost" {
		t.Fatalf("degraded filter: %+v", deg)
	}
	slow := f.Snapshot(FlightQuery{Slowest: 2})
	if len(slow) != 2 || slow[0].Duration != 9*time.Millisecond || slow[1].Duration != 7*time.Millisecond {
		t.Fatalf("slowest-2: %+v", slow)
	}
}

// TestFlightRecorderClone checks records never alias caller or snapshot
// state: mutating the caller's maps/slices after Record, or the
// snapshot's, must not leak into the ring.
func TestFlightRecorderClone(t *testing.T) {
	f := NewFlightRecorder(4)
	rec := RequestRecord{
		Kind:           "compose",
		DegradedCauses: map[string]string{"a": "x"},
		Bindings:       []BindingRecord{{Activity: "a", Service: "s1", Utility: 0.5}},
		Events:         []string{"substitutions=1"},
	}
	f.Record(rec)
	rec.DegradedCauses["a"] = "mutated"
	rec.Bindings[0].Service = "mutated"
	rec.Events[0] = "mutated"

	snap := f.Snapshot(FlightQuery{})
	if snap[0].DegradedCauses["a"] != "x" || snap[0].Bindings[0].Service != "s1" || snap[0].Events[0] != "substitutions=1" {
		t.Fatalf("ring aliased caller state: %+v", snap[0])
	}
	snap[0].DegradedCauses["a"] = "poked"
	snap[0].Bindings[0].Service = "poked"
	again := f.Snapshot(FlightQuery{})
	if again[0].DegradedCauses["a"] != "x" || again[0].Bindings[0].Service != "s1" {
		t.Fatalf("snapshot aliased ring state: %+v", again[0])
	}
}

// TestFlightRecorderConcurrent exercises Record/Snapshot/Total from
// many goroutines; run under -race it proves the locking discipline.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Record(RequestRecord{
					Kind:     "compose",
					Tenant:   "default",
					Duration: time.Duration(i) * time.Microsecond,
					Bindings: []BindingRecord{{Activity: "a", Service: "s", Utility: 1}},
				})
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = f.Snapshot(FlightQuery{Slowest: 4})
				_ = f.Total()
			}
		}()
	}
	wg.Wait()
	// Record is drop-don't-block: contended records are counted, not
	// taken, so recorded + dropped must account for every call.
	if got := f.Total() + f.Dropped(); got != 8*200 {
		t.Fatalf("Total+Dropped = %d (%d recorded, %d dropped), want %d",
			got, f.Total(), f.Dropped(), 8*200)
	}
	if f.Total() == 0 {
		t.Fatal("every record was dropped — slot fast path never won")
	}
}

// TestFlightRecorderWritersDontDropEachOther pins the per-slot ring
// guarantee: the ticket counter routes concurrent writers to distinct
// slots, so writer-vs-writer contention cannot drop records — only a
// snapshot holding a slot mid-copy, or a writer lapped by a full ring,
// can. Exactly capacity records means no ticket ever revisits a slot.
func TestFlightRecorderWritersDontDropEachOther(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				f.Record(RequestRecord{Kind: "compose", Task: fmt.Sprintf("g%d-%d", g, i)})
			}
		}(g)
	}
	wg.Wait()
	if f.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0: concurrent writers dropped each other", f.Dropped())
	}
	if f.Total() != 64 {
		t.Fatalf("Total = %d, want 64", f.Total())
	}
	if got := f.Snapshot(FlightQuery{}); len(got) != 64 {
		t.Fatalf("Snapshot kept %d records, want 64", len(got))
	}
}

// TestFlightRecorderDropsWhenContended pins the drop-don't-block
// contract directly: a held slot lock makes the Record routed to that
// slot drop and count, without touching records bound elsewhere.
func TestFlightRecorderDropsWhenContended(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record(RequestRecord{Kind: "compose"}) // ticket 1 → slot 0
	f.ring[1].mu.Lock()                      // ticket 2 lands on slot 1
	f.Record(RequestRecord{Kind: "compose"})
	f.ring[1].mu.Unlock()
	if f.Total() != 1 || f.Dropped() != 1 {
		t.Fatalf("Total=%d Dropped=%d, want 1 and 1", f.Total(), f.Dropped())
	}
	// Uncontended again: records land.
	f.Record(RequestRecord{Kind: "compose"})
	if f.Total() != 2 {
		t.Fatalf("Total=%d after uncontended record, want 2", f.Total())
	}
}

// TestDebugRequestsGolden pins the /debug/requests JSON shape (with the
// tenant filter and slowest-N ordering) to a golden file.
func TestDebugRequestsGolden(t *testing.T) {
	hub := &Hub{Metrics: NewRegistry(), Flight: NewFlightRecorder(8)}
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	hub.Flight.Record(RequestRecord{
		Kind: "compose", TraceID: "00000000000000a1", Tenant: "default",
		Task: "00000000000000f1", Start: base, Duration: 48 * time.Microsecond,
		Phases:   PhaseTimings{Resolve: 3 * time.Microsecond},
		CacheHit: true, Feasible: true, Utility: 0.91,
		Bindings: []BindingRecord{
			{Activity: "browse", Service: "browse-0", Utility: 0.95},
			{Activity: "pay", Service: "pay-2", Utility: 0.88},
		},
	})
	hub.Flight.Record(RequestRecord{
		Kind: "compose", TraceID: "00000000000000a2", Tenant: "default",
		Task: "00000000000000f1", Start: base.Add(time.Second), Duration: 1900 * time.Microsecond,
		Phases:    PhaseTimings{Resolve: 4 * time.Microsecond, Lookup: 210 * time.Microsecond, Local: 900 * time.Microsecond, Global: 600 * time.Microsecond},
		CacheMiss: "epoch", Degraded: true,
		DegradedCauses: map[string]string{"pay": "coordinator unreachable: connection refused"},
		Fallbacks:      1, Retries: 2, Feasible: true, Utility: 0.87,
		Bindings: []BindingRecord{
			{Activity: "browse", Service: "browse-0", Utility: 0.95},
			{Activity: "pay", Service: "pay-1", Utility: 0.81},
		},
	})
	hub.Flight.Record(RequestRecord{
		Kind: "compose", TraceID: "00000000000000a3", Tenant: "clinic",
		Task: "00000000000000f2", Start: base.Add(2 * time.Second), Duration: 5 * time.Millisecond,
		CacheMiss: "cold", Feasible: false, Err: "no candidate for activity \"scan\"",
	})
	hub.Flight.Record(RequestRecord{
		Kind: "execute", TraceID: "00000000000000a2", Tenant: "default",
		Task: "00000000000000f1", Start: base.Add(3 * time.Second), Duration: 800 * time.Microsecond,
		Feasible: true, Events: []string{"invocations=3", "failures=1", "substitutions=1"},
	})

	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()
	got, ct := get(t, srv.URL+"/debug/requests?tenant=default&slowest=2")
	if ct != "application/json" {
		t.Fatalf("/debug/requests content-type = %q", ct)
	}

	path := filepath.Join("testdata", "requests.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("/debug/requests drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
