package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestTraceIDsUniqueConcurrent hammers span creation from many
// goroutines and checks every trace/span ID is unique and non-zero —
// the property wire propagation and exemplar linkage rely on.
func TestTraceIDsUniqueConcurrent(t *testing.T) {
	const goroutines, perG = 16, 200
	hub := NewHub()
	ctx := WithHub(context.Background(), hub)
	var mu sync.Mutex
	seen := make(map[uint64]bool, 2*goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]SpanContext, 0, perG)
			for i := 0; i < perG; i++ {
				_, span := StartSpan(ctx, "probe")
				local = append(local, span.Context())
				span.End()
			}
			mu.Lock()
			defer mu.Unlock()
			for _, sc := range local {
				if !sc.Valid() {
					t.Errorf("invalid span context %+v", sc)
				}
				if seen[sc.TraceID] || seen[sc.SpanID] {
					t.Errorf("duplicate ID in %+v", sc)
				}
				seen[sc.TraceID] = true
				seen[sc.SpanID] = true
			}
		}()
	}
	wg.Wait()
}

func TestChildInheritsTraceID(t *testing.T) {
	hub := NewHub()
	ctx := WithHub(context.Background(), hub)
	ctx, root := StartSpan(ctx, "root")
	_, child := StartSpan(ctx, "child")
	if root.Context().TraceID != child.Context().TraceID {
		t.Fatalf("child trace %x != root trace %x",
			child.Context().TraceID, root.Context().TraceID)
	}
	if root.Context().SpanID == child.Context().SpanID {
		t.Fatal("child reused the root span ID")
	}
	child.End()
	root.End()
}

// TestRemoteParentStitching simulates a cross-process hop: a "server"
// root span started under WithRemoteParent joins the client's trace,
// and Tracer.Snapshot nests it under the client span.
func TestRemoteParentStitching(t *testing.T) {
	hub := NewHub()
	clientCtx := WithHub(context.Background(), hub)
	_, client := StartSpan(clientCtx, "dist.exchange")

	// The wire carries only the SpanContext; the remote side starts a
	// fresh root under it (same hub stands in for the remote tracer).
	wire := ContextFrom(clientCtx)
	if wire.Valid() {
		t.Fatalf("context without a current span must yield a zero SpanContext, got %+v", wire)
	}
	wire = client.Context()
	serverCtx := WithRemoteParent(WithHub(context.Background(), hub), wire)
	_, server := StartSpan(serverCtx, "device.localselect")
	if server.Context().TraceID != client.Context().TraceID {
		t.Fatalf("server did not adopt the client trace: %x vs %x",
			server.Context().TraceID, client.Context().TraceID)
	}
	server.End()
	client.End()

	snap := hub.Tracer.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("want 1 stitched root, got %d", len(snap))
	}
	root := snap[0]
	if root.Name != "dist.exchange" {
		t.Fatalf("stitched root is %q", root.Name)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "device.localselect" {
		t.Fatalf("remote span not nested under its parent: %+v", root)
	}
	if root.Children[0].TraceID != root.TraceID {
		t.Fatal("stitched child carries a different trace ID")
	}
}

// TestSiblingsSortedDeterministically checks snapshot ordering: start
// time first, name as the tiebreak — not insertion order, which is
// scheduling-dependent under concurrency.
func TestSiblingsSortedDeterministically(t *testing.T) {
	t0 := time.Now()
	root := &Span{name: "root", start: t0, traceID: 1, spanID: 2}
	root.children = []*Span{
		{name: "late", start: t0.Add(2 * time.Millisecond), traceID: 1, spanID: 5},
		{name: "b-tied", start: t0.Add(time.Millisecond), traceID: 1, spanID: 4},
		{name: "a-tied", start: t0.Add(time.Millisecond), traceID: 1, spanID: 3},
	}
	got := root.snapshot(0)
	want := []string{"a-tied", "b-tied", "late"}
	if len(got.Children) != len(want) {
		t.Fatalf("got %d children", len(got.Children))
	}
	for i, name := range want {
		if got.Children[i].Name != name {
			t.Fatalf("child %d = %q, want %q (full: %+v)", i, got.Children[i].Name, name, got.Children)
		}
	}
}

// TestSnapshotDepthCap builds a span chain deeper than maxRenderDepth
// and checks the render folds the excess into Dropped instead of
// recursing without bound.
func TestSnapshotDepthCap(t *testing.T) {
	hub := NewHub()
	ctx := WithHub(context.Background(), hub)
	ctx, root := StartSpan(ctx, "lvl0")
	spans := []*Span{root}
	for i := 1; i < maxRenderDepth+8; i++ {
		var s *Span
		ctx, s = StartSpan(ctx, "deep")
		spans = append(spans, s)
	}
	for i := len(spans) - 1; i >= 0; i-- {
		spans[i].End()
	}
	snap := hub.Tracer.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("want 1 root, got %d", len(snap))
	}
	depth, dropped := 0, 0
	for cur := &snap[0]; ; {
		dropped += cur.Dropped
		if len(cur.Children) == 0 {
			break
		}
		depth++
		cur = &cur.Children[0]
	}
	if depth >= maxRenderDepth {
		t.Fatalf("rendered depth %d not capped at %d", depth, maxRenderDepth)
	}
	if dropped == 0 {
		t.Fatal("folded subtrees not accounted in Dropped")
	}
}

func TestNewTracerCapacity(t *testing.T) {
	if got := len(NewTracer(0).ring); got != DefaultTraceCapacity {
		t.Fatalf("NewTracer(0) ring = %d, want DefaultTraceCapacity %d", got, DefaultTraceCapacity)
	}
	if got := len(NewTracer(3).ring); got != 3 {
		t.Fatalf("NewTracer(3) ring = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewTracer(-1) did not panic")
		}
	}()
	NewTracer(-1)
}

func TestTraceIDString(t *testing.T) {
	sc := SpanContext{TraceID: 0xabc, SpanID: 1}
	if got := sc.TraceIDString(); got != "0000000000000abc" {
		t.Fatalf("TraceIDString = %q", got)
	}
	if got := (SpanContext{}).TraceIDString(); got != "" {
		t.Fatalf("zero context renders %q, want empty", got)
	}
	var nilSpan *Span
	if got := nilSpan.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q", got)
	}
}
