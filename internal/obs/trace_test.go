package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestStartSpanWithoutHub(t *testing.T) {
	ctx, span := StartSpan(context.Background(), "noop")
	if span != nil {
		t.Fatal("span should be nil without a hub")
	}
	// Nil-safe operations.
	span.Annotate("k", "v")
	span.End()
	if HubFrom(ctx) != nil {
		t.Fatal("no hub should be attached")
	}
}

func TestSpanTree(t *testing.T) {
	hub := NewHub()
	ctx := WithHub(context.Background(), hub)
	ctx, root := StartSpan(ctx, "compose")
	root.Annotate("task", "shopping")
	cctx, child := StartSpan(ctx, "qassa.local")
	_, grand := StartSpan(cctx, "qassa.cluster")
	grand.Annotate("activity", "book")
	grand.End()
	child.End()
	_, sibling := StartSpan(ctx, "qassa.global")
	sibling.End()

	if got := hub.Tracer.Snapshot(); len(got) != 0 {
		t.Fatalf("unfinished root must not be recorded, got %d", len(got))
	}
	root.End()
	root.End() // idempotent

	snap := hub.Tracer.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d roots, want 1", len(snap))
	}
	r := snap[0]
	if r.Name != "compose" || r.Attrs["task"] != "shopping" {
		t.Fatalf("root = %+v", r)
	}
	if len(r.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(r.Children))
	}
	if r.Children[0].Name != "qassa.local" || r.Children[1].Name != "qassa.global" {
		t.Fatalf("children = %v, %v", r.Children[0].Name, r.Children[1].Name)
	}
	lc := r.Children[0]
	if len(lc.Children) != 1 || lc.Children[0].Attrs["activity"] != "book" {
		t.Fatalf("grandchild = %+v", lc.Children)
	}
	if r.Duration <= 0 {
		t.Fatal("root duration should be positive")
	}
	if hub.Tracer.Total() != 1 {
		t.Fatalf("total = %d, want 1", hub.Tracer.Total())
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	hub := &Hub{Tracer: tr}
	ctx := WithHub(context.Background(), hub)
	for i := 0; i < 5; i++ {
		_, s := StartSpan(ctx, fmt.Sprintf("root-%d", i))
		s.End()
	}
	snap := tr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d, want 3", len(snap))
	}
	// Oldest first: 2, 3, 4 survive.
	for i, want := range []string{"root-2", "root-3", "root-4"} {
		if snap[i].Name != want {
			t.Fatalf("snap[%d] = %q, want %q", i, snap[i].Name, want)
		}
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d, want 5", tr.Total())
	}
}

func TestConcurrentChildren(t *testing.T) {
	hub := NewHub()
	ctx := WithHub(context.Background(), hub)
	ctx, root := StartSpan(ctx, "parallel")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, s := StartSpan(ctx, fmt.Sprintf("branch-%d", i))
			s.Annotate("i", fmt.Sprint(i))
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	snap := hub.Tracer.Snapshot()
	if len(snap) != 1 || len(snap[0].Children) != 16 {
		t.Fatalf("got %d roots / %d children, want 1/16", len(snap), len(snap[0].Children))
	}
}

func TestChildCap(t *testing.T) {
	hub := NewHub()
	ctx := WithHub(context.Background(), hub)
	ctx, root := StartSpan(ctx, "busy")
	for i := 0; i < maxChildren+10; i++ {
		_, s := StartSpan(ctx, "child")
		s.End()
	}
	root.End()
	snap := hub.Tracer.Snapshot()
	if got := len(snap[0].Children); got != maxChildren {
		t.Fatalf("children = %d, want cap %d", got, maxChildren)
	}
	if snap[0].Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", snap[0].Dropped)
	}
}

func TestEnsureHub(t *testing.T) {
	h1, h2 := NewHub(), NewHub()
	ctx := EnsureHub(context.Background(), h1)
	if HubFrom(ctx) != h1 {
		t.Fatal("EnsureHub should attach to a bare context")
	}
	ctx = EnsureHub(ctx, h2)
	if HubFrom(ctx) != h1 {
		t.Fatal("EnsureHub must not replace an existing hub")
	}
}

func TestDefaultHub(t *testing.T) {
	if Default() == nil || Default().Metrics == nil || Default().Tracer == nil {
		t.Fatal("default hub must be fully initialised")
	}
	if Default() != Default() {
		t.Fatal("default hub must be stable")
	}
}
