package obs

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Hub bundles the telemetry backends one process (or one middleware
// instance) shares: the metrics registry, the span tracer, the
// per-request flight recorder, and (optionally) an SLO engine. Hubs
// travel through context.Context so every layer of the pipeline —
// candidate lookup, QASSA phases, execution, adaptation — reports into
// the same place without threading handles through every signature.
type Hub struct {
	Metrics *Registry
	Tracer  *Tracer
	// Flight records per-request decision records (see FlightRecorder);
	// nil disables recording.
	Flight *FlightRecorder
	// SLO, when non-nil, drives /healthz degradation on fast error-budget
	// burn (see SLOEngine).
	SLO *SLOEngine
}

// NewHub creates a hub with a fresh registry, tracer and flight
// recorder (no SLO engine — attach one explicitly).
func NewHub() *Hub {
	return &Hub{
		Metrics: NewRegistry(),
		Tracer:  NewTracer(0),
		Flight:  NewFlightRecorder(0),
	}
}

var defaultHub = NewHub()

// Default returns the process-wide hub. Middleware instances use it
// unless configured with their own, so command-line tools (qasomnode,
// qasombench) can expose one coherent /metrics for the whole process.
func Default() *Hub { return defaultHub }

type hubKey struct{}
type spanKey struct{}
type remoteKey struct{}

// WithHub attaches a hub to the context.
func WithHub(ctx context.Context, h *Hub) context.Context {
	return context.WithValue(ctx, hubKey{}, h)
}

// EnsureHub attaches h unless the context already carries a hub (a
// caller-supplied hub wins over the instance default).
func EnsureHub(ctx context.Context, h *Hub) context.Context {
	if HubFrom(ctx) != nil {
		return ctx
	}
	return WithHub(ctx, h)
}

// HubFrom returns the context's hub, or nil.
func HubFrom(ctx context.Context) *Hub {
	h, _ := ctx.Value(hubKey{}).(*Hub)
	return h
}

// --- trace identity ------------------------------------------------------

// idCounter seeds span/trace IDs: a process-unique monotonic counter
// seeded from the wall clock at start-up, passed through a splitmix64
// finalizer. The finalizer is a bijection, so distinct counter values
// give distinct IDs; the mixing spreads consecutive IDs across the
// 64-bit space so truncated renderings still look distinct.
var idCounter atomic.Uint64

func init() {
	idCounter.Store(uint64(time.Now().UnixNano()))
}

func nextID() uint64 {
	x := idCounter.Add(1)
	// splitmix64 finalizer (Steele et al.): invertible 64-bit mix.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1 // 0 means "no trace" on the wire
	}
	return x
}

// SpanContext identifies a span within its trace: the TraceID shared by
// every span of one request, and the SpanID of the specific span. It is
// the unit of wire propagation — the TCP transport carries it in the
// exchange envelope so coordinator-side spans stitch into the
// requester's trace. The zero value means "no trace".
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context identifies a real span.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// TraceIDString renders the trace ID as fixed-width hex ("" when zero).
func (sc SpanContext) TraceIDString() string {
	if sc.TraceID == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", sc.TraceID)
}

// WithRemoteParent marks the context as the continuation of a trace
// started in another process: the next root span started under it
// adopts sc's TraceID and records sc.SpanID as its remote parent, so
// Tracer.Snapshot can stitch the two trees together. Invalid contexts
// are ignored.
func WithRemoteParent(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, sc)
}

// ContextFrom returns the span context of the context's current span,
// falling back to a remote-parent context attached by WithRemoteParent
// (so propagation chains survive hops where tracing is off), or the
// zero SpanContext.
func ContextFrom(ctx context.Context) SpanContext {
	if s, _ := ctx.Value(spanKey{}).(*Span); s != nil {
		return s.Context()
	}
	if sc, ok := ctx.Value(remoteKey{}).(SpanContext); ok {
		return sc
	}
	return SpanContext{}
}

// maxChildren bounds the span-tree fan-out per parent so a pathological
// run (a loop of thousands of invocations) cannot grow memory without
// bound; further children are counted, not stored.
const maxChildren = 512

// maxRenderDepth bounds the depth of a rendered span tree: deeper
// subtrees are folded into the Dropped count of the span at the limit,
// so a runaway recursion cannot produce an unbounded /debug/spans
// document.
const maxRenderDepth = 32

// Span is one timed operation in a trace tree. Spans are created with
// StartSpan and finished with End; both are nil-safe, so instrumented
// code needs no "is tracing on" branches. Safe for concurrent use:
// parallel branches attach children to one parent concurrently.
type Span struct {
	tracer *Tracer
	parent *Span
	name   string
	start  time.Time

	traceID uint64
	spanID  uint64
	// remoteParent is the SpanID of a parent span in another process
	// (set on root spans started under WithRemoteParent; 0 otherwise).
	remoteParent uint64

	mu       sync.Mutex
	attrs    []spanAttr
	children []*Span
	dropped  int
	end      time.Time
	ended    bool
}

type spanAttr struct{ key, value string }

// Context returns the span's identity (zero for a nil span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.spanID}
}

// TraceID renders the span's trace ID as fixed-width hex ("" for nil).
func (s *Span) TraceID() string { return s.Context().TraceIDString() }

// StartSpan begins a span named name under the context's current span
// (a root span when there is none). A root span started under a
// context carrying a remote parent (WithRemoteParent) joins that trace
// instead of opening a new one. Without a hub or tracer in the context
// it returns the context unchanged and a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	hub := HubFrom(ctx)
	if hub == nil || hub.Tracer == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	s := &Span{tracer: hub.Tracer, parent: parent, name: name, start: time.Now(), spanID: nextID()}
	switch {
	case parent != nil:
		s.traceID = parent.traceID
		parent.addChild(s)
	default:
		if rp, ok := ctx.Value(remoteKey{}).(SpanContext); ok && rp.Valid() {
			s.traceID = rp.TraceID
			s.remoteParent = rp.SpanID
		} else {
			s.traceID = nextID()
		}
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.children) >= maxChildren {
		s.dropped++
		return
	}
	s.children = append(s.children, c)
}

// Annotate attaches a key/value attribute to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key, value})
	s.mu.Unlock()
}

// End finishes the span; a finished root span is recorded in the
// tracer's ring of recent traces. End is idempotent and nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = time.Now()
	s.mu.Unlock()
	if s.parent == nil && s.tracer != nil {
		s.tracer.record(s)
	}
}

// SpanSnapshot is an immutable copy of a finished (or in-flight) span
// tree, JSON-friendly for the /debug/spans endpoint. Trace identity
// renders as fixed-width hex so IDs survive JSON number precision.
type SpanSnapshot struct {
	Name     string            `json:"name"`
	TraceID  string            `json:"trace_id,omitempty"`
	SpanID   string            `json:"span_id,omitempty"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []SpanSnapshot    `json:"children,omitempty"`
	// RemoteParent is the hex SpanID of this root's parent in another
	// process; Tracer.Snapshot nests the tree under that span when it is
	// present in the same snapshot.
	RemoteParent string `json:"remote_parent,omitempty"`
	// Dropped counts children discarded beyond the per-span fan-out cap,
	// plus subtrees folded away beyond the render-depth cap.
	Dropped int `json:"dropped,omitempty"`
}

func (s *Span) snapshot(depth int) SpanSnapshot {
	s.mu.Lock()
	out := SpanSnapshot{
		Name:    s.name,
		Start:   s.start,
		Dropped: s.dropped,
	}
	if s.traceID != 0 {
		out.TraceID = fmt.Sprintf("%016x", s.traceID)
		out.SpanID = fmt.Sprintf("%016x", s.spanID)
	}
	if s.remoteParent != 0 {
		out.RemoteParent = fmt.Sprintf("%016x", s.remoteParent)
	}
	if s.ended {
		out.Duration = s.end.Sub(s.start)
	} else {
		out.Duration = time.Since(s.start)
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.key] = a.value
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if len(children) > 0 {
		if depth+1 >= maxRenderDepth {
			out.Dropped += len(children)
			return out
		}
		out.Children = make([]SpanSnapshot, len(children))
		for i, c := range children {
			out.Children[i] = c.snapshot(depth + 1)
		}
		sortSpans(out.Children)
	}
	return out
}

// sortSpans orders sibling snapshots deterministically: by start time,
// then by name. Children attach in scheduling order under concurrency,
// so raw insertion order is unstable across runs.
func sortSpans(s []SpanSnapshot) {
	sort.SliceStable(s, func(i, j int) bool {
		if !s[i].Start.Equal(s[j].Start) {
			return s[i].Start.Before(s[j].Start)
		}
		return s[i].Name < s[j].Name
	})
}

// Tracer keeps a bounded ring of the most recent finished root spans.
// Safe for concurrent use.
type Tracer struct {
	mu    sync.Mutex
	ring  []*Span
	next  int
	full  bool
	total uint64
}

// DefaultTraceCapacity is the root-span retention a Tracer gets when
// NewTracer is called with capacity 0 (the NewHub default).
const DefaultTraceCapacity = 64

// NewTracer creates a tracer retaining the last capacity root spans;
// 0 means DefaultTraceCapacity. Negative capacities are a programmer
// error and panic.
func NewTracer(capacity int) *Tracer {
	if capacity < 0 {
		panic(fmt.Sprintf("obs: NewTracer capacity must be >= 0, got %d", capacity))
	}
	if capacity == 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]*Span, capacity)}
}

func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	if t.next == 0 {
		t.full = true
	}
	t.total++
	t.mu.Unlock()
}

// Total counts every root span ever recorded (monotonic; the ring only
// retains the most recent ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained root span trees, oldest first, with
// remote traces stitched: a root recorded with a RemoteParent whose
// parent span is present in the same snapshot (e.g. a coordinator-side
// local phase whose requester ran in this process) is nested under
// that span instead of rendered as a separate tree.
func (t *Tracer) Snapshot() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := make([]*Span, 0, len(t.ring))
	if t.full {
		roots = append(roots, t.ring[t.next:]...)
	}
	roots = append(roots, t.ring[:t.next]...)
	t.mu.Unlock()
	out := make([]SpanSnapshot, len(roots))
	for i, r := range roots {
		out[i] = r.snapshot(0)
	}
	return stitch(out)
}

// stitch nests remote-parented roots under their parent span when that
// span appears in another tree of the same snapshot. Every move
// removes one root, so the loop terminates; the scan restarts after
// each move because the removal shifts the slice.
func stitch(roots []SpanSnapshot) []SpanSnapshot {
	for moved := true; moved; {
		moved = false
	scan:
		for i := range roots {
			rp := roots[i].RemoteParent
			if rp == "" {
				continue
			}
			for j := range roots {
				if j == i {
					continue
				}
				if parent := findSpan(&roots[j], rp); parent != nil {
					parent.Children = append(parent.Children, roots[i])
					sortSpans(parent.Children)
					roots = append(roots[:i], roots[i+1:]...)
					moved = true
					break scan
				}
			}
		}
	}
	return roots
}

// findSpan locates the span with the given hex SpanID in a tree.
func findSpan(s *SpanSnapshot, spanID string) *SpanSnapshot {
	if s.SpanID == spanID {
		return s
	}
	for i := range s.Children {
		if m := findSpan(&s.Children[i], spanID); m != nil {
			return m
		}
	}
	return nil
}
