package obs

import (
	"context"
	"sync"
	"time"
)

// Hub bundles the two telemetry backends one process (or one
// middleware instance) shares: the metrics registry and the span
// tracer. Hubs travel through context.Context so every layer of the
// pipeline — candidate lookup, QASSA phases, execution, adaptation —
// reports into the same place without threading handles through every
// signature.
type Hub struct {
	Metrics *Registry
	Tracer  *Tracer
}

// NewHub creates a hub with a fresh registry and tracer.
func NewHub() *Hub {
	return &Hub{Metrics: NewRegistry(), Tracer: NewTracer(0)}
}

var defaultHub = NewHub()

// Default returns the process-wide hub. Middleware instances use it
// unless configured with their own, so command-line tools (qasomnode,
// qasombench) can expose one coherent /metrics for the whole process.
func Default() *Hub { return defaultHub }

type hubKey struct{}
type spanKey struct{}

// WithHub attaches a hub to the context.
func WithHub(ctx context.Context, h *Hub) context.Context {
	return context.WithValue(ctx, hubKey{}, h)
}

// EnsureHub attaches h unless the context already carries a hub (a
// caller-supplied hub wins over the instance default).
func EnsureHub(ctx context.Context, h *Hub) context.Context {
	if HubFrom(ctx) != nil {
		return ctx
	}
	return WithHub(ctx, h)
}

// HubFrom returns the context's hub, or nil.
func HubFrom(ctx context.Context) *Hub {
	h, _ := ctx.Value(hubKey{}).(*Hub)
	return h
}

// maxChildren bounds the span-tree fan-out per parent so a pathological
// run (a loop of thousands of invocations) cannot grow memory without
// bound; further children are counted, not stored.
const maxChildren = 512

// Span is one timed operation in a trace tree. Spans are created with
// StartSpan and finished with End; both are nil-safe, so instrumented
// code needs no "is tracing on" branches. Safe for concurrent use:
// parallel branches attach children to one parent concurrently.
type Span struct {
	tracer *Tracer
	parent *Span
	name   string
	start  time.Time

	mu       sync.Mutex
	attrs    []spanAttr
	children []*Span
	dropped  int
	end      time.Time
	ended    bool
}

type spanAttr struct{ key, value string }

// StartSpan begins a span named name under the context's current span
// (a root span when there is none). Without a hub or tracer in the
// context it returns the context unchanged and a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	hub := HubFrom(ctx)
	if hub == nil || hub.Tracer == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	s := &Span{tracer: hub.Tracer, parent: parent, name: name, start: time.Now()}
	if parent != nil {
		parent.addChild(s)
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.children) >= maxChildren {
		s.dropped++
		return
	}
	s.children = append(s.children, c)
}

// Annotate attaches a key/value attribute to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key, value})
	s.mu.Unlock()
}

// End finishes the span; a finished root span is recorded in the
// tracer's ring of recent traces. End is idempotent and nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = time.Now()
	s.mu.Unlock()
	if s.parent == nil && s.tracer != nil {
		s.tracer.record(s)
	}
}

// SpanSnapshot is an immutable copy of a finished (or in-flight) span
// tree, JSON-friendly for the /debug/spans endpoint.
type SpanSnapshot struct {
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []SpanSnapshot    `json:"children,omitempty"`
	// Dropped counts children discarded beyond the per-span cap.
	Dropped int `json:"dropped,omitempty"`
}

func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	out := SpanSnapshot{
		Name:    s.name,
		Start:   s.start,
		Dropped: s.dropped,
	}
	if s.ended {
		out.Duration = s.end.Sub(s.start)
	} else {
		out.Duration = time.Since(s.start)
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.key] = a.value
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if len(children) > 0 {
		out.Children = make([]SpanSnapshot, len(children))
		for i, c := range children {
			out.Children[i] = c.snapshot()
		}
	}
	return out
}

// Tracer keeps a bounded ring of the most recent finished root spans.
// Safe for concurrent use.
type Tracer struct {
	mu    sync.Mutex
	ring  []*Span
	next  int
	full  bool
	total uint64
}

// NewTracer creates a tracer retaining the last capacity root spans
// (0 means 64).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 64
	}
	return &Tracer{ring: make([]*Span, capacity)}
}

func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	if t.next == 0 {
		t.full = true
	}
	t.total++
	t.mu.Unlock()
}

// Total counts every root span ever recorded (monotonic; the ring only
// retains the most recent ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained root span trees, oldest first.
func (t *Tracer) Snapshot() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := make([]*Span, 0, len(t.ring))
	if t.full {
		roots = append(roots, t.ring[t.next:]...)
	}
	roots = append(roots, t.ring[:t.next]...)
	t.mu.Unlock()
	out := make([]SpanSnapshot, len(roots))
	for i, r := range roots {
		out[i] = r.snapshot()
	}
	return out
}
