package obs

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sloClock is a manual clock for driving the per-second bucket ring.
type sloClock struct{ now time.Time }

func (c *sloClock) Now() time.Time          { return c.now }
func (c *sloClock) advance(d time.Duration) { c.now = c.now.Add(d) }

func approxEq(got, want float64) bool {
	d := got - want
	return d < 1e-9 && d > -1e-9
}

func newTestSLO(t *testing.T, cfg SLOConfig, r *Registry) (*SLOEngine, *sloClock) {
	t.Helper()
	clk := &sloClock{now: time.Unix(1_000_000, 0)}
	cfg.Clock = clk.Now
	return NewSLOEngine(cfg, r), clk
}

func TestSLOConfigDefaults(t *testing.T) {
	e, _ := newTestSLO(t, SLOConfig{}, nil)
	cfg := e.Config()
	if cfg.Name != "serving" || cfg.Availability != 0.999 || cfg.FastBurnThreshold != 14 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if len(cfg.Windows) != 3 || cfg.Windows[0] != time.Minute {
		t.Fatalf("default windows: %v", cfg.Windows)
	}
}

func TestSLOBurnRateWindows(t *testing.T) {
	// 10% error budget so rates are round numbers.
	e, clk := newTestSLO(t, SLOConfig{
		Availability: 0.9,
		Windows:      []time.Duration{10 * time.Second, 100 * time.Second},
	}, nil)

	// Second 0: 5 bad of 10 → 50% bad → burn 5 in both windows.
	for i := 0; i < 10; i++ {
		var err error
		if i < 5 {
			err = errors.New("boom")
		}
		e.Observe(time.Millisecond, err)
	}
	if got := e.BurnRate(10 * time.Second); !approxEq(got, 5) {
		t.Fatalf("short-window burn = %g, want 5", got)
	}
	if got := e.BurnRate(100 * time.Second); !approxEq(got, 5) {
		t.Fatalf("long-window burn = %g, want 5", got)
	}

	// 30s later: 10 good requests. The short window has rolled past the
	// bad second (burn 0); the long window still remembers it (5 bad of
	// 20 total → 25% bad → burn 2.5).
	clk.advance(30 * time.Second)
	for i := 0; i < 10; i++ {
		e.Observe(time.Millisecond, nil)
	}
	if got := e.BurnRate(10 * time.Second); got != 0 {
		t.Fatalf("short-window burn after roll = %g, want 0", got)
	}
	if got := e.BurnRate(100 * time.Second); !approxEq(got, 2.5) {
		t.Fatalf("long-window burn after roll = %g, want 2.5", got)
	}

	// A gap longer than the whole ring resets every window.
	clk.advance(200 * time.Second)
	if got := e.BurnRate(100 * time.Second); got != 0 {
		t.Fatalf("burn after full-ring gap = %g, want 0", got)
	}
}

func TestSLOLatencyObjective(t *testing.T) {
	e, _ := newTestSLO(t, SLOConfig{
		Availability:     0.9,
		LatencyObjective: 100 * time.Millisecond,
		Windows:          []time.Duration{10 * time.Second},
	}, nil)
	e.Observe(50*time.Millisecond, nil)  // good
	e.Observe(500*time.Millisecond, nil) // slow = bad, despite nil error
	if got := e.Attainment(); got != 0.5 {
		t.Fatalf("attainment = %g, want 0.5", got)
	}
}

func TestSLOAttainmentLifetime(t *testing.T) {
	e, clk := newTestSLO(t, SLOConfig{
		Availability: 0.9,
		Windows:      []time.Duration{time.Second},
	}, nil)
	if got := e.Attainment(); got != 1 {
		t.Fatalf("empty attainment = %g, want 1", got)
	}
	for i := 0; i < 8; i++ {
		e.Observe(time.Millisecond, nil)
	}
	e.Observe(time.Millisecond, errors.New("x"))
	e.Observe(time.Millisecond, errors.New("y"))
	// Attainment is lifetime, not windowed: rolling far forward must not
	// erase it.
	clk.advance(time.Hour)
	if got := e.Attainment(); got != 0.8 {
		t.Fatalf("attainment = %g, want 0.8", got)
	}
	var nilEngine *SLOEngine
	if nilEngine.Attainment() != 1 || nilEngine.FastBurn() || nilEngine.BurnRate(time.Minute) != 0 {
		t.Fatal("nil engine must report a perfect, non-burning SLO")
	}
	nilEngine.Observe(time.Second, nil) // must not panic
}

func TestSLOFastBurnTripsHealthz(t *testing.T) {
	hub := NewHub()
	e, _ := newTestSLO(t, SLOConfig{
		Name:              "serving",
		Availability:      0.99,
		Windows:           []time.Duration{10 * time.Second},
		FastBurnThreshold: 10,
	}, hub.Metrics)
	hub.SLO = e

	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	// Healthy stream: burn 0, /healthz 200.
	for i := 0; i < 20; i++ {
		e.Observe(time.Millisecond, nil)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /healthz status = %d", resp.StatusCode)
	}

	// 20 bad of 40 → 50% bad / 1% budget = burn 50 ≥ threshold 10.
	for i := 0; i < 20; i++ {
		e.Observe(time.Millisecond, errors.New("down"))
	}
	if !e.FastBurn() {
		t.Fatalf("FastBurn not tripped at burn %g", e.BurnRate(10*time.Second))
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("burning /healthz status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body[:n]), "degraded") {
		t.Fatalf("503 body %q does not explain the degradation", body[:n])
	}

	// The burn gauges made it into the registry.
	var sawBurn bool
	for _, fam := range hub.Metrics.Snapshot() {
		if fam.Name == "qasom_slo_burn_rate" {
			sawBurn = true
		}
	}
	if !sawBurn {
		t.Fatal("qasom_slo_burn_rate not registered")
	}
}
