package obs

import (
	"runtime"
	"strings"
	"testing"
)

func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", nil)
	if _, ok := h.Exemplar(); ok {
		t.Fatal("fresh histogram reports an exemplar")
	}
	h.ObserveExemplar(0.05, "00000000000000ab")
	ex, ok := h.Exemplar()
	if !ok || ex.TraceID != "00000000000000ab" || ex.Value != 0.05 {
		t.Fatalf("exemplar = %+v ok=%v", ex, ok)
	}
	// An empty trace ID observes without replacing the exemplar.
	h.ObserveExemplar(0.2, "")
	if ex, _ = h.Exemplar(); ex.TraceID != "00000000000000ab" {
		t.Fatalf("empty-trace observation replaced the exemplar: %+v", ex)
	}
	snap := h.Snapshot()
	if snap.Count != 2 {
		t.Fatalf("count = %d, want 2 (exemplar observations must still count)", snap.Count)
	}
	if snap.Exemplar == nil || snap.Exemplar.TraceID != "00000000000000ab" {
		t.Fatalf("snapshot exemplar = %+v", snap.Exemplar)
	}

	var nilH *Histogram
	nilH.ObserveExemplar(1, "ff") // nil-safe
	if _, ok := nilH.Exemplar(); ok {
		t.Fatal("nil histogram reports an exemplar")
	}
}

func TestExemplarExposition(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_seconds", "latency", []float64{0.1}).ObserveExemplar(0.05, "00000000000000ab")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	var sawExemplar bool
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# EXEMPLAR") {
			sawExemplar = true
			if !strings.Contains(line, "trace_id=00000000000000ab") {
				t.Fatalf("exemplar line lacks trace id: %q", line)
			}
			continue
		}
		// Every non-comment line must stay parseable: "name{labels} value".
		if line != "" && !strings.HasPrefix(line, "#") && len(strings.Fields(line)) != 2 {
			t.Fatalf("unparseable exposition line: %q", line)
		}
	}
	if !sawExemplar {
		t.Fatalf("no # EXEMPLAR line in:\n%s", out)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	RegisterBuildInfo(nil) // nil-safe
	r := NewRegistry()
	RegisterBuildInfo(r)
	RegisterBuildInfo(r) // idempotent: same labels, same child
	var found bool
	for _, fam := range r.Snapshot() {
		if fam.Name != "qasom_build_info" {
			continue
		}
		found = true
		if len(fam.Series) != 1 {
			t.Fatalf("build info has %d series, want 1", len(fam.Series))
		}
		s := fam.Series[0]
		if s.Value != 1 {
			t.Fatalf("build info value = %g, want 1", s.Value)
		}
		if s.Labels["goversion"] != runtime.Version() {
			t.Fatalf("goversion label = %q, want %q", s.Labels["goversion"], runtime.Version())
		}
		if s.Labels["version"] == "" {
			t.Fatal("version label empty")
		}
	}
	if !found {
		t.Fatal("qasom_build_info not registered")
	}
}
