package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the exposition golden file")

// goldenRegistry builds a deterministic registry exercising every
// exposition feature: bare counters/gauges, labelled families, escaped
// help and label values, histograms and func metrics.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("qasom_compose_total", "Total Compose calls.").Add(7)
	r.Counter("qasom_compose_errors_total", "Compose calls that returned an error.")
	r.Gauge("qasom_local_workers_busy", "Local-phase worker-pool occupancy.").Set(3)
	v := r.CounterVec("qasom_monitor_violations_total",
		"Constraint violations flagged by the composition monitor.", "kind")
	v.With("current").Add(2)
	v.With("predicted").Inc()
	g := r.GaugeVec("qasom_monitor_ewma", "EWMA run-time estimate per service and property.",
		"service", "property")
	g.With("cam-1", "responseTime").Set(120.5)
	g.With(`we"ird\svc`, "price").Set(4)
	h := r.Histogram("qasom_select_seconds", "End-to-end selection latency.",
		[]float64{0.001, 0.01, 0.1, 1})
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(2) // +Inf
	hv := r.HistogramVec("qasom_phase_seconds", "Per-phase latency.\nSecond help line.",
		[]float64{0.01, 0.1}, "phase")
	hv.With("local").Observe(0.002)
	hv.With("global").Observe(0.2)
	r.Func("qasom_registry_services", "Published services (live).", func() float64 { return 42 })
	// Fixed-label build info (RegisterBuildInfo itself stamps the live
	// toolchain version, which a golden file cannot pin).
	r.GaugeVec("qasom_build_info",
		"Build metadata of the running binary (value is always 1).",
		"version", "goversion").With("v1.2.3", "go1.x").Set(1)
	return r
}

func TestPrometheusExpositionGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramExpositionCumulative parses the golden registry's output
// and checks the le-bucket series are cumulative, end at +Inf and agree
// with _count — the contract Prometheus scrapers rely on.
func TestHistogramExpositionCumulative(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	var buckets []uint64
	var sawInf bool
	var count uint64
	for _, line := range strings.Split(sb.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "qasom_select_seconds_bucket"):
			fields := strings.Fields(line)
			n, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			buckets = append(buckets, n)
			if strings.Contains(line, `le="+Inf"`) {
				sawInf = true
			}
		case strings.HasPrefix(line, "qasom_select_seconds_count"):
			fields := strings.Fields(line)
			n, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count = n
		}
	}
	if len(buckets) != 5 { // 4 finite bounds + +Inf
		t.Fatalf("got %d bucket lines, want 5", len(buckets))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Fatalf("buckets not cumulative: %v", buckets)
		}
	}
	if !sawInf {
		t.Fatal("missing le=\"+Inf\" bucket")
	}
	if buckets[len(buckets)-1] != count {
		t.Fatalf("+Inf bucket %d != count %d", buckets[len(buckets)-1], count)
	}
}
