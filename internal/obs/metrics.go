// Package obs is the middleware's unified telemetry layer (stdlib
// only): a concurrency-safe metrics registry (counters, gauges,
// fixed-bucket latency histograms with quantile snapshots), lightweight
// span tracing carried through context.Context, and an HTTP debug
// server exposing /metrics (Prometheus text exposition), /healthz,
// /debug/spans and net/http/pprof.
//
// The survey of composition middleware identifies runtime monitoring
// and management as a core middleware layer; obs is that layer for this
// repo: every stage of the composition pipeline (candidate lookup,
// QASSA local/global phases, execution, QoS monitoring, adaptation)
// reports into one Hub, so a slow Compose can be correlated with its
// phases and the adaptation loop's decisions are observable without
// editing code.
//
// All instrumentation is nil-safe: metric handles and spans may be nil
// (no Hub configured, or no Hub in the context) and every operation on
// them is a cheap no-op, so instrumented hot paths cost almost nothing
// when telemetry is off.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// atomicFloat is a float64 with atomic Add/Set/Load (CAS on the bits).
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing counter. The zero value is
// ready to use; a nil Counter is a no-op.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a value that can go up and down. A nil Gauge is a no-op.
type Gauge struct {
	v atomicFloat
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Set(v)
}

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are the default latency buckets in seconds, spanning the
// microsecond clustering runs to multi-second end-to-end executions the
// pipeline produces.
var DefBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5,
}

// Histogram is a fixed-bucket histogram. Observations are lock-free;
// snapshots may be marginally torn between the bucket counts and the
// sum (each field is individually atomic), which is the standard
// Prometheus client trade-off. A nil Histogram is a no-op.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
	ex     atomic.Pointer[Exemplar]
}

// Exemplar ties a recent observation of a histogram to the trace that
// produced it, so a scraped latency distribution links back to one
// concrete request in /debug/spans and /debug/requests.
type Exemplar struct {
	// TraceID is the hex trace ID of the request (SpanContext.TraceIDString).
	TraceID string
	// Value is the observed value.
	Value float64
	// Time is when the observation was taken.
	Time time.Time
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records one value and tags the histogram with the
// trace that produced it (last writer wins; an empty traceID degrades
// to a plain Observe).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID != "" {
		h.ex.Store(&Exemplar{TraceID: traceID, Value: v, Time: time.Now()})
	}
}

// Exemplar returns the most recent trace-tagged observation, if any.
func (h *Histogram) Exemplar() (Exemplar, bool) {
	if h == nil {
		return Exemplar{}, false
	}
	if e := h.ex.Load(); e != nil {
		return *e, true
	}
	return Exemplar{}, false
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra final
	// entry for the +Inf bucket. Counts are per-bucket, not cumulative.
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
	// Exemplar is the most recent trace-tagged observation (nil when
	// the histogram never saw one).
	Exemplar *Exemplar
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if e := h.ex.Load(); e != nil {
		cp := *e
		s.Exemplar = &cp
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) from the buckets with
// linear interpolation inside the containing bucket; observations in
// the +Inf bucket report the highest finite bound. Returns 0 when the
// histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// metric kinds for the registry's families.
const (
	kindCounter = iota
	kindGauge
	kindHistogram
	kindFunc
)

func kindName(k int) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// family is one named metric with a fixed label-name set and one child
// per label-value combination.
type family struct {
	name   string
	help   string
	kind   int
	labels []string
	bounds []float64 // histogram families only

	mu       sync.RWMutex
	children map[string]any // joined label values -> *Counter/*Gauge/*Histogram
	fn       func() float64 // kindFunc only
}

// labelSep joins label values into a child key; it cannot occur in
// valid UTF-8 label values' first byte position ambiguity because it is
// a dedicated separator byte.
const labelSep = "\xff"

func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q expects %d label value(s), got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	switch f.kind {
	case kindCounter:
		c = &Counter{}
	case kindGauge:
		c = &Gauge{}
	case kindHistogram:
		c = newHistogram(f.bounds)
	default:
		panic(fmt.Sprintf("obs: metric %q is a func metric and has no children", f.name))
	}
	f.children[key] = c
	return c
}

// Registry is a concurrency-safe metric registry. Metric constructors
// are get-or-create: calling Counter twice with the same name returns
// the same handle, so instrumented packages can fetch handles on their
// hot paths without coordination. A nil Registry returns nil handles
// (which are themselves no-ops).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup gets or creates a family, panicking on kind or label-arity
// conflicts (programmer error: two call sites disagree on a name).
func (r *Registry) lookup(name, help string, kind int, labels []string, bounds []float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		f, ok = r.families[name]
		if !ok {
			f = &family{
				name:     name,
				help:     help,
				kind:     kind,
				labels:   append([]string(nil), labels...),
				bounds:   bounds,
				children: make(map[string]any),
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s with %d label(s), was %s with %d",
			name, kindName(kind), len(labels), kindName(f.kind), len(f.labels)))
	}
	return f
}

// Counter returns the (label-less) counter with the given name.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, nil).child(nil).(*Counter)
}

// Gauge returns the (label-less) gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, nil).child(nil).(*Gauge)
}

// Histogram returns the (label-less) histogram with the given name;
// nil bounds mean DefBuckets. Bounds are fixed at first registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, nil, bounds).child(nil).(*Histogram)
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec returns the counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, kindCounter, labelNames, nil)}
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(labelValues).(*Counter)
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// GaugeVec returns the gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookup(name, help, kindGauge, labelNames, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(labelValues).(*Gauge)
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec returns the histogram family with the given label names;
// nil bounds mean DefBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, labelNames, bounds)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(labelValues).(*Histogram)
}

// Func registers a callback rendered as a gauge on every scrape (live
// state such as registry size or cache counters owned elsewhere).
// Re-registering the same name replaces the callback: several
// middleware instances may share one registry and the freshest
// instance's view wins.
func (r *Registry) Func(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, kindFunc, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// SeriesSnapshot is one (label values, value) pair of a metric.
type SeriesSnapshot struct {
	// Labels maps label names to values; nil for label-less metrics.
	Labels map[string]string
	// Value holds counter/gauge values (counters as float).
	Value float64
	// Histogram is set for histogram series.
	Histogram *HistogramSnapshot
}

// MetricSnapshot is a point-in-time copy of one metric family.
type MetricSnapshot struct {
	Name   string
	Help   string
	Kind   string // "counter", "gauge" or "histogram"
	Series []SeriesSnapshot
}

// Snapshot copies every registered metric, sorted by name (series
// sorted by label values). It is safe to call concurrently with
// observations.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]MetricSnapshot, 0, len(fams))
	for _, f := range fams {
		ms := MetricSnapshot{Name: f.name, Help: f.help, Kind: kindName(f.kind)}
		if f.kind == kindFunc {
			f.mu.RLock()
			fn := f.fn
			f.mu.RUnlock()
			if fn == nil {
				continue
			}
			ms.Series = []SeriesSnapshot{{Value: fn()}}
			out = append(out, ms)
			continue
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			var ss SeriesSnapshot
			if len(f.labels) > 0 {
				vals := strings.Split(k, labelSep)
				ss.Labels = make(map[string]string, len(f.labels))
				for i, name := range f.labels {
					ss.Labels[name] = vals[i]
				}
			}
			switch c := f.children[k].(type) {
			case *Counter:
				ss.Value = float64(c.Value())
			case *Gauge:
				ss.Value = c.Value()
			case *Histogram:
				h := c.Snapshot()
				ss.Histogram = &h
			}
			ms.Series = append(ms.Series, ss)
		}
		f.mu.RUnlock()
		out = append(out, ms)
	}
	return out
}
