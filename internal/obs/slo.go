package obs

import (
	"fmt"
	"sync"
	"time"
)

// SLOConfig describes one service-level objective over a request
// stream: an availability target, an optional per-request latency
// objective, and the rolling windows burn rates are computed over.
type SLOConfig struct {
	// Name labels the objective in metrics ("serving" when empty).
	Name string
	// Availability is the target success fraction in (0,1), e.g. 0.999;
	// 0 means 0.999. The error budget is 1 − Availability.
	Availability float64
	// LatencyObjective, when > 0, makes a request bad when it exceeds
	// this duration even if it succeeded (the "p99 < 250µs" style
	// objective: attainment is the fraction of requests within the
	// objective, so holding it at the availability target bounds the
	// tail quantile).
	LatencyObjective time.Duration
	// Windows are the rolling windows, shortest first; nil means
	// {1m, 5m, 1h}. The shortest window drives FastBurn. Granularity is
	// one second; windows shorter than a second are rounded up.
	Windows []time.Duration
	// FastBurnThreshold is the burn rate over the shortest window at
	// which FastBurn trips (and /healthz degrades to 503); 0 means 14 —
	// the classic "2% of a 30-day budget in an hour" fast-burn alarm
	// rate, scaled to whatever windows are configured.
	FastBurnThreshold float64
	// Clock overrides time.Now (test seam).
	Clock func() time.Time
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Name == "" {
		c.Name = "serving"
	}
	if c.Availability <= 0 || c.Availability >= 1 {
		c.Availability = 0.999
	}
	if len(c.Windows) == 0 {
		c.Windows = []time.Duration{time.Minute, 5 * time.Minute, time.Hour}
	}
	if c.FastBurnThreshold <= 0 {
		c.FastBurnThreshold = 14
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

type sloBucket struct{ total, bad uint64 }

// SLOEngine tracks one SLO over per-second buckets sized to the
// longest window, computing multi-window burn rates:
//
//	burn = (bad requests / total requests in window) / (1 − target)
//
// A burn rate of 1 consumes the error budget exactly at the rate the
// objective allows; the fast-burn alarm trips when the shortest window
// burns at FastBurnThreshold× that rate. All methods are nil-safe and
// safe for concurrent use.
type SLOEngine struct {
	cfg    SLOConfig
	budget float64

	mu      sync.Mutex
	buckets []sloBucket
	head    int   // index of the bucket for headSec
	headSec int64 // unix second the head bucket covers (0 = no data yet)
	total   uint64
	bad     uint64

	burn []*Gauge // per cfg.Windows, resolved once (hot-path: no name lookups)
	reqs *Counter
	bads *Counter
}

// NewSLOEngine creates an engine for cfg, registering its gauges and
// counters in r (nil r skips metrics):
//
//	qasom_slo_burn_rate{slo,window}  multi-window burn-rate gauges
//	qasom_slo_requests_total{slo}    requests observed
//	qasom_slo_bad_total{slo}         requests outside the objective
func NewSLOEngine(cfg SLOConfig, r *Registry) *SLOEngine {
	cfg = cfg.withDefaults()
	longest := cfg.Windows[0]
	for _, w := range cfg.Windows {
		if w > longest {
			longest = w
		}
	}
	size := int((longest + time.Second - 1) / time.Second)
	if size < 1 {
		size = 1
	}
	e := &SLOEngine{
		cfg:     cfg,
		budget:  1 - cfg.Availability,
		buckets: make([]sloBucket, size),
	}
	if r != nil {
		burn := r.GaugeVec("qasom_slo_burn_rate",
			"Error-budget burn rate per rolling window (1 = burning exactly at the objective's rate).",
			"slo", "window")
		e.burn = make([]*Gauge, len(cfg.Windows))
		for i, w := range cfg.Windows {
			e.burn[i] = burn.With(cfg.Name, w.String())
		}
		e.reqs = r.CounterVec("qasom_slo_requests_total",
			"Requests observed by the SLO engine.", "slo").With(cfg.Name)
		e.bads = r.CounterVec("qasom_slo_bad_total",
			"Requests outside the SLO (failed, or over the latency objective).", "slo").With(cfg.Name)
	}
	return e
}

// Config returns the engine's effective (defaulted) configuration.
func (e *SLOEngine) Config() SLOConfig { return e.cfg }

// advance rolls the ring forward to nowSec, zeroing skipped seconds.
// Caller holds e.mu.
func (e *SLOEngine) advance(nowSec int64) {
	if e.headSec == 0 {
		e.headSec = nowSec
		return
	}
	if gap := nowSec - e.headSec; gap >= int64(len(e.buckets)) {
		for i := range e.buckets {
			e.buckets[i] = sloBucket{}
		}
		e.headSec = nowSec
		return
	}
	for e.headSec < nowSec {
		e.headSec++
		e.head = (e.head + 1) % len(e.buckets)
		e.buckets[e.head] = sloBucket{}
	}
}

// windowCounts sums the buckets covering the trailing window. Caller
// holds e.mu.
func (e *SLOEngine) windowCounts(w time.Duration) (total, bad uint64) {
	n := int((w + time.Second - 1) / time.Second)
	if n > len(e.buckets) {
		n = len(e.buckets)
	}
	for i := 0; i < n; i++ {
		b := e.buckets[(e.head-i+len(e.buckets))%len(e.buckets)]
		total += b.total
		bad += b.bad
	}
	return total, bad
}

// Observe records one request outcome: err non-nil, or a duration over
// the latency objective, consumes error budget.
func (e *SLOEngine) Observe(d time.Duration, err error) {
	if e == nil {
		return
	}
	isBad := err != nil || (e.cfg.LatencyObjective > 0 && d > e.cfg.LatencyObjective)
	now := e.cfg.Clock().Unix()
	e.mu.Lock()
	e.advance(now)
	e.buckets[e.head].total++
	e.total++
	if isBad {
		e.buckets[e.head].bad++
		e.bad++
	}
	for i, w := range e.cfg.Windows {
		total, bad := e.windowCounts(w)
		rate := 0.0
		if total > 0 {
			rate = (float64(bad) / float64(total)) / e.budget
		}
		if e.burn != nil {
			e.burn[i].Set(rate)
		}
	}
	e.mu.Unlock()
	e.reqs.Inc()
	if isBad {
		e.bads.Inc()
	}
}

// BurnRate returns the burn rate over the trailing window (0 when the
// window holds no requests).
func (e *SLOEngine) BurnRate(w time.Duration) float64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.advance(e.cfg.Clock().Unix())
	total, bad := e.windowCounts(w)
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / e.budget
}

// FastBurn reports whether the shortest window is burning budget at or
// beyond the fast-burn threshold — the signal /healthz degrades on.
func (e *SLOEngine) FastBurn() bool {
	if e == nil {
		return false
	}
	return e.BurnRate(e.cfg.Windows[0]) >= e.cfg.FastBurnThreshold
}

// Attainment returns the fraction of every request ever observed that
// met the objective (1 when nothing was observed) — the number BENCH
// runs report as "SLO attainment".
func (e *SLOEngine) Attainment() float64 {
	if e == nil {
		return 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.total == 0 {
		return 1
	}
	return 1 - float64(e.bad)/float64(e.total)
}

// Status summarises the engine for /healthz bodies.
func (e *SLOEngine) Status() string {
	if e == nil {
		return "ok"
	}
	short := e.cfg.Windows[0]
	return fmt.Sprintf("slo=%s target=%g burn[%s]=%.2f fast_burn=%v",
		e.cfg.Name, e.cfg.Availability, short, e.BurnRate(short), e.FastBurn())
}
