package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler returns the hub's debug mux:
//
//	/metrics         Prometheus text exposition of the metrics registry
//	/healthz         liveness probe: "ok", or 503 when the hub's SLO
//	                 engine reports a fast error-budget burn
//	/debug/spans     JSON snapshot of the recent span trees (stitched
//	                 across processes by trace ID)
//	/debug/requests  JSON snapshot of the flight recorder; query params
//	                 tenant=<id>, degraded=1, slowest=<n> filter it
//	/debug/pprof     the standard Go profiling endpoints
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := h.Metrics.WritePrometheus(w); err != nil {
			// Headers are gone; the truncated body is all we can signal.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if h.SLO.FastBurn() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "degraded: "+h.SLO.Status())
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		spans := h.Tracer.Snapshot()
		if spans == nil {
			spans = []SpanSnapshot{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(spans)
	})
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		params := r.URL.Query()
		q := FlightQuery{}
		if params.Has("tenant") {
			q.TenantSet = true
			q.Tenant = params.Get("tenant")
		}
		switch params.Get("degraded") {
		case "1", "true", "yes":
			q.Degraded = true
		}
		if n, err := strconv.Atoi(params.Get("slowest")); err == nil && n > 0 {
			q.Slowest = n
		}
		recs := h.Flight.Snapshot(q)
		if recs == nil {
			recs = []RequestRecord{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(recs)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug exposes the hub's Handler on an HTTP listener until ctx is
// cancelled. It returns the bound address immediately and serves in the
// background; the returned stop function shuts the server down and
// waits for in-flight requests (bounded by a short grace period).
func ServeDebug(ctx context.Context, addr string, h *Hub) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen: %w", err)
	}
	srv := &http.Server{Handler: h.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln) // returns on Shutdown/Close
	}()
	serveCtx, cancel := context.WithCancel(ctx)
	go func() {
		<-serveCtx.Done()
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer shutCancel()
		_ = srv.Shutdown(shutCtx)
	}()
	stop := func() {
		cancel()
		<-done
	}
	return ln.Addr().String(), stop, nil
}
