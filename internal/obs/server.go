package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the hub's debug mux:
//
//	/metrics      Prometheus text exposition of the metrics registry
//	/healthz      liveness probe ("ok")
//	/debug/spans  JSON snapshot of the recent span trees
//	/debug/pprof  the standard Go profiling endpoints
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := h.Metrics.WritePrometheus(w); err != nil {
			// Headers are gone; the truncated body is all we can signal.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		spans := h.Tracer.Snapshot()
		if spans == nil {
			spans = []SpanSnapshot{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(spans)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug exposes the hub's Handler on an HTTP listener until ctx is
// cancelled. It returns the bound address immediately and serves in the
// background; the returned stop function shuts the server down and
// waits for in-flight requests (bounded by a short grace period).
func ServeDebug(ctx context.Context, addr string, h *Hub) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen: %w", err)
	}
	srv := &http.Server{Handler: h.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln) // returns on Shutdown/Close
	}()
	serveCtx, cancel := context.WithCancel(ctx)
	go func() {
		<-serveCtx.Done()
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer shutCancel()
		_ = srv.Shutdown(shutCtx)
	}()
	stop := func() {
		cancel()
		<-done
	}
	return ln.Addr().String(), stop, nil
}
