package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// None of these may panic, and the handles must be usable no-ops.
	c := r.Counter("x", "")
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Fatal("nil counter should report 0")
	}
	g := r.Gauge("x", "")
	g.Set(1)
	g.Add(1)
	h := r.Histogram("x", "", nil)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Snapshot().Count != 0 {
		t.Fatal("nil histogram should be empty")
	}
	r.CounterVec("x", "", "l").With("v").Inc()
	r.GaugeVec("x", "", "l").With("v").Set(1)
	r.HistogramVec("x", "", nil, "l").With("v").Observe(1)
	r.Func("x", "", func() float64 { return 1 })
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	var tr *Tracer
	if tr.Snapshot() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer should be empty")
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs_total", "requests", "phase")
	v.With("local").Add(3)
	v.With("global").Inc()
	if v.With("local").Value() != 3 || v.With("global").Value() != 1 {
		t.Fatal("labelled children not independent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("label-arity mismatch should panic")
		}
	}()
	v.With("a", "b")
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.05) // second bucket
	}
	h.Observe(5) // +Inf bucket
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if got := s.Counts[0]; got != 90 {
		t.Fatalf("bucket0 = %d, want 90", got)
	}
	if got := s.Counts[3]; got != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", got)
	}
	if q := s.Quantile(0.5); q <= 0 || q > 0.01 {
		t.Fatalf("p50 = %v, want within (0, 0.01]", q)
	}
	if q := s.Quantile(0.95); q <= 0.01 || q > 0.1 {
		t.Fatalf("p95 = %v, want within (0.01, 0.1]", q)
	}
	// The +Inf observation reports the highest finite bound.
	if q := s.Quantile(1); q != 1 {
		t.Fatalf("p100 = %v, want 1", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramBoundaryIsLE(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "", []float64{1, 2})
	h.Observe(1) // le="1" must include the boundary value
	s := h.Snapshot()
	if s.Counts[0] != 1 {
		t.Fatalf("boundary observation landed in bucket %v, want bucket 0", s.Counts)
	}
}

func TestFuncMetricReplaces(t *testing.T) {
	r := NewRegistry()
	r.Func("live", "live value", func() float64 { return 1 })
	r.Func("live", "live value", func() float64 { return 2 })
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Series[0].Value != 2 {
		t.Fatalf("func metric should be replaced, got %+v", snap)
	}
}

func TestSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help a").Inc()
	r.GaugeVec("b", "help b", "svc").With("s1").Set(7)
	r.Histogram("c_seconds", "help c", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("got %d families, want 3", len(snap))
	}
	if snap[0].Name != "a_total" || snap[1].Name != "b" || snap[2].Name != "c_seconds" {
		t.Fatalf("families not sorted: %v %v %v", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if snap[1].Series[0].Labels["svc"] != "s1" || snap[1].Series[0].Value != 7 {
		t.Fatalf("labelled series wrong: %+v", snap[1].Series[0])
	}
	if snap[2].Series[0].Histogram == nil || snap[2].Series[0].Histogram.Count != 1 {
		t.Fatalf("histogram series wrong: %+v", snap[2].Series[0])
	}
}

func TestConcurrentMetricOps(t *testing.T) {
	r := NewRegistry()
	const goroutines, iters = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				r.Counter("n_total", "").Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h_seconds", "", nil).Observe(float64(j) / iters)
				r.CounterVec("v_total", "", "k").With("a").Inc()
			}
		}()
	}
	// Concurrent scrapes while writing.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	want := uint64(goroutines * iters)
	if got := r.Counter("n_total", "").Value(); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("g", "").Value(); got != float64(want) {
		t.Fatalf("gauge = %v, want %v", got, float64(want))
	}
	if got := r.Histogram("h_seconds", "", nil).Snapshot().Count; got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
}

func TestAtomicFloat(t *testing.T) {
	var f atomicFloat
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				f.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := f.Load(); math.Abs(got-2000) > 1e-9 {
		t.Fatalf("atomicFloat = %v, want 2000", got)
	}
}
