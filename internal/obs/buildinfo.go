package obs

import (
	"runtime"
	"runtime/debug"
)

// RegisterBuildInfo exposes the process's build metadata as the
// conventional constant-1 info gauge:
//
//	qasom_build_info{version="...",goversion="..."} 1
//
// version is the main module's version from the embedded build info
// ("(devel)" for a plain `go build`). Safe to call more than once; the
// same labels resolve to the same child gauge.
func RegisterBuildInfo(r *Registry) {
	if r == nil {
		return
	}
	version := "(devel)"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	r.GaugeVec("qasom_build_info",
		"Build metadata of the running binary (value is always 1).",
		"version", "goversion").With(version, runtime.Version()).Set(1)
}
