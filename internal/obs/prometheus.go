package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): families sorted by name, one
// HELP/TYPE pair per family, histogram series expanded to cumulative
// `_bucket{le=...}` lines plus `_sum` and `_count`. Func metrics render
// as gauges evaluated at scrape time.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	if f.kind == kindFunc {
		f.mu.RLock()
		fn := f.fn
		f.mu.RUnlock()
		if fn == nil {
			return nil
		}
		if err := writeHeader(w, f.name, f.help, "gauge"); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(fn()))
		return err
	}

	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	children := make(map[string]any, len(f.children))
	for k, v := range f.children {
		children[k] = v
	}
	f.mu.RUnlock()
	if len(keys) == 0 {
		return nil
	}
	sort.Strings(keys)

	if err := writeHeader(w, f.name, f.help, kindName(f.kind)); err != nil {
		return err
	}
	for _, k := range keys {
		var values []string
		if len(f.labels) > 0 {
			values = strings.Split(k, labelSep)
		}
		switch c := children[k].(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n",
				f.name, labelString(f.labels, values, "", ""), c.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				f.name, labelString(f.labels, values, "", ""), formatFloat(c.Value())); err != nil {
				return err
			}
		case *Histogram:
			if err := writeHistogram(w, f.name, f.labels, values, c.Snapshot()); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, labels, values []string, s HistogramSnapshot) error {
	cum := uint64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		le := formatFloat(bound)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, labelString(labels, values, "le", le), cum); err != nil {
			return err
		}
	}
	cum += s.Counts[len(s.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		name, labelString(labels, values, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		name, labelString(labels, values, "", ""), formatFloat(s.Sum)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_count%s %d\n",
		name, labelString(labels, values, "", ""), s.Count); err != nil {
		return err
	}
	// Exemplars render as plain comments: text-format 0.0.4 has no
	// exemplar syntax, and scrapers skip every # line that is not
	// HELP/TYPE, so the trace link is visible to humans without
	// breaking any parser.
	if s.Exemplar != nil {
		if _, err := fmt.Fprintf(w, "# EXEMPLAR %s%s trace_id=%s value=%s\n",
			name, labelString(labels, values, "", ""),
			s.Exemplar.TraceID, formatFloat(s.Exemplar.Value)); err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// labelString renders `{a="x",b="y"}` (empty string when there are no
// labels); extra/extraVal append one more pair (the histogram `le`).
func labelString(labels, values []string, extra, extraVal string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
