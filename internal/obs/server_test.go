package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	hub := NewHub()
	hub.Metrics.Counter("up_total", "ups").Inc()
	ctx := WithHub(context.Background(), hub)
	_, s := StartSpan(ctx, "probe")
	s.End()

	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	body, ct := get(t, srv.URL+"/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(body, "# TYPE up_total counter") || !strings.Contains(body, "up_total 1") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}

	body, _ = get(t, srv.URL+"/healthz")
	if strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %q", body)
	}

	body, ct = get(t, srv.URL+"/debug/spans")
	if ct != "application/json" {
		t.Fatalf("/debug/spans content-type = %q", ct)
	}
	var spans []SpanSnapshot
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/debug/spans not JSON: %v\n%s", err, body)
	}
	if len(spans) != 1 || spans[0].Name != "probe" {
		t.Fatalf("/debug/spans = %+v", spans)
	}

	body, _ = get(t, srv.URL+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected:\n%.200s", body)
	}
}

func TestDebugSpansEmptyIsJSONArray(t *testing.T) {
	srv := httptest.NewServer(NewHub().Handler())
	defer srv.Close()
	body, _ := get(t, srv.URL+"/debug/spans")
	var spans []SpanSnapshot
	if err := json.Unmarshal([]byte(body), &spans); err != nil || spans == nil {
		t.Fatalf("empty span snapshot should be [], got %q (err %v)", body, err)
	}
}

func TestServeDebug(t *testing.T) {
	hub := NewHub()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, stop, err := ServeDebug(ctx, "127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := get(t, "http://"+addr+"/healthz")
	if strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz over ServeDebug = %q", body)
	}
	stop()
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server should be down after stop")
	}
}

func get(t *testing.T, url string) (body, contentType string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(b), resp.Header.Get("Content-Type")
}
