package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// PhaseTimings splits one request's wall time across the composition
// pipeline phases. Zero fields mean "phase did not run" (e.g. a
// plan-cache hit skips lookup/local/global).
type PhaseTimings struct {
	Resolve time.Duration `json:"resolve,omitempty"`
	Lookup  time.Duration `json:"lookup,omitempty"`
	Local   time.Duration `json:"local,omitempty"`
	Global  time.Duration `json:"global,omitempty"`
}

// BindingRecord is one activity→service binding of a selection, with
// the bound service's contribution to the composition utility (the
// per-candidate utility QASSA ranked it by).
type BindingRecord struct {
	Activity string  `json:"activity"`
	Service  string  `json:"service"`
	Utility  float64 `json:"utility"`
}

// RequestRecord is one entry of the flight recorder: everything needed
// to explain after the fact why a request was slow, degraded, or bound
// the way it was — without re-running it.
type RequestRecord struct {
	// Kind tags the pipeline stage that produced the record: "compose",
	// "execute", or "dist-select" (a distributed selection observed at
	// the core layer; a distributed compose emits both).
	Kind string `json:"kind"`
	// TraceID links the record to its span tree in /debug/spans.
	TraceID string `json:"trace_id,omitempty"`
	// Tenant is the logical environment the request ran in ("default"
	// for the zero tenant; empty when the layer has no tenant notion).
	Tenant string `json:"tenant,omitempty"`
	// Task is the task-tree fingerprint (hex) or task name.
	Task     string        `json:"task,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Phases   PhaseTimings  `json:"phases"`
	// CacheHit marks a selection served from the plan cache; CacheMiss
	// names the miss cause otherwise ("cold" — no entry; "epoch" — entry
	// invalidated by registry churn; empty for uncacheable requests).
	CacheHit  bool   `json:"cache_hit,omitempty"`
	CacheMiss string `json:"cache_miss,omitempty"`
	// Degraded and DegradedCauses mirror the selection result: activities
	// whose coordinator exhausted the resilience policy and fell back to
	// requester-side selection, with the exhausting failure.
	Degraded       bool              `json:"degraded,omitempty"`
	DegradedCauses map[string]string `json:"degraded_causes,omitempty"`
	// Resilience work of a distributed selection.
	Retries      int `json:"retries,omitempty"`
	Hedges       int `json:"hedges,omitempty"`
	BreakerSkips int `json:"breaker_skips,omitempty"`
	Fallbacks    int `json:"fallbacks,omitempty"`
	// Selection outcome.
	Feasible bool            `json:"feasible,omitempty"`
	Utility  float64         `json:"utility,omitempty"`
	Bindings []BindingRecord `json:"bindings,omitempty"`
	// Events lists adaptation/substitution activity ("substitutions=2",
	// "behaviour-switches=1", ...).
	Events []string `json:"events,omitempty"`
	// Err is the request's failure, if it failed.
	Err string `json:"error,omitempty"`
}

// clone deep-copies the record's reference fields so ring entries never
// alias caller-owned state.
func (r RequestRecord) clone() RequestRecord {
	cp := r
	if r.DegradedCauses != nil {
		cp.DegradedCauses = make(map[string]string, len(r.DegradedCauses))
		for k, v := range r.DegradedCauses {
			cp.DegradedCauses[k] = v
		}
	}
	if r.Bindings != nil {
		cp.Bindings = append([]BindingRecord(nil), r.Bindings...)
	}
	if r.Events != nil {
		cp.Events = append([]string(nil), r.Events...)
	}
	return cp
}

// DefaultFlightCapacity is the record retention a FlightRecorder gets
// when NewFlightRecorder is called with capacity 0 (the NewHub
// default).
const DefaultFlightCapacity = 256

// flightSlot is one ring entry with its own lock. The ticket counter
// spreads concurrent writers across distinct slots, so writers never
// contend with each other in steady state; a slot is busy only while a
// snapshot copies it, or when a writer was lapped by a full ring of
// newer records while stalled.
type flightSlot struct {
	mu sync.Mutex
	// seq is the 1-based ticket of the stored record (0 = empty). It
	// orders snapshots oldest-first and keeps a lapped straggler from
	// overwriting a newer record.
	seq uint64
	rec RequestRecord
}

// FlightRecorder keeps a bounded ring of the most recent request
// records, mirroring the Tracer's ring semantics: Record overwrites the
// oldest entry beyond capacity, Total counts every record ever taken.
// Record never blocks: writers take an atomic ticket and land on that
// ticket's slot, so concurrent Records go to different slots and all
// succeed; only a record whose slot is momentarily held — by a
// /debug/requests snapshot, or by a writer lapped a whole ring — is
// dropped and counted instead. Diagnostics must not be able to stall
// serving. All methods are nil-safe and safe for concurrent use.
type FlightRecorder struct {
	ring    []flightSlot
	tickets atomic.Uint64
	total   atomic.Uint64
	dropped atomic.Uint64
}

// NewFlightRecorder creates a recorder retaining the last capacity
// records; 0 means DefaultFlightCapacity. Negative capacities are a
// programmer error and panic.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 0 {
		panic(fmt.Sprintf("obs: NewFlightRecorder capacity must be >= 0, got %d", capacity))
	}
	if capacity == 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{ring: make([]flightSlot, capacity)}
}

// Record appends one request record (deep-copied) to the ring. It is
// drop-don't-block: the slot a record's ticket routes it to is free
// unless a snapshot is copying that exact slot (or the writer slept
// long enough to be lapped), and a busy slot costs one failed TryLock
// and a counter bump, never a wait on the serving path.
func (f *FlightRecorder) Record(rec RequestRecord) {
	if f == nil {
		return
	}
	cp := rec.clone()
	ticket := f.tickets.Add(1)
	slot := &f.ring[(ticket-1)%uint64(len(f.ring))]
	if !slot.mu.TryLock() {
		f.dropped.Add(1)
		return
	}
	if ticket < slot.seq {
		// Lapped: a full ring of newer records landed while this writer
		// was stalled between ticket and lock. Keep the newer record.
		slot.mu.Unlock()
		f.dropped.Add(1)
		return
	}
	slot.seq = ticket
	slot.rec = cp
	slot.mu.Unlock()
	f.total.Add(1)
}

// Total counts every record ever taken (monotonic; the ring only
// retains the most recent ones). Dropped records are not included.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	return f.total.Load()
}

// Dropped counts records discarded because their ring slot was busy (a
// snapshot mid-copy, or the writer lapped by a full ring) when Record
// arrived (monotonic).
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	return f.dropped.Load()
}

// FlightQuery filters a Snapshot (the /debug/requests query surface).
type FlightQuery struct {
	// Tenant keeps only records of that tenant when TenantSet is true
	// (the two-field shape because the default tenant renders as
	// "default", and an empty filter must mean "all tenants").
	Tenant    string
	TenantSet bool
	// Degraded keeps only degraded records.
	Degraded bool
	// Slowest returns only the N longest-running matching records,
	// slowest first; 0 returns every match oldest-first.
	Slowest int
}

// Snapshot returns deep copies of the retained records matching q,
// oldest first (or slowest first under q.Slowest). Each slot is held
// only long enough for a shallow copy — safe because writers replace a
// slot's record wholesale with a freshly cloned value rather than
// mutating it in place — so a concurrent Record contends on at most one
// slot at a time.
func (f *FlightRecorder) Snapshot(q FlightQuery) []RequestRecord {
	if f == nil {
		return nil
	}
	type tagged struct {
		seq uint64
		rec RequestRecord
	}
	recs := make([]tagged, 0, len(f.ring))
	for i := range f.ring {
		slot := &f.ring[i]
		slot.mu.Lock()
		if slot.seq != 0 {
			recs = append(recs, tagged{slot.seq, slot.rec})
		}
		slot.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	out := make([]RequestRecord, 0, len(recs))
	for _, tr := range recs {
		r := tr.rec
		if q.TenantSet && r.Tenant != q.Tenant {
			continue
		}
		if q.Degraded && !r.Degraded {
			continue
		}
		out = append(out, r.clone())
	}
	if q.Slowest > 0 {
		sort.SliceStable(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
		if len(out) > q.Slowest {
			out = out[:q.Slowest]
		}
	}
	return out
}
