package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"qasom/internal/cluster"
	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/randx"
	"qasom/internal/registry"
	"qasom/internal/resilience"
)

// The distributed version of QASSA (Chapter IV §4, evaluated in
// Fig. VI.12) spreads the local selection phase over the devices of an
// ad hoc environment: each coordinator device clusters the candidates of
// the activities it is responsible for, in parallel, and the requester's
// device gathers the ranked shortlists and runs the global phase.
//
// Ad hoc environments lose coordinators mid-selection, so the gather is
// fault-tolerant: every per-coordinator exchange goes through the shared
// resilience policy (per-attempt deadlines, bounded retries with
// jittered backoff rotating across the replicas that hold the same
// activity, optional hedged second requests, per-peer breakers), and
// when the policy is exhausted the requester degrades gracefully — it
// runs that activity's local phase itself from its own registry view and
// records the degradation in the result instead of failing the
// composition.

// LocalRequest is the unit of work shipped to a coordinator device.
type LocalRequest struct {
	// ActivityID names the abstract activity to rank candidates for.
	ActivityID string
	// Properties carries the request's QoS property definitions (the
	// coordinator rebuilds the property set from them).
	Properties []*qos.Property
	// Weights is the requester's preference vector.
	Weights qos.Weights
	// Local holds the activity's local constraints; candidates violating
	// them are dropped device-side before clustering.
	Local qos.Constraints
	// K is the cluster count per property.
	K int
	// Seeding selects the K-means initialisation.
	Seeding cluster.Seeding
	// Seed drives the coordinator's K-means randomness.
	Seed int64
}

// LocalSelector is a device able to run the local phase for an activity.
type LocalSelector interface {
	LocalSelect(ctx context.Context, req LocalRequest) (*LocalResult, error)
}

// evalLocalRequest runs the local phase for one activity over the given
// candidate view: local-constraint filtering, then clustering-based
// ranking. It is the single code path shared by coordinator devices and
// the requester's degraded fallback, so a fallback computes exactly what
// the lost coordinator would have (same seed, same result).
func evalLocalRequest(origin string, cands []registry.Candidate, req LocalRequest) (*LocalResult, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: %s hosts no candidates for %q", origin, req.ActivityID)
	}
	ps, err := qos.NewPropertySet(req.Properties...)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", origin, err)
	}
	if len(req.Local) > 0 {
		if err := req.Local.Validate(ps); err != nil {
			return nil, fmt.Errorf("core: %s: %w", origin, err)
		}
		kept := make([]registry.Candidate, 0, len(cands))
		for _, c := range cands {
			if req.Local.Satisfied(ps, c.Vector) {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("core: %s: no candidate for %q meets the local constraints",
				origin, req.ActivityID)
		}
		cands = kept
	}
	return localSelect(req.ActivityID, cands, ps, req.Weights, req.K, req.Seeding, randx.New(req.Seed))
}

// DeviceNode is a coordinator device holding candidate services for a
// set of activities; it serves LocalSelect either in-process or behind a
// TCP endpoint (see ServeTCP).
type DeviceNode struct {
	// Name identifies the device (diagnostics only).
	Name string
	// Latency simulates the wireless round-trip added to every request
	// served by this device.
	Latency time.Duration

	mu         sync.RWMutex
	candidates map[string][]registry.Candidate
}

// NewDeviceNode creates an empty coordinator device.
func NewDeviceNode(name string, latency time.Duration) *DeviceNode {
	return &DeviceNode{
		Name:       name,
		Latency:    latency,
		candidates: make(map[string][]registry.Candidate),
	}
}

// Host assigns the candidate list of an activity to this device.
func (d *DeviceNode) Host(activityID string, cands []registry.Candidate) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.candidates[activityID] = append([]registry.Candidate(nil), cands...)
}

// Activities returns the activity IDs the device hosts.
func (d *DeviceNode) Activities() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.candidates))
	for id := range d.candidates {
		out = append(out, id)
	}
	return out
}

var _ LocalSelector = (*DeviceNode)(nil)

// LocalSelect runs the local phase for one hosted activity.
func (d *DeviceNode) LocalSelect(ctx context.Context, req LocalRequest) (*LocalResult, error) {
	ctx, span := obs.StartSpan(ctx, "device.localselect")
	span.Annotate("device", d.Name)
	span.Annotate("activity", req.ActivityID)
	defer span.End()
	if hub := obs.HubFrom(ctx); hub != nil {
		hub.Metrics.Counter("qasom_device_localselect_total",
			"Local-phase requests served by this coordinator device.").Inc()
	}
	if d.Latency > 0 {
		t := time.NewTimer(d.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, resilience.CauseErr(ctx)
		}
	}
	d.mu.RLock()
	cands := d.candidates[req.ActivityID]
	d.mu.RUnlock()
	return evalLocalRequest(fmt.Sprintf("device %q", d.Name), cands, req)
}

// DistConfig configures the resilience behaviour of a distributed
// selector.
type DistConfig struct {
	// Policy bounds every per-coordinator exchange (zero value: the
	// resilience defaults — 3 attempts, 5ms..250ms jittered backoff,
	// breaker at 4 consecutive failures). Set HedgeDelay to fire hedged
	// requests at replicas.
	Policy resilience.Policy
	// Fallback, when non-nil, holds the requester's own registry view
	// per activity: on exhausted policy the requester runs that
	// activity's local phase itself (graceful degradation) instead of
	// failing the selection, and flags the result degraded.
	Fallback map[string][]registry.Candidate
}

// DistributedSelector fans the local phase out to the coordinator
// replicas of every activity (in parallel, policy-wrapped) and runs the
// global phase on the gathered shortlists. Breaker state persists
// across Select calls, so a coordinator that kept failing is skipped
// until its cooldown expires.
type DistributedSelector struct {
	selector *Selector
	replicas map[string][]Transport
	policy   resilience.Policy
	fallback map[string][]registry.Candidate
	breakers *resilience.BreakerSet
}

// NewDistributedSelector builds a distributed selector; devices maps
// every task activity to the coordinator responsible for it (one
// in-process replica per activity, default policy, no fallback view —
// the transparent upgrade of the pre-resilience constructor).
func NewDistributedSelector(opts Options, devices map[string]LocalSelector) *DistributedSelector {
	replicas := make(map[string][]Transport, len(devices))
	for id, sel := range devices {
		name := "inproc/" + id
		if dn, ok := sel.(*DeviceNode); ok && dn.Name != "" {
			name = dn.Name
		}
		replicas[id] = []Transport{&InProcessTransport{Name: name, Selector: sel}}
	}
	return NewResilientDistributedSelector(opts, replicas, DistConfig{})
}

// NewResilientDistributedSelector builds a distributed selector over an
// explicit replica map: every activity may be held by several
// coordinators (retries rotate across them, hedges race them), and the
// config supplies the shared policy and the degraded-fallback view.
func NewResilientDistributedSelector(opts Options, replicas map[string][]Transport, cfg DistConfig) *DistributedSelector {
	cp := make(map[string][]Transport, len(replicas))
	for id, list := range replicas {
		cp[id] = append([]Transport(nil), list...)
	}
	var fb map[string][]registry.Candidate
	if cfg.Fallback != nil {
		fb = make(map[string][]registry.Candidate, len(cfg.Fallback))
		for id, list := range cfg.Fallback {
			fb[id] = append([]registry.Candidate(nil), list...)
		}
	}
	policy := cfg.Policy.WithDefaults()
	var breakers *resilience.BreakerSet
	if policy.BreakerThreshold > 0 {
		breakers = resilience.NewBreakerSet(policy.BreakerThreshold, policy.BreakerCooldown)
	}
	return &DistributedSelector{
		selector: NewSelector(opts),
		replicas: cp,
		policy:   policy,
		fallback: fb,
		breakers: breakers,
	}
}

// distMetrics bundles the distributed selector's telemetry handles; the
// zero value (no hub) is all-nil no-ops.
type distMetrics struct {
	retries      *obs.Counter
	hedges       *obs.Counter
	fallbacks    *obs.Counter
	breakerSkips *obs.Counter
	exchange     *obs.HistogramVec
	exchangeErrs *obs.CounterVec
}

func distMetricsFor(hub *obs.Hub) distMetrics {
	if hub == nil {
		return distMetrics{}
	}
	r := hub.Metrics
	return distMetrics{
		retries: r.Counter("qasom_dist_retries_total",
			"Distributed local-phase exchanges retried after a transient failure."),
		hedges: r.Counter("qasom_dist_hedges_total",
			"Hedged second requests fired at replica coordinators."),
		fallbacks: r.Counter("qasom_dist_fallbacks_total",
			"Activities degraded to requester-side local selection after policy exhaustion."),
		breakerSkips: r.Counter("qasom_dist_breaker_skips_total",
			"Coordinator replicas skipped because their breaker was open."),
		exchange: r.HistogramVec("qasom_dist_exchange_seconds",
			"Per-coordinator exchange latency (successful and failed attempts).", nil, "peer"),
		exchangeErrs: r.CounterVec("qasom_dist_exchange_failures_total",
			"Failed exchanges per coordinator.", "peer"),
	}
}

// observer adapts the metric handles to the resilience attempt hook;
// traceID (when non-empty) tags the per-peer latency series with the
// selection's trace as an exemplar.
func (m distMetrics) observer(traceID string) resilience.AttemptObserver {
	return func(peer string, d time.Duration, err error) {
		m.exchange.With(peer).ObserveExemplar(d.Seconds(), traceID)
		if err != nil {
			m.exchangeErrs.With(peer).Inc()
		}
	}
}

// Select runs the distributed algorithm. The returned result's stats
// report the parallel local-phase wall time and the global-phase time
// separately (the split Fig. VI.12 plots), plus the resilience work
// (retries, hedges, breaker skips, degraded fallbacks).
func (d *DistributedSelector) Select(ctx context.Context, req *Request) (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	acts := req.Task.Activities()
	opts := d.selector.opts.withDefaults(len(acts))
	for _, a := range acts {
		if len(d.replicas[a.ID]) == 0 && len(d.fallback[a.ID]) == 0 {
			return nil, fmt.Errorf("core: no device for activity %q", a.ID)
		}
	}
	ctx, span := obs.StartSpan(ctx, "qassa.distributed")
	defer span.End()
	hub := obs.HubFrom(ctx)
	met := distMetricsFor(hub)
	traceID := span.TraceID()
	observer := met.observer(traceID)

	startLocal := time.Now()
	type reply struct {
		lr       *LocalResult
		rst      resilience.Stats
		degraded bool
		cause    string
		err      error
	}
	replies := make([]reply, len(acts))
	var wg sync.WaitGroup
	for i, a := range acts {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			lreq := LocalRequest{
				ActivityID: id,
				Properties: req.Properties.Properties(),
				Weights:    req.weights(),
				Local:      req.Local[id],
				K:          opts.K,
				Seeding:    opts.Seeding,
				Seed:       opts.Seed,
			}
			reps := d.replicas[id]
			targets := make([]resilience.Target[*LocalResult], len(reps))
			for j, tr := range reps {
				tr := tr
				targets[j] = resilience.Target[*LocalResult]{
					Peer: tr.Peer(),
					Call: func(actx context.Context) (*LocalResult, error) {
						return tr.Exchange(actx, lreq)
					},
				}
			}
			// Backoff jitter derives from (seed, activity index): runs are
			// reproducible, goroutines never share a source.
			rng := randx.Derive(opts.Seed, int64(i))
			var lr *LocalResult
			var rst resilience.Stats
			var err error
			if len(targets) > 0 {
				lr, rst, err = resilience.Execute(ctx, d.policy, d.breakers, rng, targets, observer)
			} else {
				err = resilience.AsRetryable(fmt.Errorf("core: no coordinator holds activity %q", id))
			}
			if err != nil && resilience.ClassOf(err) != resilience.Canceled {
				if cands := d.fallback[id]; len(cands) > 0 {
					// Graceful degradation: the requester runs the local
					// phase itself from its registry view — exactly what
					// the lost coordinator would have computed.
					flr, ferr := evalLocalRequest(fmt.Sprintf("requester (degraded, activity %q)", id), cands, lreq)
					if ferr == nil {
						replies[i] = reply{lr: flr, rst: rst, degraded: true, cause: err.Error()}
						return
					}
					err = errors.Join(err, ferr)
				}
			}
			replies[i] = reply{lr: lr, rst: rst, err: err}
		}(i, a.ID)
	}
	wg.Wait()

	locals := make(map[string]*LocalResult, len(acts))
	var (
		errs     []error
		rst      resilience.Stats
		degraded int
		causes   map[string]string
	)
	for i, a := range acts {
		r := replies[i]
		rst.Add(r.rst)
		if r.err != nil {
			errs = append(errs, fmt.Errorf("activity %q: %w", a.ID, r.err))
			continue
		}
		if r.degraded {
			degraded++
			if causes == nil {
				causes = make(map[string]string)
			}
			causes[a.ID] = r.cause
			met.fallbacks.Inc()
		}
		locals[a.ID] = r.lr
	}
	met.retries.Add(uint64(rst.Retries))
	met.hedges.Add(uint64(rst.Hedges))
	met.breakerSkips.Add(uint64(rst.BreakerSkips))
	if len(errs) > 0 {
		err := fmt.Errorf("core: distributed local phase failed: %w", errors.Join(errs...))
		span.Annotate("error", err.Error())
		if cerr := resilience.CauseErr(ctx); cerr != nil {
			span.Annotate("cause", cerr.Error())
		}
		return nil, err
	}
	localDur := time.Since(startLocal)

	res, err := d.selector.SelectFromLocalContext(ctx, req, locals)
	if err != nil {
		return nil, err
	}
	res.Stats.LocalDuration = localDur
	res.Stats.Retries = rst.Retries
	res.Stats.Hedges = rst.Hedges
	res.Stats.BreakerSkips = rst.BreakerSkips
	res.Stats.Fallbacks = degraded
	res.Stats.DegradedCauses = causes
	res.Degraded = degraded > 0
	if degraded > 0 {
		span.Annotate("degraded", fmt.Sprint(degraded))
	}
	if hub != nil && hub.Flight != nil {
		// The core-layer flight record explains the distributed decision
		// itself (phase split, resilience work, fallback causes, final
		// bindings); a façade compose over this selection adds its own
		// record under the same trace ID.
		hub.Flight.Record(obs.RequestRecord{
			Kind:           "dist-select",
			TraceID:        traceID,
			Task:           fmt.Sprintf("%016x", req.Task.Fingerprint()),
			Start:          startLocal,
			Duration:       time.Since(startLocal),
			Phases:         obs.PhaseTimings{Local: localDur, Global: res.Stats.GlobalDuration},
			Degraded:       res.Degraded,
			DegradedCauses: res.Stats.DegradedCauses,
			Retries:        rst.Retries,
			Hedges:         rst.Hedges,
			BreakerSkips:   rst.BreakerSkips,
			Fallbacks:      degraded,
			Feasible:       res.Feasible,
			Utility:        res.Utility,
			Bindings:       res.BindingRecords(),
		})
	}
	return res, nil
}
