package core

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"qasom/internal/cluster"
	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/registry"
)

// The distributed version of QASSA (Chapter IV §4, evaluated in
// Fig. VI.12) spreads the local selection phase over the devices of an
// ad hoc environment: each coordinator device clusters the candidates of
// the activities it is responsible for, in parallel, and the requester's
// device gathers the ranked shortlists and runs the global phase.

// LocalRequest is the unit of work shipped to a coordinator device.
type LocalRequest struct {
	// ActivityID names the abstract activity to rank candidates for.
	ActivityID string
	// Properties carries the request's QoS property definitions (the
	// coordinator rebuilds the property set from them).
	Properties []*qos.Property
	// Weights is the requester's preference vector.
	Weights qos.Weights
	// Local holds the activity's local constraints; candidates violating
	// them are dropped device-side before clustering.
	Local qos.Constraints
	// K is the cluster count per property.
	K int
	// Seeding selects the K-means initialisation.
	Seeding cluster.Seeding
	// Seed drives the coordinator's K-means randomness.
	Seed int64
}

// LocalSelector is a device able to run the local phase for an activity.
type LocalSelector interface {
	LocalSelect(ctx context.Context, req LocalRequest) (*LocalResult, error)
}

// DeviceNode is a coordinator device holding candidate services for a
// set of activities; it serves LocalSelect either in-process or behind a
// TCP endpoint (see ServeTCP).
type DeviceNode struct {
	// Name identifies the device (diagnostics only).
	Name string
	// Latency simulates the wireless round-trip added to every request
	// served by this device.
	Latency time.Duration

	mu         sync.RWMutex
	candidates map[string][]registry.Candidate
}

// NewDeviceNode creates an empty coordinator device.
func NewDeviceNode(name string, latency time.Duration) *DeviceNode {
	return &DeviceNode{
		Name:       name,
		Latency:    latency,
		candidates: make(map[string][]registry.Candidate),
	}
}

// Host assigns the candidate list of an activity to this device.
func (d *DeviceNode) Host(activityID string, cands []registry.Candidate) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.candidates[activityID] = append([]registry.Candidate(nil), cands...)
}

// Activities returns the activity IDs the device hosts.
func (d *DeviceNode) Activities() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.candidates))
	for id := range d.candidates {
		out = append(out, id)
	}
	return out
}

var _ LocalSelector = (*DeviceNode)(nil)

// LocalSelect runs the local phase for one hosted activity.
func (d *DeviceNode) LocalSelect(ctx context.Context, req LocalRequest) (*LocalResult, error) {
	ctx, span := obs.StartSpan(ctx, "device.localselect")
	span.Annotate("device", d.Name)
	span.Annotate("activity", req.ActivityID)
	defer span.End()
	if hub := obs.HubFrom(ctx); hub != nil {
		hub.Metrics.Counter("qasom_device_localselect_total",
			"Local-phase requests served by this coordinator device.").Inc()
	}
	if d.Latency > 0 {
		t := time.NewTimer(d.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
	d.mu.RLock()
	cands := d.candidates[req.ActivityID]
	d.mu.RUnlock()
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: device %q hosts no candidates for %q", d.Name, req.ActivityID)
	}
	ps, err := qos.NewPropertySet(req.Properties...)
	if err != nil {
		return nil, fmt.Errorf("core: device %q: %w", d.Name, err)
	}
	if len(req.Local) > 0 {
		if err := req.Local.Validate(ps); err != nil {
			return nil, fmt.Errorf("core: device %q: %w", d.Name, err)
		}
		kept := make([]registry.Candidate, 0, len(cands))
		for _, c := range cands {
			if req.Local.Satisfied(ps, c.Vector) {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("core: device %q: no candidate for %q meets the local constraints",
				d.Name, req.ActivityID)
		}
		cands = kept
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	return localSelect(req.ActivityID, cands, ps, req.Weights, req.K, req.Seeding, rand.New(rand.NewSource(seed)))
}

// DistributedSelector fans the local phase out to one LocalSelector per
// activity (in parallel) and runs the global phase on the gathered
// shortlists.
type DistributedSelector struct {
	selector *Selector
	devices  map[string]LocalSelector // activity ID → device
}

// NewDistributedSelector builds a distributed selector; devices maps
// every task activity to the coordinator responsible for it.
func NewDistributedSelector(opts Options, devices map[string]LocalSelector) *DistributedSelector {
	cp := make(map[string]LocalSelector, len(devices))
	for k, v := range devices {
		cp[k] = v
	}
	return &DistributedSelector{selector: NewSelector(opts), devices: cp}
}

// Select runs the distributed algorithm. The returned result's stats
// report the parallel local-phase wall time and the global-phase time
// separately (the split Fig. VI.12 plots).
func (d *DistributedSelector) Select(ctx context.Context, req *Request) (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	acts := req.Task.Activities()
	opts := d.selector.opts.withDefaults(len(acts))
	for _, a := range acts {
		if d.devices[a.ID] == nil {
			return nil, fmt.Errorf("core: no device for activity %q", a.ID)
		}
	}

	startLocal := time.Now()
	type reply struct {
		id  string
		lr  *LocalResult
		err error
	}
	replies := make(chan reply, len(acts))
	var wg sync.WaitGroup
	for _, a := range acts {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			lr, err := d.devices[id].LocalSelect(ctx, LocalRequest{
				ActivityID: id,
				Properties: req.Properties.Properties(),
				Weights:    req.weights(),
				Local:      req.Local[id],
				K:          opts.K,
				Seeding:    opts.Seeding,
				Seed:       opts.Seed,
			})
			replies <- reply{id: id, lr: lr, err: err}
		}(a.ID)
	}
	wg.Wait()
	close(replies)

	locals := make(map[string]*LocalResult, len(acts))
	var errs []error
	for r := range replies {
		if r.err != nil {
			errs = append(errs, fmt.Errorf("activity %q: %w", r.id, r.err))
			continue
		}
		locals[r.id] = r.lr
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("core: distributed local phase failed: %w", errors.Join(errs...))
	}
	localDur := time.Since(startLocal)

	res, err := d.selector.SelectFromLocalContext(ctx, req, locals)
	if err != nil {
		return nil, err
	}
	res.Stats.LocalDuration = localDur
	return res, nil
}

// --- TCP transport -------------------------------------------------------

// rpcEnvelope frames one LocalSelect exchange over the wire.
type rpcEnvelope struct {
	Request LocalRequest
}

type rpcReply struct {
	Result *LocalResult
	Err    string
}

// ServeTCP exposes a LocalSelector on a TCP listener until ctx is
// cancelled; each connection carries one gob-encoded request/response
// exchange. It returns the bound address immediately and serves in the
// background; the returned stop function closes the listener and waits
// for in-flight connections.
func ServeTCP(ctx context.Context, addr string, sel LocalSelector) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("core: listen: %w", err)
	}
	serveCtx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer func() {
					if cerr := conn.Close(); cerr != nil {
						_ = cerr // closing best-effort; the exchange already ended
					}
				}()
				serveConn(serveCtx, conn, sel)
			}(conn)
		}
	}()
	stop := func() {
		cancel()
		if cerr := ln.Close(); cerr != nil {
			_ = cerr
		}
		wg.Wait()
	}
	return ln.Addr().String(), stop, nil
}

func serveConn(ctx context.Context, conn net.Conn, sel LocalSelector) {
	var env rpcEnvelope
	if err := gob.NewDecoder(conn).Decode(&env); err != nil {
		return
	}
	lr, err := sel.LocalSelect(ctx, env.Request)
	reply := rpcReply{Result: lr}
	if err != nil {
		reply.Err = err.Error()
	}
	_ = gob.NewEncoder(conn).Encode(&reply)
}

// TCPClient is a LocalSelector that forwards requests to a remote
// coordinator over TCP.
type TCPClient struct {
	// Addr is the coordinator's endpoint.
	Addr string
	// DialTimeout bounds connection establishment; 0 means 2s.
	DialTimeout time.Duration
}

var _ LocalSelector = (*TCPClient)(nil)

// LocalSelect performs one remote exchange.
func (c *TCPClient) LocalSelect(ctx context.Context, req LocalRequest) (*LocalResult, error) {
	timeout := c.DialTimeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	dialer := net.Dialer{Timeout: timeout}
	conn, err := dialer.DialContext(ctx, "tcp", c.Addr)
	if err != nil {
		return nil, fmt.Errorf("core: dial %s: %w", c.Addr, err)
	}
	defer func() {
		_ = conn.Close()
	}()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("core: set deadline: %w", err)
		}
	}
	if err := gob.NewEncoder(conn).Encode(&rpcEnvelope{Request: req}); err != nil {
		return nil, fmt.Errorf("core: send to %s: %w", c.Addr, err)
	}
	var reply rpcReply
	if err := gob.NewDecoder(conn).Decode(&reply); err != nil {
		return nil, fmt.Errorf("core: receive from %s: %w", c.Addr, err)
	}
	if reply.Err != "" {
		return nil, fmt.Errorf("core: remote %s: %s", c.Addr, reply.Err)
	}
	return reply.Result, nil
}
