package core

// Computational complexity (Chapter IV §3.4 of the thesis, restated for
// this implementation).
//
// Notation: n activities, ℓ candidate services per activity, p = |P|
// QoS properties, K clusters per property, R repair passes, I
// improvement passes.
//
// Local phase, per activity:
//   - min–max normalization: O(ℓ·p)
//   - K-means per property (Lloyd, bounded iterations T): O(T·K·ℓ) per
//     property, O(p·T·K·ℓ) per activity
//   - grading and sorting: O(ℓ·p + ℓ·log ℓ)
//
// Total local phase: O(n·p·T·K·ℓ) — linear in ℓ, which Fig. VI.5(a)
// confirms empirically. The distributed mode executes the n per-activity
// blocks in parallel on coordinator devices, so its wall-clock local
// phase is the per-device maximum plus one message round trip
// (Fig. VI.12).
//
// Global phase: each level iteration evaluates one aggregated QoS per
// candidate swap. A naive aggregation costs O(n·p) over the task tree;
// the incremental evaluation engine (engine.go) compiles the request's
// fixed tree once per selection and re-folds only the swapped leaf's
// root path, so a probe costs O(d·p) where d is the tree depth —
// O(log n) for balanced trees, n only in the degenerate fully-nested
// case — with zero allocations (prefix arrays are reused in place).
// The initial assignment costs O(n·ℓ) using per-candidate utilities
// cached once per selection (O(n·ℓ·p) up front, amortised over every
// probe), a repair pass scans O(n·ℓ) swaps each with one path re-fold →
// O(R·n·ℓ·d·p) worst case per level, and the improvement pass likewise
// O(I·n·ℓ·d·p). With the default R = 4n and the cumulative level pools
// this bounds the global phase by O(K·n²·ℓ·d·p) in the worst case —
// one n factor better than the naive O(K·n³·ℓ·p) — and the level-wise
// descent terminates at the first feasible level: measured behaviour is
// dominated by the local phase (compare local_ms and global_ms in
// Fig. VI.5(a), and the eval=naive/eval=incremental benchmark split in
// EXPERIMENTS.md).
//
// For contrast, exhaustive selection under global constraints explores
// ℓ^n compositions (NP-hard in general); the branch-and-bound baseline
// prunes with per-activity utility bounds but remains exponential in
// the worst case. QASSA trades exactness for the timeliness pervasive
// environments require, keeping ≥98% of the optimum on the evaluation
// workloads (EXPERIMENTS.md).
