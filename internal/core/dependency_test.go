package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/workload"
)

// stampProviders assigns provider dev(k mod 3) to every pool's k-th
// candidate, in place, so co-location rules have substance.
func stampProviders(cands map[string][]registry.Candidate) {
	for _, list := range cands {
		for k := range list {
			list[k].Service.Provider = registry.DeviceID(fmt.Sprintf("dev%d", k%3))
		}
	}
}

// mixedDeps builds one rule of each kind over the generator's naming
// scheme (activities a1..an, services <act>-s<k>): a1 requires a2 in its
// first three services, a2 bound to a2-s0 excludes a3-s1, and (when the
// task is wide enough) a4 and a5 must be co-located.
func mixedDeps(nActs, pool int) []Dependency {
	reqSet := []registry.ServiceID{"a2-s0", "a2-s1"}
	if pool > 2 {
		reqSet = append(reqSet, "a2-s2")
	}
	deps := []Dependency{
		{Kind: DepRequires, From: "a1", To: "a2", ToServices: reqSet},
		{Kind: DepExcludes, From: "a2", To: "a3", FromService: "a2-s0", ToServices: []registry.ServiceID{"a3-s1"}},
	}
	if nActs >= 5 {
		deps = append(deps, Dependency{Kind: DepColocated, From: "a4", To: "a5"})
	}
	return deps
}

// TestDependencyCompileErrors exercises every typed compile error and
// the structural edge cases around them.
func TestDependencyCompileErrors(t *testing.T) {
	g := workload.NewGenerator(1)
	tk := g.Task("D", 4, workload.ShapeLinear)
	set := []registry.ServiceID{"x"}
	cases := []struct {
		name string
		deps []Dependency
		want error
	}{
		{"bad kind", []Dependency{{Kind: 0, From: "a1", To: "a2", ToServices: set}}, ErrDependencyInvalid},
		{"self edge", []Dependency{{Kind: DepRequires, From: "a1", To: "a1", ToServices: set}}, ErrDependencyInvalid},
		{"empty set", []Dependency{{Kind: DepExcludes, From: "a1", To: "a2"}}, ErrDependencyInvalid},
		{"unknown from", []Dependency{{Kind: DepRequires, From: "zz", To: "a2", ToServices: set}}, ErrDependencyUnknownActivity},
		{"unknown to", []Dependency{{Kind: DepColocated, From: "a1", To: "zz"}}, ErrDependencyUnknownActivity},
		{"two-cycle", []Dependency{
			{Kind: DepRequires, From: "a1", To: "a2", ToServices: set},
			{Kind: DepRequires, From: "a2", To: "a1", ToServices: set},
		}, ErrDependencyCycle},
		{"three-cycle", []Dependency{
			{Kind: DepRequires, From: "a1", To: "a2", ToServices: set},
			{Kind: DepRequires, From: "a2", To: "a3", ToServices: set},
			{Kind: DepRequires, From: "a3", To: "a1", ToServices: set},
		}, ErrDependencyCycle},
		{"contradiction any-trigger", []Dependency{
			{Kind: DepRequires, From: "a1", To: "a2", ToServices: []registry.ServiceID{"a2-s0", "a2-s1"}},
			{Kind: DepExcludes, From: "a1", To: "a2", ToServices: []registry.ServiceID{"a2-s0", "a2-s1", "a2-s2"}},
		}, ErrDependencyContradiction},
		{"contradiction same-trigger", []Dependency{
			{Kind: DepRequires, From: "a1", To: "a2", FromService: "a1-s0", ToServices: []registry.ServiceID{"a2-s0"}},
			{Kind: DepExcludes, From: "a1", To: "a2", FromService: "a1-s0", ToServices: []registry.ServiceID{"a2-s0"}},
		}, ErrDependencyContradiction},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := CompileDependencies(tk, tc.deps)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			// The request surface must report the same typed error.
			req := &Request{Task: tk, Properties: qos.StandardSet(), Dependencies: tc.deps}
			if err := req.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("Validate: got %v, want %v", err, tc.want)
			}
		})
	}
	// Disjoint triggers do NOT contradict: the rules can never fire
	// together, so the pair must compile.
	ok := []Dependency{
		{Kind: DepRequires, From: "a1", To: "a2", FromService: "a1-s0", ToServices: []registry.ServiceID{"a2-s0"}},
		{Kind: DepExcludes, From: "a1", To: "a2", FromService: "a1-s1", ToServices: []registry.ServiceID{"a2-s0"}},
	}
	if _, err := CompileDependencies(tk, ok); err != nil {
		t.Fatalf("disjoint triggers should compile, got %v", err)
	}
	// A DAG of requires-edges is fine.
	dag := []Dependency{
		{Kind: DepRequires, From: "a1", To: "a2", ToServices: set},
		{Kind: DepRequires, From: "a1", To: "a3", ToServices: set},
		{Kind: DepRequires, From: "a2", To: "a3", ToServices: set},
	}
	if _, err := CompileDependencies(tk, dag); err != nil {
		t.Fatalf("requires DAG should compile, got %v", err)
	}
	// The empty rule set compiles to a nil set that admits everything.
	ds, err := CompileDependencies(tk, nil)
	if err != nil || ds != nil {
		t.Fatalf("empty rules: got (%v, %v), want (nil, nil)", ds, err)
	}
	if !ds.Admissible("a1", registry.Candidate{}, nil) || ds.Violations(nil) != 0 || ds.Touches("a1") {
		t.Fatal("nil set must admit everything and touch nothing")
	}
}

// TestDependencySemantics pins Admissible/Violations against hand-built
// bindings, including the unbound-endpoint and trigger cases, and checks
// the adjacency the repair loop walks.
func TestDependencySemantics(t *testing.T) {
	g := workload.NewGenerator(2)
	tk := g.Task("S", 5, workload.ShapeLinear)
	deps := mixedDeps(5, 4)
	ds, err := CompileDependencies(tk, deps)
	if err != nil {
		t.Fatal(err)
	}
	cand := func(id string, dev string) registry.Candidate {
		return registry.Candidate{Service: registry.Description{
			ID: registry.ServiceID(id), Provider: registry.DeviceID(dev)}}
	}
	bindings := map[string]registry.Candidate{}
	bound := func(id string) (registry.Candidate, bool) {
		c, ok := bindings[id]
		return c, ok
	}

	// Nothing bound: no rule can fire.
	if got := ds.Violations(bound); got != 0 {
		t.Fatalf("empty bindings: %d violations, want 0", got)
	}
	if !ds.Admissible("a2", cand("a2-s9", "dev0"), bound) {
		t.Fatal("a2-s9 must be admissible while a1 is unbound")
	}

	// a1 bound (any trigger): a2 outside the requires set is inadmissible.
	bindings["a1"] = cand("a1-s0", "dev0")
	if ds.Admissible("a2", cand("a2-s9", "dev0"), bound) {
		t.Fatal("requires must reject a2-s9 once a1 is bound")
	}
	if !ds.Admissible("a2", cand("a2-s1", "dev0"), bound) {
		t.Fatal("requires must admit a2-s1")
	}

	// Excludes fires only on its trigger binding.
	bindings["a2"] = cand("a2-s0", "dev0")
	if ds.Admissible("a3", cand("a3-s1", "dev0"), bound) {
		t.Fatal("excludes must reject a3-s1 while a2=a2-s0")
	}
	bindings["a2"] = cand("a2-s1", "dev0")
	if !ds.Admissible("a3", cand("a3-s1", "dev0"), bound) {
		t.Fatal("excludes must not fire for a2=a2-s1")
	}

	// Co-location compares providers, both directions.
	bindings["a4"] = cand("a4-s0", "devA")
	if ds.Admissible("a5", cand("a5-s0", "devB"), bound) {
		t.Fatal("colocated must reject a different provider")
	}
	if !ds.Admissible("a5", cand("a5-s0", "devA"), bound) {
		t.Fatal("colocated must admit the same provider")
	}
	bindings["a5"] = cand("a5-s0", "devB")
	if ds.Admissible("a4", cand("a4-s1", "devA"), bound) {
		t.Fatal("colocated must reject from the other endpoint too")
	}

	// Violations counts each violated rule once over a full assignment.
	bindings["a1"] = cand("a1-s0", "dev0")
	bindings["a2"] = cand("a2-s0", "dev0") // requires satisfied, excludes trigger armed
	bindings["a3"] = cand("a3-s1", "dev0") // violates excludes
	bindings["a4"] = cand("a4-s0", "devA")
	bindings["a5"] = cand("a5-s0", "devB") // violates colocated
	if got := ds.Violations(bound); got != 2 {
		t.Fatalf("violations = %d, want 2", got)
	}

	// Adjacency: a2 shares rules with a1 (requires) and a3 (excludes).
	adj := ds.AdjacentTo("a2")
	if !reflect.DeepEqual(adj, []string{"a1", "a3"}) {
		t.Fatalf("AdjacentTo(a2) = %v", adj)
	}
	if !ds.Touches("a4") || ds.Touches("zz") {
		t.Fatal("Touches misreports")
	}
}

// TestDifferentialDependencyRepair runs the full scalar pipeline with
// dependency rules through both kernels and demands bit-identical
// results, then checks the invariant the rules exist for: no returned
// binding — including every ranked alternate — violates a dependency.
func TestDifferentialDependencyRepair(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	shapes := []workload.TaskShape{workload.ShapeLinear, workload.ShapeMixed}
	for seed := int64(1); seed <= 6; seed++ {
		for _, sh := range shapes {
			t.Run(fmt.Sprintf("seed=%d/shape=%d", seed, sh), func(t *testing.T) {
				g := workload.NewGenerator(seed)
				tk := g.Task("DR", 5, sh)
				cands := g.Candidates(tk, 8, ps, laws)
				stampProviders(cands)
				req := &Request{
					Task:         tk,
					Properties:   ps,
					Constraints:  g.Constraints(tk, ps, laws, workload.AtMean, 3),
					Dependencies: mixedDeps(5, 8),
				}
				fast, err := NewSelector(Options{Workers: 1}).Select(req, cands)
				if err != nil {
					t.Fatalf("incremental: %v", err)
				}
				slow, err := NewSelector(Options{Workers: 1, NaiveEvaluation: true}).Select(req, cands)
				if err != nil {
					t.Fatalf("naive: %v", err)
				}
				fast.Stats.LocalDuration, slow.Stats.LocalDuration = 0, 0
				fast.Stats.GlobalDuration, slow.Stats.GlobalDuration = 0, 0
				if !reflect.DeepEqual(fast, slow) {
					t.Fatalf("results diverge:\nincremental: %+v\nnaive:       %+v", fast, slow)
				}

				ds, err := req.CompiledDependencies()
				if err != nil {
					t.Fatal(err)
				}
				bound := func(id string) (registry.Candidate, bool) {
					c, ok := fast.Assignment[id]
					return c, ok
				}
				if !fast.Feasible {
					// Infeasible is acceptable (tight constraints); the
					// reported violation must then include the dep count.
					deps := float64(ds.Violations(bound))
					if fast.Violation < deps {
						t.Fatalf("violation %v < dep violations %v", fast.Violation, deps)
					}
					return
				}
				if n := ds.Violations(bound); n != 0 {
					t.Fatalf("feasible result violates %d dependency rules", n)
				}
				// Every advertised alternate must be a legal in-place swap.
				for id, alts := range fast.Alternates {
					for _, alt := range alts {
						if !ds.Admissible(id, alt, bound) {
							t.Fatalf("alternate %s for %s violates a dependency", alt.Service.ID, id)
						}
					}
				}
			})
		}
	}
}

// TestDependencyRepairFindsFeasible pins a scenario the dependency-blind
// search would get wrong: the highest-utility candidates violate a
// requires edge, and only the dependency-aware repair path lands on a
// feasible composition.
func TestDependencyRepairFindsFeasible(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	g := workload.NewGenerator(11)
	tk := g.Task("RF", 4, workload.ShapeLinear)
	cands := g.Candidates(tk, 6, ps, laws)
	stampProviders(cands)
	// Force a2 into exactly one service, triggered by any a1 binding.
	req := &Request{
		Task:       tk,
		Properties: ps,
		Dependencies: []Dependency{
			{Kind: DepRequires, From: "a1", To: "a2", ToServices: []registry.ServiceID{"a2-s3"}},
			{Kind: DepColocated, From: "a3", To: "a4"},
		},
	}
	res, err := NewSelector(Options{Workers: 1}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("unconstrained QoS + satisfiable deps must be feasible, got violation %v", res.Violation)
	}
	if got := res.Assignment["a2"].Service.ID; got != "a2-s3" {
		t.Fatalf("a2 bound to %s, want a2-s3", got)
	}
	if p1, p2 := res.Assignment["a3"].Service.Provider, res.Assignment["a4"].Service.Provider; p1 != p2 {
		t.Fatalf("a3 on %s, a4 on %s: colocated violated", p1, p2)
	}
}
