package core

// The incremental evaluation engine. QASSA's global phase and every
// baseline probe thousands of candidate swaps per selection, and each
// probe needs the aggregated QoS of the whole composition. The naive
// route — Evaluator.Aggregate — rebuilds a map[string]qos.Vector and
// re-folds the entire task tree per probe: O(n·p) work plus one
// allocation per tree node. But the task tree is fixed for the whole
// selection and a swap changes exactly one leaf, so almost all of that
// work recomputes values that cannot have moved.
//
// EvalEngine compiles the tree once into a flat children-before-parents
// node array with dense integer activity indexing, caches every node's
// aggregated vector, and on a swap re-folds only the leaf-to-root path:
// sequence and parallel nodes keep left-fold prefix arrays so only the
// suffix after the changed child is re-folded; choice and loop nodes
// (narrow in practice) re-fold their children in full. Propagation
// stops early when a node's value is bit-unchanged. A per-candidate
// utility cache removes the Normalize allocation from every utility
// comparison, and the compiled constraint list removes the per-probe
// property-name lookups from Violation.
//
// Bit-exactness is non-negotiable — the differential tests require
// byte-identical Results against the naive Evaluator — and holds by
// construction: qos.AggregateSequence/AggregateParallel are defined as
// the left folds of qos.SequenceStep/ParallelStep, the prefix arrays
// replay exactly those folds, and choice/loop nodes call the very
// qos.AggregateChoice/AggregateLoop the naive path uses. An unchanged
// child contributes the same bits, so a path re-fold equals a full
// re-aggregation.

import (
	"fmt"

	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/task"
)

// evalKernel is the probe interface the global phase drives: one
// current assignment, addressed by dense (activity, candidate) indices,
// queried for aggregate, feasibility, violation and utility. Two
// implementations exist: EvalEngine (incremental) and naiveKernel (the
// reference path through Evaluator, kept for ablation and for the
// differential equivalence tests).
type evalKernel interface {
	// Assign binds candidate cand of activity act.
	Assign(act, cand int)
	// Current returns the bound candidate index of activity act.
	Current(act int) int
	// Snapshot appends the current per-activity candidate indices to
	// dst (nil for a fresh copy).
	Snapshot(dst []int) []int
	// Load replaces the whole assignment (idx is indexed by activity).
	Load(idx []int)
	// Violation, Feasible and Aggregate query the current assignment's
	// aggregated QoS against the request's global constraints.
	Violation() float64
	Feasible() bool
	Aggregate() qos.Vector
	// AggregateInto copies the current aggregated vector into dst
	// (len = property arity) and returns it — the allocation-free read
	// the vector-valued probes of the Pareto-front mode use.
	AggregateInto(dst qos.Vector) qos.Vector
	// Utility scores the current assignment with the evaluator's F.
	Utility() float64
	// CandidateUtility scores one pool member on the evaluator's scale.
	CandidateUtility(act, cand int) float64
}

// planNode is one compiled task-tree node. Children precede parents in
// EvalEngine.nodes, so a single forward sweep recomputes everything.
type planNode struct {
	kind     task.Pattern
	parent   int32 // -1 at the root
	childPos int32 // position among the parent's children
	children []int32
	probs    []float64
	loop     qos.Loop
	act      int32 // dense activity index at leaves, -1 otherwise
}

// compiledConstraint is one global constraint resolved to a property
// index, with the direction and the violation denominator precomputed.
type compiledConstraint struct {
	prop      int
	minimized bool
	bound     float64
	denom     float64
}

// EvalEngine is the incremental evaluation kernel. Build one per
// selection with NewEvalEngine, seed it with Load or Assign calls, and
// probe swaps at O(depth·p) instead of O(n·p) each — with zero
// allocations per probe. All methods are deterministic and bit-exact
// against the naive Evaluator; the engine is not safe for concurrent
// use (one engine per goroutine, like rand.Rand).
type EvalEngine struct {
	eval     *Evaluator
	ps       *qos.PropertySet
	props    []*qos.Property
	approach qos.Approach
	p        int // property count

	acts []string // dense activity index → ID, task order
	// Exactly one of pools/ranked backs the candidate addressing: the
	// exported constructor takes plain candidate pools; the global phase
	// hands its ranked shortlists over as-is (building a parallel
	// []registry.Candidate per activity was pure allocation).
	pools  [][]registry.Candidate
	ranked [][]RankedCandidate
	utils  [][]float64 // per activity, per candidate: cached utility
	cur    []int       // per activity: bound candidate index
	leaf   []int32     // per activity: node index of its leaf

	nodes   []planNode
	root    int32
	vals    []float64   // len(nodes)·p node value vectors, flattened
	prefix  [][]float64 // per node: (k+1)·p left-fold prefixes (seq/par)
	scratch []float64   // choice fold scratch, max node arity
	cons    []compiledConstraint
}

// NewEvalEngine compiles the request's task tree and candidate pools
// into an incremental engine. The pools may differ from the evaluator's
// populations (pruned, re-sorted) — utilities are still scored on the
// evaluator's scale. Every activity needs a non-empty pool and every
// vector the property-set arity. The engine starts with candidate 0
// bound everywhere.
func NewEvalEngine(eval *Evaluator, pools map[string][]registry.Candidate) (*EvalEngine, error) {
	acts := eval.req.Task.Activities()
	byAct := make([][]registry.Candidate, len(acts))
	for i, a := range acts {
		byAct[i] = pools[a.ID]
	}
	e := &EvalEngine{pools: byAct}
	return e, e.build(eval)
}

// newEvalEngineRanked builds the engine directly over the local phase's
// ranked shortlists (task order), addressing them in place instead of
// converting each into a registry.Candidate pool.
func newEvalEngineRanked(eval *Evaluator, ranked [][]RankedCandidate) (*EvalEngine, error) {
	e := &EvalEngine{ranked: ranked}
	return e, e.build(eval)
}

// build fills in everything but the candidate backing (pools or ranked,
// set by the constructor).
func (e *EvalEngine) build(eval *Evaluator) error {
	req := eval.req
	acts := req.Task.Activities()
	e.eval = eval
	e.ps = req.Properties
	e.props = req.Properties.Properties()
	e.approach = req.approach()
	e.p = req.Properties.Len()
	e.acts = make([]string, len(acts))
	e.utils = make([][]float64, len(acts))
	e.cur = make([]int, len(acts))
	e.leaf = make([]int32, len(acts))
	actIdx := make(map[string]int32, len(acts))
	total := 0
	for i := range acts {
		total += e.poolLen(i)
	}
	// One backing array for every activity's utility cache, scored through
	// a shared normalization buffer: the engine build is two allocations
	// here instead of two per candidate.
	utilsBack := make([]float64, 0, total)
	buf := make(qos.Vector, e.p)
	for i, a := range acts {
		n := e.poolLen(i)
		if n == 0 {
			return fmt.Errorf("core: engine: activity %q has no candidates", a.ID)
		}
		start := len(utilsBack)
		for k := 0; k < n; k++ {
			c := e.Candidate(i, k)
			if len(c.Vector) != e.p {
				return fmt.Errorf("core: engine: candidate %q vector arity %d, want %d",
					c.Service.ID, len(c.Vector), e.p)
			}
			utilsBack = append(utilsBack, eval.CandidateUtilityInto(a.ID, c, buf))
		}
		e.acts[i] = a.ID
		e.utils[i] = utilsBack[start:len(utilsBack):len(utilsBack)]
		actIdx[a.ID] = int32(i)
	}
	e.compile(req.Task.Root, actIdx)
	e.compileConstraints(req.Constraints)
	idx := make([]int, len(acts))
	e.Load(idx)
	return nil
}

// poolLen returns activity act's candidate count on either backing.
func (e *EvalEngine) poolLen(act int) int {
	if e.ranked != nil {
		return len(e.ranked[act])
	}
	return len(e.pools[act])
}

// vecAt returns the advertised vector of pool member cand of activity
// act without materialising a Candidate.
func (e *EvalEngine) vecAt(act, cand int) qos.Vector {
	if e.ranked != nil {
		return e.ranked[act][cand].Vector
	}
	return e.pools[act][cand].Vector
}

// compile flattens the tree into nodes (children before parents) and
// allocates the value and prefix buffers.
func (e *EvalEngine) compile(root *task.Node, actIdx map[string]int32) {
	maxArity := 1
	var build func(n *task.Node) int32
	build = func(n *task.Node) int32 {
		children := make([]int32, len(n.Children))
		for i, c := range n.Children {
			children[i] = build(c)
		}
		self := int32(len(e.nodes))
		pn := planNode{
			kind:     n.Kind,
			parent:   -1,
			children: children,
			probs:    n.Probs,
			loop:     n.Loop,
			act:      -1,
		}
		if n.Kind == task.PatternActivity {
			pn.act = actIdx[n.Activity.ID]
			e.leaf[pn.act] = self
		}
		if len(children) > maxArity {
			maxArity = len(children)
		}
		for pos, ci := range children {
			e.nodes[ci].parent = self
			e.nodes[ci].childPos = int32(pos)
		}
		e.nodes = append(e.nodes, pn)
		return self
	}
	e.root = build(root)
	e.vals = make([]float64, len(e.nodes)*e.p)
	e.scratch = make([]float64, maxArity)
	e.prefix = make([][]float64, len(e.nodes))
	// One backing array for every fold node's prefix rows.
	preTotal := 0
	for ni := range e.nodes {
		n := &e.nodes[ni]
		if n.kind == task.PatternSequence || n.kind == task.PatternParallel {
			preTotal += (len(n.children) + 1) * e.p
		}
	}
	preBack := make([]float64, preTotal)
	off := 0
	for ni := range e.nodes {
		n := &e.nodes[ni]
		if n.kind != task.PatternSequence && n.kind != task.PatternParallel {
			continue
		}
		sz := (len(n.children) + 1) * e.p
		pre := preBack[off : off+sz : off+sz]
		off += sz
		for q := 0; q < e.p; q++ {
			if n.kind == task.PatternSequence {
				pre[q] = qos.SequenceIdentity(e.props[q])
			} else {
				pre[q] = qos.ParallelIdentity(e.props[q])
			}
		}
		e.prefix[ni] = pre
	}
}

// compileConstraints resolves the global constraint set once, mirroring
// qos.Constraints.Violation (same order, same operations).
func (e *EvalEngine) compileConstraints(cs qos.Constraints) {
	e.cons = make([]compiledConstraint, 0, len(cs))
	for _, c := range cs {
		j, ok := e.ps.Index(c.Property)
		if !ok || j >= e.p {
			continue
		}
		denom := c.Bound
		if denom < 0 {
			denom = -denom
		}
		if denom < 1 {
			denom = 1
		}
		e.cons = append(e.cons, compiledConstraint{
			prop:      j,
			minimized: e.props[j].Direction == qos.Minimized,
			bound:     c.Bound,
			denom:     denom,
		})
	}
}

// val returns node ni's cached aggregated vector.
func (e *EvalEngine) val(ni int32) []float64 {
	return e.vals[int(ni)*e.p : (int(ni)+1)*e.p]
}

// Activities returns the number of activities (dense indices 0..n-1,
// task order).
func (e *EvalEngine) Activities() int { return len(e.acts) }

// ActivityID returns the ID of dense activity index act.
func (e *EvalEngine) ActivityID(act int) string { return e.acts[act] }

// PoolSize returns the candidate pool size of activity act.
func (e *EvalEngine) PoolSize(act int) int { return e.poolLen(act) }

// Candidate returns pool member cand of activity act.
func (e *EvalEngine) Candidate(act, cand int) registry.Candidate {
	if e.ranked != nil {
		return e.ranked[act][cand].Candidate()
	}
	return e.pools[act][cand]
}

// Current returns the bound candidate index of activity act.
func (e *EvalEngine) Current(act int) int { return e.cur[act] }

// Snapshot appends the current per-activity candidate indices to dst
// (pass nil for a fresh copy).
func (e *EvalEngine) Snapshot(dst []int) []int {
	return append(dst[:0], e.cur...)
}

// Assignment materialises the current assignment as the map form the
// rest of the system consumes.
func (e *EvalEngine) Assignment() Assignment {
	out := make(Assignment, len(e.acts))
	for a, id := range e.acts {
		out[id] = e.Candidate(a, e.cur[a])
	}
	return out
}

// Assign binds candidate cand of activity act and re-folds the
// leaf-to-root path. Binding the current candidate, or one with a
// bit-identical vector, is a no-op beyond the index update.
func (e *EvalEngine) Assign(act, cand int) {
	e.cur[act] = cand
	ni := e.leaf[act]
	dst := e.val(ni)
	v := e.vecAt(act, cand)
	same := true
	for q := 0; q < e.p; q++ {
		if !(dst[q] == v[q]) { // non-equal or NaN: re-fold
			same = false
			break
		}
	}
	if same {
		return
	}
	copy(dst, v)
	for {
		n := &e.nodes[ni]
		if n.parent < 0 {
			return
		}
		if !e.refold(n.parent, int(n.childPos)) {
			return // bit-unchanged: ancestors cannot move
		}
		ni = n.parent
	}
}

// Load replaces the whole assignment and recomputes every node (one
// forward sweep; nodes are ordered children-first).
func (e *EvalEngine) Load(idx []int) {
	for a := range idx {
		e.cur[a] = idx[a]
		copy(e.val(e.leaf[a]), e.vecAt(a, idx[a]))
	}
	for ni := range e.nodes {
		if e.nodes[ni].act < 0 {
			e.refold(int32(ni), 0)
		}
	}
}

// refold recomputes node ni's aggregated vector assuming children
// before position from are unchanged, and reports whether any bit of
// the node's value moved.
func (e *EvalEngine) refold(ni int32, from int) bool {
	n := &e.nodes[ni]
	out := e.val(ni)
	p := e.p
	switch n.kind {
	case task.PatternSequence, task.PatternParallel:
		pre := e.prefix[ni]
		seq := n.kind == task.PatternSequence
		for i := from; i < len(n.children); i++ {
			cv := e.val(n.children[i])
			row := pre[i*p : (i+1)*p]
			next := pre[(i+1)*p : (i+2)*p]
			if seq {
				for q := 0; q < p; q++ {
					next[q] = qos.SequenceStep(e.props[q], row[q], cv[q])
				}
			} else {
				for q := 0; q < p; q++ {
					next[q] = qos.ParallelStep(e.props[q], row[q], cv[q])
				}
			}
		}
		return storeChanged(out, pre[len(n.children)*p:])
	case task.PatternChoice:
		changed := false
		k := len(n.children)
		for q := 0; q < p; q++ {
			for i, ci := range n.children {
				e.scratch[i] = e.val(ci)[q]
			}
			nv := qos.AggregateChoice(e.props[q], e.scratch[:k], n.probs, e.approach)
			if !(nv == out[q]) {
				out[q] = nv
				changed = true
			}
		}
		return changed
	case task.PatternLoop:
		cv := e.val(n.children[0])
		changed := false
		for q := 0; q < p; q++ {
			nv := qos.AggregateLoop(e.props[q], cv[q], n.loop, e.approach)
			if !(nv == out[q]) {
				out[q] = nv
				changed = true
			}
		}
		return changed
	default: // leaves are written by Assign/Load directly
		return false
	}
}

// storeChanged copies src over dst and reports whether anything moved.
func storeChanged(dst, src []float64) bool {
	changed := false
	for q := range dst {
		if !(src[q] == dst[q]) {
			dst[q] = src[q]
			changed = true
		}
	}
	return changed
}

// Aggregate returns a copy of the composition's aggregated QoS vector.
func (e *EvalEngine) Aggregate() qos.Vector {
	out := make(qos.Vector, e.p)
	copy(out, e.val(e.root))
	return out
}

// AggregateInto copies the current aggregated vector into dst and
// returns it: the zero-allocation read behind ProbeVector. dst must have
// the property-set arity.
func (e *EvalEngine) AggregateInto(dst qos.Vector) qos.Vector {
	copy(dst, e.val(e.root))
	return dst
}

// ProbeVector binds candidate cand of activity act and returns the
// resulting aggregated QoS vector in dst (len = property arity): the
// vector-valued probe of the multi-objective mode. It is Assign plus a
// root read — the same leaf-to-root prefix-array re-fold, O(path·p) per
// swap with zero allocations — so Pareto search pays the same per-probe
// cost as the scalar search. The binding persists, exactly like Assign.
func (e *EvalEngine) ProbeVector(act, cand int, dst qos.Vector) qos.Vector {
	e.Assign(act, cand)
	return e.AggregateInto(dst)
}

// Violation measures the total relative constraint excess of the
// current assignment — same accumulation order and operations as
// qos.Constraints.Violation, without the map lookups.
func (e *EvalEngine) Violation() float64 {
	root := e.val(e.root)
	total := 0.0
	for i := range e.cons {
		c := &e.cons[i]
		v := root[c.prop]
		var excess float64
		if c.minimized {
			excess = v - c.bound
		} else {
			excess = c.bound - v
		}
		if excess > 0 {
			total += excess / c.denom
		}
	}
	return total
}

// Feasible reports whether the current assignment meets every global
// constraint.
func (e *EvalEngine) Feasible() bool { return e.Violation() == 0 }

// Utility scores the current assignment: the mean cached candidate
// utility, accumulated in task order exactly like Evaluator.Utility.
func (e *EvalEngine) Utility() float64 {
	if len(e.acts) == 0 {
		return 0
	}
	total := 0.0
	for a := range e.acts {
		total += e.utils[a][e.cur[a]]
	}
	return total / float64(len(e.acts))
}

// CandidateUtility returns the cached utility of pool member cand of
// activity act.
func (e *EvalEngine) CandidateUtility(act, cand int) float64 { return e.utils[act][cand] }

// naiveKernel routes the same probe interface through the reference
// Evaluator: every query re-aggregates the full task tree. It is the
// ablation baseline (Options.NaiveEvaluation) the differential tests
// hold the incremental engine against.
type naiveKernel struct {
	eval   *Evaluator
	acts   []string
	pools  [][]registry.Candidate
	cur    []int
	assign Assignment
}

func newNaiveKernel(eval *Evaluator, pools map[string][]registry.Candidate) *naiveKernel {
	acts := eval.req.Task.Activities()
	k := &naiveKernel{
		eval:   eval,
		acts:   make([]string, len(acts)),
		pools:  make([][]registry.Candidate, len(acts)),
		cur:    make([]int, len(acts)),
		assign: make(Assignment, len(acts)),
	}
	for i, a := range acts {
		k.acts[i] = a.ID
		k.pools[i] = pools[a.ID]
		k.assign[a.ID] = k.pools[i][0]
	}
	return k
}

func (k *naiveKernel) Assign(act, cand int) {
	k.cur[act] = cand
	k.assign[k.acts[act]] = k.pools[act][cand]
}

func (k *naiveKernel) Current(act int) int { return k.cur[act] }

func (k *naiveKernel) Snapshot(dst []int) []int { return append(dst[:0], k.cur...) }

func (k *naiveKernel) Load(idx []int) {
	for a := range idx {
		k.Assign(a, idx[a])
	}
}

func (k *naiveKernel) Violation() float64    { return k.eval.Violation(k.assign) }
func (k *naiveKernel) Feasible() bool        { return k.eval.Feasible(k.assign) }
func (k *naiveKernel) Aggregate() qos.Vector { return k.eval.Aggregate(k.assign) }
func (k *naiveKernel) Utility() float64      { return k.eval.Utility(k.assign) }

// AggregateInto re-aggregates through the reference Evaluator and copies
// into dst — allocating, like every naive probe; the differential tests
// only need the same bits, not the same cost.
func (k *naiveKernel) AggregateInto(dst qos.Vector) qos.Vector {
	copy(dst, k.eval.Aggregate(k.assign))
	return dst
}

func (k *naiveKernel) CandidateUtility(act, cand int) float64 {
	return k.eval.CandidateUtility(k.acts[act], k.pools[act][cand])
}
