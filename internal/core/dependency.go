package core

// Inter-service dependency constraints (ROADMAP item 4; Mabrouk's
// follow-up work on service dependencies in ubiquitous environments):
// binding a service for one activity can restrict which services are
// admissible for another. Three edge kinds cover the cases the paper
// motivates — requires (binding A to s forces B into a service set),
// excludes (binding A to s forbids a service set for B) and co-location
// (A and B must bind services hosted on the same device).
//
// Rules compile once per request into a DependencySet: dense activity
// indexing, per-activity rule adjacency, and structural validation with
// typed errors (unknown activities, cyclic requires-edges, contradictory
// requires+excludes) so a malformed rule set fails at compile time and
// can never panic mid-search. The global phase additionally binds the
// compiled set to its ranked candidate pools (boundDeps): per-rule
// trigger/member bitmaps over pool indices make the per-probe
// admissibility and violation checks allocation-free and O(rules
// touching the activity).

import (
	"errors"
	"fmt"

	"qasom/internal/registry"
	"qasom/internal/task"
)

// DependencyKind is the edge type of a dependency rule.
type DependencyKind int

// Dependency edge kinds.
const (
	// DepRequires: if From is bound to FromService (any binding when
	// empty), To must be bound to one of ToServices.
	DepRequires DependencyKind = iota + 1
	// DepExcludes: if From is bound to FromService (any binding when
	// empty), To must NOT be bound to any of ToServices.
	DepExcludes
	// DepColocated: the services bound to From and To must be hosted on
	// the same device (Description.Provider). FromService/ToServices are
	// ignored.
	DepColocated
)

// String returns "requires", "excludes" or "colocated".
func (k DependencyKind) String() string {
	switch k {
	case DepRequires:
		return "requires"
	case DepExcludes:
		return "excludes"
	case DepColocated:
		return "colocated"
	default:
		return fmt.Sprintf("DependencyKind(%d)", int(k))
	}
}

// Dependency is one declarative inter-service constraint between two
// activities of the task.
type Dependency struct {
	// Kind selects the edge semantics.
	Kind DependencyKind
	// From and To are activity IDs of the request's task.
	From, To string
	// FromService restricts which binding of From triggers the rule;
	// empty means any binding. Ignored for DepColocated.
	FromService registry.ServiceID
	// ToServices is the admissible set (DepRequires) or the forbidden
	// set (DepExcludes) for To's binding. Ignored for DepColocated.
	ToServices []registry.ServiceID
}

// Typed dependency-compilation errors (match with errors.Is).
var (
	// ErrDependencyInvalid flags a structurally malformed rule (bad kind,
	// self-edge, empty service set on requires/excludes).
	ErrDependencyInvalid = errors.New("core: invalid dependency rule")
	// ErrDependencyUnknownActivity flags a rule referencing an activity
	// the task does not contain.
	ErrDependencyUnknownActivity = errors.New("core: dependency references unknown activity")
	// ErrDependencyCycle flags a cycle in the requires-edge graph.
	ErrDependencyCycle = errors.New("core: dependency requires-edges form a cycle")
	// ErrDependencyContradiction flags a requires rule whose admissible
	// set is entirely forbidden by an excludes rule with an overlapping
	// trigger: no binding of To could ever satisfy both.
	ErrDependencyContradiction = errors.New("core: contradictory requires and excludes dependencies")
)

// depRule is one compiled rule over dense activity indices.
type depRule struct {
	kind     DependencyKind
	from, to int
	trigger  registry.ServiceID // empty = any binding of from
	set      map[registry.ServiceID]bool
}

// DependencySet is a compiled, validated dependency rule set. It is
// immutable after compile and safe for concurrent readers; all checks
// work on service IDs and providers, so the same set serves the
// selection engine, the repair loop and run-time failover.
type DependencySet struct {
	rules    []depRule
	actIDs   []string
	actIdx   map[string]int
	touching [][]int    // per activity: indices into rules
	adjacent [][]string // per activity: dependency-adjacent activity IDs
	source   []Dependency
}

// CompileDependencies validates and compiles a dependency rule set
// against a task. An empty rule set compiles to nil. All validation
// errors wrap the typed sentinels above.
func CompileDependencies(t *task.Task, rules []Dependency) (*DependencySet, error) {
	if len(rules) == 0 {
		return nil, nil
	}
	acts := t.Activities()
	ds := &DependencySet{
		rules:    make([]depRule, 0, len(rules)),
		actIDs:   make([]string, len(acts)),
		actIdx:   make(map[string]int, len(acts)),
		touching: make([][]int, len(acts)),
		adjacent: make([][]string, len(acts)),
		source:   append([]Dependency(nil), rules...),
	}
	for i, a := range acts {
		ds.actIDs[i] = a.ID
		ds.actIdx[a.ID] = i
	}
	for ri, r := range rules {
		if r.Kind < DepRequires || r.Kind > DepColocated {
			return nil, fmt.Errorf("%w: rule %d has kind %d", ErrDependencyInvalid, ri, int(r.Kind))
		}
		from, ok := ds.actIdx[r.From]
		if !ok {
			return nil, fmt.Errorf("%w: rule %d (%s) names %q", ErrDependencyUnknownActivity, ri, r.Kind, r.From)
		}
		to, ok := ds.actIdx[r.To]
		if !ok {
			return nil, fmt.Errorf("%w: rule %d (%s) names %q", ErrDependencyUnknownActivity, ri, r.Kind, r.To)
		}
		if from == to {
			return nil, fmt.Errorf("%w: rule %d (%s) is a self-edge on %q", ErrDependencyInvalid, ri, r.Kind, r.From)
		}
		cr := depRule{kind: r.Kind, from: from, to: to, trigger: r.FromService}
		if r.Kind != DepColocated {
			if len(r.ToServices) == 0 {
				return nil, fmt.Errorf("%w: rule %d (%s %s→%s) has an empty service set",
					ErrDependencyInvalid, ri, r.Kind, r.From, r.To)
			}
			cr.set = make(map[registry.ServiceID]bool, len(r.ToServices))
			for _, s := range r.ToServices {
				cr.set[s] = true
			}
		}
		idx := len(ds.rules)
		ds.rules = append(ds.rules, cr)
		ds.touching[from] = append(ds.touching[from], idx)
		ds.touching[to] = append(ds.touching[to], idx)
	}
	for a := range ds.adjacent {
		seen := map[int]bool{a: true}
		for _, ri := range ds.touching[a] {
			r := &ds.rules[ri]
			for _, other := range []int{r.from, r.to} {
				if !seen[other] {
					seen[other] = true
					ds.adjacent[a] = append(ds.adjacent[a], ds.actIDs[other])
				}
			}
		}
	}
	if err := ds.checkAcyclic(); err != nil {
		return nil, err
	}
	if err := ds.checkContradictions(); err != nil {
		return nil, err
	}
	return ds, nil
}

// checkAcyclic rejects cycles in the requires-edge graph: a requires
// cycle makes the repair re-opening order ill-defined (fixing A can
// forever re-open B and vice versa).
func (ds *DependencySet) checkAcyclic() error {
	edges := make([][]int, len(ds.actIDs))
	for _, r := range ds.rules {
		if r.kind == DepRequires {
			edges[r.from] = append(edges[r.from], r.to)
		}
	}
	const (
		unseen = 0
		open   = 1
		done   = 2
	)
	state := make([]int, len(ds.actIDs))
	var visit func(a int) error
	visit = func(a int) error {
		state[a] = open
		for _, b := range edges[a] {
			switch state[b] {
			case open:
				return fmt.Errorf("%w: through %q and %q", ErrDependencyCycle, ds.actIDs[a], ds.actIDs[b])
			case unseen:
				if err := visit(b); err != nil {
					return err
				}
			}
		}
		state[a] = done
		return nil
	}
	for a := range state {
		if state[a] == unseen {
			if err := visit(a); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkContradictions rejects a requires rule whose entire admissible
// set is forbidden by an excludes rule on the same edge with an
// overlapping trigger: whenever both rules fire, To has no legal binding.
func (ds *DependencySet) checkContradictions() error {
	for i, req := range ds.rules {
		if req.kind != DepRequires {
			continue
		}
		for j, exc := range ds.rules {
			if exc.kind != DepExcludes || exc.from != req.from || exc.to != req.to {
				continue
			}
			if req.trigger != "" && exc.trigger != "" && req.trigger != exc.trigger {
				continue // triggers never overlap
			}
			covered := true
			for s := range req.set {
				if !exc.set[s] {
					covered = false
					break
				}
			}
			if covered {
				return fmt.Errorf("%w: rules %d and %d on %s→%s",
					ErrDependencyContradiction, i, j, ds.actIDs[req.from], ds.actIDs[req.to])
			}
		}
	}
	return nil
}

// Rules returns a copy of the declarative rules the set was compiled
// from.
func (ds *DependencySet) Rules() []Dependency {
	if ds == nil {
		return nil
	}
	return append([]Dependency(nil), ds.source...)
}

// Len returns the compiled rule count (0 for a nil set).
func (ds *DependencySet) Len() int {
	if ds == nil {
		return 0
	}
	return len(ds.rules)
}

// Touches reports whether any rule constrains the given activity. A nil
// set touches nothing.
func (ds *DependencySet) Touches(activityID string) bool {
	if ds == nil {
		return false
	}
	a, ok := ds.actIdx[activityID]
	return ok && len(ds.touching[a]) > 0
}

// AdjacentTo returns the IDs of the activities sharing a rule with the
// given one — the set a dependency-aware repair re-opens after swapping
// its binding.
func (ds *DependencySet) AdjacentTo(activityID string) []string {
	if ds == nil {
		return nil
	}
	a, ok := ds.actIdx[activityID]
	if !ok {
		return nil
	}
	return ds.adjacent[a]
}

// ruleViolated evaluates one rule against concrete bindings.
func (r *depRule) violated(from, to registry.Candidate) bool {
	switch r.kind {
	case DepRequires:
		return (r.trigger == "" || from.Service.ID == r.trigger) && !r.set[to.Service.ID]
	case DepExcludes:
		return (r.trigger == "" || from.Service.ID == r.trigger) && r.set[to.Service.ID]
	case DepColocated:
		return from.Service.Provider != to.Service.Provider
	default:
		return false
	}
}

// Admissible reports whether binding cand to the given activity violates
// any rule, with every other endpoint read through bound (a missing
// binding leaves the rule unevaluated — it cannot be violated yet). A
// nil set admits everything.
func (ds *DependencySet) Admissible(activityID string, cand registry.Candidate, bound func(string) (registry.Candidate, bool)) bool {
	if ds == nil {
		return true
	}
	a, ok := ds.actIdx[activityID]
	if !ok {
		return true
	}
	for _, ri := range ds.touching[a] {
		r := &ds.rules[ri]
		other := r.from
		if other == a {
			other = r.to
		}
		oc, ok := bound(ds.actIDs[other])
		if !ok {
			continue
		}
		fromC, toC := cand, oc
		if r.from != a {
			fromC, toC = oc, cand
		}
		if r.violated(fromC, toC) {
			return false
		}
	}
	return true
}

// Violations counts the rules violated by a full assignment read through
// bound (rules with an unbound endpoint don't count). Zero for a nil
// set.
func (ds *DependencySet) Violations(bound func(string) (registry.Candidate, bool)) int {
	if ds == nil {
		return 0
	}
	n := 0
	for i := range ds.rules {
		r := &ds.rules[i]
		fc, ok := bound(ds.actIDs[r.from])
		if !ok {
			continue
		}
		tc, ok := bound(ds.actIDs[r.to])
		if !ok {
			continue
		}
		if r.violated(fc, tc) {
			n++
		}
	}
	return n
}

// boundDeps is a DependencySet bound to the global phase's ranked
// candidate pools: per-rule trigger/membership bitmaps over pool indices
// replace the map lookups, so the per-probe admissibility and violation
// checks the search consults are allocation-free. Activity indices align
// with the engine's dense indexing (both are task order).
type boundDeps struct {
	ds    *DependencySet
	rules []boundRule
	// touching mirrors ds.touching into the bound rules.
	touching [][]int
	// adjacentIdx holds, per activity, the dense indices of its
	// dependency-adjacent activities (repair re-opens these).
	adjacentIdx [][]int
}

type boundRule struct {
	kind     DependencyKind
	from, to int
	trigger  []bool   // per from-pool candidate: rule fires
	member   []bool   // per to-pool candidate: in the rule's service set
	fromProv []string // per from-pool candidate: hosting device (colocated)
	toProv   []string
}

// bindDeps precomputes the pool bitmaps. ranked is the global phase's
// per-activity shortlist backing (task order, same indexing the kernel
// uses).
func bindDeps(ds *DependencySet, ranked [][]RankedCandidate) *boundDeps {
	if ds == nil {
		return nil
	}
	b := &boundDeps{
		ds:          ds,
		rules:       make([]boundRule, len(ds.rules)),
		touching:    ds.touching,
		adjacentIdx: make([][]int, len(ds.actIDs)),
	}
	for a, ids := range ds.adjacent {
		for _, id := range ids {
			b.adjacentIdx[a] = append(b.adjacentIdx[a], ds.actIdx[id])
		}
	}
	for ri := range ds.rules {
		r := &ds.rules[ri]
		br := boundRule{kind: r.kind, from: r.from, to: r.to}
		fromPool, toPool := ranked[r.from], ranked[r.to]
		switch r.kind {
		case DepColocated:
			br.fromProv = make([]string, len(fromPool))
			for i := range fromPool {
				br.fromProv[i] = string(fromPool[i].Service.Provider)
			}
			br.toProv = make([]string, len(toPool))
			for i := range toPool {
				br.toProv[i] = string(toPool[i].Service.Provider)
			}
		default:
			br.trigger = make([]bool, len(fromPool))
			for i := range fromPool {
				br.trigger[i] = r.trigger == "" || fromPool[i].Service.ID == r.trigger
			}
			br.member = make([]bool, len(toPool))
			for i := range toPool {
				br.member[i] = r.set[toPool[i].Service.ID]
			}
		}
		b.rules[ri] = br
	}
	return b
}

// violated evaluates one bound rule against pool indices.
func (b *boundDeps) violated(ri int, fromCand, toCand int) bool {
	r := &b.rules[ri]
	switch r.kind {
	case DepRequires:
		return r.trigger[fromCand] && !r.member[toCand]
	case DepExcludes:
		return r.trigger[fromCand] && r.member[toCand]
	default: // DepColocated
		return r.fromProv[fromCand] != r.toProv[toCand]
	}
}

// currents is the slice of the probe kernel the dependency checks read:
// the bound pool index per dense activity. Both evaluation kernels and
// the baselines' index arrays satisfy it.
type currents interface {
	Current(act int) int
}

// sliceCurrents adapts a plain index array (the baselines' recursion
// state) to the currents view.
type sliceCurrents []int

func (s sliceCurrents) Current(act int) int { return s[act] }

// violations counts the rules violated by the kernel's current
// assignment. Allocation-free, O(rules).
func (b *boundDeps) violations(k currents) int {
	if b == nil {
		return 0
	}
	n := 0
	for ri := range b.rules {
		r := &b.rules[ri]
		if b.violated(ri, k.Current(r.from), k.Current(r.to)) {
			n++
		}
	}
	return n
}

// admissible reports whether binding pool member cand to activity act
// keeps every rule touching act satisfied under the rest of the current
// assignment. Allocation-free, O(rules touching act).
func (b *boundDeps) admissible(act, cand int, k currents) bool {
	if b == nil {
		return true
	}
	for _, ri := range b.touching[act] {
		r := &b.rules[ri]
		fromCand, toCand := k.Current(r.from), k.Current(r.to)
		if r.from == act {
			fromCand = cand
		} else {
			toCand = cand
		}
		if b.violated(ri, fromCand, toCand) {
			return false
		}
	}
	return true
}
