package core

import (
	"math/rand"
	"testing"

	"qasom/internal/qos"
	"qasom/internal/workload"
)

// TestEvalProbeZeroAlloc enforces the incremental engine's zero-alloc
// probe contract: Assign + Violation + Utility — the inner loop of every
// repair and improvement sweep — must not allocate at all.
func TestEvalProbeZeroAlloc(t *testing.T) {
	ps := qos.StandardSet()
	g := workload.NewGenerator(5)
	laws := workload.DefaultLaws(ps)
	tk := g.Task("probe", 6, workload.ShapeMixed)
	cands := g.Candidates(tk, 20, ps, laws)
	req := &Request{
		Task:        tk,
		Properties:  ps,
		Constraints: g.Constraints(tk, ps, laws, workload.AtMean, 2),
	}
	eval, err := NewEvaluator(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEvalEngine(eval, cands)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	n := eng.Activities()
	sink := 0.0
	avg := testing.AllocsPerRun(200, func() {
		a := rng.Intn(n)
		eng.Assign(a, rng.Intn(eng.PoolSize(a)))
		sink += eng.Violation() + eng.Utility()
	})
	if avg != 0 {
		t.Errorf("eval probe allocates %.2f/op, want 0", avg)
	}
	_ = sink
}

// TestLocalSelectPooledAllocCeiling pins the pooled local phase's
// allocation budget: once the sync.Pool scratch is warm, one localSelect
// over 300 candidates may allocate only its retained outputs (the ranked
// slice, the shared scores backing, the result struct, the normalizer
// and sort bookkeeping) — an O(1) count, not O(candidates).
func TestLocalSelectPooledAllocCeiling(t *testing.T) {
	ps := qos.StandardSet()
	g := workload.NewGenerator(7)
	laws := workload.DefaultLaws(ps)
	tk := g.Task("alloc", 1, workload.ShapeLinear)
	id := tk.Activities()[0].ID
	cands := g.Candidates(tk, 300, ps, laws)[id]
	weights := qos.UniformWeights(ps)

	run := func() {
		rng := rand.New(rand.NewSource(1))
		if _, err := localSelect(id, cands, ps, weights, 4, 0, rng); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch pool
	// Retained outputs plus small fixed bookkeeping; 20 gives headroom
	// over the ~12 observed without re-admitting any per-candidate
	// allocation (which would add hundreds).
	const ceiling = 20
	if avg := testing.AllocsPerRun(50, run); avg > ceiling {
		t.Errorf("pooled localSelect allocates %.1f/op, want <= %d", avg, ceiling)
	}
}
