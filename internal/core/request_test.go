package core

import (
	"fmt"
	"math"
	"testing"

	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

// twoProps is a small property set: minimized time + maximized
// availability.
func twoProps() *qos.PropertySet {
	return qos.MustNewPropertySet(
		&qos.Property{Name: "rt", Concept: semantics.ResponseTime, Direction: qos.Minimized, Kind: qos.KindTime, Unit: qos.Milliseconds},
		&qos.Property{Name: "avail", Concept: semantics.Availability, Direction: qos.Maximized, Kind: qos.KindProbability, Unit: qos.Ratio},
	)
}

// cand builds a candidate with the given QoS values.
func cand(id string, vals ...float64) registry.Candidate {
	return registry.Candidate{
		Service: registry.Description{ID: registry.ServiceID(id), Concept: "C"},
		Vector:  qos.Vector(vals),
	}
}

// seqTask builds a linear task with the given activity IDs.
func seqTask(ids ...string) *task.Task {
	nodes := make([]*task.Node, len(ids))
	for i, id := range ids {
		nodes[i] = task.NewActivity(&task.Activity{ID: id, Concept: "C"})
	}
	root := task.Sequence(nodes...)
	if len(nodes) == 1 {
		root = nodes[0]
	}
	return &task.Task{Name: "t", Concept: "C", Root: root}
}

func TestRequestValidate(t *testing.T) {
	ps := twoProps()
	ok := &Request{
		Task:        seqTask("a", "b"),
		Properties:  ps,
		Constraints: qos.Constraints{{Property: "rt", Bound: 100}},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	tests := []struct {
		name string
		req  *Request
	}{
		{"nil", nil},
		{"no properties", &Request{Task: seqTask("a")}},
		{"bad task", &Request{Task: &task.Task{Name: "x"}, Properties: ps}},
		{"bad constraint", &Request{Task: seqTask("a"), Properties: ps,
			Constraints: qos.Constraints{{Property: "nope", Bound: 1}}}},
		{"bad weights", &Request{Task: seqTask("a"), Properties: ps, Weights: qos.Weights{1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.req.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestRequestDefaults(t *testing.T) {
	req := &Request{Task: seqTask("a"), Properties: twoProps()}
	if req.approach() != qos.Pessimistic {
		t.Error("default approach should be pessimistic")
	}
	w := req.weights()
	if len(w) != 2 || w[0] != 1 {
		t.Errorf("default weights = %v", w)
	}
	req.Approach = qos.Optimistic
	if req.approach() != qos.Optimistic {
		t.Error("explicit approach ignored")
	}
}

func newEval(t *testing.T, req *Request, cands map[string][]registry.Candidate) *Evaluator {
	t.Helper()
	e, err := NewEvaluator(req, cands)
	if err != nil {
		t.Fatalf("NewEvaluator: %v", err)
	}
	return e
}

func TestEvaluatorAggregateAndFeasibility(t *testing.T) {
	req := &Request{
		Task:       seqTask("a", "b"),
		Properties: twoProps(),
		Constraints: qos.Constraints{
			{Property: "rt", Bound: 250},
			{Property: "avail", Bound: 0.8},
		},
	}
	cands := map[string][]registry.Candidate{
		"a": {cand("a1", 100, 0.95), cand("a2", 50, 0.9)},
		"b": {cand("b1", 100, 0.9), cand("b2", 300, 0.99)},
	}
	e := newEval(t, req, cands)

	ok := Assignment{"a": cands["a"][0], "b": cands["b"][0]}
	agg := e.Aggregate(ok)
	if agg[0] != 200 || math.Abs(agg[1]-0.95*0.9) > 1e-12 {
		t.Errorf("aggregate = %v", agg)
	}
	if !e.Feasible(ok) || e.Violation(ok) != 0 {
		t.Error("assignment should be feasible")
	}
	bad := Assignment{"a": cands["a"][0], "b": cands["b"][1]}
	if e.Feasible(bad) {
		t.Error("rt 400 > 250 should be infeasible")
	}
	if e.Violation(bad) <= 0 {
		t.Error("violation should be positive")
	}
}

func TestEvaluatorUtility(t *testing.T) {
	req := &Request{Task: seqTask("a"), Properties: twoProps()}
	cands := map[string][]registry.Candidate{
		"a": {cand("best", 50, 0.99), cand("worst", 200, 0.8), cand("mid", 125, 0.9)},
	}
	e := newEval(t, req, cands)
	uBest := e.CandidateUtility("a", cands["a"][0])
	uMid := e.CandidateUtility("a", cands["a"][2])
	uWorst := e.CandidateUtility("a", cands["a"][1])
	if !(uBest > uMid && uMid > uWorst) {
		t.Errorf("utility ordering broken: %g %g %g", uBest, uMid, uWorst)
	}
	if uBest != 1 || uWorst != 0 {
		t.Errorf("extremes should hit 1 and 0: %g %g", uBest, uWorst)
	}
	if got := e.Utility(Assignment{"a": cands["a"][0]}); got != 1 {
		t.Errorf("assignment utility = %g, want 1", got)
	}
	if got := e.CandidateUtility("ghost", cands["a"][0]); got != 0 {
		t.Errorf("unknown activity utility = %g, want 0", got)
	}
}

func TestNewEvaluatorErrors(t *testing.T) {
	req := &Request{Task: seqTask("a", "b"), Properties: twoProps()}
	if _, err := NewEvaluator(req, map[string][]registry.Candidate{"a": {cand("x", 1, 1)}}); err == nil {
		t.Error("missing activity candidates should error")
	}
	bad := map[string][]registry.Candidate{
		"a": {cand("x", 1, 1)},
		"b": {{Service: registry.Description{ID: "y"}, Vector: qos.Vector{1}}}, // wrong arity
	}
	if _, err := NewEvaluator(req, bad); err == nil {
		t.Error("wrong vector arity should error")
	}
	if _, err := NewEvaluator(&Request{}, nil); err == nil {
		t.Error("invalid request should error")
	}
}

// genCandidates builds n candidates per activity with deterministic but
// spread-out QoS values.
func genCandidates(t *task.Task, n int) map[string][]registry.Candidate {
	out := make(map[string][]registry.Candidate)
	for ai, a := range t.Activities() {
		list := make([]registry.Candidate, n)
		for k := 0; k < n; k++ {
			// rt in [20..20+10(n-1)], avail in [0.99 .. 0.99-0.004(n-1)]
			rt := float64(20 + 10*k + ai)
			avail := 0.99 - 0.004*float64(k) - 0.001*float64(ai)
			list[k] = cand(fmt.Sprintf("%s-s%d", a.ID, k), rt, avail)
		}
		out[a.ID] = list
	}
	return out
}

func TestEffectiveAccessors(t *testing.T) {
	req := &Request{Task: seqTask("a"), Properties: twoProps()}
	if got := req.EffectiveApproach(); got != qos.Pessimistic {
		t.Errorf("EffectiveApproach = %v", got)
	}
	if got := req.EffectiveWeights(); len(got) != 2 || got[0] != 1 {
		t.Errorf("EffectiveWeights = %v", got)
	}
	req.Approach = qos.MeanValue
	req.Weights = qos.Weights{2, 3}
	if got := req.EffectiveApproach(); got != qos.MeanValue {
		t.Errorf("explicit EffectiveApproach = %v", got)
	}
	if got := req.EffectiveWeights(); got[1] != 3 {
		t.Errorf("explicit EffectiveWeights = %v", got)
	}
}

func TestEvaluatorNormalizerAccessor(t *testing.T) {
	req := &Request{Task: seqTask("a"), Properties: twoProps()}
	e := newEval(t, req, map[string][]registry.Candidate{
		"a": {cand("x", 10, 0.9), cand("y", 20, 0.95)},
	})
	nz := e.Normalizer("a")
	if nz == nil {
		t.Fatal("normalizer missing")
	}
	lo, hi := nz.Bounds(0)
	if lo != 10 || hi != 20 {
		t.Errorf("bounds = (%g, %g)", lo, hi)
	}
	if e.Normalizer("ghost") != nil {
		t.Error("unknown activity should have no normalizer")
	}
}
