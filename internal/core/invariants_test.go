package core

import (
	"testing"

	"qasom/internal/qos"
	"qasom/internal/workload"
)

// TestSelectInvariantsRandomized checks QASSA's structural invariants on
// randomized workloads across shapes, tightness settings, approaches and
// option combinations:
//
//   - the assignment covers exactly the task's activities
//   - every assigned/alternate service comes from the activity's pool
//   - Feasible ⇔ (Violation == 0) ⇔ constraints hold on Aggregated
//   - the utility is in [0,1]
//   - alternates never duplicate the chosen service
//   - local constraints are never violated by chosen or alternate services
func TestSelectInvariantsRandomized(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	shapes := []workload.TaskShape{workload.ShapeLinear, workload.ShapeMixed, workload.ShapeChoiceHeavy}
	tights := []workload.Tightness{workload.AtMean, workload.AtMeanPlusSigma}
	approaches := qos.Approaches()
	optVariants := []Options{
		{},
		{K: 2},
		{FlatGlobal: true},
		{PruneDominated: true},
		{K: 6, PruneDominated: true},
	}

	run := 0
	for seed := int64(1); seed <= 4; seed++ {
		for _, shape := range shapes {
			for _, tight := range tights {
				g := workload.NewGenerator(seed)
				tk := g.Task("R", 6, shape)
				cands := g.Candidates(tk, 12, ps, laws)
				req := &Request{
					Task:        tk,
					Properties:  ps,
					Constraints: g.Constraints(tk, ps, laws, tight, 3),
					Approach:    approaches[run%len(approaches)],
				}
				opts := optVariants[run%len(optVariants)]
				run++

				res, err := NewSelector(opts).Select(req, cands)
				if err != nil {
					t.Fatalf("seed %d shape %d tight %v: %v", seed, shape, tight, err)
				}

				// Coverage.
				if len(res.Assignment) != tk.Size() {
					t.Fatalf("assignment covers %d of %d activities", len(res.Assignment), tk.Size())
				}
				pools := make(map[string]map[string]bool, len(cands))
				for id, list := range cands {
					pools[id] = make(map[string]bool, len(list))
					for _, c := range list {
						pools[id][string(c.Service.ID)] = true
					}
				}
				for _, a := range tk.Activities() {
					chosen, ok := res.Assignment[a.ID]
					if !ok {
						t.Fatalf("activity %s unassigned", a.ID)
					}
					if !pools[a.ID][string(chosen.Service.ID)] {
						t.Fatalf("activity %s assigned foreign service %s", a.ID, chosen.Service.ID)
					}
					for _, alt := range res.Alternates[a.ID] {
						if !pools[a.ID][string(alt.Service.ID)] {
							t.Fatalf("activity %s alternate %s not in pool", a.ID, alt.Service.ID)
						}
						if alt.Service.ID == chosen.Service.ID {
							t.Fatalf("activity %s alternate duplicates the chosen service", a.ID)
						}
					}
				}

				// Consistency of feasibility reporting.
				holds := req.Constraints.Satisfied(req.Properties, res.Aggregated)
				if res.Feasible != holds {
					t.Fatalf("Feasible=%v but constraints hold=%v (agg %v vs %s)",
						res.Feasible, holds, res.Aggregated, req.Constraints)
				}
				if (res.Violation == 0) != res.Feasible {
					t.Fatalf("Violation %g inconsistent with Feasible=%v", res.Violation, res.Feasible)
				}
				if res.Utility < 0 || res.Utility > 1 {
					t.Fatalf("utility %g outside [0,1]", res.Utility)
				}
			}
		}
	}
}

// TestSelectLocalConstraintInvariant adds local constraints on top of
// the randomized sweep and checks they hold for chosen and alternate
// services alike.
func TestSelectLocalConstraintInvariant(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	for seed := int64(1); seed <= 5; seed++ {
		g := workload.NewGenerator(seed)
		tk := g.Task("L", 5, workload.ShapeMixed)
		cands := g.Candidates(tk, 15, ps, laws)
		first := tk.Activities()[0].ID
		req := &Request{
			Task:       tk,
			Properties: ps,
			Local: map[string]qos.Constraints{
				first: {{Property: "responseTime", Bound: 60}},
			},
		}
		res, err := NewSelector(Options{}).Select(req, cands)
		if err != nil {
			// The local constraint may genuinely be unsatisfiable for this
			// seed; that is a legal outcome, not an invariant violation.
			continue
		}
		if got := res.Assignment[first].Vector[0]; got > 60 {
			t.Fatalf("seed %d: chosen service violates local constraint (rt %g)", seed, got)
		}
		for _, alt := range res.Alternates[first] {
			if alt.Vector[0] > 60 {
				t.Fatalf("seed %d: alternate violates local constraint (rt %g)", seed, alt.Vector[0])
			}
		}
	}
}
