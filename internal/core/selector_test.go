package core

import (
	"math/rand"
	"testing"

	"qasom/internal/qos"
	"qasom/internal/registry"
)

func TestLocalSelectGrading(t *testing.T) {
	ps := twoProps()
	// Candidate "star" dominates on both properties; "half" is best on
	// nothing but close on rt; "dud" is worst on both.
	cands := []registry.Candidate{
		cand("dud", 200, 0.80),
		cand("star", 20, 0.99),
		cand("half", 60, 0.82),
		cand("mid", 120, 0.90),
	}
	lr, err := localSelect("a", cands, ps, qos.UniformWeights(ps), 2, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("localSelect: %v", err)
	}
	if lr.ActivityID != "a" || len(lr.Ranked) != 4 {
		t.Fatalf("result shape wrong: %+v", lr)
	}
	if lr.Ranked[0].Service.ID != "star" {
		t.Errorf("star should rank first, got %s", lr.Ranked[0].Service.ID)
	}
	if lr.Ranked[0].Level != 1 || lr.Ranked[0].ClassSize != ps.Len() {
		t.Errorf("dominant candidate should be in QC_{1,%d}: level %d class %d",
			ps.Len(), lr.Ranked[0].Level, lr.Ranked[0].ClassSize)
	}
	if last := lr.Ranked[3]; last.Service.ID != "dud" {
		t.Errorf("dud should rank last, got %s", last.Service.ID)
	}
	// Ranked order is monotone in (level, classSize, utility).
	for i := 1; i < len(lr.Ranked); i++ {
		a, b := lr.Ranked[i-1], lr.Ranked[i]
		if a.Level > b.Level {
			t.Errorf("ranked order violates level monotonicity at %d", i)
		}
		if a.Level == b.Level && a.ClassSize < b.ClassSize {
			t.Errorf("ranked order violates class monotonicity at %d", i)
		}
	}
	// Scores are normalized.
	for _, rc := range lr.Ranked {
		for _, s := range rc.Scores {
			if s < 0 || s > 1 {
				t.Fatalf("score %g outside [0,1]", s)
			}
		}
		if rc.Utility < 0 || rc.Utility > 1 {
			t.Fatalf("utility %g outside [0,1]", rc.Utility)
		}
	}
}

func TestLocalSelectSingleCandidate(t *testing.T) {
	ps := twoProps()
	lr, err := localSelect("a", []registry.Candidate{cand("only", 10, 0.9)}, ps,
		qos.UniformWeights(ps), 4, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Ranked) != 1 || lr.Ranked[0].Level != 1 {
		t.Errorf("single candidate should be level 1: %+v", lr.Ranked)
	}
	if _, err := localSelect("a", nil, ps, nil, 4, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty candidates should error")
	}
}

func TestSelectFeasible(t *testing.T) {
	tk := seqTask("a", "b", "c")
	cands := genCandidates(tk, 10)
	req := &Request{
		Task:       tk,
		Properties: twoProps(),
		Constraints: qos.Constraints{
			{Property: "rt", Bound: 150},    // forces cheap services
			{Property: "avail", Bound: 0.9}, // product over 3 activities
		},
	}
	res, err := NewSelector(Options{}).Select(req, cands)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if !res.Feasible {
		t.Fatalf("expected feasible composition, violation %g, agg %v", res.Violation, res.Aggregated)
	}
	if len(res.Assignment) != 3 {
		t.Fatalf("assignment covers %d activities, want 3", len(res.Assignment))
	}
	// Reported aggregate actually satisfies the constraints.
	if !req.Constraints.Satisfied(req.Properties, res.Aggregated) {
		t.Errorf("reported feasible but aggregate %v violates %v", res.Aggregated, req.Constraints)
	}
	if res.Utility < 0 || res.Utility > 1 {
		t.Errorf("utility %g outside [0,1]", res.Utility)
	}
	if res.Stats.LevelsExplored < 1 || res.Stats.Evaluations == 0 {
		t.Errorf("stats not recorded: %+v", res.Stats)
	}
	if res.Stats.LocalDuration <= 0 || res.Stats.GlobalDuration <= 0 {
		t.Errorf("durations not recorded: %+v", res.Stats)
	}
}

func TestSelectInfeasibleReturnsBestEffort(t *testing.T) {
	tk := seqTask("a", "b")
	cands := genCandidates(tk, 5)
	req := &Request{
		Task:        tk,
		Properties:  twoProps(),
		Constraints: qos.Constraints{{Property: "rt", Bound: 1}}, // impossible
	}
	res, err := NewSelector(Options{}).Select(req, cands)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if res.Feasible {
		t.Fatal("impossible constraints reported feasible")
	}
	if res.Violation <= 0 {
		t.Error("violation should be positive")
	}
	if len(res.Assignment) != 2 {
		t.Error("best-effort assignment should still cover all activities")
	}
	// Best effort means rt-minimal services: the fastest candidates are
	// a-s0 (rt 20) and b-s0 (rt 21).
	if res.Assignment["a"].Service.ID != "a-s0" || res.Assignment["b"].Service.ID != "b-s0" {
		t.Errorf("best effort should minimise violation: got %s, %s",
			res.Assignment["a"].Service.ID, res.Assignment["b"].Service.ID)
	}
}

func TestSelectTightConstraintsRequireRepair(t *testing.T) {
	tk := seqTask("a", "b", "c", "d")
	cands := genCandidates(tk, 20)
	// rt bound only slightly above the minimum achievable sum (20+21+22+23=86):
	// the highest-utility assignment is unlikely to satisfy it directly on
	// availability-weighted utility, exercising the repair loop.
	req := &Request{
		Task:        tk,
		Properties:  twoProps(),
		Constraints: qos.Constraints{{Property: "rt", Bound: 95}},
		Weights:     qos.Weights{0.1, 0.9}, // prefer availability
	}
	res, err := NewSelector(Options{}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("feasible composition exists (rt=86) but not found; agg %v", res.Aggregated)
	}
	if res.Aggregated[0] > 95 {
		t.Errorf("rt %g exceeds bound", res.Aggregated[0])
	}
}

func TestSelectAlternates(t *testing.T) {
	tk := seqTask("a", "b")
	cands := genCandidates(tk, 8)
	req := &Request{
		Task:        tk,
		Properties:  twoProps(),
		Constraints: qos.Constraints{{Property: "rt", Bound: 500}},
	}
	res, err := NewSelector(Options{MaxAlternates: 3}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	for id, alts := range res.Alternates {
		if len(alts) > 3 {
			t.Errorf("activity %s has %d alternates, cap 3", id, len(alts))
		}
		for _, alt := range alts {
			if alt.Service.ID == res.Assignment[id].Service.ID {
				t.Errorf("alternate duplicates the chosen service for %s", id)
			}
		}
	}
	// With a loose bound, swapping in the first alternate keeps
	// feasibility (they are ordered substitution-first).
	for id, alts := range res.Alternates {
		if len(alts) == 0 {
			continue
		}
		trial := cloneAssignment(res.Assignment)
		trial[id] = alts[0]
		eval, err := NewEvaluator(req, cands)
		if err != nil {
			t.Fatal(err)
		}
		if !eval.Feasible(trial) {
			t.Errorf("first alternate for %s breaks feasibility", id)
		}
	}
}

func TestSelectFlatGlobalAblation(t *testing.T) {
	tk := seqTask("a", "b", "c")
	cands := genCandidates(tk, 10)
	req := &Request{
		Task:        tk,
		Properties:  twoProps(),
		Constraints: qos.Constraints{{Property: "rt", Bound: 150}},
	}
	res, err := NewSelector(Options{FlatGlobal: true}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Error("flat global should still find the feasible composition here")
	}
	if res.Stats.LevelsExplored != 1 {
		t.Errorf("flat global explored %d levels, want 1", res.Stats.LevelsExplored)
	}
}

func TestSelectDeterministic(t *testing.T) {
	tk := seqTask("a", "b", "c")
	cands := genCandidates(tk, 12)
	req := &Request{
		Task:        tk,
		Properties:  twoProps(),
		Constraints: qos.Constraints{{Property: "rt", Bound: 200}},
	}
	r1, err := NewSelector(Options{}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewSelector(Options{}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	for id := range r1.Assignment {
		if r1.Assignment[id].Service.ID != r2.Assignment[id].Service.ID {
			t.Fatalf("selection not deterministic for %s", id)
		}
	}
}

func TestSelectKVariants(t *testing.T) {
	tk := seqTask("a", "b")
	cands := genCandidates(tk, 15)
	req := &Request{
		Task:        tk,
		Properties:  twoProps(),
		Constraints: qos.Constraints{{Property: "rt", Bound: 300}},
	}
	for _, k := range []int{1, 2, 3, 5, 8} {
		res, err := NewSelector(Options{K: k}).Select(req, cands)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if !res.Feasible {
			t.Errorf("K=%d: expected feasible", k)
		}
	}
}

func TestSelectMissingCandidates(t *testing.T) {
	tk := seqTask("a", "b")
	req := &Request{Task: tk, Properties: twoProps()}
	_, err := NewSelector(Options{}).Select(req, map[string][]registry.Candidate{
		"a": {cand("x", 1, 0.9)},
	})
	if err == nil {
		t.Error("missing candidates for b should error")
	}
}

func TestSelectFromLocalMissing(t *testing.T) {
	tk := seqTask("a", "b")
	req := &Request{Task: tk, Properties: twoProps()}
	lr, err := localSelect("a", []registry.Candidate{cand("x", 1, 0.9)}, req.Properties,
		qos.UniformWeights(req.Properties), 2, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewSelector(Options{}).SelectFromLocal(req, map[string]*LocalResult{"a": lr})
	if err == nil {
		t.Error("missing local result should error")
	}
}
