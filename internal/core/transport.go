package core

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"qasom/internal/obs"
	"qasom/internal/resilience"
)

// Transport carries one local-phase exchange to a coordinator device.
// The distributed selector composes resilience (retries, hedging,
// breakers, fallback) strictly above this seam, so in-process and TCP
// coordinators — and fault-injecting wrappers around either — are
// interchangeable.
type Transport interface {
	// Peer names the coordinator endpoint (breaker key, metrics label).
	Peer() string
	// Exchange performs one request/response exchange. Implementations
	// classify transport-level failures as retryable (see
	// resilience.ClassOf) and report the context's cancellation cause
	// when the caller gave up mid-exchange.
	Exchange(ctx context.Context, req LocalRequest) (*LocalResult, error)
}

// InProcessTransport serves exchanges from a LocalSelector in the same
// process (the simulated ad hoc deployment, and the bench harness).
type InProcessTransport struct {
	// Name identifies the coordinator (breaker key).
	Name string
	// Selector handles the local phase.
	Selector LocalSelector
}

var _ Transport = (*InProcessTransport)(nil)

// Peer implements Transport.
func (t *InProcessTransport) Peer() string { return t.Name }

// Exchange implements Transport.
func (t *InProcessTransport) Exchange(ctx context.Context, req LocalRequest) (*LocalResult, error) {
	return t.Selector.LocalSelect(ctx, req)
}

// --- TCP transport -------------------------------------------------------

// rpcEnvelope frames one LocalSelect exchange over the wire. Trace
// carries the requester's span context so the coordinator-side local
// phase records into the requester's trace (zero value: no trace; old
// and new peers interoperate because gob tolerates the extra field).
type rpcEnvelope struct {
	Request LocalRequest
	Trace   obs.SpanContext
}

type rpcReply struct {
	Result *LocalResult
	Err    string
}

// defaultDialTimeout bounds connection establishment when the transport
// does not set its own.
const defaultDialTimeout = 2 * time.Second

// TCPTransport is a Transport that reaches a coordinator over TCP; each
// exchange is one gob-encoded request/response on a fresh connection.
// Dial and exchange are split so failure classification can tell "peer
// unreachable" from "peer crashed mid-exchange".
type TCPTransport struct {
	// Addr is the coordinator's endpoint.
	Addr string
	// DialTimeout bounds connection establishment; 0 means 2s.
	DialTimeout time.Duration
}

var _ Transport = (*TCPTransport)(nil)

// Peer implements Transport.
func (t *TCPTransport) Peer() string { return t.Addr }

// dial establishes the connection. Dial failures (refused, unreachable,
// timed out) are transient coordinator-churn conditions: retryable.
func (t *TCPTransport) dial(ctx context.Context) (net.Conn, error) {
	timeout := t.DialTimeout
	if timeout == 0 {
		timeout = defaultDialTimeout
	}
	dialer := net.Dialer{Timeout: timeout}
	conn, err := dialer.DialContext(ctx, "tcp", t.Addr)
	if err != nil {
		if cerr := resilience.CauseErr(ctx); cerr != nil {
			return nil, fmt.Errorf("core: dial %s: %w", t.Addr, cerr)
		}
		return nil, resilience.AsRetryable(fmt.Errorf("core: dial %s: %w", t.Addr, err))
	}
	return conn, nil
}

// exchange runs the gob round trip on an established connection.
func (t *TCPTransport) exchange(ctx context.Context, conn net.Conn, req LocalRequest) (*LocalResult, error) {
	// Unblock the connection promptly when the context ends mid-exchange
	// (hedge losers and canceled selections must not sit in a blocked
	// read until the peer's idle deadline).
	done := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		select {
		case <-ctx.Done():
			_ = conn.SetDeadline(time.Now())
		case <-done:
		}
	}()
	defer func() { close(done); watch.Wait() }()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, resilience.AsRetryable(fmt.Errorf("core: set deadline: %w", err))
		}
	}
	if err := gob.NewEncoder(conn).Encode(&rpcEnvelope{Request: req, Trace: obs.ContextFrom(ctx)}); err != nil {
		return nil, t.wireErr(ctx, "send to", err)
	}
	var reply rpcReply
	if err := gob.NewDecoder(conn).Decode(&reply); err != nil {
		return nil, t.wireErr(ctx, "receive from", err)
	}
	if reply.Err != "" {
		// The coordinator answered with an application-level failure:
		// terminal for this exchange (another identical request cannot
		// do better against the same peer).
		return nil, fmt.Errorf("core: remote %s: %s", t.Addr, reply.Err)
	}
	return reply.Result, nil
}

// wireErr wraps a transport-level failure: the context's cancellation
// cause when the requester gave up, otherwise a retryable wire error
// (reset, truncated gob, deadline expiry — coordinator churn).
func (t *TCPTransport) wireErr(ctx context.Context, verb string, err error) error {
	if cerr := resilience.CauseErr(ctx); cerr != nil {
		return fmt.Errorf("core: %s %s: %w", verb, t.Addr, cerr)
	}
	return resilience.AsRetryable(fmt.Errorf("core: %s %s: %w", verb, t.Addr, err))
}

// Exchange implements Transport: dial, then one request/response. The
// exchange runs under its own span, and the span's context travels in
// the envelope so the coordinator's spans nest under it when both
// sides' traces are snapshotted together.
func (t *TCPTransport) Exchange(ctx context.Context, req LocalRequest) (*LocalResult, error) {
	ctx, span := obs.StartSpan(ctx, "dist.exchange")
	span.Annotate("peer", t.Addr)
	span.Annotate("activity", req.ActivityID)
	defer span.End()
	conn, err := t.dial(ctx)
	if err != nil {
		span.Annotate("error", err.Error())
		return nil, err
	}
	defer func() {
		_ = conn.Close()
	}()
	lr, err := t.exchange(ctx, conn, req)
	if err != nil {
		span.Annotate("error", err.Error())
	}
	return lr, err
}

// TCPClient is a LocalSelector that forwards requests to a remote
// coordinator over TCP (kept as the LocalSelector-shaped adapter over
// TCPTransport for callers that do not need the resilience layer).
type TCPClient struct {
	// Addr is the coordinator's endpoint.
	Addr string
	// DialTimeout bounds connection establishment; 0 means 2s.
	DialTimeout time.Duration
}

var _ LocalSelector = (*TCPClient)(nil)

// LocalSelect performs one remote exchange.
func (c *TCPClient) LocalSelect(ctx context.Context, req LocalRequest) (*LocalResult, error) {
	return (&TCPTransport{Addr: c.Addr, DialTimeout: c.DialTimeout}).Exchange(ctx, req)
}

// --- TCP server ----------------------------------------------------------

// ErrDropExchange instructs the TCP server to sever the connection
// without replying (the fault injectors use it to simulate a
// coordinator crashing mid-exchange: the client observes a truncated
// gob stream).
var ErrDropExchange = errors.New("core: drop exchange")

// DefaultIdleTimeout is the server-side deadline an accepted connection
// gets to complete its exchange when ServeOptions leaves it zero. A
// stalled or half-open client is cut loose instead of pinning a serve
// goroutine forever.
const DefaultIdleTimeout = 30 * time.Second

// ServeOptions tune the TCP server.
type ServeOptions struct {
	// IdleTimeout bounds how long an accepted connection may take per
	// read/write phase of its exchange; 0 means DefaultIdleTimeout,
	// negative disables the deadline.
	IdleTimeout time.Duration
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.IdleTimeout == 0 {
		o.IdleTimeout = DefaultIdleTimeout
	}
	return o
}

// ServeTCP exposes a LocalSelector on a TCP listener until ctx is
// cancelled, with default options; see ServeTCPOptions.
func ServeTCP(ctx context.Context, addr string, sel LocalSelector) (string, func(), error) {
	return ServeTCPOptions(ctx, addr, sel, ServeOptions{})
}

// ServeTCPOptions exposes a LocalSelector on a TCP listener until ctx
// is cancelled; each connection carries one gob-encoded
// request/response exchange bounded by the idle deadline. It returns
// the bound address immediately and serves in the background; the
// returned stop function closes the listener and waits for in-flight
// connections.
func ServeTCPOptions(ctx context.Context, addr string, sel LocalSelector, opts ServeOptions) (string, func(), error) {
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("core: listen: %w", err)
	}
	serveCtx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer func() {
					if cerr := conn.Close(); cerr != nil {
						_ = cerr // closing best-effort; the exchange already ended
					}
				}()
				serveConn(serveCtx, conn, sel, opts.IdleTimeout)
			}(conn)
		}
	}()
	stop := func() {
		cancel()
		if cerr := ln.Close(); cerr != nil {
			_ = cerr
		}
		wg.Wait()
	}
	return ln.Addr().String(), stop, nil
}

func serveConn(ctx context.Context, conn net.Conn, sel LocalSelector, idle time.Duration) {
	if idle > 0 {
		_ = conn.SetDeadline(time.Now().Add(idle))
	}
	var env rpcEnvelope
	if err := gob.NewDecoder(conn).Decode(&env); err != nil {
		return
	}
	// Adopt the requester's trace: the local phase's root span joins the
	// remote TraceID instead of opening its own, so /debug/spans can
	// stitch the coordinator-side work under the requester's exchange.
	ctx = obs.WithRemoteParent(ctx, env.Trace)
	lr, err := sel.LocalSelect(ctx, env.Request)
	if errors.Is(err, ErrDropExchange) {
		return // sever without replying: the client sees a truncated stream
	}
	if idle > 0 {
		// Fresh budget for the write phase: the selection itself may have
		// consumed most of the read deadline.
		_ = conn.SetDeadline(time.Now().Add(idle))
	}
	reply := rpcReply{Result: lr}
	if err != nil {
		reply.Err = err.Error()
	}
	_ = gob.NewEncoder(conn).Encode(&reply)
}
