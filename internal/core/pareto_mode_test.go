package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/workload"
)

// TestDifferentialParetoKernels runs the Pareto-front mode through both
// evaluation kernels and demands bit-identical results — front order,
// members, aggregates, stats — mirroring the scalar differential.
func TestDifferentialParetoKernels(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	objSets := [][]string{
		{"responseTime", "availability"},
		{"responseTime", "price", "reliability"},
	}
	for seed := int64(1); seed <= 4; seed++ {
		for oi, objectives := range objSets {
			for _, withDeps := range []bool{false, true} {
				t.Run(fmt.Sprintf("seed=%d/obj=%d/deps=%v", seed, oi, withDeps), func(t *testing.T) {
					g := workload.NewGenerator(seed)
					tk := g.Task("P", 5, workload.ShapeMixed)
					cands := g.Candidates(tk, 4, ps, laws)
					stampProviders(cands)
					req := &Request{
						Task:        tk,
						Properties:  ps,
						Constraints: g.Constraints(tk, ps, laws, workload.AtMeanPlusSigma, 2),
						Objectives:  objectives,
					}
					if withDeps {
						req.Dependencies = mixedDeps(5, 4)
					}
					fast, err := NewSelector(Options{Workers: 1, ParetoMode: true}).Select(req, cands)
					if err != nil {
						t.Fatalf("incremental: %v", err)
					}
					slow, err := NewSelector(Options{Workers: 1, ParetoMode: true, NaiveEvaluation: true}).Select(req, cands)
					if err != nil {
						t.Fatalf("naive: %v", err)
					}
					fast.Stats.LocalDuration, slow.Stats.LocalDuration = 0, 0
					fast.Stats.GlobalDuration, slow.Stats.GlobalDuration = 0, 0
					if !reflect.DeepEqual(fast, slow) {
						t.Fatalf("results diverge:\nincremental: %+v\nnaive:       %+v", fast, slow)
					}
					checkFrontInvariants(t, req, fast)
				})
			}
		}
	}
}

// checkFrontInvariants asserts the structural contract of a Pareto
// result: every front member is feasible and dependency-clean, members
// are mutually non-dominated over the objectives, Front[0] mirrors the
// top-level result fields, and FrontSize matches.
func checkFrontInvariants(t *testing.T, req *Request, res *Result) {
	t.Helper()
	if res.Stats.FrontSize != len(res.Front) {
		t.Fatalf("FrontSize %d != len(Front) %d", res.Stats.FrontSize, len(res.Front))
	}
	if !res.Feasible {
		if res.Front != nil {
			t.Fatal("infeasible result must carry no front")
		}
		return
	}
	if len(res.Front) == 0 {
		t.Fatal("feasible Pareto result must carry a front")
	}
	first := res.Front[0]
	if !reflect.DeepEqual(first.Assignment, res.Assignment) ||
		!reflect.DeepEqual(first.Aggregated, res.Aggregated) ||
		first.Utility != res.Utility {
		t.Fatal("Front[0] must mirror the top-level scalarized-best result")
	}
	objIdx := req.EffectiveObjectives()
	props := make([]*qos.Property, len(objIdx))
	for i, j := range objIdx {
		props[i] = req.Properties.At(j)
	}
	project := func(v qos.Vector) qos.Vector {
		out := make(qos.Vector, len(objIdx))
		for i, j := range objIdx {
			out[i] = v[j]
		}
		return out
	}
	ds, err := req.CompiledDependencies()
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range res.Front {
		if !m.Feasible {
			t.Fatalf("front member %d marked infeasible", i)
		}
		if !req.Constraints.Satisfied(req.Properties, m.Aggregated) {
			t.Fatalf("front member %d violates the global constraints", i)
		}
		if n := ds.Violations(func(id string) (registry.Candidate, bool) {
			cc, ok := m.Assignment[id]
			return cc, ok
		}); n != 0 {
			t.Fatalf("front member %d violates %d dependency rules", i, n)
		}
		for j, o := range res.Front {
			if i == j {
				continue
			}
			if qos.DominatesOver(props, project(o.Aggregated), project(m.Aggregated)) {
				t.Fatalf("front member %d dominates member %d", j, i)
			}
		}
	}
}

// TestParetoSweepRegime forces the Pareto local search (exhaustive bound
// 1) and checks the front still satisfies every invariant — it may be a
// subset of the true front, but never an invalid one.
func TestParetoSweepRegime(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	for seed := int64(1); seed <= 4; seed++ {
		g := workload.NewGenerator(seed)
		tk := g.Task("PS", 6, workload.ShapeMixed)
		cands := g.Candidates(tk, 10, ps, laws)
		stampProviders(cands)
		req := &Request{
			Task:         tk,
			Properties:   ps,
			Constraints:  g.Constraints(tk, ps, laws, workload.AtMeanPlusSigma, 2),
			Objectives:   []string{"responseTime", "price"},
			Dependencies: mixedDeps(6, 10),
		}
		res, err := NewSelector(Options{Workers: 1, ParetoMode: true, ParetoExhaustiveBound: 1}).Select(req, cands)
		if err != nil {
			t.Fatal(err)
		}
		checkFrontInvariants(t, req, res)
	}
}

// TestParetoMaxFront caps the returned front and keeps the
// scalarized-best member in slot 0.
func TestParetoMaxFront(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	g := workload.NewGenerator(3)
	tk := g.Task("PM", 5, workload.ShapeLinear)
	cands := g.Candidates(tk, 4, ps, laws)
	req := &Request{
		Task:       tk,
		Properties: ps,
		Objectives: []string{"responseTime", "price", "availability"},
	}
	full, err := NewSelector(Options{Workers: 1, ParetoMode: true}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Front) < 3 {
		t.Skipf("front too small (%d) to exercise the cap", len(full.Front))
	}
	capped, err := NewSelector(Options{Workers: 1, ParetoMode: true, ParetoMaxFront: 2}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Front) != 2 {
		t.Fatalf("capped front has %d members, want 2", len(capped.Front))
	}
	if !reflect.DeepEqual(capped.Front[0].Assignment, full.Front[0].Assignment) {
		t.Fatal("cap must keep the scalarized-best member first")
	}
}

// TestParetoObjectiveValidation covers the error paths: fewer than two
// objectives, unknown names, duplicates.
func TestParetoObjectiveValidation(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	g := workload.NewGenerator(1)
	tk := g.Task("PE", 3, workload.ShapeLinear)
	cands := g.Candidates(tk, 3, ps, laws)
	sel := NewSelector(Options{Workers: 1, ParetoMode: true})

	_, err := sel.Select(&Request{Task: tk, Properties: ps, Objectives: []string{"price"}}, cands)
	if err == nil || !strings.Contains(err.Error(), "at least 2 objectives") {
		t.Fatalf("single objective: got %v", err)
	}
	_, err = sel.Select(&Request{Task: tk, Properties: ps, Objectives: []string{"price", "nope"}}, cands)
	if err == nil || !strings.Contains(err.Error(), "not in the property set") {
		t.Fatalf("unknown objective: got %v", err)
	}
	_, err = sel.Select(&Request{Task: tk, Properties: ps, Objectives: []string{"price", "price"}}, cands)
	if err == nil || !strings.Contains(err.Error(), "duplicate objective") {
		t.Fatalf("duplicate objective: got %v", err)
	}
	// Scalar mode ignores objectives entirely.
	if _, err := NewSelector(Options{Workers: 1}).Select(&Request{Task: tk, Properties: ps, Objectives: []string{"price", "availability"}}, cands); err != nil {
		t.Fatalf("scalar mode with objectives: %v", err)
	}
}

// TestParetoCloneDeepCopiesFront guards Result.Clone against aliasing
// the front members.
func TestParetoCloneDeepCopiesFront(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	g := workload.NewGenerator(2)
	tk := g.Task("PC", 4, workload.ShapeLinear)
	cands := g.Candidates(tk, 3, ps, laws)
	req := &Request{Task: tk, Properties: ps, Objectives: []string{"responseTime", "price"}}
	res, err := NewSelector(Options{Workers: 1, ParetoMode: true}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Skip("no front to clone")
	}
	cl := res.Clone()
	if !reflect.DeepEqual(cl.Front, res.Front) {
		t.Fatal("clone front differs")
	}
	cl.Front[0].Aggregated[0] += 1
	if res.Front[0].Aggregated[0] == cl.Front[0].Aggregated[0] {
		t.Fatal("clone aliases the original front member's aggregate")
	}
}

// TestProbeVectorZeroAlloc pins the vector-probe hot path: re-assign +
// AggregateInto through a caller-owned buffer must not allocate, and the
// folded vector must be bit-identical to a full Aggregate.
func TestProbeVectorZeroAlloc(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	g := workload.NewGenerator(6)
	tk := g.Task("PV", 6, workload.ShapeMixed)
	cands := g.Candidates(tk, 12, ps, laws)
	req := &Request{Task: tk, Properties: ps}
	eval, err := NewEvaluator(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEvalEngine(eval, cands)
	if err != nil {
		t.Fatal(err)
	}
	buf := make(qos.Vector, ps.Len())
	n := eng.Activities()
	step := 0
	avg := testing.AllocsPerRun(200, func() {
		a := step % n
		k := step % eng.PoolSize(a)
		step++
		eng.ProbeVector(a, k, buf)
	})
	if avg != 0 {
		t.Errorf("ProbeVector allocates %.2f/op, want 0", avg)
	}
	// Correctness: the buffer holds exactly what Aggregate reports.
	for a := 0; a < n; a++ {
		got := eng.ProbeVector(a, (a+1)%eng.PoolSize(a), buf)
		want := eng.Aggregate()
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("ProbeVector[%d] = %v, Aggregate = %v", j, got[j], want[j])
			}
		}
	}
}
