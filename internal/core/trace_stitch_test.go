package core

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qasom/internal/obs"
)

// findSnapshot walks a span tree for the first span with the name.
func findSnapshot(s *obs.SpanSnapshot, name string) *obs.SpanSnapshot {
	if s.Name == name {
		return s
	}
	for i := range s.Children {
		if m := findSnapshot(&s.Children[i], name); m != nil {
			return m
		}
	}
	return nil
}

// TestDistributedTraceStitching runs a distributed selection over real
// TCP with requester and coordinators reporting into one hub, and
// checks the wire propagation produces ONE stitched trace: every
// coordinator-side local phase adopts the requester's trace ID and
// nests under its dist.exchange span in the snapshot.
func TestDistributedTraceStitching(t *testing.T) {
	tk := seqTask("a", "b")
	cands := genCandidates(tk, 6)
	req := &Request{Task: tk, Properties: twoProps()}

	hub := obs.NewHub()
	serveCtx := obs.WithHub(context.Background(), hub)
	replicas := make(map[string][]Transport, 2)
	for id, list := range cands {
		dev := NewDeviceNode("dev-"+id, 0)
		dev.Host(id, list)
		addr, stop, err := ServeTCP(serveCtx, "127.0.0.1:0", dev)
		if err != nil {
			t.Fatalf("ServeTCP: %v", err)
		}
		defer stop()
		replicas[id] = []Transport{&TCPTransport{Addr: addr}}
	}

	sel := NewResilientDistributedSelector(Options{}, replicas, DistConfig{})
	res, err := sel.Select(obs.WithHub(context.Background(), hub), req)
	if err != nil {
		t.Fatalf("distributed select over TCP: %v", err)
	}
	if !res.Feasible {
		t.Fatalf("selection infeasible: %+v", res)
	}

	snap := hub.Tracer.Snapshot()
	if len(snap) != 1 {
		names := make([]string, len(snap))
		for i, s := range snap {
			names[i] = s.Name + "(remote_parent=" + s.RemoteParent + ")"
		}
		t.Fatalf("want 1 stitched trace, got %d roots: %v", len(snap), names)
	}
	root := snap[0]
	if root.Name != "qassa.distributed" {
		t.Fatalf("stitched root = %q, want qassa.distributed", root.Name)
	}
	// The coordinator-side local phase crossed the wire: it must appear
	// INSIDE the requester's tree, carrying the requester's trace ID,
	// nested under the exchange that carried it.
	local := findSnapshot(&root, "device.localselect")
	if local == nil {
		t.Fatalf("no device.localselect span in the stitched trace: %+v", root)
	}
	if local.TraceID != root.TraceID {
		t.Fatalf("coordinator span trace %s != requester trace %s", local.TraceID, root.TraceID)
	}
	exchange := findSnapshot(&root, "dist.exchange")
	if exchange == nil {
		t.Fatal("no dist.exchange span in the stitched trace")
	}
	if under := findSnapshot(exchange, "device.localselect"); under == nil {
		t.Fatalf("device.localselect not nested under dist.exchange: %+v", exchange)
	}

	// The wire format carried the IDs — nothing depended on requester and
	// coordinator sharing process state (the shared hub only collects).
	if local.RemoteParent == "" {
		t.Fatal("coordinator span lost its remote parent")
	}
}

// TestDistributedDegradedFlightRecord fault-injects every coordinator
// of one activity and checks /debug/requests explains the degraded
// request: the dist-select record names the degraded activity, its
// cause, and the fallback's phase timings.
func TestDistributedDegradedFlightRecord(t *testing.T) {
	req, cands := singleActivityRequest()
	replicas := map[string][]Transport{"a": {
		&TCPTransport{Addr: closedPort(t), DialTimeout: 100 * time.Millisecond},
	}}
	sel := NewResilientDistributedSelector(Options{}, replicas, DistConfig{
		Policy:   fastPolicy(),
		Fallback: cands,
	})
	hub := obs.NewHub()
	res, err := sel.Select(obs.WithHub(context.Background(), hub), req)
	if err != nil {
		t.Fatalf("degraded select: %v", err)
	}
	if !res.Degraded {
		t.Fatalf("selection against a dead coordinator should degrade: %+v", res.Stats)
	}

	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/requests?degraded=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []obs.RequestRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatalf("/debug/requests not JSON: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("want 1 degraded record, got %d", len(recs))
	}
	rec := recs[0]
	if rec.Kind != "dist-select" || !rec.Degraded {
		t.Fatalf("record = %+v", rec)
	}
	cause, ok := rec.DegradedCauses["a"]
	if !ok || !strings.Contains(cause, "refused") {
		t.Fatalf("degraded cause for activity a missing or vague: %q (all: %v)", cause, rec.DegradedCauses)
	}
	if rec.Fallbacks == 0 || rec.Retries == 0 {
		t.Fatalf("resilience counters empty: %+v", rec)
	}
	// The requester ran the local phase itself — the fallback's phase
	// timings must be on the record.
	if rec.Phases.Local <= 0 {
		t.Fatalf("fallback local-phase timing missing: %+v", rec.Phases)
	}
	if rec.TraceID == "" || rec.Task == "" {
		t.Fatalf("record not linkable to its trace/task: %+v", rec)
	}
	if len(rec.Bindings) == 0 {
		t.Fatalf("degraded record lost its bindings: %+v", rec)
	}
}
