package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"qasom/internal/qos"
)

func TestDeviceNodeLocalSelect(t *testing.T) {
	tk := seqTask("a")
	cands := genCandidates(tk, 6)
	dev := NewDeviceNode("d1", 0)
	dev.Host("a", cands["a"])
	if got := dev.Activities(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Activities = %v", got)
	}
	lr, err := dev.LocalSelect(context.Background(), LocalRequest{
		ActivityID: "a",
		Properties: twoProps().Properties(),
		Weights:    qos.Weights{1, 1},
		K:          3,
	})
	if err != nil {
		t.Fatalf("LocalSelect: %v", err)
	}
	if lr.ActivityID != "a" || len(lr.Ranked) != 6 {
		t.Errorf("local result shape: %+v", lr)
	}
	// Unknown activity errors.
	if _, err := dev.LocalSelect(context.Background(), LocalRequest{
		ActivityID: "zz", Properties: twoProps().Properties(),
	}); err == nil {
		t.Error("unknown activity should error")
	}
}

func TestDeviceNodeLatencyAndCancellation(t *testing.T) {
	dev := NewDeviceNode("slow", 50*time.Millisecond)
	dev.Host("a", genCandidates(seqTask("a"), 3)["a"])
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := dev.LocalSelect(ctx, LocalRequest{ActivityID: "a", Properties: twoProps().Properties()})
	if err == nil {
		t.Error("cancelled context should abort the simulated latency")
	}
}

func TestDistributedMatchesCentralizedGlobalPhase(t *testing.T) {
	tk := seqTask("a", "b", "c")
	cands := genCandidates(tk, 10)
	req := &Request{
		Task:        tk,
		Properties:  twoProps(),
		Constraints: qos.Constraints{{Property: "rt", Bound: 150}},
	}

	central, err := NewSelector(Options{}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}

	devices := make(map[string]LocalSelector, 3)
	for id, list := range cands {
		dev := NewDeviceNode("dev-"+id, 0)
		dev.Host(id, list)
		devices[id] = dev
	}
	dist, err := NewDistributedSelector(Options{}, devices).Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Feasible != central.Feasible {
		t.Fatalf("feasibility differs: dist %v central %v", dist.Feasible, central.Feasible)
	}
	for id := range central.Assignment {
		if dist.Assignment[id].Service.ID != central.Assignment[id].Service.ID {
			t.Errorf("activity %s: distributed chose %s, centralized %s",
				id, dist.Assignment[id].Service.ID, central.Assignment[id].Service.ID)
		}
	}
}

func TestDistributedParallelLatency(t *testing.T) {
	// Three devices each adding 40ms: the parallel local phase should
	// take roughly one latency, not three.
	tk := seqTask("a", "b", "c")
	cands := genCandidates(tk, 5)
	req := &Request{Task: tk, Properties: twoProps(),
		Constraints: qos.Constraints{{Property: "rt", Bound: 1000}}}
	devices := make(map[string]LocalSelector, 3)
	for id, list := range cands {
		dev := NewDeviceNode("dev-"+id, 40*time.Millisecond)
		dev.Host(id, list)
		devices[id] = dev
	}
	start := time.Now()
	res, err := NewDistributedSelector(Options{}, devices).Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 110*time.Millisecond {
		t.Errorf("local phases did not run in parallel: %v", elapsed)
	}
	if res.Stats.LocalDuration < 40*time.Millisecond {
		t.Errorf("local duration %v should include device latency", res.Stats.LocalDuration)
	}
}

func TestDistributedMissingDevice(t *testing.T) {
	tk := seqTask("a", "b")
	req := &Request{Task: tk, Properties: twoProps()}
	dev := NewDeviceNode("d", 0)
	dev.Host("a", genCandidates(seqTask("a"), 3)["a"])
	_, err := NewDistributedSelector(Options{}, map[string]LocalSelector{"a": dev}).
		Select(context.Background(), req)
	if err == nil || !strings.Contains(err.Error(), "no device") {
		t.Errorf("missing device error = %v", err)
	}
}

func TestDistributedDeviceFailure(t *testing.T) {
	tk := seqTask("a", "b")
	cands := genCandidates(tk, 3)
	req := &Request{Task: tk, Properties: twoProps()}
	good := NewDeviceNode("good", 0)
	good.Host("a", cands["a"])
	empty := NewDeviceNode("empty", 0) // hosts nothing for b
	_, err := NewDistributedSelector(Options{}, map[string]LocalSelector{
		"a": good, "b": empty,
	}).Select(context.Background(), req)
	if err == nil {
		t.Error("device without candidates should surface an error")
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	tk := seqTask("a", "b")
	cands := genCandidates(tk, 8)
	req := &Request{
		Task:        tk,
		Properties:  twoProps(),
		Constraints: qos.Constraints{{Property: "rt", Bound: 200}},
	}

	devices := make(map[string]LocalSelector, 2)
	var stops []func()
	defer func() {
		for _, s := range stops {
			s()
		}
	}()
	for id, list := range cands {
		dev := NewDeviceNode("dev-"+id, 0)
		dev.Host(id, list)
		addr, stop, err := ServeTCP(context.Background(), "127.0.0.1:0", dev)
		if err != nil {
			t.Fatalf("ServeTCP: %v", err)
		}
		stops = append(stops, stop)
		devices[id] = &TCPClient{Addr: addr}
	}

	res, err := NewDistributedSelector(Options{}, devices).Select(context.Background(), req)
	if err != nil {
		t.Fatalf("distributed select over TCP: %v", err)
	}
	if !res.Feasible || len(res.Assignment) != 2 {
		t.Errorf("TCP result: feasible=%v assignment=%d", res.Feasible, len(res.Assignment))
	}

	// Compare against the purely in-process run.
	central, err := NewSelector(Options{}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	for id := range central.Assignment {
		if res.Assignment[id].Service.ID != central.Assignment[id].Service.ID {
			t.Errorf("TCP and in-process selections differ for %s", id)
		}
	}
}

func TestTCPClientErrors(t *testing.T) {
	c := &TCPClient{Addr: "127.0.0.1:1", DialTimeout: 100 * time.Millisecond}
	_, err := c.LocalSelect(context.Background(), LocalRequest{ActivityID: "a"})
	if err == nil {
		t.Error("dial to closed port should error")
	}
	// Remote errors are surfaced.
	dev := NewDeviceNode("empty", 0)
	addr, stop, err := ServeTCP(context.Background(), "127.0.0.1:0", dev)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client := &TCPClient{Addr: addr}
	_, err = client.LocalSelect(context.Background(), LocalRequest{
		ActivityID: "ghost", Properties: twoProps().Properties(),
	})
	if err == nil || !strings.Contains(err.Error(), "remote") {
		t.Errorf("remote failure should surface: %v", err)
	}
}
