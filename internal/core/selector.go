package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"qasom/internal/cluster"
	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/randx"
	"qasom/internal/registry"
	"qasom/internal/task"
)

// Options tune QASSA.
type Options struct {
	// K is the number of quality clusters per property in the local
	// phase; 0 means 4.
	K int
	// Seeding selects the K-means initialisation (ablation knob); 0
	// means k-means++.
	Seeding cluster.Seeding
	// RepairPasses bounds the violation-repair swaps per level; 0 means
	// 4× the activity count.
	RepairPasses int
	// ImprovePasses bounds the utility hill-climbing sweeps; 0 means 3.
	ImprovePasses int
	// FlatGlobal disables the level-wise descent: the global phase runs
	// once over the full utility-sorted candidate lists (ablation knob).
	FlatGlobal bool
	// MaxAlternates caps the per-activity alternate list in the result;
	// 0 means 8.
	MaxAlternates int
	// PruneDominated drops Pareto-dominated candidates before the local
	// phase: a service worse on every property than some other candidate
	// can never improve the composition (ablation knob; shrinks the
	// alternate pool).
	PruneDominated bool
	// Seed drives the algorithm's randomness (K-means seeding); the
	// default 0 is replaced by 1 so runs are reproducible.
	Seed int64
	// Workers bounds the local-phase worker pool: per-activity clustering
	// runs are independent (the property the distributed mode already
	// exploits across devices) and fan out over this many goroutines.
	// 0 means GOMAXPROCS. Results are identical for every worker count:
	// each activity derives its own random source from Seed.
	Workers int
	// NaiveEvaluation routes every global-phase probe through the
	// reference Evaluator (full task-tree re-aggregation per swap)
	// instead of the incremental EvalEngine (ablation knob; results are
	// bit-identical either way — the differential tests enforce it —
	// only the evaluation cost changes).
	NaiveEvaluation bool
	// ParetoMode switches the global phase from scalar selection to
	// Pareto-front selection: the deterministic search runs against a
	// non-dominated archive instead of a single incumbent and the Result
	// carries the feasible trade-off front over Request.Objectives
	// (Result.Front; first element = scalarized-best front member, and
	// the Result's own fields describe that element). Scalar mode is
	// bit-identical with this off.
	ParetoMode bool
	// ParetoExhaustiveBound: when the product of the candidate pool
	// sizes is at or below this bound, front mode enumerates the whole
	// space through the incremental engine, so the returned front is the
	// exact non-dominated set (the regime the exhaustive-reference tests
	// and the front-quality experiment run in). 0 means 4096.
	ParetoExhaustiveBound int
	// ParetoSweepBudget caps the swap probes of the archive sweep used
	// beyond the exhaustive bound (Pareto local search seeded from the
	// scalar incumbent, explored to closure or budget). 0 means 100000.
	ParetoSweepBudget int
	// ParetoMaxFront caps the returned front size; when the archive is
	// larger, crowding-distance pruning keeps the best-spread members
	// (boundary points survive). 0 means unbounded.
	ParetoMaxFront int
}

func (o Options) withDefaults(activities int) Options {
	if o.K <= 0 {
		o.K = 4
	}
	if o.RepairPasses <= 0 {
		o.RepairPasses = 4 * activities
	}
	if o.ImprovePasses <= 0 {
		o.ImprovePasses = 3
	}
	if o.MaxAlternates <= 0 {
		o.MaxAlternates = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ParetoExhaustiveBound <= 0 {
		o.ParetoExhaustiveBound = 4096
	}
	if o.ParetoSweepBudget <= 0 {
		o.ParetoSweepBudget = 100000
	}
	return o
}

// Stats reports the work QASSA performed.
type Stats struct {
	// LevelsExplored counts global-phase level iterations.
	LevelsExplored int
	// Evaluations counts aggregated-QoS evaluations.
	Evaluations int
	// RepairSwaps counts applied violation-repair swaps.
	RepairSwaps int
	// LocalDuration and GlobalDuration split the wall time per phase.
	LocalDuration  time.Duration
	GlobalDuration time.Duration
	// CandidateLookup is the time the embedding layer spent resolving
	// candidate services from the registry before selection started (the
	// qasom façade fills it in; zero for direct core calls).
	CandidateLookup time.Duration
	// Workers is the local-phase worker pool size in force and
	// PeakWorkersBusy the highest observed concurrent occupancy — together
	// they attribute local-phase speedups to actual parallelism.
	Workers         int
	PeakWorkersBusy int
	// MatchCacheHits and MatchCacheMisses snapshot the ontology's
	// match-memo effectiveness over the candidate-lookup phase (filled in
	// by the embedding layer alongside CandidateLookup).
	MatchCacheHits, MatchCacheMisses uint64
	// Resilience counters of a distributed selection (zero for
	// centralized runs): exchanges retried after transient failures,
	// hedged second requests fired, replicas skipped on an open breaker,
	// and activities degraded to requester-side fallback selection.
	Retries, Hedges, BreakerSkips, Fallbacks int
	// DegradedCauses maps each degraded activity to the failure that
	// exhausted its policy (nil when nothing degraded).
	DegradedCauses map[string]string
	// CacheHit marks a Result served from a selection-plan cache: the
	// assignment is bit-identical to a fresh selection at the same
	// registry epoch, but the durations and work counters above describe
	// the original run that populated the cache, not this request.
	CacheHit bool
	// FrontSize is the number of non-dominated members the Pareto-front
	// mode returned (0 in scalar mode).
	FrontSize int
}

// Result is the outcome of a selection run.
type Result struct {
	// Assignment maps every activity to its selected service.
	Assignment Assignment
	// Alternates holds, per activity, ranked fallback candidates for
	// run-time substitution (services that keep the composition feasible
	// when swapped in come first).
	Alternates map[string][]registry.Candidate
	// Aggregated is the composition's aggregated QoS vector.
	Aggregated qos.Vector
	// Utility is the composition utility F in [0,1].
	Utility float64
	// Breakdown maps every activity to the per-candidate utility of its
	// selected service (the score QASSA ranked it by) — the per-service
	// contribution view the flight recorder reports. Computed through
	// the same evaluation kernel as the selection, so it is bit-identical
	// across the naive and incremental engines.
	Breakdown map[string]float64
	// Feasible reports whether all global constraints hold; when false
	// the assignment is the best-effort minimum-violation composition.
	Feasible bool
	// Degraded reports that a distributed selection lost coordinators
	// beyond its retry/hedge policy and fell back to requester-side
	// local selection for at least one activity (see
	// Stats.Fallbacks/DegradedCauses). The selection itself is complete
	// and as good as the requester's registry view allows.
	Degraded bool
	// Violation is the residual constraint violation (0 when feasible).
	// When the request declares dependency rules it additionally counts
	// one unit per violated rule, so a dependency-violating best-effort
	// assignment is never reported as Violation 0.
	Violation float64
	// Front is the feasible non-dominated trade-off surface over the
	// request's objectives, populated only in Pareto-front mode. The
	// first element is the scalarized-best front member — the Result's
	// own Assignment/Aggregated/Utility describe it — and the remainder
	// is ordered by descending crowding distance (best-spread first).
	// Front members carry Assignment, Aggregated, Utility and Breakdown;
	// Alternates are computed for the returned best member only.
	Front []Result
	// Stats reports the algorithm's work.
	Stats Stats
}

// Clone returns a deep copy of the result sharing no mutable state with
// the original: assignment and alternate candidates are deep-copied
// (registry.Candidate.Clone), the aggregated vector and the stats maps
// are duplicated. Selection-plan caches rely on this to hand each caller
// an independent Result while the cached original stays pristine.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	cp := *r
	cp.Assignment = make(Assignment, len(r.Assignment))
	for id, c := range r.Assignment {
		cp.Assignment[id] = c.Clone()
	}
	cp.Alternates = make(map[string][]registry.Candidate, len(r.Alternates))
	for id, list := range r.Alternates {
		cl := make([]registry.Candidate, len(list))
		for i, c := range list {
			cl[i] = c.Clone()
		}
		cp.Alternates[id] = cl
	}
	cp.Aggregated = r.Aggregated.Clone()
	if r.Breakdown != nil {
		cp.Breakdown = make(map[string]float64, len(r.Breakdown))
		for k, v := range r.Breakdown {
			cp.Breakdown[k] = v
		}
	}
	if r.Stats.DegradedCauses != nil {
		m := make(map[string]string, len(r.Stats.DegradedCauses))
		for k, v := range r.Stats.DegradedCauses {
			m[k] = v
		}
		cp.Stats.DegradedCauses = m
	}
	if r.Front != nil {
		cp.Front = make([]Result, len(r.Front))
		for i := range r.Front {
			fc := r.Front[i].Clone()
			if r.Front[i].Alternates == nil {
				fc.Alternates = nil
			}
			cp.Front[i] = *fc
		}
	}
	return &cp
}

// BindingRecords renders the result's assignment as flight-recorder
// binding records (activity, service, per-service utility), sorted by
// activity for deterministic output.
func (r *Result) BindingRecords() []obs.BindingRecord {
	if r == nil {
		return nil
	}
	out := make([]obs.BindingRecord, 0, len(r.Assignment))
	for id, c := range r.Assignment {
		out = append(out, obs.BindingRecord{
			Activity: id,
			Service:  string(c.Service.ID),
			Utility:  r.Breakdown[id],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Activity < out[j].Activity })
	return out
}

// Selector runs QASSA. Create with NewSelector; safe for sequential
// reuse (each Select call re-derives its random source from Seed).
type Selector struct {
	opts Options
}

// NewSelector creates a selector with the given options.
func NewSelector(opts Options) *Selector { return &Selector{opts: opts} }

// Select runs the full algorithm: local phase per activity, then the
// global level-wise phase. It is SelectContext with a background
// context.
func (s *Selector) Select(req *Request, candidates map[string][]registry.Candidate) (*Result, error) {
	return s.SelectContext(context.Background(), req, candidates)
}

// SelectContext runs the full algorithm under a context: the local phase
// (per-activity K-means clustering) fans out over a bounded worker pool
// — per-activity runs are independent, the same property the distributed
// mode exploits across devices — and the global phase checks ctx at
// every level iteration and repair pass. Results are identical for every
// worker count and reproducible per Seed: each activity derives its own
// random source from Options.Seed, exactly as a coordinator device does
// in distributed mode.
func (s *Selector) SelectContext(ctx context.Context, req *Request, candidates map[string][]registry.Candidate) (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	candidates, err := FilterLocal(req, candidates)
	if err != nil {
		return nil, err
	}
	// The evaluator (and so the utility function) is defined over the
	// full admissible pools; Pareto pruning only shrinks the search
	// space — the optimum always sits on the Pareto front, so results
	// stay comparable with unpruned runs and with the baselines.
	eval, err := NewEvaluator(req, candidates)
	if err != nil {
		return nil, err
	}
	if s.opts.PruneDominated {
		candidates = pruneDominated(req.Properties, candidates)
	}
	acts := req.Task.Activities()
	opts := s.opts.withDefaults(len(acts))
	weights := req.weights()

	startLocal := time.Now()
	localCtx, localSpan := obs.StartSpan(ctx, "qassa.local")
	locals, peak, err := runLocalPhase(localCtx, acts, candidates, req.Properties, weights, opts)
	localSpan.End()
	if err != nil {
		return nil, err
	}
	localDur := time.Since(startLocal)

	globalCtx, globalSpan := obs.StartSpan(ctx, "qassa.global")
	res, err := s.selectGlobal(globalCtx, req, eval, locals, opts)
	globalSpan.End()
	if err != nil {
		return nil, err
	}
	res.Stats.LocalDuration = localDur
	res.Stats.Workers = opts.Workers
	res.Stats.PeakWorkersBusy = peak
	return res, nil
}

// runLocalPhase executes the local selection phase for every activity on
// a worker pool of opts.Workers goroutines. The merge is deterministic:
// per-activity results are gathered positionally and errors are reported
// in activity order, so the outcome does not depend on goroutine
// scheduling. It also reports the peak pool occupancy observed.
func runLocalPhase(ctx context.Context, acts []*task.Activity, candidates map[string][]registry.Candidate,
	ps *qos.PropertySet, weights qos.Weights, opts Options) (map[string]*LocalResult, int, error) {
	results := make([]*LocalResult, len(acts))
	errs := make([]error, len(acts))
	sem := make(chan struct{}, opts.Workers)
	var busyGauge *obs.Gauge
	if hub := obs.HubFrom(ctx); hub != nil {
		busyGauge = hub.Metrics.Gauge("qasom_local_workers_busy",
			"QASSA local-phase worker-pool occupancy (concurrent clustering runs).")
	}
	var (
		wg         sync.WaitGroup
		occMu      sync.Mutex
		busy, peak int
	)
	for i, a := range acts {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			occMu.Lock()
			busy++
			if busy > peak {
				peak = busy
			}
			busyGauge.Set(float64(busy))
			occMu.Unlock()
			defer func() {
				occMu.Lock()
				busy--
				busyGauge.Set(float64(busy))
				occMu.Unlock()
			}()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			_, span := obs.StartSpan(ctx, "qassa.cluster")
			span.Annotate("activity", id)
			defer span.End()
			// Each activity gets its own source seeded from Options.Seed —
			// the scheme DeviceNode.LocalSelect already uses — so the
			// clustering is reproducible regardless of worker count or
			// completion order.
			rng := randx.New(opts.Seed)
			results[i], errs[i] = localSelect(id, candidates[id], ps, weights, opts.K, opts.Seeding, rng)
		}(i, a.ID)
	}
	wg.Wait()
	locals := make(map[string]*LocalResult, len(acts))
	for i, a := range acts {
		if errs[i] != nil {
			return nil, peak, errs[i]
		}
		locals[a.ID] = results[i]
	}
	return locals, peak, nil
}

// SelectFromLocal runs only the global phase over pre-computed local
// results (the distributed mode gathers LocalResults from remote devices
// and calls this).
func (s *Selector) SelectFromLocal(req *Request, locals map[string]*LocalResult) (*Result, error) {
	return s.SelectFromLocalContext(context.Background(), req, locals)
}

// SelectFromLocalContext is SelectFromLocal under a cancellable context.
func (s *Selector) SelectFromLocalContext(ctx context.Context, req *Request, locals map[string]*LocalResult) (*Result, error) {
	candidates := make(map[string][]registry.Candidate, len(locals))
	for id, lr := range locals {
		list := make([]registry.Candidate, len(lr.Ranked))
		for i := range lr.Ranked {
			list[i] = lr.Ranked[i].Candidate()
		}
		candidates[id] = list
	}
	eval, err := NewEvaluator(req, candidates)
	if err != nil {
		return nil, err
	}
	opts := s.opts.withDefaults(req.Task.Size())
	return s.selectGlobal(ctx, req, eval, locals, opts)
}

// pruneDominated keeps only each activity's Pareto-optimal candidates.
func pruneDominated(ps *qos.PropertySet, candidates map[string][]registry.Candidate) map[string][]registry.Candidate {
	out := make(map[string][]registry.Candidate, len(candidates))
	for id, list := range candidates {
		vecs := make([]qos.Vector, len(list))
		for i, c := range list {
			vecs[i] = c.Vector
		}
		front := qos.ParetoFront(ps, vecs)
		kept := make([]registry.Candidate, len(front))
		for i, idx := range front {
			kept[i] = list[idx]
		}
		out[id] = kept
	}
	return out
}

func (s *Selector) selectGlobal(ctx context.Context, req *Request, eval *Evaluator, locals map[string]*LocalResult, opts Options) (*Result, error) {
	for _, a := range req.Task.Activities() {
		if locals[a.ID] == nil || len(locals[a.ID].Ranked) == 0 {
			return nil, fmt.Errorf("core: missing local result for activity %q", a.ID)
		}
	}
	start := time.Now()
	g := &globalState{ctx: ctx, req: req, eval: eval, locals: locals, opts: opts}
	var (
		res *Result
		err error
	)
	if opts.ParetoMode {
		res, err = g.runPareto()
	} else {
		res, err = g.run()
	}
	if err != nil {
		return nil, err
	}
	res.Stats.GlobalDuration = time.Since(start)
	return res, nil
}
