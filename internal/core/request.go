// Package core implements QASSA, the QoS-aware service selection
// algorithm that is the thesis's primary contribution (Chapter IV): a
// clustering-based heuristic for selection under global QoS constraints
// (an NP-hard problem) designed for the timeliness, adaptation-support
// and distribution requirements of pervasive environments.
//
// The algorithm runs in two phases. The local phase clusters, per
// activity and per QoS property, the candidate services into ranked
// quality clusters (K-means), grades services into QoS levels QL_r and
// QoS classes QC_{r,e}, and emits a ranked shortlist. The global phase
// descends the level structure: starting from every activity's best
// level it composes a candidate assignment, checks the global
// constraints over the aggregated QoS (Table IV.1), repairs violations
// by targeted swaps, and widens the pools level by level until a
// feasible composition is found, finally hill-climbing utility. The
// result carries ranked alternates per activity — the fuel of run-time
// service substitution.
//
// A distributed mode executes local phases on remote devices (Fig. IV.4)
// through a pluggable transport; see distributed.go.
package core

import (
	"fmt"

	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/task"
)

// Request is the user request R: the task T, the QoS property set P, the
// global constraints U, the preference weights W and the aggregation
// approach.
type Request struct {
	// Task is the user task to realise.
	Task *task.Task
	// Properties is the QoS property set P the request reasons over.
	Properties *qos.PropertySet
	// Constraints is the global constraint set U over aggregated QoS.
	Constraints qos.Constraints
	// Weights is the user preference vector W (nil means uniform).
	Weights qos.Weights
	// Approach folds choices and loops (zero means pessimistic, the
	// thesis default: aggregated QoS is then a guaranteed bound).
	Approach qos.Approach
	// Local holds optional per-activity (local) constraints, keyed by
	// activity ID: hard requirements a candidate's own advertised QoS
	// must meet to be considered at all (the local counterpart of the
	// global set U; see the taxonomy of constraint scopes in the related
	// work, Ch. II §4.2).
	Local map[string]qos.Constraints
	// Dependencies declares inter-service dependency constraints between
	// activities (requires/excludes/co-location edges). They are compiled
	// and validated by Validate (typed errors, see dependency.go) and
	// enforced by the global phase, the alternate ranking and run-time
	// failover: no returned or substituted binding violates them.
	Dependencies []Dependency
	// Objectives names the properties the Pareto-front selection mode
	// optimizes over (2–3 names from Properties); nil means the full
	// property set. Ignored in scalar mode.
	Objectives []string
}

// Validate checks the request is complete and internally consistent.
func (r *Request) Validate() error {
	if r == nil {
		return fmt.Errorf("core: nil request")
	}
	if r.Properties == nil {
		return fmt.Errorf("core: request without property set")
	}
	if err := r.Task.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := r.Constraints.Validate(r.Properties); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if r.Weights != nil {
		if err := r.Weights.Validate(r.Properties); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	for id, cs := range r.Local {
		if r.Task.ActivityByID(id) == nil {
			return fmt.Errorf("core: local constraints on unknown activity %q", id)
		}
		if err := cs.Validate(r.Properties); err != nil {
			return fmt.Errorf("core: local constraints on %q: %w", id, err)
		}
	}
	if len(r.Dependencies) > 0 {
		if _, err := CompileDependencies(r.Task, r.Dependencies); err != nil {
			return err
		}
	}
	if len(r.Objectives) > 0 {
		seen := make(map[string]bool, len(r.Objectives))
		for _, name := range r.Objectives {
			if _, ok := r.Properties.Index(name); !ok {
				return fmt.Errorf("core: objective %q is not in the property set", name)
			}
			if seen[name] {
				return fmt.Errorf("core: duplicate objective %q", name)
			}
			seen[name] = true
		}
	}
	return nil
}

// CompiledDependencies compiles the request's dependency rules (nil when
// the request declares none). The rules were already validated by
// Validate, so errors here indicate the request was mutated since.
func (r *Request) CompiledDependencies() (*DependencySet, error) {
	return CompileDependencies(r.Task, r.Dependencies)
}

// EffectiveObjectives returns the property indices the Pareto-front
// mode optimizes over (every property when Objectives is unset) — the
// projection baselines use to build the exhaustive reference front.
func (r *Request) EffectiveObjectives() []int { return r.objectiveIndices() }

// objectiveIndices resolves the Pareto objectives to property indices
// (the full set when none were named).
func (r *Request) objectiveIndices() []int {
	if len(r.Objectives) == 0 {
		idx := make([]int, r.Properties.Len())
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, 0, len(r.Objectives))
	for _, name := range r.Objectives {
		if j, ok := r.Properties.Index(name); ok {
			idx = append(idx, j)
		}
	}
	return idx
}

// FilterLocal removes, per activity, the candidates whose advertised QoS
// violates the request's local constraints. It returns a new map (inputs
// are not mutated) and fails when filtering leaves an activity without
// candidates — local constraints are hard requirements.
func FilterLocal(req *Request, candidates map[string][]registry.Candidate) (map[string][]registry.Candidate, error) {
	if len(req.Local) == 0 {
		return candidates, nil
	}
	out := make(map[string][]registry.Candidate, len(candidates))
	for id, list := range candidates {
		cs, constrained := req.Local[id]
		if !constrained {
			out[id] = list
			continue
		}
		kept := make([]registry.Candidate, 0, len(list))
		for _, c := range list {
			if cs.Satisfied(req.Properties, c.Vector) {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("core: no candidate for activity %q meets its local constraints %s",
				id, cs)
		}
		out[id] = kept
	}
	return out, nil
}

// EffectiveWeights returns the preference vector in force (uniform when
// none was given).
func (r *Request) EffectiveWeights() qos.Weights { return r.weights() }

// EffectiveApproach returns the aggregation approach in force
// (pessimistic when none was given).
func (r *Request) EffectiveApproach() qos.Approach { return r.approach() }

// weights returns the effective preference vector.
func (r *Request) weights() qos.Weights {
	if r.Weights != nil {
		return r.Weights
	}
	return qos.UniformWeights(r.Properties)
}

// approach returns the effective aggregation approach.
func (r *Request) approach() qos.Approach {
	if r.Approach == 0 {
		return qos.Pessimistic
	}
	return r.Approach
}

// Assignment maps activity IDs to the chosen candidate service.
type Assignment map[string]registry.Candidate

// Evaluator scores assignments for a request: aggregated QoS over the
// task tree, constraint feasibility and the utility function F. The
// utility of an assignment is the weighted mean of per-activity
// candidate utilities, where each activity's candidates are normalized
// over that activity's own population — identical for every algorithm
// (QASSA and the baselines), which makes optimality ratios meaningful.
type Evaluator struct {
	req         *Request
	normalizers map[string]*qos.Normalizer
	weights     qos.Weights
}

// NewEvaluator builds an evaluator from the per-activity candidate
// populations. Every activity of the request's task must have at least
// one candidate.
func NewEvaluator(req *Request, candidates map[string][]registry.Candidate) (*Evaluator, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	e := &Evaluator{
		req:         req,
		normalizers: make(map[string]*qos.Normalizer, len(candidates)),
		weights:     req.weights(),
	}
	for _, a := range req.Task.Activities() {
		pop := candidates[a.ID]
		if len(pop) == 0 {
			return nil, fmt.Errorf("core: activity %q has no candidate services", a.ID)
		}
		vecs := make([]qos.Vector, len(pop))
		for i, c := range pop {
			if len(c.Vector) != req.Properties.Len() {
				return nil, fmt.Errorf("core: candidate %q vector arity %d, want %d",
					c.Service.ID, len(c.Vector), req.Properties.Len())
			}
			vecs[i] = c.Vector
		}
		nz, err := qos.NewNormalizer(req.Properties, vecs)
		if err != nil {
			return nil, fmt.Errorf("core: activity %q: %w", a.ID, err)
		}
		e.normalizers[a.ID] = nz
	}
	return e, nil
}

// Aggregate computes the aggregated QoS vector of an assignment over the
// task tree.
func (e *Evaluator) Aggregate(assign Assignment) qos.Vector {
	vectors := make(map[string]qos.Vector, len(assign))
	for id, c := range assign {
		vectors[id] = c.Vector
	}
	return e.req.Task.AggregateQoS(e.req.Properties, vectors, e.req.approach())
}

// Feasible reports whether the assignment meets every global constraint.
func (e *Evaluator) Feasible(assign Assignment) bool {
	return e.req.Constraints.Satisfied(e.req.Properties, e.Aggregate(assign))
}

// Violation measures the total relative constraint excess of the
// assignment (0 when feasible).
func (e *Evaluator) Violation(assign Assignment) float64 {
	return e.req.Constraints.Violation(e.req.Properties, e.Aggregate(assign))
}

// CandidateUtility scores one candidate of one activity in [0,1].
func (e *Evaluator) CandidateUtility(activityID string, c registry.Candidate) float64 {
	nz := e.normalizers[activityID]
	if nz == nil {
		return 0
	}
	return qos.Utility(nz.Normalize(c.Vector), e.weights)
}

// CandidateUtilityInto is CandidateUtility scoring through a
// caller-provided normalization buffer (len = property arity): the
// allocation-free variant the engine build uses. The same per-element
// Score calls produce the same bits as CandidateUtility.
func (e *Evaluator) CandidateUtilityInto(activityID string, c registry.Candidate, buf qos.Vector) float64 {
	nz := e.normalizers[activityID]
	if nz == nil {
		return 0
	}
	return qos.Utility(nz.NormalizeInto(buf, c.Vector), e.weights)
}

// Utility scores a full assignment: the mean candidate utility over the
// task's activities (F in [0,1]).
func (e *Evaluator) Utility(assign Assignment) float64 {
	acts := e.req.Task.Activities()
	if len(acts) == 0 {
		return 0
	}
	total := 0.0
	for _, a := range acts {
		c, ok := assign[a.ID]
		if !ok {
			continue
		}
		total += e.CandidateUtility(a.ID, c)
	}
	return total / float64(len(acts))
}

// Normalizer exposes the per-activity normalizer (used by the local
// phase and by tests).
func (e *Evaluator) Normalizer(activityID string) *qos.Normalizer {
	return e.normalizers[activityID]
}
