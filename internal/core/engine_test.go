package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"qasom/internal/qos"
	"qasom/internal/task"
	"qasom/internal/workload"
)

// nestedTask hand-builds a task exercising every composition pattern at
// once — sequence, parallel, probabilistic choice and loop, nested three
// levels deep — so the engine's per-kind refold paths are all covered
// even when the workload generator happens not to nest them this way.
func nestedTask() *task.Task {
	act := func(id string) *task.Node {
		return task.NewActivity(&task.Activity{ID: id, Concept: "C"})
	}
	root := task.Sequence(
		act("a"),
		task.Parallel(
			act("b"),
			task.LoopNode(qos.Loop{Min: 1, Max: 3, Expected: 2}, act("c")),
		),
		task.Choice([]float64{0.3, 0.7},
			act("d"),
			task.Sequence(act("e"), act("f")),
		),
	)
	return &task.Task{Name: "nested", Concept: "C", Root: root}
}

// TestDifferentialEngineKernel drives the incremental EvalEngine and the
// naive Evaluator through identical random swap sequences and demands
// bit-identical Violation, Utility, Feasible and Aggregate at every
// step. Shapes cover the generator's three forms plus a hand-nested
// seq/par/choice/loop tree; approaches cover all three aggregation
// modes.
func TestDifferentialEngineKernel(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	type shape struct {
		name string
		mk   func(g *workload.Generator) *task.Task
	}
	shapes := []shape{
		{"linear", func(g *workload.Generator) *task.Task { return g.Task("L", 5, workload.ShapeLinear) }},
		{"mixed", func(g *workload.Generator) *task.Task { return g.Task("M", 6, workload.ShapeMixed) }},
		{"choice", func(g *workload.Generator) *task.Task { return g.Task("C", 6, workload.ShapeChoiceHeavy) }},
		{"nested", func(g *workload.Generator) *task.Task { return nestedTask() }},
	}
	for seed := int64(1); seed <= 8; seed++ {
		for _, sh := range shapes {
			for _, approach := range qos.Approaches() {
				t.Run(fmt.Sprintf("seed=%d/%s/%v", seed, sh.name, approach), func(t *testing.T) {
					g := workload.NewGenerator(seed)
					tk := sh.mk(g)
					cands := g.Candidates(tk, 8, ps, laws)
					req := &Request{
						Task:        tk,
						Properties:  ps,
						Constraints: g.Constraints(tk, ps, laws, workload.AtMean, 3),
						Approach:    approach,
					}
					if err := req.Validate(); err != nil {
						t.Fatalf("request: %v", err)
					}
					eval, err := NewEvaluator(req, cands)
					if err != nil {
						t.Fatalf("evaluator: %v", err)
					}
					eng, err := NewEvalEngine(eval, cands)
					if err != nil {
						t.Fatalf("engine: %v", err)
					}
					ref := newNaiveKernel(eval, cands)

					n := eng.Activities()
					rng := rand.New(rand.NewSource(seed * 31))
					check := func(step int) {
						t.Helper()
						if gv, wv := eng.Violation(), ref.Violation(); gv != wv {
							t.Fatalf("step %d: violation %v != %v", step, gv, wv)
						}
						if gu, wu := eng.Utility(), ref.Utility(); gu != wu {
							t.Fatalf("step %d: utility %v != %v", step, gu, wu)
						}
						if gf, wf := eng.Feasible(), ref.Feasible(); gf != wf {
							t.Fatalf("step %d: feasible %v != %v", step, gf, wf)
						}
						ga, wa := eng.Aggregate(), ref.Aggregate()
						if len(ga) != len(wa) {
							t.Fatalf("step %d: aggregate lengths %d != %d", step, len(ga), len(wa))
						}
						for j := range ga {
							if ga[j] != wa[j] {
								t.Fatalf("step %d: aggregate[%d] %v != %v", step, j, ga[j], wa[j])
							}
						}
					}
					check(-1)
					for step := 0; step < 120; step++ {
						switch rng.Intn(10) {
						case 0: // bulk load of a random assignment
							idx := make([]int, n)
							for a := range idx {
								idx[a] = rng.Intn(eng.PoolSize(a))
							}
							eng.Load(idx)
							ref.Load(idx)
						case 1: // re-assign the current candidate (no-op swap)
							a := rng.Intn(n)
							eng.Assign(a, eng.Current(a))
							ref.Assign(a, ref.Current(a))
						default: // single random swap
							a := rng.Intn(n)
							k := rng.Intn(eng.PoolSize(a))
							eng.Assign(a, k)
							ref.Assign(a, k)
						}
						check(step)
					}
					// Snapshot/assignment agreement and cached utilities.
					if !reflect.DeepEqual(eng.Snapshot(nil), ref.Snapshot(nil)) {
						t.Fatal("snapshots diverge")
					}
					for a := 0; a < n; a++ {
						id := eng.ActivityID(a)
						for k := 0; k < eng.PoolSize(a); k++ {
							want := eval.CandidateUtility(id, eng.Candidate(a, k))
							if got := eng.CandidateUtility(a, k); got != want {
								t.Fatalf("cached utility %s[%d]: %v != %v", id, k, got, want)
							}
						}
					}
				})
			}
		}
	}
}

// TestDifferentialSelector runs the full QASSA pipeline twice per case —
// once through the incremental engine, once with NaiveEvaluation — and
// requires byte-identical Results: assignment, aggregated vector,
// utility, feasibility, violation, alternates and their order, and every
// Stats counter except the wall-clock durations.
func TestDifferentialSelector(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	shapes := []workload.TaskShape{workload.ShapeLinear, workload.ShapeMixed, workload.ShapeChoiceHeavy}
	tights := []workload.Tightness{workload.AtMean, workload.AtMeanPlusSigma}
	approaches := qos.Approaches()
	workers := []int{1, 4}

	run := 0
	for seed := int64(1); seed <= 8; seed++ {
		for _, sh := range shapes {
			for _, tight := range tights {
				approach := approaches[run%len(approaches)]
				w := workers[run%len(workers)]
				run++
				t.Run(fmt.Sprintf("seed=%d/shape=%d/tight=%v/%v/w=%d", seed, sh, tight, approach, w), func(t *testing.T) {
					g := workload.NewGenerator(seed)
					tk := g.Task("R", 6, sh)
					cands := g.Candidates(tk, 12, ps, laws)
					req := &Request{
						Task:        tk,
						Properties:  ps,
						Constraints: g.Constraints(tk, ps, laws, tight, 3),
						Approach:    approach,
					}
					fast, err := NewSelector(Options{Workers: w}).Select(req, cands)
					if err != nil {
						t.Fatalf("incremental: %v", err)
					}
					slow, err := NewSelector(Options{Workers: w, NaiveEvaluation: true}).Select(req, cands)
					if err != nil {
						t.Fatalf("naive: %v", err)
					}
					// Wall-clock durations legitimately differ; everything
					// else must match bit for bit.
					fast.Stats.LocalDuration, slow.Stats.LocalDuration = 0, 0
					fast.Stats.GlobalDuration, slow.Stats.GlobalDuration = 0, 0
					if !reflect.DeepEqual(fast, slow) {
						t.Fatalf("results diverge:\nincremental: %+v\nnaive:       %+v", fast, slow)
					}
				})
			}
		}
	}
}

// TestDifferentialEngineNested pins the nested-tree engine against the
// task package's own reference aggregation (AggregateQoS) — a third,
// independently written implementation — over exhaustive assignments of
// a tiny pool.
func TestDifferentialEngineNested(t *testing.T) {
	ps := qos.StandardSet()
	laws := workload.DefaultLaws(ps)
	for _, approach := range qos.Approaches() {
		g := workload.NewGenerator(7)
		tk := nestedTask()
		cands := g.Candidates(tk, 2, ps, laws)
		req := &Request{Task: tk, Properties: ps, Approach: approach}
		eval, err := NewEvaluator(req, cands)
		if err != nil {
			t.Fatalf("evaluator: %v", err)
		}
		eng, err := NewEvalEngine(eval, cands)
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		acts := tk.Activities()
		n := len(acts)
		idx := make([]int, n)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				vecs := make(map[string]qos.Vector, n)
				for a, k := range idx {
					vecs[acts[a].ID] = eng.Candidate(a, k).Vector
				}
				want := tk.AggregateQoS(ps, vecs, approach)
				got := eng.Aggregate()
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("%v idx %v: aggregate[%d] %v != %v", approach, idx, j, got[j], want[j])
					}
				}
				return
			}
			for k := 0; k < eng.PoolSize(i); k++ {
				idx[i] = k
				eng.Assign(i, k)
				rec(i + 1)
			}
		}
		rec(0)
	}
}
