package core

import (
	"context"
	"fmt"

	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

// CandidateSource is where a selection gets its per-activity candidates:
// a single registry view, a flat federation or a branch of the two-tier
// hierarchy — anything that resolves an abstract activity to concrete,
// QoS-aligned services.
type CandidateSource interface {
	CandidatesForActivity(a *task.Activity, ps *qos.PropertySet) []registry.Candidate
}

// NoCandidatesError reports an activity no published service can
// implement.
type NoCandidatesError struct {
	Activity string
	Concept  semantics.ConceptID
}

func (e *NoCandidatesError) Error() string {
	return fmt.Sprintf("no services for activity %q (capability %q)", e.Activity, e.Concept)
}

// GatherCandidates resolves every activity of the task against the
// source, honouring ctx at per-activity boundaries (the lookup returns
// ctx.Err() promptly and leaves the source unmutated). An activity with
// no candidates fails the whole gather with a *NoCandidatesError.
func GatherCandidates(ctx context.Context, t *task.Task, src CandidateSource, ps *qos.PropertySet) (map[string][]registry.Candidate, error) {
	out := make(map[string][]registry.Candidate, t.Size())
	for _, a := range t.Activities() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cands := src.CandidatesForActivity(a, ps)
		if len(cands) == 0 {
			return nil, &NoCandidatesError{Activity: a.ID, Concept: a.Concept}
		}
		out[a.ID] = cands
	}
	return out, nil
}
