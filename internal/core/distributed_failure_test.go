package core

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/resilience"
)

// fastPolicy keeps failure-matrix tests quick: microsecond backoffs, no
// jitter surprises, short per-attempt deadline only where a test needs it.
func fastPolicy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts: 3,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		Jitter:      -1,
	}
}

// closedPort returns an address nothing listens on (listen, grab, close).
func closedPort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// crashingListener accepts connections and closes them immediately: the
// client observes a truncated gob stream (coordinator crash mid-exchange).
func crashingListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	return ln.Addr().String()
}

// liveReplica builds an in-process transport hosting the activity.
func liveReplica(name, actID string, cands []registry.Candidate) Transport {
	dev := NewDeviceNode(name, 0)
	dev.Host(actID, cands)
	return &InProcessTransport{Name: name, Selector: dev}
}

func singleActivityRequest() (*Request, map[string][]registry.Candidate) {
	tk := seqTask("a")
	cands := genCandidates(tk, 6)
	return &Request{Task: tk, Properties: twoProps()}, cands
}

// Coordinator down before dial: a replica on a closed port plus a live
// replica — the selection succeeds after a retry rotates to the live one.
func TestDistributedRetriesDeadReplica(t *testing.T) {
	req, cands := singleActivityRequest()
	replicas := map[string][]Transport{"a": {
		&TCPTransport{Addr: closedPort(t), DialTimeout: 200 * time.Millisecond},
		liveReplica("live", "a", cands["a"]),
	}}
	sel := NewResilientDistributedSelector(Options{}, replicas, DistConfig{Policy: fastPolicy()})
	res, err := sel.Select(context.Background(), req)
	if err != nil {
		t.Fatalf("Select with one dead replica: %v", err)
	}
	if res.Stats.Retries == 0 {
		t.Errorf("expected retries after the dead replica, stats = %+v", res.Stats)
	}
	if res.Degraded || res.Stats.Fallbacks != 0 {
		t.Errorf("live replica served: selection must not be degraded (%+v)", res.Stats)
	}
}

// Coordinator crashes mid-exchange: the truncated gob stream classifies
// retryable and the retry lands on the live replica.
func TestDistributedCrashMidExchange(t *testing.T) {
	req, cands := singleActivityRequest()
	replicas := map[string][]Transport{"a": {
		&TCPTransport{Addr: crashingListener(t), DialTimeout: 200 * time.Millisecond},
		liveReplica("live", "a", cands["a"]),
	}}
	sel := NewResilientDistributedSelector(Options{}, replicas, DistConfig{Policy: fastPolicy()})
	res, err := sel.Select(context.Background(), req)
	if err != nil {
		t.Fatalf("Select with a crashing replica: %v", err)
	}
	if res.Stats.Retries == 0 {
		t.Errorf("expected retries after the mid-exchange crash, stats = %+v", res.Stats)
	}
}

// Coordinator replies after the per-attempt deadline: the attempt times
// out (retryable) and the retry rotates to a fast replica.
func TestDistributedReplyAfterDeadline(t *testing.T) {
	req, cands := singleActivityRequest()
	slow := NewDeviceNode("slow", 200*time.Millisecond)
	slow.Host("a", cands["a"])
	replicas := map[string][]Transport{"a": {
		&InProcessTransport{Name: "slow", Selector: slow},
		liveReplica("fast", "a", cands["a"]),
	}}
	p := fastPolicy()
	p.AttemptTimeout = 20 * time.Millisecond
	sel := NewResilientDistributedSelector(Options{}, replicas, DistConfig{Policy: p})
	res, err := sel.Select(context.Background(), req)
	if err != nil {
		t.Fatalf("Select with a too-slow replica: %v", err)
	}
	if res.Stats.Retries == 0 {
		t.Errorf("expected a retry after the attempt deadline, stats = %+v", res.Stats)
	}
}

// A replica that kept failing trips its breaker; the next Select skips it
// without dialing (breaker state persists on the selector).
func TestDistributedBreakerSkipsDeadReplica(t *testing.T) {
	req, cands := singleActivityRequest()
	replicas := map[string][]Transport{"a": {
		&TCPTransport{Addr: closedPort(t), DialTimeout: 200 * time.Millisecond},
		liveReplica("live", "a", cands["a"]),
	}}
	p := fastPolicy()
	p.BreakerThreshold = 1
	p.BreakerCooldown = time.Minute
	sel := NewResilientDistributedSelector(Options{}, replicas, DistConfig{Policy: p})
	if _, err := sel.Select(context.Background(), req); err != nil {
		t.Fatalf("first Select: %v", err)
	}
	res, err := sel.Select(context.Background(), req)
	if err != nil {
		t.Fatalf("second Select: %v", err)
	}
	if res.Stats.BreakerSkips == 0 {
		t.Errorf("second Select should skip the open breaker, stats = %+v", res.Stats)
	}
	if res.Stats.Retries != 0 {
		t.Errorf("breaker skip must not burn a retry, stats = %+v", res.Stats)
	}
}

// Every coordinator down, fallback view present: graceful degradation —
// no error, degraded flag set, and (same seed, same code path) the
// assignment matches the centralized selection exactly.
func TestDistributedDegradedFallbackMatchesCentralized(t *testing.T) {
	tk := seqTask("a", "b")
	cands := genCandidates(tk, 8)
	req := &Request{
		Task:        tk,
		Properties:  twoProps(),
		Constraints: qos.Constraints{{Property: "rt", Bound: 200}},
	}
	replicas := map[string][]Transport{
		"a": {&TCPTransport{Addr: closedPort(t), DialTimeout: 200 * time.Millisecond}},
		"b": {&TCPTransport{Addr: closedPort(t), DialTimeout: 200 * time.Millisecond}},
	}
	sel := NewResilientDistributedSelector(Options{}, replicas,
		DistConfig{Policy: fastPolicy(), Fallback: cands})
	res, err := sel.Select(context.Background(), req)
	if err != nil {
		t.Fatalf("degraded Select must not fail: %v", err)
	}
	if !res.Degraded || res.Stats.Fallbacks != 2 {
		t.Fatalf("expected 2 degraded activities, got Degraded=%v stats=%+v", res.Degraded, res.Stats)
	}
	if len(res.Stats.DegradedCauses) != 2 {
		t.Errorf("degraded causes missing: %+v", res.Stats.DegradedCauses)
	}
	central, err := NewSelector(Options{}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible != central.Feasible {
		t.Fatalf("feasibility differs: degraded %v central %v", res.Feasible, central.Feasible)
	}
	for id := range central.Assignment {
		if res.Assignment[id].Service.ID != central.Assignment[id].Service.ID {
			t.Errorf("activity %s: degraded chose %s, centralized %s",
				id, res.Assignment[id].Service.ID, central.Assignment[id].Service.ID)
		}
	}
}

// Acceptance: with 20% of coordinators failed the selection still returns
// a feasible result — degraded flag set, no error.
func TestDistributedTwentyPercentCoordinatorFailure(t *testing.T) {
	tk := seqTask("a", "b", "c", "d", "e")
	cands := genCandidates(tk, 8)
	req := &Request{Task: tk, Properties: twoProps()}
	replicas := make(map[string][]Transport, 5)
	for _, id := range []string{"b", "c", "d", "e"} {
		replicas[id] = []Transport{liveReplica("dev-"+id, id, cands[id])}
	}
	// 1 of 5 coordinators (20%) is gone.
	replicas["a"] = []Transport{&TCPTransport{Addr: closedPort(t), DialTimeout: 200 * time.Millisecond}}
	sel := NewResilientDistributedSelector(Options{}, replicas,
		DistConfig{Policy: fastPolicy(), Fallback: cands})
	res, err := sel.Select(context.Background(), req)
	if err != nil {
		t.Fatalf("selection must survive 20%% coordinator failure: %v", err)
	}
	if !res.Degraded || res.Stats.Fallbacks != 1 {
		t.Errorf("expected exactly the lost coordinator degraded: Degraded=%v stats=%+v",
			res.Degraded, res.Stats)
	}
	if len(res.Assignment) != 5 {
		t.Errorf("assignment incomplete: %d of 5 activities bound", len(res.Assignment))
	}
}

// Deterministic-result guarantee with resilience enabled and no faults:
// same seed, same selection as both the plain distributed and the
// centralized runs.
func TestDistributedResilientDeterminism(t *testing.T) {
	tk := seqTask("a", "b", "c")
	cands := genCandidates(tk, 10)
	req := &Request{
		Task:        tk,
		Properties:  twoProps(),
		Constraints: qos.Constraints{{Property: "rt", Bound: 150}},
	}
	opts := Options{Seed: 42}
	central, err := NewSelector(opts).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	replicas := make(map[string][]Transport, 3)
	for id, list := range cands {
		replicas[id] = []Transport{liveReplica("dev-"+id, id, list)}
	}
	p := fastPolicy()
	p.HedgeDelay = 50 * time.Millisecond // enabled but never firing on healthy replicas
	for run := 0; run < 2; run++ {
		res, err := NewResilientDistributedSelector(opts, replicas,
			DistConfig{Policy: p, Fallback: cands}).Select(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded || res.Stats.Retries != 0 {
			t.Fatalf("healthy run went through resilience paths: %+v", res.Stats)
		}
		for id := range central.Assignment {
			if res.Assignment[id].Service.ID != central.Assignment[id].Service.ID {
				t.Errorf("run %d activity %s: resilient chose %s, centralized %s",
					run, id, res.Assignment[id].Service.ID, central.Assignment[id].Service.ID)
			}
		}
	}
}

// A canceled selection reports the caller's cancellation cause, not the
// generic i/o timeout the transport observed.
func TestDistributedCancellationCause(t *testing.T) {
	req, cands := singleActivityRequest()
	slow := NewDeviceNode("slow", 5*time.Second)
	slow.Host("a", cands["a"])
	replicas := map[string][]Transport{"a": {&InProcessTransport{Name: "slow", Selector: slow}}}
	sel := NewResilientDistributedSelector(Options{}, replicas, DistConfig{Policy: fastPolicy()})

	abandoned := errors.New("composition abandoned by user")
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel(abandoned)
	}()
	_, err := sel.Select(ctx, req)
	if err == nil {
		t.Fatal("canceled Select must error")
	}
	if !errors.Is(err, abandoned) {
		t.Errorf("error lost the cancellation cause: %v", err)
	}
	if strings.Contains(err.Error(), "i/o timeout") {
		t.Errorf("cancellation reported as an i/o timeout: %v", err)
	}
}

// The TCP server cuts loose a connection that never sends its request
// once the idle deadline expires.
func TestServeTCPIdleDeadline(t *testing.T) {
	dev := NewDeviceNode("d", 0)
	dev.Host("a", genCandidates(seqTask("a"), 3)["a"])
	addr, stop, err := ServeTCPOptions(context.Background(), "127.0.0.1:0", dev,
		ServeOptions{IdleTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Write nothing: the server's read deadline should close the
	// connection, surfacing EOF on our side well before the test timeout.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	start := time.Now()
	buf := make([]byte, 1)
	_, rerr := conn.Read(buf)
	if rerr == nil {
		t.Fatal("expected the server to sever the idle connection")
	}
	var nerr net.Error
	if errors.As(rerr, &nerr) && nerr.Timeout() {
		t.Fatalf("server never closed the idle connection (client read timed out after %s)", time.Since(start))
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("idle connection lingered %s before the server cut it", elapsed)
	}
}

// ErrDropExchange makes the server sever without replying: the client
// sees a truncated stream, classified retryable.
type droppingSelector struct{}

func (droppingSelector) LocalSelect(ctx context.Context, req LocalRequest) (*LocalResult, error) {
	return nil, ErrDropExchange
}

func TestServeTCPDropExchange(t *testing.T) {
	addr, stop, err := ServeTCP(context.Background(), "127.0.0.1:0", droppingSelector{})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	tr := &TCPTransport{Addr: addr}
	_, xerr := tr.Exchange(context.Background(), LocalRequest{
		ActivityID: "a", Properties: twoProps().Properties(),
	})
	if xerr == nil {
		t.Fatal("dropped exchange must error on the client")
	}
	if resilience.ClassOf(xerr) != resilience.Retryable {
		t.Errorf("truncated exchange should classify retryable: %v", xerr)
	}
}
