package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"qasom/internal/qos"
)

func TestSelectContextCancelled(t *testing.T) {
	tk := seqTask("a", "b", "c")
	cands := genCandidates(tk, 20)
	req := &Request{
		Task:        tk,
		Properties:  twoProps(),
		Constraints: qos.Constraints{{Property: "rt", Bound: 80}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := NewSelector(Options{}).SelectContext(ctx, req, cands)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SelectContext on cancelled ctx = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled select took %v, want prompt return", elapsed)
	}
}

func TestSelectContextDeadlineMidSelection(t *testing.T) {
	// A deadline that expires while the global phase runs: the selection
	// must surface DeadlineExceeded from a level/repair boundary rather
	// than running to completion.
	tk := seqTask("a", "b", "c", "d", "e", "f", "g", "h")
	cands := genCandidates(tk, 60)
	req := &Request{
		Task:        tk,
		Properties:  twoProps(),
		Constraints: qos.Constraints{{Property: "rt", Bound: 1}}, // infeasible: maximum repair work
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	_, err := NewSelector(Options{}).SelectContext(ctx, req, cands)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SelectContext past deadline = %v, want context.DeadlineExceeded", err)
	}
}

func TestSelectDeterministicAcrossWorkerCounts(t *testing.T) {
	tk := seqTask("a", "b", "c", "d", "e")
	cands := genCandidates(tk, 40)
	req := &Request{
		Task:        tk,
		Properties:  twoProps(),
		Constraints: qos.Constraints{{Property: "rt", Bound: 200}},
	}
	fingerprint := func(workers int, seed int64) string {
		res, err := NewSelector(Options{Workers: workers, Seed: seed}).Select(req, cands)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Stats.Workers != workers && !(workers == 0 && res.Stats.Workers == runtime.GOMAXPROCS(0)) {
			t.Errorf("Stats.Workers = %d, want %d", res.Stats.Workers, workers)
		}
		out := ""
		for _, a := range tk.Activities() {
			out += fmt.Sprintf("%s=%s;alts=[", a.ID, res.Assignment[a.ID].Service.ID)
			for _, alt := range res.Alternates[a.ID] {
				out += string(alt.Service.ID) + ","
			}
			out += "]\n"
		}
		return out
	}
	for _, seed := range []int64{1, 7, 42} {
		sequential := fingerprint(1, seed)
		parallel := fingerprint(runtime.GOMAXPROCS(0), seed)
		if sequential != parallel {
			t.Errorf("seed %d: selections differ between 1 and %d workers:\nsequential:\n%s\nparallel:\n%s",
				seed, runtime.GOMAXPROCS(0), sequential, parallel)
		}
		if again := fingerprint(runtime.GOMAXPROCS(0), seed); again != parallel {
			t.Errorf("seed %d: repeated parallel run not reproducible", seed)
		}
	}
}

func TestLocalPhaseReportsOccupancy(t *testing.T) {
	tk := seqTask("a", "b", "c", "d")
	cands := genCandidates(tk, 30)
	req := &Request{Task: tk, Properties: twoProps()}
	res, err := NewSelector(Options{Workers: 2}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PeakWorkersBusy < 1 || res.Stats.PeakWorkersBusy > 2 {
		t.Errorf("PeakWorkersBusy = %d, want within [1,2]", res.Stats.PeakWorkersBusy)
	}
}
