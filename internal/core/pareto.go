package core

// Pareto-front selection mode (ROADMAP item 4): instead of returning the
// single scalarized-best composition, the global phase maintains a
// non-dominated archive over the request's objectives and returns the
// feasible trade-off front, letting the caller pick. The search is the
// existing deterministic machinery pointed at an archive instead of a
// single incumbent:
//
//   - The scalar search runs first, unchanged: its winner seeds the
//     archive and remains the backward-compatible answer shape.
//   - Small instances (pool-size product ≤ Options.ParetoExhaustiveBound)
//     are enumerated exhaustively through the incremental engine — each
//     step is one O(path·p) ProbeVector re-fold, so at ℓ ≤ 8 the exact
//     front costs milliseconds. The returned front then EQUALS the
//     exhaustive reference front (the differential tests hold it to
//     baseline.ExhaustiveFront).
//   - Larger instances run a deterministic Pareto local search: archive
//     members are explored in insertion order, every admissible one-swap
//     neighbour is offered to the archive, and the sweep runs to closure
//     or Options.ParetoSweepBudget probes.
//
// Dependency rules gate both regimes: only assignments with zero rule
// violations enter the archive, and the sweep consults the admissibility
// mask before probing a swap.

import (
	"fmt"
	"sort"

	"qasom/internal/qos"
)

// paretoEntry is one archived feasible assignment.
type paretoEntry struct {
	id    int
	snap  []int      // per-activity pool indices
	obj   qos.Vector // aggregated QoS projected onto the objectives
	agg   qos.Vector // full aggregated QoS vector
	util  float64    // scalarized utility F
	crowd float64    // crowding distance, filled in by ordered()
}

// paretoSearch carries one archive-based search over a globalState.
type paretoSearch struct {
	g      *globalState
	props  []*qos.Property
	objIdx []int
	arch   *qos.Archive
	store  map[int]*paretoEntry
	queue  []int // archive IDs in insertion order (the exploration order)
	nextID int
	aggBuf qos.Vector
	objBuf qos.Vector
}

// runPareto executes the Pareto-front selection mode.
func (g *globalState) runPareto() (*Result, error) {
	objIdx := g.req.objectiveIndices()
	if len(objIdx) < 2 {
		return nil, fmt.Errorf("core: Pareto-front mode needs at least 2 objectives, got %d", len(objIdx))
	}
	scalar, err := g.run()
	if err != nil {
		return nil, err
	}
	scalarSnap := g.eng.Snapshot(nil) // finish left the engine on the winner
	props := make([]*qos.Property, len(objIdx))
	for i, j := range objIdx {
		props[i] = g.req.Properties.At(j)
	}
	ps := &paretoSearch{
		g:      g,
		props:  props,
		objIdx: objIdx,
		arch:   qos.NewArchive(props),
		store:  make(map[int]*paretoEntry),
		aggBuf: make(qos.Vector, g.req.Properties.Len()),
		objBuf: make(qos.Vector, len(objIdx)),
	}
	if scalar.Feasible {
		ps.offer()
	}
	total := 1
	exhaustive := true
	for a := range g.ranked {
		total *= len(g.ranked[a])
		if total > g.opts.ParetoExhaustiveBound {
			exhaustive = false
			break
		}
	}
	if exhaustive {
		err = ps.enumerate()
	} else {
		err = ps.sweep()
	}
	if err != nil {
		return nil, err
	}
	front := ps.ordered()
	if len(front) == 0 {
		// No feasible assignment exists (or none was found): the
		// best-effort minimum-violation result, with no front — callers
		// check Feasible exactly as in scalar mode.
		scalar.Stats = g.stats
		return scalar, nil
	}
	res := scalar
	if !scalar.Feasible || !equalIndices(front[0].snap, scalarSnap) {
		// The best front member differs from the scalar incumbent (the
		// archive search can find feasible points the level-wise repair
		// missed, or a strictly better scalarization): rebuild the full
		// result — alternates, breakdown — around it.
		g.eng.Load(front[0].snap)
		res = g.finish(true)
	}
	res.Front = make([]Result, len(front))
	for i, ent := range front {
		res.Front[i] = g.frontEntry(ent)
	}
	res.Stats = g.stats
	res.Stats.FrontSize = len(front)
	return res, nil
}

// frontEntry materialises one archived assignment as a slim Result
// (no alternates — those are computed for the returned best member).
func (g *globalState) frontEntry(ent *paretoEntry) Result {
	assign := make(Assignment, len(g.acts))
	breakdown := make(map[string]float64, len(g.acts))
	for a, id := range g.acts {
		assign[id] = g.ranked[a][ent.snap[a]].Candidate()
		breakdown[id] = g.eng.CandidateUtility(a, ent.snap[a])
	}
	return Result{
		Assignment: assign,
		Aggregated: ent.agg,
		Utility:    ent.util,
		Breakdown:  breakdown,
		Feasible:   true,
	}
}

// offer evaluates the engine's current assignment and inserts it into
// the archive when it is feasible (constraints and dependency rules) and
// not dominated. The pre-insert checks run on reused buffers — the probe
// hot path allocates only when a new front member is actually archived.
func (ps *paretoSearch) offer() {
	g := ps.g
	if g.violation() != 0 {
		return
	}
	agg := g.eng.AggregateInto(ps.aggBuf)
	for i, j := range ps.objIdx {
		ps.objBuf[i] = agg[j]
	}
	if ps.arch.Dominated(ps.objBuf) {
		return
	}
	obj := append(qos.Vector(nil), ps.objBuf...)
	ent := &paretoEntry{
		id:   ps.nextID,
		snap: g.eng.Snapshot(nil),
		obj:  obj,
		agg:  append(qos.Vector(nil), agg...),
		util: g.eng.Utility(),
	}
	inserted, removed := ps.arch.Insert(obj, ent.id)
	if !inserted {
		return
	}
	ps.nextID++
	ps.store[ent.id] = ent
	ps.queue = append(ps.queue, ent.id)
	for _, rid := range removed {
		delete(ps.store, rid)
	}
}

// enumerate offers every assignment over the full pools to the archive:
// the exact-front regime. Depth-first candidate assignment keeps every
// step an O(path) incremental re-fold.
func (ps *paretoSearch) enumerate() error {
	g := ps.g
	leaves := 0
	var rec func(a int) error
	rec = func(a int) error {
		if a == len(g.acts) {
			leaves++
			if leaves&1023 == 0 {
				if err := g.ctx.Err(); err != nil {
					return err
				}
			}
			ps.offer()
			return nil
		}
		for i := 0; i < len(g.ranked[a]); i++ {
			g.eng.Assign(a, i)
			if err := rec(a + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// sweep is the deterministic Pareto local search for instances beyond
// the exhaustive bound: explore archive members in insertion order,
// offering every dependency-admissible one-swap neighbour, until the
// archive closes (every member explored, nothing new) or the probe
// budget is spent.
func (ps *paretoSearch) sweep() error {
	g := ps.g
	budget := g.opts.ParetoSweepBudget
	for qi := 0; qi < len(ps.queue); qi++ {
		if err := g.ctx.Err(); err != nil {
			return err
		}
		id := ps.queue[qi]
		ent, live := ps.store[id]
		if !live {
			continue // evicted before exploration
		}
		g.eng.Load(ent.snap)
		for a := range g.acts {
			prev := ent.snap[a]
			for i := 0; i < len(g.ranked[a]); i++ {
				if i == prev {
					continue
				}
				if budget <= 0 {
					return nil
				}
				if g.deps != nil && !g.deps.admissible(a, i, g.eng) {
					continue
				}
				budget--
				g.eng.Assign(a, i)
				ps.offer()
			}
			g.eng.Assign(a, prev)
		}
	}
	return nil
}

// ordered flattens the archive into the result front: the
// scalarized-best member first (the backward-compatible pick), then by
// descending crowding distance (boundary and best-spread members first),
// with utility and snapshot order as deterministic tie-breaks. A
// ParetoMaxFront cap prunes the most crowded members.
func (ps *paretoSearch) ordered() []*paretoEntry {
	pts := ps.arch.Points()
	if len(pts) == 0 {
		return nil
	}
	ents := make([]*paretoEntry, len(pts))
	vecs := make([]qos.Vector, len(pts))
	for i, pt := range pts {
		ents[i] = ps.store[pt.ID]
		vecs[i] = ents[i].obj
	}
	for i, c := range qos.CrowdingDistance(ps.props, vecs) {
		ents[i].crowd = c
	}
	best := 0
	for i := 1; i < len(ents); i++ {
		if ents[i].util > ents[best].util ||
			(ents[i].util == ents[best].util && lessSnap(ents[i].snap, ents[best].snap)) {
			best = i
		}
	}
	ents[0], ents[best] = ents[best], ents[0]
	rest := ents[1:]
	sort.SliceStable(rest, func(x, y int) bool {
		if rest[x].crowd != rest[y].crowd {
			return rest[x].crowd > rest[y].crowd
		}
		if rest[x].util != rest[y].util {
			return rest[x].util > rest[y].util
		}
		return lessSnap(rest[x].snap, rest[y].snap)
	})
	if limit := ps.g.opts.ParetoMaxFront; limit > 0 && len(ents) > limit {
		ents = ents[:limit]
	}
	return ents
}

// lessSnap orders assignment snapshots lexicographically.
func lessSnap(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
