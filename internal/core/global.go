package core

import (
	"context"
	"math"
	"sort"

	"qasom/internal/registry"
)

// globalState carries one global-phase run (§3.3): level-wise pool
// widening, constraint repair and utility hill-climbing. The context is
// checked at level-iteration and repair-pass boundaries so a cancelled
// selection returns promptly without leaving partial state behind.
//
// All probing goes through an evalKernel holding the one current
// assignment as dense candidate indices into each activity's full
// ranked shortlist: the incremental EvalEngine by default (O(path)
// swap probes, cached candidate utilities, zero allocations per probe),
// or the naive Evaluator route when Options.NaiveEvaluation asks for
// the reference path. Both produce bit-identical results (enforced by
// the differential tests), so the switch is a pure performance knob.
type globalState struct {
	ctx    context.Context
	req    *Request
	eval   *Evaluator
	locals map[string]*LocalResult
	opts   Options
	stats  Stats

	acts   []string            // dense activity index → ID, task order
	ranked [][]RankedCandidate // per activity: full ranked shortlist
	eng    evalKernel

	// depSet/deps carry the request's compiled dependency rules (nil when
	// none are declared — the scalar hot path is untouched then). deps is
	// the pool-bound form: per-probe admissibility and violation checks
	// over pool-index bitmaps, allocation-free.
	depSet *DependencySet
	deps   *boundDeps
}

// init resolves the dense activity indexing and builds the evaluation
// kernel over the full ranked shortlists (alternates probe beyond the
// current level pool, so the kernel must address every ranked entry).
func (g *globalState) init() error {
	acts := g.req.Task.Activities()
	g.acts = make([]string, len(acts))
	g.ranked = make([][]RankedCandidate, len(acts))
	for i, a := range acts {
		g.acts[i] = a.ID
		g.ranked[i] = g.locals[a.ID].Ranked
	}
	ds, err := g.req.CompiledDependencies()
	if err != nil {
		return err
	}
	g.depSet = ds
	g.deps = bindDeps(ds, g.ranked)
	if g.opts.NaiveEvaluation {
		pools := make(map[string][]registry.Candidate, len(acts))
		for i, a := range acts {
			list := make([]registry.Candidate, len(g.ranked[i]))
			for k := range g.ranked[i] {
				list[k] = g.ranked[i][k].Candidate()
			}
			pools[a.ID] = list
		}
		g.eng = newNaiveKernel(g.eval, pools)
		return nil
	}
	eng, err := newEvalEngineRanked(g.eval, g.ranked)
	if err != nil {
		return err
	}
	g.eng = eng
	return nil
}

// run executes the global selection phase and assembles the result.
func (g *globalState) run() (*Result, error) {
	if err := g.init(); err != nil {
		return nil, err
	}
	maxLevel := 1
	for _, id := range g.acts {
		if l := g.locals[id].Levels; l > maxLevel {
			maxLevel = l
		}
	}
	if g.opts.FlatGlobal {
		// Ablation: one iteration over the full candidate lists.
		maxLevel = 1
	}

	var bestInfeasible []int
	bestViolation := math.Inf(1)

	for level := 1; level <= maxLevel; level++ {
		if err := g.ctx.Err(); err != nil {
			return nil, err
		}
		g.stats.LevelsExplored++
		limits := g.poolLimits(level)
		// Try several starting points: the utility-best assignment first,
		// then one "constraint-friendly" start per constrained property
		// (each activity's best candidate for that property). For a single
		// additive constraint the friendly start is the global optimum of
		// that property, so feasibility is found whenever it exists; for
		// multiple constraints the starts diversify the repair search.
		// Identical starts are deduplicated — with one constrained
		// property the utility-best and constraint-friendly starts often
		// coincide, and repairing twice from the same assignment is pure
		// rework.
		for _, start := range g.startingPoints(limits) {
			g.eng.Load(start)
			ok, err := g.repair(limits)
			if err != nil {
				return nil, err
			}
			if ok {
				g.improve(limits)
				return g.finish(true), nil
			}
			if v := g.violation(); v < bestViolation {
				bestViolation = v
				bestInfeasible = g.eng.Snapshot(nil)
			}
		}
	}
	if err := g.ctx.Err(); err != nil {
		return nil, err
	}

	// No feasible composition found at any level: return the best-effort
	// minimum-violation assignment over the full pools.
	if bestInfeasible == nil {
		bestInfeasible = g.bestUtilityStart(g.poolLimits(maxLevel))
	}
	g.eng.Load(bestInfeasible)
	return g.finish(false), nil
}

// poolLimits returns, per activity, how many ranked candidates are in
// play at the given level (the cumulative shortlist of §3.3); with
// FlatGlobal every candidate is in the pool regardless of level.
func (g *globalState) poolLimits(level int) []int {
	limits := make([]int, len(g.acts))
	for a := range g.acts {
		ranked := g.ranked[a]
		if g.opts.FlatGlobal {
			limits[a] = len(ranked)
			continue
		}
		// Ranked is sorted by level first: take the prefix.
		end := 0
		for end < len(ranked) && ranked[end].Level <= level {
			end++
		}
		if end == 0 {
			end = 1 // always keep at least the top candidate
		}
		limits[a] = end
	}
	return limits
}

// startingPoints yields the repair starting assignments for one level
// as per-activity candidate indices: the utility-best assignment, then
// one per constrained property where each activity picks its best
// candidate for that property — with exact duplicates removed.
func (g *globalState) startingPoints(limits []int) [][]int {
	starts := make([][]int, 0, 1+len(g.req.Constraints))
	starts = append(starts, g.bestUtilityStart(limits))
	for _, c := range g.req.Constraints {
		j, ok := g.req.Properties.Index(c.Property)
		if !ok {
			continue
		}
		p := g.req.Properties.At(j)
		start := make([]int, len(g.acts))
		for a := range g.acts {
			best := 0
			for i := 1; i < limits[a]; i++ {
				if p.Better(g.ranked[a][i].Vector[j], g.ranked[a][best].Vector[j]) {
					best = i
				}
			}
			start[a] = best
		}
		starts = append(starts, start)
	}
	uniq := make([][]int, 0, len(starts))
	for _, s := range starts {
		dup := false
		for _, u := range uniq {
			if equalIndices(u, s) {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, s)
		}
	}
	return uniq
}

func equalIndices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bestUtilityStart picks, per activity, the highest-utility pool
// member (on the evaluator's scale — RankedCandidate.Utility is
// normalized over the possibly-pruned local pool and may differ).
func (g *globalState) bestUtilityStart(limits []int) []int {
	start := make([]int, len(g.acts))
	for a := range g.acts {
		best := 0
		bestU := g.eng.CandidateUtility(a, 0)
		for i := 1; i < limits[a]; i++ {
			if u := g.eng.CandidateUtility(a, i); u > bestU {
				best, bestU = i, u
			}
		}
		start[a] = best
	}
	return start
}

// violation measures the current assignment's constraint excess,
// counting the logical aggregate evaluation. With dependency rules in
// force it adds one unit per violated rule, so the repair loop drives
// QoS excess and dependency violations down through the same greedy
// swaps; without rules the scalar path is bit-identical to before.
func (g *globalState) violation() float64 {
	g.stats.Evaluations++
	v := g.eng.Violation()
	if g.deps != nil {
		v += float64(g.deps.violations(g.eng))
	}
	return v
}

// feasibleNow reports combined feasibility: every global constraint and
// every dependency rule holds for the current assignment.
func (g *globalState) feasibleNow() bool {
	if !g.eng.Feasible() {
		return false
	}
	return g.deps == nil || g.deps.violations(g.eng) == 0
}

// repair drives the assignment toward feasibility: each pass applies the
// single swap (one activity, one pool candidate) that reduces the total
// constraint violation the most, preferring higher utility among equal
// reductions. It stops at feasibility, when no swap helps, when the
// pass budget is spent, or when the selection context is cancelled.
// Utility is consulted only for swaps that can still win (those not
// worse than the best violation seen), so losing probes cost one
// violation read and nothing more.
func (g *globalState) repair(limits []int) (bool, error) {
	cur := g.violation()
	if cur == 0 {
		return true, nil
	}
	for pass := 0; pass < g.opts.RepairPasses; pass++ {
		if err := g.ctx.Err(); err != nil {
			return false, err
		}
		bestAct, bestCand := -1, -1
		bestViol := cur
		bestUtil := math.Inf(-1)
		for a := range g.acts {
			prev := g.eng.Current(a)
			prevID := g.ranked[a][prev].Service.ID
			for i := 0; i < limits[a]; i++ {
				if g.ranked[a][i].Service.ID == prevID {
					continue
				}
				g.eng.Assign(a, i)
				v := g.violation()
				if v > bestViol || (v == bestViol && bestAct < 0) {
					continue // cannot win: skip the utility lookup
				}
				u := g.eng.CandidateUtility(a, i)
				if v < bestViol || u > bestUtil {
					bestViol, bestUtil = v, u
					bestAct, bestCand = a, i
				}
			}
			g.eng.Assign(a, prev)
		}
		if bestAct < 0 || bestViol >= cur {
			return false, nil
		}
		g.eng.Assign(bestAct, bestCand)
		g.stats.RepairSwaps++
		cur = bestViol
		if cur == 0 {
			return true, nil
		}
		// Dependency-aware repair: a swap that leaves (or creates) a
		// violated dependency edge immediately re-opens the activities
		// adjacent to the swapped one, rebinding each to its best
		// admissible candidate before the next full pass — the targeted
		// fix for "binding A restricts candidates for B".
		if g.deps != nil && g.deps.violations(g.eng) > 0 {
			cur = g.reopenDependents(bestAct, limits, cur)
			if cur == 0 {
				return true, nil
			}
		}
	}
	return g.violation() == 0, nil
}

// reopenDependents revisits the dependency-adjacent activities of a
// just-swapped binding, greedily rebinding each to the pool candidate
// that lowers the combined violation the most (utility breaks ties).
// Returns the resulting combined violation.
func (g *globalState) reopenDependents(act int, limits []int, cur float64) float64 {
	for _, b := range g.deps.adjacentIdx[act] {
		prev := g.eng.Current(b)
		bestCand := -1
		bestViol := cur
		bestUtil := math.Inf(-1)
		for i := 0; i < limits[b]; i++ {
			if i == prev {
				continue
			}
			g.eng.Assign(b, i)
			v := g.violation()
			if v > bestViol || (v == bestViol && bestCand < 0) {
				continue
			}
			u := g.eng.CandidateUtility(b, i)
			if v < bestViol || u > bestUtil {
				bestViol, bestUtil = v, u
				bestCand = i
			}
		}
		if bestCand >= 0 && bestViol < cur {
			g.eng.Assign(b, bestCand)
			g.stats.RepairSwaps++
			cur = bestViol
			if cur == 0 {
				return 0
			}
		} else {
			g.eng.Assign(b, prev)
		}
	}
	return cur
}

// improve hill-climbs utility while preserving feasibility. Utility is
// separable per activity, so each sweep tries, per activity, the
// pool candidates in descending utility and keeps the best feasible one.
func (g *globalState) improve(limits []int) {
	for pass := 0; pass < g.opts.ImprovePasses; pass++ {
		improved := false
		for a := range g.acts {
			prev := g.eng.Current(a)
			prevID := g.ranked[a][prev].Service.ID
			bestUtil := g.eng.CandidateUtility(a, prev)
			bestCand := -1
			for i := 0; i < limits[a]; i++ {
				if g.ranked[a][i].Service.ID == prevID {
					continue
				}
				u := g.eng.CandidateUtility(a, i)
				if u <= bestUtil {
					continue
				}
				// The dependency mask gates the probe: an inadmissible
				// candidate cannot be part of a feasible climb step.
				if g.deps != nil && !g.deps.admissible(a, i, g.eng) {
					continue
				}
				g.eng.Assign(a, i)
				g.stats.Evaluations++
				if g.feasibleNow() {
					bestUtil = u
					bestCand = i
				}
			}
			if bestCand >= 0 {
				g.eng.Assign(a, bestCand)
				improved = true
			} else {
				g.eng.Assign(a, prev)
			}
		}
		if !improved {
			break
		}
	}
}

// finish assembles the result: aggregated QoS, utility, and per-activity
// alternates ordered substitution-first (candidates that keep the
// composition feasible when swapped in alone, then by utility).
func (g *globalState) finish(feasible bool) *Result {
	assign := make(Assignment, len(g.acts))
	for a, id := range g.acts {
		assign[id] = g.ranked[a][g.eng.Current(a)].Candidate()
	}
	viol := g.eng.Violation()
	if g.deps != nil {
		viol += float64(g.deps.violations(g.eng))
	}
	res := &Result{
		Assignment: assign,
		Alternates: make(map[string][]registry.Candidate, len(g.acts)),
		Aggregated: g.eng.Aggregate(),
		Utility:    g.eng.Utility(),
		Feasible:   feasible,
		Violation:  viol,
		Breakdown:  make(map[string]float64, len(g.acts)),
	}
	for a, id := range g.acts {
		// Per-service utility contribution through the same kernel the
		// selection ranked with (bit-identical across naive/incremental
		// engines — the differential tests rely on it).
		res.Breakdown[id] = g.eng.CandidateUtility(a, g.eng.Current(a))
	}
	for a, id := range g.acts {
		// Alternates draw from the FULL ranked shortlist, not just the
		// level pool the winner came from: the thesis's design keeps
		// "several concrete services per abstract activity" available for
		// run-time substitution even when the top level alone satisfied
		// the request.
		res.Alternates[id] = g.alternatesFor(a)
	}
	res.Stats = g.stats
	return res
}

// altEntry is one substitution candidate under evaluation, addressed by
// its pool index — the registry.Candidate is materialised only for the
// MaxAlternates winners, not for the whole pool.
type altEntry struct {
	idx     int
	keepsOK bool
	utility float64
}

// alternatesFor ranks the remaining pool members of one activity as
// substitution fallbacks: candidates that keep the composition feasible
// when swapped in alone come first, then by utility, then by ID.
func (g *globalState) alternatesFor(a int) []registry.Candidate {
	pool := g.ranked[a]
	prev := g.eng.Current(a)
	chosen := pool[prev].Service.ID
	alts := make([]altEntry, 0, len(pool))
	for i := range pool {
		if pool[i].Service.ID == chosen {
			continue
		}
		// The dependency mask removes inadmissible candidates outright:
		// alternates feed run-time failover, which must never be handed a
		// substitution that breaks a dependency rule.
		if g.deps != nil && !g.deps.admissible(a, i, g.eng) {
			continue
		}
		g.eng.Assign(a, i)
		g.stats.Evaluations++
		alts = append(alts, altEntry{
			idx: i,
			// A substitution must keep the constraints AND the dependency
			// rules intact to count as feasibility-preserving.
			keepsOK: g.feasibleNow(),
			utility: g.eng.CandidateUtility(a, i),
		})
	}
	g.eng.Assign(a, prev)
	sort.SliceStable(alts, func(a, b int) bool {
		if alts[a].keepsOK != alts[b].keepsOK {
			return alts[a].keepsOK
		}
		if alts[a].utility != alts[b].utility {
			return alts[a].utility > alts[b].utility
		}
		return pool[alts[a].idx].Service.ID < pool[alts[b].idx].Service.ID
	})
	limit := g.opts.MaxAlternates
	if limit > len(alts) {
		limit = len(alts)
	}
	out := make([]registry.Candidate, limit)
	for i := 0; i < limit; i++ {
		out[i] = pool[alts[i].idx].Candidate()
	}
	return out
}

func cloneAssignment(a Assignment) Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}
