package core

import (
	"context"
	"math"
	"sort"

	"qasom/internal/registry"
)

// globalState carries one global-phase run (§3.3): level-wise pool
// widening, constraint repair and utility hill-climbing. The context is
// checked at level-iteration and repair-pass boundaries so a cancelled
// selection returns promptly without leaving partial state behind.
type globalState struct {
	ctx    context.Context
	req    *Request
	eval   *Evaluator
	locals map[string]*LocalResult
	opts   Options
	stats  Stats
}

// run executes the global selection phase and assembles the result.
func (g *globalState) run() (*Result, error) {
	acts := g.activityIDs()
	maxLevel := 1
	for _, id := range acts {
		if l := g.locals[id].Levels; l > maxLevel {
			maxLevel = l
		}
	}
	if g.opts.FlatGlobal {
		// Ablation: one iteration over the full candidate lists.
		maxLevel = 1
	}

	var bestInfeasible Assignment
	bestViolation := math.Inf(1)

	for level := 1; level <= maxLevel; level++ {
		if err := g.ctx.Err(); err != nil {
			return nil, err
		}
		g.stats.LevelsExplored++
		pools := g.pools(acts, level)
		// Try several starting points: the utility-best assignment first,
		// then one "constraint-friendly" start per constrained property
		// (each activity's best candidate for that property). For a single
		// additive constraint the friendly start is the global optimum of
		// that property, so feasibility is found whenever it exists; for
		// multiple constraints the starts diversify the repair search.
		for _, start := range g.startingPoints(acts, pools) {
			assign := start
			ok, err := g.repair(acts, assign, pools)
			if err != nil {
				return nil, err
			}
			if ok {
				g.improve(acts, assign, pools)
				return g.finish(acts, assign, true), nil
			}
			if v := g.violation(assign); v < bestViolation {
				bestViolation = v
				bestInfeasible = cloneAssignment(assign)
			}
		}
	}
	if err := g.ctx.Err(); err != nil {
		return nil, err
	}

	// No feasible composition found at any level: return the best-effort
	// minimum-violation assignment over the full pools.
	pools := g.pools(acts, maxLevel)
	if bestInfeasible == nil {
		bestInfeasible = g.bestUtilityAssignment(acts, pools)
	}
	return g.finish(acts, bestInfeasible, false), nil
}

func (g *globalState) activityIDs() []string {
	acts := g.req.Task.Activities()
	out := make([]string, len(acts))
	for i, a := range acts {
		out[i] = a.ID
	}
	return out
}

// pools returns, per activity, the candidates whose QoS level is at most
// level (the cumulative shortlist of §3.3); with FlatGlobal every
// candidate is in the pool regardless of level.
func (g *globalState) pools(acts []string, level int) map[string][]RankedCandidate {
	out := make(map[string][]RankedCandidate, len(acts))
	for _, id := range acts {
		ranked := g.locals[id].Ranked
		if g.opts.FlatGlobal {
			out[id] = ranked
			continue
		}
		// Ranked is sorted by level first: take the prefix.
		end := 0
		for end < len(ranked) && ranked[end].Level <= level {
			end++
		}
		if end == 0 {
			end = 1 // always keep at least the top candidate
		}
		out[id] = ranked[:end]
	}
	return out
}

// startingPoints yields the repair starting assignments for one level:
// the utility-best assignment, then one per constrained property where
// each activity picks its best candidate for that property.
func (g *globalState) startingPoints(acts []string, pools map[string][]RankedCandidate) []Assignment {
	out := make([]Assignment, 0, 1+len(g.req.Constraints))
	out = append(out, g.bestUtilityAssignment(acts, pools))
	for _, c := range g.req.Constraints {
		j, ok := g.req.Properties.Index(c.Property)
		if !ok {
			continue
		}
		p := g.req.Properties.At(j)
		assign := make(Assignment, len(acts))
		for _, id := range acts {
			best := &pools[id][0]
			for i := 1; i < len(pools[id]); i++ {
				if p.Better(pools[id][i].Vector[j], best.Vector[j]) {
					best = &pools[id][i]
				}
			}
			assign[id] = best.Candidate()
		}
		out = append(out, assign)
	}
	return out
}

// utilOf scores a pool member with the evaluator's utility function —
// the single scale every phase of the global algorithm compares on
// (RankedCandidate.Utility is normalized over the possibly-pruned local
// pool and may differ).
func (g *globalState) utilOf(id string, rc *RankedCandidate) float64 {
	return g.eval.CandidateUtility(id, registry.Candidate{Service: rc.Service, Vector: rc.Vector})
}

// bestUtilityAssignment picks, per activity, the highest-utility pool
// member.
func (g *globalState) bestUtilityAssignment(acts []string, pools map[string][]RankedCandidate) Assignment {
	assign := make(Assignment, len(acts))
	for _, id := range acts {
		best := &pools[id][0]
		bestU := g.utilOf(id, best)
		for i := 1; i < len(pools[id]); i++ {
			if u := g.utilOf(id, &pools[id][i]); u > bestU {
				best, bestU = &pools[id][i], u
			}
		}
		assign[id] = best.Candidate()
	}
	return assign
}

func (g *globalState) violation(assign Assignment) float64 {
	g.stats.Evaluations++
	return g.eval.Violation(assign)
}

// repair drives the assignment toward feasibility: each pass applies the
// single swap (one activity, one pool candidate) that reduces the total
// constraint violation the most, preferring higher utility among equal
// reductions. It stops at feasibility, when no swap helps, when the
// pass budget is spent, or when the selection context is cancelled.
func (g *globalState) repair(acts []string, assign Assignment, pools map[string][]RankedCandidate) (bool, error) {
	cur := g.violation(assign)
	if cur == 0 {
		return true, nil
	}
	for pass := 0; pass < g.opts.RepairPasses; pass++ {
		if err := g.ctx.Err(); err != nil {
			return false, err
		}
		bestAct := ""
		var bestCand registry.Candidate
		bestViol := cur
		bestUtil := math.Inf(-1)
		for _, id := range acts {
			prev := assign[id]
			for i := range pools[id] {
				rc := &pools[id][i]
				if rc.Service.ID == prev.Service.ID {
					continue
				}
				assign[id] = rc.Candidate()
				v := g.violation(assign)
				u := g.utilOf(id, rc)
				if v < bestViol || (v == bestViol && bestAct != "" && u > bestUtil) {
					bestViol = v
					bestUtil = u
					bestAct = id
					bestCand = rc.Candidate()
				}
			}
			assign[id] = prev
		}
		if bestAct == "" || bestViol >= cur {
			return false, nil
		}
		assign[bestAct] = bestCand
		g.stats.RepairSwaps++
		cur = bestViol
		if cur == 0 {
			return true, nil
		}
	}
	return g.violation(assign) == 0, nil
}

// improve hill-climbs utility while preserving feasibility. Utility is
// separable per activity, so each sweep tries, per activity, the
// pool candidates in descending utility and keeps the best feasible one.
func (g *globalState) improve(acts []string, assign Assignment, pools map[string][]RankedCandidate) {
	for pass := 0; pass < g.opts.ImprovePasses; pass++ {
		improved := false
		for _, id := range acts {
			prev := assign[id]
			bestUtil := g.eval.CandidateUtility(id, assign[id])
			var bestCand *RankedCandidate
			for i := range pools[id] {
				rc := &pools[id][i]
				if rc.Service.ID == prev.Service.ID {
					continue
				}
				u := g.utilOf(id, rc)
				if u <= bestUtil {
					continue
				}
				assign[id] = rc.Candidate()
				g.stats.Evaluations++
				if g.eval.Feasible(assign) {
					bestUtil = u
					bestCand = rc
				}
			}
			if bestCand != nil {
				assign[id] = bestCand.Candidate()
				improved = true
			} else {
				assign[id] = prev
			}
		}
		if !improved {
			break
		}
	}
}

// finish assembles the result: aggregated QoS, utility, and per-activity
// alternates ordered substitution-first (candidates that keep the
// composition feasible when swapped in alone, then by utility).
func (g *globalState) finish(acts []string, assign Assignment, feasible bool) *Result {
	res := &Result{
		Assignment: assign,
		Alternates: make(map[string][]registry.Candidate, len(acts)),
		Aggregated: g.eval.Aggregate(assign),
		Utility:    g.eval.Utility(assign),
		Feasible:   feasible,
		Violation:  g.eval.Violation(assign),
		Stats:      g.stats,
	}
	for _, id := range acts {
		// Alternates draw from the FULL ranked shortlist, not just the
		// level pool the winner came from: the thesis's design keeps
		// "several concrete services per abstract activity" available for
		// run-time substitution even when the top level alone satisfied
		// the request.
		res.Alternates[id] = g.alternatesFor(id, assign, g.locals[id].Ranked)
	}
	res.Stats = g.stats
	return res
}

// altEntry is one substitution candidate under evaluation.
type altEntry struct {
	cand    registry.Candidate
	keepsOK bool
	utility float64
}

// alternatesFor ranks the remaining pool members of one activity as
// substitution fallbacks: candidates that keep the composition feasible
// when swapped in alone come first, then by utility, then by ID.
func (g *globalState) alternatesFor(id string, assign Assignment, pool []RankedCandidate) []registry.Candidate {
	chosen := assign[id].Service.ID
	prev := assign[id]
	alts := make([]altEntry, 0, len(pool))
	for i := range pool {
		rc := &pool[i]
		if rc.Service.ID == chosen {
			continue
		}
		assign[id] = rc.Candidate()
		g.stats.Evaluations++
		alts = append(alts, altEntry{cand: rc.Candidate(), keepsOK: g.eval.Feasible(assign), utility: g.utilOf(id, rc)})
	}
	assign[id] = prev
	sort.SliceStable(alts, func(a, b int) bool {
		if alts[a].keepsOK != alts[b].keepsOK {
			return alts[a].keepsOK
		}
		if alts[a].utility != alts[b].utility {
			return alts[a].utility > alts[b].utility
		}
		return alts[a].cand.Service.ID < alts[b].cand.Service.ID
	})
	limit := g.opts.MaxAlternates
	if limit > len(alts) {
		limit = len(alts)
	}
	out := make([]registry.Candidate, limit)
	for i := 0; i < limit; i++ {
		out[i] = alts[i].cand
	}
	return out
}

func cloneAssignment(a Assignment) Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}
