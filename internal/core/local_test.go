package core

import (
	"context"
	"testing"

	"qasom/internal/qos"
	"qasom/internal/registry"
)

func TestRequestLocalValidation(t *testing.T) {
	req := &Request{
		Task:       seqTask("a", "b"),
		Properties: twoProps(),
		Local: map[string]qos.Constraints{
			"a": {{Property: "rt", Bound: 100}},
		},
	}
	if err := req.Validate(); err != nil {
		t.Fatalf("valid local constraints rejected: %v", err)
	}
	req.Local = map[string]qos.Constraints{"ghost": {{Property: "rt", Bound: 1}}}
	if err := req.Validate(); err == nil {
		t.Error("local constraints on unknown activity should fail")
	}
	req.Local = map[string]qos.Constraints{"a": {{Property: "nope", Bound: 1}}}
	if err := req.Validate(); err == nil {
		t.Error("local constraints on unknown property should fail")
	}
}

func TestFilterLocal(t *testing.T) {
	req := &Request{
		Task:       seqTask("a", "b"),
		Properties: twoProps(),
		Local: map[string]qos.Constraints{
			"a": {{Property: "rt", Bound: 50}},
		},
	}
	cands := map[string][]registry.Candidate{
		"a": {cand("fast", 40, 0.9), cand("slow", 100, 0.99)},
		"b": {cand("any", 80, 0.9)},
	}
	filtered, err := FilterLocal(req, cands)
	if err != nil {
		t.Fatalf("FilterLocal: %v", err)
	}
	if len(filtered["a"]) != 1 || filtered["a"][0].Service.ID != "fast" {
		t.Errorf("activity a filtered to %v", filtered["a"])
	}
	if len(filtered["b"]) != 1 {
		t.Error("unconstrained activity should pass through")
	}
	// Inputs untouched.
	if len(cands["a"]) != 2 {
		t.Error("FilterLocal must not mutate its input")
	}
	// Unsatisfiable.
	req.Local["a"] = qos.Constraints{{Property: "rt", Bound: 1}}
	if _, err := FilterLocal(req, cands); err == nil {
		t.Error("unsatisfiable local constraint should error")
	}
	// No local constraints: same map returned.
	req.Local = nil
	same, err := FilterLocal(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(same["a"]) != 2 {
		t.Error("no-op filter should keep everything")
	}
}

func TestSelectWithLocalConstraints(t *testing.T) {
	tk := seqTask("a", "b")
	cands := genCandidates(tk, 8) // a-s0 is fastest (rt 20), a-s7 slowest (rt 90)
	req := &Request{
		Task:       tk,
		Properties: twoProps(),
		Local: map[string]qos.Constraints{
			"a": {{Property: "rt", Bound: 35}}, // only a-s0 (20) and a-s1 (30)
		},
		Weights: qos.Weights{0.1, 0.9}, // availability-heavy: would prefer slow ones
	}
	res, err := NewSelector(Options{}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Assignment["a"].Service.ID
	if got != "a-s0" && got != "a-s1" {
		t.Errorf("local constraint violated: chose %s", got)
	}
	// Alternates respect the filter too.
	for _, alt := range res.Alternates["a"] {
		if alt.Vector[0] > 35 {
			t.Errorf("alternate %s violates the local constraint (rt %g)", alt.Service.ID, alt.Vector[0])
		}
	}
}

func TestSelectPruneDominated(t *testing.T) {
	tk := seqTask("a")
	// "hero" dominates everything; with pruning it is the only survivor.
	cands := map[string][]registry.Candidate{
		"a": {
			cand("hero", 10, 0.99),
			cand("dupe", 10, 0.99),
			cand("loser1", 50, 0.9),
			cand("loser2", 90, 0.8),
		},
	}
	req := &Request{Task: tk, Properties: twoProps()}
	res, err := NewSelector(Options{PruneDominated: true}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Assignment["a"].Service.ID; got != "hero" {
		t.Errorf("chose %s, want hero", got)
	}
	if len(res.Alternates["a"]) != 0 {
		t.Errorf("dominated candidates should be pruned from alternates: %v", res.Alternates["a"])
	}
	// Without pruning the losers stay available as alternates.
	res, err = NewSelector(Options{}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alternates["a"]) == 0 {
		t.Error("without pruning alternates should remain")
	}
}

func TestSelectPruneDominatedKeepsTradeoffs(t *testing.T) {
	tk := seqTask("a")
	cands := map[string][]registry.Candidate{
		"a": {
			cand("fast", 10, 0.85),
			cand("safe", 80, 0.99),
			cand("bad", 90, 0.80), // dominated by both
		},
	}
	req := &Request{Task: tk, Properties: twoProps()}
	res, err := NewSelector(Options{PruneDominated: true}).Select(req, cands)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{string(res.Assignment["a"].Service.ID): true}
	for _, alt := range res.Alternates["a"] {
		ids[string(alt.Service.ID)] = true
	}
	if !ids["fast"] || !ids["safe"] {
		t.Errorf("tradeoff candidates must survive pruning: %v", ids)
	}
	if ids["bad"] {
		t.Error("dominated candidate survived pruning")
	}
}

func TestDistributedLocalConstraints(t *testing.T) {
	tk := seqTask("a")
	cands := genCandidates(tk, 5)
	req := &Request{
		Task:       tk,
		Properties: twoProps(),
		Local:      map[string]qos.Constraints{"a": {{Property: "rt", Bound: 25}}},
	}
	dev := NewDeviceNode("d", 0)
	dev.Host("a", cands["a"])
	res, err := NewDistributedSelector(Options{}, map[string]LocalSelector{"a": dev}).
		Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Assignment["a"].Service.ID; got != "a-s0" {
		t.Errorf("device-side filter failed: chose %s", got)
	}
	// Unsatisfiable device-side.
	req.Local["a"] = qos.Constraints{{Property: "rt", Bound: 1}}
	if _, err := NewDistributedSelector(Options{}, map[string]LocalSelector{"a": dev}).
		Select(context.Background(), req); err == nil {
		t.Error("unsatisfiable local constraint should surface from the device")
	}
}
