package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"qasom/internal/cluster"
	"qasom/internal/qos"
	"qasom/internal/registry"
)

// localScratch bundles the transient working buffers of one localSelect
// run — the clustering scratch, the normalizer population view, the
// per-property score column, and the rank matrix. Everything in it is
// fully overwritten before use and nothing escapes the call, so pooled
// reuse cannot change results; only Scores (retained by the returned
// RankedCandidates) is allocated fresh, as a single backing array.
type localScratch struct {
	cl        cluster.Scratch
	vecs      []qos.Vector
	values    []float64
	ranks     [][]int
	ranksBack []int
}

var localScratchPool = sync.Pool{New: func() any { return new(localScratch) }}

// RankedCandidate is one service after the local selection phase: its
// normalized scores, utility, and its position in the QoS level/class
// structure of §3.2 (Level is the best cluster rank r* the service
// reaches on any property; ClassSize is e, the number of properties
// whose cluster has that rank — the service belongs to QoS class
// QC_{r*,e}).
type RankedCandidate struct {
	Service registry.Description
	// Vector is the raw advertised QoS vector.
	Vector qos.Vector
	// Scores is the direction-adjusted normalized vector ([0,1], 1 best).
	Scores qos.Vector
	// Utility is the weighted utility of Scores.
	Utility float64
	// Level is the service's QoS level r* (1 = best).
	Level int
	// ClassSize is e: how many properties sit in rank-r* clusters.
	ClassSize int
}

// LocalResult is the outcome of the local phase for one activity: the
// candidates ordered best-first by (Level asc, ClassSize desc, Utility
// desc), plus the number of levels produced by the clustering.
type LocalResult struct {
	ActivityID string
	Ranked     []RankedCandidate
	Levels     int
}

// Candidate converts a ranked entry back to a registry candidate.
func (rc *RankedCandidate) Candidate() registry.Candidate {
	return registry.Candidate{Service: rc.Service, Vector: rc.Vector}
}

// localSelect runs the local selection phase of QASSA for one activity
// (§3.2): min–max normalize the candidate population, cluster each
// property's scores into K ranked clusters with K-means, grade every
// service into its QoS level and class, and emit the ranked shortlist.
func localSelect(activityID string, cands []registry.Candidate, ps *qos.PropertySet,
	weights qos.Weights, k int, seeding cluster.Seeding, rng *rand.Rand) (*LocalResult, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: activity %q has no candidates", activityID)
	}
	if k < 1 {
		k = 1
	}
	scr := localScratchPool.Get().(*localScratch)
	defer localScratchPool.Put(scr)
	if cap(scr.vecs) < len(cands) {
		scr.vecs = make([]qos.Vector, len(cands))
	}
	vecs := scr.vecs[:len(cands)]
	for i, c := range cands {
		vecs[i] = c.Vector
	}
	nz, err := qos.NewNormalizer(ps, vecs)
	if err != nil {
		return nil, fmt.Errorf("core: activity %q: %w", activityID, err)
	}

	// Scores are retained by the result; one backing array for them all.
	scoresBack := make([]float64, len(cands)*ps.Len())
	ranked := make([]RankedCandidate, len(cands))
	for i, c := range cands {
		scores := qos.Vector(scoresBack[i*ps.Len() : (i+1)*ps.Len() : (i+1)*ps.Len()])
		nz.NormalizeInto(scores, c.Vector)
		ranked[i] = RankedCandidate{
			Service: c.Service,
			Vector:  c.Vector,
			Scores:  scores,
			Utility: qos.Utility(scores, weights),
		}
	}

	// Cluster each property's score column into ranked quality clusters.
	levels := 1
	if cap(scr.ranks) < ps.Len() {
		scr.ranks = make([][]int, ps.Len())
	}
	ranks := scr.ranks[:ps.Len()] // property → per-candidate rank
	if cap(scr.ranksBack) < ps.Len()*len(cands) {
		scr.ranksBack = make([]int, ps.Len()*len(cands))
	}
	if cap(scr.values) < len(cands) {
		scr.values = make([]float64, len(cands))
	}
	values := scr.values[:len(cands)]
	for j := 0; j < ps.Len(); j++ {
		for i := range ranked {
			values[i] = ranked[i].Scores[j]
		}
		res, err := scr.cl.KMeans1D(values, k, cluster.Options{
			Seeding: seeding,
			Rand:    rng,
		})
		if err != nil {
			return nil, fmt.Errorf("core: clustering %q/%s: %w", activityID, ps.At(j).Name, err)
		}
		ranks[j] = scr.ranksBack[j*len(cands) : (j+1)*len(cands)]
		scr.cl.RanksInto(ranks[j], res, true) // scores: higher is better
		if res.K() > levels {
			levels = res.K()
		}
	}

	// Grade services: Level = best (minimum) cluster rank over the
	// properties; ClassSize = number of properties at that rank.
	for i := range ranked {
		best := ranks[0][i]
		for j := 1; j < ps.Len(); j++ {
			if ranks[j][i] < best {
				best = ranks[j][i]
			}
		}
		e := 0
		for j := 0; j < ps.Len(); j++ {
			if ranks[j][i] == best {
				e++
			}
		}
		ranked[i].Level = best
		ranked[i].ClassSize = e
	}

	sort.SliceStable(ranked, func(a, b int) bool {
		ra, rb := &ranked[a], &ranked[b]
		if ra.Level != rb.Level {
			return ra.Level < rb.Level
		}
		if ra.ClassSize != rb.ClassSize {
			return ra.ClassSize > rb.ClassSize
		}
		if ra.Utility != rb.Utility {
			return ra.Utility > rb.Utility
		}
		return ra.Service.ID < rb.Service.ID
	})

	return &LocalResult{ActivityID: activityID, Ranked: ranked, Levels: levels}, nil
}
