package core

import (
	"fmt"
	"math/rand"
	"sort"

	"qasom/internal/cluster"
	"qasom/internal/qos"
	"qasom/internal/registry"
)

// RankedCandidate is one service after the local selection phase: its
// normalized scores, utility, and its position in the QoS level/class
// structure of §3.2 (Level is the best cluster rank r* the service
// reaches on any property; ClassSize is e, the number of properties
// whose cluster has that rank — the service belongs to QoS class
// QC_{r*,e}).
type RankedCandidate struct {
	Service registry.Description
	// Vector is the raw advertised QoS vector.
	Vector qos.Vector
	// Scores is the direction-adjusted normalized vector ([0,1], 1 best).
	Scores qos.Vector
	// Utility is the weighted utility of Scores.
	Utility float64
	// Level is the service's QoS level r* (1 = best).
	Level int
	// ClassSize is e: how many properties sit in rank-r* clusters.
	ClassSize int
}

// LocalResult is the outcome of the local phase for one activity: the
// candidates ordered best-first by (Level asc, ClassSize desc, Utility
// desc), plus the number of levels produced by the clustering.
type LocalResult struct {
	ActivityID string
	Ranked     []RankedCandidate
	Levels     int
}

// Candidate converts a ranked entry back to a registry candidate.
func (rc *RankedCandidate) Candidate() registry.Candidate {
	return registry.Candidate{Service: rc.Service, Vector: rc.Vector}
}

// localSelect runs the local selection phase of QASSA for one activity
// (§3.2): min–max normalize the candidate population, cluster each
// property's scores into K ranked clusters with K-means, grade every
// service into its QoS level and class, and emit the ranked shortlist.
func localSelect(activityID string, cands []registry.Candidate, ps *qos.PropertySet,
	weights qos.Weights, k int, seeding cluster.Seeding, rng *rand.Rand) (*LocalResult, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: activity %q has no candidates", activityID)
	}
	if k < 1 {
		k = 1
	}
	vecs := make([]qos.Vector, len(cands))
	for i, c := range cands {
		vecs[i] = c.Vector
	}
	nz, err := qos.NewNormalizer(ps, vecs)
	if err != nil {
		return nil, fmt.Errorf("core: activity %q: %w", activityID, err)
	}

	ranked := make([]RankedCandidate, len(cands))
	for i, c := range cands {
		scores := nz.Normalize(c.Vector)
		ranked[i] = RankedCandidate{
			Service: c.Service,
			Vector:  c.Vector,
			Scores:  scores,
			Utility: qos.Utility(scores, weights),
		}
	}

	// Cluster each property's score column into ranked quality clusters.
	levels := 1
	ranks := make([][]int, ps.Len()) // property → per-candidate rank
	values := make([]float64, len(cands))
	for j := 0; j < ps.Len(); j++ {
		for i := range ranked {
			values[i] = ranked[i].Scores[j]
		}
		res, err := cluster.KMeans1D(values, k, cluster.Options{
			Seeding: seeding,
			Rand:    rng,
		})
		if err != nil {
			return nil, fmt.Errorf("core: clustering %q/%s: %w", activityID, ps.At(j).Name, err)
		}
		ranks[j] = cluster.Ranks1D(res, true) // scores: higher is better
		if res.K() > levels {
			levels = res.K()
		}
	}

	// Grade services: Level = best (minimum) cluster rank over the
	// properties; ClassSize = number of properties at that rank.
	for i := range ranked {
		best := ranks[0][i]
		for j := 1; j < ps.Len(); j++ {
			if ranks[j][i] < best {
				best = ranks[j][i]
			}
		}
		e := 0
		for j := 0; j < ps.Len(); j++ {
			if ranks[j][i] == best {
				e++
			}
		}
		ranked[i].Level = best
		ranked[i].ClassSize = e
	}

	sort.SliceStable(ranked, func(a, b int) bool {
		ra, rb := &ranked[a], &ranked[b]
		if ra.Level != rb.Level {
			return ra.Level < rb.Level
		}
		if ra.ClassSize != rb.ClassSize {
			return ra.ClassSize > rb.ClassSize
		}
		if ra.Utility != rb.Utility {
			return ra.Utility > rb.Utility
		}
		return ra.Service.ID < rb.Service.ID
	})

	return &LocalResult{ActivityID: activityID, Ranked: ranked, Levels: levels}, nil
}
