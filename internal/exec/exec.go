// Package exec executes concrete service compositions over the task tree
// with dynamic binding (Chapter I §5): the service actually invoked for
// an activity is chosen just before the invocation, so run-time QoS
// knowledge and substitutions take effect immediately. The executor
// walks the composition patterns (sequences serially, parallel branches
// concurrently, choices by branch probability, loops by iteration draw),
// feeds every observation to the QoS monitor, and hands failures to the
// adaptation callback.
package exec

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"qasom/internal/monitor"
	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/randx"
	"qasom/internal/registry"
	"qasom/internal/resilience"
	"qasom/internal/task"
)

// InvokeResult is the outcome of one service invocation.
type InvokeResult struct {
	// Measured is the observed QoS vector of the invocation.
	Measured qos.Vector
	// Latency is the observed wall time.
	Latency time.Duration
	// Success reports functional success.
	Success bool
}

// Invoker dispatches an invocation to a concrete service. The
// environment simulator provides the production implementation; tests
// stub it.
type Invoker interface {
	Invoke(ctx context.Context, svc registry.ServiceID, act *task.Activity) (InvokeResult, error)
}

// Binder supplies, just before each invocation, the service currently
// bound to an activity (dynamic binding). Parallel branches bind
// concurrently, so implementations must be safe for concurrent use.
type Binder interface {
	Bind(act *task.Activity) (registry.Candidate, error)
}

// BinderFunc adapts a function to the Binder interface.
type BinderFunc func(act *task.Activity) (registry.Candidate, error)

// Bind implements Binder.
func (f BinderFunc) Bind(act *task.Activity) (registry.Candidate, error) { return f(act) }

// FailureHandler reacts to a terminally failed invocation: it may
// return a substitute candidate (retry with it) or an error (abort the
// run). The adaptation manager implements this with service
// substitution. class carries the failure classification the executor
// derived (Terminal for application-level failures; Retryable reaches
// the handler only once the backoff budget is spent), so handlers can
// treat a crashed service differently from a flaky link.
type FailureHandler func(act *task.Activity, failed registry.Candidate, attempt int, class resilience.Class) (registry.Candidate, error)

// Options configure an executor.
type Options struct {
	// MaxAttempts bounds invocation attempts per activity (including the
	// first); 0 means 3. It seeds Policy.MaxAttempts when the policy
	// leaves it zero (kept for existing callers; Policy is the shared
	// mechanism).
	MaxAttempts int
	// Seed drives branch and iteration draws (and backoff jitter); 0
	// means 1.
	Seed int64
	// Policy is the shared resilience policy: retryable failures
	// (transient link drops, per-attempt deadline expiry) back off and
	// retry the same binding before substitution — the terminal-failure
	// handler — is consulted. The zero value resolves to the resilience
	// defaults with MaxAttempts carried over.
	Policy resilience.Policy
}

func (o Options) withDefaults() Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Policy.MaxAttempts == 0 {
		o.Policy.MaxAttempts = o.MaxAttempts
	}
	o.Policy = o.Policy.WithDefaults()
	o.MaxAttempts = o.Policy.MaxAttempts
	return o
}

// Record documents one invocation attempt.
type Record struct {
	Activity    string
	Service     registry.ServiceID
	Latency     time.Duration
	Success     bool
	Substituted bool
	// Err carries the failure cause of an unsuccessful attempt (the
	// invoker's error, or "service reported failure" when the service
	// answered but flagged functional failure); empty on success.
	Err string
}

// Trace is the complete execution record of one run.
type Trace struct {
	mu       sync.Mutex
	Records  []Record
	Duration time.Duration
}

func (t *Trace) add(r Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Records = append(t.Records, r)
}

// Substitutions counts the attempts served by a substitute service.
func (t *Trace) Substitutions() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, r := range t.Records {
		if r.Substituted {
			n++
		}
	}
	return n
}

// Failures counts failed attempts.
func (t *Trace) Failures() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, r := range t.Records {
		if !r.Success {
			n++
		}
	}
	return n
}

// Executor runs compositions. Fields must be set before Run; the zero
// value is not usable without an Invoker and a Binder.
type Executor struct {
	// Invoker dispatches invocations.
	Invoker Invoker
	// Binder performs dynamic binding.
	Binder Binder
	// Monitor, when set, receives every observation.
	Monitor *monitor.Monitor
	// OnFailure, when set, is consulted after each failed attempt.
	OnFailure FailureHandler
	// OnComplete, when set, is called after each successfully executed
	// activity (the adaptation manager tracks progress with it).
	OnComplete func(activityID string)
	// Options tune retries and randomness.
	Options Options
}

// Run executes the task to completion or first unrecoverable failure.
func (e *Executor) Run(ctx context.Context, t *task.Task) (*Trace, error) {
	if e.Invoker == nil || e.Binder == nil {
		return nil, fmt.Errorf("exec: executor needs an Invoker and a Binder")
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	opts := e.Options.withDefaults()
	trace := &Trace{}
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "exec.run")
	defer span.End()
	run := &runState{
		exec:    e,
		opts:    opts,
		trace:   trace,
		met:     execMetricsFor(obs.HubFrom(ctx)),
		traceID: span.TraceID(),
		rng:     randx.New(opts.Seed),
	}
	err := run.node(ctx, t.Root)
	trace.Duration = time.Since(start)
	if err != nil {
		span.Annotate("error", err.Error())
		return trace, err
	}
	return trace, nil
}

// execMetrics bundles the executor's registry handles; the zero value
// (no hub) is a full set of nil no-op handles, so the run state never
// branches on "is telemetry on".
type execMetrics struct {
	invocations   *obs.Counter
	failures      *obs.Counter
	retries       *obs.Counter
	substitutions *obs.Counter
	latency       *obs.Histogram
}

func execMetricsFor(hub *obs.Hub) execMetrics {
	if hub == nil {
		return execMetrics{}
	}
	r := hub.Metrics
	return execMetrics{
		invocations: r.Counter("qasom_exec_invocations_total",
			"Service invocation attempts (including retries after substitution)."),
		failures: r.Counter("qasom_exec_failures_total",
			"Failed invocation attempts."),
		retries: r.Counter("qasom_exec_retries_total",
			"Invocations retried on the same binding after a retryable failure (backoff path)."),
		substitutions: r.Counter("qasom_exec_substitutions_total",
			"Invocation attempts served by a substitute service."),
		latency: r.Histogram("qasom_exec_invoke_seconds",
			"Observed per-invocation latency.", nil),
	}
}

type runState struct {
	exec  *Executor
	opts  Options
	trace *Trace
	met   execMetrics
	// traceID tags the invoke-latency histogram with this run's trace
	// as an exemplar (empty when tracing is off).
	traceID string

	mu  sync.Mutex
	rng *rand.Rand
}

// draw runs f under the rng lock (parallel branches share the source).
func (r *runState) draw(f func(*rand.Rand) int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return f(r.rng)
}

func (r *runState) node(ctx context.Context, n *task.Node) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	switch n.Kind {
	case task.PatternActivity:
		return r.activity(ctx, n.Activity)
	case task.PatternSequence:
		for _, c := range n.Children {
			if err := r.node(ctx, c); err != nil {
				return err
			}
		}
		return nil
	case task.PatternParallel:
		return r.parallel(ctx, n.Children)
	case task.PatternChoice:
		return r.node(ctx, n.Children[r.chooseBranch(n)])
	case task.PatternLoop:
		iters := r.loopIterations(n.Loop)
		for i := 0; i < iters; i++ {
			if err := r.node(ctx, n.Children[0]); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("exec: unknown pattern %v", n.Kind)
	}
}

func (r *runState) parallel(ctx context.Context, children []*task.Node) error {
	errs := make([]error, len(children))
	var wg sync.WaitGroup
	for i, c := range children {
		wg.Add(1)
		go func(i int, c *task.Node) {
			defer wg.Done()
			errs[i] = r.node(ctx, c)
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (r *runState) chooseBranch(n *task.Node) int {
	return r.draw(func(rng *rand.Rand) int {
		if n.Probs == nil {
			return rng.Intn(len(n.Children))
		}
		total := 0.0
		for _, p := range n.Probs {
			total += p
		}
		if total <= 0 {
			return rng.Intn(len(n.Children))
		}
		target := rng.Float64() * total
		acc := 0.0
		for i, p := range n.Probs {
			acc += p
			if target < acc {
				return i
			}
		}
		return len(n.Children) - 1
	})
}

func (r *runState) loopIterations(l qos.Loop) int {
	if l.Max <= l.Min {
		return l.Min
	}
	return l.Min + r.draw(func(rng *rand.Rand) int { return rng.Intn(l.Max - l.Min + 1) })
}

// backoff draws the policy backoff for the given retry under the rng
// lock (parallel branches share the jitter source).
func (r *runState) backoff(retry int) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opts.Policy.Backoff(retry, r.rng)
}

// activity performs dynamic binding and invocation under the shared
// resilience policy: retryable failures (transient link drops,
// per-attempt deadline expiry) back off and retry the same binding;
// terminal failures (the service answered and failed, or is gone) go to
// the terminal-failure handler — service substitution.
func (r *runState) activity(ctx context.Context, act *task.Activity) error {
	cand, err := r.exec.Binder.Bind(act)
	if err != nil {
		return fmt.Errorf("exec: binding %q: %w", act.ID, err)
	}
	substituted := false
	retries := 0
	var lastCause error
	for attempt := 1; attempt <= r.opts.MaxAttempts; attempt++ {
		_, span := obs.StartSpan(ctx, "exec.invoke")
		span.Annotate("activity", act.ID)
		span.Annotate("service", string(cand.Service.ID))
		span.Annotate("attempt", fmt.Sprint(attempt))
		ictx := ctx
		cancelAttempt := func() {}
		if r.opts.Policy.AttemptTimeout > 0 {
			ictx, cancelAttempt = context.WithTimeout(ctx, r.opts.Policy.AttemptTimeout)
		}
		res, err := r.exec.Invoker.Invoke(ictx, cand.Service.ID, act)
		cancelAttempt()
		rec := Record{
			Activity:    act.ID,
			Service:     cand.Service.ID,
			Latency:     res.Latency,
			Success:     err == nil && res.Success,
			Substituted: substituted,
		}
		r.met.invocations.Inc()
		if substituted {
			r.met.substitutions.Inc()
		}
		if res.Latency > 0 {
			r.met.latency.ObserveExemplar(res.Latency.Seconds(), r.traceID)
		}
		var class resilience.Class
		if !rec.Success {
			lastCause = errOrFailure(err)
			class = resilience.ClassOf(lastCause)
			rec.Err = lastCause.Error()
			span.Annotate("error", rec.Err)
			span.Annotate("class", class.String())
			r.met.failures.Inc()
		}
		span.End()
		r.trace.add(rec)
		if r.exec.Monitor != nil && res.Measured != nil {
			_ = r.exec.Monitor.Report(monitor.Observation{
				Service: cand.Service.ID,
				Vector:  res.Measured,
				Time:    time.Now(),
				Success: rec.Success,
			})
		}
		if rec.Success {
			if r.exec.OnComplete != nil {
				r.exec.OnComplete(act.ID)
			}
			return nil
		}
		if cerr := resilience.CauseErr(ctx); cerr != nil {
			return cerr
		}
		if class == resilience.Retryable && attempt < r.opts.MaxAttempts {
			// Transient failure: back off and retry the same binding
			// before burning an alternate on it.
			r.met.retries.Inc()
			if !resilience.Sleep(ctx, r.backoff(retries)) {
				return resilience.CauseErr(ctx)
			}
			retries++
			continue
		}
		if r.exec.OnFailure == nil {
			return fmt.Errorf("exec: activity %q failed on %q: %w", act.ID, cand.Service.ID, lastCause)
		}
		next, ferr := r.exec.OnFailure(act, cand, attempt, class)
		if ferr != nil {
			return fmt.Errorf("exec: activity %q unrecoverable: %w", act.ID, ferr)
		}
		substituted = next.Service.ID != cand.Service.ID
		cand = next
	}
	return fmt.Errorf("exec: activity %q failed after %d attempts (last cause: %w)",
		act.ID, r.opts.MaxAttempts, lastCause)
}

func errOrFailure(err error) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("service reported failure")
}
