package exec

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qasom/internal/monitor"
	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/resilience"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

func testProps() *qos.PropertySet {
	return qos.MustNewPropertySet(
		&qos.Property{Name: "rt", Concept: semantics.ResponseTime, Direction: qos.Minimized, Kind: qos.KindTime, Unit: qos.Milliseconds},
	)
}

// stubInvoker scripts per-service behaviour.
type stubInvoker struct {
	mu       sync.Mutex
	fail     map[registry.ServiceID]int // remaining failures
	calls    []registry.ServiceID
	perceive qos.Vector
}

func newStub() *stubInvoker {
	return &stubInvoker{fail: map[registry.ServiceID]int{}, perceive: qos.Vector{50}}
}

func (s *stubInvoker) Invoke(_ context.Context, svc registry.ServiceID, _ *task.Activity) (InvokeResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls = append(s.calls, svc)
	if s.fail[svc] > 0 {
		s.fail[svc]--
		return InvokeResult{Measured: s.perceive.Clone(), Latency: time.Millisecond, Success: false}, nil
	}
	return InvokeResult{Measured: s.perceive.Clone(), Latency: time.Millisecond, Success: true}, nil
}

func (s *stubInvoker) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.calls)
}

func fixedBinder(id string) Binder {
	return BinderFunc(func(act *task.Activity) (registry.Candidate, error) {
		return registry.Candidate{
			Service: registry.Description{ID: registry.ServiceID(id + "-" + act.ID), Concept: act.Concept},
			Vector:  qos.Vector{50},
		}, nil
	})
}

func simpleTask() *task.Task {
	return &task.Task{Name: "t", Concept: "C", Root: task.Sequence(
		task.NewActivity(&task.Activity{ID: "a", Concept: "CA"}),
		task.Parallel(
			task.NewActivity(&task.Activity{ID: "b", Concept: "CB"}),
			task.NewActivity(&task.Activity{ID: "c", Concept: "CC"}),
		),
		task.NewActivity(&task.Activity{ID: "d", Concept: "CD"}),
	)}
}

func TestRunHappyPath(t *testing.T) {
	stub := newStub()
	var completedMu sync.Mutex
	var completed []string
	e := &Executor{
		Invoker: stub,
		Binder:  fixedBinder("svc"),
		OnComplete: func(id string) {
			completedMu.Lock()
			completed = append(completed, id)
			completedMu.Unlock()
		},
	}
	trace, err := e.Run(context.Background(), simpleTask())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(trace.Records) != 4 {
		t.Errorf("records = %d, want 4", len(trace.Records))
	}
	if trace.Failures() != 0 || trace.Substitutions() != 0 {
		t.Errorf("unexpected failures/substitutions: %d/%d", trace.Failures(), trace.Substitutions())
	}
	if len(completed) != 4 {
		t.Errorf("completed callbacks = %d, want 4", len(completed))
	}
	if trace.Duration <= 0 {
		t.Error("duration not recorded")
	}
}

func TestRunValidation(t *testing.T) {
	e := &Executor{}
	if _, err := e.Run(context.Background(), simpleTask()); err == nil {
		t.Error("missing invoker/binder should error")
	}
	e = &Executor{Invoker: newStub(), Binder: fixedBinder("s")}
	if _, err := e.Run(context.Background(), &task.Task{Name: "bad"}); err == nil {
		t.Error("invalid task should error")
	}
}

func TestRunFailureWithoutHandlerAborts(t *testing.T) {
	stub := newStub()
	stub.fail["svc-a"] = 99
	e := &Executor{Invoker: stub, Binder: fixedBinder("svc")}
	_, err := e.Run(context.Background(), simpleTask())
	if err == nil {
		t.Error("unhandled failure should abort the run")
	}
}

// TestRecordCarriesFailureCause pins the failure-cause plumbing: the
// trace record of an unsuccessful attempt carries Err, and the final
// errors name the last cause instead of a bare attempt count.
func TestRecordCarriesFailureCause(t *testing.T) {
	stub := newStub()
	stub.fail["svc-a"] = 99 // answers, but flags functional failure
	e := &Executor{Invoker: stub, Binder: fixedBinder("svc")}
	trace, err := e.Run(context.Background(), simpleTask())
	if err == nil {
		t.Fatal("unhandled failure should abort the run")
	}
	if !strings.Contains(err.Error(), "service reported failure") {
		t.Errorf("final error does not carry the cause: %v", err)
	}
	if len(trace.Records) != 1 {
		t.Fatalf("records = %d, want 1", len(trace.Records))
	}
	if got := trace.Records[0].Err; got != "service reported failure" {
		t.Errorf("Record.Err = %q", got)
	}

	// Invoker error: the cause is the invoker's error verbatim, and
	// attempt exhaustion names it too.
	boom := &Executor{
		Invoker: invokerFunc(func(context.Context, registry.ServiceID, *task.Activity) (InvokeResult, error) {
			return InvokeResult{}, fmt.Errorf("link down")
		}),
		Binder: fixedBinder("svc"),
		OnFailure: func(_ *task.Activity, failed registry.Candidate, _ int, _ resilience.Class) (registry.Candidate, error) {
			return failed, nil
		},
		Options: Options{MaxAttempts: 2},
	}
	trace, err = boom.Run(context.Background(), simpleTask())
	if err == nil {
		t.Fatal("exhaustion should abort")
	}
	if !strings.Contains(err.Error(), "last cause: link down") {
		t.Errorf("exhaustion error does not carry the last cause: %v", err)
	}
	for _, rec := range trace.Records {
		if rec.Err != "link down" {
			t.Errorf("Record.Err = %q, want %q", rec.Err, "link down")
		}
	}
}

// invokerFunc adapts a function to the Invoker interface.
type invokerFunc func(ctx context.Context, svc registry.ServiceID, act *task.Activity) (InvokeResult, error)

func (f invokerFunc) Invoke(ctx context.Context, svc registry.ServiceID, act *task.Activity) (InvokeResult, error) {
	return f(ctx, svc, act)
}

func TestRunSubstitutionOnFailure(t *testing.T) {
	stub := newStub()
	stub.fail["primary-a"] = 99 // primary always fails
	var bindCalls atomic.Int64
	e := &Executor{
		Invoker: stub,
		Binder: BinderFunc(func(act *task.Activity) (registry.Candidate, error) {
			bindCalls.Add(1)
			return registry.Candidate{
				Service: registry.Description{ID: registry.ServiceID("primary-" + act.ID), Concept: act.Concept},
				Vector:  qos.Vector{50},
			}, nil
		}),
		OnFailure: func(act *task.Activity, failed registry.Candidate, attempt int, _ resilience.Class) (registry.Candidate, error) {
			return registry.Candidate{
				Service: registry.Description{ID: registry.ServiceID("backup-" + act.ID), Concept: act.Concept},
				Vector:  qos.Vector{60},
			}, nil
		},
	}
	trace, err := e.Run(context.Background(), simpleTask())
	if err != nil {
		t.Fatalf("Run with substitution: %v", err)
	}
	if trace.Substitutions() == 0 {
		t.Error("substitution not recorded")
	}
	if trace.Failures() != 1 {
		t.Errorf("failures = %d, want 1 (primary-a once)", trace.Failures())
	}
}

func TestRunExhaustsAttempts(t *testing.T) {
	stub := newStub()
	stub.fail["svc-a"] = 99
	e := &Executor{
		Invoker: stub,
		Binder:  fixedBinder("svc"),
		OnFailure: func(act *task.Activity, failed registry.Candidate, attempt int, _ resilience.Class) (registry.Candidate, error) {
			return failed, nil // keep retrying the same dead service
		},
		Options: Options{MaxAttempts: 2},
	}
	_, err := e.Run(context.Background(), simpleTask())
	if err == nil {
		t.Error("attempt exhaustion should abort")
	}
	if stub.callCount() != 2 {
		t.Errorf("invocations = %d, want 2", stub.callCount())
	}
}

func TestRunFailureHandlerError(t *testing.T) {
	stub := newStub()
	stub.fail["svc-a"] = 1
	e := &Executor{
		Invoker: stub,
		Binder:  fixedBinder("svc"),
		OnFailure: func(act *task.Activity, failed registry.Candidate, attempt int, _ resilience.Class) (registry.Candidate, error) {
			return registry.Candidate{}, fmt.Errorf("no substitute")
		},
	}
	if _, err := e.Run(context.Background(), simpleTask()); err == nil {
		t.Error("handler error should abort")
	}
}

func TestRunChoiceTakesOneBranch(t *testing.T) {
	tk := &task.Task{Name: "t", Concept: "C", Root: task.Choice([]float64{0.5, 0.5},
		task.NewActivity(&task.Activity{ID: "x", Concept: "CX"}),
		task.NewActivity(&task.Activity{ID: "y", Concept: "CY"}),
	)}
	stub := newStub()
	e := &Executor{Invoker: stub, Binder: fixedBinder("svc")}
	trace, err := e.Run(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Records) != 1 {
		t.Errorf("choice should execute exactly one branch, got %d records", len(trace.Records))
	}
}

func TestRunChoiceProbabilities(t *testing.T) {
	// With probs {1, 0}, branch x must always run.
	tk := &task.Task{Name: "t", Concept: "C", Root: task.Choice([]float64{1, 0},
		task.NewActivity(&task.Activity{ID: "x", Concept: "CX"}),
		task.NewActivity(&task.Activity{ID: "y", Concept: "CY"}),
	)}
	for seed := int64(1); seed <= 5; seed++ {
		stub := newStub()
		e := &Executor{Invoker: stub, Binder: fixedBinder("svc"), Options: Options{Seed: seed}}
		trace, err := e.Run(context.Background(), tk)
		if err != nil {
			t.Fatal(err)
		}
		if trace.Records[0].Activity != "x" {
			t.Fatalf("seed %d: degenerate distribution picked %s", seed, trace.Records[0].Activity)
		}
	}
}

func TestRunLoopIterations(t *testing.T) {
	tk := &task.Task{Name: "t", Concept: "C", Root: task.LoopNode(
		qos.Loop{Min: 3, Max: 3},
		task.NewActivity(&task.Activity{ID: "body", Concept: "CB"}),
	)}
	stub := newStub()
	e := &Executor{Invoker: stub, Binder: fixedBinder("svc")}
	trace, err := e.Run(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Records) != 3 {
		t.Errorf("loop[3..3] should run 3 times, got %d", len(trace.Records))
	}
	// Variable bounds stay within range.
	tk.Root.Loop = qos.Loop{Min: 1, Max: 4}
	for seed := int64(1); seed <= 8; seed++ {
		stub := newStub()
		e := &Executor{Invoker: stub, Binder: fixedBinder("svc"), Options: Options{Seed: seed}}
		trace, err := e.Run(context.Background(), tk)
		if err != nil {
			t.Fatal(err)
		}
		if n := len(trace.Records); n < 1 || n > 4 {
			t.Fatalf("seed %d: loop ran %d times outside [1,4]", seed, n)
		}
	}
}

func TestRunReportsToMonitor(t *testing.T) {
	ps := testProps()
	m := monitor.New(ps, monitor.Options{})
	stub := newStub()
	e := &Executor{Invoker: stub, Binder: fixedBinder("svc"), Monitor: m}
	if _, err := e.Run(context.Background(), simpleTask()); err != nil {
		t.Fatal(err)
	}
	if m.Len("svc-a") != 1 {
		t.Errorf("monitor should hold the observation for svc-a, has %d", m.Len("svc-a"))
	}
	est, ok := m.Estimate("svc-a")
	if !ok || est[0] != 50 {
		t.Errorf("estimate = %v, %v", est, ok)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := &Executor{Invoker: newStub(), Binder: fixedBinder("svc")}
	if _, err := e.Run(ctx, simpleTask()); err == nil {
		t.Error("cancelled context should abort the run")
	}
}

func TestRunParallelIsConcurrent(t *testing.T) {
	// Two parallel 50ms invocations should finish well under 100ms.
	slow := &slowInvoker{delay: 50 * time.Millisecond}
	tk := &task.Task{Name: "t", Concept: "C", Root: task.Parallel(
		task.NewActivity(&task.Activity{ID: "b", Concept: "CB"}),
		task.NewActivity(&task.Activity{ID: "c", Concept: "CC"}),
	)}
	e := &Executor{Invoker: slow, Binder: fixedBinder("svc")}
	start := time.Now()
	if _, err := e.Run(context.Background(), tk); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 90*time.Millisecond {
		t.Errorf("parallel branches ran serially: %v", elapsed)
	}
}

type slowInvoker struct{ delay time.Duration }

func (s *slowInvoker) Invoke(ctx context.Context, _ registry.ServiceID, _ *task.Activity) (InvokeResult, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return InvokeResult{}, ctx.Err()
	}
	return InvokeResult{Measured: qos.Vector{1}, Latency: s.delay, Success: true}, nil
}

func TestBinderError(t *testing.T) {
	e := &Executor{
		Invoker: newStub(),
		Binder: BinderFunc(func(act *task.Activity) (registry.Candidate, error) {
			return registry.Candidate{}, fmt.Errorf("nothing bound")
		}),
	}
	if _, err := e.Run(context.Background(), simpleTask()); err == nil {
		t.Error("binder error should abort")
	}
}

func TestRunRetryableFailureBacksOffSameBinding(t *testing.T) {
	// A marked-retryable invoker error (a transient link drop) retries
	// the SAME binding after a backoff; the terminal-failure handler is
	// never consulted and the retry counter moves.
	var calls atomic.Int64
	var handlerCalls atomic.Int64
	hub := obs.NewHub()
	e := &Executor{
		Invoker: invokerFunc(func(context.Context, registry.ServiceID, *task.Activity) (InvokeResult, error) {
			if calls.Add(1) < 3 {
				return InvokeResult{}, resilience.AsRetryable(fmt.Errorf("link dropped"))
			}
			return InvokeResult{Success: true, Latency: time.Millisecond}, nil
		}),
		Binder: fixedBinder("svc"),
		OnFailure: func(_ *task.Activity, failed registry.Candidate, _ int, _ resilience.Class) (registry.Candidate, error) {
			handlerCalls.Add(1)
			return failed, nil
		},
		Options: Options{
			MaxAttempts: 3,
			Policy:      resilience.Policy{BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond},
		},
	}
	trace, err := e.Run(obs.WithHub(context.Background(), hub), simpleTask())
	if err != nil {
		t.Fatalf("Run with transient failures: %v", err)
	}
	// Activity "a" runs first (sequence): two retryable failures, then
	// success; the remaining three activities succeed first try.
	if got := calls.Load(); got != 6 {
		t.Errorf("invocations = %d, want 6 (two retryable failures then 4 successes)", got)
	}
	if got := handlerCalls.Load(); got != 0 {
		t.Errorf("terminal-failure handler consulted %d times for retryable failures", got)
	}
	if trace.Substitutions() != 0 {
		t.Errorf("retryable path must not count substitutions: %d", trace.Substitutions())
	}
	if got := hub.Metrics.Counter("qasom_exec_retries_total", "").Value(); got != 2 {
		t.Errorf("qasom_exec_retries_total = %d, want 2", got)
	}
}

func TestRunTerminalFailureSkipsBackoff(t *testing.T) {
	// An unmarked invoker error classifies terminal: the handler runs on
	// the first failure, no backoff retry on the dead binding.
	var handlerClass resilience.Class = -1
	stub := newStub()
	stub.fail["primary-a"] = 99
	e := &Executor{
		Invoker: stub,
		Binder:  fixedBinder("primary"),
		OnFailure: func(act *task.Activity, failed registry.Candidate, _ int, class resilience.Class) (registry.Candidate, error) {
			handlerClass = class
			return registry.Candidate{
				Service: registry.Description{ID: registry.ServiceID("backup-" + act.ID), Concept: act.Concept},
				Vector:  qos.Vector{60},
			}, nil
		},
	}
	if _, err := e.Run(context.Background(), simpleTask()); err != nil {
		t.Fatalf("Run with substitution: %v", err)
	}
	if handlerClass != resilience.Terminal {
		t.Errorf("handler saw class %v, want Terminal", handlerClass)
	}
}
