package registry

import (
	"fmt"
	"sort"
	"sync"

	"qasom/internal/qos"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

// Federation aggregates the per-device registries of an ad hoc
// environment: each device advertises its own services in its own
// registry, and a requester resolves candidates across every registry
// currently in reach. Members join and leave dynamically (device churn);
// duplicate service IDs across members resolve to the first member in
// join order. Safe for concurrent use.
type Federation struct {
	ontology *semantics.Ontology

	mu      sync.RWMutex
	order   []string
	members map[string]*Registry
}

// NewFederation creates an empty federation over the shared ontology.
func NewFederation(o *semantics.Ontology) *Federation {
	return &Federation{
		ontology: o,
		members:  make(map[string]*Registry),
	}
}

// Join adds a member registry under the given name (typically the device
// ID). Joining an existing name replaces that member.
func (f *Federation) Join(name string, r *Registry) error {
	if name == "" || r == nil {
		return fmt.Errorf("registry: federation member needs a name and a registry")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, exists := f.members[name]; !exists {
		f.order = append(f.order, name)
	}
	f.members[name] = r
	return nil
}

// Leave removes a member (its services become unreachable); it reports
// whether the member existed.
func (f *Federation) Leave(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.members[name]; !ok {
		return false
	}
	delete(f.members, name)
	for i, n := range f.order {
		if n == name {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	return true
}

// Members returns the member names in join order.
func (f *Federation) Members() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]string(nil), f.order...)
}

// snapshot returns the members in join order.
func (f *Federation) snapshot() []*Registry {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*Registry, 0, len(f.order))
	for _, name := range f.order {
		out = append(out, f.members[name])
	}
	return out
}

// Len returns the total number of distinct services across members.
func (f *Federation) Len() int {
	seen := make(map[ServiceID]struct{})
	for _, r := range f.snapshot() {
		for _, d := range r.All() {
			seen[d.ID] = struct{}{}
		}
	}
	return len(seen)
}

// Get returns the first member's copy of the service.
func (f *Federation) Get(id ServiceID) (Description, bool) {
	for _, r := range f.snapshot() {
		if d, ok := r.Get(id); ok {
			return d, true
		}
	}
	return Description{}, false
}

// All returns every distinct description across members, sorted by ID.
func (f *Federation) All() []Description {
	seen := make(map[ServiceID]struct{})
	var out []Description
	for _, r := range f.snapshot() {
		for _, d := range r.All() {
			if _, dup := seen[d.ID]; dup {
				continue
			}
			seen[d.ID] = struct{}{}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Candidates resolves candidates across every member, deduplicated by
// service ID (first member wins) and sorted like Registry.Candidates.
func (f *Federation) Candidates(required semantics.ConceptID, ps *qos.PropertySet) []Candidate {
	seen := make(map[ServiceID]struct{})
	var out []Candidate
	for _, r := range f.snapshot() {
		for _, c := range r.Candidates(required, ps) {
			if _, dup := seen[c.Service.ID]; dup {
				continue
			}
			seen[c.Service.ID] = struct{}{}
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Match != out[j].Match {
			return out[i].Match.Beats(out[j].Match)
		}
		return out[i].Service.ID < out[j].Service.ID
	})
	return out
}

// CandidatesForActivity resolves activity candidates across members with
// the same data-compatibility rules as Registry.CandidatesForActivity.
func (f *Federation) CandidatesForActivity(a *task.Activity, ps *qos.PropertySet) []Candidate {
	seen := make(map[ServiceID]struct{})
	var out []Candidate
	for _, r := range f.snapshot() {
		for _, c := range r.CandidatesForActivity(a, ps) {
			if _, dup := seen[c.Service.ID]; dup {
				continue
			}
			seen[c.Service.ID] = struct{}{}
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Match != out[j].Match {
			return out[i].Match.Beats(out[j].Match)
		}
		return out[i].Service.ID < out[j].Service.ID
	})
	return out
}
