package registry

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

// Federation aggregates the per-device registries of an ad hoc
// environment: each device advertises its own services in its own
// registry, and a requester resolves candidates across every registry
// currently in reach. Members join and leave dynamically (device churn);
// duplicate service IDs across members resolve to the first member in
// join order. Safe for concurrent use.
type Federation struct {
	ontology *semantics.Ontology

	mu      sync.RWMutex
	order   []string
	members map[string]*Registry
}

// NewFederation creates an empty federation over the shared ontology.
func NewFederation(o *semantics.Ontology) *Federation {
	return &Federation{
		ontology: o,
		members:  make(map[string]*Registry),
	}
}

// Join adds a member registry under the given name (typically the device
// ID). Joining an existing name replaces that member.
func (f *Federation) Join(name string, r *Registry) error {
	if name == "" || r == nil {
		return fmt.Errorf("registry: federation member needs a name and a registry")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, exists := f.members[name]; !exists {
		f.order = append(f.order, name)
	}
	f.members[name] = r
	return nil
}

// Leave removes a member (its services become unreachable); it reports
// whether the member existed.
func (f *Federation) Leave(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.members[name]; !ok {
		return false
	}
	delete(f.members, name)
	for i, n := range f.order {
		if n == name {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	return true
}

// Members returns the member names in join order.
func (f *Federation) Members() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]string(nil), f.order...)
}

// snapshot returns the members in join order.
func (f *Federation) snapshot() []*Registry {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*Registry, 0, len(f.order))
	for _, name := range f.order {
		out = append(out, f.members[name])
	}
	return out
}

// Len returns the total number of distinct services across members.
func (f *Federation) Len() int {
	seen := make(map[ServiceID]struct{})
	for _, r := range f.snapshot() {
		for _, d := range r.All() {
			seen[d.ID] = struct{}{}
		}
	}
	return len(seen)
}

// Get returns the first member's copy of the service.
func (f *Federation) Get(id ServiceID) (Description, bool) {
	for _, r := range f.snapshot() {
		if d, ok := r.Get(id); ok {
			return d, true
		}
	}
	return Description{}, false
}

// All returns every distinct description across members, sorted by ID.
func (f *Federation) All() []Description {
	seen := make(map[ServiceID]struct{})
	var out []Description
	for _, r := range f.snapshot() {
		for _, d := range r.All() {
			if _, dup := seen[d.ID]; dup {
				continue
			}
			seen[d.ID] = struct{}{}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Candidates resolves candidates across every member, deduplicated by
// service ID (first member wins) and sorted like Registry.Candidates.
func (f *Federation) Candidates(required semantics.ConceptID, ps *qos.PropertySet) []Candidate {
	seen := make(map[ServiceID]struct{})
	var out []Candidate
	for _, r := range f.snapshot() {
		for _, c := range r.Candidates(required, ps) {
			if _, dup := seen[c.Service.ID]; dup {
				continue
			}
			seen[c.Service.ID] = struct{}{}
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Match != out[j].Match {
			return out[i].Match.Beats(out[j].Match)
		}
		return out[i].Service.ID < out[j].Service.ID
	})
	return out
}

// CandidatesForActivity resolves activity candidates across members with
// the same data-compatibility rules as Registry.CandidatesForActivity.
func (f *Federation) CandidatesForActivity(a *task.Activity, ps *qos.PropertySet) []Candidate {
	seen := make(map[ServiceID]struct{})
	var out []Candidate
	for _, r := range f.snapshot() {
		for _, c := range r.CandidatesForActivity(a, ps) {
			if _, dup := seen[c.Service.ID]; dup {
				continue
			}
			seen[c.Service.ID] = struct{}{}
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Match != out[j].Match {
			return out[i].Match.Beats(out[j].Match)
		}
		return out[i].Service.ID < out[j].Service.ID
	})
	return out
}

// ---------------------------------------------------------------------------
// Two-tier hierarchy: branch registries serving selections autonomously,
// synchronising capability-keyed deltas with a central tier.
//
// The flat Federation above aggregates live registries by reference — it
// needs every member reachable at lookup time. The branch/central
// hierarchy below is the deployment shape for pervasive environments
// with intermittent connectivity: each branch owns a local registry,
// answers Candidates from it without any remote call, and exchanges
// compacted deltas (publishes and withdrawal tombstones, keyed by the
// capability closure of the service) with the central tier whenever a
// link is up. Sync is idempotent and cursor-driven, so a partition —
// lost acks included — heals by simply syncing again.
// ---------------------------------------------------------------------------

// ErrPartitioned is returned by Push/Pull/Sync while the central tier
// considers the branch's link down (see Central.SetPartitioned).
var ErrPartitioned = errors.New("registry: federation link partitioned")

// Delta is one replication record: a publish (Service set) or a
// withdrawal tombstone. Keys carries the canonical capability closure of
// the service so receivers can filter capability-keyed pulls without
// recomputing ancestry. Seq is origin-local in a branch's log and
// global in the central log.
type Delta struct {
	Seq       uint64
	Origin    string
	Tenant    TenantID
	Tombstone bool
	ID        ServiceID
	Keys      []semantics.ConceptID
	Service   Description
}

// matchesAny reports whether the delta's capability closure covers any
// of the requested canonical concepts (empty request matches all).
func (d *Delta) matchesAny(caps []semantics.ConceptID) bool {
	if len(caps) == 0 {
		return true
	}
	for _, want := range caps {
		for _, k := range d.Keys {
			if k == want {
				return true
			}
		}
	}
	return false
}

// deltaLog is a compacted, monotonically-sequenced delta log: it keeps
// only the latest record per service (a tombstone supersedes the
// publishes before it and vice versa), so a reconnecting peer replays
// current state, not history.
type deltaLog struct {
	seq     uint64
	entries map[ServiceID]*Delta
}

func newDeltaLog() deltaLog {
	return deltaLog{entries: make(map[ServiceID]*Delta)}
}

// record assigns the next sequence number and compacts the log.
func (l *deltaLog) record(d Delta) uint64 {
	l.seq++
	d.Seq = l.seq
	l.entries[d.ID] = &d
	return l.seq
}

// after returns the records with Seq > since that pass the filter, in
// sequence order.
func (l *deltaLog) after(since uint64, filter func(*Delta) bool) []Delta {
	var out []Delta
	for _, d := range l.entries {
		if d.Seq <= since {
			continue
		}
		if filter != nil && !filter(d) {
			continue
		}
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// SyncStats reports what one Branch.Sync round moved.
type SyncStats struct {
	// Pushed is the number of local deltas sent to the central tier
	// (re-pushed ones the central had already applied included).
	Pushed int
	// Pulled is the number of remote deltas applied locally.
	Pulled int
	// Tombstones is how many of the pulled deltas were withdrawals.
	Tombstones int
}

// Branch is a local registry front in the two-tier hierarchy: it serves
// candidate lookups autonomously from its own registry and records every
// mutation in a compacted delta log for the next Sync. Mutate through
// the Branch (not the underlying registry) so the log stays complete.
// Safe for concurrent use.
type Branch struct {
	name string
	reg  *Registry

	mu     sync.Mutex
	log    deltaLog
	acked  uint64 // highest local seq the central tier has confirmed
	cursor uint64 // central log position already pulled and applied

	syncs, syncFailures, pushed, pulled, tombstones *obs.Counter
}

// NewBranch creates a branch named name (typically the site or device
// ID) over its local registry view.
func NewBranch(name string, reg *Registry) *Branch {
	return &Branch{name: name, reg: reg, log: newDeltaLog()}
}

// Instrument registers the branch's delta-sync counters with the
// observability registry (label: branch name).
func (b *Branch) Instrument(o *obs.Registry) {
	b.syncs = o.CounterVec("qasom_federation_syncs_total",
		"Completed branch->central sync rounds.", "branch").With(b.name)
	b.syncFailures = o.CounterVec("qasom_federation_sync_failures_total",
		"Sync rounds aborted by a partitioned or failing link.", "branch").With(b.name)
	b.pushed = o.CounterVec("qasom_federation_deltas_pushed_total",
		"Capability-keyed deltas pushed to the central tier.", "branch").With(b.name)
	b.pulled = o.CounterVec("qasom_federation_deltas_pulled_total",
		"Remote deltas pulled and applied locally.", "branch").With(b.name)
	b.tombstones = o.CounterVec("qasom_federation_tombstones_total",
		"Withdrawal tombstones applied from remote branches.", "branch").With(b.name)
}

// Name returns the branch name (the delta origin tag).
func (b *Branch) Name() string { return b.name }

// Registry returns the branch's local registry view.
func (b *Branch) Registry() *Registry { return b.reg }

// Publish stores the description locally and logs a delta for the next
// Sync.
func (b *Branch) Publish(d Description) error {
	if err := b.reg.Publish(d); err != nil {
		return err
	}
	cp := d.clone()
	b.mu.Lock()
	b.log.record(Delta{
		Origin:  b.name,
		Tenant:  b.reg.TenantID(),
		ID:      cp.ID,
		Keys:    b.reg.Store().ClosureKeys(cp.Concept),
		Service: cp,
	})
	b.mu.Unlock()
	return nil
}

// Withdraw removes the service locally and logs a tombstone; it reports
// whether the service was present.
func (b *Branch) Withdraw(id ServiceID) bool {
	old, ok := b.reg.Get(id)
	if !ok || !b.reg.Withdraw(id) {
		return false
	}
	b.mu.Lock()
	b.log.record(Delta{
		Origin:    b.name,
		Tenant:    b.reg.TenantID(),
		Tombstone: true,
		ID:        id,
		Keys:      b.reg.Store().ClosureKeys(old.Concept),
	})
	b.mu.Unlock()
	return true
}

// Candidates serves a lookup from the local registry — no remote call,
// the branch answers autonomously even when partitioned.
func (b *Branch) Candidates(required semantics.ConceptID, ps *qos.PropertySet) []Candidate {
	return b.reg.Candidates(required, ps)
}

// CandidatesForActivity serves an activity lookup from the local
// registry.
func (b *Branch) CandidatesForActivity(a *task.Activity, ps *qos.PropertySet) []Candidate {
	return b.reg.CandidatesForActivity(a, ps)
}

// Pending returns how many local deltas await central acknowledgement.
func (b *Branch) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.log.after(b.acked, nil))
}

// Sync runs one push/pull round against the central tier: every
// unacknowledged local delta is pushed (idempotently — a re-push after a
// lost ack is deduplicated by sequence number), then remote deltas past
// the branch's cursor are pulled and applied to the local registry.
// When caps are given, the pull is capability-keyed: only deltas whose
// capability closure covers one of the canonical concepts are mirrored,
// so a branch replicates just the capabilities its environment asks
// for. The cursor advances only after the pulled deltas have been
// applied, so a failed round is simply retried.
func (b *Branch) Sync(c *Central, caps ...semantics.ConceptID) (SyncStats, error) {
	return b.SyncContext(context.Background(), c, caps...)
}

// SyncContext is Sync under a context: the round runs inside a
// "federation.sync" span, so a sync triggered on behalf of a traced
// request (e.g. a pull warming a branch before a selection) nests into
// the requester's trace — including across processes, when the context
// carries a remote parent from the TCP transport.
func (b *Branch) SyncContext(ctx context.Context, c *Central, caps ...semantics.ConceptID) (SyncStats, error) {
	_, span := obs.StartSpan(ctx, "federation.sync")
	span.Annotate("branch", b.name)
	var stats SyncStats
	defer func() {
		span.Annotate("pushed", fmt.Sprint(stats.Pushed))
		span.Annotate("pulled", fmt.Sprint(stats.Pulled))
		span.End()
	}()
	b.mu.Lock()
	pending := b.log.after(b.acked, nil)
	cursor := b.cursor
	b.mu.Unlock()

	ack, err := c.Push(b.name, pending)
	if err != nil {
		if b.syncFailures != nil {
			b.syncFailures.Inc()
		}
		return stats, err
	}
	stats.Pushed = len(pending)

	if o := b.reg.Ontology(); o != nil {
		for i, cp := range caps {
			caps[i] = o.Canonical(cp)
		}
	}
	deltas, next, err := c.Pull(b.name, cursor, caps...)
	if err != nil {
		if b.syncFailures != nil {
			b.syncFailures.Inc()
		}
		return stats, err
	}
	for i := range deltas {
		d := &deltas[i]
		if d.Tombstone {
			b.reg.Withdraw(d.ID)
			stats.Tombstones++
		} else if err := b.reg.Publish(d.Service); err != nil {
			if b.syncFailures != nil {
				b.syncFailures.Inc()
			}
			return stats, err
		}
		stats.Pulled++
	}

	b.mu.Lock()
	if ack > b.acked {
		b.acked = ack
	}
	if next > b.cursor {
		b.cursor = next
	}
	b.mu.Unlock()

	if b.syncs != nil {
		b.syncs.Inc()
	}
	if b.pushed != nil {
		b.pushed.Add(uint64(stats.Pushed))
	}
	if b.pulled != nil {
		b.pulled.Add(uint64(stats.Pulled))
	}
	if b.tombstones != nil {
		b.tombstones.Add(uint64(stats.Tombstones))
	}
	return stats, nil
}

// Central is the upper tier of the hierarchy: it merges every branch's
// deltas into its own registry (the environment-wide view selections can
// run against) and re-distributes them through a compacted, globally
// sequenced log. Push is idempotent per origin — a branch re-pushing
// after a lost acknowledgement is deduplicated by its per-origin
// sequence high-water mark — so partitions heal by retrying. Safe for
// concurrent use.
type Central struct {
	reg *Registry

	mu          sync.Mutex
	log         deltaLog
	applied     map[string]uint64 // per-origin acknowledged sequence
	partitioned map[string]bool
}

// NewCentral creates the central tier over the given registry view
// (usually a dedicated tenant of a shared store).
func NewCentral(reg *Registry) *Central {
	return &Central{
		reg:         reg,
		log:         newDeltaLog(),
		applied:     make(map[string]uint64),
		partitioned: make(map[string]bool),
	}
}

// Registry returns the central tier's merged registry view.
func (c *Central) Registry() *Registry { return c.reg }

// SetPartitioned simulates (or records) a link partition: while set,
// Push and Pull for that origin fail with ErrPartitioned. Clearing it
// lets the next Sync heal the branch.
func (c *Central) SetPartitioned(origin string, down bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.partitioned[origin] = down
}

// Push applies a branch's deltas in sequence order, skipping any the
// central tier has already applied (idempotent re-push), and returns the
// acknowledged per-origin sequence high-water mark.
func (c *Central) Push(origin string, deltas []Delta) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.partitioned[origin] {
		return c.applied[origin], ErrPartitioned
	}
	for i := range deltas {
		d := deltas[i]
		if d.Seq <= c.applied[origin] {
			continue // duplicate from a lost ack
		}
		if d.Tombstone {
			c.reg.Withdraw(d.ID)
		} else if err := c.reg.Publish(d.Service); err != nil {
			return c.applied[origin], err
		}
		c.applied[origin] = d.Seq
		d.Origin = origin
		c.log.record(d) // re-sequenced into the global log
	}
	return c.applied[origin], nil
}

// Pull returns the compacted deltas past the caller's cursor that did
// not originate from it, optionally filtered to those whose capability
// closure covers one of the requested canonical concepts, together with
// the new cursor position. The caller advances its cursor only after
// applying the returned deltas.
func (c *Central) Pull(origin string, since uint64, caps ...semantics.ConceptID) ([]Delta, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.partitioned[origin] {
		return nil, since, ErrPartitioned
	}
	out := c.log.after(since, func(d *Delta) bool {
		return d.Origin != origin && d.matchesAny(caps)
	})
	return out, c.log.seq, nil
}
