package registry

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/semantics"
)

// This file implements the sharded, multi-tenant registry core. The
// public Registry type is a tenant-bound view over a Store: many logical
// environments (tenants) share one process and one shard array, and the
// single lock domain of the original registry becomes one RWMutex per
// shard so Publish/Withdraw and candidate lookups on unrelated
// capabilities never contend.
//
// Placement: a capability concept (and its index entry and epoch
// counter) lives in the shard its (tenant, concept) pair hashes to; a
// service's directory entry lives in the shard its (tenant, id) pair
// hashes to. A service is therefore *indexed* in every shard that owns
// one of its capability-closure keys, while the description itself is
// stored once, as an immutable *storedService shared by all filings —
// readers clone on the way out exactly as before, so no aliasing is
// introduced by the sharing.
//
// Epoch semantics are unchanged from the single-lock registry but are
// now per shard: the epoch of capability key k is bumped under shard(k)'s
// write lock, before the index change for k, so a snapshot taken before
// a lookup still certifies "no candidate this lookup could see has
// changed".
//
// Read path (RCU): each shard publishes an immutable capKey→capState
// directory through an atomic.Pointer, and each capState carries an
// atomic epoch plus an epoch-tagged published candidate slice. Steady-
// state Candidates and CapabilityEpochs therefore acquire no locks at
// all — a reader loads the view, loads the published slice, and checks
// its epoch tag against the live epoch (writers bump the epoch and nil
// the slice before touching the index, so a tag match proves the slice
// is current). Only the first lookup after a mutation takes a shard
// read lock, to rebuild the published slice from the writer-truth index
// maps. Writers copy-on-write the view in amortized batches so bulk
// loads stay O(1) per publish.
//
// Mutations of one service (same tenant + ID) are serialized on a
// striped mutex so a Publish/Withdraw race on the same ID cannot
// interleave its per-shard index updates with another mutation of the
// same service; mutations of different services only meet at the shard
// granularity. Stripe locks never nest inside shard locks and shard
// locks are held one at a time (the whole-store index rebuild is the one
// exception: it takes every shard lock, in index order, while holding
// rebuildMu and no stripe).

// TenantID names a logical environment sharing the store. The zero value
// is the default tenant, which every tenant-unaware caller uses.
type TenantID string

// DefaultTenant is the tenant of New and of every pre-multi-tenant call
// site.
const DefaultTenant TenantID = ""

// DefaultShards is the shard count when StoreOptions.Shards is zero.
const DefaultShards = 8

// mutationStripes is the size of the per-service mutation serialization
// table. It only bounds the number of concurrent *mutations* in flight
// (readers never touch it), so a modest fixed size is plenty.
const mutationStripes = 128

// StoreOptions configure a sharded store.
type StoreOptions struct {
	// Shards is the number of lock domains; it is rounded up to a power
	// of two. 0 means DefaultShards.
	Shards int
	// Obs, when non-nil, receives the store's shard telemetry:
	// qasom_registry_shard_lock_wait_seconds{shard} observes write-lock
	// acquisition waits (only the contended ones — the uncontended fast
	// path costs one TryLock), and qasom_registry_shard_mutations_total
	// counts Publish/Withdraw directory updates per shard.
	Obs *obs.Registry
}

// paddedMutex keeps adjacent stripe locks on separate cache lines so
// unrelated concurrent mutations never false-share a lock word.
type paddedMutex struct {
	sync.Mutex
	_ [56]byte
}

// svcKey is the tenant-scoped directory key of a service.
type svcKey struct {
	tenant TenantID
	id     ServiceID
}

// capKey is the tenant-scoped key of a capability concept: its index
// entry and its epoch counter live in the shard this key hashes to.
type capKey struct {
	tenant  TenantID
	concept semantics.ConceptID
}

// storedService is one published description plus the filing metadata
// every shard that indexes it shares. desc and keys are immutable after
// insertion (a re-publish swaps in a fresh storedService; the whole-store
// rebuild, which holds every shard lock, is the only writer of keys).
type storedService struct {
	desc   Description
	tenant TenantID
	// keys is the canonical capability closure the service is filed and
	// epoch-bumped under: its canonical capability plus every ancestor.
	// Computed once per Publish and reused for shard routing, index
	// filing and epoch bumps.
	keys []semantics.ConceptID
	// home is the shard holding the directory entry.
	home uint32
}

// capState is the lock-free read-path state of one capability key: the
// generation counter readers snapshot, and the epoch-tagged candidate
// slice they resolve against. The struct is shared by reference between
// successive views, so a key's epoch survives view swaps and rebuilds.
type capState struct {
	epoch atomic.Uint64
	// pub is the published candidate slice, tagged with the epoch it was
	// built at; writers nil it (before the index change, after the epoch
	// bump) so a tag match certifies the slice is current. Readers that
	// find it stale rebuild it from the index under the shard read lock.
	pub atomic.Pointer[capPublished]
}

// capPublished is one immutable snapshot of the services filed under a
// capability key. list is never mutated after the atomic store; readers
// copy before filtering or sorting. epoch is the capability epoch the
// slice was built at and gen the shard's index incarnation (pubGen) it
// was built from; the fast path demands both tags match the live values,
// because a whole-store rebuild changes index contents *without* bumping
// epochs — the epoch tag alone cannot reject a slice built before one.
type capPublished struct {
	epoch uint64
	gen   uint64
	list  []*storedService
}

// capView is the immutable capKey→capState directory a shard's readers
// navigate without locks. Swapped wholesale through shard.view.
type capView map[capKey]*capState

// shard is one lock domain of the store.
type shard struct {
	// view is the RCU side of the shard: an immutable directory of
	// capability states, atomically swapped by writers. Never nil after
	// NewStore. First field: it is the hottest word of the struct.
	view atomic.Pointer[capView]
	// extraN mirrors len(extra) so lock-free readers can skip the
	// extra-map fallback (and its read lock) when nothing is pending.
	extraN atomic.Int32
	// pubGen is the shard's index incarnation: bumped under the shard
	// write lock whenever index contents change without per-key epoch
	// bumps — the whole-store rebuild and the ablation index drop.
	// Published slices carry the incarnation they were built from, so a
	// republisher delayed across a rebuild can never install a
	// pre-rebuild candidate list that the (deliberately unmoved) epoch
	// tag would otherwise accept forever.
	pubGen atomic.Uint64

	mu sync.RWMutex
	// services holds the directory entries homed here (routed by
	// (tenant, id)).
	services map[svcKey]*storedService
	// index maps each capability key owned by this shard (routed by
	// (tenant, concept)) to the services filed under it, across all home
	// shards. Writer truth; readers consume it only through capState.pub
	// or under mu.
	index map[capKey]map[ServiceID]*storedService
	// extra holds capStates created since the last view swap, guarded by
	// mu. Folding them into the view in batches keeps bulk loads O(1)
	// amortized per publish instead of O(view) each.
	extra map[capKey]*capState

	// _ pads the shard past a cache line so adjacent shards' hot fields
	// (view pointer, lock word) never false-share.
	_ [64]byte
}

// capStateLocked returns the shard's state for ck, creating it in extra
// when absent. Callers hold the shard's write lock. The second result
// reports whether the state is newly created.
func (sh *shard) capStateLocked(ck capKey) (*capState, bool) {
	if st, ok := (*sh.view.Load())[ck]; ok {
		return st, false
	}
	if st, ok := sh.extra[ck]; ok {
		return st, false
	}
	st := &capState{}
	sh.extra[ck] = st
	sh.extraN.Store(int32(len(sh.extra)))
	return st, true
}

// mergeExtraLocked folds extra into a freshly copied view and publishes
// it. Callers hold the shard's write lock.
func (sh *shard) mergeExtraLocked() {
	if len(sh.extra) == 0 {
		return
	}
	old := *sh.view.Load()
	next := make(capView, len(old)+len(sh.extra))
	for k, v := range old {
		next[k] = v
	}
	for k, v := range sh.extra {
		next[k] = v
	}
	sh.view.Store(&next)
	sh.extra = make(map[capKey]*capState)
	sh.extraN.Store(0)
}

// capStateOf returns the capState for ck without any lock on the fast
// path, or nil when the key has never been filed or bumped. Keys still
// waiting in extra (a bulk load in flight) fall back to the read lock.
//
// Both miss paths re-check the view before giving up: a concurrent
// merge (mergeExtraLocked, or the rebuild republish) moves keys from
// extra into a grown view — storing the view *before* zeroing extraN —
// so a key can leave extra between this reader's first view load and
// its extra probe. Views only ever grow, and Go atomics are
// sequentially consistent, so one re-load after observing extraN==0
// (or missing the key in extra under the lock) closes the window: a
// key whose Publish completed before the call can never be reported
// absent.
func (sh *shard) capStateOf(ck capKey) *capState {
	if st, ok := (*sh.view.Load())[ck]; ok {
		return st
	}
	if sh.extraN.Load() == 0 {
		return (*sh.view.Load())[ck]
	}
	sh.mu.RLock()
	st := sh.extra[ck]
	if st == nil {
		st = (*sh.view.Load())[ck]
	}
	sh.mu.RUnlock()
	return st
}

// republish rebuilds the epoch-tagged candidate slice for ck from the
// writer-truth index and installs it for subsequent lock-free readers.
// The epoch and index generation are read under the read lock, where
// they are stable (writers move them only under the write lock), so the
// tag pair can never claim a newer index state than the slice carries.
// The store itself runs outside the lock; a republisher delayed across
// a per-key mutation installs a slice the epoch tag rejects, and one
// delayed across a rebuild or ablation drop installs a slice the gen
// tag rejects — stale publications are recoverable, never served.
func (sh *shard) republish(ck capKey, st *capState) []*storedService {
	sh.mu.RLock()
	e := st.epoch.Load()
	g := sh.pubGen.Load()
	set := sh.index[ck]
	list := make([]*storedService, 0, len(set))
	for _, ss := range set {
		list = append(list, ss)
	}
	sh.mu.RUnlock()
	st.pub.Store(&capPublished{epoch: e, gen: g, list: list})
	return list
}

// watcher is one Watch subscription, tenant-filtered at notify time.
type watcher struct {
	ch     chan Event
	tenant TenantID
}

// Store is the sharded, multi-tenant registry core. Create instances
// with NewStore and obtain tenant-bound views with Tenant; the plain New
// constructor wraps a fresh single-tenant store for compatibility.
type Store struct {
	ontology *semantics.Ontology
	shards   []shard
	mask     uint32
	stripes  [mutationStripes]paddedMutex

	// gen is the store-global generation, bumped on every mutation of any
	// tenant; readers poll it with one atomic load.
	gen   atomic.Uint64
	total atomic.Int64
	// counts holds per-tenant service counts (TenantID → *atomic.Int64).
	counts sync.Map

	// Index lifecycle: built lazily on the first indexed lookup, then
	// maintained incrementally per shard; a moved ontology version forces
	// a whole-store rebuild (concept mutations change every closure).
	indexing     atomic.Bool
	built        atomic.Bool
	indexVersion atomic.Uint64
	rebuildMu    sync.Mutex

	indexedLookups atomic.Uint64
	scanLookups    atomic.Uint64
	indexRebuilds  atomic.Uint64

	watchMu  sync.RWMutex
	watchers map[int]watcher
	nextW    int

	// lockWait/mutations are nil without StoreOptions.Obs; shardLabels
	// pre-renders the label values so the hot path never formats.
	lockWait    *obs.HistogramVec
	mutations   *obs.CounterVec
	shardLabels []string
}

// NewStore creates a sharded multi-tenant store bound to the shared
// ontology (nil restricts matching to exact concept equality).
func NewStore(o *semantics.Ontology, opts StoreOptions) *Store {
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round up to a power of two so shard routing is a mask, not a mod.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	s := &Store{
		ontology: o,
		shards:   make([]shard, pow),
		mask:     uint32(pow - 1),
		watchers: make(map[int]watcher),
	}
	for i := range s.shards {
		s.shards[i].services = make(map[svcKey]*storedService)
		s.shards[i].extra = make(map[capKey]*capState)
		empty := make(capView)
		s.shards[i].view.Store(&empty)
	}
	s.indexing.Store(true)
	if opts.Obs != nil {
		s.lockWait = opts.Obs.HistogramVec("qasom_registry_shard_lock_wait_seconds",
			"Contended write-lock acquisition waits per registry shard.",
			[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1}, "shard")
		s.mutations = opts.Obs.CounterVec("qasom_registry_shard_mutations_total",
			"Publish/Withdraw directory mutations per registry shard.", "shard")
		s.shardLabels = make([]string, pow)
		for i := range s.shardLabels {
			s.shardLabels[i] = strconv.Itoa(i)
		}
	}
	return s
}

// Tenant returns the tenant-bound view through which one logical
// environment publishes, withdraws and resolves candidates. Views are
// cheap handles; any number may exist per tenant.
func (s *Store) Tenant(t TenantID) *Registry {
	return &Registry{store: s, tenant: t}
}

// Ontology returns the store's shared ontology (may be nil).
func (s *Store) Ontology() *semantics.Ontology { return s.ontology }

// Shards returns the number of lock domains.
func (s *Store) Shards() int { return len(s.shards) }

// Epoch returns the store-global generation: bumped on every
// Publish/Withdraw of any tenant. One atomic load.
func (s *Store) Epoch() uint64 { return s.gen.Load() }

// Len returns the number of published services across all tenants.
func (s *Store) Len() int { return int(s.total.Load()) }

// ShardOf returns the shard index holding the directory entry of
// (tenant, id) — the value watch events report in Event.Shard.
func (s *Store) ShardOf(t TenantID, id ServiceID) int {
	return int(s.shardOfID(t, id))
}

// SetIndexing enables or disables the capability index store-wide
// (enabled by default); disabling drops every shard's index and reverts
// lookups to the full-scan path. Ablation/benchmark knob.
func (s *Store) SetIndexing(enabled bool) {
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()
	s.indexing.Store(enabled)
	if !enabled {
		s.built.Store(false)
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			sh.index = nil
			// Index contents changed without epoch bumps: retire the
			// incarnation so a republisher delayed across the switch
			// cannot install a slice built from the dropped index.
			sh.pubGen.Add(1)
			// Published slices alias the dropped index; clear them so
			// nothing holds candidate lists past the ablation switch.
			for _, st := range *sh.view.Load() {
				st.pub.Store(nil)
			}
			for _, st := range sh.extra {
				st.pub.Store(nil)
			}
			sh.mu.Unlock()
		}
	}
}

// Metrics returns a snapshot of the store-wide lookup counters.
func (s *Store) Metrics() Metrics {
	return Metrics{
		IndexedLookups: s.indexedLookups.Load(),
		ScanLookups:    s.scanLookups.Load(),
		IndexRebuilds:  s.indexRebuilds.Load(),
		Shards:         len(s.shards),
	}
}

// fnvPair hashes two strings separated by a sentinel byte (FNV-1a).
func fnvPair(a, b string) uint32 {
	const prime = 16777619
	h := uint32(2166136261)
	for i := 0; i < len(a); i++ {
		h = (h ^ uint32(a[i])) * prime
	}
	h = (h ^ 0xff) * prime
	for i := 0; i < len(b); i++ {
		h = (h ^ uint32(b[i])) * prime
	}
	return h
}

func (s *Store) shardOfCap(t TenantID, c semantics.ConceptID) uint32 {
	return fnvPair(string(t), string(c)) & s.mask
}

func (s *Store) shardOfID(t TenantID, id ServiceID) uint32 {
	return fnvPair(string(t), string(id)) & s.mask
}

func (s *Store) stripeFor(t TenantID, id ServiceID) *sync.Mutex {
	return &s.stripes[fnvPair(string(t), string(id))%mutationStripes].Mutex
}

// lockShard takes the shard's write lock, feeding the contended-wait
// histogram when telemetry is attached. The uncontended path costs one
// TryLock and no clock reads.
func (s *Store) lockShard(idx uint32) {
	sh := &s.shards[idx]
	if s.lockWait == nil || sh.mu.TryLock() {
		if s.lockWait == nil {
			sh.mu.Lock()
		}
		return
	}
	start := time.Now()
	sh.mu.Lock()
	s.lockWait.With(s.shardLabels[idx]).Observe(time.Since(start).Seconds())
}

func (s *Store) tenantCount(t TenantID) *atomic.Int64 {
	if v, ok := s.counts.Load(t); ok {
		return v.(*atomic.Int64)
	}
	v, _ := s.counts.LoadOrStore(t, new(atomic.Int64))
	return v.(*atomic.Int64)
}

// closureKeys computes, once, the canonical capability closure a
// description is routed, filed and epoch-bumped under: its canonical
// capability plus every (transitive) ancestor.
func (s *Store) closureKeys(c semantics.ConceptID) []semantics.ConceptID {
	if s.ontology == nil {
		return []semantics.ConceptID{c}
	}
	canon := s.ontology.Canonical(c)
	anc := s.ontology.Ancestors(canon)
	keys := make([]semantics.ConceptID, 0, 1+len(anc))
	keys = append(keys, canon)
	return append(keys, anc...)
}

// ClosureKeys returns the canonical capability closure of a concept —
// the keys a service with that capability is indexed and epoch-tracked
// under. Federation deltas carry these so receivers can filter
// capability-keyed pulls without recomputing ancestry.
func (s *Store) ClosureKeys(c semantics.ConceptID) []semantics.ConceptID {
	return s.closureKeys(c)
}

// publish validates and stores a description for the tenant, replacing
// any previous version, and notifies the tenant's watchers.
func (s *Store) publish(t TenantID, d Description) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cp := d.clone()
	home := s.shardOfID(t, cp.ID)
	// Canonicalize once: the closure drives shard routing, index filing
	// and epoch bumps alike (satellite: no repeated canonicalization on
	// the Publish path). Keep the local — ss.keys may be rewritten by a
	// concurrent whole-store rebuild, which holds locks we no longer do.
	keys := s.closureKeys(cp.Concept)
	ss := &storedService{desc: cp, tenant: t, keys: keys, home: home}

	stripe := s.stripeFor(t, cp.ID)
	stripe.Lock()
	sk := svcKey{t, cp.ID}
	s.lockShard(home)
	old := s.shards[home].services[sk]
	s.shards[home].services[sk] = ss
	var oldKeys []semantics.ConceptID
	if old != nil {
		oldKeys = old.keys // read under the home lock: ordered vs rebuild
	}
	s.shards[home].mu.Unlock()
	s.applyIndexDelta(t, cp.ID, ss, oldKeys, keys)
	stripe.Unlock()

	s.gen.Add(1)
	if old == nil {
		s.total.Add(1)
		s.tenantCount(t).Add(1)
	}
	if s.mutations != nil {
		s.mutations.With(s.shardLabels[home]).Inc()
	}
	s.notify(Event{Kind: EventPublished, Tenant: t, Shard: int(home), Service: cp})
	return nil
}

// withdraw removes a tenant's service and notifies watchers; it reports
// whether the service was present.
func (s *Store) withdraw(t TenantID, id ServiceID) bool {
	stripe := s.stripeFor(t, id)
	stripe.Lock()
	home := s.shardOfID(t, id)
	sk := svcKey{t, id}
	s.lockShard(home)
	old := s.shards[home].services[sk]
	if old == nil {
		s.shards[home].mu.Unlock()
		stripe.Unlock()
		return false
	}
	delete(s.shards[home].services, sk)
	oldKeys := old.keys // read under the home lock: ordered vs rebuild
	s.shards[home].mu.Unlock()
	s.applyIndexDelta(t, id, nil, oldKeys, nil)
	stripe.Unlock()

	s.gen.Add(1)
	s.total.Add(-1)
	s.tenantCount(t).Add(-1)
	if s.mutations != nil {
		s.mutations.With(s.shardLabels[home]).Inc()
	}
	s.notify(Event{Kind: EventWithdrawn, Tenant: t, Shard: int(home), Service: old.desc})
	return true
}

// applyIndexDelta updates every shard owning a key in oldKeys ∪ newKeys:
// it unfiles the service from keys it leaves, files it (as ss) under
// keys it joins or keeps, and bumps each key's epoch — one write-lock
// acquisition per touched shard, each key's index change and epoch bump
// atomic under its shard's lock. ss == nil means withdrawal. Callers
// hold the service's mutation stripe.
func (s *Store) applyIndexDelta(t TenantID, id ServiceID, ss *storedService, oldKeys, newKeys []semantics.ConceptID) {
	maintain := s.built.Load()
	process := func(idx uint32) {
		s.lockShard(idx)
		sh := &s.shards[idx]
		added := false
		// bump invalidates the key for lock-free readers *before* the
		// index change: the epoch moves and the published slice is nilled
		// first, so a reader whose tag still matches is guaranteed to be
		// looking at the pre-mutation index state.
		bump := func(ck capKey) {
			st, fresh := sh.capStateLocked(ck)
			added = added || fresh
			st.epoch.Add(1)
			st.pub.Store(nil)
		}
		for _, k := range oldKeys {
			if s.shardOfCap(t, k) != idx {
				continue
			}
			ck := capKey{t, k}
			bump(ck)
			if !maintain || (ss != nil && containsConcept(newKeys, k)) {
				continue // key kept: the newKeys pass below overwrites the filing
			}
			if set := sh.index[ck]; set != nil {
				delete(set, id)
				if len(set) == 0 {
					delete(sh.index, ck)
				}
			}
		}
		if ss != nil {
			for _, k := range newKeys {
				if s.shardOfCap(t, k) != idx {
					continue
				}
				ck := capKey{t, k}
				bump(ck)
				if !maintain {
					continue
				}
				if sh.index == nil {
					sh.index = make(map[capKey]map[ServiceID]*storedService)
				}
				set := sh.index[ck]
				if set == nil {
					set = make(map[ServiceID]*storedService)
					sh.index[ck] = set
				}
				set[id] = ss
			}
		}
		// Fold freshly created capStates into the immutable view:
		// immediately once a mutation stops minting new keys (flushes the
		// tail a bulk load leaves behind), and in amortized batches of
		// view/8 while one is in flight — populating k fresh capabilities
		// costs O(k) total copying, not O(k²).
		if n := len(sh.extra); n > 0 && (!added || n > len(*sh.view.Load())/8) {
			sh.mergeExtraLocked()
		}
		sh.mu.Unlock()
	}
	// Visit each touched shard exactly once, in first-appearance order.
	var visitedBuf [8]uint32
	visited := visitedBuf[:0]
	visit := func(keys []semantics.ConceptID) {
		for _, k := range keys {
			idx := s.shardOfCap(t, k)
			seen := false
			for _, v := range visited {
				if v == idx {
					seen = true
					break
				}
			}
			if seen {
				continue
			}
			visited = append(visited, idx)
			process(idx)
		}
	}
	visit(oldKeys)
	visit(newKeys)
}

func containsConcept(keys []semantics.ConceptID, c semantics.ConceptID) bool {
	for _, k := range keys {
		if k == c {
			return true
		}
	}
	return false
}

// get returns a copy of the tenant's description for id.
func (s *Store) get(t TenantID, id ServiceID) (Description, bool) {
	sh := &s.shards[s.shardOfID(t, id)]
	sh.mu.RLock()
	ss := sh.services[svcKey{t, id}]
	sh.mu.RUnlock()
	if ss == nil {
		return Description{}, false
	}
	return ss.desc.clone(), true
}

// all returns copies of every description of the tenant (unsorted; the
// caller sorts).
func (s *Store) all(t TenantID) []Description {
	out := make([]Description, 0, s.tenantCount(t).Load())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for sk, ss := range sh.services {
			if sk.tenant != t {
				continue
			}
			out = append(out, ss.desc.clone())
		}
		sh.mu.RUnlock()
	}
	return out
}

// capabilityEpochs fills dst, in concepts order, with the current epoch
// of each capability key for the tenant — one atomic load per key, no
// locks — and appends the ontology version when one is attached. Each
// position is individually monotonic, which is all the plan cache's
// snapshot-before-lookup protocol needs: any mutation between snapshot
// and validation makes some position differ.
func (s *Store) capabilityEpochs(t TenantID, dst []uint64, concepts ...semantics.ConceptID) []uint64 {
	if dst != nil {
		dst = dst[:0]
	}
	for _, c := range concepts {
		if s.ontology != nil {
			c = s.ontology.Canonical(c)
		}
		sh := &s.shards[s.shardOfCap(t, c)]
		var e uint64
		if st := sh.capStateOf(capKey{t, c}); st != nil {
			e = st.epoch.Load()
		}
		dst = append(dst, e)
	}
	if s.ontology != nil {
		dst = append(dst, s.ontology.Version())
	}
	return dst
}

// ensureIndex builds the capability index on first use and rebuilds it
// when the ontology's version moved (concept/alias mutations change
// every closure). The rebuild is the one whole-store lock: it takes
// every shard's write lock, in index order, recomputes each stored
// service's closure and refiles everything.
func (s *Store) ensureIndex() {
	version := uint64(0)
	if s.ontology != nil {
		version = s.ontology.Version()
	}
	if s.built.Load() && s.indexVersion.Load() == version {
		return
	}
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()
	if s.ontology != nil {
		version = s.ontology.Version()
	}
	if s.built.Load() && s.indexVersion.Load() == version {
		return
	}
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	for i := range s.shards {
		s.shards[i].index = make(map[capKey]map[ServiceID]*storedService)
	}
	for i := range s.shards {
		for sk, ss := range s.shards[i].services {
			ss.keys = s.closureKeys(ss.desc.Concept)
			for _, k := range ss.keys {
				target := &s.shards[s.shardOfCap(sk.tenant, k)]
				ck := capKey{sk.tenant, k}
				set := target.index[ck]
				if set == nil {
					set = make(map[ServiceID]*storedService)
					target.index[ck] = set
				}
				set[sk.id] = ss
			}
		}
	}
	// Republish each shard's view: existing capStates keep their epochs
	// (a rebuild is not a mutation — the ontology version, appended to
	// every epoch snapshot, is what certifies closure changes), new index
	// keys minted by a moved ontology get zero-epoch states, and every
	// published slice is cleared because index contents changed under
	// unchanged epoch values. The incarnation bump is what keeps that
	// clearing durable: a republisher that read the old index before the
	// rebuild may store its slice *after* these loops run, and with
	// epochs unmoved only the gen mismatch rejects it.
	for i := range s.shards {
		sh := &s.shards[i]
		sh.pubGen.Add(1)
		old := *sh.view.Load()
		next := make(capView, len(old)+len(sh.extra)+len(sh.index))
		for k, st := range old {
			st.pub.Store(nil)
			next[k] = st
		}
		for k, st := range sh.extra {
			st.pub.Store(nil)
			next[k] = st
		}
		for ck := range sh.index {
			if _, ok := next[ck]; !ok {
				next[ck] = &capState{}
			}
		}
		sh.view.Store(&next)
		sh.extra = make(map[capKey]*capState)
		sh.extraN.Store(0)
	}
	s.indexVersion.Store(version)
	s.built.Store(true)
	s.indexRebuilds.Add(1)
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
}

// collect gathers the stored-service pointers a candidate lookup must
// consider: the capability's published slice on the indexed path (lock-
// free when its epoch tag is current, one shard read lock to republish
// after a mutation), every shard's tenant directory on the scan path.
// The indexed result may be a shared snapshot — callers must treat it
// as immutable and copy before filtering or sorting.
func (s *Store) collect(t TenantID, canon semantics.ConceptID) []*storedService {
	if s.indexing.Load() {
		s.ensureIndex()
		s.indexedLookups.Add(1)
		sh := &s.shards[s.shardOfCap(t, canon)]
		ck := capKey{t, canon}
		st := sh.capStateOf(ck)
		if st == nil {
			return nil // key never filed or bumped: nothing to find
		}
		if p := st.pub.Load(); p != nil && p.epoch == st.epoch.Load() && p.gen == sh.pubGen.Load() {
			return p.list
		}
		return sh.republish(ck, st)
	}
	s.scanLookups.Add(1)
	var out []*storedService
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for sk, ss := range sh.services {
			if sk.tenant != t {
				continue
			}
			out = append(out, ss)
		}
		sh.mu.RUnlock()
	}
	return out
}

// watch subscribes to the tenant's change events; see Registry.Watch.
func (s *Store) watch(t TenantID, buffer int) (<-chan Event, func()) {
	if buffer <= 0 {
		buffer = 16
	}
	ch := make(chan Event, buffer)
	s.watchMu.Lock()
	id := s.nextW
	s.nextW++
	s.watchers[id] = watcher{ch: ch, tenant: t}
	s.watchMu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			s.watchMu.Lock()
			delete(s.watchers, id)
			s.watchMu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

// notify fans an event out to the event's tenant's watchers. It runs
// outside every shard lock; each watcher gets its own deep copy so a
// subscriber mutating the event (or holding it across further shard
// writes) never aliases registry-internal state or another watcher's
// view.
func (s *Store) notify(e Event) {
	s.watchMu.RLock()
	defer s.watchMu.RUnlock()
	for _, w := range s.watchers {
		if w.tenant != e.Tenant {
			continue
		}
		ev := Event{Kind: e.Kind, Tenant: e.Tenant, Shard: e.Shard, Service: e.Service.clone()}
		select {
		case w.ch <- ev:
		default: // drop rather than block
		}
	}
}

// watcherCount reports the live subscriptions (test hook).
func (s *Store) watcherCount() int {
	s.watchMu.RLock()
	defer s.watchMu.RUnlock()
	return len(s.watchers)
}

// candidates resolves the tenant's services able to provide the required
// capability; see Registry.Candidates for the contract.
func (s *Store) candidates(t TenantID, required semantics.ConceptID, ps *qos.PropertySet) []Candidate {
	if s.ontology != nil {
		required = s.ontology.Canonical(required)
	}
	stored := s.collect(t, required)
	out := make([]Candidate, 0, len(stored))
	for _, ss := range stored {
		level := s.matchCapability(required, ss.desc.Concept)
		if level != semantics.MatchExact && level != semantics.MatchPlugin {
			continue
		}
		vec, err := ss.desc.VectorFor(ps, s.ontology)
		if err != nil {
			continue
		}
		out = append(out, Candidate{Service: ss.desc.clone(), Vector: vec, Match: level})
	}
	sortCandidates(out)
	return out
}

func (s *Store) matchCapability(required, offered semantics.ConceptID) semantics.MatchLevel {
	if s.ontology == nil {
		if required == offered {
			return semantics.MatchExact
		}
		return semantics.MatchFail
	}
	return s.ontology.Match(required, offered)
}
