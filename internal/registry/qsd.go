package registry

import (
	"encoding/xml"
	"fmt"
	"strings"

	"qasom/internal/semantics"
)

// This file implements Quality-Based Service Descriptions (QSD, Ch. II
// §2.2): the XML documents providers publish, combining the functional
// description of a service (capability, inputs, outputs) with its QoS
// offers — the white-box counterpart of the in-memory Description.
//
//	<service id="bookshop-1" name="Books4U" capability="BookSale" provider="dev-7">
//	  <inputs>ItemList</inputs>
//	  <outputs>OrderRecord</outputs>
//	  <qos property="ResponseTime" value="80" unit="ms"/>
//	  <qos property="Uptime" value="99" unit="%"/>
//	</service>
//
// Units are symbolic ("ms", "s", "EUR", "ct", "%", "ratio", "req/s");
// an empty unit means the property's canonical unit.

// qsdDocument mirrors the XML structure.
type qsdDocument struct {
	XMLName    xml.Name   `xml:"service"`
	ID         string     `xml:"id,attr"`
	Name       string     `xml:"name,attr"`
	Capability string     `xml:"capability,attr"`
	Provider   string     `xml:"provider,attr"`
	Address    string     `xml:"address,attr"`
	Inputs     string     `xml:"inputs"`
	Outputs    string     `xml:"outputs"`
	Offers     []qsdOffer `xml:"qos"`
}

type qsdOffer struct {
	Property string  `xml:"property,attr"`
	Value    float64 `xml:"value,attr"`
	Unit     string  `xml:"unit,attr"`
}

// qsdUnits maps the symbolic unit names of QSD documents.
var qsdUnits = map[string]struct {
	name   string
	factor float64
}{
	"":      {"", 1},
	"ms":    {"ms", 1},
	"s":     {"s", 1000},
	"EUR":   {"EUR", 1},
	"ct":    {"ct", 0.01},
	"%":     {"%", 0.01},
	"ratio": {"ratio", 1},
	"req/s": {"req/s", 1},
}

// MarshalQSD renders a description as a QSD document.
func MarshalQSD(d Description) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	doc := qsdDocument{
		ID:         string(d.ID),
		Name:       d.Name,
		Capability: string(d.Concept),
		Provider:   string(d.Provider),
		Address:    d.Address,
		Inputs:     joinConceptList(d.Inputs),
		Outputs:    joinConceptList(d.Outputs),
	}
	for _, o := range d.Offers {
		unit := o.Unit.Name
		if o.Unit.Factor == 0 {
			unit = ""
		}
		doc.Offers = append(doc.Offers, qsdOffer{
			Property: string(o.Property),
			Value:    o.Value,
			Unit:     unit,
		})
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("registry: marshalling QSD for %q: %w", d.ID, err)
	}
	return append([]byte(xml.Header), append(out, '\n')...), nil
}

// ParseQSD reads a QSD document into a description.
func ParseQSD(doc []byte) (Description, error) {
	var q qsdDocument
	if err := xml.Unmarshal(doc, &q); err != nil {
		return Description{}, fmt.Errorf("registry: malformed QSD: %w", err)
	}
	d := Description{
		ID:       ServiceID(q.ID),
		Name:     q.Name,
		Concept:  semantics.ConceptID(q.Capability),
		Provider: DeviceID(q.Provider),
		Address:  q.Address,
		Inputs:   splitConceptList(q.Inputs),
		Outputs:  splitConceptList(q.Outputs),
	}
	for _, o := range q.Offers {
		spec, ok := qsdUnits[o.Unit]
		if !ok {
			return Description{}, fmt.Errorf("registry: QSD for %q uses unknown unit %q", q.ID, o.Unit)
		}
		offer := QoSOffer{Property: semantics.ConceptID(o.Property), Value: o.Value}
		if o.Unit != "" {
			offer.Unit.Name = spec.name
			offer.Unit.Factor = spec.factor
		}
		d.Offers = append(d.Offers, offer)
	}
	if err := d.Validate(); err != nil {
		return Description{}, err
	}
	return d, nil
}

// PublishQSD parses a QSD document and publishes it.
func (r *Registry) PublishQSD(doc []byte) (ServiceID, error) {
	d, err := ParseQSD(doc)
	if err != nil {
		return "", err
	}
	if err := r.Publish(d); err != nil {
		return "", err
	}
	return d.ID, nil
}

func joinConceptList(cs []semantics.ConceptID) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = string(c)
	}
	return strings.Join(parts, ",")
}

func splitConceptList(s string) []semantics.ConceptID {
	if s == "" {
		return nil
	}
	var out []semantics.ConceptID
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, semantics.ConceptID(part))
		}
	}
	return out
}
