// Tests for the two-tier branch/central hierarchy: delta convergence,
// tombstone propagation, capability-keyed pulls and partition healing
// with idempotent re-push.
package registry

import (
	"errors"
	"testing"

	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/semantics"
)

func newHierarchy(t *testing.T) (*Central, *Branch, *Branch) {
	t.Helper()
	onto := semantics.PervasiveWithScenarios()
	central := NewCentral(New(onto))
	b1 := NewBranch("site-1", New(onto))
	b2 := NewBranch("site-2", New(onto))
	return central, b1, b2
}

func notifyService(id string) Description {
	return Description{
		ID:      ServiceID(id),
		Concept: semantics.NotifyService,
		Offers:  stdOffers(20, 1, 0.99, 0.95, 10),
	}
}

func TestHierarchyConvergence(t *testing.T) {
	central, b1, b2 := newHierarchy(t)
	ps := qos.StandardSet()

	if err := b1.Publish(bookService("book-1", 40)); err != nil {
		t.Fatal(err)
	}
	if err := b1.Publish(bookService("book-2", 60)); err != nil {
		t.Fatal(err)
	}
	if err := b2.Publish(notifyService("notify-1")); err != nil {
		t.Fatal(err)
	}

	// Branches answer autonomously before any sync.
	if got := b1.Candidates(semantics.BookSale, ps); len(got) != 2 {
		t.Fatalf("pre-sync branch lookup = %d candidates, want 2", len(got))
	}
	if central.Registry().Len() != 0 {
		t.Fatal("central saw services before any sync")
	}

	s1, err := b1.Sync(central)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Pushed != 2 || s1.Pulled != 0 {
		t.Fatalf("b1 first sync stats = %+v", s1)
	}
	if central.Registry().Len() != 2 {
		t.Fatalf("central Len = %d after b1 sync, want 2", central.Registry().Len())
	}

	// b2 pushes its own and pulls b1's.
	s2, err := b2.Sync(central)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Pushed != 1 || s2.Pulled != 2 {
		t.Fatalf("b2 sync stats = %+v, want 1 pushed 2 pulled", s2)
	}
	// b1 pulls b2's notify service on its next round (pushing nothing).
	s1, err = b1.Sync(central)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Pushed != 0 || s1.Pulled != 1 {
		t.Fatalf("b1 second sync stats = %+v, want 0 pushed 1 pulled", s1)
	}

	for name, r := range map[string]*Registry{
		"central": central.Registry(), "b1": b1.Registry(), "b2": b2.Registry(),
	} {
		if r.Len() != 3 {
			t.Errorf("%s Len = %d, want 3 (converged)", name, r.Len())
		}
	}
	if got := b2.Candidates(semantics.BookSale, ps); len(got) != 2 {
		t.Errorf("b2 cannot serve b1's capability after sync: %d candidates", len(got))
	}
}

func TestHierarchyTombstonePropagation(t *testing.T) {
	central, b1, b2 := newHierarchy(t)
	if err := b1.Publish(bookService("book-1", 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := b1.Sync(central); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Sync(central); err != nil {
		t.Fatal(err)
	}
	if b2.Registry().Len() != 1 {
		t.Fatal("b2 did not mirror the service")
	}

	if !b1.Withdraw("book-1") {
		t.Fatal("withdraw failed")
	}
	if _, err := b1.Sync(central); err != nil {
		t.Fatal(err)
	}
	if central.Registry().Len() != 0 {
		t.Error("tombstone did not remove the service centrally")
	}
	stats, err := b2.Sync(central)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tombstones != 1 || b2.Registry().Len() != 0 {
		t.Errorf("tombstone did not propagate to b2: stats=%+v len=%d", stats, b2.Registry().Len())
	}
}

// TestHierarchyCompaction: many mutations of one service replay as one
// compacted delta — the current state, not the history.
func TestHierarchyCompaction(t *testing.T) {
	central, b1, _ := newHierarchy(t)
	for i := 0; i < 10; i++ {
		if err := b1.Publish(bookService("flappy", 40+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if p := b1.Pending(); p != 1 {
		t.Fatalf("Pending = %d, want 1 (compacted)", p)
	}
	stats, err := b1.Sync(central)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pushed != 1 {
		t.Errorf("pushed %d deltas, want the 1 compacted record", stats.Pushed)
	}
	got, ok := central.Registry().Get("flappy")
	if !ok || got.Offers[0].Value != 49 {
		t.Errorf("central state = %+v, want the latest re-publish (rt=49)", got.Offers)
	}
}

func TestHierarchyCapabilityFilteredPull(t *testing.T) {
	central, b1, b2 := newHierarchy(t)
	if err := b1.Publish(bookService("book-1", 40)); err != nil {
		t.Fatal(err)
	}
	if err := b1.Publish(notifyService("notify-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := b1.Sync(central); err != nil {
		t.Fatal(err)
	}
	// b2 mirrors only the shopping capability; the closure in each delta
	// lets the central filter by the general concept (BookSale's ancestor
	// chain includes ShoppingService).
	stats, err := b2.Sync(central, semantics.ShoppingService)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pulled != 1 || b2.Registry().Len() != 1 {
		t.Fatalf("capability-filtered pull: stats=%+v len=%d, want exactly the book service", stats, b2.Registry().Len())
	}
	if _, ok := b2.Registry().Get("book-1"); !ok {
		t.Error("filtered pull mirrored the wrong service")
	}
}

func TestHierarchyPartitionAndReconnect(t *testing.T) {
	central, b1, b2 := newHierarchy(t)
	o := obs.NewRegistry()
	b1.Instrument(o)

	central.SetPartitioned("site-1", true)
	if err := b1.Publish(bookService("book-1", 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := b1.Sync(central); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned sync error = %v, want ErrPartitioned", err)
	}
	if central.Registry().Len() != 0 {
		t.Error("partitioned push mutated the central registry")
	}
	// The branch keeps serving and mutating autonomously meanwhile.
	if err := b1.Publish(bookService("book-2", 60)); err != nil {
		t.Fatal(err)
	}
	b1.Withdraw("book-1")

	// Reconnect: one sync drains the whole partition backlog (compacted:
	// book-1 replays as a tombstone).
	central.SetPartitioned("site-1", false)
	stats, err := b1.Sync(central)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pushed != 2 {
		t.Errorf("reconnect pushed %d deltas, want 2", stats.Pushed)
	}
	if central.Registry().Len() != 1 {
		t.Errorf("central Len = %d after reconnect, want 1", central.Registry().Len())
	}
	if _, ok := central.Registry().Get("book-2"); !ok {
		t.Error("surviving service missing centrally after reconnect")
	}
	if _, err := b2.Sync(central); err != nil {
		t.Fatal(err)
	}
	if b2.Registry().Len() != 1 {
		t.Errorf("b2 Len = %d after reconnect round, want 1", b2.Registry().Len())
	}

	var failures, syncs float64
	for _, m := range o.Snapshot() {
		for _, s := range m.Series {
			switch m.Name {
			case "qasom_federation_sync_failures_total":
				failures += s.Value
			case "qasom_federation_syncs_total":
				syncs += s.Value
			}
		}
	}
	if failures != 1 || syncs != 1 {
		t.Errorf("sync counters: failures=%g syncs=%g, want 1 and 1", failures, syncs)
	}
}

// TestHierarchyIdempotentRepush: a branch whose ack was lost re-pushes
// the same sequence numbers; the central tier must apply them exactly
// once.
func TestHierarchyIdempotentRepush(t *testing.T) {
	onto := semantics.PervasiveWithScenarios()
	central := NewCentral(New(onto))
	store := central.Registry().Store()

	mk := func(seq uint64, id string, rt float64) Delta {
		d := bookService(id, rt)
		return Delta{
			Seq:     seq,
			Origin:  "site-x",
			ID:      d.ID,
			Keys:    store.ClosureKeys(d.Concept),
			Service: d,
		}
	}
	batch := []Delta{mk(1, "s1", 40), mk(2, "s2", 50)}
	ack, err := central.Push("site-x", batch)
	if err != nil || ack != 2 {
		t.Fatalf("first push: ack=%d err=%v", ack, err)
	}
	epochsAfterFirst := central.Registry().CapabilityEpochs(nil, semantics.BookSale)

	// Ack lost: the branch re-pushes the identical batch plus one new
	// delta. Only the new one may be applied.
	batch = append(batch, mk(3, "s3", 60))
	ack, err = central.Push("site-x", batch)
	if err != nil || ack != 3 {
		t.Fatalf("re-push: ack=%d err=%v", ack, err)
	}
	if central.Registry().Len() != 3 {
		t.Fatalf("central Len = %d, want 3", central.Registry().Len())
	}
	epochsAfterRepush := central.Registry().CapabilityEpochs(nil, semantics.BookSale)
	// Exactly one more publish landed: the epoch moved by one bump, not
	// by a replay of the duplicates.
	if epochsAfterRepush[0] != epochsAfterFirst[0]+1 {
		t.Errorf("BookSale epoch %d -> %d: duplicates were re-applied", epochsAfterFirst[0], epochsAfterRepush[0])
	}
	deltas, _, err := central.Pull("other-site", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 3 {
		t.Errorf("central log replays %d deltas, want 3 compacted", len(deltas))
	}
	for i := range deltas {
		if i > 0 && deltas[i].Seq <= deltas[i-1].Seq {
			t.Error("central log not in sequence order")
		}
	}
}
