package registry

import (
	"fmt"
	"sync"
	"testing"

	"qasom/internal/qos"
	"qasom/internal/semantics"
)

// candidateIDs flattens a candidate list to its service IDs (order
// preserved) for comparison.
func candidateIDs(cands []Candidate) []string {
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = string(c.Service.ID)
	}
	return out
}

func TestIndexedCandidatesMatchScan(t *testing.T) {
	onto := semantics.PervasiveWithScenarios()
	indexed := New(onto)
	scan := New(onto)
	scan.SetIndexing(false)
	ps := qos.StandardSet()

	concepts := []semantics.ConceptID{
		semantics.BookSale, semantics.NotifyService, semantics.ShoppingService,
	}
	for i := 0; i < 60; i++ {
		d := Description{
			ID:      ServiceID(fmt.Sprintf("s%02d", i)),
			Concept: concepts[i%len(concepts)],
			Offers:  stdOffers(50+float64(i), 5, 0.95, 0.9, 40),
		}
		if err := indexed.Publish(d); err != nil {
			t.Fatal(err)
		}
		if err := scan.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	for _, required := range []semantics.ConceptID{
		semantics.BookSale, semantics.ShoppingService, semantics.NotifyService, "NoSuchConcept",
	} {
		got := candidateIDs(indexed.Candidates(required, ps))
		want := candidateIDs(scan.Candidates(required, ps))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("Candidates(%s): indexed %v, scan %v", required, got, want)
		}
	}
	m := indexed.Metrics()
	if m.IndexedLookups == 0 || m.IndexRebuilds != 1 {
		t.Errorf("index metrics = %+v, want indexed lookups and exactly one build", m)
	}
	if sm := scan.Metrics(); sm.ScanLookups == 0 || sm.IndexedLookups != 0 {
		t.Errorf("scan metrics = %+v", sm)
	}
}

func TestIndexInvalidatedOnPublishWithdraw(t *testing.T) {
	r := newTestRegistry()
	ps := qos.StandardSet()
	if err := r.Publish(bookService("s1", 100)); err != nil {
		t.Fatal(err)
	}
	if got := candidateIDs(r.Candidates(semantics.BookSale, ps)); len(got) != 1 {
		t.Fatalf("initial candidates = %v", got)
	}
	// Publish after the index is built: incremental insert.
	if err := r.Publish(bookService("s2", 120)); err != nil {
		t.Fatal(err)
	}
	if got := candidateIDs(r.Candidates(semantics.BookSale, ps)); len(got) != 2 {
		t.Fatalf("after publish candidates = %v", got)
	}
	// Withdraw: incremental removal.
	r.Withdraw("s1")
	if got := candidateIDs(r.Candidates(semantics.BookSale, ps)); len(got) != 1 || got[0] != "s2" {
		t.Fatalf("after withdraw candidates = %v", got)
	}
	// Re-publish under a different capability: the old filing must go.
	d := bookService("s2", 120)
	d.Concept = semantics.NotifyService
	if err := r.Publish(d); err != nil {
		t.Fatal(err)
	}
	if got := candidateIDs(r.Candidates(semantics.BookSale, ps)); len(got) != 0 {
		t.Fatalf("stale index entry survived capability change: %v", got)
	}
	if m := r.Metrics(); m.IndexRebuilds != 1 {
		t.Errorf("expected incremental maintenance, got %d rebuilds", m.IndexRebuilds)
	}
}

func TestIndexRebuiltOnOntologyMutation(t *testing.T) {
	onto := semantics.PervasiveWithScenarios()
	r := New(onto)
	ps := qos.StandardSet()
	if err := onto.AddConcept("SpecialSale", semantics.BookSale); err != nil {
		t.Fatal(err)
	}
	d := bookService("sp1", 80)
	d.Concept = "SpecialSale"
	if err := r.Publish(d); err != nil {
		t.Fatal(err)
	}
	// Build the index, then grow the hierarchy underneath it.
	if got := candidateIDs(r.Candidates(semantics.BookSale, ps)); len(got) != 1 {
		t.Fatalf("plugin candidate missing: %v", got)
	}
	if err := onto.AddConcept("RareBookSale", "SpecialSale"); err != nil {
		t.Fatal(err)
	}
	d2 := bookService("rb1", 70)
	d2.Concept = "RareBookSale"
	if err := r.Publish(d2); err != nil {
		t.Fatal(err)
	}
	got := candidateIDs(r.Candidates(semantics.BookSale, ps))
	if len(got) != 2 {
		t.Fatalf("index not rebuilt after ontology mutation: %v", got)
	}
	if m := r.Metrics(); m.IndexRebuilds < 2 {
		t.Errorf("expected a rebuild after the ontology version moved, got %d", m.IndexRebuilds)
	}
}

func TestWatchEventsAreDeepCopies(t *testing.T) {
	r := newTestRegistry()
	ch, cancel := r.Watch(4)
	defer cancel()
	if err := r.Publish(bookService("s1", 100)); err != nil {
		t.Fatal(err)
	}
	ev := <-ch
	// A subscriber mutating its event must not corrupt registry state.
	ev.Service.Offers[0].Value = -42
	got, ok := r.Get("s1")
	if !ok {
		t.Fatal("Get failed")
	}
	if got.Offers[0].Value != 100 {
		t.Errorf("watch event aliases registry state: stored offer = %v", got.Offers[0].Value)
	}
}

func TestAllReturnsDeepCopies(t *testing.T) {
	r := newTestRegistry()
	if err := r.Publish(bookService("s1", 100)); err != nil {
		t.Fatal(err)
	}
	all := r.All()
	if len(all) != 1 {
		t.Fatalf("All = %d entries", len(all))
	}
	all[0].Offers[0].Value = -1
	all[0].Inputs = append(all[0].Inputs, "Mutated")
	got, _ := r.Get("s1")
	if got.Offers[0].Value != 100 || len(got.Inputs) != 0 {
		t.Error("All should return deep copies")
	}
}

// TestWatchCancelConcurrentWithPublish is the hygiene regression test:
// cancelling a watcher while publishers are notifying must neither
// panic (send on closed channel) nor deadlock nor leak the watcher.
func TestWatchCancelConcurrentWithPublish(t *testing.T) {
	r := newTestRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("p%d-s%d", p, i%8)
				if err := r.Publish(bookService(id, 100)); err != nil {
					t.Error(err)
					return
				}
				r.Withdraw(ServiceID(id))
			}
		}(p)
	}
	for w := 0; w < 64; w++ {
		ch, cancel := r.Watch(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range ch { // drain until cancel closes the channel
			}
		}()
		cancel()
		cancel() // double-cancel must be safe
	}
	close(stop)
	wg.Wait()
	if leaked := r.store.watcherCount(); leaked != 0 {
		t.Errorf("%d watchers leaked after cancel", leaked)
	}
}
