package registry

import (
	"context"
	"testing"

	"qasom/internal/obs"
)

// TestSyncContextSpan checks a federation sync run on behalf of a
// traced request nests a "federation.sync" span — with the branch name
// and push/pull stats annotated — under the caller's span, so the sync
// shows up inside the request's trace on /debug/spans.
func TestSyncContextSpan(t *testing.T) {
	central, b1, _ := newHierarchy(t)
	if err := b1.Publish(bookService("book-1", 40)); err != nil {
		t.Fatal(err)
	}
	if err := b1.Publish(bookService("book-2", 60)); err != nil {
		t.Fatal(err)
	}

	hub := obs.NewHub()
	ctx, parent := obs.StartSpan(obs.WithHub(context.Background(), hub), "request")
	stats, err := b1.SyncContext(ctx, central)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pushed != 2 {
		t.Fatalf("sync stats = %+v, want 2 pushed", stats)
	}
	parent.End()

	snap := hub.Tracer.Snapshot()
	if len(snap) != 1 || snap[0].Name != "request" {
		t.Fatalf("want the request as the single trace root, got %+v", snap)
	}
	if len(snap[0].Children) != 1 {
		t.Fatalf("sync span not nested under the request: %+v", snap[0])
	}
	sync := snap[0].Children[0]
	if sync.Name != "federation.sync" {
		t.Fatalf("child span = %q, want federation.sync", sync.Name)
	}
	if sync.TraceID != snap[0].TraceID {
		t.Fatal("sync span broke out of the request's trace")
	}
	if sync.Attrs["branch"] != "site-1" || sync.Attrs["pushed"] != "2" || sync.Attrs["pulled"] != "0" {
		t.Fatalf("sync span attrs = %v", sync.Attrs)
	}

	// Plain Sync stays traceable but rootless: with no hub in scope it
	// must not record anything.
	if _, err := b1.Sync(central); err != nil {
		t.Fatal(err)
	}
	if got := hub.Tracer.Snapshot(); len(got) != 1 {
		t.Fatalf("hub-less Sync leaked a trace: %d roots", len(got))
	}
}
