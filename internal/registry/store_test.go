// Tests for the sharded, multi-tenant store: the shard-count
// differential (identical candidates and epoch values at every shard
// count and against the scan path), tenant isolation, per-shard/tenant
// watch-event hygiene and the raced epoch-monotonicity differential the
// CI quick gate runs under -race.
package registry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"qasom/internal/obs"
	"qasom/internal/qos"
	"qasom/internal/semantics"
)

func TestStoreShardRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, DefaultShards}, {1, 1}, {3, 4}, {4, 4}, {13, 16}, {16, 16},
	} {
		s := NewStore(nil, StoreOptions{Shards: tc.ask})
		if s.Shards() != tc.want {
			t.Errorf("Shards: asked %d, got %d, want %d", tc.ask, s.Shards(), tc.want)
		}
	}
}

// TestDifferentialShardedCandidates drives one deterministic
// publish/withdraw/re-publish sequence into stores with 1, 4 and 16
// shards plus a scan-path store, and demands bit-identical observable
// state from all of them: the same candidates for every lookup and the
// same capability-epoch values (per-key bump counts are a function of
// the operation sequence alone, never of shard placement).
func TestDifferentialShardedCandidates(t *testing.T) {
	onto := semantics.PervasiveWithScenarios()
	ps := qos.StandardSet()
	concepts := []semantics.ConceptID{
		semantics.BookSale, semantics.CDSale, semantics.NotifyService, semantics.CardPayment,
	}

	regs := map[string]*Registry{
		"shards=1":  NewStore(onto, StoreOptions{Shards: 1}).Tenant(DefaultTenant),
		"shards=4":  NewStore(onto, StoreOptions{Shards: 4}).Tenant(DefaultTenant),
		"shards=16": NewStore(onto, StoreOptions{Shards: 16}).Tenant(DefaultTenant),
		"scan":      NewStore(onto, StoreOptions{Shards: 16}).Tenant(DefaultTenant),
	}
	regs["scan"].SetIndexing(false)

	apply := func(f func(r *Registry) error) {
		t.Helper()
		for name, r := range regs {
			if err := f(r); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	// Deterministic churn: publishes, interleaved lookups (so index
	// maintenance paths differ from build-once), withdrawals and
	// capability moves.
	rnd := uint64(12345)
	next := func(n int) int {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		return int(rnd>>33) % n
	}
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("svc-%03d", next(120))
		switch next(10) {
		case 0, 1: // withdraw (may be a no-op; must be a no-op everywhere)
			var agree *bool
			for name, r := range regs {
				ok := r.Withdraw(ServiceID(id))
				if agree == nil {
					agree = &ok
				} else if *agree != ok {
					t.Fatalf("Withdraw(%s) disagreement at %s", id, name)
				}
			}
		case 2: // mid-sequence lookup exercises incremental maintenance
			c := concepts[next(len(concepts))]
			var want []Candidate
			for _, r := range regs {
				got := r.Candidates(c, ps)
				if want == nil {
					want = got
				} else if len(got) != len(want) {
					t.Fatalf("mid-sequence lookup diverged for %s", c)
				}
			}
		default:
			d := Description{
				ID:      ServiceID(id),
				Concept: concepts[next(len(concepts))],
				Offers:  stdOffers(40+float64(next(60)), 5, 0.95, 0.9, 40),
			}
			apply(func(r *Registry) error { return r.Publish(d) })
		}
	}

	lookups := []semantics.ConceptID{
		semantics.BookSale, semantics.CDSale, semantics.MediaSale,
		semantics.ShoppingService, semantics.NotifyService,
		semantics.CardPayment, "NoSuchConcept",
	}
	want := regs["shards=1"]
	for name, r := range regs {
		if r.Len() != want.Len() {
			t.Errorf("%s: Len = %d, want %d", name, r.Len(), want.Len())
		}
		for _, c := range lookups {
			got := candidateIDs(r.Candidates(c, ps))
			exp := candidateIDs(want.Candidates(c, ps))
			if fmt.Sprint(got) != fmt.Sprint(exp) {
				t.Errorf("%s: Candidates(%s) = %v, want %v", name, c, got, exp)
			}
		}
		got := r.CapabilityEpochs(nil, lookups...)
		exp := want.CapabilityEpochs(nil, lookups...)
		if fmt.Sprint(got) != fmt.Sprint(exp) {
			t.Errorf("%s: CapabilityEpochs = %v, want %v", name, got, exp)
		}
	}
	if m := regs["shards=16"].Metrics(); m.IndexRebuilds != 1 || m.Shards != 16 {
		t.Errorf("sharded store metrics = %+v, want one lazy build over 16 shards", m)
	}
	if m := regs["scan"].Metrics(); m.ScanLookups == 0 {
		t.Errorf("scan store metrics = %+v, want scan lookups", m)
	}
}

func TestTenantIsolation(t *testing.T) {
	store := NewStore(semantics.PervasiveWithScenarios(), StoreOptions{Shards: 8})
	a, b := store.Tenant("env-a"), store.Tenant("env-b")
	ps := qos.StandardSet()

	// The same service ID in two tenants is two independent services.
	if err := a.Publish(bookService("s1", 40)); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(bookService("s1", 90)); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 || b.Len() != 1 || store.Len() != 2 {
		t.Fatalf("Len: a=%d b=%d store=%d", a.Len(), b.Len(), store.Len())
	}
	da, _ := a.Get("s1")
	db, _ := b.Get("s1")
	if da.Offers[0].Value != 40 || db.Offers[0].Value != 90 {
		t.Fatalf("tenants share a description: a=%v b=%v", da.Offers[0].Value, db.Offers[0].Value)
	}

	// Lookups never cross the tenant boundary.
	if got := b.Candidates(semantics.BookSale, ps); len(got) != 1 || got[0].Service.Offers[0].Value != 90 {
		t.Fatalf("tenant-b lookup leaked: %+v", got)
	}

	// Churn in one tenant must not move the other's capability epochs.
	beforeA := a.CapabilityEpochs(nil, semantics.BookSale, semantics.ShoppingService)
	for i := 0; i < 5; i++ {
		if err := b.Publish(bookService(fmt.Sprintf("churn-%d", i), 50)); err != nil {
			t.Fatal(err)
		}
		b.Withdraw(ServiceID(fmt.Sprintf("churn-%d", i)))
	}
	if afterA := a.CapabilityEpochs(nil, semantics.BookSale, semantics.ShoppingService); fmt.Sprint(afterA) != fmt.Sprint(beforeA) {
		t.Errorf("tenant-b churn moved tenant-a epochs: %v -> %v", beforeA, afterA)
	}

	// Withdraw is tenant-scoped.
	if !a.Withdraw("s1") || b.Len() != 1 {
		t.Error("withdraw crossed the tenant boundary")
	}
	if _, ok := b.Get("s1"); !ok {
		t.Error("tenant-b lost its service to a tenant-a withdraw")
	}
}

// TestWatchEventsCarryTenantAndShard pins the watcher-fan-out satellite:
// events carry the originating tenant and the service's home shard, are
// delivered only to that tenant's watchers, and stay deep copies under
// concurrent writes to other shards.
func TestWatchEventsCarryTenantAndShard(t *testing.T) {
	store := NewStore(semantics.PervasiveWithScenarios(), StoreOptions{Shards: 8})
	a, b := store.Tenant("env-a"), store.Tenant("env-b")
	chA, cancelA := a.Watch(64)
	defer cancelA()

	// Concurrent churn in tenant-b: its shard writes must never corrupt
	// tenant-a's event copies, and none of its events may reach chA.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("b-%d", i%8)
			if err := b.Publish(bookService(id, 50)); err != nil {
				t.Error(err)
				return
			}
			b.Withdraw(ServiceID(id))
		}
	}()

	if err := a.Publish(bookService("a-1", 40)); err != nil {
		t.Fatal(err)
	}
	a.Withdraw("a-1")
	close(stop)
	wg.Wait()
	cancelA()

	var events []Event
	for ev := range chA {
		events = append(events, ev)
	}
	if len(events) != 2 {
		t.Fatalf("tenant-a watcher saw %d events, want 2 (cross-tenant leak?)", len(events))
	}
	wantShard := store.ShardOf("env-a", "a-1")
	for i, want := range []EventKind{EventPublished, EventWithdrawn} {
		ev := events[i]
		if ev.Kind != want || ev.Tenant != "env-a" || ev.Shard != wantShard || ev.Service.ID != "a-1" {
			t.Errorf("event %d = kind=%v tenant=%q shard=%d id=%q, want kind=%v tenant=env-a shard=%d id=a-1",
				i, ev.Kind, ev.Tenant, ev.Shard, ev.Service.ID, want, wantShard)
		}
	}
	// Deep-copy hygiene: the two events of the same service must not
	// share slices with each other (or with the store, pinned elsewhere).
	events[0].Service.Offers[0].Value = -1
	if events[1].Service.Offers[0].Value == -1 {
		t.Error("watch events alias each other's offer slices")
	}
}

// TestDifferentialEpochMonotonicityRaced churns two tenants from
// multiple goroutines while samplers assert that every capability-epoch
// position is non-decreasing across snapshots (cross-shard reads must
// never observe a counter going backwards) and that an idle tenant's
// epochs never move at all. Run under -race by the CI quick gate.
func TestDifferentialEpochMonotonicityRaced(t *testing.T) {
	store := NewStore(semantics.PervasiveWithScenarios(), StoreOptions{Shards: 8})
	concepts := []semantics.ConceptID{
		semantics.CDSale, semantics.MediaSale, semantics.ShoppingService,
		semantics.BookSale, semantics.CardPayment,
	}
	churnConcepts := []semantics.ConceptID{semantics.CDSale, semantics.BookSale, semantics.CardPayment}
	tenants := []TenantID{"env-a", "env-b"}

	stop := make(chan struct{})
	var churnWG, sampleWG sync.WaitGroup
	for _, tenant := range tenants {
		for g := 0; g < 2; g++ {
			churnWG.Add(1)
			go func(r *Registry, g int) {
				defer churnWG.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					id := fmt.Sprintf("g%d-s%d", g, i%16)
					d := Description{
						ID:      ServiceID(id),
						Concept: churnConcepts[(g+i)%len(churnConcepts)],
						Offers:  stdOffers(40+float64(i%20), 5, 0.95, 0.9, 40),
					}
					if err := r.Publish(d); err != nil {
						t.Error(err)
						return
					}
					if i%3 == 0 {
						r.Withdraw(ServiceID(id))
					}
				}
			}(store.Tenant(tenant), g)
		}
	}

	var sampled atomic.Int64
	for _, tenant := range tenants {
		sampleWG.Add(1)
		go func(r *Registry) {
			defer sampleWG.Done()
			prev := r.CapabilityEpochs(nil, concepts...)
			buf := make([]uint64, 0, len(concepts)+1)
			for n := 0; n < 2000; n++ {
				buf = r.CapabilityEpochs(buf, concepts...)
				for i := range buf {
					if buf[i] < prev[i] {
						t.Errorf("epoch position %d went backwards: %d -> %d", i, prev[i], buf[i])
						return
					}
				}
				prev = append(prev[:0], buf...)
				sampled.Add(1)
			}
		}(store.Tenant(tenant))
	}
	// The idle tenant shares shards (and their counters' maps) with the
	// churners but must observe frozen epochs.
	idle := store.Tenant("env-idle")
	idleBefore := idle.CapabilityEpochs(nil, concepts...)
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		for n := 0; n < 2000; n++ {
			got := idle.CapabilityEpochs(nil, concepts...)
			if fmt.Sprint(got) != fmt.Sprint(idleBefore) {
				t.Errorf("idle tenant's epochs moved under foreign churn: %v -> %v", idleBefore, got)
				return
			}
		}
	}()
	sampleWG.Wait()
	close(stop)
	churnWG.Wait()
	if sampled.Load() == 0 {
		t.Fatal("samplers never ran")
	}
}

// TestShardTelemetry checks the per-shard observability wiring: the
// mutation counter and contended-lock-wait histogram register and the
// mutation counts sum to the operations applied.
func TestShardTelemetry(t *testing.T) {
	o := obs.NewRegistry()
	store := NewStore(semantics.PervasiveWithScenarios(), StoreOptions{Shards: 4, Obs: o})
	r := store.Tenant(DefaultTenant)
	const ops = 20
	for i := 0; i < ops; i++ {
		if err := r.Publish(bookService(fmt.Sprintf("s%d", i), 40)); err != nil {
			t.Fatal(err)
		}
	}
	var mutations float64
	var sawLockWait bool
	for _, m := range o.Snapshot() {
		switch m.Name {
		case "qasom_registry_shard_mutations_total":
			for _, s := range m.Series {
				mutations += s.Value
			}
		case "qasom_registry_shard_lock_wait_seconds":
			sawLockWait = true
		}
	}
	if mutations != ops {
		t.Errorf("shard mutation counters sum to %g, want %d", mutations, ops)
	}
	if !sawLockWait {
		t.Error("lock-wait histogram not registered")
	}
}

// TestRacedSnapshotReads hammers the lock-free read path (Candidates +
// CapabilityEpochs) against publish/withdraw churn on the same
// capability and asserts readers never observe a torn publish: whenever
// two epoch snapshots bracketing a candidate lookup are equal, the
// candidate set is a function of that epoch alone — a second lookup
// bracketed by the same epoch value must return the identical list.
// This is exactly the stability contract the plan cache builds on. Run
// under -race it also proves the RCU publication discipline.
func TestRacedSnapshotReads(t *testing.T) {
	s := NewStore(semantics.PervasiveWithScenarios(), StoreOptions{Shards: 4})
	r := s.Tenant(DefaultTenant)
	ps := qos.StandardSet()
	for i := 0; i < 4; i++ {
		if err := r.Publish(bookService(fmt.Sprintf("base-%d", i), 20+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the index so readers start on the indexed path.
	if got := candidateIDs(r.Candidates(semantics.BookSale, ps)); len(got) != 4 {
		t.Fatalf("warm lookup returned %v", got)
	}

	stop := make(chan struct{})
	var churners, readers sync.WaitGroup
	for c := 0; c < 2; c++ {
		churners.Add(1)
		go func(c int) {
			defer churners.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("churn-%d-%d", c, i%3)
				_ = r.Publish(bookService(id, 30+float64(i%7)))
				r.Withdraw(ServiceID(id))
			}
		}(c)
	}

	var torn atomic.Int32
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 400; i++ {
				e1 := r.CapabilityEpochs(nil, semantics.BookSale)
				ids1 := candidateIDs(r.Candidates(semantics.BookSale, ps))
				e2 := r.CapabilityEpochs(nil, semantics.BookSale)
				// Any individual read must be a consistent set: the four
				// base services exactly once, churners at most once.
				seen := make(map[string]int, len(ids1))
				for _, id := range ids1 {
					seen[id]++
					if seen[id] > 1 {
						torn.Add(1)
						t.Errorf("duplicate candidate %q in %v", id, ids1)
						return
					}
				}
				for b := 0; b < 4; b++ {
					if seen[fmt.Sprintf("base-%d", b)] != 1 {
						torn.Add(1)
						t.Errorf("base service missing from %v", ids1)
						return
					}
				}
				if len(e1) != len(e2) || e1[0] != e2[0] {
					continue // churn landed mid-probe: no stability claim
				}
				// Equal epochs bracketing the lookup: a re-read under the
				// same epoch must be bit-identical.
				ids2 := candidateIDs(r.Candidates(semantics.BookSale, ps))
				e3 := r.CapabilityEpochs(nil, semantics.BookSale)
				if e3[0] != e1[0] {
					continue
				}
				if len(ids1) != len(ids2) {
					torn.Add(1)
					t.Errorf("torn read: same epoch %d but %v != %v", e1[0], ids1, ids2)
					return
				}
				for j := range ids1 {
					if ids1[j] != ids2[j] {
						torn.Add(1)
						t.Errorf("torn read: same epoch %d but %v != %v", e1[0], ids1, ids2)
						return
					}
				}
			}
		}()
	}
	// Churn runs for the readers' whole duration, then drains.
	readers.Wait()
	close(stop)
	churners.Wait()
	if torn.Load() != 0 {
		t.Fatalf("%d torn reads observed", torn.Load())
	}
}

// TestRacedFreshKeyVisibility pins the capStateOf merge race: a key
// whose Publish completed before the read began must never be invisible
// (epoch 0, no candidates), even while concurrent publishes of
// brand-new keys keep merging the extra overflow into the view — the
// window where a key has just left extra (extraN observed 0) but the
// reader's first view load predates the merged view.
func TestRacedFreshKeyVisibility(t *testing.T) {
	s := NewStore(nil, StoreOptions{Shards: 2})
	r := s.Tenant(DefaultTenant)
	ps := qos.StandardSet()

	stop := make(chan struct{})
	published := make(chan semantics.ConceptID, 64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(published)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Every publish mints a fresh capability key, so the extra
			// overflow grows and merges continuously on both shards.
			c := semantics.ConceptID(fmt.Sprintf("cap-%d", i))
			d := Description{
				ID:      ServiceID(fmt.Sprintf("svc-%d", i)),
				Concept: c,
				Offers:  stdOffers(40, 5, 0.95, 0.9, 40),
			}
			if err := r.Publish(d); err != nil {
				t.Error(err)
				return
			}
			select {
			case published <- c:
			default: // reader busy: skip, don't stall the merge churn
			}
		}
	}()

	checked := 0
	for c := range published {
		if checked >= 3000 {
			select {
			case <-stop:
			default:
				close(stop)
			}
			continue // drain until the publisher closes the channel
		}
		// Publish(c) happened-before this read: both probes must see it.
		if e := r.CapabilityEpochs(nil, c); e[0] == 0 {
			t.Fatalf("published key %s invisible to CapabilityEpochs", c)
		}
		if got := r.Candidates(c, ps); len(got) == 0 {
			t.Fatalf("published key %s has no candidates", c)
		}
		checked++
	}
	wg.Wait()
	if checked == 0 {
		t.Fatal("reader never ran")
	}
}

// TestRebuildInvalidatesStalePublications pins the index-generation tag
// on published slices. A republisher delayed across a whole-store
// rebuild installs a candidate list built from the pre-rebuild index;
// because a rebuild deliberately leaves epochs untouched (the ontology
// version certifies closure changes), the epoch tag alone would let the
// fast path serve that stale list indefinitely. The gen tag must reject
// it. The delayed store is simulated deterministically by re-installing
// the pre-rebuild capPublished after the rebuild ran.
func TestRebuildInvalidatesStalePublications(t *testing.T) {
	o := semantics.New("rebuild-race")
	o.MustAddConcept("shop")
	o.MustAddConcept("kiosk") // not yet under "shop"
	s := NewStore(o, StoreOptions{Shards: 4})
	r := s.Tenant(DefaultTenant)
	ps := qos.StandardSet()
	for id, c := range map[string]semantics.ConceptID{"svc-shop": "shop", "svc-kiosk": "kiosk"} {
		d := Description{ID: ServiceID(id), Concept: c, Offers: stdOffers(40, 5, 0.95, 0.9, 40)}
		if err := r.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the index and install the publication for "shop".
	if got := candidateIDs(r.Candidates("shop", ps)); len(got) != 1 || got[0] != "svc-shop" {
		t.Fatalf("warm lookup = %v, want [svc-shop]", got)
	}
	sh := &s.shards[s.shardOfCap(DefaultTenant, "shop")]
	st := sh.capStateOf(capKey{DefaultTenant, "shop"})
	if st == nil {
		t.Fatal("no capState for warmed key")
	}
	stale := st.pub.Load()
	if stale == nil {
		t.Fatal("warm lookup did not publish a slice")
	}

	// Moving the ontology (kiosk ⊑ shop) forces a whole-store rebuild on
	// the next lookup: "shop" now also covers svc-kiosk, epochs unmoved.
	o.MustAddConcept("kiosk", "shop")
	if got := candidateIDs(r.Candidates("shop", ps)); len(got) != 2 {
		t.Fatalf("post-rebuild lookup = %v, want both services", got)
	}

	// The delayed republisher lands its pre-rebuild slice. Epoch matches
	// (rebuilds don't bump), so only the generation tag can reject it.
	st.pub.Store(stale)
	if got := candidateIDs(r.Candidates("shop", ps)); len(got) != 2 {
		t.Fatalf("stale publication served after rebuild: %v, want both services", got)
	}
}
