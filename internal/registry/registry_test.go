package registry

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"qasom/internal/qos"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

func stdOffers(rt, price, avail, rel, tput float64) []QoSOffer {
	return []QoSOffer{
		{Property: semantics.ResponseTime, Value: rt},
		{Property: semantics.Price, Value: price},
		{Property: semantics.Availability, Value: avail},
		{Property: semantics.Reliability, Value: rel},
		{Property: semantics.Throughput, Value: tput},
	}
}

func bookService(id string, rt float64) Description {
	return Description{
		ID:      ServiceID(id),
		Name:    "Book shop " + id,
		Concept: semantics.BookSale,
		Offers:  stdOffers(rt, 10, 0.95, 0.9, 50),
	}
}

func newTestRegistry() *Registry {
	return New(semantics.PervasiveWithScenarios())
}

func TestPublishValidation(t *testing.T) {
	r := newTestRegistry()
	if err := r.Publish(Description{}); err == nil {
		t.Error("empty description should be rejected")
	}
	if err := r.Publish(Description{ID: "x"}); err == nil {
		t.Error("description without concept should be rejected")
	}
	if err := r.Publish(bookService("s1", 100)); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestPublishCopiesAtBoundary(t *testing.T) {
	r := newTestRegistry()
	d := bookService("s1", 100)
	if err := r.Publish(d); err != nil {
		t.Fatal(err)
	}
	d.Offers[0].Value = 99999
	got, ok := r.Get("s1")
	if !ok {
		t.Fatal("Get failed")
	}
	if got.Offers[0].Value != 100 {
		t.Error("Publish should copy offers at the boundary")
	}
	// Mutating the returned copy must not affect the registry either.
	got.Offers[0].Value = -1
	got2, _ := r.Get("s1")
	if got2.Offers[0].Value != 100 {
		t.Error("Get should return copies")
	}
}

func TestWithdraw(t *testing.T) {
	r := newTestRegistry()
	if err := r.Publish(bookService("s1", 100)); err != nil {
		t.Fatal(err)
	}
	if !r.Withdraw("s1") {
		t.Error("Withdraw should report presence")
	}
	if r.Withdraw("s1") {
		t.Error("second Withdraw should report absence")
	}
	if _, ok := r.Get("s1"); ok {
		t.Error("withdrawn service still present")
	}
}

func TestAllSorted(t *testing.T) {
	r := newTestRegistry()
	for _, id := range []string{"c", "a", "b"} {
		if err := r.Publish(bookService(id, 100)); err != nil {
			t.Fatal(err)
		}
	}
	all := r.All()
	if len(all) != 3 || all[0].ID != "a" || all[2].ID != "c" {
		t.Errorf("All not sorted: %v", []ServiceID{all[0].ID, all[1].ID, all[2].ID})
	}
}

func TestCandidatesSemanticMatch(t *testing.T) {
	r := newTestRegistry()
	ps := qos.StandardSet()
	if err := r.Publish(bookService("book1", 100)); err != nil {
		t.Fatal(err)
	}
	cd := Description{ID: "cd1", Concept: semantics.CDSale, Offers: stdOffers(80, 5, 0.9, 0.9, 40)}
	if err := r.Publish(cd); err != nil {
		t.Fatal(err)
	}
	generic := Description{ID: "gen1", Concept: semantics.ShoppingService, Offers: stdOffers(60, 4, 0.9, 0.9, 40)}
	if err := r.Publish(generic); err != nil {
		t.Fatal(err)
	}

	// Request for generic Shopping: exact (gen1) + plugin (book1, cd1).
	got := r.Candidates(semantics.ShoppingService, ps)
	if len(got) != 3 {
		t.Fatalf("Candidates(Shopping) = %d, want 3", len(got))
	}
	if got[0].Service.ID != "gen1" || got[0].Match != semantics.MatchExact {
		t.Errorf("exact match should sort first: %v", got[0].Service.ID)
	}

	// Request for BookSale: only book1 (gen1 would be a subsume match,
	// which is excluded).
	got = r.Candidates(semantics.BookSale, ps)
	if len(got) != 1 || got[0].Service.ID != "book1" {
		t.Errorf("Candidates(BookSale) = %v", got)
	}
	// Vector resolved in canonical units.
	if got[0].Vector[0] != 100 {
		t.Errorf("responseTime = %g, want 100", got[0].Vector[0])
	}
}

func TestCandidatesSkipIncompleteOffers(t *testing.T) {
	r := newTestRegistry()
	ps := qos.StandardSet()
	incomplete := Description{
		ID: "inc", Concept: semantics.BookSale,
		Offers: []QoSOffer{{Property: semantics.ResponseTime, Value: 10}},
	}
	if err := r.Publish(incomplete); err != nil {
		t.Fatal(err)
	}
	if got := r.Candidates(semantics.BookSale, ps); len(got) != 0 {
		t.Errorf("service with incomplete offers should be skipped, got %d", len(got))
	}
}

func TestOfferVocabularyAndUnits(t *testing.T) {
	r := newTestRegistry()
	ps := qos.StandardSet()
	// Provider uses "Delay" in seconds, "Uptime" in percent, "Fee" in cents.
	d := Description{
		ID: "het", Concept: semantics.BookSale,
		Offers: []QoSOffer{
			{Property: "Delay", Value: 0.2, Unit: qos.Seconds},
			{Property: "Fee", Value: 250, Unit: qos.Cents},
			{Property: "Uptime", Value: 95, Unit: qos.Percent},
			{Property: "SuccessRate", Value: 0.9},
			{Property: "Rate", Value: 40},
		},
	}
	if err := r.Publish(d); err != nil {
		t.Fatal(err)
	}
	got := r.Candidates(semantics.BookSale, ps)
	if len(got) != 1 {
		t.Fatalf("heterogeneous offers should resolve, got %d candidates", len(got))
	}
	want := qos.Vector{200, 2.5, 0.95, 0.9, 40}
	if !got[0].Vector.Equal(want, 1e-9) {
		t.Errorf("vector = %v, want %v", got[0].Vector, want)
	}
}

func TestOfferForSpecializedConcept(t *testing.T) {
	// A provider advertising ExecutionTime satisfies a ResponseTime
	// requirement (plugin match on the property concept).
	r := newTestRegistry()
	d := Description{
		ID: "s", Concept: semantics.BookSale,
		Offers: []QoSOffer{{Property: semantics.ExecutionTime, Value: 120}},
	}
	rt := qos.StandardSet().At(0)
	v, ok := d.OfferFor(rt, r.Ontology())
	if !ok || v != 120 {
		t.Errorf("OfferFor(responseTime) = (%g, %v), want (120, true)", v, ok)
	}
}

func TestCandidatesForActivityDataCompatibility(t *testing.T) {
	r := newTestRegistry()
	ps := qos.StandardSet()
	good := bookService("good", 100)
	good.Inputs = []semantics.ConceptID{semantics.ItemList}
	good.Outputs = []semantics.ConceptID{semantics.Order, semantics.Receipt}
	if err := r.Publish(good); err != nil {
		t.Fatal(err)
	}
	needy := bookService("needy", 90)
	needy.Inputs = []semantics.ConceptID{semantics.Prescription} // activity cannot provide
	if err := r.Publish(needy); err != nil {
		t.Fatal(err)
	}
	silent := bookService("silent", 80) // declares no outputs
	if err := r.Publish(silent); err != nil {
		t.Fatal(err)
	}

	act := &task.Activity{
		ID: "buy", Concept: semantics.BookSale,
		Inputs:  []semantics.ConceptID{semantics.ItemList},
		Outputs: []semantics.ConceptID{semantics.Order},
	}
	got := r.CandidatesForActivity(act, ps)
	if len(got) != 1 || got[0].Service.ID != "good" {
		ids := make([]ServiceID, len(got))
		for i, c := range got {
			ids[i] = c.Service.ID
		}
		t.Errorf("CandidatesForActivity = %v, want [good]", ids)
	}

	// An activity declaring no data does not constrain inputs but still
	// requires declared outputs.
	lax := &task.Activity{ID: "buy2", Concept: semantics.BookSale}
	got = r.CandidatesForActivity(lax, ps)
	if len(got) != 3 {
		t.Errorf("activity without data declarations should accept all: %d", len(got))
	}
}

func TestWatch(t *testing.T) {
	r := newTestRegistry()
	ch, cancel := r.Watch(4)
	defer cancel()
	if err := r.Publish(bookService("s1", 100)); err != nil {
		t.Fatal(err)
	}
	r.Withdraw("s1")

	var events []Event
	timeout := time.After(time.Second)
	for len(events) < 2 {
		select {
		case e := <-ch:
			events = append(events, e)
		case <-timeout:
			t.Fatalf("timed out after %d events", len(events))
		}
	}
	if events[0].Kind != EventPublished || events[0].Service.ID != "s1" {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Kind != EventWithdrawn {
		t.Errorf("event 1 = %+v", events[1])
	}
}

func TestWatchCancelIdempotent(t *testing.T) {
	r := newTestRegistry()
	ch, cancel := r.Watch(1)
	cancel()
	cancel() // second cancel must not panic
	if _, open := <-ch; open {
		t.Error("channel should be closed after cancel")
	}
	// Publishing after cancel must not panic.
	if err := r.Publish(bookService("s1", 100)); err != nil {
		t.Fatal(err)
	}
}

func TestWatchDoesNotBlockPublishers(t *testing.T) {
	r := newTestRegistry()
	_, cancel := r.Watch(1) // tiny buffer, never drained
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Publish(bookService(fmt.Sprintf("s%d", i), 100))
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publisher blocked on a slow watcher")
	}
}

func TestConcurrentPublishWithdraw(t *testing.T) {
	r := newTestRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("w%d-s%d", w, i)
				_ = r.Publish(bookService(id, float64(i)))
				_ = r.Candidates(semantics.BookSale, qos.StandardSet())
				r.Withdraw(ServiceID(id))
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Errorf("registry should be empty, has %d", r.Len())
	}
}
