package registry

import (
	"fmt"
	"sync"
	"testing"

	"qasom/internal/qos"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

func memberWith(t *testing.T, ids ...string) *Registry {
	t.Helper()
	r := newTestRegistry()
	for i, id := range ids {
		if err := r.Publish(bookService(id, float64(50+10*i))); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestFederationJoinLeave(t *testing.T) {
	f := NewFederation(nil)
	if err := f.Join("", nil); err == nil {
		t.Error("empty member should be rejected")
	}
	if err := f.Join("devA", memberWith(t, "a1")); err != nil {
		t.Fatal(err)
	}
	if err := f.Join("devB", memberWith(t, "b1", "b2")); err != nil {
		t.Fatal(err)
	}
	if got := f.Members(); len(got) != 2 || got[0] != "devA" {
		t.Errorf("Members = %v", got)
	}
	if f.Len() != 3 {
		t.Errorf("Len = %d, want 3", f.Len())
	}
	if !f.Leave("devA") {
		t.Error("Leave should report presence")
	}
	if f.Leave("devA") {
		t.Error("double Leave should report absence")
	}
	if f.Len() != 2 {
		t.Errorf("after leave Len = %d, want 2", f.Len())
	}
	if _, ok := f.Get("a1"); ok {
		t.Error("left member's services should be unreachable")
	}
}

func TestFederationCandidatesAcrossMembers(t *testing.T) {
	onto := semantics.PervasiveWithScenarios()
	f := NewFederation(onto)
	ra := New(onto)
	rb := New(onto)
	if err := ra.Publish(bookService("shopA", 50)); err != nil {
		t.Fatal(err)
	}
	if err := rb.Publish(bookService("shopB", 40)); err != nil {
		t.Fatal(err)
	}
	// Duplicate ID in both members: first member wins.
	dup := bookService("dup", 10)
	if err := ra.Publish(dup); err != nil {
		t.Fatal(err)
	}
	dup2 := bookService("dup", 999)
	if err := rb.Publish(dup2); err != nil {
		t.Fatal(err)
	}
	if err := f.Join("A", ra); err != nil {
		t.Fatal(err)
	}
	if err := f.Join("B", rb); err != nil {
		t.Fatal(err)
	}
	got := f.Candidates(semantics.BookSale, qos.StandardSet())
	if len(got) != 3 {
		t.Fatalf("candidates = %d, want 3 (dedup)", len(got))
	}
	for _, c := range got {
		if c.Service.ID == "dup" && c.Vector[0] != 10 {
			t.Errorf("first member should win the duplicate: rt %g", c.Vector[0])
		}
	}
	all := f.All()
	if len(all) != 3 || all[0].ID != "dup" {
		t.Errorf("All = %v", all)
	}
}

func TestFederationCandidatesForActivity(t *testing.T) {
	onto := semantics.PervasiveWithScenarios()
	f := NewFederation(onto)
	r := New(onto)
	good := bookService("g", 50)
	good.Outputs = []semantics.ConceptID{semantics.Order}
	if err := r.Publish(good); err != nil {
		t.Fatal(err)
	}
	silent := bookService("s", 40) // no outputs declared
	if err := r.Publish(silent); err != nil {
		t.Fatal(err)
	}
	if err := f.Join("A", r); err != nil {
		t.Fatal(err)
	}
	act := &task.Activity{ID: "buy", Concept: semantics.BookSale,
		Outputs: []semantics.ConceptID{semantics.Order}}
	got := f.CandidatesForActivity(act, qos.StandardSet())
	if len(got) != 1 || got[0].Service.ID != "g" {
		t.Errorf("data compatibility not applied across federation: %v", got)
	}
}

func TestFederationChurnWithSelection(t *testing.T) {
	// Ad hoc market: a vendor's whole device leaves, taking its services
	// with it; the next resolution simply no longer sees them.
	onto := semantics.PervasiveWithScenarios()
	f := NewFederation(onto)
	for dev := 0; dev < 3; dev++ {
		r := New(onto)
		for s := 0; s < 2; s++ {
			if err := r.Publish(bookService(fmt.Sprintf("d%d-s%d", dev, s), float64(40+10*s))); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Join(fmt.Sprintf("dev%d", dev), r); err != nil {
			t.Fatal(err)
		}
	}
	before := f.Candidates(semantics.BookSale, qos.StandardSet())
	if len(before) != 6 {
		t.Fatalf("before churn: %d candidates", len(before))
	}
	f.Leave("dev1")
	after := f.Candidates(semantics.BookSale, qos.StandardSet())
	if len(after) != 4 {
		t.Fatalf("after churn: %d candidates, want 4", len(after))
	}
	for _, c := range after {
		if c.Service.ID == "d1-s0" || c.Service.ID == "d1-s1" {
			t.Error("left device's services still resolvable")
		}
	}
}

func TestFederationConcurrent(t *testing.T) {
	onto := semantics.PervasiveWithScenarios()
	f := NewFederation(onto)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("w%d-m%d", w, i)
				r := New(onto)
				_ = r.Publish(bookService(fmt.Sprintf("%s-svc", name), 50))
				_ = f.Join(name, r)
				_ = f.Candidates(semantics.BookSale, qos.StandardSet())
				f.Leave(name)
			}
		}(w)
	}
	wg.Wait()
	if f.Len() != 0 {
		t.Errorf("federation should be empty, has %d", f.Len())
	}
}
