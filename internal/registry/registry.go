// Package registry implements QASOM's semantic service registry: the
// directory where providers in the pervasive environment publish
// QoS-annotated service descriptions and where the composition framework
// resolves abstract activities to candidate services. Matching is
// semantic (capability concepts via the shared ontology, with alias
// resolution for heterogeneous QoS vocabularies) and QoS offers are
// converted into vectors aligned to the requester's property set.
package registry

import (
	"fmt"
	"sort"
	"sync"

	"qasom/internal/qos"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

// ServiceID identifies a published service.
type ServiceID string

// DeviceID identifies the hosting device.
type DeviceID string

// QoSOffer is one advertised QoS statement, expressed in the provider's
// own vocabulary and unit.
type QoSOffer struct {
	// Property is the provider's name for the QoS property; it may be a
	// canonical concept or any alias the shared ontology knows.
	Property semantics.ConceptID
	// Value is the advertised value in Unit.
	Value float64
	// Unit is the unit of Value; the zero Unit means the canonical unit.
	Unit qos.Unit
}

// Description is a published service description.
type Description struct {
	// ID uniquely identifies the service in the registry.
	ID ServiceID
	// Name is a human-readable label.
	Name string
	// Concept is the functional capability the service offers.
	Concept semantics.ConceptID
	// Inputs and Outputs are the data concepts consumed and produced.
	Inputs  []semantics.ConceptID
	Outputs []semantics.ConceptID
	// Provider is the hosting device.
	Provider DeviceID
	// Address is the invocation endpoint (transport-specific).
	Address string
	// Offers are the advertised QoS statements.
	Offers []QoSOffer
}

// Validate reports whether the description can be published.
func (d *Description) Validate() error {
	switch {
	case d == nil:
		return fmt.Errorf("registry: nil description")
	case d.ID == "":
		return fmt.Errorf("registry: service without ID")
	case d.Concept == "":
		return fmt.Errorf("registry: service %q without capability concept", d.ID)
	}
	return nil
}

// OfferFor returns the advertised value for the given canonical property,
// resolving vocabulary heterogeneity through the ontology and converting
// units. The bool reports whether a usable offer exists.
func (d *Description) OfferFor(p *qos.Property, o *semantics.Ontology) (float64, bool) {
	for _, offer := range d.Offers {
		name := offer.Property
		if o != nil {
			name = o.Canonical(name)
		}
		matched := name == p.Concept
		if !matched && o != nil {
			matched = o.Match(p.Concept, name) == semantics.MatchPlugin
		}
		if !matched {
			continue
		}
		unit := offer.Unit
		if unit.Factor == 0 {
			unit = p.Unit
		}
		v, err := qos.Convert(offer.Value, unit, p.Unit)
		if err != nil {
			continue
		}
		return v, true
	}
	return 0, false
}

// VectorFor resolves the full advertised QoS vector aligned to the
// property set. It fails when any property lacks a usable offer.
func (d *Description) VectorFor(ps *qos.PropertySet, o *semantics.Ontology) (qos.Vector, error) {
	out := ps.NewVector()
	for j := 0; j < ps.Len(); j++ {
		v, ok := d.OfferFor(ps.At(j), o)
		if !ok {
			return nil, fmt.Errorf("registry: service %q offers no %q", d.ID, ps.At(j).Name)
		}
		out[j] = v
	}
	return out, nil
}

// clone deep-copies the description so registry internals never alias
// caller slices.
func (d Description) clone() Description {
	d.Inputs = append([]semantics.ConceptID(nil), d.Inputs...)
	d.Outputs = append([]semantics.ConceptID(nil), d.Outputs...)
	d.Offers = append([]QoSOffer(nil), d.Offers...)
	return d
}

// Candidate is a service resolved for an abstract activity: the
// description, its QoS vector aligned to the request's properties, and
// the semantic match level of its capability.
type Candidate struct {
	Service Description
	Vector  qos.Vector
	Match   semantics.MatchLevel
}

// EventKind tags registry change notifications.
type EventKind int

// Event kinds.
const (
	// EventPublished fires when a service joins or is updated.
	EventPublished EventKind = iota + 1
	// EventWithdrawn fires when a service leaves.
	EventWithdrawn
)

// Event is a registry change notification.
type Event struct {
	Kind    EventKind
	Service Description
}

// Registry is the concurrent service directory. Create instances with
// New.
type Registry struct {
	mu       sync.RWMutex
	services map[ServiceID]Description
	ontology *semantics.Ontology
	watchers map[int]chan Event
	nextW    int
}

// New creates a registry bound to the shared ontology (nil restricts
// matching to exact concept equality).
func New(o *semantics.Ontology) *Registry {
	return &Registry{
		services: make(map[ServiceID]Description),
		ontology: o,
		watchers: make(map[int]chan Event),
	}
}

// Ontology returns the registry's shared ontology (may be nil).
func (r *Registry) Ontology() *semantics.Ontology { return r.ontology }

// Publish validates and stores a description, replacing any previous
// version, and notifies watchers.
func (r *Registry) Publish(d Description) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cp := d.clone()
	r.mu.Lock()
	r.services[cp.ID] = cp
	r.mu.Unlock()
	r.notify(Event{Kind: EventPublished, Service: cp})
	return nil
}

// Withdraw removes a service and notifies watchers; it reports whether
// the service was present.
func (r *Registry) Withdraw(id ServiceID) bool {
	r.mu.Lock()
	d, ok := r.services[id]
	if ok {
		delete(r.services, id)
	}
	r.mu.Unlock()
	if ok {
		r.notify(Event{Kind: EventWithdrawn, Service: d})
	}
	return ok
}

// Get returns a copy of the description for id.
func (r *Registry) Get(id ServiceID) (Description, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.services[id]
	if !ok {
		return Description{}, false
	}
	return d.clone(), true
}

// Len returns the number of published services.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.services)
}

// All returns copies of every description, sorted by ID.
func (r *Registry) All() []Description {
	r.mu.RLock()
	out := make([]Description, 0, len(r.services))
	for _, d := range r.services {
		out = append(out, d.clone())
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Candidates resolves the services able to provide the required
// capability, with their QoS vectors aligned to ps. Services whose
// capability fails to match (subsume matches are excluded: a more
// general service does not guarantee the required function) or whose
// offers cannot cover ps are skipped. Results are sorted by match level
// then ID.
func (r *Registry) Candidates(required semantics.ConceptID, ps *qos.PropertySet) []Candidate {
	r.mu.RLock()
	services := make([]Description, 0, len(r.services))
	for _, d := range r.services {
		services = append(services, d)
	}
	r.mu.RUnlock()

	out := make([]Candidate, 0, len(services))
	for _, d := range services {
		level := r.matchCapability(required, d.Concept)
		if level != semantics.MatchExact && level != semantics.MatchPlugin {
			continue
		}
		vec, err := d.VectorFor(ps, r.ontology)
		if err != nil {
			continue
		}
		out = append(out, Candidate{Service: d.clone(), Vector: vec, Match: level})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Match != out[j].Match {
			return out[i].Match.Beats(out[j].Match)
		}
		return out[i].Service.ID < out[j].Service.ID
	})
	return out
}

// CandidatesForActivity resolves candidates for an abstract activity,
// additionally enforcing data compatibility when both sides declare it:
// every input the service requires must be provided by the activity, and
// every output the activity expects must be produced by the service.
func (r *Registry) CandidatesForActivity(a *task.Activity, ps *qos.PropertySet) []Candidate {
	base := r.Candidates(a.Concept, ps)
	out := base[:0]
	for _, c := range base {
		if r.dataCompatible(a, &c.Service) {
			out = append(out, c)
		}
	}
	return out
}

func (r *Registry) dataCompatible(a *task.Activity, d *Description) bool {
	for _, in := range d.Inputs {
		if len(a.Inputs) == 0 {
			break // activity declares nothing: do not constrain
		}
		if !r.conceptCovered(in, a.Inputs) {
			return false
		}
	}
	for _, want := range a.Outputs {
		if len(d.Outputs) == 0 {
			return false
		}
		if !r.conceptCovered(want, d.Outputs) {
			return false
		}
	}
	return true
}

func (r *Registry) conceptCovered(required semantics.ConceptID, available []semantics.ConceptID) bool {
	for _, offered := range available {
		if r.matchCapability(required, offered).Satisfies() {
			return true
		}
	}
	return false
}

func (r *Registry) matchCapability(required, offered semantics.ConceptID) semantics.MatchLevel {
	if r.ontology == nil {
		if required == offered {
			return semantics.MatchExact
		}
		return semantics.MatchFail
	}
	return r.ontology.Match(required, offered)
}

// Watch subscribes to registry change events. The returned cancel
// function unsubscribes and closes the channel. Events are delivered
// best-effort: when the subscriber's buffer is full the event is dropped
// rather than blocking publishers.
func (r *Registry) Watch(buffer int) (<-chan Event, func()) {
	if buffer <= 0 {
		buffer = 16
	}
	ch := make(chan Event, buffer)
	r.mu.Lock()
	id := r.nextW
	r.nextW++
	r.watchers[id] = ch
	r.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			r.mu.Lock()
			delete(r.watchers, id)
			r.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

func (r *Registry) notify(e Event) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, ch := range r.watchers {
		select {
		case ch <- e:
		default: // drop rather than block
		}
	}
}
