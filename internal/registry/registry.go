// Package registry implements QASOM's semantic service registry: the
// directory where providers in the pervasive environment publish
// QoS-annotated service descriptions and where the composition framework
// resolves abstract activities to candidate services. Matching is
// semantic (capability concepts via the shared ontology, with alias
// resolution for heterogeneous QoS vocabularies) and QoS offers are
// converted into vectors aligned to the requester's property set.
//
// The storage core is a sharded, multi-tenant Store (see store.go);
// Registry is the tenant-bound view every pre-multi-tenant call site
// keeps using unchanged. federation.go adds the two-tier branch/central
// hierarchy for distributed deployments.
package registry

import (
	"fmt"
	"sort"

	"qasom/internal/qos"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

// ServiceID identifies a published service.
type ServiceID string

// DeviceID identifies the hosting device.
type DeviceID string

// QoSOffer is one advertised QoS statement, expressed in the provider's
// own vocabulary and unit.
type QoSOffer struct {
	// Property is the provider's name for the QoS property; it may be a
	// canonical concept or any alias the shared ontology knows.
	Property semantics.ConceptID
	// Value is the advertised value in Unit.
	Value float64
	// Unit is the unit of Value; the zero Unit means the canonical unit.
	Unit qos.Unit
}

// Description is a published service description.
type Description struct {
	// ID uniquely identifies the service in the registry.
	ID ServiceID
	// Name is a human-readable label.
	Name string
	// Concept is the functional capability the service offers.
	Concept semantics.ConceptID
	// Inputs and Outputs are the data concepts consumed and produced.
	Inputs  []semantics.ConceptID
	Outputs []semantics.ConceptID
	// Provider is the hosting device.
	Provider DeviceID
	// Address is the invocation endpoint (transport-specific).
	Address string
	// Offers are the advertised QoS statements.
	Offers []QoSOffer
}

// Validate reports whether the description can be published.
func (d *Description) Validate() error {
	switch {
	case d == nil:
		return fmt.Errorf("registry: nil description")
	case d.ID == "":
		return fmt.Errorf("registry: service without ID")
	case d.Concept == "":
		return fmt.Errorf("registry: service %q without capability concept", d.ID)
	}
	return nil
}

// OfferFor returns the advertised value for the given canonical property,
// resolving vocabulary heterogeneity through the ontology and converting
// units. The bool reports whether a usable offer exists.
func (d *Description) OfferFor(p *qos.Property, o *semantics.Ontology) (float64, bool) {
	for _, offer := range d.Offers {
		name := offer.Property
		if o != nil {
			name = o.Canonical(name)
		}
		matched := name == p.Concept
		if !matched && o != nil {
			matched = o.Match(p.Concept, name) == semantics.MatchPlugin
		}
		if !matched {
			continue
		}
		unit := offer.Unit
		if unit.Factor == 0 {
			unit = p.Unit
		}
		v, err := qos.Convert(offer.Value, unit, p.Unit)
		if err != nil {
			continue
		}
		return v, true
	}
	return 0, false
}

// VectorFor resolves the full advertised QoS vector aligned to the
// property set. It fails when any property lacks a usable offer.
func (d *Description) VectorFor(ps *qos.PropertySet, o *semantics.Ontology) (qos.Vector, error) {
	out := ps.NewVector()
	for j := 0; j < ps.Len(); j++ {
		v, ok := d.OfferFor(ps.At(j), o)
		if !ok {
			return nil, fmt.Errorf("registry: service %q offers no %q", d.ID, ps.At(j).Name)
		}
		out[j] = v
	}
	return out, nil
}

// clone deep-copies the description so registry internals never alias
// caller slices.
func (d Description) clone() Description {
	d.Inputs = append([]semantics.ConceptID(nil), d.Inputs...)
	d.Outputs = append([]semantics.ConceptID(nil), d.Outputs...)
	d.Offers = append([]QoSOffer(nil), d.Offers...)
	return d
}

// Candidate is a service resolved for an abstract activity: the
// description, its QoS vector aligned to the request's properties, and
// the semantic match level of its capability.
type Candidate struct {
	Service Description
	Vector  qos.Vector
	Match   semantics.MatchLevel
}

// Clone deep-copies the candidate so the copy shares no slices with the
// original (selection results cached across requests must never alias a
// caller's live composition).
func (c Candidate) Clone() Candidate {
	c.Service = c.Service.clone()
	c.Vector = c.Vector.Clone()
	return c
}

// sortCandidates orders a candidate list by match level (better first)
// then service ID — the contract of every Candidates variant.
func sortCandidates(out []Candidate) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Match != out[j].Match {
			return out[i].Match.Beats(out[j].Match)
		}
		return out[i].Service.ID < out[j].Service.ID
	})
}

// EventKind tags registry change notifications.
type EventKind int

// Event kinds.
const (
	// EventPublished fires when a service joins or is updated.
	EventPublished EventKind = iota + 1
	// EventWithdrawn fires when a service leaves.
	EventWithdrawn
)

// Event is a registry change notification. Tenant names the logical
// environment the change happened in (watchers only ever receive their
// own tenant's events) and Shard is the store shard holding the
// service's directory entry.
type Event struct {
	Kind    EventKind
	Tenant  TenantID
	Shard   int
	Service Description
}

// Metrics reports how the registry served capability lookups: how many
// went through the concept index versus a full scan, and how often the
// index had to be rebuilt because the shared ontology mutated.
type Metrics struct {
	// IndexedLookups counts Candidates calls answered from the
	// capability index.
	IndexedLookups uint64
	// ScanLookups counts Candidates calls that walked every description.
	ScanLookups uint64
	// IndexRebuilds counts full index (re)builds (initial build included).
	IndexRebuilds uint64
	// Shards is the number of lock domains of the backing store.
	Shards int
}

// Registry is the concurrent service directory: a tenant-bound view over
// a sharded Store. Create single-tenant instances with New, or views
// over a shared store with Store.Tenant. All methods are safe for
// concurrent use; views are cheap handles and any number may exist per
// tenant.
type Registry struct {
	store  *Store
	tenant TenantID
}

// New creates a single-tenant registry over a fresh store with the
// default shard count, bound to the shared ontology (nil restricts
// matching to exact concept equality).
func New(o *semantics.Ontology) *Registry {
	return NewStore(o, StoreOptions{}).Tenant(DefaultTenant)
}

// Store returns the sharded multi-tenant store backing this view.
func (r *Registry) Store() *Store { return r.store }

// TenantID returns the tenant this view is bound to.
func (r *Registry) TenantID() TenantID { return r.tenant }

// Epoch returns the store's global generation: a counter bumped on every
// Publish/Withdraw of any tenant. It is a single atomic load — callers
// poll it to detect "nothing changed since my snapshot" without locking.
// For a tenant-precise signal use CapabilityEpochs.
func (r *Registry) Epoch() uint64 { return r.store.Epoch() }

// CapabilityEpochs appends to dst the current epoch of each required
// capability concept for this tenant (bumped whenever a service whose
// capability closure covers the concept joins, changes or leaves),
// followed by the shared ontology's mutation version when one is
// attached — together, the exact staleness signal for anything derived
// from a Candidates lookup on those concepts. A never-published
// capability reports epoch 0; the first publish moves it. The snapshot
// takes only the shard locks the concepts hash to — each touched shard's
// read lock exactly once — never a store-global lock. Pass a reused
// slice to avoid allocation.
func (r *Registry) CapabilityEpochs(dst []uint64, concepts ...semantics.ConceptID) []uint64 {
	return r.store.capabilityEpochs(r.tenant, dst, concepts...)
}

// SetIndexing enables or disables the capability index store-wide
// (enabled by default); disabling drops the index and reverts Candidates
// to the full-scan path. It exists as an ablation/benchmark knob and as
// a safety valve.
func (r *Registry) SetIndexing(enabled bool) { r.store.SetIndexing(enabled) }

// Metrics returns a snapshot of the store-wide lookup counters.
func (r *Registry) Metrics() Metrics { return r.store.Metrics() }

// Ontology returns the registry's shared ontology (may be nil).
func (r *Registry) Ontology() *semantics.Ontology { return r.store.Ontology() }

// Publish validates and stores a description for this tenant, replacing
// any previous version, and notifies the tenant's watchers.
func (r *Registry) Publish(d Description) error {
	return r.store.publish(r.tenant, d)
}

// Withdraw removes a service of this tenant and notifies watchers; it
// reports whether the service was present.
func (r *Registry) Withdraw(id ServiceID) bool {
	return r.store.withdraw(r.tenant, id)
}

// Get returns a copy of the description for id.
func (r *Registry) Get(id ServiceID) (Description, bool) {
	return r.store.get(r.tenant, id)
}

// Len returns the number of services this tenant has published.
func (r *Registry) Len() int {
	return int(r.store.tenantCount(r.tenant).Load())
}

// All returns copies of every description of this tenant, sorted by ID.
func (r *Registry) All() []Description {
	out := r.store.all(r.tenant)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Candidates resolves the tenant's services able to provide the required
// capability, with their QoS vectors aligned to ps. Services whose
// capability fails to match (subsume matches are excluded: a more
// general service does not guarantee the required function) or whose
// offers cannot cover ps are skipped. Results are sorted by match level
// then ID.
//
// With indexing enabled (the default) the lookup reads exactly one index
// entry in the shard the required concept hashes to; the full scan
// remains as the fallback path.
func (r *Registry) Candidates(required semantics.ConceptID, ps *qos.PropertySet) []Candidate {
	return r.store.candidates(r.tenant, required, ps)
}

// CandidatesForActivity resolves candidates for an abstract activity,
// additionally enforcing data compatibility when both sides declare it:
// every input the service requires must be provided by the activity, and
// every output the activity expects must be produced by the service.
func (r *Registry) CandidatesForActivity(a *task.Activity, ps *qos.PropertySet) []Candidate {
	base := r.Candidates(a.Concept, ps)
	out := base[:0]
	for _, c := range base {
		if r.dataCompatible(a, &c.Service) {
			out = append(out, c)
		}
	}
	return out
}

func (r *Registry) dataCompatible(a *task.Activity, d *Description) bool {
	for _, in := range d.Inputs {
		if len(a.Inputs) == 0 {
			break // activity declares nothing: do not constrain
		}
		if !r.conceptCovered(in, a.Inputs) {
			return false
		}
	}
	for _, want := range a.Outputs {
		if len(d.Outputs) == 0 {
			return false
		}
		if !r.conceptCovered(want, d.Outputs) {
			return false
		}
	}
	return true
}

func (r *Registry) conceptCovered(required semantics.ConceptID, available []semantics.ConceptID) bool {
	for _, offered := range available {
		if r.store.matchCapability(required, offered).Satisfies() {
			return true
		}
	}
	return false
}

// Watch subscribes to this tenant's registry change events. The returned
// cancel function unsubscribes and closes the channel. Events are
// delivered best-effort: when the subscriber's buffer is full the event
// is dropped rather than blocking publishers. Each event carries the
// tenant and home shard of the changed service, and every watcher gets
// its own deep copy.
func (r *Registry) Watch(buffer int) (<-chan Event, func()) {
	return r.store.watch(r.tenant, buffer)
}
