// Package registry implements QASOM's semantic service registry: the
// directory where providers in the pervasive environment publish
// QoS-annotated service descriptions and where the composition framework
// resolves abstract activities to candidate services. Matching is
// semantic (capability concepts via the shared ontology, with alias
// resolution for heterogeneous QoS vocabularies) and QoS offers are
// converted into vectors aligned to the requester's property set.
package registry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"qasom/internal/qos"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

// ServiceID identifies a published service.
type ServiceID string

// DeviceID identifies the hosting device.
type DeviceID string

// QoSOffer is one advertised QoS statement, expressed in the provider's
// own vocabulary and unit.
type QoSOffer struct {
	// Property is the provider's name for the QoS property; it may be a
	// canonical concept or any alias the shared ontology knows.
	Property semantics.ConceptID
	// Value is the advertised value in Unit.
	Value float64
	// Unit is the unit of Value; the zero Unit means the canonical unit.
	Unit qos.Unit
}

// Description is a published service description.
type Description struct {
	// ID uniquely identifies the service in the registry.
	ID ServiceID
	// Name is a human-readable label.
	Name string
	// Concept is the functional capability the service offers.
	Concept semantics.ConceptID
	// Inputs and Outputs are the data concepts consumed and produced.
	Inputs  []semantics.ConceptID
	Outputs []semantics.ConceptID
	// Provider is the hosting device.
	Provider DeviceID
	// Address is the invocation endpoint (transport-specific).
	Address string
	// Offers are the advertised QoS statements.
	Offers []QoSOffer
}

// Validate reports whether the description can be published.
func (d *Description) Validate() error {
	switch {
	case d == nil:
		return fmt.Errorf("registry: nil description")
	case d.ID == "":
		return fmt.Errorf("registry: service without ID")
	case d.Concept == "":
		return fmt.Errorf("registry: service %q without capability concept", d.ID)
	}
	return nil
}

// OfferFor returns the advertised value for the given canonical property,
// resolving vocabulary heterogeneity through the ontology and converting
// units. The bool reports whether a usable offer exists.
func (d *Description) OfferFor(p *qos.Property, o *semantics.Ontology) (float64, bool) {
	for _, offer := range d.Offers {
		name := offer.Property
		if o != nil {
			name = o.Canonical(name)
		}
		matched := name == p.Concept
		if !matched && o != nil {
			matched = o.Match(p.Concept, name) == semantics.MatchPlugin
		}
		if !matched {
			continue
		}
		unit := offer.Unit
		if unit.Factor == 0 {
			unit = p.Unit
		}
		v, err := qos.Convert(offer.Value, unit, p.Unit)
		if err != nil {
			continue
		}
		return v, true
	}
	return 0, false
}

// VectorFor resolves the full advertised QoS vector aligned to the
// property set. It fails when any property lacks a usable offer.
func (d *Description) VectorFor(ps *qos.PropertySet, o *semantics.Ontology) (qos.Vector, error) {
	out := ps.NewVector()
	for j := 0; j < ps.Len(); j++ {
		v, ok := d.OfferFor(ps.At(j), o)
		if !ok {
			return nil, fmt.Errorf("registry: service %q offers no %q", d.ID, ps.At(j).Name)
		}
		out[j] = v
	}
	return out, nil
}

// clone deep-copies the description so registry internals never alias
// caller slices.
func (d Description) clone() Description {
	d.Inputs = append([]semantics.ConceptID(nil), d.Inputs...)
	d.Outputs = append([]semantics.ConceptID(nil), d.Outputs...)
	d.Offers = append([]QoSOffer(nil), d.Offers...)
	return d
}

// Candidate is a service resolved for an abstract activity: the
// description, its QoS vector aligned to the request's properties, and
// the semantic match level of its capability.
type Candidate struct {
	Service Description
	Vector  qos.Vector
	Match   semantics.MatchLevel
}

// Clone deep-copies the candidate so the copy shares no slices with the
// original (selection results cached across requests must never alias a
// caller's live composition).
func (c Candidate) Clone() Candidate {
	c.Service = c.Service.clone()
	c.Vector = c.Vector.Clone()
	return c
}

// EventKind tags registry change notifications.
type EventKind int

// Event kinds.
const (
	// EventPublished fires when a service joins or is updated.
	EventPublished EventKind = iota + 1
	// EventWithdrawn fires when a service leaves.
	EventWithdrawn
)

// Event is a registry change notification.
type Event struct {
	Kind    EventKind
	Service Description
}

// Metrics reports how the registry served capability lookups: how many
// went through the concept index versus a full scan, and how often the
// index had to be rebuilt because the shared ontology mutated.
type Metrics struct {
	// IndexedLookups counts Candidates calls answered from the
	// capability index.
	IndexedLookups uint64
	// ScanLookups counts Candidates calls that walked every description.
	ScanLookups uint64
	// IndexRebuilds counts full index (re)builds (initial build included).
	IndexRebuilds uint64
}

// Registry is the concurrent service directory. Create instances with
// New.
type Registry struct {
	mu       sync.RWMutex
	services map[ServiceID]Description
	ontology *semantics.Ontology
	watchers map[int]chan Event
	nextW    int

	// Capability index: required canonical concept → services whose
	// capability matches it exactly or as a plugin (specialisation). A
	// service with concept C is filed under C and every ancestor of C —
	// the precomputed subsumption closure — so a lookup touches only
	// matching descriptions instead of all of them. Built lazily,
	// maintained incrementally on Publish/Withdraw, and rebuilt when the
	// ontology's version moves (concept/alias mutations change ancestry).
	indexing     bool
	index        map[semantics.ConceptID]map[ServiceID]struct{}
	indexKeys    map[ServiceID][]semantics.ConceptID
	indexVersion uint64
	metrics      Metrics

	// gen is the global registry generation: bumped on every Publish and
	// Withdraw (including QoS-only re-publishes). Readers poll it with a
	// single atomic load to detect "something, somewhere changed" without
	// taking the registry lock.
	gen atomic.Uint64
	// capEpochs holds one generation counter per canonical capability
	// concept, bumped whenever a service whose capability closure covers
	// that concept is published, updated or withdrawn. A request that
	// depends on capabilities {C...} is provably unaffected by registry
	// churn while every epoch in its snapshot is unchanged — the
	// invalidation signal of the cross-request selection cache.
	capEpochs map[semantics.ConceptID]uint64
}

// New creates a registry bound to the shared ontology (nil restricts
// matching to exact concept equality).
func New(o *semantics.Ontology) *Registry {
	return &Registry{
		services:  make(map[ServiceID]Description),
		ontology:  o,
		watchers:  make(map[int]chan Event),
		indexing:  true,
		capEpochs: make(map[semantics.ConceptID]uint64),
	}
}

// Epoch returns the registry's global generation: a counter bumped on
// every Publish/Withdraw. It is a single atomic load — callers poll it
// to detect "nothing changed since my snapshot" without locking.
func (r *Registry) Epoch() uint64 { return r.gen.Load() }

// CapabilityEpochs appends to dst the current epoch of each required
// capability concept (bumped whenever a service whose capability closure
// covers the concept joins, changes or leaves), followed by the shared
// ontology's mutation version when one is attached — together, the exact
// staleness signal for anything derived from a Candidates lookup on
// those concepts. A never-published capability reports epoch 0; the
// first publish moves it. Pass a reused slice to avoid allocation.
func (r *Registry) CapabilityEpochs(dst []uint64, concepts ...semantics.ConceptID) []uint64 {
	if dst != nil {
		dst = dst[:0]
	}
	r.mu.RLock()
	for _, c := range concepts {
		if r.ontology != nil {
			c = r.ontology.Canonical(c)
		}
		dst = append(dst, r.capEpochs[c])
	}
	r.mu.RUnlock()
	if r.ontology != nil {
		dst = append(dst, r.ontology.Version())
	}
	return dst
}

// bumpEpochsLocked advances the global generation and the per-capability
// epoch of every concept in keys; callers hold the write lock.
func (r *Registry) bumpEpochsLocked(keys []semantics.ConceptID) {
	r.gen.Add(1)
	for _, k := range keys {
		r.capEpochs[k]++
	}
}

// epochKeysLocked returns the capability closure a stored description's
// epochs must be bumped under: the index keys when the index holds them
// (they reflect the ancestry the description was filed under), otherwise
// a fresh computation against the current ontology.
func (r *Registry) epochKeysLocked(d *Description) []semantics.ConceptID {
	if keys, ok := r.indexKeys[d.ID]; ok {
		return keys
	}
	return r.indexKeysFor(d)
}

// SetIndexing enables or disables the capability index (enabled by
// default); disabling drops the index and reverts Candidates to the
// full-scan path. It exists as an ablation/benchmark knob and as a
// safety valve.
func (r *Registry) SetIndexing(enabled bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.indexing = enabled
	if !enabled {
		r.index = nil
		r.indexKeys = nil
	}
}

// Metrics returns a snapshot of the lookup counters.
func (r *Registry) Metrics() Metrics {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.metrics
}

// indexKeysFor computes the concepts a service description must be filed
// under: its canonical capability plus every (transitive) ancestor — any
// required concept in that set matches the service exactly or plugin.
func (r *Registry) indexKeysFor(d *Description) []semantics.ConceptID {
	if r.ontology == nil {
		return []semantics.ConceptID{d.Concept}
	}
	canon := r.ontology.Canonical(d.Concept)
	anc := r.ontology.Ancestors(canon)
	keys := make([]semantics.ConceptID, 0, 1+len(anc))
	keys = append(keys, canon)
	keys = append(keys, anc...)
	return keys
}

// ensureIndexLocked (re)builds the capability index when missing or when
// the ontology mutated since the last build; callers hold the write lock.
func (r *Registry) ensureIndexLocked() {
	version := uint64(0)
	if r.ontology != nil {
		version = r.ontology.Version()
	}
	if r.index != nil && r.indexVersion == version {
		return
	}
	r.index = make(map[semantics.ConceptID]map[ServiceID]struct{}, len(r.services))
	r.indexKeys = make(map[ServiceID][]semantics.ConceptID, len(r.services))
	for id := range r.services {
		d := r.services[id]
		r.indexServiceLocked(&d)
	}
	r.indexVersion = version
	r.metrics.IndexRebuilds++
}

// indexServiceLocked files one service under its capability closure;
// no-op until the index has been built (it is built lazily on first
// lookup). Callers hold the write lock.
func (r *Registry) indexServiceLocked(d *Description) {
	if r.index == nil {
		return
	}
	keys := r.indexKeysFor(d)
	r.indexKeys[d.ID] = keys
	for _, k := range keys {
		set, ok := r.index[k]
		if !ok {
			set = make(map[ServiceID]struct{})
			r.index[k] = set
		}
		set[d.ID] = struct{}{}
	}
}

// unindexServiceLocked removes a service from the index; callers hold
// the write lock.
func (r *Registry) unindexServiceLocked(id ServiceID) {
	if r.index == nil {
		return
	}
	for _, k := range r.indexKeys[id] {
		if set, ok := r.index[k]; ok {
			delete(set, id)
			if len(set) == 0 {
				delete(r.index, k)
			}
		}
	}
	delete(r.indexKeys, id)
}

// Ontology returns the registry's shared ontology (may be nil).
func (r *Registry) Ontology() *semantics.Ontology { return r.ontology }

// Publish validates and stores a description, replacing any previous
// version, and notifies watchers.
func (r *Registry) Publish(d Description) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cp := d.clone()
	r.mu.Lock()
	if old, ok := r.services[cp.ID]; ok {
		// Re-publish may change the capability: the old closure's view of
		// the registry goes stale too.
		r.bumpEpochsLocked(r.epochKeysLocked(&old))
		r.unindexServiceLocked(cp.ID)
	}
	r.services[cp.ID] = cp
	r.indexServiceLocked(&cp)
	r.bumpEpochsLocked(r.indexKeysFor(&cp))
	r.mu.Unlock()
	r.notify(Event{Kind: EventPublished, Service: cp})
	return nil
}

// Withdraw removes a service and notifies watchers; it reports whether
// the service was present.
func (r *Registry) Withdraw(id ServiceID) bool {
	r.mu.Lock()
	d, ok := r.services[id]
	if ok {
		r.bumpEpochsLocked(r.epochKeysLocked(&d))
		delete(r.services, id)
		r.unindexServiceLocked(id)
	}
	r.mu.Unlock()
	if ok {
		r.notify(Event{Kind: EventWithdrawn, Service: d})
	}
	return ok
}

// Get returns a copy of the description for id.
func (r *Registry) Get(id ServiceID) (Description, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.services[id]
	if !ok {
		return Description{}, false
	}
	return d.clone(), true
}

// Len returns the number of published services.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.services)
}

// All returns copies of every description, sorted by ID.
func (r *Registry) All() []Description {
	r.mu.RLock()
	out := make([]Description, 0, len(r.services))
	for _, d := range r.services {
		out = append(out, d.clone())
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Candidates resolves the services able to provide the required
// capability, with their QoS vectors aligned to ps. Services whose
// capability fails to match (subsume matches are excluded: a more
// general service does not guarantee the required function) or whose
// offers cannot cover ps are skipped. Results are sorted by match level
// then ID.
//
// With indexing enabled (the default) the lookup walks only the
// descriptions filed under the required concept's index entry; the full
// scan remains as the fallback path.
func (r *Registry) Candidates(required semantics.ConceptID, ps *qos.PropertySet) []Candidate {
	var services []Description
	if r.ontology != nil {
		required = r.ontology.Canonical(required)
	}
	r.mu.Lock()
	if r.indexing {
		r.ensureIndexLocked()
		r.metrics.IndexedLookups++
		ids := r.index[required]
		services = make([]Description, 0, len(ids))
		for id := range ids {
			services = append(services, r.services[id])
		}
	} else {
		r.metrics.ScanLookups++
		services = make([]Description, 0, len(r.services))
		for _, d := range r.services {
			services = append(services, d)
		}
	}
	r.mu.Unlock()

	out := make([]Candidate, 0, len(services))
	for _, d := range services {
		level := r.matchCapability(required, d.Concept)
		if level != semantics.MatchExact && level != semantics.MatchPlugin {
			continue
		}
		vec, err := d.VectorFor(ps, r.ontology)
		if err != nil {
			continue
		}
		out = append(out, Candidate{Service: d.clone(), Vector: vec, Match: level})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Match != out[j].Match {
			return out[i].Match.Beats(out[j].Match)
		}
		return out[i].Service.ID < out[j].Service.ID
	})
	return out
}

// CandidatesForActivity resolves candidates for an abstract activity,
// additionally enforcing data compatibility when both sides declare it:
// every input the service requires must be provided by the activity, and
// every output the activity expects must be produced by the service.
func (r *Registry) CandidatesForActivity(a *task.Activity, ps *qos.PropertySet) []Candidate {
	base := r.Candidates(a.Concept, ps)
	out := base[:0]
	for _, c := range base {
		if r.dataCompatible(a, &c.Service) {
			out = append(out, c)
		}
	}
	return out
}

func (r *Registry) dataCompatible(a *task.Activity, d *Description) bool {
	for _, in := range d.Inputs {
		if len(a.Inputs) == 0 {
			break // activity declares nothing: do not constrain
		}
		if !r.conceptCovered(in, a.Inputs) {
			return false
		}
	}
	for _, want := range a.Outputs {
		if len(d.Outputs) == 0 {
			return false
		}
		if !r.conceptCovered(want, d.Outputs) {
			return false
		}
	}
	return true
}

func (r *Registry) conceptCovered(required semantics.ConceptID, available []semantics.ConceptID) bool {
	for _, offered := range available {
		if r.matchCapability(required, offered).Satisfies() {
			return true
		}
	}
	return false
}

func (r *Registry) matchCapability(required, offered semantics.ConceptID) semantics.MatchLevel {
	if r.ontology == nil {
		if required == offered {
			return semantics.MatchExact
		}
		return semantics.MatchFail
	}
	return r.ontology.Match(required, offered)
}

// Watch subscribes to registry change events. The returned cancel
// function unsubscribes and closes the channel. Events are delivered
// best-effort: when the subscriber's buffer is full the event is dropped
// rather than blocking publishers.
func (r *Registry) Watch(buffer int) (<-chan Event, func()) {
	if buffer <= 0 {
		buffer = 16
	}
	ch := make(chan Event, buffer)
	r.mu.Lock()
	id := r.nextW
	r.nextW++
	r.watchers[id] = ch
	r.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			r.mu.Lock()
			delete(r.watchers, id)
			r.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

func (r *Registry) notify(e Event) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, ch := range r.watchers {
		// Each watcher gets its own deep copy: a subscriber mutating the
		// event (or holding it across further publishes) must never alias
		// registry-internal state or another watcher's view.
		ev := Event{Kind: e.Kind, Service: e.Service.clone()}
		select {
		case ch <- ev:
		default: // drop rather than block
		}
	}
}
