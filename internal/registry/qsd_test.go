package registry

import (
	"strings"
	"testing"

	"qasom/internal/qos"
	"qasom/internal/semantics"
)

const sampleQSD = `<?xml version="1.0"?>
<service id="bookshop-1" name="Books4U" capability="BookSale" provider="dev-7" address="tcp://10.0.0.7:9000">
  <inputs>ItemList</inputs>
  <outputs>OrderRecord, Receipt</outputs>
  <qos property="Delay" value="0.08" unit="s"/>
  <qos property="Fee" value="600" unit="ct"/>
  <qos property="Uptime" value="97" unit="%"/>
  <qos property="SuccessRate" value="0.93" unit="ratio"/>
  <qos property="Rate" value="45" unit="req/s"/>
</service>`

func TestParseQSD(t *testing.T) {
	d, err := ParseQSD([]byte(sampleQSD))
	if err != nil {
		t.Fatalf("ParseQSD: %v", err)
	}
	if d.ID != "bookshop-1" || d.Name != "Books4U" || d.Concept != semantics.BookSale {
		t.Errorf("header = %+v", d)
	}
	if d.Provider != "dev-7" || d.Address != "tcp://10.0.0.7:9000" {
		t.Errorf("provider/address = %q %q", d.Provider, d.Address)
	}
	if len(d.Inputs) != 1 || d.Inputs[0] != semantics.ItemList {
		t.Errorf("inputs = %v", d.Inputs)
	}
	if len(d.Outputs) != 2 || d.Outputs[1] != semantics.Receipt {
		t.Errorf("outputs = %v", d.Outputs)
	}
	// Units and vocabulary resolve through the shared model.
	vec, err := d.VectorFor(qos.StandardSet(), semantics.PervasiveWithScenarios())
	if err != nil {
		t.Fatalf("VectorFor: %v", err)
	}
	want := qos.Vector{80, 6, 0.97, 0.93, 45}
	if !vec.Equal(want, 1e-9) {
		t.Errorf("vector = %v, want %v", vec, want)
	}
}

func TestParseQSDErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"malformed", "<service"},
		{"no id", `<service capability="BookSale"/>`},
		{"no capability", `<service id="x"/>`},
		{"bad unit", `<service id="x" capability="BookSale"><qos property="Delay" value="1" unit="parsec"/></service>`},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseQSD([]byte(tt.doc)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestQSDRoundTrip(t *testing.T) {
	orig, err := ParseQSD([]byte(sampleQSD))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := MarshalQSD(orig)
	if err != nil {
		t.Fatalf("MarshalQSD: %v", err)
	}
	back, err := ParseQSD(doc)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, doc)
	}
	if back.ID != orig.ID || back.Concept != orig.Concept || len(back.Offers) != len(orig.Offers) {
		t.Errorf("round trip changed description:\n%+v\nvs\n%+v", orig, back)
	}
	// Vectors resolve identically after the round trip.
	ps := qos.StandardSet()
	onto := semantics.PervasiveWithScenarios()
	v1, err := orig.VectorFor(ps, onto)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := back.VectorFor(ps, onto)
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Equal(v2, 1e-9) {
		t.Errorf("vectors differ after round trip: %v vs %v", v1, v2)
	}
}

func TestMarshalQSDValidation(t *testing.T) {
	if _, err := MarshalQSD(Description{}); err == nil {
		t.Error("invalid description should fail")
	}
}

func TestPublishQSD(t *testing.T) {
	r := newTestRegistry()
	id, err := r.PublishQSD([]byte(sampleQSD))
	if err != nil {
		t.Fatalf("PublishQSD: %v", err)
	}
	if id != "bookshop-1" || r.Len() != 1 {
		t.Errorf("id %q len %d", id, r.Len())
	}
	got := r.Candidates(semantics.BookSale, qos.StandardSet())
	if len(got) != 1 {
		t.Fatalf("published QSD should resolve: %d candidates", len(got))
	}
	if _, err := r.PublishQSD([]byte("<junk")); err == nil {
		t.Error("malformed QSD should fail")
	}
}

func TestMarshalQSDDocumentShape(t *testing.T) {
	d := Description{
		ID: "s1", Concept: semantics.CDSale,
		Offers: []QoSOffer{{Property: semantics.ResponseTime, Value: 50}},
	}
	doc, err := MarshalQSD(d)
	if err != nil {
		t.Fatal(err)
	}
	s := string(doc)
	for _, want := range []string{`id="s1"`, `capability="CDSale"`, `property="ResponseTime"`, `value="50"`} {
		if !strings.Contains(s, want) {
			t.Errorf("document missing %q:\n%s", want, s)
		}
	}
}
