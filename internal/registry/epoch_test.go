package registry

import (
	"testing"

	"qasom/internal/qos"
	"qasom/internal/semantics"
)

// TestEpochBumpsOnMutation checks the global generation and the
// per-capability epochs move on every Publish/Withdraw (including
// QoS-only re-publishes) and stay still otherwise.
func TestEpochBumpsOnMutation(t *testing.T) {
	r := newTestRegistry()
	if r.Epoch() != 0 {
		t.Fatalf("fresh registry epoch = %d, want 0", r.Epoch())
	}
	before := r.CapabilityEpochs(nil, semantics.BookSale)

	if err := r.Publish(bookService("b1", 40)); err != nil {
		t.Fatal(err)
	}
	if r.Epoch() == 0 {
		t.Error("Publish did not bump the global epoch")
	}
	after := r.CapabilityEpochs(nil, semantics.BookSale)
	if after[0] == before[0] {
		t.Error("Publish did not bump the BookSale capability epoch")
	}

	// QoS-only update (same ID, same capability) must bump too: cached
	// selections over the old vector are stale.
	gen := r.Epoch()
	cap0 := after[0]
	if err := r.Publish(bookService("b1", 55)); err != nil {
		t.Fatal(err)
	}
	if r.Epoch() == gen {
		t.Error("re-publish did not bump the global epoch")
	}
	if e := r.CapabilityEpochs(nil, semantics.BookSale); e[0] == cap0 {
		t.Error("re-publish did not bump the capability epoch")
	}

	// Withdraw bumps; withdrawing an absent service does not.
	gen = r.Epoch()
	if !r.Withdraw("b1") {
		t.Fatal("withdraw failed")
	}
	if r.Epoch() == gen {
		t.Error("Withdraw did not bump the global epoch")
	}
	gen = r.Epoch()
	if r.Withdraw("b1") {
		t.Fatal("second withdraw should report absence")
	}
	if r.Epoch() != gen {
		t.Error("no-op Withdraw bumped the global epoch")
	}
}

// TestEpochCoversCapabilityClosure: publishing a CDSale service must
// move the epoch of every ancestor capability (MediaSale, Shopping) —
// a request asking for the general concept sees the new candidate — but
// leave unrelated capabilities untouched.
func TestEpochCoversCapabilityClosure(t *testing.T) {
	r := newTestRegistry()
	before := r.CapabilityEpochs(nil,
		semantics.CDSale, semantics.MediaSale, semantics.ShoppingService, semantics.CardPayment)
	cd := Description{ID: "cd1", Concept: semantics.CDSale, Offers: stdOffers(80, 5, 0.9, 0.9, 40)}
	if err := r.Publish(cd); err != nil {
		t.Fatal(err)
	}
	after := r.CapabilityEpochs(nil,
		semantics.CDSale, semantics.MediaSale, semantics.ShoppingService, semantics.CardPayment)
	for i, name := range []string{"CDSale", "MediaSale", "Shopping"} {
		if after[i] == before[i] {
			t.Errorf("%s epoch unchanged by a CDSale publish", name)
		}
	}
	if after[3] != before[3] {
		t.Error("CardPayment epoch moved on an unrelated publish")
	}
}

// TestEpochOntologyVersionAppended: CapabilityEpochs appends the
// ontology version, so concept-hierarchy mutations invalidate epoch
// snapshots even without registry churn.
func TestEpochOntologyVersionAppended(t *testing.T) {
	onto := semantics.PervasiveWithScenarios()
	r := New(onto)
	s1 := r.CapabilityEpochs(nil, semantics.BookSale)
	if len(s1) != 2 {
		t.Fatalf("snapshot length %d, want 2 (capability + ontology version)", len(s1))
	}
	if err := onto.AddConcept("EpochTestConcept", semantics.ShoppingService); err != nil {
		t.Fatal(err)
	}
	s2 := r.CapabilityEpochs(nil, semantics.BookSale)
	if s2[1] == s1[1] {
		t.Error("ontology mutation did not move the appended version component")
	}
}

// TestEpochRepublishAcrossCapabilities: moving a service to a different
// capability must stale both the old and the new capability's epoch.
func TestEpochRepublishAcrossCapabilities(t *testing.T) {
	r := newTestRegistry()
	if err := r.Publish(bookService("s1", 40)); err != nil {
		t.Fatal(err)
	}
	// Build the index so the stored index keys (old ancestry) are in play.
	ps := qos.StandardSet()
	if got := r.Candidates(semantics.BookSale, ps); len(got) != 1 {
		t.Fatalf("warm-up lookup returned %d candidates", len(got))
	}
	before := r.CapabilityEpochs(nil, semantics.BookSale, semantics.CardPayment)
	moved := Description{ID: "s1", Concept: semantics.CardPayment, Offers: stdOffers(30, 1, 0.99, 0.95, 10)}
	if err := r.Publish(moved); err != nil {
		t.Fatal(err)
	}
	after := r.CapabilityEpochs(nil, semantics.BookSale, semantics.CardPayment)
	if after[0] == before[0] {
		t.Error("old capability (BookSale) epoch unchanged after the service moved away")
	}
	if after[1] == before[1] {
		t.Error("new capability (CardPayment) epoch unchanged after the service moved in")
	}
}

// TestCandidateClone: the deep copy shares no mutable state.
func TestCandidateClone(t *testing.T) {
	r := newTestRegistry()
	if err := r.Publish(bookService("b1", 40)); err != nil {
		t.Fatal(err)
	}
	ps := qos.StandardSet()
	cands := r.Candidates(semantics.BookSale, ps)
	if len(cands) != 1 {
		t.Fatalf("got %d candidates", len(cands))
	}
	orig := cands[0]
	cp := orig.Clone()
	cp.Vector[0] = -1
	cp.Service.Offers[0].Value = -1
	if orig.Vector[0] == -1 || orig.Service.Offers[0].Value == -1 {
		t.Error("Clone aliases the original's slices")
	}
}
