package workload

import (
	"math"
	"testing"

	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

func TestLawSampleClipping(t *testing.T) {
	g := NewGenerator(1)
	l := Law{Mean: 0, Std: 100, Min: 5, Max: 10}
	for i := 0; i < 1000; i++ {
		v := l.Sample(g.Rand())
		if v < 5 || v > 10 {
			t.Fatalf("sample %g outside [5,10]", v)
		}
	}
}

func TestDefaultLaws(t *testing.T) {
	ps := qos.StandardSet()
	laws := DefaultLaws(ps)
	if len(laws) != ps.Len() {
		t.Fatalf("laws arity %d, want %d", len(laws), ps.Len())
	}
	jAvail, _ := ps.Index("availability")
	if laws[jAvail].Mean != 0.9 || laws[jAvail].Max != 0.9999 {
		t.Errorf("availability law = %+v", laws[jAvail])
	}
	jRT, _ := ps.Index("responseTime")
	if laws[jRT].Mean != 50 || laws[jRT].Std != 15 {
		t.Errorf("responseTime law = %+v", laws[jRT])
	}
}

func TestGeneratorReproducible(t *testing.T) {
	ps := qos.StandardSet()
	laws := DefaultLaws(ps)
	a := NewGenerator(42).Vector(ps, laws)
	b := NewGenerator(42).Vector(ps, laws)
	if !a.Equal(b, 0) {
		t.Error("same seed should give same vectors")
	}
	c := NewGenerator(43).Vector(ps, laws)
	if a.Equal(c, 1e-12) {
		t.Error("different seeds should differ")
	}
}

func TestNormalLawShape(t *testing.T) {
	// The generated values should empirically follow 𝒩(50, 15): the
	// sample mean within 1 and the sample std within 1.5 of the law.
	g := NewGenerator(7)
	l := Law{Mean: 50, Std: 15, Min: 0.001}
	n := 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := l.Sample(g.Rand())
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean-50) > 1 {
		t.Errorf("sample mean = %g, want ≈50", mean)
	}
	if math.Abs(std-15) > 1.5 {
		t.Errorf("sample std = %g, want ≈15", std)
	}
}

func TestServiceAndCandidates(t *testing.T) {
	ps := qos.StandardSet()
	laws := DefaultLaws(ps)
	g := NewGenerator(1)
	tk := g.Task("T", 4, ShapeLinear)
	cands := g.Candidates(tk, 10, ps, laws)
	if len(cands) != 4 {
		t.Fatalf("candidate map covers %d activities, want 4", len(cands))
	}
	for id, list := range cands {
		if len(list) != 10 {
			t.Errorf("activity %s has %d candidates, want 10", id, len(list))
		}
		for _, c := range list {
			if len(c.Vector) != ps.Len() {
				t.Fatalf("candidate vector arity %d", len(c.Vector))
			}
			jAvail, _ := ps.Index("availability")
			if c.Vector[jAvail] < 0.5 || c.Vector[jAvail] > 1 {
				t.Errorf("availability %g outside law clip", c.Vector[jAvail])
			}
		}
	}
}

func TestPopulate(t *testing.T) {
	ps := qos.StandardSet()
	laws := DefaultLaws(ps)
	g := NewGenerator(1)
	tk := g.Task("T", 3, ShapeLinear)
	r := registry.New(semantics.PervasiveWithScenarios())
	if err := g.Populate(r, tk, 5, ps, laws); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 15 {
		t.Errorf("registry has %d services, want 15", r.Len())
	}
	// Candidates resolvable per activity.
	for _, a := range tk.Activities() {
		got := r.Candidates(a.Concept, ps)
		if len(got) != 5 {
			t.Errorf("activity %s resolves %d candidates, want 5", a.ID, len(got))
		}
	}
}

func TestTaskShapes(t *testing.T) {
	g := NewGenerator(3)
	for _, tt := range []struct {
		shape TaskShape
		n     int
	}{
		{ShapeLinear, 10}, {ShapeMixed, 10}, {ShapeChoiceHeavy, 10},
		{ShapeLinear, 1}, {ShapeMixed, 1}, {ShapeChoiceHeavy, 3},
	} {
		tk := g.Task("X", tt.n, tt.shape)
		if err := tk.Validate(); err != nil {
			t.Errorf("shape %d n %d: invalid task: %v", tt.shape, tt.n, err)
		}
		if tk.Size() != tt.n {
			t.Errorf("shape %d: size %d, want %d", tt.shape, tk.Size(), tt.n)
		}
	}
	// Mixed shape should actually contain non-sequence patterns for
	// reasonably sized tasks.
	tk := g.Task("Y", 12, ShapeMixed)
	kinds := map[task.Pattern]bool{}
	tk.Walk(func(n *task.Node) { kinds[n.Kind] = true })
	if !kinds[task.PatternParallel] && !kinds[task.PatternChoice] && !kinds[task.PatternLoop] {
		t.Errorf("mixed task has no interesting patterns: %s", tk)
	}
	// Choice-heavy contains choices.
	tk = g.Task("Z", 8, ShapeChoiceHeavy)
	found := false
	tk.Walk(func(n *task.Node) {
		if n.Kind == task.PatternChoice {
			found = true
		}
	})
	if !found {
		t.Error("choice-heavy task has no choice")
	}
	// Zero clamps to one activity.
	if g.Task("W", 0, ShapeLinear).Size() != 1 {
		t.Error("n<1 should clamp to 1")
	}
}

func TestConstraints(t *testing.T) {
	ps := qos.StandardSet()
	laws := DefaultLaws(ps)
	g := NewGenerator(1)
	tk := g.Task("T", 5, ShapeLinear)

	tight := g.Constraints(tk, ps, laws, AtMean, 3)
	relaxed := g.Constraints(tk, ps, laws, AtMeanPlusSigma, 3)
	if len(tight) != 3 || len(relaxed) != 3 {
		t.Fatalf("constraint counts = %d, %d", len(tight), len(relaxed))
	}
	if err := tight.Validate(ps); err != nil {
		t.Fatalf("tight constraints invalid: %v", err)
	}
	// Linear 5-activity task: responseTime bound = 5·m = 250 tight,
	// 5·(m+σ) = 325 relaxed.
	if math.Abs(tight[0].Bound-250) > 1e-9 {
		t.Errorf("tight responseTime bound = %g, want 250", tight[0].Bound)
	}
	if math.Abs(relaxed[0].Bound-325) > 1e-9 {
		t.Errorf("relaxed responseTime bound = %g, want 325", relaxed[0].Bound)
	}
	// Availability (maximized, probability): tight bound = 0.9^5,
	// relaxed = (0.9−0.05)^5 — relaxed is lower, i.e. easier.
	jAvail, _ := ps.Index("availability")
	var tightA, relaxedA float64
	for _, c := range tight {
		if c.Property == "availability" {
			tightA = c.Bound
		}
	}
	for _, c := range relaxed {
		if c.Property == "availability" {
			relaxedA = c.Bound
		}
	}
	if math.Abs(tightA-math.Pow(0.9, 5)) > 1e-9 {
		t.Errorf("tight availability bound = %g, want %g", tightA, math.Pow(0.9, 5))
	}
	if relaxedA >= tightA {
		t.Errorf("relaxed availability bound %g should be below tight %g", relaxedA, tightA)
	}
	_ = jAvail
	// Count clamps to the property set size.
	all := g.Constraints(tk, ps, laws, AtMean, 99)
	if len(all) != ps.Len() {
		t.Errorf("clamped count = %d, want %d", len(all), ps.Len())
	}
}

func TestTightnessString(t *testing.T) {
	if AtMean.String() != "m" || AtMeanPlusSigma.String() != "m+sigma" {
		t.Error("tightness strings")
	}
	if Tightness(9).String() != "Tightness(9)" {
		t.Error("unknown tightness string")
	}
}

func TestHistogram(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	h, err := NewHistogram(values, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Min != 1 || h.Max != 10 {
		t.Errorf("bounds = (%g, %g)", h.Min, h.Max)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram loses values: %d", total)
	}
	// Density integrates to ≈1.
	integral := 0.0
	for i := range h.Counts {
		integral += h.Density(i) * h.Width
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Errorf("density integral = %g, want 1", integral)
	}
	if c := h.BinCenter(0); c <= h.Min || c >= h.Max {
		t.Errorf("BinCenter(0) = %g out of range", c)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	if _, err := NewHistogram(nil, 5); err == nil {
		t.Error("empty values should error")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("zero bins should error")
	}
	h, err := NewHistogram([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 {
		t.Errorf("degenerate histogram = %v", h.Counts)
	}
}

func TestHistogramMatchesNormalPDF(t *testing.T) {
	// Fig. VI.9: the empirical density of generated values should track
	// the normal pdf around the mean.
	g := NewGenerator(11)
	l := Law{Mean: 50, Std: 15, Min: 0.0001}
	values := make([]float64, 50000)
	for i := range values {
		values[i] = l.Sample(g.Rand())
	}
	h, err := NewHistogram(values, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Compare density vs pdf at bins near the mean.
	for i := range h.Counts {
		c := h.BinCenter(i)
		if c < 40 || c > 60 {
			continue
		}
		emp := h.Density(i)
		pdf := NormalPDF(50, 15, c)
		if math.Abs(emp-pdf) > 0.25*pdf {
			t.Errorf("bin %g: empirical %g vs pdf %g deviates >25%%", c, emp, pdf)
		}
	}
}

func TestNormalPDF(t *testing.T) {
	peak := NormalPDF(0, 1, 0)
	if math.Abs(peak-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Errorf("pdf peak = %g", peak)
	}
	if NormalPDF(0, 0, 0) != 0 {
		t.Error("zero sd should yield 0")
	}
	if NormalPDF(0, 1, 3) >= NormalPDF(0, 1, 0) {
		t.Error("pdf should decay away from mean")
	}
}
