// Package workload generates the synthetic populations of the thesis's
// evaluation (Chapter VI §3.1): services whose QoS values follow a normal
// law 𝒩(m, σ) per property (Fig. VI.9), user tasks of configurable size
// and pattern mix, and global constraint sets whose tightness is pinned
// to m or m±σ (Figs. VI.10/VI.11).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

// Law is the normal law a property's values are drawn from, clipped to
// [Min, Max].
type Law struct {
	Mean, Std float64
	Min, Max  float64
}

// Sample draws one clipped value.
func (l Law) Sample(rng *rand.Rand) float64 {
	v := rng.NormFloat64()*l.Std + l.Mean
	if v < l.Min {
		v = l.Min
	}
	if l.Max > 0 && v > l.Max {
		v = l.Max
	}
	return v
}

// DefaultLaws returns per-property laws matching the thesis's set-up:
// gauge-like properties follow 𝒩(50, 15) clipped positive; probability
// properties follow 𝒩(0.9, 0.05) clipped to [0.5, 0.9999].
func DefaultLaws(ps *qos.PropertySet) []Law {
	laws := make([]Law, ps.Len())
	for j := 0; j < ps.Len(); j++ {
		if ps.At(j).Kind == qos.KindProbability {
			laws[j] = Law{Mean: 0.9, Std: 0.05, Min: 0.5, Max: 0.9999}
		} else {
			laws[j] = Law{Mean: 50, Std: 15, Min: 1}
		}
	}
	return laws
}

// Generator produces reproducible synthetic workloads.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator creates a generator with a fixed seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Rand exposes the generator's random source (for callers composing
// further randomness deterministically).
func (g *Generator) Rand() *rand.Rand { return g.rng }

// Vector draws one QoS vector from the laws.
func (g *Generator) Vector(ps *qos.PropertySet, laws []Law) qos.Vector {
	v := ps.NewVector()
	for j := range v {
		v[j] = laws[j].Sample(g.rng)
	}
	return v
}

// Service builds one publishable service description for the given
// capability with QoS offers drawn from the laws.
func (g *Generator) Service(id string, capability semantics.ConceptID, ps *qos.PropertySet, laws []Law) registry.Description {
	vec := g.Vector(ps, laws)
	offers := make([]registry.QoSOffer, ps.Len())
	for j := 0; j < ps.Len(); j++ {
		offers[j] = registry.QoSOffer{Property: ps.At(j).Concept, Value: vec[j]}
	}
	return registry.Description{
		ID:      registry.ServiceID(id),
		Name:    id,
		Concept: capability,
		Offers:  offers,
	}
}

// Candidates generates, for each activity of the task, n candidate
// services with QoS drawn from the laws, keyed by activity ID. This is
// the direct input of the selection algorithms (bypassing the registry
// for the pure-algorithm benchmarks).
func (g *Generator) Candidates(t *task.Task, n int, ps *qos.PropertySet, laws []Law) map[string][]registry.Candidate {
	out := make(map[string][]registry.Candidate, t.Size())
	for _, a := range t.Activities() {
		list := make([]registry.Candidate, n)
		for k := 0; k < n; k++ {
			id := fmt.Sprintf("%s-s%d", a.ID, k)
			d := g.Service(id, a.Concept, ps, laws)
			vec, err := d.VectorFor(ps, nil)
			if err != nil {
				// Generated offers always align with ps; a failure here is
				// a programming error.
				panic(err)
			}
			list[k] = registry.Candidate{Service: d, Vector: vec, Match: semantics.MatchExact}
		}
		out[a.ID] = list
	}
	return out
}

// Populate publishes n services per task activity into the registry.
func (g *Generator) Populate(r *registry.Registry, t *task.Task, n int, ps *qos.PropertySet, laws []Law) error {
	for _, a := range t.Activities() {
		for k := 0; k < n; k++ {
			id := fmt.Sprintf("%s-s%d", a.ID, k)
			if err := r.Publish(g.Service(id, a.Concept, ps, laws)); err != nil {
				return err
			}
		}
	}
	return nil
}

// TaskShape selects the pattern structure of generated tasks.
type TaskShape int

// Task shapes.
const (
	// ShapeLinear is a pure sequence of activities.
	ShapeLinear TaskShape = iota + 1
	// ShapeMixed interleaves sequence, parallel, choice and loop patterns
	// (the default evaluation task).
	ShapeMixed
	// ShapeChoiceHeavy maximises choice branches (used by the
	// aggregation-approach experiments, Figs. VI.7/VI.8).
	ShapeChoiceHeavy
)

// Task generates a task of n activities with the given shape. Every
// activity gets a distinct capability concept so candidate sets are
// independent.
func (g *Generator) Task(name string, n int, shape TaskShape) *task.Task {
	if n < 1 {
		n = 1
	}
	acts := make([]*task.Node, n)
	for i := 0; i < n; i++ {
		acts[i] = task.NewActivity(&task.Activity{
			ID:      fmt.Sprintf("a%d", i+1),
			Concept: semantics.ConceptID(fmt.Sprintf("Cap%s%d", name, i+1)),
		})
	}
	var root *task.Node
	switch shape {
	case ShapeLinear:
		root = task.Sequence(acts...)
	case ShapeChoiceHeavy:
		root = g.choiceHeavy(acts)
	default:
		root = g.mixed(acts)
	}
	t := &task.Task{Name: name, Concept: semantics.ConceptID("Task" + name), Root: root}
	if len(acts) == 1 {
		t.Root = acts[0]
	}
	return t
}

// mixed groups activities into small runs combined by alternating
// patterns: seq(run1, par(run2), cho(run3), loop(run4), ...).
func (g *Generator) mixed(acts []*task.Node) *task.Node {
	if len(acts) == 1 {
		return acts[0]
	}
	var groups []*task.Node
	i := 0
	kind := 0
	for i < len(acts) {
		size := 1 + g.rng.Intn(3)
		if i+size > len(acts) {
			size = len(acts) - i
		}
		chunk := acts[i : i+size]
		i += size
		switch {
		case size == 1:
			groups = append(groups, chunk[0])
		case kind%3 == 0:
			groups = append(groups, task.Parallel(chunk...))
		case kind%3 == 1:
			probs := make([]float64, size)
			for j := range probs {
				probs[j] = 1 / float64(size)
			}
			groups = append(groups, task.Choice(probs, chunk...))
		default:
			groups = append(groups, task.LoopNode(qos.Loop{Min: 1, Max: 3, Expected: 2}, task.Sequence(chunk...)))
		}
		kind++
	}
	if len(groups) == 1 {
		return groups[0]
	}
	return task.Sequence(groups...)
}

// choiceHeavy pairs activities into two-branch choices chained in
// sequence.
func (g *Generator) choiceHeavy(acts []*task.Node) *task.Node {
	var groups []*task.Node
	for i := 0; i < len(acts); i += 2 {
		if i+1 < len(acts) {
			groups = append(groups, task.Choice([]float64{0.6, 0.4}, acts[i], acts[i+1]))
		} else {
			groups = append(groups, acts[i])
		}
	}
	if len(groups) == 1 {
		return groups[0]
	}
	return task.Sequence(groups...)
}

// Tightness pins where global constraint bounds sit relative to the
// candidate QoS law (Figs. VI.10/VI.11): AtMean is the tight setting
// (bounds at m), AtMeanPlusSigma the relaxed one (m+σ for minimized
// properties, m−σ for maximized ones).
type Tightness int

// Tightness settings.
const (
	AtMean Tightness = iota + 1
	AtMeanPlusSigma
)

// String names the tightness setting.
func (t Tightness) String() string {
	switch t {
	case AtMean:
		return "m"
	case AtMeanPlusSigma:
		return "m+sigma"
	default:
		return fmt.Sprintf("Tightness(%d)", int(t))
	}
}

// Constraints derives a global constraint set of the given size for the
// task: each bound is the task-level aggregate of per-activity values
// pinned at the law's mean (AtMean) or mean±σ (AtMeanPlusSigma),
// covering the first count properties of ps.
func (g *Generator) Constraints(t *task.Task, ps *qos.PropertySet, laws []Law, tight Tightness, count int) qos.Constraints {
	if count > ps.Len() {
		count = ps.Len()
	}
	ref := ps.NewVector()
	for j := 0; j < ps.Len(); j++ {
		v := laws[j].Mean
		if tight == AtMeanPlusSigma {
			if ps.At(j).Direction == qos.Minimized {
				v += laws[j].Std
			} else {
				v -= laws[j].Std
			}
		}
		if v < laws[j].Min {
			v = laws[j].Min
		}
		if laws[j].Max > 0 && v > laws[j].Max {
			v = laws[j].Max
		}
		ref[j] = v
	}
	assign := make(map[string]qos.Vector, t.Size())
	for _, a := range t.Activities() {
		assign[a.ID] = ref
	}
	agg := t.AggregateQoS(ps, assign, qos.MeanValue)
	out := make(qos.Constraints, 0, count)
	for j := 0; j < count; j++ {
		out = append(out, qos.Constraint{Property: ps.At(j).Name, Bound: agg[j]})
	}
	return out
}

// Histogram bins values into n equal-width bins over [min, max] observed
// in the data; it backs the Fig. VI.9 reproduction.
type Histogram struct {
	Min, Max float64
	Width    float64
	Counts   []int
	Total    int
}

// NewHistogram builds an n-bin histogram of the values.
func NewHistogram(values []float64, n int) (*Histogram, error) {
	if len(values) == 0 || n <= 0 {
		return nil, fmt.Errorf("workload: histogram needs values and positive bin count")
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	h := &Histogram{Min: lo, Max: hi, Counts: make([]int, n), Total: len(values)}
	if hi == lo {
		h.Width = 1
		h.Counts[0] = len(values)
		return h, nil
	}
	h.Width = (hi - lo) / float64(n)
	for _, v := range values {
		bin := int((v - lo) / h.Width)
		if bin >= n {
			bin = n - 1
		}
		h.Counts[bin]++
	}
	return h, nil
}

// Density returns the empirical probability density of bin i.
func (h *Histogram) Density(i int) float64 {
	return float64(h.Counts[i]) / (float64(h.Total) * h.Width)
}

// BinCenter returns the centre of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.Width
}

// NormalPDF evaluates the 𝒩(m, σ) density at x.
func NormalPDF(m, sd, x float64) float64 {
	if sd <= 0 {
		return 0
	}
	z := (x - m) / sd
	return math.Exp(-z*z/2) / (sd * math.Sqrt(2*math.Pi))
}
