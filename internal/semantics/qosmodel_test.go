package semantics

import "testing"

func TestCoreQoSStructure(t *testing.T) {
	o := CoreQoS()
	for _, c := range []ConceptID{QoSProperty, QoSMetric, QoSUnit, QoSValue, QoSDirection} {
		if !o.IsA(c, QoSConcept) {
			t.Errorf("%s should specialise %s", c, QoSConcept)
		}
	}
	if !o.IsA(UnitMillisecond, QoSUnit) {
		t.Error("Millisecond should be a QoSUnit")
	}
	if !o.IsA(MeasuredValue, QoSValue) {
		t.Error("MeasuredValue should be a QoSValue")
	}
}

func TestServiceQoSHierarchy(t *testing.T) {
	o := ServiceQoS()
	tests := []struct {
		sub, sup ConceptID
	}{
		{ResponseTime, Performance},
		{ExecutionTime, ResponseTime},
		{Availability, Dependability},
		{Price, Cost},
		{EncryptionLevel, Security},
		{MediaQuality, ContentQuality},
		{ResponseTime, QoSProperty},
		{Availability, ServiceQoSProperty},
	}
	for _, tt := range tests {
		if !o.IsA(tt.sub, tt.sup) {
			t.Errorf("%s should be a %s", tt.sub, tt.sup)
		}
	}
	if o.IsA(Price, Performance) {
		t.Error("Price must not be a Performance property")
	}
}

func TestServiceQoSAliases(t *testing.T) {
	o := ServiceQoS()
	aliases := map[ConceptID]ConceptID{
		"Delay":       ResponseTime,
		"Uptime":      Availability,
		"SuccessRate": Reliability,
		"Fee":         Price,
	}
	for alias, want := range aliases {
		if got := o.Canonical(alias); got != want {
			t.Errorf("Canonical(%s) = %s, want %s", alias, got, want)
		}
	}
	// Heterogeneous vocabularies match through aliases.
	if got := o.Match(ResponseTime, "Delay"); got != MatchExact {
		t.Errorf("Match(ResponseTime, Delay) = %v, want exact", got)
	}
}

func TestDirectionsRecorded(t *testing.T) {
	o := ServiceQoS()
	down := o.Objects(ResponseTime, PredHasDirection)
	if len(down) != 1 || down[0] != DirectionDownward {
		t.Errorf("ResponseTime direction = %v, want downward", down)
	}
	up := o.Objects(Availability, PredHasDirection)
	if len(up) != 1 || up[0] != DirectionUpward {
		t.Errorf("Availability direction = %v, want upward", up)
	}
}

func TestInfrastructureQoSHierarchy(t *testing.T) {
	o := InfrastructureQoS()
	for _, c := range []ConceptID{Bandwidth, NetworkLatency, PacketLoss, SignalStrength} {
		if !o.IsA(c, NetworkQoS) {
			t.Errorf("%s should be a NetworkQoS", c)
		}
	}
	for _, c := range []ConceptID{CPUSpeed, BatteryLife, MemoryCapacity} {
		if !o.IsA(c, DeviceQoS) {
			t.Errorf("%s should be a DeviceQoS", c)
		}
	}
	if !o.IsA(NetworkQoS, QoSProperty) {
		t.Error("NetworkQoS should be a QoSProperty")
	}
}

func TestUserQoSHierarchy(t *testing.T) {
	o := UserQoS()
	if !o.IsA(GlobalConstraint, QoSRequirement) {
		t.Error("GlobalConstraint should be a QoSRequirement")
	}
	if !o.IsA(TierSatisfied, PerceivedQoS) {
		t.Error("TierSatisfied should be a PerceivedQoS")
	}
}

func TestPervasiveEndToEnd(t *testing.T) {
	o := Pervasive()
	// All four sub-models are present.
	for _, c := range []ConceptID{ResponseTime, NetworkLatency, GlobalConstraint, QoSMetric} {
		if !o.Has(c) {
			t.Errorf("merged ontology missing %s", c)
		}
	}
	// End-to-end dependencies link service QoS to infrastructure QoS.
	deps := o.Objects(ResponseTime, PredDependsOn)
	if len(deps) == 0 {
		t.Fatal("ResponseTime should depend on infrastructure properties")
	}
	foundLatency := false
	for _, d := range deps {
		if d == NetworkLatency {
			foundLatency = true
		}
	}
	if !foundLatency {
		t.Errorf("ResponseTime dependencies %v should include NetworkLatency", deps)
	}
	// Service- and infrastructure-level properties share the QoSProperty root.
	if !o.IsA(NetworkLatency, QoSProperty) || !o.IsA(ResponseTime, QoSProperty) {
		t.Error("end-to-end model must unify service and infrastructure properties under QoSProperty")
	}
}

func TestScenariosOntology(t *testing.T) {
	o := Scenarios()
	tests := []struct {
		sub, sup ConceptID
	}{
		{BookSale, ShoppingService},
		{CDSale, MediaSale},
		{CardPayment, PaymentService},
		{Cardiology, DoctorDiagnosis},
		{AudioStreaming, MediaStreaming},
		{TopTenList, ChartList},
		{Prescription, DataConcept},
	}
	for _, tt := range tests {
		if !o.IsA(tt.sub, tt.sup) {
			t.Errorf("%s should be a %s", tt.sub, tt.sup)
		}
	}
	// A request for MediaSale is satisfied by a CDSale provider (plugin).
	if got := o.Match(MediaSale, CDSale); got != MatchPlugin {
		t.Errorf("Match(MediaSale, CDSale) = %v, want plugin", got)
	}
}

func TestPervasiveWithScenarios(t *testing.T) {
	o := PervasiveWithScenarios()
	if !o.Has(ResponseTime) || !o.Has(BookSale) {
		t.Fatal("combined ontology should contain QoS and functional concepts")
	}
	if got := o.Match(PaymentService, MobilePayment); got != MatchPlugin {
		t.Errorf("Match(Payment, MobilePayment) = %v, want plugin", got)
	}
	if got := o.Canonical("Checkout"); got != PaymentService {
		t.Errorf("Canonical(Checkout) = %s, want %s", got, PaymentService)
	}
}

func BenchmarkSubsumption(b *testing.B) {
	o := PervasiveWithScenarios()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !o.IsA(CDSale, ServiceCapability) {
			b.Fatal("unexpected subsumption result")
		}
	}
}

func BenchmarkMatch(b *testing.B) {
	o := PervasiveWithScenarios()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if o.Match(MediaSale, DVDSale) != MatchPlugin {
			b.Fatal("unexpected match result")
		}
	}
}
