package semantics

import (
	"sync"
	"testing"
)

func buildAnimals(t *testing.T) *Ontology {
	t.Helper()
	o := New("animals")
	o.MustAddConcept("Animal")
	o.MustAddConcept("Mammal", "Animal")
	o.MustAddConcept("Bird", "Animal")
	o.MustAddConcept("Dog", "Mammal")
	o.MustAddConcept("Cat", "Mammal")
	o.MustAddConcept("Sparrow", "Bird")
	o.MustAddAlias("Canine", "Dog")
	return o
}

func TestAddConceptValidation(t *testing.T) {
	o := New("t")
	if err := o.AddConcept(""); err == nil {
		t.Fatal("expected error for empty concept id")
	}
	if err := o.AddConcept("Child", "Missing"); err == nil {
		t.Fatal("expected error for unknown parent")
	}
	o.MustAddConcept("A")
	o.MustAddAlias("Alias", "A")
	if err := o.AddConcept("Alias"); err == nil {
		t.Fatal("expected error for concept clashing with alias")
	}
}

func TestAddConceptMergesParents(t *testing.T) {
	o := New("t")
	o.MustAddConcept("A")
	o.MustAddConcept("B")
	o.MustAddConcept("C", "A")
	o.MustAddConcept("C", "B")
	parents := o.Parents("C")
	if len(parents) != 2 || parents[0] != "A" || parents[1] != "B" {
		t.Fatalf("Parents(C) = %v, want [A B]", parents)
	}
}

func TestIsA(t *testing.T) {
	o := buildAnimals(t)
	tests := []struct {
		name     string
		sub, sup ConceptID
		want     bool
	}{
		{"identity", "Dog", "Dog", true},
		{"direct parent", "Dog", "Mammal", true},
		{"transitive", "Dog", "Animal", true},
		{"reverse", "Animal", "Dog", false},
		{"sibling", "Dog", "Cat", false},
		{"cross branch", "Dog", "Bird", false},
		{"alias sub", "Canine", "Mammal", true},
		{"alias identity", "Canine", "Dog", true},
		{"unknown identity", "Ghost", "Ghost", true},
		{"unknown other", "Ghost", "Animal", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := o.IsA(tt.sub, tt.sup); got != tt.want {
				t.Errorf("IsA(%q, %q) = %v, want %v", tt.sub, tt.sup, got, tt.want)
			}
		})
	}
}

func TestSubsumes(t *testing.T) {
	o := buildAnimals(t)
	if !o.Subsumes("Animal", "Sparrow") {
		t.Error("Animal should subsume Sparrow")
	}
	if o.Subsumes("Sparrow", "Animal") {
		t.Error("Sparrow should not subsume Animal")
	}
}

func TestMatchLevels(t *testing.T) {
	o := buildAnimals(t)
	tests := []struct {
		name              string
		required, offered ConceptID
		want              MatchLevel
	}{
		{"exact", "Dog", "Dog", MatchExact},
		{"exact via alias", "Dog", "Canine", MatchExact},
		{"plugin", "Mammal", "Dog", MatchPlugin},
		{"subsume", "Dog", "Mammal", MatchSubsume},
		{"fail", "Dog", "Sparrow", MatchFail},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := o.Match(tt.required, tt.offered); got != tt.want {
				t.Errorf("Match(%q, %q) = %v, want %v", tt.required, tt.offered, got, tt.want)
			}
		})
	}
}

func TestMatchLevelOrdering(t *testing.T) {
	if !MatchExact.Beats(MatchPlugin) || !MatchPlugin.Beats(MatchSubsume) || !MatchSubsume.Beats(MatchFail) {
		t.Error("match levels should be strictly ordered exact > plugin > subsume > fail")
	}
	if MatchFail.Satisfies() {
		t.Error("MatchFail should not satisfy")
	}
	if !MatchSubsume.Satisfies() {
		t.Error("MatchSubsume should satisfy")
	}
	var zero MatchLevel
	if zero.Satisfies() {
		t.Error("zero MatchLevel should not satisfy")
	}
}

func TestDistance(t *testing.T) {
	o := buildAnimals(t)
	tests := []struct {
		name   string
		a, b   ConceptID
		want   int
		wantOK bool
	}{
		{"identity", "Dog", "Dog", 0, true},
		{"parent", "Dog", "Mammal", 1, true},
		{"grandparent", "Dog", "Animal", 2, true},
		{"downward", "Animal", "Dog", 2, true},
		{"unrelated", "Dog", "Sparrow", 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := o.Distance(tt.a, tt.b)
			if got != tt.want || ok != tt.wantOK {
				t.Errorf("Distance(%q, %q) = (%d, %v), want (%d, %v)", tt.a, tt.b, got, ok, tt.want, tt.wantOK)
			}
		})
	}
}

func TestClosureInvalidation(t *testing.T) {
	o := buildAnimals(t)
	if o.IsA("Dog", "Pet") {
		t.Fatal("Dog should not be a Pet yet")
	}
	o.MustAddConcept("Pet", "Animal")
	o.MustAddConcept("Dog", "Pet") // merge parents
	if !o.IsA("Dog", "Pet") {
		t.Fatal("Dog should be a Pet after re-parenting")
	}
}

func TestAncestorsAndChildren(t *testing.T) {
	o := buildAnimals(t)
	anc := o.Ancestors("Dog")
	if len(anc) != 2 || anc[0] != "Animal" || anc[1] != "Mammal" {
		t.Errorf("Ancestors(Dog) = %v, want [Animal Mammal]", anc)
	}
	kids := o.Children("Mammal")
	if len(kids) != 2 || kids[0] != "Cat" || kids[1] != "Dog" {
		t.Errorf("Children(Mammal) = %v, want [Cat Dog]", kids)
	}
	if got := o.Ancestors("Ghost"); got != nil {
		t.Errorf("Ancestors(Ghost) = %v, want nil", got)
	}
}

func TestTriples(t *testing.T) {
	o := buildAnimals(t)
	o.AddTriple("Dog", "eats", "Cat")
	o.AddTriple("Canine", "eats", "Sparrow") // alias subject resolves to Dog
	got := o.Objects("Dog", "eats")
	if len(got) != 2 || got[0] != "Cat" || got[1] != "Sparrow" {
		t.Errorf("Objects(Dog, eats) = %v, want [Cat Sparrow]", got)
	}
	if got := o.Objects("Cat", "eats"); got != nil {
		t.Errorf("Objects(Cat, eats) = %v, want nil", got)
	}
}

func TestAliasValidation(t *testing.T) {
	o := buildAnimals(t)
	if err := o.AddAlias("Dog", "Cat"); err == nil {
		t.Error("alias clashing with concept should fail")
	}
	if err := o.AddAlias("X", "Missing"); err == nil {
		t.Error("alias to unknown concept should fail")
	}
	// Alias chains flatten to the canonical concept.
	o.MustAddAlias("Hound", "Canine")
	if got := o.Canonical("Hound"); got != "Dog" {
		t.Errorf("Canonical(Hound) = %q, want Dog", got)
	}
}

func TestMerge(t *testing.T) {
	dst := buildAnimals(t)
	src := New("plants")
	src.MustAddConcept("Plant")
	src.MustAddConcept("Tree", "Plant")
	src.MustAddConcept("Oak", "Tree")
	src.MustAddAlias("Quercus", "Oak")
	src.AddTriple("Oak", "grows", "Plant")
	if err := dst.Merge(src); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if !dst.IsA("Oak", "Plant") {
		t.Error("merged hierarchy lost: Oak should be a Plant")
	}
	if got := dst.Canonical("Quercus"); got != "Oak" {
		t.Errorf("merged alias lost: Canonical(Quercus) = %q", got)
	}
	if got := dst.Objects("Oak", "grows"); len(got) != 1 || got[0] != "Plant" {
		t.Errorf("merged triples lost: %v", got)
	}
	if !dst.IsA("Dog", "Animal") {
		t.Error("pre-existing hierarchy damaged by merge")
	}
	if err := dst.Merge(nil); err != nil {
		t.Errorf("Merge(nil) = %v, want nil", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	o := buildAnimals(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_ = o.IsA("Dog", "Animal")
				_ = o.Match("Mammal", "Cat")
				_ = o.Ancestors("Sparrow")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			o.MustAddConcept("Reptile", "Animal")
		}
	}()
	wg.Wait()
	if !o.IsA("Reptile", "Animal") {
		t.Error("concurrent mutation lost")
	}
}

func TestCacheStatsDeltaAndReset(t *testing.T) {
	o := buildAnimals(t)
	o.Match("Dog", "Animal") // miss
	o.Match("Dog", "Animal") // hit
	before := o.Stats()
	if before.MatchHits != 1 || before.MatchMisses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", before)
	}
	o.Match("Dog", "Animal")
	o.Match("Cat", "Animal")
	d := o.Stats().Delta(before)
	if d.MatchHits != 1 || d.MatchMisses != 1 {
		t.Errorf("delta = %+v, want 1 hit / 1 miss in the window", d)
	}
	o.ResetStats()
	if s := o.Stats(); s != (CacheStats{}) {
		t.Errorf("stats after reset = %+v", s)
	}
	// The memo tables survive the reset: the same query is now a hit.
	o.Match("Dog", "Animal")
	if s := o.Stats(); s.MatchHits != 1 || s.MatchMisses != 0 {
		t.Errorf("stats after reset+match = %+v, want a pure hit", s)
	}
}

func TestMatchLevelString(t *testing.T) {
	for level, want := range map[MatchLevel]string{
		MatchExact: "exact", MatchPlugin: "plugin", MatchSubsume: "subsume",
		MatchFail: "fail", MatchLevel(99): "MatchLevel(99)",
	} {
		if got := level.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(level), got, want)
		}
	}
}

// memoSizes reads the live memo-table sizes under the ontology lock
// (white-box helper for the cap tests).
func memoSizes(o *Ontology) (match, dist int) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.matchMemo), len(o.distMemo)
}

func TestMemoCapEvictsMatchEntries(t *testing.T) {
	o := buildAnimals(t)
	o.SetMemoCap(2)

	// Three distinct pairs through a cap of two: the third insert must
	// evict a resident entry.
	o.Match("Dog", "Animal")
	o.Match("Cat", "Animal")
	o.Match("Sparrow", "Animal")
	if m, _ := memoSizes(o); m > 2 {
		t.Fatalf("match memo holds %d entries, cap is 2", m)
	}
	if ev := o.Stats().MatchEvictions; ev != 1 {
		t.Fatalf("MatchEvictions = %d, want 1", ev)
	}

	// Eviction must never change answers: every pair still grades the
	// same, the evicted one simply recomputes (a miss, then possibly a
	// fresh eviction) instead of hitting.
	for _, pair := range [][2]ConceptID{
		{"Dog", "Animal"}, {"Cat", "Animal"}, {"Sparrow", "Animal"},
	} {
		if got := o.Match(pair[0], pair[1]); got != MatchSubsume {
			t.Errorf("Match(%s, %s) = %v after eviction, want subsume", pair[0], pair[1], got)
		}
	}
	if m, _ := memoSizes(o); m > 2 {
		t.Fatalf("match memo grew to %d entries past the cap", m)
	}

	// Re-querying a resident pair is still a hit — the cap does not turn
	// the memo off.
	before := o.Stats()
	o.Match("Sparrow", "Animal")
	if d := o.Stats().Delta(before); d.MatchHits != 1 {
		t.Errorf("resident pair after evictions: delta %+v, want a pure hit", d)
	}
}

func TestMemoCapEvictsDistanceEntries(t *testing.T) {
	o := buildAnimals(t)
	o.SetMemoCap(2)

	// Each Distance primes the symmetric key too, so one query fills the
	// whole table and the next must evict both residents.
	if d, ok := o.Distance("Dog", "Mammal"); !ok || d != 1 {
		t.Fatalf("Distance(Dog, Mammal) = %d, %v", d, ok)
	}
	if d, ok := o.Distance("Dog", "Animal"); !ok || d != 2 {
		t.Fatalf("Distance(Dog, Animal) = %d, %v", d, ok)
	}
	if _, n := memoSizes(o); n > 2 {
		t.Fatalf("distance memo holds %d entries, cap is 2", n)
	}
	if ev := o.Stats().DistanceEvictions; ev != 2 {
		t.Fatalf("DistanceEvictions = %d, want 2", ev)
	}
	// Answers survive eviction.
	if d, ok := o.Distance("Mammal", "Dog"); !ok || d != 1 {
		t.Errorf("Distance(Mammal, Dog) = %d, %v after eviction", d, ok)
	}
}

func TestMemoCapUnboundedAndDefault(t *testing.T) {
	o := buildAnimals(t)
	if got := o.memoCapLocked(); got != memoCapDefault {
		t.Fatalf("default cap = %d, want %d", got, memoCapDefault)
	}
	o.SetMemoCap(-1)
	// Unbounded: every distinct pair stays resident, nothing is evicted.
	concepts := []ConceptID{"Animal", "Mammal", "Bird", "Dog", "Cat", "Sparrow"}
	for _, a := range concepts {
		for _, b := range concepts {
			o.Match(a, b)
		}
	}
	if m, _ := memoSizes(o); m != len(concepts)*len(concepts) {
		t.Errorf("unbounded match memo holds %d entries, want %d", m, len(concepts)*len(concepts))
	}
	if s := o.Stats(); s.MatchEvictions != 0 || s.DistanceEvictions != 0 {
		t.Errorf("unbounded cap evicted: %+v", s)
	}
	// Zero restores the default.
	o.SetMemoCap(0)
	if got := o.memoCapLocked(); got != memoCapDefault {
		t.Errorf("cap after SetMemoCap(0) = %d, want %d", got, memoCapDefault)
	}
}
