package semantics

// This file encodes the semantic end-to-end QoS model of Chapter III as
// four ontologies: the QoS Core ontology (the upper model: properties,
// metrics, units, values), the Infrastructure QoS ontology (network and
// device qualities), the Service QoS ontology (performance, dependability,
// cost, security, transaction qualities of application services) and the
// User QoS ontology (requirements, preferences, perceived quality).
// Pervasive() merges all four into the shared model that users and
// providers in a pervasive environment map their vocabularies onto.

// Predicates used in ontology triples.
const (
	PredHasMetric    = "hasMetric"
	PredHasUnit      = "hasUnit"
	PredHasDirection = "hasDirection"
	PredMeasuredBy   = "measuredBy"
	PredAppliesTo    = "appliesTo"
	PredDependsOn    = "dependsOn"
)

// Core ontology concept IDs (QoS Core ontology, Fig. III.2).
const (
	QoSConcept        ConceptID = "QoS"
	QoSProperty       ConceptID = "QoSProperty"
	QoSMetric         ConceptID = "QoSMetric"
	QoSUnit           ConceptID = "QoSUnit"
	QoSValue          ConceptID = "QoSValue"
	QoSDirection      ConceptID = "QoSDirection"
	DirectionUpward   ConceptID = "UpwardDirection"   // higher is better
	DirectionDownward ConceptID = "DownwardDirection" // lower is better
	AdvertisedValue   ConceptID = "AdvertisedValue"
	MeasuredValue     ConceptID = "MeasuredValue"
	PredictedValue    ConceptID = "PredictedValue"
	MetricGauge       ConceptID = "GaugeMetric"
	MetricRate        ConceptID = "RateMetric"
	MetricProbability ConceptID = "ProbabilityMetric"
	MetricCounter     ConceptID = "CounterMetric"
	UnitMillisecond   ConceptID = "Millisecond"
	UnitSecond        ConceptID = "Second"
	UnitEuro          ConceptID = "Euro"
	UnitCent          ConceptID = "Cent"
	UnitPercent       ConceptID = "Percent"
	UnitRatio         ConceptID = "Ratio"
	UnitKbps          ConceptID = "KilobitPerSecond"
	UnitMbps          ConceptID = "MegabitPerSecond"
	UnitRequestPerSec ConceptID = "RequestPerSecond"
	UnitMilliwattHour ConceptID = "MilliwattHour"
)

// Service QoS ontology concept IDs (Fig. III.4).
const (
	ServiceQoSProperty ConceptID = "ServiceQoSProperty"

	Performance   ConceptID = "Performance"
	ResponseTime  ConceptID = "ResponseTime"
	ExecutionTime ConceptID = "ExecutionTime"
	Latency       ConceptID = "TransmissionLatency"
	Throughput    ConceptID = "Throughput"
	Jitter        ConceptID = "Jitter"

	Dependability ConceptID = "Dependability"
	Availability  ConceptID = "Availability"
	Reliability   ConceptID = "Reliability"
	Robustness    ConceptID = "Robustness"
	Accuracy      ConceptID = "Accuracy"

	Cost        ConceptID = "Cost"
	Price       ConceptID = "Price"
	PenaltyRate ConceptID = "PenaltyRate"

	Security        ConceptID = "Security"
	Authentication  ConceptID = "Authentication"
	Authorization   ConceptID = "Authorization"
	Confidentiality ConceptID = "Confidentiality"
	Integrity       ConceptID = "Integrity"
	EncryptionLevel ConceptID = "EncryptionLevel"

	Transaction    ConceptID = "Transaction"
	Atomicity      ConceptID = "Atomicity"
	Compensability ConceptID = "Compensability"

	ContentQuality  ConceptID = "ContentQuality"  // QoC, after Chang & Lee
	MediaQuality    ConceptID = "MediaQuality"    // e.g. encoding quality of streams
	ContentAccuracy ConceptID = "ContentAccuracy" // precision of processed information
)

// Infrastructure QoS ontology concept IDs (Fig. III.3).
const (
	InfrastructureQoSProperty ConceptID = "InfrastructureQoSProperty"

	NetworkQoS         ConceptID = "NetworkQoS"
	Bandwidth          ConceptID = "Bandwidth"
	NetworkLatency     ConceptID = "NetworkLatency"
	NetworkJitter      ConceptID = "NetworkJitter"
	PacketLoss         ConceptID = "PacketLoss"
	SignalStrength     ConceptID = "SignalStrength"
	NetworkReliability ConceptID = "NetworkReliability"

	DeviceQoS       ConceptID = "DeviceQoS"
	CPUSpeed        ConceptID = "CPUSpeed"
	MemoryCapacity  ConceptID = "MemoryCapacity"
	StorageCapacity ConceptID = "StorageCapacity"
	BatteryLife     ConceptID = "BatteryLife"
	ScreenQuality   ConceptID = "ScreenQuality"
	DeviceLoad      ConceptID = "DeviceLoad"
)

// User QoS ontology concept IDs (Fig. III.5).
const (
	UserQoSConcept   ConceptID = "UserQoS"
	QoSRequirement   ConceptID = "QoSRequirement"
	GlobalConstraint ConceptID = "GlobalQoSConstraint"
	LocalConstraint  ConceptID = "LocalQoSConstraint"
	QoSPreference    ConceptID = "QoSPreference"
	PreferenceWeight ConceptID = "PreferenceWeight"
	PerceivedQoS     ConceptID = "PerceivedQoS"
	SatisfactionTier ConceptID = "SatisfactionTier"
	TierDelighted    ConceptID = "DelightedTier"
	TierSatisfied    ConceptID = "SatisfiedTier"
	TierTolerable    ConceptID = "TolerableTier"
	TierFrustrated   ConceptID = "FrustratedTier"
)

// CoreQoS builds the QoS Core ontology: the domain-independent upper model
// that the three lower ontologies specialise.
func CoreQoS() *Ontology {
	o := New("qos-core")
	o.MustAddConcept(QoSConcept)
	o.MustAddConcept(QoSProperty, QoSConcept)
	o.MustAddConcept(QoSMetric, QoSConcept)
	o.MustAddConcept(QoSUnit, QoSConcept)
	o.MustAddConcept(QoSValue, QoSConcept)
	o.MustAddConcept(QoSDirection, QoSConcept)
	o.MustAddConcept(DirectionUpward, QoSDirection)
	o.MustAddConcept(DirectionDownward, QoSDirection)
	o.MustAddConcept(AdvertisedValue, QoSValue)
	o.MustAddConcept(MeasuredValue, QoSValue)
	o.MustAddConcept(PredictedValue, QoSValue)
	o.MustAddConcept(MetricGauge, QoSMetric)
	o.MustAddConcept(MetricRate, QoSMetric)
	o.MustAddConcept(MetricProbability, QoSMetric)
	o.MustAddConcept(MetricCounter, QoSMetric)
	for _, u := range []ConceptID{
		UnitMillisecond, UnitSecond, UnitEuro, UnitCent, UnitPercent,
		UnitRatio, UnitKbps, UnitMbps, UnitRequestPerSec, UnitMilliwattHour,
	} {
		o.MustAddConcept(u, QoSUnit)
	}
	if err := o.SetComment(QoSProperty, "Root of all quality properties; specialised by the service, infrastructure and user ontologies."); err != nil {
		panic(err)
	}
	return o
}

// ServiceQoS builds the Service QoS ontology covering the qualities of
// application services: performance, dependability, cost, security,
// transaction, and content quality.
func ServiceQoS() *Ontology {
	o := CoreQoS()
	o.name = "qos-service"
	o.MustAddConcept(ServiceQoSProperty, QoSProperty)

	o.MustAddConcept(Performance, ServiceQoSProperty)
	o.MustAddConcept(ResponseTime, Performance)
	o.MustAddConcept(ExecutionTime, ResponseTime)
	o.MustAddConcept(Latency, ResponseTime)
	o.MustAddConcept(Throughput, Performance)
	o.MustAddConcept(Jitter, Performance)

	o.MustAddConcept(Dependability, ServiceQoSProperty)
	o.MustAddConcept(Availability, Dependability)
	o.MustAddConcept(Reliability, Dependability)
	o.MustAddConcept(Robustness, Dependability)
	o.MustAddConcept(Accuracy, Dependability)

	o.MustAddConcept(Cost, ServiceQoSProperty)
	o.MustAddConcept(Price, Cost)
	o.MustAddConcept(PenaltyRate, Cost)

	o.MustAddConcept(Security, ServiceQoSProperty)
	o.MustAddConcept(Authentication, Security)
	o.MustAddConcept(Authorization, Security)
	o.MustAddConcept(Confidentiality, Security)
	o.MustAddConcept(Integrity, Security)
	o.MustAddConcept(EncryptionLevel, Security)

	o.MustAddConcept(Transaction, ServiceQoSProperty)
	o.MustAddConcept(Atomicity, Transaction)
	o.MustAddConcept(Compensability, Transaction)

	o.MustAddConcept(ContentQuality, ServiceQoSProperty)
	o.MustAddConcept(MediaQuality, ContentQuality)
	o.MustAddConcept(ContentAccuracy, ContentQuality)

	// Directions.
	for _, c := range []ConceptID{ResponseTime, ExecutionTime, Latency, Jitter, Price, PenaltyRate} {
		o.AddTriple(c, PredHasDirection, DirectionDownward)
	}
	for _, c := range []ConceptID{Throughput, Availability, Reliability, Robustness, Accuracy,
		EncryptionLevel, MediaQuality, ContentAccuracy} {
		o.AddTriple(c, PredHasDirection, DirectionUpward)
	}
	// Metrics and units.
	o.AddTriple(ResponseTime, PredHasMetric, MetricGauge)
	o.AddTriple(ResponseTime, PredHasUnit, UnitMillisecond)
	o.AddTriple(Throughput, PredHasMetric, MetricRate)
	o.AddTriple(Throughput, PredHasUnit, UnitRequestPerSec)
	o.AddTriple(Availability, PredHasMetric, MetricProbability)
	o.AddTriple(Availability, PredHasUnit, UnitRatio)
	o.AddTriple(Reliability, PredHasMetric, MetricProbability)
	o.AddTriple(Reliability, PredHasUnit, UnitRatio)
	o.AddTriple(Price, PredHasMetric, MetricGauge)
	o.AddTriple(Price, PredHasUnit, UnitEuro)

	// Common vocabulary aliases found across provider descriptions.
	o.MustAddAlias("Delay", ResponseTime)
	o.MustAddAlias("ResponseDelay", ResponseTime)
	o.MustAddAlias("Duration", ExecutionTime)
	o.MustAddAlias("Uptime", Availability)
	o.MustAddAlias("SuccessRate", Reliability)
	o.MustAddAlias("Fee", Price)
	o.MustAddAlias("Charge", Price)
	o.MustAddAlias("Rate", Throughput)
	return o
}

// InfrastructureQoS builds the Infrastructure QoS ontology covering the
// network and device qualities that underpin end-to-end QoS in pervasive
// environments.
func InfrastructureQoS() *Ontology {
	o := CoreQoS()
	o.name = "qos-infrastructure"
	o.MustAddConcept(InfrastructureQoSProperty, QoSProperty)

	o.MustAddConcept(NetworkQoS, InfrastructureQoSProperty)
	o.MustAddConcept(Bandwidth, NetworkQoS)
	o.MustAddConcept(NetworkLatency, NetworkQoS)
	o.MustAddConcept(NetworkJitter, NetworkQoS)
	o.MustAddConcept(PacketLoss, NetworkQoS)
	o.MustAddConcept(SignalStrength, NetworkQoS)
	o.MustAddConcept(NetworkReliability, NetworkQoS)

	o.MustAddConcept(DeviceQoS, InfrastructureQoSProperty)
	o.MustAddConcept(CPUSpeed, DeviceQoS)
	o.MustAddConcept(MemoryCapacity, DeviceQoS)
	o.MustAddConcept(StorageCapacity, DeviceQoS)
	o.MustAddConcept(BatteryLife, DeviceQoS)
	o.MustAddConcept(ScreenQuality, DeviceQoS)
	o.MustAddConcept(DeviceLoad, DeviceQoS)

	for _, c := range []ConceptID{NetworkLatency, NetworkJitter, PacketLoss, DeviceLoad} {
		o.AddTriple(c, PredHasDirection, DirectionDownward)
	}
	for _, c := range []ConceptID{Bandwidth, SignalStrength, NetworkReliability, CPUSpeed,
		MemoryCapacity, StorageCapacity, BatteryLife, ScreenQuality} {
		o.AddTriple(c, PredHasDirection, DirectionUpward)
	}
	o.AddTriple(Bandwidth, PredHasUnit, UnitKbps)
	o.AddTriple(NetworkLatency, PredHasUnit, UnitMillisecond)
	o.AddTriple(PacketLoss, PredHasUnit, UnitRatio)
	o.AddTriple(BatteryLife, PredHasUnit, UnitMilliwattHour)
	return o
}

// UserQoS builds the User QoS ontology covering user-side QoS concepts:
// requirements (global and local constraints), preferences (weights) and
// perceived quality (satisfaction tiers).
func UserQoS() *Ontology {
	o := CoreQoS()
	o.name = "qos-user"
	o.MustAddConcept(UserQoSConcept, QoSConcept)
	o.MustAddConcept(QoSRequirement, UserQoSConcept)
	o.MustAddConcept(GlobalConstraint, QoSRequirement)
	o.MustAddConcept(LocalConstraint, QoSRequirement)
	o.MustAddConcept(QoSPreference, UserQoSConcept)
	o.MustAddConcept(PreferenceWeight, QoSPreference)
	o.MustAddConcept(PerceivedQoS, UserQoSConcept)
	o.MustAddConcept(SatisfactionTier, PerceivedQoS)
	o.MustAddConcept(TierDelighted, SatisfactionTier)
	o.MustAddConcept(TierSatisfied, SatisfactionTier)
	o.MustAddConcept(TierTolerable, SatisfactionTier)
	o.MustAddConcept(TierFrustrated, SatisfactionTier)
	o.AddTriple(QoSRequirement, PredAppliesTo, QoSProperty)
	o.AddTriple(QoSPreference, PredAppliesTo, QoSProperty)
	return o
}

// Pervasive merges the four QoS ontologies into the single shared model
// used by the middleware, and records the end-to-end dependencies between
// service-level and infrastructure-level properties (e.g. service response
// time depends on network latency and bandwidth).
func Pervasive() *Ontology {
	o := ServiceQoS()
	o.name = "qos-pervasive"
	for _, src := range []*Ontology{InfrastructureQoS(), UserQoS()} {
		if err := o.Merge(src); err != nil {
			panic(err)
		}
	}
	// End-to-end dependencies (the crux of the end-to-end model): the QoS
	// perceived at the user side is a function of both service-level and
	// infrastructure-level properties.
	o.AddTriple(ResponseTime, PredDependsOn, NetworkLatency)
	o.AddTriple(ResponseTime, PredDependsOn, Bandwidth)
	o.AddTriple(ResponseTime, PredDependsOn, DeviceLoad)
	o.AddTriple(Availability, PredDependsOn, SignalStrength)
	o.AddTriple(Availability, PredDependsOn, BatteryLife)
	o.AddTriple(Reliability, PredDependsOn, NetworkReliability)
	o.AddTriple(Reliability, PredDependsOn, PacketLoss)
	o.AddTriple(Throughput, PredDependsOn, Bandwidth)
	o.AddTriple(MediaQuality, PredDependsOn, Bandwidth)
	o.AddTriple(MediaQuality, PredDependsOn, NetworkJitter)
	return o
}
