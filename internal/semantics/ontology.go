// Package semantics implements the lightweight description-logic fragment
// that QASOM uses in place of OWL: named concepts organised in a
// multiple-inheritance subsumption hierarchy, concept aliases (to map the
// heterogeneous vocabularies of users and providers onto a shared model),
// a small triple store for non-hierarchical relations, and the
// matchmaking levels (exact / plugin / subsume / fail) used throughout the
// middleware for semantic service and QoS-property matching.
//
// The four QoS ontologies of the thesis (QoS Core, Infrastructure QoS,
// Service QoS and User QoS — Chapter III) are provided as ready-made
// instances; see CoreQoS, InfrastructureQoS, ServiceQoS, UserQoS and the
// merged Pervasive ontology.
package semantics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ConceptID names a concept in an ontology. IDs are case-sensitive and
// unique within an ontology (aliases share the namespace).
type ConceptID string

// MatchLevel grades how well an offered concept satisfies a required one,
// following the classic semantic matchmaking scale (exact > plugin >
// subsume > fail) used by Amigo and PERSE, which the thesis builds on.
type MatchLevel int

// Match levels, ordered from best to worst.
const (
	// MatchExact means the two concepts are identical (after alias
	// resolution).
	MatchExact MatchLevel = iota + 1
	// MatchPlugin means the offered concept is a specialisation of the
	// required one and can therefore be plugged in wherever the required
	// concept is expected.
	MatchPlugin
	// MatchSubsume means the offered concept is a generalisation of the
	// required one; it may satisfy the request but gives weaker
	// guarantees.
	MatchSubsume
	// MatchFail means the concepts are unrelated.
	MatchFail
)

// String returns the conventional name of the match level.
func (m MatchLevel) String() string {
	switch m {
	case MatchExact:
		return "exact"
	case MatchPlugin:
		return "plugin"
	case MatchSubsume:
		return "subsume"
	case MatchFail:
		return "fail"
	default:
		return fmt.Sprintf("MatchLevel(%d)", int(m))
	}
}

// Beats reports whether m is a strictly better match than other.
func (m MatchLevel) Beats(other MatchLevel) bool { return m < other }

// Satisfies reports whether the level denotes a usable match (anything
// better than fail).
func (m MatchLevel) Satisfies() bool { return m != MatchFail && m != 0 }

// Triple is a non-hierarchical statement (subject, predicate, object)
// attached to the ontology, e.g. (ResponseTime, hasUnit, Millisecond).
type Triple struct {
	Subject   ConceptID
	Predicate string
	Object    ConceptID
}

type conceptNode struct {
	id      ConceptID
	comment string
	parents map[ConceptID]struct{}
}

// conceptPair keys the match and distance memo tables.
type conceptPair struct {
	a, b ConceptID
}

// distEntry is one memoised Distance result.
type distEntry struct {
	d  int
	ok bool
}

// CacheStats reports the reasoning-cache effectiveness of an ontology:
// how many Match/Distance calls were answered from the memo tables
// versus derived from the hierarchy.
type CacheStats struct {
	MatchHits, MatchMisses       uint64
	DistanceHits, DistanceMisses uint64
	// MatchEvictions and DistanceEvictions count memo entries dropped by
	// the size cap (see SetMemoCap): a long-running node reasoning over
	// an unbounded stream of concept pairs trades recomputation for
	// bounded memory.
	MatchEvictions, DistanceEvictions uint64
}

// Delta returns the counter increments since an earlier snapshot —
// the per-window attribution a caller gets by snapshotting around a
// phase (approximate under concurrent reasoners, since other
// goroutines' cache traffic lands in the same window).
func (s CacheStats) Delta(prev CacheStats) CacheStats {
	return CacheStats{
		MatchHits:         s.MatchHits - prev.MatchHits,
		MatchMisses:       s.MatchMisses - prev.MatchMisses,
		DistanceHits:      s.DistanceHits - prev.DistanceHits,
		DistanceMisses:    s.DistanceMisses - prev.DistanceMisses,
		MatchEvictions:    s.MatchEvictions - prev.MatchEvictions,
		DistanceEvictions: s.DistanceEvictions - prev.DistanceEvictions,
	}
}

// Ontology is a concept store with subsumption reasoning. The zero value
// is not usable; create instances with New. All methods are safe for
// concurrent use.
type Ontology struct {
	mu       sync.RWMutex
	name     string
	concepts map[ConceptID]*conceptNode
	aliases  map[ConceptID]ConceptID
	triples  []Triple
	// ancestors memoises the transitive closure of the parent relation;
	// invalidated on every mutation.
	ancestors map[ConceptID]map[ConceptID]struct{}
	// matchMemo and distMemo memoise Match and Distance over canonical
	// concept pairs; invalidated together with ancestors on mutation.
	matchMemo map[conceptPair]MatchLevel
	distMemo  map[conceptPair]distEntry
	// memoCap bounds each memo table; 0 means memoCapDefault, negative
	// means unbounded (see SetMemoCap).
	memoCap int
	stats   cacheCounters
	// version counts hierarchy/alias mutations; dependents (e.g. the
	// registry's capability index) use it to detect staleness.
	version uint64
	// snap is the immutable alias/version snapshot Canonical and Version
	// read without taking mu — both sit on every candidate-lookup and
	// plan-cache-validation path, where an RLock would serialize readers
	// against reasoning-memo writers. Republished by invalidateLocked.
	snap atomic.Pointer[aliasTable]
}

// cacheCounters are the reasoning-cache counters as atomics, so the memo
// hit paths never take the ontology lock. Stats assembles a snapshot
// from individual loads — approximate under concurrent reasoners, which
// is all CacheStats.Delta promises anyway.
type cacheCounters struct {
	matchHits, matchMisses            atomic.Uint64
	distanceHits, distanceMisses      atomic.Uint64
	matchEvictions, distanceEvictions atomic.Uint64
}

// aliasTable is one immutable alias-resolution snapshot, paired with the
// version it was published at.
type aliasTable struct {
	aliases map[ConceptID]ConceptID
	version uint64
}

// publishSnapLocked copies the live alias table into a fresh snapshot;
// callers hold the write lock (or own the ontology exclusively, as New
// does).
func (o *Ontology) publishSnapLocked() {
	aliases := make(map[ConceptID]ConceptID, len(o.aliases))
	for a, c := range o.aliases {
		aliases[a] = c
	}
	o.snap.Store(&aliasTable{aliases: aliases, version: o.version})
}

// New creates an empty ontology with the given name.
func New(name string) *Ontology {
	o := &Ontology{
		name:     name,
		concepts: make(map[ConceptID]*conceptNode),
		aliases:  make(map[ConceptID]ConceptID),
	}
	o.publishSnapLocked()
	return o
}

// Version returns a counter incremented on every mutation of the
// concept hierarchy or alias table. Derived structures cache it to
// detect when they must be rebuilt. Lock-free: one atomic load.
func (o *Ontology) Version() uint64 {
	return o.snap.Load().version
}

// Stats returns a snapshot of the reasoning-cache counters
// (approximate under concurrent reasoners).
func (o *Ontology) Stats() CacheStats {
	return CacheStats{
		MatchHits:         o.stats.matchHits.Load(),
		MatchMisses:       o.stats.matchMisses.Load(),
		DistanceHits:      o.stats.distanceHits.Load(),
		DistanceMisses:    o.stats.distanceMisses.Load(),
		MatchEvictions:    o.stats.matchEvictions.Load(),
		DistanceEvictions: o.stats.distanceEvictions.Load(),
	}
}

// memoCapDefault bounds each reasoning memo table (Match and Distance)
// when no explicit cap has been set: generous enough that a realistic
// ontology memoises everything it ever computes, small enough that a
// long-running node fed adversarial or ever-growing concept vocabularies
// cannot grow the tables without limit.
const memoCapDefault = 8192

// SetMemoCap bounds the Match and Distance memo tables to n entries
// each: inserting into a full table evicts an arbitrary resident entry
// (counted in CacheStats.MatchEvictions/DistanceEvictions). 0 restores
// the default cap (memoCapDefault); negative disables the bound.
// Entries already beyond a lowered cap are evicted lazily by subsequent
// inserts, not synchronously.
func (o *Ontology) SetMemoCap(n int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.memoCap = n
}

// memoCapLocked resolves the effective cap; callers hold a lock.
func (o *Ontology) memoCapLocked() int {
	if o.memoCap == 0 {
		return memoCapDefault
	}
	return o.memoCap
}

// ResetStats zeroes the reasoning-cache counters (the memo tables
// themselves are kept). Benchmark harnesses call it between runs so
// each run's Stats snapshot stands alone.
func (o *Ontology) ResetStats() {
	o.stats.matchHits.Store(0)
	o.stats.matchMisses.Store(0)
	o.stats.distanceHits.Store(0)
	o.stats.distanceMisses.Store(0)
	o.stats.matchEvictions.Store(0)
	o.stats.distanceEvictions.Store(0)
}

// invalidateLocked drops every derived cache and republishes the
// alias/version snapshot; callers hold the write lock with the alias
// table already in its post-mutation state.
func (o *Ontology) invalidateLocked() {
	o.ancestors = nil
	o.matchMemo = nil
	o.distMemo = nil
	o.version++
	o.publishSnapLocked()
}

// Name returns the ontology name.
func (o *Ontology) Name() string { return o.name }

// Len returns the number of concepts (aliases excluded).
func (o *Ontology) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.concepts)
}

// AddConcept registers a concept with the given parent concepts. All
// parents must already exist. Re-adding an existing concept merges the
// parent sets. It returns an error if id is empty, clashes with an alias,
// or any parent is unknown.
func (o *Ontology) AddConcept(id ConceptID, parents ...ConceptID) error {
	if id == "" {
		return fmt.Errorf("semantics: empty concept id")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, clash := o.aliases[id]; clash {
		return fmt.Errorf("semantics: concept %q clashes with an alias", id)
	}
	for _, p := range parents {
		if _, ok := o.concepts[p]; !ok {
			return fmt.Errorf("semantics: unknown parent concept %q for %q", p, id)
		}
	}
	node, ok := o.concepts[id]
	if !ok {
		node = &conceptNode{id: id, parents: make(map[ConceptID]struct{}, len(parents))}
		o.concepts[id] = node
	}
	for _, p := range parents {
		node.parents[p] = struct{}{}
	}
	o.invalidateLocked()
	return nil
}

// MustAddConcept is AddConcept but panics on error. It is intended for
// building the static QoS ontologies at construction time.
func (o *Ontology) MustAddConcept(id ConceptID, parents ...ConceptID) {
	if err := o.AddConcept(id, parents...); err != nil {
		panic(err)
	}
}

// SetComment attaches a human-readable comment to a concept.
func (o *Ontology) SetComment(id ConceptID, comment string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	node, ok := o.concepts[o.resolveLocked(id)]
	if !ok {
		return fmt.Errorf("semantics: unknown concept %q", id)
	}
	node.comment = comment
	return nil
}

// Comment returns the comment attached to a concept, if any.
func (o *Ontology) Comment(id ConceptID) string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if node, ok := o.concepts[o.resolveLocked(id)]; ok {
		return node.comment
	}
	return ""
}

// AddAlias declares alias as an alternative name for canonical. Aliases
// let heterogeneous vocabularies (e.g. "Delay" vs "ResponseTime") resolve
// to the shared model.
func (o *Ontology) AddAlias(alias, canonical ConceptID) error {
	if alias == "" || canonical == "" {
		return fmt.Errorf("semantics: empty alias or canonical id")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, clash := o.concepts[alias]; clash {
		return fmt.Errorf("semantics: alias %q clashes with a concept", alias)
	}
	target := canonical
	if t, ok := o.aliases[canonical]; ok {
		target = t
	}
	if _, ok := o.concepts[target]; !ok {
		return fmt.Errorf("semantics: alias %q targets unknown concept %q", alias, canonical)
	}
	o.aliases[alias] = target
	o.invalidateLocked()
	return nil
}

// MustAddAlias is AddAlias but panics on error.
func (o *Ontology) MustAddAlias(alias, canonical ConceptID) {
	if err := o.AddAlias(alias, canonical); err != nil {
		panic(err)
	}
}

// AddTriple records a non-hierarchical statement about a concept.
func (o *Ontology) AddTriple(subject ConceptID, predicate string, object ConceptID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.triples = append(o.triples, Triple{
		Subject:   o.resolveLocked(subject),
		Predicate: predicate,
		Object:    o.resolveLocked(object),
	})
}

// Objects returns the objects of all triples with the given subject and
// predicate, in insertion order.
func (o *Ontology) Objects(subject ConceptID, predicate string) []ConceptID {
	o.mu.RLock()
	defer o.mu.RUnlock()
	subject = o.resolveLocked(subject)
	var out []ConceptID
	for _, t := range o.triples {
		if t.Subject == subject && t.Predicate == predicate {
			out = append(out, t.Object)
		}
	}
	return out
}

// Canonical resolves aliases to their canonical concept; unknown IDs are
// returned unchanged. Lock-free: reads the published alias snapshot.
func (o *Ontology) Canonical(id ConceptID) ConceptID {
	if c, ok := o.snap.Load().aliases[id]; ok {
		return c
	}
	return id
}

func (o *Ontology) resolveLocked(id ConceptID) ConceptID {
	if c, ok := o.aliases[id]; ok {
		return c
	}
	return id
}

// Has reports whether the concept (or an alias of it) exists.
func (o *Ontology) Has(id ConceptID) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	_, ok := o.concepts[o.resolveLocked(id)]
	return ok
}

// Parents returns the direct parents of a concept in sorted order.
func (o *Ontology) Parents(id ConceptID) []ConceptID {
	o.mu.RLock()
	defer o.mu.RUnlock()
	node, ok := o.concepts[o.resolveLocked(id)]
	if !ok {
		return nil
	}
	out := make([]ConceptID, 0, len(node.parents))
	for p := range node.parents {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Children returns the direct children of a concept in sorted order.
func (o *Ontology) Children(id ConceptID) []ConceptID {
	o.mu.RLock()
	defer o.mu.RUnlock()
	id = o.resolveLocked(id)
	var out []ConceptID
	for cid, node := range o.concepts {
		if _, ok := node.parents[id]; ok {
			out = append(out, cid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Concepts returns all concept IDs in sorted order.
func (o *Ontology) Concepts() []ConceptID {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]ConceptID, 0, len(o.concepts))
	for id := range o.concepts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsA reports whether sub is the same concept as, or a (transitive)
// specialisation of, sup. Unknown concepts are related only to themselves.
func (o *Ontology) IsA(sub, sup ConceptID) bool {
	o.mu.RLock()
	sub = o.resolveLocked(sub)
	sup = o.resolveLocked(sup)
	o.mu.RUnlock()
	if sub == sup {
		return true
	}
	anc := o.closure()
	_, ok := anc[sub][sup]
	return ok
}

// Subsumes reports whether sup subsumes sub, i.e. sub IsA sup.
func (o *Ontology) Subsumes(sup, sub ConceptID) bool { return o.IsA(sub, sup) }

// Ancestors returns all transitive ancestors of a concept (excluding the
// concept itself), in sorted order.
func (o *Ontology) Ancestors(id ConceptID) []ConceptID {
	id = o.Canonical(id)
	set, ok := o.closure()[id]
	if !ok {
		return nil
	}
	out := make([]ConceptID, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// closure returns the memoised transitive closure of the parent relation,
// rebuilding it under the write lock when a mutation invalidated it. The
// returned map is never mutated after publication and is safe to read
// without holding mu.
func (o *Ontology) closure() map[ConceptID]map[ConceptID]struct{} {
	o.mu.RLock()
	cached := o.ancestors
	o.mu.RUnlock()
	if cached != nil {
		return cached
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.ancestors != nil {
		return o.ancestors
	}
	closure := make(map[ConceptID]map[ConceptID]struct{}, len(o.concepts))
	var visit func(id ConceptID) map[ConceptID]struct{}
	visit = func(id ConceptID) map[ConceptID]struct{} {
		if set, ok := closure[id]; ok {
			return set
		}
		set := make(map[ConceptID]struct{})
		closure[id] = set // break cycles defensively
		node := o.concepts[id]
		if node == nil {
			return set
		}
		for p := range node.parents {
			set[p] = struct{}{}
			for a := range visit(p) {
				set[a] = struct{}{}
			}
		}
		return set
	}
	for id := range o.concepts {
		visit(id)
	}
	o.ancestors = closure
	return closure
}

// Match grades how well the offered concept satisfies the required one:
// exact when identical, plugin when offered specialises required, subsume
// when offered generalises required, fail otherwise. Results are
// memoised per canonical concept pair until the hierarchy mutates.
func (o *Ontology) Match(required, offered ConceptID) MatchLevel {
	o.mu.RLock()
	required = o.resolveLocked(required)
	offered = o.resolveLocked(offered)
	key := conceptPair{required, offered}
	if level, ok := o.matchMemo[key]; ok {
		o.mu.RUnlock()
		o.stats.matchHits.Add(1)
		return level
	}
	version := o.version
	o.mu.RUnlock()

	var level MatchLevel
	switch {
	case required == offered:
		level = MatchExact
	case o.IsA(offered, required):
		level = MatchPlugin
	case o.IsA(required, offered):
		level = MatchSubsume
	default:
		level = MatchFail
	}

	o.mu.Lock()
	o.stats.matchMisses.Add(1)
	if o.version == version { // don't cache across a concurrent mutation
		if o.matchMemo == nil {
			o.matchMemo = make(map[conceptPair]MatchLevel)
		}
		o.putMatchLocked(key, level)
	}
	o.mu.Unlock()
	return level
}

// putMatchLocked inserts into the match memo, evicting arbitrary
// resident entries while the table is at its cap. Random eviction (map
// iteration order) is deliberate: it is O(1), needs no recency
// bookkeeping on the read path, and for a memo whose entries are all
// equally cheap to recompute it performs within noise of LRU.
func (o *Ontology) putMatchLocked(key conceptPair, level MatchLevel) {
	if cap := o.memoCapLocked(); cap > 0 {
		if _, resident := o.matchMemo[key]; !resident {
			for len(o.matchMemo) >= cap {
				for victim := range o.matchMemo {
					delete(o.matchMemo, victim)
					o.stats.matchEvictions.Add(1)
					break
				}
			}
		}
	}
	o.matchMemo[key] = level
}

// Distance returns the length of the shortest directed specialisation
// chain between two concepts (in either direction), and false when the
// concepts are unrelated. Distance 0 means identity. It is used to rank
// equally-levelled matches (a closer plugin match beats a remote one).
// Results are memoised per canonical concept pair until the hierarchy
// mutates.
func (o *Ontology) Distance(a, b ConceptID) (int, bool) {
	o.mu.RLock()
	a = o.resolveLocked(a)
	b = o.resolveLocked(b)
	key := conceptPair{a, b}
	if e, ok := o.distMemo[key]; ok {
		o.mu.RUnlock()
		o.stats.distanceHits.Add(1)
		return e.d, e.ok
	}
	version := o.version
	o.mu.RUnlock()

	var entry distEntry
	if a == b {
		entry = distEntry{0, true}
	} else if d, ok := o.upDistance(a, b); ok {
		entry = distEntry{d, true}
	} else if d, ok := o.upDistance(b, a); ok {
		entry = distEntry{d, true}
	}

	o.mu.Lock()
	o.stats.distanceMisses.Add(1)
	if o.version == version {
		if o.distMemo == nil {
			o.distMemo = make(map[conceptPair]distEntry)
		}
		o.putDistLocked(key, entry)
		// Distance is symmetric: prime the mirrored key too.
		o.putDistLocked(conceptPair{b, a}, entry)
	}
	o.mu.Unlock()
	return entry.d, entry.ok
}

// putDistLocked inserts into the distance memo under the same cap and
// eviction policy as putMatchLocked; the symmetric prime goes through
// here too, so the table never exceeds the cap even on double inserts.
func (o *Ontology) putDistLocked(key conceptPair, entry distEntry) {
	if cap := o.memoCapLocked(); cap > 0 {
		if _, resident := o.distMemo[key]; !resident {
			for len(o.distMemo) >= cap {
				for victim := range o.distMemo {
					delete(o.distMemo, victim)
					o.stats.distanceEvictions.Add(1)
					break
				}
			}
		}
	}
	o.distMemo[key] = entry
}

// upDistance returns the shortest chain length from sub upward to sup.
func (o *Ontology) upDistance(sub, sup ConceptID) (int, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	type item struct {
		id ConceptID
		d  int
	}
	seen := map[ConceptID]struct{}{sub: {}}
	queue := []item{{sub, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.id == sup {
			return cur.d, true
		}
		node := o.concepts[cur.id]
		if node == nil {
			continue
		}
		for p := range node.parents {
			if _, ok := seen[p]; ok {
				continue
			}
			seen[p] = struct{}{}
			queue = append(queue, item{p, cur.d + 1})
		}
	}
	return 0, false
}

// Merge copies every concept, alias and triple of src into o. Concepts
// already present have their parent sets merged. Merge returns an error
// on alias/concept namespace clashes.
func (o *Ontology) Merge(src *Ontology) error {
	if src == nil {
		return nil
	}
	src.mu.RLock()
	type conceptData struct {
		id      ConceptID
		comment string
		parents []ConceptID
	}
	nodes := make([]conceptData, 0, len(src.concepts))
	for id, node := range src.concepts {
		cd := conceptData{id: id, comment: node.comment, parents: make([]ConceptID, 0, len(node.parents))}
		for p := range node.parents {
			cd.parents = append(cd.parents, p)
		}
		nodes = append(nodes, cd)
	}
	aliases := make(map[ConceptID]ConceptID, len(src.aliases))
	for a, c := range src.aliases {
		aliases[a] = c
	}
	triples := make([]Triple, len(src.triples))
	copy(triples, src.triples)
	src.mu.RUnlock()

	// Insert concepts in dependency order (parents first).
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })
	pending := nodes
	for len(pending) > 0 {
		progressed := false
		var next []conceptData
		for _, cd := range pending {
			ready := true
			for _, p := range cd.parents {
				if !o.Has(p) {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, cd)
				continue
			}
			if err := o.AddConcept(cd.id, cd.parents...); err != nil {
				return fmt.Errorf("semantics: merging %q: %w", src.name, err)
			}
			if cd.comment != "" {
				if err := o.SetComment(cd.id, cd.comment); err != nil {
					return err
				}
			}
			progressed = true
		}
		if !progressed {
			return fmt.Errorf("semantics: merging %q: unresolved parent cycle among %d concepts", src.name, len(next))
		}
		pending = next
	}
	aliasNames := make([]ConceptID, 0, len(aliases))
	for a := range aliases {
		aliasNames = append(aliasNames, a)
	}
	sort.Slice(aliasNames, func(i, j int) bool { return aliasNames[i] < aliasNames[j] })
	for _, a := range aliasNames {
		if err := o.AddAlias(a, aliases[a]); err != nil {
			return fmt.Errorf("semantics: merging %q: %w", src.name, err)
		}
	}
	for _, t := range triples {
		o.AddTriple(t.Subject, t.Predicate, t.Object)
	}
	return nil
}
