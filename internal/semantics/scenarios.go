package semantics

// Functional (task/service capability) concepts for the three motivating
// scenarios of Chapter I: pervasive shopping, pervasive medical visit and
// pervasive entertainment. These are the vocabularies used by the example
// applications and by the behavioural-adaptation tests for semantic vertex
// matching.

// Functional root and shared concepts.
const (
	ServiceCapability ConceptID = "ServiceCapability"
	PaymentService    ConceptID = "Payment"
	CardPayment       ConceptID = "CardPayment"
	CashPayment       ConceptID = "CashPayment"
	MobilePayment     ConceptID = "MobilePayment"
	NotifyService     ConceptID = "Notification"
)

// Shopping scenario concepts.
const (
	ShoppingService ConceptID = "Shopping"
	BrowseCatalog   ConceptID = "BrowseCatalog"
	SearchItem      ConceptID = "SearchItem"
	BookSale        ConceptID = "BookSale"
	MediaSale       ConceptID = "MediaSale"
	CDSale          ConceptID = "CDSale"
	DVDSale         ConceptID = "DVDSale"
	ElectronicsSale ConceptID = "ElectronicsSale"
	OrderItem       ConceptID = "OrderItem"
	BundleOrder     ConceptID = "BundleOrder"
	PickupDesk      ConceptID = "PickupDesk"
)

// Medical-visit scenario concepts.
const (
	MedicalService      ConceptID = "MedicalService"
	PatientRegistration ConceptID = "PatientRegistration"
	DoctorDiagnosis     ConceptID = "DoctorDiagnosis"
	Cardiology          ConceptID = "CardiologyDiagnosis"
	GeneralPractice     ConceptID = "GeneralPracticeDiagnosis"
	PharmacyOrder       ConceptID = "PharmacyOrder"
	LabAnalysis         ConceptID = "LabAnalysis"
)

// Entertainment scenario concepts.
const (
	EntertainmentService ConceptID = "Entertainment"
	ChartList            ConceptID = "ChartList"
	TopTenList           ConceptID = "TopTenList"
	MediaStreaming       ConceptID = "MediaStreaming"
	AudioStreaming       ConceptID = "AudioStreaming"
	VideoStreaming       ConceptID = "VideoStreaming"
	MediaDownload        ConceptID = "MediaDownload"
)

// Data concepts exchanged between activities (inputs/outputs).
const (
	DataConcept     ConceptID = "Data"
	ItemDescription ConceptID = "ItemDescription"
	ItemList        ConceptID = "ItemList"
	Order           ConceptID = "OrderRecord"
	Receipt         ConceptID = "Receipt"
	Invoice         ConceptID = "Invoice"
	PatientRecord   ConceptID = "PatientRecord"
	Prescription    ConceptID = "Prescription"
	Appointment     ConceptID = "Appointment"
	SongList        ConceptID = "SongList"
	MediaURI        ConceptID = "MediaURI"
	MediaStream     ConceptID = "MediaStreamData"
)

// Scenarios builds the functional ontology shared by the example
// applications: capabilities of the shopping, medical and entertainment
// scenarios plus the data concepts they exchange.
func Scenarios() *Ontology {
	o := New("scenarios")
	o.MustAddConcept(ServiceCapability)
	o.MustAddConcept(PaymentService, ServiceCapability)
	o.MustAddConcept(CardPayment, PaymentService)
	o.MustAddConcept(CashPayment, PaymentService)
	o.MustAddConcept(MobilePayment, PaymentService)
	o.MustAddConcept(NotifyService, ServiceCapability)

	o.MustAddConcept(ShoppingService, ServiceCapability)
	o.MustAddConcept(BrowseCatalog, ShoppingService)
	o.MustAddConcept(SearchItem, ShoppingService)
	o.MustAddConcept(BookSale, ShoppingService)
	o.MustAddConcept(MediaSale, ShoppingService)
	o.MustAddConcept(CDSale, MediaSale)
	o.MustAddConcept(DVDSale, MediaSale)
	o.MustAddConcept(ElectronicsSale, ShoppingService)
	o.MustAddConcept(OrderItem, ShoppingService)
	o.MustAddConcept(BundleOrder, OrderItem)
	o.MustAddConcept(PickupDesk, ShoppingService)

	o.MustAddConcept(MedicalService, ServiceCapability)
	o.MustAddConcept(PatientRegistration, MedicalService)
	o.MustAddConcept(DoctorDiagnosis, MedicalService)
	o.MustAddConcept(Cardiology, DoctorDiagnosis)
	o.MustAddConcept(GeneralPractice, DoctorDiagnosis)
	o.MustAddConcept(PharmacyOrder, MedicalService)
	o.MustAddConcept(LabAnalysis, MedicalService)

	o.MustAddConcept(EntertainmentService, ServiceCapability)
	o.MustAddConcept(ChartList, EntertainmentService)
	o.MustAddConcept(TopTenList, ChartList)
	o.MustAddConcept(MediaStreaming, EntertainmentService)
	o.MustAddConcept(AudioStreaming, MediaStreaming)
	o.MustAddConcept(VideoStreaming, MediaStreaming)
	o.MustAddConcept(MediaDownload, EntertainmentService)

	o.MustAddConcept(DataConcept)
	for _, d := range []ConceptID{
		ItemDescription, ItemList, Order, Receipt, Invoice, PatientRecord,
		Prescription, Appointment, SongList, MediaURI, MediaStream,
	} {
		o.MustAddConcept(d, DataConcept)
	}

	o.MustAddAlias("Buy", OrderItem)
	o.MustAddAlias("Purchase", OrderItem)
	o.MustAddAlias("Checkout", PaymentService)
	o.MustAddAlias("Streaming", MediaStreaming)
	return o
}

// PervasiveWithScenarios merges the end-to-end QoS model with the scenario
// functional vocabulary: the one-stop ontology used by the examples, the
// simulator and most tests.
func PervasiveWithScenarios() *Ontology {
	o := Pervasive()
	o.name = "pervasive-scenarios"
	if err := o.Merge(Scenarios()); err != nil {
		panic(err)
	}
	return o
}
