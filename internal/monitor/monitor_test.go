package monitor

import (
	"sync"
	"testing"
	"time"

	"qasom/internal/qos"
	"qasom/internal/registry"
	"qasom/internal/semantics"
	"qasom/internal/task"
)

func testProps() *qos.PropertySet {
	return qos.MustNewPropertySet(
		&qos.Property{Name: "rt", Concept: semantics.ResponseTime, Direction: qos.Minimized, Kind: qos.KindTime, Unit: qos.Milliseconds},
		&qos.Property{Name: "avail", Concept: semantics.Availability, Direction: qos.Maximized, Kind: qos.KindProbability, Unit: qos.Ratio},
	)
}

func mkObs(id string, rt, avail float64, ok bool) Observation {
	return Observation{Service: registry.ServiceID(id), Vector: qos.Vector{rt, avail}, Time: time.Now(), Success: ok}
}

func TestReportValidation(t *testing.T) {
	m := New(testProps(), Options{})
	if err := m.Report(Observation{Service: "s", Vector: qos.Vector{1}}); err == nil {
		t.Error("wrong arity should be rejected")
	}
	if err := m.Report(mkObs("s", 100, 0.9, true)); err != nil {
		t.Fatalf("Report: %v", err)
	}
	if m.Len("s") != 1 {
		t.Errorf("Len = %d, want 1", m.Len("s"))
	}
	if m.Len("unknown") != 0 {
		t.Error("unknown service should have no observations")
	}
}

func TestEstimateEWMA(t *testing.T) {
	m := New(testProps(), Options{Alpha: 0.5})
	if _, ok := m.Estimate("s"); ok {
		t.Error("unobserved service should have no estimate")
	}
	if err := m.Report(mkObs("s", 100, 0.9, true)); err != nil {
		t.Fatal(err)
	}
	if err := m.Report(mkObs("s", 200, 0.9, true)); err != nil {
		t.Fatal(err)
	}
	est, ok := m.Estimate("s")
	if !ok {
		t.Fatal("estimate missing")
	}
	// EWMA with α=0.5: 0.5·200 + 0.5·100 = 150.
	if est[0] != 150 {
		t.Errorf("EWMA rt = %g, want 150", est[0])
	}
	// Returned vector is a copy.
	est[0] = -1
	est2, _ := m.Estimate("s")
	if est2[0] != 150 {
		t.Error("Estimate should return a copy")
	}
}

func TestWindowRotation(t *testing.T) {
	m := New(testProps(), Options{WindowSize: 4})
	for i := 0; i < 10; i++ {
		if err := m.Report(mkObs("s", float64(i), 0.9, true)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len("s") != 4 {
		t.Errorf("window should cap at 4, got %d", m.Len("s"))
	}
}

func TestSuccessRate(t *testing.T) {
	m := New(testProps(), Options{})
	if m.SuccessRate("s") != 1 {
		t.Error("unobserved service should default to success rate 1")
	}
	for i := 0; i < 3; i++ {
		if err := m.Report(mkObs("s", 100, 0.9, true)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Report(mkObs("s", 100, 0.9, false)); err != nil {
		t.Fatal(err)
	}
	if got := m.SuccessRate("s"); got != 0.75 {
		t.Errorf("SuccessRate = %g, want 0.75", got)
	}
}

func TestPredictLinearTrend(t *testing.T) {
	m := New(testProps(), Options{WindowSize: 10})
	if _, ok := m.Predict("s", 1); ok {
		t.Error("prediction needs ≥3 observations")
	}
	// Response time degrading linearly: 100, 110, 120, 130.
	for i := 0; i < 4; i++ {
		if err := m.Report(mkObs("s", 100+10*float64(i), 0.9, true)); err != nil {
			t.Fatal(err)
		}
	}
	pred, ok := m.Predict("s", 2)
	if !ok {
		t.Fatal("prediction missing")
	}
	// Trend 10/step → two steps ahead of 130 is 150.
	if pred[0] < 149 || pred[0] > 151 {
		t.Errorf("predicted rt = %g, want ≈150", pred[0])
	}
}

func TestPredictClampsProbabilities(t *testing.T) {
	m := New(testProps(), Options{WindowSize: 10})
	// Availability dropping fast: prediction must stay in [0,1].
	for i := 0; i < 5; i++ {
		if err := m.Report(mkObs("s", 100, 0.9-0.2*float64(i), true)); err != nil {
			t.Fatal(err)
		}
	}
	pred, ok := m.Predict("s", 10)
	if !ok {
		t.Fatal("prediction missing")
	}
	if pred[1] < 0 || pred[1] > 1 {
		t.Errorf("predicted availability %g outside [0,1]", pred[1])
	}
	if pred[0] < 0 {
		t.Errorf("predicted rt %g negative", pred[0])
	}
}

func TestPredictStablePlateau(t *testing.T) {
	m := New(testProps(), Options{WindowSize: 8})
	for i := 0; i < 6; i++ {
		if err := m.Report(mkObs("s", 100, 0.9, true)); err != nil {
			t.Fatal(err)
		}
	}
	pred, ok := m.Predict("s", 5)
	if !ok {
		t.Fatal("prediction missing")
	}
	if pred[0] < 99.9 || pred[0] > 100.1 {
		t.Errorf("flat series should predict ≈100, got %g", pred[0])
	}
}

func compositionFixture() (*task.Task, *qos.PropertySet, qos.Constraints, map[string]qos.Vector, map[string]registry.ServiceID) {
	tk := &task.Task{Name: "t", Concept: "C", Root: task.Sequence(
		task.NewActivity(&task.Activity{ID: "a", Concept: "CA"}),
		task.NewActivity(&task.Activity{ID: "b", Concept: "CB"}),
	)}
	ps := testProps()
	cs := qos.Constraints{{Property: "rt", Bound: 250}, {Property: "avail", Bound: 0.8}}
	advertised := map[string]qos.Vector{
		"a": {100, 0.95},
		"b": {100, 0.95},
	}
	binding := map[string]registry.ServiceID{"a": "svcA", "b": "svcB"}
	return tk, ps, cs, advertised, binding
}

func TestCompositionMonitorHealthy(t *testing.T) {
	tk, ps, cs, adv, binding := compositionFixture()
	cm := NewCompositionMonitor(tk, ps, cs, qos.Pessimistic, adv, binding)
	m := New(ps, Options{})
	a := cm.Assess(m, 3)
	// No observations: falls back to advertised values. 100+100=200 ≤ 250.
	if !a.Healthy() {
		t.Errorf("advertised-only assessment should be healthy: %+v", a)
	}
	if a.Current[0] != 200 {
		t.Errorf("current rt = %g, want 200", a.Current[0])
	}
}

func TestCompositionMonitorCurrentViolation(t *testing.T) {
	tk, ps, cs, adv, binding := compositionFixture()
	cm := NewCompositionMonitor(tk, ps, cs, qos.Pessimistic, adv, binding)
	m := New(ps, Options{Alpha: 1}) // estimate = last observation
	if err := m.Report(mkObs("svcA", 300, 0.95, true)); err != nil {
		t.Fatal(err)
	}
	a := cm.Assess(m, 3)
	if len(a.Violated) != 1 || a.Violated[0] != "rt" {
		t.Errorf("Violated = %v, want [rt]", a.Violated)
	}
	if a.Healthy() {
		t.Error("assessment should be unhealthy")
	}
}

func TestCompositionMonitorProactiveViolation(t *testing.T) {
	tk, ps, cs, adv, binding := compositionFixture()
	cm := NewCompositionMonitor(tk, ps, cs, qos.Pessimistic, adv, binding)
	m := New(ps, Options{WindowSize: 10})
	// svcA degrading: 100, 120, 140 — currently 200-ish total (fine), but
	// the trend crosses the 250 bound within a few steps.
	for i := 0; i < 3; i++ {
		if err := m.Report(mkObs("svcA", 100+20*float64(i), 0.95, true)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Report(mkObs("svcB", 100, 0.95, true)); err != nil {
		t.Fatal(err)
	}
	a := cm.Assess(m, 5)
	if len(a.Violated) != 0 {
		t.Errorf("current should still hold: %v (agg %v)", a.Violated, a.Current)
	}
	if len(a.PredictedViolated) == 0 {
		t.Errorf("proactive monitoring should flag the rt trend: predicted %v", a.Predicted)
	}
}

func TestCompositionMonitorRebind(t *testing.T) {
	tk, ps, cs, adv, binding := compositionFixture()
	cm := NewCompositionMonitor(tk, ps, cs, qos.Pessimistic, adv, binding)
	cm.Rebind("a", "svcA2", qos.Vector{50, 0.99})
	if id, ok := cm.Binding("a"); !ok || id != "svcA2" {
		t.Errorf("Binding(a) = %v, %v", id, ok)
	}
	m := New(ps, Options{})
	a := cm.Assess(m, 1)
	if a.Current[0] != 150 {
		t.Errorf("rebound advertised rt should apply: %g", a.Current[0])
	}
}

func TestMonitorConcurrent(t *testing.T) {
	m := New(testProps(), Options{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = m.Report(mkObs("s", float64(i), 0.9, true))
				_, _ = m.Estimate("s")
				_, _ = m.Predict("s", 2)
				_ = m.SuccessRate("s")
			}
		}(w)
	}
	wg.Wait()
	if m.Len("s") == 0 {
		t.Error("observations lost")
	}
}

func TestPercentile(t *testing.T) {
	m := New(testProps(), Options{WindowSize: 20})
	if _, ok := m.Percentile("s", 0, 0.95); ok {
		t.Error("unobserved service should have no percentile")
	}
	for i := 1; i <= 10; i++ {
		if err := m.Report(mkObs("s", float64(i*10), 0.9, true)); err != nil {
			t.Fatal(err)
		}
	}
	// Values 10..100: median = 50, P90 = 90, P100 = 100, P0 = 10.
	if got, ok := m.Percentile("s", 0, 0.5); !ok || got != 50 {
		t.Errorf("P50 = %g, %v", got, ok)
	}
	if got, _ := m.Percentile("s", 0, 0.9); got != 90 {
		t.Errorf("P90 = %g", got)
	}
	if got, _ := m.Percentile("s", 0, 1.0); got != 100 {
		t.Errorf("P100 = %g", got)
	}
	if got, _ := m.Percentile("s", 0, 0); got != 10 {
		t.Errorf("P0 = %g", got)
	}
	// Out-of-range inputs clamp / reject.
	if got, _ := m.Percentile("s", 0, 7); got != 100 {
		t.Errorf("clamped q>1 = %g", got)
	}
	if _, ok := m.Percentile("s", 99, 0.5); ok {
		t.Error("bad property index should fail")
	}
}

func TestPercentileCatchesTail(t *testing.T) {
	m := New(testProps(), Options{WindowSize: 30})
	// Mostly fast with a heavy tail: the mean hides what P95 shows.
	for i := 0; i < 19; i++ {
		if err := m.Report(mkObs("s", 50, 0.9, true)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Report(mkObs("s", 2000, 0.9, true)); err != nil {
		t.Fatal(err)
	}
	p95, ok := m.Percentile("s", 0, 0.96)
	if !ok || p95 < 1000 {
		t.Errorf("tail percentile should expose the outlier: %g", p95)
	}
	est, _ := m.Estimate("s")
	if est[0] > p95 {
		t.Errorf("EWMA %g should sit below the tail %g", est[0], p95)
	}
}

func TestSubscribeHealthCrossings(t *testing.T) {
	m := New(testProps(), Options{})
	type event struct {
		id      registry.ServiceID
		healthy bool
	}
	var mu sync.Mutex
	var events []event
	cancel := m.SubscribeHealth(0.5, func(id registry.ServiceID, healthy bool) {
		mu.Lock()
		events = append(events, event{id, healthy})
		mu.Unlock()
	})

	// One success: rate stays 1, no crossing.
	if err := m.Report(mkObs("s", 100, 0.9, true)); err != nil {
		t.Fatal(err)
	}
	// Two failures: rate 1/2 → 1/3, crossing 0.5 exactly once (the
	// healthy predicate is rate ≥ threshold, so 0.5 itself is healthy).
	m.Report(mkObs("s", 100, 0.9, false))
	m.Report(mkObs("s", 100, 0.9, false))
	mu.Lock()
	got := append([]event(nil), events...)
	mu.Unlock()
	if len(got) != 1 || got[0].id != "s" || got[0].healthy {
		t.Fatalf("events = %+v, want one unhealthy crossing for s", got)
	}

	// Recover: successes until the rate climbs back over the threshold.
	for i := 0; i < 4; i++ {
		m.Report(mkObs("s", 100, 0.9, true))
	}
	mu.Lock()
	got = append([]event(nil), events...)
	mu.Unlock()
	if len(got) != 2 || !got[1].healthy {
		t.Fatalf("events = %+v, want a healthy re-crossing", got)
	}

	// After cancel nothing fires.
	cancel()
	for i := 0; i < 10; i++ {
		m.Report(mkObs("s", 100, 0.9, false))
	}
	mu.Lock()
	n := len(events)
	mu.Unlock()
	if n != 2 {
		t.Errorf("events after cancel = %d, want 2", n)
	}
}

func TestSubscribeHealthFirstObservationNotifies(t *testing.T) {
	m := New(testProps(), Options{})
	fired := 0
	m.SubscribeHealth(0.5, func(id registry.ServiceID, healthy bool) {
		fired++
		if healthy {
			t.Error("first failing observation should report unhealthy")
		}
	})
	// The optimistic prior (rate 1) means the very first failure crosses.
	m.Report(mkObs("fresh", 100, 0.9, false))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// Callbacks may re-enter the monitor without deadlocking.
	m.SubscribeHealth(0.9, func(id registry.ServiceID, healthy bool) {
		_ = m.SuccessRate(id)
	})
	m.Report(mkObs("other", 100, 0.9, false))
}
